"""Tier-1 contract tests of the versioned ``repro.api`` v2 surface.

The contract cuts both ways: every supported name resolves from its
namespace, and every legacy v1 flat name still resolves — with exactly
one :class:`DeprecationWarning` — through the ``repro._compat`` shim.
"""

import importlib
import pathlib
import shutil
import subprocess
import types
import warnings

import pytest

import repro.api as api
from repro._compat import reset_deprecation_warnings

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
API_DOC = REPO_ROOT / "docs" / "api.md"

NAMESPACE_NAMES = ("session", "mech", "data", "chaos", "exec",
                   "errors", "service", "fleet", "packs")


@pytest.mark.tier1
def test_api_version_is_2():
    assert api.API_VERSION == "2"
    assert api.__version__.count(".") == 2


@pytest.mark.tier1
def test_namespaces_exist_and_export():
    assert set(api.NAMESPACES) == set(NAMESPACE_NAMES)
    for ns_name in NAMESPACE_NAMES:
        module = importlib.import_module(f"repro.api.{ns_name}")
        assert module is api.NAMESPACES[ns_name]
        assert module.__all__, f"repro.api.{ns_name} must export a surface"


@pytest.mark.tier1
def test_every_namespace_name_resolves():
    for ns_name, module in api.NAMESPACES.items():
        for name in module.__all__:
            value = getattr(module, name)
            assert value is not None, f"repro.api.{ns_name}.{name}"


@pytest.mark.tier1
def test_no_implementation_module_leaks_into_all():
    """``__all__`` lists supported *names*, never modules — a module in
    the surface would smuggle its whole namespace past the policy."""
    for ns_name, module in api.NAMESPACES.items():
        leaked = [name for name in module.__all__
                  if isinstance(getattr(module, name), types.ModuleType)]
        assert not leaked, f"repro.api.{ns_name}.__all__ leaks {leaked}"


@pytest.mark.tier1
def test_no_name_exported_by_two_namespaces():
    seen = {}
    for ns_name, module in api.NAMESPACES.items():
        for name in module.__all__:
            assert name not in seen, (
                f"{name} exported by both {seen[name]} and {ns_name}")
            seen[name] = ns_name


@pytest.mark.tier1
def test_every_flat_alias_warns_exactly_once():
    for name, ns_name in sorted(api._FLAT_ALIASES.items()):
        reset_deprecation_warnings()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            first = getattr(api, name)
            second = getattr(api, name)
        assert first is second is getattr(api.NAMESPACES[ns_name], name)
        deprecations = [w for w in caught
                        if issubclass(w.category, DeprecationWarning)]
        assert len(deprecations) == 1, (
            f"repro.api.{name}: {len(deprecations)} warnings, wanted 1")
        message = str(deprecations[0].message)
        assert f"repro.api.{ns_name}.{name}" in message


@pytest.mark.tier1
def test_every_v1_name_still_resolves_flat():
    """The v1 surface, name for name — nothing was dropped in v2."""
    v1_names = [
        "initialize", "finalize", "profile_run", "backends_for_node",
        "Backend", "MoneqConfig", "MoneqSession", "MoneqResult",
        "Mechanism", "MechanismSpec", "AccessChannel", "FreshnessModel",
        "CapabilityDecl", "SensorSource", "mechanisms",
        "EnvironmentalDatabase", "EnvRecord", "ShardedStore", "ShardMap",
        "WriteBatcher", "Reading", "Aggregate", "QueryPlan", "FlushReport",
        "series_from_readings", "store_series",
        "FaultPlan", "FaultRule", "RetryPolicy", "CircuitBreaker",
        "DARK_READING", "SCENARIOS", "run_scenario",
        "Engine", "EngineStats", "ExperimentSpec", "ExperimentReport",
        "ResultCache", "CacheStats",
        "ReproError", "ConfigError", "DeviceError", "SensorError",
        "MoneqError", "MoneqStateError", "MoneqBufferFullError",
        "ExperimentExecutionError", "ChaosError",
    ]
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        for name in v1_names:
            assert getattr(api, name) is not None, f"v1 lost {name}"


@pytest.mark.tier1
def test_unknown_flat_name_raises():
    with pytest.raises(AttributeError, match="does_not_exist"):
        api.does_not_exist


@pytest.mark.tier1
def test_every_export_documented_in_api_md():
    assert API_DOC.is_file(), "docs/api.md missing"
    text = API_DOC.read_text(encoding="utf-8")
    undocumented = [
        f"{ns_name}.{name}"
        for ns_name, module in api.NAMESPACES.items()
        for name in module.__all__
        if name not in text
    ]
    assert not undocumented, (
        f"docs/api.md does not mention: {undocumented}")


@pytest.mark.tier1
def test_policy_documented():
    assert "Compatibility policy" in api.__doc__
    text = API_DOC.read_text(encoding="utf-8")
    assert "Compatibility policy" in text
    assert "DeprecationWarning" in text, "migration table must note the shim"


@pytest.mark.skipif(shutil.which("ruff") is None,
                    reason="ruff not installed in this environment")
def test_repo_is_ruff_clean():
    result = subprocess.run(
        ["ruff", "check", "src", "tests", "benchmarks"],
        cwd=REPO_ROOT, capture_output=True, text=True,
    )
    assert result.returncode == 0, result.stdout + result.stderr


@pytest.mark.tier1
def test_backend_block_contract_on_surface():
    """The vectorized sampling contract is supported API: ``Backend``
    declares ``read_block``, and the scalar-loop fallback serves any
    subclass that only implements ``read_at``."""
    from repro.api.session import Backend

    assert callable(Backend.read_block)
    assert "bit-identical" in Backend.read_block.__doc__

    class TwoFieldBackend(Backend):
        platform = "test"
        label = "t0"
        min_interval_s = 0.1
        query_latency_s = 1e-4

        def fields(self):
            return ["a", "b"]

        def read_at(self, t):
            return {"a": t * 2.0, "b": t - 1.0}

        def capabilities(self):
            return None

    block = TwoFieldBackend().read_block([0.0, 0.5, 2.0])
    assert block.dtype.names == ("a", "b")
    assert list(block["a"]) == [0.0, 1.0, 4.0]
    assert list(block["b"]) == [-1.0, -0.5, 1.0]


@pytest.mark.tier1
def test_session_config_exposes_block_ticks():
    from repro.api.session import MoneqConfig

    assert MoneqConfig(block_ticks=256).block_ticks == 256
