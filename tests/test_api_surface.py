"""Tier-1 smoke tests of the versioned ``repro.api`` surface.

Every supported name must import, resolve, and be documented in
``docs/api.md`` — the compatibility policy is only worth something if
the reference stays complete.  The ruff gate rides along, skipped
where the linter isn't installed.
"""

import importlib
import pathlib
import shutil
import subprocess

import pytest

import repro.api as api

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
API_DOC = REPO_ROOT / "docs" / "api.md"


@pytest.mark.tier1
def test_all_names_resolve():
    assert api.__all__, "repro.api must export a surface"
    for name in api.__all__:
        assert hasattr(api, name), f"repro.api.__all__ lists {name}"
        assert getattr(api, name) is not None


@pytest.mark.tier1
def test_no_duplicate_exports():
    assert len(api.__all__) == len(set(api.__all__))


@pytest.mark.tier1
def test_surface_is_importable_fresh():
    module = importlib.import_module("repro.api")
    assert module.API_VERSION == "1"
    assert module.__version__.count(".") == 2


@pytest.mark.tier1
def test_every_export_documented_in_api_md():
    assert API_DOC.is_file(), "docs/api.md missing"
    text = API_DOC.read_text(encoding="utf-8")
    undocumented = [name for name in api.__all__ if name not in text]
    assert not undocumented, (
        f"docs/api.md does not mention: {undocumented}"
    )


@pytest.mark.tier1
def test_policy_documented():
    assert "Compatibility policy" in api.__doc__
    assert "Compatibility policy" in API_DOC.read_text(encoding="utf-8")


@pytest.mark.skipif(shutil.which("ruff") is None,
                    reason="ruff not installed in this environment")
def test_repo_is_ruff_clean():
    result = subprocess.run(
        ["ruff", "check", "src", "tests", "benchmarks"],
        cwd=REPO_ROOT, capture_output=True, text=True,
    )
    assert result.returncode == 0, result.stdout + result.stderr


@pytest.mark.tier1
def test_backend_block_contract_on_surface():
    """The vectorized sampling contract is supported API: ``Backend``
    is exported, declares ``read_block``, and the scalar-loop fallback
    serves any subclass that only implements ``read_at``."""
    assert "Backend" in api.__all__
    assert callable(api.Backend.read_block)
    assert "bit-identical" in api.Backend.read_block.__doc__

    class TwoFieldBackend(api.Backend):
        platform = "test"
        label = "t0"
        min_interval_s = 0.1
        query_latency_s = 1e-4

        def fields(self):
            return ["a", "b"]

        def read_at(self, t):
            return {"a": t * 2.0, "b": t - 1.0}

        def capabilities(self):
            return None

    block = TwoFieldBackend().read_block([0.0, 0.5, 2.0])
    assert block.dtype.names == ("a", "b")
    assert list(block["a"]) == [0.0, 1.0, 4.0]
    assert list(block["b"]) == [-1.0, -0.5, 1.0]


@pytest.mark.tier1
def test_session_config_exposes_block_ticks():
    config = api.MoneqConfig(block_ticks=256)
    assert config.block_ticks == 256
