"""Integration tests for SPMD profiling (the Listing 1 path)."""

import numpy as np
import pytest

from repro.bgq.machine import BgqMachine
from repro.core.moneq.spmd import RANKS_PER_BOARD, profile_spmd
from repro.errors import ConfigError
from repro.runtime.ops import Barrier, Compute, Recv, Send
from repro.sim.rng import RngRegistry


def bsp_program(iterations=4, compute_s=30.0, halo_bytes=1 << 30):
    """Bulk-synchronous phases long enough for 560 ms EMON sampling."""

    def program(ctx):
        right = (ctx.rank + 1) % ctx.size
        left = (ctx.rank - 1) % ctx.size
        for it in range(iterations):
            yield Compute(compute_s)
            yield Send(dest=right, payload=None, nbytes=halo_bytes, tag=it)
            yield Recv(source=left, tag=it)
        yield Barrier()

    return program


@pytest.fixture(scope="module")
def profiled():
    machine = BgqMachine(racks=1, rng=RngRegistry(97), start_poller=False)
    return profile_spmd(machine, bsp_program(), ranks=64, bucket_s=0.25)


class TestProfileSpmd:
    def test_one_agent_per_node_card(self, profiled):
        assert len(profiled.boards) == 2  # 64 ranks / 32 per board
        assert set(profiled.moneq.traces) == set(profiled.boards)

    def test_program_elapsed_drives_session_length(self, profiled):
        ticks = profiled.moneq.overhead.ticks
        expected = int(profiled.program_elapsed_s / 0.560)
        assert abs(ticks - expected) <= 2

    def test_board_power_reflects_compute_phases(self, profiled):
        trace = profiled.moneq.traces[profiled.boards[0]]["node_card_w"]
        # Compute phases run hot; post-send stalls dip.
        assert trace.max() > 1200.0
        assert trace.max() - trace.min() > 100.0

    def test_all_ranks_completed(self, profiled):
        assert len(profiled.ranks) == 64
        assert all(r.finish_time > 0 for r in profiled.ranks)

    def test_too_many_ranks_rejected(self):
        machine = BgqMachine(racks=1, rng=RngRegistry(98), start_poller=False)
        with pytest.raises(ConfigError):
            profile_spmd(machine, bsp_program(), ranks=33 * 1024)

    def test_rank_count_validated(self):
        machine = BgqMachine(racks=1, rng=RngRegistry(99), start_poller=False)
        with pytest.raises(ConfigError):
            profile_spmd(machine, bsp_program(), ranks=0)

    def test_constant(self):
        assert RANKS_PER_BOARD == 32
