"""Unit and integration tests for MonEQ sessions."""

import numpy as np
import pytest

from repro.core.moneq import (
    MoneqConfig,
    NvmlBackend,
    PhiMicrasBackend,
    PhiSysMgmtBackend,
    RaplMsrBackend,
    finalize,
    initialize,
    profile_run,
)
from repro.core.moneq.session import MoneqSession
from repro.errors import (
    ConfigError,
    MoneqBufferFullError,
    MoneqStateError,
)
from repro.testbeds import gpu_node, multi_device_node, phi_node, rapl_node
from repro.workloads.vectoradd import VectorAddWorkload


class TestConfig:
    def test_defaults_valid(self):
        config = MoneqConfig()
        assert config.polling_interval_s is None
        assert config.buffer_slots > 0

    def test_validation(self):
        with pytest.raises(ConfigError):
            MoneqConfig(polling_interval_s=0.0)
        with pytest.raises(ConfigError):
            MoneqConfig(buffer_slots=0)
        with pytest.raises(ConfigError):
            MoneqConfig(output_dir="relative/path")

    def test_memory_footprint_constant_in_scale(self):
        config = MoneqConfig(buffer_slots=1000)
        assert config.memory_bytes_per_agent(4) == 1000 * 8 * 5


class TestTwoLineUsage:
    def test_rapl_quickstart(self):
        node, _ = rapl_node(seed=1)
        session = initialize(node)                      # line 1
        node.events.run_until(node.clock.now + 30.0)
        result = finalize(session)                      # line 2
        trace = result.trace("pkg_w")
        assert len(trace) > 100
        assert trace.mean() > 5.0

    def test_default_interval_is_hardware_minimum(self):
        node, _ = rapl_node(seed=1)
        session = initialize(node)
        assert session.interval_s == RaplMsrBackend.MIN_INTERVAL_S

    def test_interval_below_hardware_floor_rejected(self):
        node, _ = rapl_node(seed=1)
        with pytest.raises(ConfigError):
            initialize(node, MoneqConfig(polling_interval_s=0.001))

    def test_node_without_devices_rejected(self):
        from repro.host.node import Node

        with pytest.raises(ConfigError):
            initialize(Node("empty"))

    def test_profile_run_driver(self):
        node, _ = rapl_node(seed=2)
        result = profile_run(node, duration_s=10.0)
        assert result.overhead.ticks == len(result.trace("pkg_w"))

    def test_profile_run_duration_validated(self):
        node, _ = rapl_node(seed=2)
        with pytest.raises(ConfigError):
            profile_run(node, duration_s=0.0)


class TestCollection:
    def test_tick_count_matches_interval(self):
        node, _ = rapl_node(seed=3)
        result = profile_run(node, duration_s=6.0)
        assert result.overhead.ticks == pytest.approx(6.0 / 0.060, abs=2)

    def test_rapl_power_from_counter_deltas(self):
        """The backend derives watts from energy deltas; once the
        workload is running the pkg series sits in the Figure 3 band."""
        node, workload = rapl_node(seed=4)
        result = profile_run(node, duration_s=40.0)
        trace = result.trace("pkg_w")
        busy = trace.between(10.0, 35.0)
        assert 30.0 < busy.mean() < 55.0

    def test_first_rapl_sample_is_zero_power(self):
        # No previous counter read -> no delta to report.
        node, _ = rapl_node(seed=5)
        result = profile_run(node, duration_s=5.0)
        assert result.trace("pkg_w").values[0] == 0.0

    def test_buffer_full_raises(self):
        node, _ = rapl_node(seed=6)
        with pytest.raises(MoneqBufferFullError):
            profile_run(node, duration_s=10.0,
                        config=MoneqConfig(buffer_slots=10))

    def test_gpu_session_fields(self):
        node, gpu, _ = gpu_node(seed=7)
        gpu.board.schedule(VectorAddWorkload(), t_start=0.0)
        session = initialize(node)
        node.events.run_until(node.clock.now + 60.0)
        result = finalize(session)
        trace_set = result.traces[next(iter(result.traces))]
        assert "board_w" in trace_set and "die_temp_c" in trace_set

    def test_collection_cost_charged_to_clock(self):
        node, _ = rapl_node(seed=8)
        session = initialize(node)
        t0 = node.clock.now
        node.events.run_until(t0 + 6.0)
        result = finalize(session)
        assert result.overhead.collection_s == pytest.approx(
            result.overhead.ticks * session.agents[0].backend.query_latency_s
        )
        # Collection cost is charged within the run window plus the
        # finalize I/O tail afterwards (a tick landing exactly on the
        # horizon may push one query cost past it).
        per_tick = session.agents[0].backend.query_latency_s
        assert node.clock.now == pytest.approx(
            t0 + 6.0 + result.overhead.finalize_s, abs=2 * per_tick
        )


class TestMultiDevice:
    def test_cpu_gpu_phi_profiled_together(self):
        node, rig = multi_device_node(seed=9)
        session = initialize(node)
        node.events.run_until(node.clock.now + 5.0)
        result = finalize(session)
        platforms = {a.backend.platform for a in session.agents}
        assert platforms == {"RAPL", "NVML", "Xeon Phi"}
        assert len(result.traces) == 3
        assert len(result.output_paths) == 3

    def test_mixed_session_uses_slowest_minimum(self):
        node, _ = multi_device_node(seed=10)
        session = initialize(node)
        assert session.interval_s == RaplMsrBackend.MIN_INTERVAL_S  # 60 ms governs

    def test_duplicate_labels_rejected(self):
        node, _ = rapl_node(seed=11)
        package = node.device("cpu")
        backends = [RaplMsrBackend(package, "x"), RaplMsrBackend(package, "x")]
        with pytest.raises(ConfigError):
            MoneqSession(backends, node.events)


class TestTagging:
    def test_tags_injected_into_output(self):
        node, _ = rapl_node(seed=12)
        session = initialize(node)
        node.events.run_until(node.clock.now + 1.0)
        session.start_tag("work-loop-1")
        node.events.run_until(node.clock.now + 2.0)
        session.end_tag("work-loop-1")
        result = finalize(session)
        content = node.vfs.read_text(result.output_paths[0])
        assert "#TAG_START work-loop-1" in content
        assert "#TAG_END work-loop-1" in content

    def test_tag_context_manager(self):
        node, _ = rapl_node(seed=13)
        session = initialize(node)
        with session.tag("phase"):
            node.events.run_until(node.clock.now + 1.0)
        result = finalize(session)
        assert result.tags[0].name == "phase"
        assert result.tags[0].t_end > result.tags[0].t_start

    def test_open_tag_at_finalize_rejected(self):
        node, _ = rapl_node(seed=14)
        session = initialize(node)
        session.start_tag("never-closed")
        with pytest.raises(MoneqStateError):
            session.finalize()

    def test_tag_misuse_rejected(self):
        node, _ = rapl_node(seed=15)
        session = initialize(node)
        with pytest.raises(MoneqStateError):
            session.end_tag("not-open")
        session.start_tag("x")
        with pytest.raises(MoneqStateError):
            session.start_tag("x")

    def test_tag_window_slices_trace(self):
        node, _ = rapl_node(seed=22)
        session = initialize(node)
        node.events.run_until(node.clock.now + 2.0)
        with session.tag("loop"):
            node.events.run_until(node.clock.now + 3.0)
        node.events.run_until(node.clock.now + 2.0)
        result = finalize(session)
        window = result.tag_window("loop", "pkg_w")
        full = result.trace("pkg_w")
        assert 0 < len(window) < len(full)
        tag = result.tags[0]
        assert window.times[0] >= tag.t_start
        assert window.times[-1] <= tag.t_end

    def test_tag_window_unknown_tag_rejected(self):
        node, _ = rapl_node(seed=23)
        session = initialize(node)
        result = finalize(session)
        with pytest.raises(MoneqStateError, match="no closed tag"):
            result.tag_window("nope", "pkg_w")

    def test_tagging_disabled_config(self):
        node, _ = rapl_node(seed=16)
        session = initialize(node, MoneqConfig(tagging_enabled=False))
        with pytest.raises(MoneqStateError):
            session.start_tag("x")


class TestLifecycle:
    def test_double_finalize_rejected(self):
        node, _ = rapl_node(seed=17)
        session = initialize(node)
        session.finalize()
        with pytest.raises(MoneqStateError):
            session.finalize()

    def test_result_trace_requires_agent_name_when_ambiguous(self):
        node, _ = multi_device_node(seed=18)
        session = initialize(node)
        node.events.run_until(node.clock.now + 2.0)
        result = finalize(session)
        with pytest.raises(MoneqStateError):
            result.trace("board_w")  # 3 agents: must name one

    def test_output_files_parse_back(self):
        from repro.core.moneq.output import parse_agent_file

        node, _ = rapl_node(seed=19)
        result = profile_run(node, duration_s=3.0)
        fields, table, markers = parse_agent_file(
            node.vfs.read_text(result.output_paths[0])
        )
        assert fields == ["pkg_w", "pp0_w", "pp1_w", "dram_w"]
        assert table.shape[1] == 5
        assert len(table) == result.overhead.ticks


class TestPhiBackends:
    def test_sysmgmt_backend_opens_polling_session(self):
        rig = phi_node(seed=20)
        backend = PhiSysMgmtBackend(rig.sysmgmt)
        session = MoneqSession([backend], rig.node.events, node_count=1,
                               vfs=rig.node.vfs)
        # The in-band footprint is live on the card during the session.
        baseline = rig.card.model.idle_w
        rig.node.events.run_until(rig.node.clock.now + 10.0)
        assert float(rig.card.true_power(rig.node.clock.now)) > baseline
        session.finalize()

    def test_micras_backend_cheap(self):
        rig = phi_node(seed=21)
        backend = PhiMicrasBackend(rig.micras)
        assert backend.query_latency_s < 1e-4

    def test_sysmgmt_overhead_at_paper_interval(self):
        """14.2 ms per query at the 100 ms minimum interval ~ 14 %."""
        backend_latency = PhiSysMgmtBackend.MIN_INTERVAL_S
        from repro.xeonphi.sysmgmt import SYSMGMT_QUERY_LATENCY_S

        assert SYSMGMT_QUERY_LATENCY_S / backend_latency == pytest.approx(
            0.142, rel=0.01
        )
