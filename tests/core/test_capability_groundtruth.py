"""Ground-truthing Table I: every claimed cell corresponds to an actual
surface on the simulator (and every denial to its absence).

The capability matrix is declared data; these tests keep it honest by
checking the declarations against the APIs the device packages expose.
"""

import pytest

from repro.bgq.emon import EmonInterface
from repro.core.capability import (
    Availability,
    CapabilityRow,
    capability_matrix,
)
from repro.nvml.api import NvmlLibrary
from repro.testbeds import gpu_node, phi_node, rapl_node
from repro.xeonphi.smc import SMC_SENSORS


def cell(platform, category, item):
    return capability_matrix()[platform].cell(CapabilityRow(category, item))


class TestNvmlColumn:
    def test_no_voltage_or_current_query_exists(self):
        """Table I: NVML voltage/current unavailable — and indeed the
        API surface has no such query."""
        assert cell("NVML", "Total Power Consumption (Watts)",
                    "Voltage") is Availability.UNAVAILABLE
        assert not any("voltage" in name or "current" in name
                       for name in dir(NvmlLibrary))

    def test_claimed_queries_exist(self):
        node, _, nvml = gpu_node(seed=401)
        handle = nvml.device_get_handle_by_index(0)
        claims = {
            ("Temperature", "Die"): lambda: nvml.device_get_temperature(handle),
            ("Main Memory", "Used"): lambda: nvml.device_get_memory_info(handle).used,
            ("Fans", "Speed (In RPM)"): lambda: nvml.device_get_fan_speed(handle),
            ("Limits", "Get/Set Power Limit"):
                lambda: nvml.device_get_power_management_limit(handle),
        }
        for (category, item), query in claims.items():
            assert cell("NVML", category, item) is Availability.AVAILABLE
            assert query() is not None


class TestBgqColumn:
    def test_voltage_and_current_really_exposed(self):
        from repro.bgq.machine import BgqMachine
        from repro.sim.rng import RngRegistry

        machine = BgqMachine(racks=1, rng=RngRegistry(402), start_poller=False)
        machine.clock.advance(1.0)
        readings = machine.emon("R00-M0-N00").collect()
        assert all(r.voltage_v > 0 and r.current_a > 0 for r in readings)
        assert cell("Blue Gene/Q", "Total Power Consumption (Watts)",
                    "Voltage") is Availability.AVAILABLE

    def test_no_device_level_temperature_api(self):
        """Temperatures exist only in the environmental DB, not EMON."""
        assert cell("Blue Gene/Q", "Temperature", "Die") is Availability.UNAVAILABLE
        assert not any("temp" in name.lower() for name in dir(EmonInterface))


class TestPhiColumn:
    def test_every_temperature_row_has_an_smc_sensor(self):
        mapping = {
            ("Temperature", "Die"): "die_temp_c",
            ("Temperature", "DDR/GDDR"): "gddr_temp_c",
            ("Temperature", "Intake (Fan-In)"): "intake_temp_c",
            ("Temperature", "Exhaust (Fan-Out)"): "exhaust_temp_c",
        }
        rig = phi_node(seed=403)
        for (category, item), sensor in mapping.items():
            assert cell("Xeon Phi", category, item) is Availability.AVAILABLE
            assert sensor in SMC_SENSORS
            assert rig.smc.read_sensor(sensor, 1.0) > 0

    def test_power_limit_row_backed_by_setter(self):
        rig = phi_node(seed=404)
        assert cell("Xeon Phi", "Limits",
                    "Get/Set Power Limit") is Availability.AVAILABLE
        rig.smc.set_power_limit(280.0, t=0.0)
        assert rig.smc.read_sensor("power_limit_w", 1.0) == 280.0


class TestRaplColumn:
    def test_dram_domain_really_measured(self):
        node, _ = rapl_node(seed=405)
        package = node.device("cpu")
        from repro.rapl.domains import RaplDomain

        assert cell("RAPL", "Total Power Consumption (Watts)",
                    "Main Memory") is Availability.AVAILABLE
        assert package.energy_raw(RaplDomain.DRAM, 5.0) > 0

    def test_no_temperature_anywhere_in_rapl(self):
        """RAPL is energy/limits only; temperature queries live in
        other MSR families the paper does not count as RAPL."""
        import repro.rapl.msr as msr_module

        assert cell("RAPL", "Temperature", "Die") is Availability.UNAVAILABLE
        assert not any("THERM" in name for name in dir(msr_module))

    def test_pp1_declared_but_zero_on_servers(self):
        from repro.rapl.domains import RaplDomain
        from repro.rapl.package import SANDY_BRIDGE_EP, CpuPackage

        package = CpuPackage(SANDY_BRIDGE_EP)
        assert float(package.true_power(RaplDomain.PP1, 1.0)) == 0.0
