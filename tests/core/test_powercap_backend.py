"""Unit tests for the powercap-based MonEQ backend."""

import pytest

from repro.core.moneq.backends import RaplMsrBackend, RaplPowercapBackend
from repro.core.moneq.config import MoneqConfig
from repro.core.moneq.session import MoneqSession
from repro.errors import DriverNotLoadedError
from repro.host.kernel import Kernel
from repro.host.node import Node
from repro.rapl.package import SANDY_BRIDGE, CpuPackage
from repro.rapl.powercap import install_powercap_driver
from repro.sim.rng import RngRegistry
from repro.workloads.gaussian import GaussianEliminationWorkload


def make_node(load=True):
    node = Node("pcb-host", kernel=Kernel("3.13"), rng=RngRegistry(311))
    package = CpuPackage(SANDY_BRIDGE, rng=node.rng.fork("cpu0"))
    node.attach("cpu", package)
    install_powercap_driver(node)
    node.kernel.modprobe("intel_rapl")
    if load:
        package.board.schedule(GaussianEliminationWorkload(n=12_000), t_start=5.0)
    return node, package


class TestPowercapBackend:
    def test_requires_loaded_module(self):
        node = Node("bare", kernel=Kernel("3.13"))
        node.attach("cpu", CpuPackage(SANDY_BRIDGE))
        install_powercap_driver(node)
        with pytest.raises(DriverNotLoadedError):
            RaplPowercapBackend(node)

    def test_session_produces_figure3_band(self):
        node, _ = make_node()
        session = MoneqSession(
            [RaplPowercapBackend(node)], node.events,
            config=MoneqConfig(polling_interval_s=0.1), node_count=1,
            vfs=node.vfs,
        )
        node.events.run_until(session.t_start + 40.0)
        trace = session.finalize().trace("pkg_w")
        busy = trace.between(10.0, 35.0)
        assert 30.0 < busy.mean() < 55.0

    def test_agrees_with_msr_backend(self):
        """Two access paths, one truth: the derived watt series match."""
        node, package = make_node()
        sysfs = RaplPowercapBackend(node, label="sysfs")
        msr = RaplMsrBackend(package, label="msr")
        session = MoneqSession(
            [sysfs, msr], node.events,
            config=MoneqConfig(polling_interval_s=0.1), node_count=1,
            vfs=node.vfs,
        )
        node.events.run_until(session.t_start + 20.0)
        result = session.finalize()
        a = result.traces["sysfs"]["pkg_w"].values[2:]
        b = result.traces["msr"]["pkg_w"].values[2:]
        import numpy as np

        # Microjoule rounding vs raw-counter rounding: sub-watt agreement.
        np.testing.assert_allclose(a, b, atol=0.5)

    def test_cheaper_than_sysmgmt_pricier_than_msr(self):
        node, package = make_node(load=False)
        sysfs = RaplPowercapBackend(node)
        msr = RaplMsrBackend(package)
        assert msr.query_latency_s < sysfs.query_latency_s < 1e-3
