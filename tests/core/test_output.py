"""MonEQ output rendering.

``render_agent_file`` is finalize's hot loop; it was rewritten from
row-at-a-time f-string formatting to columnar %-formatting, and the
contract is byte-identity with the original — including the float64
corner cases (``-0.0``, ``inf``, ``nan``) where a format change would
show first.
"""

import numpy as np

from repro.core.moneq.output import (
    parse_agent_file,
    render_agent_file,
    sanitize_label,
)

FIELDS = ["node_w", "dram_w", "core_w"]


def _records(n, seed=11):
    rng = np.random.default_rng(seed)
    dtype = [("time_s", "f8")] + [(f, "f8") for f in FIELDS]
    records = np.zeros(n, dtype=dtype)
    records["time_s"] = np.sort(rng.uniform(0.0, 600.0, n))
    for f in FIELDS:
        records[f] = rng.uniform(-5.0, 900.0, n)
    return records


def _reference_render(label, platform, fields, records, markers):
    """The original row-at-a-time implementation, kept as the oracle."""
    lines = [
        f"# MonEQ output: agent={label} platform={platform}",
        f"# records={len(records)} fields={len(fields)}",
        "# time_s " + " ".join(fields),
    ]
    for row in records:
        values = " ".join(f"{row[name]:.6f}" for name in fields)
        lines.append(f"{row['time_s']:.6f} {values}")
    lines.extend(marker for _, marker in markers)
    return "\n".join(lines) + "\n"


class TestRenderByteIdentity:
    def test_matches_reference_implementation(self):
        records = _records(500)
        markers = [(10.0, "#TAG_open loop"), (20.0, "#TAG_close loop")]
        assert render_agent_file("a0", "bgq", FIELDS, records, markers) == \
            _reference_render("a0", "bgq", FIELDS, records, markers)

    def test_float64_corner_values(self):
        records = _records(4)
        records[FIELDS[0]][0] = -0.0
        records[FIELDS[1]][1] = np.inf
        records[FIELDS[2]][2] = -np.inf
        records[FIELDS[0]][3] = np.nan
        assert render_agent_file("a0", "rapl", FIELDS, records, []) == \
            _reference_render("a0", "rapl", FIELDS, records, [])

    def test_empty_records(self):
        assert render_agent_file("a0", "nvml", FIELDS, _records(0), []) == \
            _reference_render("a0", "nvml", FIELDS, _records(0), [])


class TestRoundtrip:
    def test_parse_inverts_render(self):
        records = _records(50)
        content = render_agent_file(
            "a0", "bgq", FIELDS, records, [(1.0, "#TAG_open x")])
        fields, table, markers = parse_agent_file(content)
        assert fields == FIELDS
        assert table.shape == (50, len(FIELDS) + 1)
        np.testing.assert_allclose(table[:, 0], records["time_s"], atol=5e-7)
        assert markers == ["#TAG_open x"]

    def test_sanitize_label(self):
        assert sanitize_label("bgq/emon:0") == "bgq_emon_0"
