"""Unit tests for the Table I capability matrix."""

from repro.core.capability import (
    PLATFORM_ORDER,
    TABLE1_ROWS,
    Availability,
    CapabilityRow,
    capability_matrix,
    render_capability_table,
    universal_rows,
)


def cell(platform: str, category: str, item: str) -> Availability:
    return capability_matrix()[platform].cell(CapabilityRow(category, item))


class TestMatrixStructure:
    def test_four_platforms_in_paper_order(self):
        assert tuple(capability_matrix()) == PLATFORM_ORDER == (
            "Xeon Phi", "NVML", "Blue Gene/Q", "RAPL"
        )

    def test_row_count_matches_table1(self):
        assert len(TABLE1_ROWS) == 21

    def test_every_cell_defined(self):
        matrix = capability_matrix()
        for platform in PLATFORM_ORDER:
            for row in TABLE1_ROWS:
                assert matrix[platform].cell(row) in Availability


class TestPaperClaims:
    def test_total_power_universal(self):
        """'Just about the only data point which is collectible on all of
        these platforms is total power consumption.'"""
        rows = universal_rows()
        assert CapabilityRow("Total Power Consumption (Watts)", "Total") in rows
        assert len(rows) == 1

    def test_nvml_no_memory_power_breakdown(self):
        """'One must settle for total power consumption of the whole card
        when clearly the power consumption of both the GPU and memory
        would be more beneficial.'"""
        assert cell("NVML", "Total Power Consumption (Watts)",
                    "Main Memory") is Availability.UNAVAILABLE

    def test_nvml_has_temperature_bgq_does_not(self):
        """'NVIDIA GPUs support temperature data whereas this data is only
        accessible in the environmental data for a Blue Gene/Q.'"""
        assert cell("NVML", "Temperature", "Die") is Availability.AVAILABLE
        assert cell("Blue Gene/Q", "Temperature", "Die") is Availability.UNAVAILABLE

    def test_bgq_exposes_voltage_and_current(self):
        for item in ("Voltage", "Current"):
            assert cell("Blue Gene/Q", "Total Power Consumption (Watts)",
                        item) is Availability.AVAILABLE

    def test_rapl_pcie_not_applicable(self):
        assert cell("RAPL", "Total Power Consumption (Watts)",
                    "PCI Express") is Availability.NOT_APPLICABLE

    def test_rapl_dram_domain_available(self):
        assert cell("RAPL", "Total Power Consumption (Watts)",
                    "Main Memory") is Availability.AVAILABLE

    def test_bgq_airflow_not_applicable(self):
        for item in ("Intake (Fan-In)", "Exhaust (Fan-Out)"):
            assert cell("Blue Gene/Q", "Temperature", item) is Availability.NOT_APPLICABLE
        assert cell("Blue Gene/Q", "Fans", "Speed (In RPM)") is Availability.NOT_APPLICABLE

    def test_phi_richest_column(self):
        matrix = capability_matrix()
        counts = {
            p: sum(matrix[p].cell(r) is Availability.AVAILABLE for r in TABLE1_ROWS)
            for p in PLATFORM_ORDER
        }
        assert counts["Xeon Phi"] == max(counts.values())

    def test_power_limits_on_phi_nvml_rapl_only(self):
        row = ("Limits", "Get/Set Power Limit")
        assert cell("Xeon Phi", *row) is Availability.AVAILABLE
        assert cell("NVML", *row) is Availability.AVAILABLE
        assert cell("RAPL", *row) is Availability.AVAILABLE
        assert cell("Blue Gene/Q", *row) is Availability.UNAVAILABLE


class TestRendering:
    def test_render_has_all_items_and_platforms(self):
        text = render_capability_table()
        for platform in PLATFORM_ORDER:
            assert platform in text
        for row in TABLE1_ROWS:
            assert row.item in text

    def test_render_uses_marks(self):
        text = render_capability_table()
        assert "+" in text and "-" in text and "N/A" in text
