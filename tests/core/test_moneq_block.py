"""Session-level guarantees of the columnar block-sampling engine.

``block_ticks=1`` is the scalar reference; everything observable —
output bytes, clock advancement, tick/coalesce counters, tag windows,
buffer-full failures — must be identical at any other setting.
"""

import numpy as np
import pytest

from repro import testbeds
from repro.core.moneq import MoneqConfig, NvmlBackend
from repro.core.moneq.api import finalize, initialize
from repro.core.moneq.session import MoneqSession
from repro.errors import ConfigError, MoneqBufferFullError


def _drive(node, session, t_end):
    """A run with tag activity and uneven run_until strides."""
    node.events.run_until(t_end * 0.23)
    session.start_tag("solve")
    node.events.run_until(t_end * 0.61)
    session.end_tag("solve")
    session.start_tag("drain")
    node.events.run_until(t_end * 0.8)
    session.end_tag("drain")
    node.events.run_until(t_end)
    return finalize(session)


def _observables(make_node, block_ticks, t_end=90.0, buffer_slots=4096):
    node = make_node()
    config = MoneqConfig(block_ticks=block_ticks, buffer_slots=buffer_slots)
    session = initialize(node, config=config)
    result = _drive(node, session, t_end)
    return {
        "clock": node.clock.now,
        "ticks": result.overhead.ticks,
        "coalesced": session._timer.ticks_coalesced,
        "files": {p: node.vfs.read_text(p) for p in result.output_paths},
        "tags": [(t.name, t.t_start, t.t_end) for t in result.tags],
        "collection_s": result.overhead.collection_s,
    }


class TestBlockScalarParity:
    @pytest.mark.parametrize("block_ticks", [2, 7, 64, 4096])
    def test_rapl_node_outputs_byte_identical(self, block_ticks):
        scalar = _observables(lambda: testbeds.rapl_node(seed=5)[0], 1)
        block = _observables(lambda: testbeds.rapl_node(seed=5)[0], block_ticks)
        assert scalar == block

    def test_multi_device_node_outputs_byte_identical(self):
        scalar = _observables(lambda: testbeds.multi_device_node(seed=9)[0], 1)
        block = _observables(lambda: testbeds.multi_device_node(seed=9)[0], 4096)
        assert scalar == block

    def test_phi_node_outputs_byte_identical(self):
        scalar = _observables(lambda: testbeds.phi_node(seed=2).node, 1)
        block = _observables(lambda: testbeds.phi_node(seed=2).node, 512)
        assert scalar == block

    def test_overrunning_handler_coalesces_identically(self):
        """When the tick cost overruns the interval, the block planner
        replays the exact coalescing recurrence of the scalar path."""

        class SlowNvml(NvmlBackend):
            @property
            def query_latency_s(self):
                return 0.095  # > the 60 ms interval: every tick overruns

        def run(block_ticks):
            node, gpu, _ = testbeds.gpu_node(seed=4)
            session = MoneqSession(
                [SlowNvml(gpu)], node.events,
                config=MoneqConfig(polling_interval_s=0.060,
                                   block_ticks=block_ticks),
                vfs=node.vfs,
            )
            node.events.run_until(30.0)
            result = session.finalize()
            assert session._timer.ticks_coalesced > 0
            return (node.clock.now, result.overhead.ticks,
                    session._timer.ticks_coalesced,
                    {p: node.vfs.read_text(p) for p in result.output_paths})

        assert run(1) == run(128)

    def test_buffer_full_raises_identically(self):
        def run(block_ticks):
            node, _ = testbeds.rapl_node(seed=3)
            config = MoneqConfig(block_ticks=block_ticks, buffer_slots=40)
            session = initialize(node, config=config)
            with pytest.raises(MoneqBufferFullError) as err:
                node.events.run_until(60.0)
            return node.clock.now, str(err.value), session.agents[0].count

        assert run(1) == run(16)

    def test_step_driven_queue_stays_scalar(self):
        """Without a run_until horizon the engine cannot see how far
        lookahead is safe, so step() drives exactly one tick at a time."""
        node, _ = testbeds.rapl_node(seed=6)
        session = initialize(node, config=MoneqConfig(block_ticks=4096))
        for _ in range(5):
            node.events.step()
        assert session.agents[0].count == 5

    def test_block_mode_faster_than_scalar(self):
        """The point of the engine: same bytes, far fewer Python-level
        tick dispatches (buffer fills via slab assignment)."""
        import time

        node, _ = testbeds.rapl_node(seed=8)
        session = initialize(node, config=MoneqConfig(block_ticks=1))
        t0 = time.perf_counter()
        node.events.run_until(120.0)
        scalar_wall = time.perf_counter() - t0
        finalize(session)

        node, _ = testbeds.rapl_node(seed=8)
        session = initialize(node, config=MoneqConfig(block_ticks=4096))
        t0 = time.perf_counter()
        node.events.run_until(120.0)
        block_wall = time.perf_counter() - t0
        finalize(session)
        assert block_wall < scalar_wall


class TestConfigAndGuards:
    def test_block_ticks_must_be_at_least_one(self):
        with pytest.raises(ConfigError, match="block_ticks"):
            MoneqConfig(block_ticks=0)

    def test_missing_instrument_is_tolerated(self):
        """Agents without an instrument handle still collect (the tick
        path guards the metrics call instead of crashing)."""
        node, _ = testbeds.rapl_node(seed=1)
        session = initialize(node, config=MoneqConfig(block_ticks=1))
        for agent in session.agents:
            agent.instrument = None
        node.events.run_until(10.0)
        result = finalize(session)
        assert session.agents[0].count > 0
        assert result.overhead.ticks == session.agents[0].count
