"""Unit tests for the power-aware scheduling extension."""

import pytest

from repro.errors import ConfigError
from repro.host.pricing import Tariff
from repro.scheduling.pricing_sched import (
    Job,
    fcfs_schedule,
    power_aware_schedule,
    savings_percent,
)
from repro.units import HOUR


def mixed_jobs():
    """A day's batch submitted at 9:00: heavy simulations and light
    analysis jobs."""
    arrive = 9.0 * HOUR
    heavy = [Job(f"sim-{i}", duration_s=4 * HOUR, mean_power_w=80_000.0, nodes=8,
                 submit_s=arrive) for i in range(3)]
    light = [Job(f"post-{i}", duration_s=2 * HOUR, mean_power_w=6_000.0, nodes=2,
                 submit_s=arrive) for i in range(4)]
    return heavy + light


class TestJob:
    def test_energy(self):
        job = Job("j", duration_s=3600.0, mean_power_w=1000.0)
        assert job.energy_kwh == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ConfigError):
            Job("j", duration_s=0.0, mean_power_w=1.0)
        with pytest.raises(ConfigError):
            Job("j", duration_s=1.0, mean_power_w=-1.0)
        with pytest.raises(ConfigError):
            Job("j", duration_s=1.0, mean_power_w=1.0, nodes=0)


class TestFcfs:
    def test_packs_in_submission_order(self):
        tariff = Tariff.flat()
        jobs = [Job("a", HOUR, 1000.0, nodes=4), Job("b", HOUR, 1000.0, nodes=4)]
        outcome = fcfs_schedule(jobs, tariff, capacity=4)
        starts = {p.job.name: p.t_start for p in outcome.placements}
        assert starts["a"] == 0.0
        assert starts["b"] >= HOUR  # capacity forces serialization

    def test_parallel_when_capacity_allows(self):
        outcome = fcfs_schedule(
            [Job("a", HOUR, 1.0), Job("b", HOUR, 1.0)], Tariff.flat(), capacity=2,
        )
        assert all(p.t_start == 0.0 for p in outcome.placements)

    def test_infeasible_rejected(self):
        with pytest.raises(ConfigError):
            fcfs_schedule([Job("a", HOUR, 1.0, nodes=9)], Tariff.flat(), capacity=4)

    def test_horizon_overflow_rejected(self):
        with pytest.raises(ConfigError):
            fcfs_schedule(
                [Job("a", 10 * HOUR, 1.0), Job("b", 10 * HOUR, 1.0)],
                Tariff.flat(), capacity=1, horizon_s=12 * HOUR,
            )


class TestPowerAware:
    def test_heavy_jobs_land_off_peak(self):
        tariff = Tariff.day_night(on_peak=0.12, off_peak=0.04)
        outcome = power_aware_schedule(mixed_jobs(), tariff, capacity=16)
        for placement in outcome.placements:
            if placement.job.mean_power_w > 50_000.0:
                # Entirely outside the 9:00-21:00 on-peak window (modulo
                # the 24 h cycle).
                start_h = (placement.t_start / HOUR) % 24.0
                end_h = start_h + placement.job.duration_s / HOUR
                on_peak_overlap = max(0.0, min(end_h, 21.0) - max(start_h, 9.0))
                assert on_peak_overlap == pytest.approx(0.0, abs=0.3)

    def test_savings_in_papers_ballpark(self):
        """Reference [2] reported up to 23% electricity-bill savings."""
        tariff = Tariff.day_night(on_peak=0.12, off_peak=0.04)
        baseline = fcfs_schedule(mixed_jobs(), tariff, capacity=16)
        aware = power_aware_schedule(mixed_jobs(), tariff, capacity=16)
        saved = savings_percent(baseline, aware)
        assert 5.0 < saved <= 70.0
        assert aware.cost_dollars < baseline.cost_dollars

    def test_flat_tariff_gives_no_savings(self):
        tariff = Tariff.flat(0.08)
        baseline = fcfs_schedule(mixed_jobs(), tariff, capacity=16)
        aware = power_aware_schedule(mixed_jobs(), tariff, capacity=16)
        assert savings_percent(baseline, aware) == pytest.approx(0.0, abs=0.5)

    def test_total_energy_conserved(self):
        """Shifting changes *when*, not *how much*."""
        tariff = Tariff.day_night()
        jobs = mixed_jobs()
        baseline = fcfs_schedule(jobs, tariff, capacity=16)
        aware = power_aware_schedule(jobs, tariff, capacity=16)
        assert {p.job.name for p in aware.placements} == {j.name for j in jobs}
        base_kwh = sum(p.job.energy_kwh for p in baseline.placements)
        aware_kwh = sum(p.job.energy_kwh for p in aware.placements)
        assert aware_kwh == pytest.approx(base_kwh)

    def test_capacity_respected(self):
        tariff = Tariff.day_night()
        outcome = power_aware_schedule(mixed_jobs(), tariff, capacity=16)
        # Scan occupancy at fine resolution.
        events = []
        for p in outcome.placements:
            events.append((p.t_start, p.job.nodes))
            events.append((p.t_end, -p.job.nodes))
        load, peak = 0, 0
        for _, delta in sorted(events):
            load += delta
            peak = max(peak, load)
        assert peak <= 16

    def test_validation(self):
        with pytest.raises(ConfigError):
            power_aware_schedule([], Tariff.flat(), capacity=1)
        with pytest.raises(ConfigError):
            savings_percent(
                fcfs_schedule([Job("a", HOUR, 0.0)], Tariff.flat(), 1),
                fcfs_schedule([Job("a", HOUR, 0.0)], Tariff.flat(), 1),
            )
