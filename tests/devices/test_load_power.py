"""Unit tests for the shared device machinery (load boards, power and
thermal models, limited signals)."""

import numpy as np
import pytest

from repro.devices.load import LoadBoard
from repro.devices.power import (
    BoardTrackingIntegral,
    ComponentPowerModel,
    LimitedSignal,
    ThermalModel,
)
from repro.errors import ConfigError
from repro.sim.signals import ConstantSignal
from repro.workloads.base import Component, Phase, PhasedWorkload


def cpu_workload(duration=10.0, level=0.5):
    return PhasedWorkload("w", [Phase("p", duration, {Component.CPU_CORES: level})])


class TestLoadBoard:
    def test_empty_board_is_idle(self):
        board = LoadBoard()
        assert board.utilization(Component.CPU_CORES, 5.0) == 0.0

    def test_scheduled_workload_contributes(self):
        board = LoadBoard()
        board.schedule(cpu_workload(level=0.5), t_start=10.0)
        assert board.utilization(Component.CPU_CORES, 5.0) == 0.0
        assert board.utilization(Component.CPU_CORES, 15.0) == 0.5

    def test_overlapping_workloads_sum_and_clip(self):
        board = LoadBoard()
        board.schedule(cpu_workload(level=0.7))
        board.schedule(cpu_workload(level=0.7))
        assert board.utilization(Component.CPU_CORES, 5.0) == 1.0

    def test_parasitic_load(self):
        board = LoadBoard()
        board.add_parasitic(Component.PHI_CORES, ConstantSignal(0.02))
        assert board.utilization(Component.PHI_CORES, 1.0) == pytest.approx(0.02)

    def test_version_bumps_on_mutation(self):
        board = LoadBoard()
        v0 = board.version
        board.schedule(cpu_workload())
        board.add_parasitic(Component.CPU_CORES, ConstantSignal(0.1))
        assert board.version == v0 + 2

    def test_busy_until(self):
        board = LoadBoard()
        assert board.busy_until() == 0.0
        board.schedule(cpu_workload(duration=10.0), t_start=5.0)
        assert board.busy_until() == 15.0

    def test_signal_view_is_live(self):
        board = LoadBoard()
        sig = board.signal(Component.CPU_CORES)
        assert sig.value(5.0) == 0.0
        board.schedule(cpu_workload(level=0.4))
        assert sig.value(5.0) == pytest.approx(0.4)


class TestComponentPowerModel:
    def make(self, level=0.5):
        board = LoadBoard()
        board.schedule(cpu_workload(level=level))
        model = ComponentPowerModel(board, idle_w=10.0,
                                    dynamic_w={Component.CPU_CORES: 40.0})
        return board, model

    def test_idle_floor(self):
        _, model = self.make()
        assert model.power(100.0) == 10.0  # workload over

    def test_affine_scaling(self):
        _, model = self.make(level=0.5)
        assert model.power(5.0) == pytest.approx(10.0 + 0.5 * 40.0)

    def test_peak(self):
        _, model = self.make()
        assert model.peak_w == 50.0

    def test_component_power_with_idle_share(self):
        _, model = self.make(level=0.5)
        p = model.component_power(Component.CPU_CORES, 5.0, idle_share=0.2)
        assert p == pytest.approx(0.2 * 10.0 + 0.5 * 40.0)

    def test_validation(self):
        board = LoadBoard()
        with pytest.raises(ConfigError):
            ComponentPowerModel(board, idle_w=-1.0, dynamic_w={})
        with pytest.raises(ConfigError):
            ComponentPowerModel(board, idle_w=1.0, dynamic_w={Component.CPU_CORES: -5.0})

    def test_signal_views(self):
        _, model = self.make(level=0.5)
        assert model.signal().value(5.0) == pytest.approx(30.0)
        assert model.component_signal(Component.CPU_CORES).value(5.0) == pytest.approx(20.0)


class TestLimitedSignal:
    def test_no_limit_passthrough(self):
        sig = LimitedSignal(ConstantSignal(100.0))
        assert sig.value(5.0) == 100.0

    def test_limit_applies_from_set_time(self):
        sig = LimitedSignal(ConstantSignal(100.0))
        sig.set_limit(10.0, 60.0)
        assert sig.value(5.0) == 100.0
        assert sig.value(15.0) == 60.0

    def test_limits_stack_chronologically(self):
        sig = LimitedSignal(ConstantSignal(100.0))
        sig.set_limit(10.0, 60.0)
        sig.set_limit(20.0, 80.0)
        assert sig.value(15.0) == 60.0
        assert sig.value(25.0) == 80.0
        assert sig.current_limit(25.0) == 80.0

    def test_out_of_order_rejected(self):
        sig = LimitedSignal(ConstantSignal(1.0))
        sig.set_limit(10.0, 5.0)
        with pytest.raises(ConfigError):
            sig.set_limit(5.0, 5.0)

    def test_nonpositive_limit_rejected(self):
        with pytest.raises(ConfigError):
            LimitedSignal(ConstantSignal(1.0)).set_limit(0.0, 0.0)


class TestThermalModel:
    def test_steady_state_at_constant_power(self):
        thermal = ThermalModel(ConstantSignal(100.0), ambient_c=25.0,
                               r_c_per_w=0.3, c_j_per_c=100.0)
        assert thermal.temperature(1000.0) == pytest.approx(25.0 + 30.0, rel=1e-3)

    def test_monotone_rise_after_power_step(self):
        board = LoadBoard()
        model = ComponentPowerModel(board, 40.0, {Component.GPU_SM: 80.0})
        thermal = ThermalModel(model.signal(), ambient_c=25.0)
        w = PhasedWorkload("w", [Phase("p", 100.0, {Component.GPU_SM: 1.0})])
        board.schedule(w, t_start=10.0)
        t = np.linspace(10.0, 60.0, 40)
        temps = thermal.temperature(t)
        assert np.all(np.diff(temps) > 0)  # steady climb, Figure 5 style

    def test_initial_condition_is_steady_state_of_initial_power(self):
        thermal = ThermalModel(ConstantSignal(50.0), ambient_c=25.0,
                               r_c_per_w=0.4, c_j_per_c=100.0)
        assert thermal.temperature(0.0) == pytest.approx(45.0)

    def test_validation(self):
        with pytest.raises(ConfigError):
            ThermalModel(ConstantSignal(1.0), r_c_per_w=0.0)


class TestBoardTrackingIntegral:
    def test_invalidates_on_schedule_change(self):
        board = LoadBoard()
        model = ComponentPowerModel(board, 10.0, {Component.CPU_CORES: 40.0})
        integral = BoardTrackingIntegral(model.signal(), board, dt=0.01)
        # Read while idle: 10 W x 10 s.
        assert integral.value(10.0) == pytest.approx(100.0, rel=1e-6)
        # Now a workload is scheduled over [0, 10]; cached idle history
        # must be discarded.
        board.schedule(cpu_workload(duration=10.0, level=1.0))
        assert integral.value(10.0) == pytest.approx(500.0, rel=1e-3)
