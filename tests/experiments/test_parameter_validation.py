"""The experiment entry points validate their parameters."""

import pytest

from repro.errors import ConfigError
from repro.experiments import fig1, fig2, fig8, rapl_overflow, table3


class TestParameterGates:
    def test_fig1_poll_interval_must_be_in_range(self):
        with pytest.raises(ConfigError):
            fig1.run(poll_interval_s=30.0)  # below the documented 60 s

    def test_fig2_interval_below_emon_floor_rejected(self):
        with pytest.raises(ConfigError):
            fig2.run(interval_s=0.1)  # EMON minimum is 560 ms

    def test_fig8_card_count_positive(self):
        with pytest.raises(ConfigError):
            fig8.run(cards=0)

    def test_table3_scale_positive(self):
        with pytest.raises(ConfigError):
            table3.run_scale(0)

    def test_table3_scale_bounded_by_machine(self):
        with pytest.raises(ConfigError):
            table3.run_scale(2048)  # one rack is 1024 nodes


class TestSmallScaleVariants:
    def test_fig8_shape_holds_at_16_cards(self):
        result = fig8.run(cards=16)
        assert result.compute_mean_w > 1.5 * result.datagen_mean_w

    def test_table3_intermediate_scale(self):
        report = table3.run_scale(256)  # 8 node cards
        assert report.agent_count == 8
        assert report.collection_s == pytest.approx(0.3982, abs=0.02)

    def test_overflow_sweep_custom_intervals(self):
        result = rapl_overflow.run(intervals=(1.0, 100.0))
        assert result.points[0].relative_error < 0.01
        assert result.points[1].relative_error > 0.2
