"""Integration tests: the figure experiments reproduce the paper's
qualitative shapes (who wins, rough factors, where crossovers fall)."""

import numpy as np
import pytest

from repro.experiments import fig1, fig3, fig4, fig5, fig6, fig7, fig8
from repro.experiments import overheads, rapl_overflow


class TestFig1:
    @pytest.fixture(scope="class")
    def result(self):
        return fig1.run()

    def test_idle_visible_before_and_after(self, result):
        assert result.idle.visible
        first, last = result.series.values[0], result.series.values[-1]
        assert first < result.idle.active_level * 0.6
        assert last < result.idle.active_level * 0.6

    def test_power_band_matches_figure(self, result):
        assert 700.0 < result.idle.idle_level < 900.0      # ~800 W shelf
        assert 1500.0 < result.idle.active_level < 1900.0  # ~1700 W plateau

    def test_coarse_sampling(self, result):
        assert result.samples < 20  # a handful of ~4-minute samples


class TestFig2:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.experiments import fig2

        return fig2.run(duration_s=600.0)

    def test_seven_domains(self, result):
        assert len(result.domains) == 7

    def test_chip_core_dominates(self, result):
        chip = result.domains["chip_core"].mean()
        assert all(chip >= result.domains[d].mean() for d in result.domains.names)

    def test_total_matches_bpm_output(self, result):
        assert result.agreement_with_bpm.relative_difference < 0.05

    def test_no_idle_shelf(self, result):
        assert not result.idle_samples_present

    def test_many_more_samples_than_envdb(self, result):
        # 560 ms vs 240 s sampling: ~2 orders of magnitude more points.
        assert result.samples > 400


class TestFig3:
    @pytest.fixture(scope="class")
    def result(self):
        return fig3.run()

    def test_idle_shelf_on_both_ends(self, result):
        assert result.idle_head_w == pytest.approx(result.idle_tail_w, abs=1.0)
        assert result.idle_head_w < 10.0

    def test_plateau_in_band(self, result):
        assert 38.0 < result.plateau_w < 52.0

    def test_rhythmic_drop_about_5w(self, result):
        assert 3.0 < result.drop_depth_w < 7.0

    def test_tiny_spikes_present(self, result):
        assert 0.5 < result.spike_height_w < 4.0


class TestFig4:
    @pytest.fixture(scope="class")
    def result(self):
        return fig4.run()

    def test_levels_off_near_55w(self, result):
        assert 52.0 < result.level_w < 58.0

    def test_gradual_ramp_of_about_5s(self, result):
        assert 2.0 < result.time_to_level_s < 8.0

    def test_monotone_smoothed_rise(self, result):
        window = 10
        smooth = np.convolve(result.series.values, np.ones(window) / window,
                             mode="valid")
        assert smooth[0] < smooth[-1] - 5.0


class TestFig5:
    @pytest.fixture(scope="class")
    def result(self):
        return fig5.run()

    def test_datagen_phase_near_idle(self, result):
        assert result.datagen_mean_w < 60.0

    def test_dramatic_jump_to_compute(self, result):
        assert result.compute_mean_w > 2.0 * result.datagen_mean_w
        assert 120.0 < result.compute_mean_w < 150.0

    def test_temperature_steadily_rises(self, result):
        assert result.temp_end_c > result.temp_start_c + 10.0
        assert result.temp_monotone_fraction > 0.95


class TestFig6:
    def test_all_three_paths_reachable(self):
        result = fig6.run()
        assert all(result.path_exists.values())

    def test_in_band_costlier_than_micras(self):
        result = fig6.run()
        assert result.path_costs["in-band"] > 100 * result.path_costs["micras"]

    def test_scif_symmetry(self):
        assert fig6.run().symmetric_scif


class TestFig7:
    @pytest.fixture(scope="class")
    def result(self):
        return fig7.run()

    def test_api_arm_higher(self, result):
        assert result.api_box.median > result.daemon_box.median

    def test_difference_slight_but_significant(self, result):
        diff = result.ttest.mean_difference
        assert 0.5 < diff < 4.0  # slight
        assert result.ttest.significant(alpha=0.01)

    def test_boxes_in_figure_band(self, result):
        # Figure 7's axis spans ~111-119 W.
        for box in (result.api_box, result.daemon_box):
            assert 109.0 < box.median < 119.0


class TestFig8:
    @pytest.fixture(scope="class")
    def result(self):
        return fig8.run(cards=128)

    def test_datagen_plateau_near_14kw(self, result):
        assert 13_000.0 < result.datagen_mean_w < 16_000.0

    def test_compute_plateau_near_25kw(self, result):
        assert 22_000.0 < result.compute_mean_w < 27_000.0

    def test_jump_at_100s(self, result):
        before = result.series.between(90.0, 98.0).mean()
        after = result.series.between(result.compute_start_s + 5.0,
                                      result.compute_start_s + 25.0).mean()
        assert after > before * 1.5


class TestOverheads:
    @pytest.fixture(scope="class")
    def result(self):
        return overheads.run()

    def test_paper_per_query_values(self, result):
        costs = result.costs
        assert costs["bgq-emon"].per_query_s == pytest.approx(1.10e-3, rel=0.02)
        assert costs["rapl-msr"].per_query_s == pytest.approx(0.03e-3, rel=0.02)
        assert costs["nvml"].per_query_s == pytest.approx(1.3e-3, rel=0.05)
        assert costs["phi-sysmgmt"].per_query_s == pytest.approx(14.2e-3, rel=0.02)
        assert costs["phi-micras"].per_query_s == pytest.approx(0.04e-3, rel=0.02)

    def test_ordering_matches_paper(self, result):
        assert result.ordering() == [
            "rapl-msr", "phi-micras", "bgq-emon", "nvml", "phi-sysmgmt"
        ]

    def test_duty_overheads(self, result):
        assert result.costs["bgq-emon"].overhead_percent == pytest.approx(0.196, rel=0.05)
        assert result.costs["nvml"].overhead_percent == pytest.approx(1.3, rel=0.05)
        assert result.costs["phi-sysmgmt"].overhead_percent == pytest.approx(14.2, rel=0.02)


class TestRaplOverflow:
    @pytest.fixture(scope="class")
    def result(self):
        return rapl_overflow.run()

    def test_wrap_period_near_65s_at_1kw(self, result):
        assert result.wrap_period_s == pytest.approx(65.536, rel=0.01)

    def test_accurate_below_wrap(self, result):
        for point in result.points:
            if point.interval_s <= 65.0:
                assert point.relative_error < 0.01

    def test_erroneous_above_wrap(self, result):
        bad = [p for p in result.points if p.interval_s >= 70.0]
        assert bad and all(p.relative_error > 0.25 for p in bad)

    def test_max_safe_interval_near_60s(self, result):
        assert 60.0 <= result.max_safe_interval() <= 65.536
