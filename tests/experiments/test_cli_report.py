"""Tests for the CLI entry point and the EXPERIMENTS.md generator."""

import pytest

from repro.__main__ import main as cli_main
from repro.experiments import ALL_EXPERIMENTS
from repro.experiments.report import _f6, _t1, _t2


class TestCli:
    def test_list_prints_all_experiments(self, capsys):
        assert cli_main(["list"]) == 0
        out = capsys.readouterr().out.split()
        assert set(out) == set(ALL_EXPERIMENTS)

    def test_single_experiment_runs(self, capsys):
        assert cli_main(["table2"]) == 0
        assert "RAPL" in capsys.readouterr().out

    def test_unknown_experiment_errors(self, capsys):
        assert cli_main(["fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_help(self, capsys):
        assert cli_main(["--help"]) == 0
        assert "python -m repro" in capsys.readouterr().out


class TestReportBlocks:
    def test_table_blocks_have_paper_and_measured(self):
        for factory in (_t1, _t2, _f6):
            block = factory()
            assert block.rows
            for quantity, paper, measured in block.rows:
                assert quantity and paper and measured

    def test_bench_paths_exist(self):
        import pathlib

        for factory in (_t1, _t2, _f6):
            bench = factory().bench
            assert pathlib.Path(bench).exists(), bench


class TestExperimentsMdUpToDate:
    def test_committed_file_has_all_sections(self):
        import pathlib

        text = pathlib.Path("EXPERIMENTS.md").read_text()
        for section in ("Table I", "Table II", "Table III",
                        "Figure 1", "Figure 7", "Figure 8",
                        "Per-query collection overheads", "RAPL counter overflow"):
            assert section in text, f"missing section {section!r}"
