"""Integration tests: the table experiments reproduce the paper's shape."""

import pytest

from repro.experiments import table1, table2, table3


class TestTable1:
    def test_only_universal_row_is_total_power(self):
        result = table1.run()
        assert result.only_universal_is_total_power

    def test_phi_richest_rapl_narrowest(self):
        counts = table1.run().availability_counts
        assert counts["Xeon Phi"] > counts["NVML"] > counts["Blue Gene/Q"] > counts["RAPL"]

    def test_render_nonempty(self):
        assert "Xeon Phi" in table1.run().rendered


class TestTable2:
    def test_four_rows(self):
        result = table2.run()
        assert len(result.rows) == 4
        assert result.rows[0][0] == "Package (PKG)"

    def test_all_counters_live(self):
        assert all(table2.run().live_counters.values())

    def test_addresses_match_sdm(self):
        addresses = table2.run().msr_addresses
        assert addresses["pkg"] == 0x611
        assert addresses["dram"] == 0x619


class TestTable3:
    @pytest.fixture(scope="class")
    def result(self):
        return table3.run()

    def test_runtime_constant_across_scales(self, result):
        runtimes = result.row("Application Runtime")
        assert all(r == pytest.approx(202.78, abs=0.2) for r in runtimes.values())

    def test_initialization_milliseconds_and_growing(self, result):
        init = result.row("Time for Initialization")
        assert 0.002 < init[32] < init[512] <= init[1024] < 0.005

    def test_collection_identical_at_all_scales(self, result):
        collection = result.row("Time for Collection")
        assert collection[32] == collection[512] == collection[1024]
        assert collection[32] == pytest.approx(0.39, abs=0.03)  # paper: 0.3871

    def test_finalize_jumps_at_1024(self, result):
        fin = result.row("Time for Finalize")
        assert fin[32] == pytest.approx(0.15, abs=0.02)   # paper: 0.1510
        assert fin[512] == pytest.approx(0.155, abs=0.02)  # paper: 0.1550
        assert fin[1024] == pytest.approx(0.33, abs=0.04)  # paper: 0.3347
        assert fin[1024] > 2.0 * fin[512]

    def test_total_under_half_percent(self, result):
        for report in result.reports.values():
            assert report.percent_of_runtime < 0.5  # paper: ~0.4 %

    def test_totals_match_paper_ordering(self, result):
        totals = result.row("Total Time for MonEQ")
        assert totals[32] < totals[512] < totals[1024]
        assert totals[1024] == pytest.approx(0.725, abs=0.05)  # paper: 0.7251
