"""One test per headline sentence of the paper.

A consolidated map from the paper's prose to the code that reproduces
it — the quickest way to audit the reproduction's coverage.  Each test
cites the section it checks.
"""

import numpy as np
import pytest

from repro.core import moneq
from repro.testbeds import multi_device_node, phi_node, rapl_node


class TestSectionI:
    def test_two_lines_of_code_on_any_platform(self):
        """§I: 'with as few as two lines of code on any of the hardware
        platforms mentioned in this paper one can easily obtain
        environmental data'."""
        node, _ = multi_device_node(seed=201)
        session = moneq.initialize(node)               # line 1
        node.events.run_until(node.clock.now + 5.0)
        result = moneq.finalize(session)               # line 2
        assert len(result.traces) == 3  # RAPL + NVML + Phi, one call each


class TestSectionIIA:
    def test_node_card_granularity_is_a_hard_floor(self):
        """§II-A: EMON 'can only collect data at the node card level
        (every 32 nodes) ... not possible to overcome in software'."""
        from repro.bgq.machine import BgqMachine
        from repro.sim.rng import RngRegistry

        machine = BgqMachine(racks=1, rng=RngRegistry(202), start_poller=False)
        board = machine.node_boards()[0]
        assert board.node_count == 32
        # The EMON interface has no per-card read — only board-level.
        emon = machine.emon(board.location)
        assert not hasattr(emon, "collect_card")

    def test_polling_interval_configurable_60_to_1800(self):
        """§II-A: '60-1,800 seconds'."""
        from repro.bgq.envdb import MAX_POLL_INTERVAL_S, MIN_POLL_INTERVAL_S

        assert (MIN_POLL_INTERVAL_S, MAX_POLL_INTERVAL_S) == (60.0, 1800.0)


class TestSectionIIB:
    def test_rapl_scope_is_whole_socket(self):
        """§II-B: 'it's not possible to collect data for individual
        cores' — the MSR file exposes no per-core energy registers."""
        from repro.rapl.msr import ENERGY_STATUS_MSR

        # Four domain registers exist; none are per-core.
        assert len(ENERGY_STATUS_MSR) == 4

    def test_msr_fastest_access_of_all_mechanisms(self):
        """§II-B: 'This is the fastest access time that we have seen for
        all of the hardware discussed in this paper.'"""
        from repro.bgq.emon import EMON_QUERY_LATENCY_S
        from repro.rapl.package import CpuPackage
        from repro.xeonphi.micras import MICRAS_READ_LATENCY_S
        from repro.xeonphi.sysmgmt import SYSMGMT_QUERY_LATENCY_S

        msr = CpuPackage.MSR_READ_LATENCY_S
        assert msr < MICRAS_READ_LATENCY_S
        assert msr < EMON_QUERY_LATENCY_S
        assert msr < SYSMGMT_QUERY_LATENCY_S
        assert msr < 1.3e-3  # NVML


class TestSectionIIC:
    def test_only_kepler_supports_power(self):
        """§II-C: 'The only NVIDIA GPUs which support power data
        collection are those based on the Kepler architecture.'"""
        from repro.nvml.device import FERMI_M2090, KEPLER_K20, KEPLER_K40

        assert KEPLER_K20.supports_power_readings
        assert KEPLER_K40.supports_power_readings
        assert not FERMI_M2090.supports_power_readings

    def test_board_scope_includes_memory(self):
        """§II-C: 'the power consumption reported is for the entire
        board including memory'."""
        from repro.testbeds import gpu_node
        from repro.workloads.base import Component, Phase, PhasedWorkload

        node, gpu, nvml = gpu_node(seed=203)
        mem_only = PhasedWorkload("m", [Phase("p", 60.0, {Component.GPU_MEM: 1.0})])
        gpu.board.schedule(mem_only, t_start=0.0)
        node.clock.advance_to(30.0)
        handle = nvml.device_get_handle_by_index(0)
        mw = nvml.device_get_power_usage(handle)
        # Pure memory load raises the reported figure far above idle.
        assert mw > (gpu.model.board_idle_w + 0.8 * gpu.model.mem_w) * 1000


class TestSectionIID:
    def test_api_pricier_than_daemon_in_both_currencies(self):
        """§II-D: the API costs 14.2 ms *and* raises card power; the
        daemon costs 0.04 ms and does not."""
        rig = phi_node(seed=204)
        baseline = float(rig.card.true_power(1.0))
        t0 = rig.node.clock.now
        rig.sysmgmt.query_power_w()
        api_cost = rig.node.clock.now - t0
        t0 = rig.node.clock.now
        rig.micras.read("power")
        daemon_cost = rig.node.clock.now - t0
        assert api_cost / daemon_cost > 100.0
        rig.sysmgmt.start_polling(1.0, t=10.0)
        assert float(rig.card.true_power(20.0)) > baseline

    def test_daemon_data_only_accessible_on_device(self):
        """§II-D: 'the data collected by the daemon is only accessible
        by the portion of code which is running on the device' — the
        pseudo-files live on the card's uOS filesystem, not the host's."""
        rig = phi_node(seed=205)
        assert rig.card.uos_vfs.exists("/sys/class/micras/power")
        assert not rig.node.vfs.exists("/sys/class/micras/power")


class TestSectionIII:
    def test_moneq_default_interval_is_hardware_minimum(self):
        """§III: 'MonEQ will pull data ... at the lowest polling
        interval possible for the given hardware.'"""
        node, _ = rapl_node(seed=206)
        session = moneq.initialize(node)
        assert session.interval_s == 0.060

    def test_costly_operations_outside_the_run(self):
        """§III: 'MonEQ [performs] its most costly operations when the
        application isn't running (i.e., before and after execution)' —
        per-tick cost is far below init and finalize."""
        node, _ = rapl_node(seed=207)
        result = moneq.profile_run(node, duration_s=10.0)
        per_tick = result.overhead.collection_s / max(result.overhead.ticks, 1)
        assert per_tick < result.overhead.initialize_s
        assert per_tick < result.overhead.finalize_s

    def test_memory_overhead_constant_with_scale(self):
        """§III: 'Memory overhead is essentially a constant with respect
        to scale.'"""
        from repro.experiments.table3 import run_scale

        small = run_scale(32)
        large = run_scale(1024)
        assert small.memory_bytes_per_agent == large.memory_bytes_per_agent > 0


class TestSectionIV:
    def test_total_power_is_the_only_universal_data_point(self):
        """§IV: 'Just about the only data point which is collectible on
        all of these platforms is total power consumption.'"""
        from repro.core.capability import universal_rows

        keys = [row.key for row in universal_rows()]
        assert keys == ["Total Power Consumption (Watts)/Total"]

    def test_granularity_differs_between_platforms(self):
        """§IV: 'For accelerators, this is the power consumption of the
        entire device, for a Blue Gene/Q, this is a node card (32
        nodes).'"""
        from repro.bgq.topology import COMPUTE_CARDS_PER_NODE_BOARD

        assert COMPUTE_CARDS_PER_NODE_BOARD == 32
