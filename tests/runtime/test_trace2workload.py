"""Integration tests: trace-driven workloads from SPMD programs."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.rapl.domains import RaplDomain
from repro.rapl.package import SANDY_BRIDGE, CpuPackage
from repro.runtime.launcher import Launcher
from repro.runtime.ops import Barrier, Compute, Recv, Send
from repro.runtime.trace2workload import busy_fraction_series, workload_from_program
from repro.sim.rng import RngRegistry
from repro.workloads.base import Component


def halo_program(compute_s=0.2, iterations=10, halo_bytes=4 << 20):
    def program(ctx):
        right = (ctx.rank + 1) % ctx.size
        left = (ctx.rank - 1) % ctx.size
        for it in range(iterations):
            yield Compute(compute_s)
            yield Send(dest=right, payload=None, nbytes=halo_bytes, tag=2 * it)
            yield Send(dest=left, payload=None, nbytes=halo_bytes, tag=2 * it + 1)
            yield Recv(source=left, tag=2 * it)
            yield Recv(source=right, tag=2 * it + 1)
        yield Barrier()

    return program


class TestBusyRecording:
    def test_compute_spans_recorded(self):
        def program(ctx):
            yield Compute(1.0)
            yield Compute(0.5)

        results = Launcher(program, size=1, record_busy=True).run()
        # Contiguous compute merges into one span.
        assert results[0].busy_spans == [(0.0, 1.5)]

    def test_recording_off_by_default(self):
        def program(ctx):
            yield Compute(1.0)

        results = Launcher(program, size=1).run()
        assert results[0].busy_spans == []

    def test_waits_are_not_busy(self):
        def program(ctx):
            if ctx.rank == 0:
                yield Compute(2.0)
                yield Send(dest=1, payload="x")
            else:
                yield Recv(source=0)  # waits ~2 s, idle

        results = Launcher(program, size=2, record_busy=True).run()
        rank1_busy = sum(t1 - t0 for t0, t1 in results[1].busy_spans)
        assert rank1_busy < 0.01


class TestBusyFractionSeries:
    def test_fraction_bounds_and_shape(self):
        results = Launcher(halo_program(), size=4, record_busy=True).run()
        starts, fraction = busy_fraction_series(results, bucket_s=0.05)
        assert np.all(fraction >= 0.0) and np.all(fraction <= 1.0)
        assert len(starts) == len(fraction)

    def test_fully_busy_program_is_all_ones(self):
        def program(ctx):
            yield Compute(1.0)

        results = Launcher(program, size=3, record_busy=True).run()
        _, fraction = busy_fraction_series(results, bucket_s=0.1)
        np.testing.assert_allclose(fraction, 1.0)

    def test_validation(self):
        with pytest.raises(ConfigError):
            busy_fraction_series([], bucket_s=0.1)


class TestWorkloadFromProgram:
    def test_halo_rhythm_appears_in_utilization(self):
        """The sync stall every iteration shows up as periodic dips —
        the program-derived analogue of Figure 3's rhythm.  Large halos
        make the post-send wire wait (an idle window of ~wire time per
        iteration) resolvable by the bucketing."""
        workload, results = workload_from_program(
            halo_program(compute_s=0.2, iterations=10, halo_bytes=1 << 30),
            size=4, component=Component.CPU_CORES, bucket_s=0.02,
        )
        t = np.arange(0.0, workload.duration, 0.01)
        u = workload.utilization(Component.CPU_CORES, t)
        assert u.max() > 0.9
        assert u.min() < 0.5  # dips during the exchange stalls
        # Roughly one dip per iteration.
        dips = np.sum((u[1:] < 0.5) & (u[:-1] >= 0.5))
        assert 5 <= dips <= 15

    def test_extra_components_scaled(self):
        workload, _ = workload_from_program(
            halo_program(), size=2, component=Component.CPU_CORES,
            extra_components={Component.CPU_DRAM: 0.5},
        )
        t = workload.duration / 2.0
        cores = workload.utilization(Component.CPU_CORES, t)
        dram = workload.utilization(Component.CPU_DRAM, t)
        assert dram == pytest.approx(0.5 * cores, abs=1e-9)

    def test_traced_workload_drives_a_device(self):
        """End-to-end: program trace -> workload -> RAPL package power."""
        workload, _ = workload_from_program(
            halo_program(compute_s=0.3, iterations=8), size=4,
            component=Component.CPU_CORES,
            extra_components={Component.CPU_DRAM: 0.4},
        )
        package = CpuPackage(SANDY_BRIDGE, rng=RngRegistry(67))
        package.board.schedule(workload, t_start=1.0)
        t = np.arange(1.0, 1.0 + workload.duration, 0.02)
        power = package.true_power(RaplDomain.PKG, t)
        assert power.max() > SANDY_BRIDGE.idle_w + 20.0
        assert power.min() >= SANDY_BRIDGE.idle_w - 1e-9
        assert power.max() - power.min() > 10.0  # the stalls are visible

    def test_metadata_recorded(self):
        workload, results = workload_from_program(
            halo_program(), size=4, component=Component.CPU_CORES,
        )
        assert workload.metadata["ranks"] == 4
        assert 0.0 < workload.metadata["mean_busy_fraction"] <= 1.0
        assert len(results) == 4

    def test_validation(self):
        with pytest.raises(ConfigError):
            workload_from_program(halo_program(), size=2,
                                  component=Component.CPU_CORES,
                                  peak_utilization=0.0)
