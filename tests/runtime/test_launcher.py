"""Unit and integration tests for the SPMD runtime."""

import pytest

from repro.errors import ConfigError, DeadlockError, RankError, RuntimeSimError
from repro.runtime.interconnect import BGQ_TORUS, CLUSTER_FDR_IB, Interconnect
from repro.runtime.launcher import Launcher, RankContext
from repro.runtime.ops import (
    ANY_SOURCE,
    Allreduce,
    Barrier,
    Bcast,
    Compute,
    Gather,
    Recv,
    Send,
)


class TestInterconnect:
    def test_ptp_time_postal_model(self):
        net = Interconnect(latency_s=1e-6, bandwidth_Bps=1e9)
        assert net.ptp_time(1000) == pytest.approx(1e-6 + 1e-6)

    def test_collective_log_rounds(self):
        net = BGQ_TORUS
        assert net.rounds(1) == 0
        assert net.rounds(2) == 1
        assert net.rounds(1024) == 10

    def test_messaging_rate_mmps_scale(self):
        # Small messages on the BG/Q torus: ~2 M messages/s/node.
        assert 1e6 < BGQ_TORUS.messaging_rate(32) < 5e6

    def test_validation(self):
        with pytest.raises(ConfigError):
            Interconnect(latency_s=-1.0, bandwidth_Bps=1.0)
        with pytest.raises(ConfigError):
            Interconnect(latency_s=0.0, bandwidth_Bps=0.0)
        with pytest.raises(ConfigError):
            BGQ_TORUS.ptp_time(-1)
        with pytest.raises(ConfigError):
            BGQ_TORUS.rounds(0)


class TestPointToPoint:
    def test_send_recv(self):
        def program(ctx):
            if ctx.rank == 0:
                yield Send(dest=1, payload={"a": 7}, tag=11)
                return "sent"
            data = yield Recv(source=0, tag=11)
            return data

        results = Launcher(program, size=2).run()
        assert results[0].value == "sent"
        assert results[1].value == {"a": 7}
        assert results[1].messages_received == 1

    def test_recv_before_send_blocks_then_completes(self):
        def program(ctx):
            if ctx.rank == 1:
                data = yield Recv(source=0)
                return data
            yield Compute(1.0)  # rank 1 blocks while rank 0 computes
            yield Send(dest=1, payload="late")

        results = Launcher(program, size=2).run()
        assert results[1].value == "late"
        assert results[1].finish_time >= 1.0  # waited for the send

    def test_tags_do_not_cross_match(self):
        def program(ctx):
            if ctx.rank == 0:
                yield Send(dest=1, payload="a", tag=1)
                yield Send(dest=1, payload="b", tag=2)
            else:
                second = yield Recv(source=0, tag=2)
                first = yield Recv(source=0, tag=1)
                return (first, second)

        results = Launcher(program, size=2).run()
        assert results[1].value == ("a", "b")

    def test_fifo_per_channel(self):
        def program(ctx):
            if ctx.rank == 0:
                for i in range(5):
                    yield Send(dest=1, payload=i)
            else:
                got = []
                for _ in range(5):
                    got.append((yield Recv(source=0)))
                return got

        assert Launcher(program, size=2).run()[1].value == [0, 1, 2, 3, 4]

    def test_any_source(self):
        def program(ctx):
            if ctx.rank == 0:
                got = []
                for _ in range(2):
                    got.append((yield Recv(source=ANY_SOURCE)))
                return sorted(got)
            yield Send(dest=0, payload=ctx.rank)

        assert Launcher(program, size=3).run()[0].value == [1, 2]

    def test_send_to_invalid_rank(self):
        def program(ctx):
            yield Send(dest=5)

        with pytest.raises(RankError):
            Launcher(program, size=2).run()

    def test_message_latency_advances_receiver_clock(self):
        big = 10_000_000  # 10 MB over ~20 GB/s ~ 0.5 ms

        def program(ctx):
            if ctx.rank == 0:
                yield Send(dest=1, payload=None, nbytes=big)
            else:
                yield Recv(source=0)

        results = Launcher(program, size=2).run()
        assert results[1].finish_time >= BGQ_TORUS.ptp_time(big)


class TestCollectives:
    def test_barrier_synchronizes_clocks(self):
        def program(ctx):
            yield Compute(float(ctx.rank))  # staggered entry
            yield Barrier()

        results = Launcher(program, size=4).run()
        times = {r.finish_time for r in results}
        assert len(times) == 1
        assert times.pop() >= 3.0

    def test_bcast_delivers_root_payload(self):
        def program(ctx):
            data = yield Bcast(root=1, payload="x" if ctx.rank == 1 else None)
            return data

        results = Launcher(program, size=3).run()
        assert all(r.value == "x" for r in results)

    def test_gather_collects_in_rank_order(self):
        def program(ctx):
            data = yield Gather(root=0, payload=ctx.rank * 10)
            return data

        results = Launcher(program, size=4).run()
        assert results[0].value == [0, 10, 20, 30]
        assert all(r.value is None for r in results[1:])

    def test_allreduce_sum(self):
        def program(ctx):
            total = yield Allreduce(payload=ctx.rank + 1)
            return total

        results = Launcher(program, size=4).run()
        assert all(r.value == 10 for r in results)

    def test_allreduce_custom_op(self):
        def program(ctx):
            biggest = yield Allreduce(payload=ctx.rank, op=max)
            return biggest

        assert Launcher(program, size=5).run()[0].value == 4

    def test_collective_costs_tree_time(self):
        def program(ctx):
            yield Barrier()

        results = Launcher(program, size=8, interconnect=CLUSTER_FDR_IB).run()
        assert results[0].finish_time >= 3 * CLUSTER_FDR_IB.latency_s


class TestFailureModes:
    def test_deadlock_detected_and_named(self):
        def program(ctx):
            yield Recv(source=(ctx.rank + 1) % 2)  # mutual waits, no sends

        with pytest.raises(DeadlockError, match="rank 0"):
            Launcher(program, size=2).run()

    def test_partial_barrier_deadlocks(self):
        def program(ctx):
            if ctx.rank == 0:
                yield Barrier()
            # rank 1 returns without entering

        with pytest.raises(DeadlockError, match="Barrier"):
            Launcher(program, size=2).run()

    def test_rank_exception_wrapped(self):
        def program(ctx):
            if ctx.rank == 1:
                raise ValueError("boom")
            yield Compute(0.1)

        with pytest.raises(RankError) as exc:
            Launcher(program, size=2).run()
        assert exc.value.rank == 1
        assert isinstance(exc.value.original, ValueError)

    def test_size_validated(self):
        with pytest.raises(RuntimeSimError):
            Launcher(lambda ctx: None, size=0)

    def test_plain_function_ranks_allowed(self):
        results = Launcher(lambda ctx: ctx.rank * 2, size=3).run()
        assert [r.value for r in results] == [0, 2, 4]


class TestDeterminism:
    def test_identical_runs(self):
        def program(ctx):
            if ctx.rank == 0:
                got = []
                for _ in range(4):
                    got.append((yield Recv(source=ANY_SOURCE)))
                return got
            yield Compute(0.001 * ctx.rank)
            yield Send(dest=0, payload=ctx.rank)

        a = Launcher(program, size=5).run()
        b = Launcher(program, size=5).run()
        assert [r.value for r in a] == [r.value for r in b]
        assert [r.finish_time for r in a] == [r.finish_time for r in b]


class TestMmpsStyleProgram:
    def test_pairwise_message_storm(self):
        """An MMPS-like exchange: neighbors trade many small messages;
        the achieved rate is within the interconnect's postal bound."""
        messages = 200

        def program(ctx):
            peer = ctx.rank ^ 1
            for i in range(messages):
                yield Send(dest=peer, payload=None, nbytes=32, tag=i)
            for i in range(messages):
                yield Recv(source=peer, tag=i)
            return "done"

        results = Launcher(program, size=2).run()
        elapsed = max(r.finish_time for r in results)
        rate = messages / elapsed
        assert rate <= BGQ_TORUS.messaging_rate(32) * 1.01
        assert rate > BGQ_TORUS.messaging_rate(32) * 0.3


class TestHeapScheduler:
    """The heap scheduler must reproduce the linear reference schedule
    exactly — same values, same times, same message counts."""

    @staticmethod
    def _equivalent(program, size, interconnect=BGQ_TORUS):
        a = Launcher(program, size=size, scheduler="linear",
                     interconnect=interconnect, record_busy=True).run()
        b = Launcher(program, size=size, scheduler="heap",
                     interconnect=interconnect, record_busy=True).run()
        assert [(r.value, r.finish_time, r.messages_sent, r.messages_received,
                 r.busy_spans) for r in a] == \
               [(r.value, r.finish_time, r.messages_sent, r.messages_received,
                 r.busy_spans) for r in b]
        return b

    def test_scheduler_name_validated(self):
        with pytest.raises(RuntimeSimError, match="scheduler"):
            Launcher(lambda ctx: None, size=1, scheduler="quantum")

    def test_any_source_fan_in_equivalent(self):
        def program(ctx):
            if ctx.rank == 0:
                got = []
                for _ in range(ctx.size - 1):
                    got.append((yield Recv(source=ANY_SOURCE, tag=3)))
                return sorted(got)
            yield Compute(1e-5 * ((ctx.rank * 7) % 5 + 1))
            yield Send(dest=0, payload=ctx.rank, tag=3,
                       nbytes=64 if ctx.rank % 2 else 65536)

        results = self._equivalent(program, size=16)
        assert results[0].value == list(range(1, 16))

    def test_mixed_collectives_and_ptp_equivalent(self):
        def program(ctx):
            yield Compute(1e-6 * (ctx.rank % 3))
            peer = ctx.rank ^ 1
            for i in range(5):
                yield Send(dest=peer, payload=(ctx.rank, i), tag=i)
            got = []
            for i in range(5):
                got.append((yield Recv(source=peer, tag=i)))
            yield Barrier()
            total = yield Allreduce(ctx.rank, op=lambda x, y: x + y)
            return (got, total)

        self._equivalent(program, size=8)

    def test_same_source_out_of_order_arrivals(self):
        """Two sends from one source where the second *arrives* first
        (big message then small): non-overtaking order must hold, so
        the ANY_SOURCE head index must track queue heads, not arrivals."""
        def program(ctx):
            if ctx.rank == 0:
                first = yield Recv(source=ANY_SOURCE, tag=0)
                second = yield Recv(source=ANY_SOURCE, tag=0)
                return [first, second]
            yield Send(dest=0, payload="big", tag=0, nbytes=10_000_000)
            yield Send(dest=0, payload="small", tag=0, nbytes=8)

        results = self._equivalent(program, size=2)
        assert results[0].value == ["big", "small"]

    def test_deadlock_report_names_every_blocked_rank(self):
        """The report lists each blocked rank with its local time and
        what it waits on — (source, tag) or the collective."""
        def program(ctx):
            if ctx.rank == 0:
                yield Compute(0.25)
                yield Recv(source=2, tag=7)
            elif ctx.rank == 1:
                yield Recv(source=ANY_SOURCE, tag=9)
            else:
                yield Barrier()

        with pytest.raises(DeadlockError) as err:
            Launcher(program, size=3).run()
        message = str(err.value)
        assert "rank 0 at t=0.25s waiting on recv(source=2, tag=7)" in message
        assert "rank 1 at t=0s waiting on recv(source=ANY_SOURCE, tag=9)" \
            in message
        assert "rank 2 at t=0s inside Barrier" in message

    def test_deadlock_equivalent_across_schedulers(self):
        def program(ctx):
            yield Recv(source=(ctx.rank + 1) % ctx.size, tag=1)

        messages = []
        for scheduler in ("linear", "heap"):
            with pytest.raises(DeadlockError) as err:
                Launcher(program, size=4, scheduler=scheduler).run()
            messages.append(str(err.value))
        assert messages[0] == messages[1]

    def test_launcher_reusable_after_run(self):
        def program(ctx):
            yield Send(dest=(ctx.rank + 1) % ctx.size, payload=ctx.rank, tag=0)
            return (yield Recv(source=ANY_SOURCE, tag=0))

        launcher = Launcher(program, size=4)
        assert [r.value for r in launcher.run()] == \
               [r.value for r in launcher.run()]


class TestAutoScheduler:
    """``scheduler="auto"`` resolves to the linear scan below the
    measured crossover and to the heap at or above it — same schedule
    either way."""

    def test_resolution_by_size(self):
        from repro.runtime.launcher import AUTO_HEAP_MIN_RANKS

        def program(ctx):
            return ctx.rank
            yield

        small = Launcher(program, size=AUTO_HEAP_MIN_RANKS - 1)
        large = Launcher(program, size=AUTO_HEAP_MIN_RANKS)
        assert small.scheduler == "auto"  # the default
        assert small.effective_scheduler == "linear"
        assert large.effective_scheduler == "heap"

    def test_explicit_choice_not_overridden(self):
        def program(ctx):
            return ctx.rank
            yield

        assert Launcher(program, size=2,
                        scheduler="heap").effective_scheduler == "heap"
        assert Launcher(program, size=4096,
                        scheduler="linear").effective_scheduler == "linear"

    def test_auto_matches_both_references(self):
        def program(ctx):
            peer = ctx.rank ^ 1
            yield Send(dest=peer, payload=ctx.rank, tag=0, nbytes=64)
            got = yield Recv(source=peer, tag=0)
            yield Barrier()
            return got

        outcomes = [
            [(r.value, r.finish_time) for r in
             Launcher(program, size=8, scheduler=scheduler).run()]
            for scheduler in ("auto", "heap", "linear")
        ]
        assert outcomes[0] == outcomes[1] == outcomes[2]
