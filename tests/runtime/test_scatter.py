"""Unit tests for the Scatter collective."""

import pytest

from repro.errors import RankError, RuntimeSimError
from repro.runtime.launcher import Launcher
from repro.runtime.ops import Gather, Scatter


class TestScatter:
    def test_root_payload_split_by_rank(self):
        def program(ctx):
            data = [i * i for i in range(ctx.size)] if ctx.rank == 1 else None
            piece = yield Scatter(root=1, payload=data)
            return piece

        results = Launcher(program, size=4).run()
        assert [r.value for r in results] == [0, 1, 4, 9]

    def test_scatter_then_gather_roundtrip(self):
        def program(ctx):
            data = list(range(100, 100 + ctx.size)) if ctx.rank == 0 else None
            piece = yield Scatter(root=0, payload=data)
            collected = yield Gather(root=0, payload=piece * 2)
            return collected

        results = Launcher(program, size=3).run()
        assert results[0].value == [200, 202, 204]

    def test_wrong_length_payload_rejected(self):
        def program(ctx):
            data = [1, 2] if ctx.rank == 0 else None  # size is 3
            yield Scatter(root=0, payload=data)

        with pytest.raises(RuntimeSimError):
            Launcher(program, size=3).run()

    def test_scatter_synchronizes(self):
        from repro.runtime.ops import Compute

        def program(ctx):
            yield Compute(float(ctx.rank))
            yield Scatter(root=0, payload=[0] * ctx.size if ctx.rank == 0 else None)

        results = Launcher(program, size=3).run()
        assert len({r.finish_time for r in results}) == 1
