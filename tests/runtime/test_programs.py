"""Integration tests for the ready-made SPMD programs."""

import pytest

from repro.errors import ConfigError
from repro.runtime.interconnect import BGQ_TORUS, CLUSTER_FDR_IB
from repro.runtime.programs import run_halo_exchange, run_mmps, run_reduction


class TestMmpsProgram:
    def test_achieved_rate_near_postal_model(self):
        result = run_mmps(ranks=2, messages_per_rank=2000, message_bytes=32)
        # The runtime charges injection overhead per message; drain and
        # barrier add a tail, so agreement is high but < 1.
        assert 0.5 < result.model_agreement <= 1.01

    def test_millions_of_messages_per_second(self):
        result = run_mmps(ranks=2, messages_per_rank=2000, message_bytes=32)
        assert result.achieved_rate_per_rank > 1e6  # the benchmark's name

    def test_large_messages_slower(self):
        small = run_mmps(messages_per_rank=500, message_bytes=32)
        large = run_mmps(messages_per_rank=500, message_bytes=1 << 20)
        assert large.achieved_rate_per_rank < small.achieved_rate_per_rank / 10

    def test_scales_to_many_pairs(self):
        result = run_mmps(ranks=8, messages_per_rank=200)
        assert result.elapsed_s > 0
        assert result.ranks == 8

    def test_odd_ranks_rejected(self):
        with pytest.raises(ConfigError):
            run_mmps(ranks=3)
        with pytest.raises(ConfigError):
            run_mmps(ranks=2, messages_per_rank=0)


class TestHaloExchange:
    def test_compute_dominates_at_coarse_grain(self):
        result = run_halo_exchange(ranks=4, iterations=10, compute_s=0.5)
        assert result.compute_fraction > 0.9

    def test_communication_tax_grows_with_halo(self):
        small = run_halo_exchange(iterations=10, halo_bytes=1024)
        big = run_halo_exchange(iterations=10, halo_bytes=64 * 1024 * 1024)
        assert big.elapsed_s > small.elapsed_s
        assert big.compute_fraction < small.compute_fraction

    def test_all_ranks_finish_together(self):
        result = run_halo_exchange(ranks=6, iterations=5)
        times = {r.finish_time for r in result.per_rank}
        assert len(times) == 1  # trailing barrier

    def test_slower_network_costs_more(self):
        fast = run_halo_exchange(iterations=10, halo_bytes=8 << 20,
                                 interconnect=BGQ_TORUS)
        slow = run_halo_exchange(iterations=10, halo_bytes=8 << 20,
                                 interconnect=CLUSTER_FDR_IB)
        assert slow.elapsed_s > fast.elapsed_s

    def test_validation(self):
        with pytest.raises(ConfigError):
            run_halo_exchange(ranks=1)
        with pytest.raises(ConfigError):
            run_halo_exchange(iterations=0)


class TestReduction:
    def test_allreduce_of_normalized_ranks(self):
        # Round 1: sum((r+1)/P) = (P+1)/2; later rounds keep averaging.
        result = run_reduction(ranks=4, rounds=1)
        assert result.final_value == pytest.approx(2.5)

    def test_rounds_cost_time(self):
        short = run_reduction(rounds=2)
        long = run_reduction(rounds=20)
        assert long.elapsed_s > short.elapsed_s

    def test_single_rank_degenerates_gracefully(self):
        result = run_reduction(ranks=1, rounds=3, compute_s=0.1)
        assert result.elapsed_s >= 0.3

    def test_validation(self):
        with pytest.raises(ConfigError):
            run_reduction(ranks=0)
