"""Unit tests for the root-only Reduce collective."""

import pytest

from repro.runtime.launcher import Launcher
from repro.runtime.ops import Reduce


class TestReduce:
    def test_sum_delivered_to_root_only(self):
        def program(ctx):
            result = yield Reduce(root=2, payload=ctx.rank + 1)
            return result

        results = Launcher(program, size=4).run()
        assert results[2].value == 10
        assert all(results[i].value is None for i in (0, 1, 3))

    def test_custom_op(self):
        def program(ctx):
            result = yield Reduce(root=0, payload=ctx.rank, op=max)
            return result

        assert Launcher(program, size=5).run()[0].value == 4

    def test_reduce_synchronizes(self):
        from repro.runtime.ops import Compute

        def program(ctx):
            yield Compute(float(ctx.rank))
            yield Reduce(root=0, payload=1)

        results = Launcher(program, size=3).run()
        assert len({r.finish_time for r in results}) == 1

    def test_matches_allreduce_at_root(self):
        from repro.runtime.ops import Allreduce

        def reduce_program(ctx):
            return (yield Reduce(root=0, payload=ctx.rank * 3))

        def allreduce_program(ctx):
            return (yield Allreduce(payload=ctx.rank * 3))

        reduced = Launcher(reduce_program, size=4).run()[0].value
        allreduced = Launcher(allreduce_program, size=4).run()[0].value
        assert reduced == allreduced
