"""Span tracing: nesting, deterministic timing, bounds, reset."""

import pytest

from repro.errors import ObservabilityError
from repro.obs.tracing import Tracer, get_tracer
from repro.sim.clock import VirtualClock


class TestTiming:
    def test_span_measures_virtual_time(self):
        clock = VirtualClock()
        tracer = Tracer(clock)
        with tracer.span("work"):
            clock.advance(2.5)
        (span,) = tracer.finished("work")
        assert span.t_start == 0.0
        assert span.t_end == 2.5
        assert span.duration_s == 2.5

    def test_timing_is_deterministic(self):
        def run() -> list[tuple[float, float]]:
            clock = VirtualClock()
            tracer = Tracer()
            tracer.bind_clock(clock)
            for i in range(3):
                with tracer.span("step"):
                    clock.advance(0.125 * (i + 1))
            return [(s.t_start, s.t_end) for s in tracer.finished()]

        assert run() == run()

    def test_unbound_tracer_records_zero_duration_structure(self):
        tracer = Tracer()
        with tracer.span("work"):
            pass
        (span,) = tracer.finished()
        assert span.duration_s == 0.0
        assert span.name == "work"

    def test_per_span_clock_override(self):
        bound, local = VirtualClock(), VirtualClock()
        tracer = Tracer(bound)
        with tracer.span("work", clock=local):
            local.advance(1.0)
            bound.advance(10.0)
        (span,) = tracer.finished()
        assert span.duration_s == 1.0

    def test_total_time_s_sums_by_name(self):
        clock = VirtualClock()
        tracer = Tracer(clock)
        for _ in range(3):
            with tracer.span("tick"):
                clock.advance(0.5)
        with tracer.span("other"):
            clock.advance(9.0)
        assert tracer.total_time_s("tick") == pytest.approx(1.5)


class TestNesting:
    def test_depth_and_parent_recorded(self):
        tracer = Tracer(VirtualClock())
        with tracer.span("outer"):
            assert tracer.depth == 1
            with tracer.span("inner"):
                assert tracer.depth == 2
        inner, outer = tracer.finished()  # completion order: inner first
        assert inner.name == "inner" and inner.depth == 1
        assert inner.parent == "outer"
        assert outer.depth == 0 and outer.parent is None

    def test_out_of_order_close_raises(self):
        tracer = Tracer(VirtualClock())
        outer = tracer.span("outer")
        inner = tracer.span("inner")
        outer.__enter__()
        inner.__enter__()
        with pytest.raises(ObservabilityError, match="out of order"):
            outer.__exit__(None, None, None)

    def test_decorator_wraps_call(self):
        clock = VirtualClock()
        tracer = Tracer(clock)

        @tracer.trace("timed", kind="test")
        def work(x):
            clock.advance(1.0)
            return x * 2

        assert work(21) == 42
        (span,) = tracer.finished("timed")
        assert span.duration_s == 1.0
        assert span.attrs["kind"] == "test"

    def test_decorator_default_name_is_qualname(self):
        tracer = Tracer()

        @tracer.trace()
        def my_function():
            return 1

        my_function()
        assert tracer.finished()[0].name.endswith("my_function")


class TestAttributesAndErrors:
    def test_attrs_recorded(self):
        tracer = Tracer()
        with tracer.span("work", nodes=32) as span:
            span.set_attr("ticks", 7)
        (record,) = tracer.finished()
        assert record.attrs == {"nodes": 32, "ticks": 7}

    def test_exception_annotates_and_propagates(self):
        tracer = Tracer(VirtualClock())
        with pytest.raises(ValueError):
            with tracer.span("work"):
                raise ValueError("boom")
        (span,) = tracer.finished()
        assert span.attrs["error"] == "ValueError"
        assert tracer.depth == 0  # stack unwound


class TestBounds:
    def test_buffer_bound_drops_and_counts(self):
        tracer = Tracer(VirtualClock(), max_spans=3)
        for _ in range(5):
            with tracer.span("s"):
                pass
        assert len(tracer.finished()) == 3
        assert tracer.spans_started == 5
        assert tracer.spans_dropped == 2

    def test_nonpositive_max_spans_raises(self):
        with pytest.raises(ObservabilityError):
            Tracer(max_spans=0)

    def test_reset_clears_finished_and_counters(self):
        tracer = Tracer(VirtualClock(), max_spans=2)
        for _ in range(4):
            with tracer.span("s"):
                pass
        tracer.reset()
        assert tracer.finished() == []
        assert tracer.spans_started == 0
        assert tracer.spans_dropped == 0
        with tracer.span("after"):
            pass
        assert len(tracer.finished()) == 1

    def test_reset_keeps_open_spans_live(self):
        tracer = Tracer(VirtualClock())
        span = tracer.span("long_lived")
        span.__enter__()
        tracer.reset()
        assert tracer.spans_started == 1  # the still-open span
        span.__exit__(None, None, None)
        assert [s.name for s in tracer.finished()] == ["long_lived"]


class TestRender:
    def test_render_indents_by_depth(self):
        clock = VirtualClock()
        tracer = Tracer(clock)
        with tracer.span("outer"):
            with tracer.span("inner", nodes=2):
                clock.advance(1.0)
        lines = tracer.render().splitlines()
        assert lines[0].startswith("  inner: ")
        assert "[nodes=2]" in lines[0]
        assert lines[1].startswith("outer: ")


def test_global_tracer_is_stable():
    assert get_tracer() is get_tracer()
