"""SelfProfiler: Table III methodology applied to our own collectors."""

import pytest

from repro.errors import ObservabilityError
from repro.obs import SelfProfiler
from repro.obs.instruments import collector
from repro.sim.clock import VirtualClock


def test_profile_window_attributes_queries_to_mechanisms():
    clock = VirtualClock()
    emon = collector("emon")
    msr = collector("rapl_msr")
    emon.record_query(1.10e-3)  # outside the window: must not count
    with SelfProfiler(clock) as prof:
        for _ in range(4):
            emon.record_query(1.10e-3)
            clock.advance(0.560)
        for _ in range(10):
            msr.record_query(0.03e-3)
            clock.advance(0.060)
    report = prof.report
    assert report.window_s == pytest.approx(4 * 0.560 + 10 * 0.060)
    assert report.mechanism("emon").queries == 4
    assert report.mechanism("emon").collection_s == pytest.approx(4 * 1.10e-3)
    assert report.mechanism("rapl_msr").queries == 10
    assert report.total_queries == 14


def test_percent_of_window_matches_paper_arithmetic():
    # EMON at its floor interval: 1.10 ms / 560 ms ~= 0.196 % (paper §III).
    clock = VirtualClock()
    emon = collector("emon")
    with SelfProfiler(clock) as prof:
        for _ in range(100):
            emon.record_query(1.10e-3)
            clock.advance(0.560)
    pct = prof.report.mechanism("emon").percent_of(prof.report.window_s)
    assert pct == pytest.approx(100 * 1.10e-3 / 0.560, rel=1e-6)
    assert prof.report.percent_of_window == pytest.approx(pct)


def test_unknown_mechanism_raises():
    clock = VirtualClock()
    with SelfProfiler(clock) as prof:
        clock.advance(1.0)
    with pytest.raises(ObservabilityError):
        prof.report.mechanism("never_ran")


def test_untouched_mechanisms_omitted():
    clock = VirtualClock()
    ipmb = collector("ipmb")
    with SelfProfiler(clock) as prof:
        ipmb.record_query(22e-3)
        clock.advance(1.0)
    mechanisms = [c.mechanism for c in prof.report.collectors]
    assert mechanisms == ["ipmb"]


def test_table_rows_and_render():
    clock = VirtualClock()
    nvml = collector("nvml")
    with SelfProfiler(clock) as prof:
        nvml.record_query(1.3e-3)
        clock.advance(0.060)
    rows = prof.report.as_table_rows()
    assert rows[-1]["Mechanism"] == "total"
    assert rows[0]["Queries"] == 1
    text = prof.report.render()
    assert "nvml" in text and "total" in text


def test_zero_window_reports_zero_percent():
    clock = VirtualClock()
    emon = collector("emon")
    with SelfProfiler(clock) as prof:
        emon.record_query(1.10e-3)
    assert prof.report.window_s == 0.0
    assert prof.report.percent_of_window == 0.0
