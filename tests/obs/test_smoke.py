"""Tier-1 smoke: the instrumented pipelines feed every metric family.

Runs the Figure 1 pipeline plus one exercise per vendor mechanism (the
same set ``python -m repro obs dump`` uses) and asserts the exporter
emits every documented family with non-zero query counters for all four
vendor platforms.
"""

import pytest

import repro.obs as obs
from repro.obs import demo
from repro.obs.instruments import COLLECTOR_QUERIES, VENDOR_MECHANISMS

#: Every family docs/observability.md promises.
EXPECTED_FAMILIES = (
    "repro_collector_queries_total",
    "repro_collector_query_seconds_total",
    "repro_collector_query_latency_seconds",
    "repro_collector_errors_total",
    "repro_rapl_wraparounds_total",
    "repro_rapl_wrap_corrections_total",
    "repro_envdb_polls_total",
    "repro_envdb_records_total",
    "repro_envdb_query_rows_total",
    "repro_store_batches_total",
    "repro_store_batch_records",
    "repro_store_records_total",
    "repro_store_dropped_records_total",
    "repro_store_queries_total",
    "repro_store_query_rows_total",
    "repro_store_cache_hits_total",
    "repro_store_cache_misses_total",
    "repro_store_cache_invalidations_total",
    "repro_scif_messages_total",
    "repro_scif_bytes_total",
    "repro_moneq_sessions_started_total",
    "repro_moneq_sessions_finalized_total",
    "repro_moneq_ticks_total",
    "repro_moneq_records_total",
    "repro_moneq_buffer_fill_ratio",
    "repro_moneq_buffer_full_total",
    "repro_launcher_runs_total",
    "repro_launcher_ranks_total",
    "repro_launcher_messages_total",
    "repro_launcher_errors_total",
)


@pytest.mark.tier1
def test_instrumented_run_emits_all_expected_families():
    summaries = demo.exercise_all()
    assert set(summaries) == set(demo.EXERCISES)

    text = obs.dump()
    for family in EXPECTED_FAMILIES:
        assert f"# TYPE {family} " in text, f"family {family} missing from dump"

    # Acceptance: non-zero query counters for all four vendor platforms.
    for vendor, mechanisms in VENDOR_MECHANISMS.items():
        total = sum(COLLECTOR_QUERIES.value(m) for m in mechanisms)
        assert total > 0, f"no queries recorded for vendor {vendor}"

    # The BG/Q pipelines polled their environmental databases:
    # 11 sweeps in the fig1 exercise + 4 in the store exercise.
    assert "repro_envdb_polls_total 15" in text


@pytest.mark.tier1
def test_fig1_pipeline_counts_envdb_activity():
    from repro.experiments import fig1

    result = fig1.run()
    assert result.idle.visible
    registry = obs.get_registry()
    assert registry.get("repro_envdb_polls_total").value() == 11
    assert COLLECTOR_QUERIES.value("envdb") >= 1
    # 4 tables x 32 boards x 11 sweeps of ingest.
    records = registry.get("repro_envdb_records_total")
    assert sum(records.samples().values()) == 4 * 32 * 11
