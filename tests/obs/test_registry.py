"""Registry semantics: get-or-create, reset isolation, merging."""

import pytest

import repro.obs as obs
from repro.errors import ObservabilityError
from repro.obs.registry import MetricsRegistry, get_registry


class TestDeclaration:
    def test_get_or_create_returns_same_family(self):
        r = MetricsRegistry()
        a = r.counter("repro_q_total", "t", labels=("mechanism",))
        b = r.counter("repro_q_total", "t", labels=("mechanism",))
        assert a is b

    def test_redeclare_different_kind_raises(self):
        r = MetricsRegistry()
        r.counter("repro_x_total", "t")
        with pytest.raises(ObservabilityError, match="redeclared"):
            r.gauge("repro_x_total", "t")

    def test_redeclare_different_labels_raises(self):
        r = MetricsRegistry()
        r.counter("repro_x_total", "t", labels=("a",))
        with pytest.raises(ObservabilityError, match="labels"):
            r.counter("repro_x_total", "t", labels=("b",))

    def test_redeclare_histogram_different_buckets_raises(self):
        r = MetricsRegistry()
        r.histogram("repro_lat", "t", buckets=(0.1, 1.0))
        with pytest.raises(ObservabilityError, match="buckets"):
            r.histogram("repro_lat", "t", buckets=(0.2, 1.0))

    def test_redeclare_histogram_same_buckets_ok(self):
        r = MetricsRegistry()
        a = r.histogram("repro_lat", "t", buckets=(0.1, 1.0))
        b = r.histogram("repro_lat", "t", buckets=(0.1, 1.0))
        c = r.histogram("repro_lat", "t")  # buckets omitted: no check
        assert a is b is c

    def test_get_and_contains(self):
        r = MetricsRegistry()
        family = r.counter("repro_x_total", "t")
        assert r.get("repro_x_total") is family
        assert "repro_x_total" in r
        assert "repro_missing" not in r
        with pytest.raises(ObservabilityError):
            r.get("repro_missing")


class TestReset:
    def test_reset_zeroes_samples(self):
        r = MetricsRegistry()
        c = r.counter("repro_x_total", "t")
        h = r.histogram("repro_lat", "t", buckets=(1.0,))
        c.inc(5)
        h.observe(0.5)
        r.reset()
        assert c.value() == 0.0
        assert h.child().count == 0
        assert h.child().sum == 0.0

    def test_cached_child_handles_survive_reset(self):
        # The load-bearing property: collectors cache children at import.
        r = MetricsRegistry()
        family = r.counter("repro_x_total", "t", labels=("mechanism",))
        handle = family.labels("emon")
        handle.inc(7)
        r.reset()
        assert family.value("emon") == 0.0
        handle.inc()  # the pre-reset handle must still be wired in
        assert family.value("emon") == 1.0

    def test_global_registry_is_never_replaced(self):
        before = get_registry()
        obs.reset()
        assert get_registry() is before

    def test_reset_isolates_tests_sharing_the_global_registry(self):
        from repro.obs.instruments import collector

        instrument = collector("reset_isolation_probe")
        instrument.count_query(3)
        assert instrument.queries == 3.0
        obs.reset()
        assert instrument.queries == 0.0


class TestCollect:
    def test_collect_snapshots_plain_data(self):
        r = MetricsRegistry()
        r.counter("repro_x_total", "t", labels=("m",)).labels("a").inc(2)
        r.histogram("repro_lat", "t", buckets=(1.0,)).observe(0.5)
        snap = r.collect()
        assert snap["repro_x_total"][("a",)] == 2.0
        hist = snap["repro_lat"][()]
        assert hist["count"] == 1
        assert hist["counts"][-1] == 1


class TestMerge:
    def _make(self, queries: float, lat: float, fill: float) -> MetricsRegistry:
        r = MetricsRegistry()
        r.counter("repro_q_total", "t", labels=("m",)).labels("emon").inc(queries)
        r.histogram("repro_lat", "t", buckets=(0.01, 0.1)).observe(lat)
        r.gauge("repro_fill", "t").set(fill)
        return r

    def test_counters_and_histograms_add_gauges_last_write(self):
        a = self._make(2, 0.005, 0.25)
        b = self._make(3, 0.05, 0.75)
        a.merge_from(b)
        assert a.get("repro_q_total").value("emon") == 5.0
        child = a.get("repro_lat").child()
        assert child.count == 2
        assert child.sum == pytest.approx(0.055)
        assert child.cumulative_counts() == [1, 2, 2]
        assert a.get("repro_fill").value() == 0.75

    def test_merged_is_sum_of_parts(self):
        parts = [self._make(i + 1, 0.005 * (i + 1), 0.1 * i) for i in range(3)]
        total = MetricsRegistry.merged(*parts)
        assert total.get("repro_q_total").value("emon") == 6.0
        assert total.get("repro_lat").child().count == 3

    def test_merge_into_empty_creates_families(self):
        a = MetricsRegistry()
        b = self._make(4, 0.02, 0.5)
        a.merge_from(b)
        assert a.get("repro_q_total").value("emon") == 4.0

    def test_merge_incompatible_kind_raises(self):
        a = MetricsRegistry()
        a.gauge("repro_q_total", "t", labels=("m",))
        b = MetricsRegistry()
        b.counter("repro_q_total", "t", labels=("m",))
        with pytest.raises(ObservabilityError):
            a.merge_from(b)

    def test_merge_does_not_mutate_source(self):
        a = self._make(2, 0.005, 0.25)
        b = self._make(3, 0.05, 0.75)
        a.merge_from(b)
        assert b.get("repro_q_total").value("emon") == 3.0
        assert b.get("repro_lat").child().count == 1
