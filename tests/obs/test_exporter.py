"""Prometheus text exposition format of the exporter."""

import re

from repro.obs.metrics import Counter, Gauge, Histogram, render_prometheus
from repro.obs.registry import MetricsRegistry

#: A valid sample line: name, optional {labels}, space, value.
SAMPLE_RE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? (NaN|[+-]Inf|-?[0-9.e+-]+)$"
)


def test_counter_family_block():
    c = Counter("repro_queries_total", "Queries issued")
    c.inc(3)
    text = render_prometheus([c])
    assert text == (
        "# HELP repro_queries_total Queries issued\n"
        "# TYPE repro_queries_total counter\n"
        "repro_queries_total 3\n"
    )


def test_labeled_samples_sorted_by_label_tuple():
    c = Counter("repro_q_total", "t", label_names=("mechanism",))
    c.labels("nvml").inc(2)
    c.labels("emon").inc(1)
    lines = render_prometheus([c]).splitlines()
    assert lines[2] == 'repro_q_total{mechanism="emon"} 1'
    assert lines[3] == 'repro_q_total{mechanism="nvml"} 2'


def test_gauge_type_line():
    g = Gauge("repro_fill_ratio", "t")
    g.set(0.25)
    lines = render_prometheus([g]).splitlines()
    assert "# TYPE repro_fill_ratio gauge" in lines
    assert "repro_fill_ratio 0.25" in lines


def test_histogram_buckets_sum_count():
    h = Histogram("repro_lat_seconds", "t", buckets=(0.01, 0.1))
    h.observe(0.005)
    h.observe(0.05)
    lines = render_prometheus([h]).splitlines()
    assert 'repro_lat_seconds_bucket{le="0.01"} 1' in lines
    assert 'repro_lat_seconds_bucket{le="0.1"} 2' in lines
    assert 'repro_lat_seconds_bucket{le="+Inf"} 2' in lines
    assert "repro_lat_seconds_sum 0.055" in lines
    assert "repro_lat_seconds_count 2" in lines


def test_histogram_le_renders_after_other_labels():
    h = Histogram("repro_lat_seconds", "t", buckets=(1.0,),
                  label_names=("mechanism",))
    h.labels("ipmb").observe(0.022)
    text = render_prometheus([h])
    assert 'repro_lat_seconds_bucket{mechanism="ipmb",le="1"} 1' in text


def test_label_values_escaped():
    c = Counter("repro_q_total", "t", label_names=("loc",))
    c.labels('R00-"M0"\n\\end').inc()
    text = render_prometheus([c])
    assert '{loc="R00-\\"M0\\"\\n\\\\end"}' in text


def test_help_newlines_escaped():
    c = Counter("repro_q_total", "line one\nline two")
    text = render_prometheus([c])
    assert "# HELP repro_q_total line one\\nline two" in text


def test_every_sample_line_is_well_formed():
    registry = MetricsRegistry()
    c = registry.counter("repro_a_total", "t", labels=("x",))
    c.labels("v1").inc(2.5)
    registry.gauge("repro_b", "t").set(-1.5)
    registry.histogram("repro_c_seconds", "t", buckets=(0.1,)).observe(0.2)
    for line in registry.render().splitlines():
        if line.startswith("#"):
            continue
        assert SAMPLE_RE.match(line), f"malformed sample line: {line!r}"


def test_empty_iterable_renders_empty_string():
    assert render_prometheus([]) == ""


def test_output_ends_with_single_newline():
    c = Counter("repro_a_total", "t")
    text = render_prometheus([c])
    assert text.endswith("\n") and not text.endswith("\n\n")
