"""Observability test fixtures: every test starts from zeroed globals."""

import pytest

import repro.obs as obs


@pytest.fixture(autouse=True)
def _clean_obs():
    obs.reset()
    obs.set_enabled(True)
    yield
    obs.reset()
    obs.set_enabled(True)
