"""Metric primitive semantics: counters, gauges, histograms, labels."""

import math

import pytest

from repro.errors import ObservabilityError
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    escape_label_value,
    format_value,
)


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        c = Counter("queries_total", "test")
        assert c.value() == 0.0
        c.inc()
        c.inc(4)
        assert c.value() == 5.0

    def test_negative_increment_raises(self):
        c = Counter("queries_total", "test")
        c.inc(3)
        with pytest.raises(ObservabilityError):
            c.inc(-1)
        assert c.value() == 3.0  # untouched by the failed update

    def test_zero_increment_allowed(self):
        c = Counter("queries_total", "test")
        c.inc(0)
        assert c.value() == 0.0

    def test_labeled_counter_tracks_each_tuple(self):
        c = Counter("queries_total", "test", label_names=("mechanism",))
        c.labels("emon").inc()
        c.labels("nvml").inc(2)
        c.labels("emon").inc()
        assert c.value("emon") == 2.0
        assert c.value("nvml") == 2.0
        assert c.value("never_touched") == 0.0

    def test_labeled_family_rejects_bare_inc(self):
        c = Counter("queries_total", "test", label_names=("mechanism",))
        with pytest.raises(ObservabilityError):
            c.inc()

    def test_labels_by_keyword(self):
        c = Counter("errors_total", "test", label_names=("mechanism", "kind"))
        c.labels(mechanism="scif", kind="disconnected").inc()
        assert c.value("scif", "disconnected") == 1.0

    def test_labels_mixing_positional_and_keyword_raises(self):
        c = Counter("errors_total", "test", label_names=("mechanism", "kind"))
        with pytest.raises(ObservabilityError):
            c.labels("scif", kind="disconnected")

    def test_wrong_label_arity_raises(self):
        c = Counter("errors_total", "test", label_names=("mechanism", "kind"))
        with pytest.raises(ObservabilityError):
            c.labels("scif")

    def test_wrong_keyword_names_raise(self):
        c = Counter("errors_total", "test", label_names=("mechanism",))
        with pytest.raises(ObservabilityError):
            c.labels(mechanisms="typo")

    def test_label_values_coerced_to_strings(self):
        c = Counter("by_rank_total", "test", label_names=("rank",))
        c.labels(3).inc()
        assert c.value("3") == 1.0


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("fill_ratio", "test")
        g.set(0.5)
        assert g.value() == 0.5
        g.inc(0.25)
        g.dec(0.5)
        assert g.value() == pytest.approx(0.25)

    def test_gauge_may_go_negative(self):
        g = Gauge("delta", "test")
        g.dec(2)
        assert g.value() == -2.0


class TestHistogram:
    def test_observe_places_in_first_bucket_with_le_upper(self):
        h = Histogram("lat", "test", buckets=(0.001, 0.01, 0.1))
        h.observe(0.005)
        child = h.child()
        # raw (non-cumulative) placement: second bucket only
        assert child.counts[:3] == [0, 1, 0]

    def test_boundary_value_is_inclusive(self):
        # Prometheus 'le' is <=: an observation exactly on a bound
        # belongs in that bound's bucket.
        h = Histogram("lat", "test", buckets=(0.001, 0.01))
        h.observe(0.001)
        assert h.child().counts[0] == 1

    def test_overflow_lands_in_inf_bucket(self):
        h = Histogram("lat", "test", buckets=(0.001,))
        h.observe(5.0)
        assert h.uppers[-1] == math.inf
        assert h.child().counts[-1] == 1

    def test_cumulative_counts_monotone_and_end_at_count(self):
        h = Histogram("lat", "test", buckets=(0.001, 0.01, 0.1))
        for v in (0.0005, 0.005, 0.005, 0.05, 99.0):
            h.observe(v)
        cum = h.child().cumulative_counts()
        assert cum == sorted(cum)
        assert cum[-1] == h.child().count == 5

    def test_sum_accumulates(self):
        h = Histogram("lat", "test", buckets=(1.0,))
        h.observe(0.25)
        h.observe(0.5)
        assert h.child().sum == pytest.approx(0.75)

    def test_inf_bucket_appended_when_missing(self):
        h = Histogram("lat", "test", buckets=(0.1, 1.0))
        assert h.uppers == (0.1, 1.0, math.inf)

    def test_explicit_inf_bucket_not_duplicated(self):
        h = Histogram("lat", "test", buckets=(0.1, math.inf))
        assert h.uppers == (0.1, math.inf)

    def test_unsorted_buckets_raise(self):
        with pytest.raises(ObservabilityError):
            Histogram("lat", "test", buckets=(0.1, 0.1))

    def test_empty_buckets_raise(self):
        with pytest.raises(ObservabilityError):
            Histogram("lat", "test", buckets=())

    def test_le_label_reserved(self):
        with pytest.raises(ObservabilityError):
            Histogram("lat", "test", buckets=(1.0,), label_names=("le",))


class TestLabelCardinality:
    def test_cardinality_ceiling_enforced(self):
        c = Counter("by_id_total", "test", label_names=("id",),
                    max_label_sets=8)
        for i in range(8):
            c.labels(str(i)).inc()
        with pytest.raises(ObservabilityError, match="cardinality"):
            c.labels("one-too-many")

    def test_existing_children_still_usable_at_ceiling(self):
        c = Counter("by_id_total", "test", label_names=("id",),
                    max_label_sets=2)
        first = c.labels("a")
        c.labels("b")
        with pytest.raises(ObservabilityError):
            c.labels("c")
        first.inc()
        assert c.value("a") == 1.0


class TestValidation:
    @pytest.mark.parametrize("name", ["", "0starts_with_digit", "has space",
                                      "has-dash"])
    def test_bad_metric_names_raise(self, name):
        with pytest.raises(ObservabilityError):
            Counter(name, "test")

    @pytest.mark.parametrize("label", ["__reserved", "0digit", "has-dash"])
    def test_bad_label_names_raise(self, label):
        with pytest.raises(ObservabilityError):
            Counter("ok_total", "test", label_names=(label,))

    def test_duplicate_label_names_raise(self):
        with pytest.raises(ObservabilityError):
            Counter("ok_total", "test", label_names=("a", "a"))


class TestEnableGating:
    def test_disabled_registry_makes_updates_noops(self):
        from repro.obs.registry import MetricsRegistry

        registry = MetricsRegistry()
        c = registry.counter("n_total", "test")
        h = registry.histogram("lat", "test", buckets=(1.0,))
        g = registry.gauge("fill", "test")
        registry.enabled = False
        c.inc()
        h.observe(0.5)
        g.set(3.0)
        assert c.value() == 0.0
        assert h.child().count == 0
        assert g.value() == 0.0
        registry.enabled = True
        c.inc()
        assert c.value() == 1.0

    def test_registryless_family_is_always_enabled(self):
        c = Counter("n_total", "test")
        assert c.enabled
        c.inc()
        assert c.value() == 1.0


class TestFormatting:
    def test_format_value(self):
        assert format_value(3.0) == "3"
        assert format_value(0.5) == "0.5"
        assert format_value(math.inf) == "+Inf"
        assert format_value(-math.inf) == "-Inf"
        assert format_value(math.nan) == "NaN"

    def test_escape_label_value(self):
        assert escape_label_value('a"b') == 'a\\"b'
        assert escape_label_value("a\\b") == "a\\\\b"
        assert escape_label_value("a\nb") == "a\\nb"
