"""Unit tests for BG/Q topology and domain rails."""

import numpy as np
import pytest

from repro.bgq.domains import (
    BGQ_DOMAINS,
    NODE_CARD_IDLE_W,
    NODE_CARD_PEAK_W,
    BgqDomain,
    domain_spec,
)
from repro.bgq.topology import (
    APP_CORES_PER_RACK,
    NODES_PER_RACK,
    NodeBoard,
    Rack,
    bgq_machine,
)
from repro.errors import ConfigError
from repro.sim.rng import RngRegistry
from repro.workloads.mmps import MmpsWorkload


class TestTopology:
    def test_paper_counts(self):
        rack = Rack(0, RngRegistry(1))
        assert len(rack.midplanes) == 2
        assert len(rack.link_cards) == 8
        assert len(rack.service_cards) == 2
        assert len(rack.midplanes[0].node_boards) == 16
        assert rack.midplanes[0].node_boards[0].node_count == 32
        assert rack.node_count == 1024 == NODES_PER_RACK

    def test_cores_per_rack(self):
        # "BG/Q thus has 16,384 cores per rack" (application cores).
        assert APP_CORES_PER_RACK == 16_384

    def test_compute_card_core_split(self):
        rack = Rack(0, RngRegistry(1))
        card = rack.midplanes[0].node_boards[0].cards[0]
        assert card.total_cores == 18
        assert card.app_cores == 16
        assert card.system_cores == 1
        assert card.inactive_cores == 1
        assert card.threads_per_core == 4

    def test_location_strings(self):
        rack = Rack(7, RngRegistry(1))
        board = rack.midplanes[1].node_boards[3]
        assert board.location == "R07-M1-N03"
        assert board.cards[12].location == "R07-M1-N03-J12"

    def test_machine_factory_validates(self):
        with pytest.raises(ConfigError):
            bgq_machine(0)

    def test_machine_rngs_stable_under_growth(self):
        one = bgq_machine(1, RngRegistry(9))
        two = bgq_machine(2, RngRegistry(9))
        assert (one[0].midplanes[0].node_boards[0].rng.seed("x")
                == two[0].midplanes[0].node_boards[0].rng.seed("x"))


class TestDomains:
    def test_seven_domains(self):
        assert len(BGQ_DOMAINS) == 7
        assert {s.domain for s in BGQ_DOMAINS} == set(BgqDomain)

    def test_budgets_match_figure_bands(self):
        assert 650.0 <= NODE_CARD_IDLE_W <= 750.0
        assert 1800.0 <= NODE_CARD_PEAK_W <= 2100.0

    def test_chip_core_is_largest(self):
        chip = domain_spec(BgqDomain.CHIP_CORE)
        assert all(chip.dynamic_w >= s.dynamic_w for s in BGQ_DOMAINS)

    def test_sample_phases_distinct(self):
        phases = [s.sample_phase for s in BGQ_DOMAINS]
        assert len(set(phases)) == len(phases)


class TestNodeBoardElectrical:
    @pytest.fixture
    def board(self):
        board = NodeBoard("R00-M0-N00", RngRegistry(5))
        board.board.schedule(MmpsWorkload(duration=600.0), t_start=0.0)
        return board

    def test_total_is_sum_of_domains(self, board):
        t = 100.0
        total = float(board.total_power(t))
        parts = sum(float(board.domain_power(s.domain, t)) for s in BGQ_DOMAINS)
        assert total == pytest.approx(parts)

    def test_mmps_node_card_power_matches_figure2(self, board):
        t = np.arange(60.0, 500.0, 5.0)
        total = board.total_power(t)
        assert 1400.0 < total.mean() < 1800.0
        assert total.max() < 2100.0

    def test_voltage_droop_under_load(self, board):
        v_loaded = float(board.domain_voltage(BgqDomain.CHIP_CORE, 100.0))
        v_idle = float(board.domain_voltage(BgqDomain.CHIP_CORE, 700.0))
        assert v_loaded < v_idle == domain_spec(BgqDomain.CHIP_CORE).nominal_v

    def test_current_times_voltage_is_power(self, board):
        t = 100.0
        for spec in BGQ_DOMAINS:
            v = float(board.domain_voltage(spec.domain, t))
            i = float(board.domain_current(spec.domain, t))
            p = float(board.domain_power(spec.domain, t))
            assert v * i == pytest.approx(p, rel=1e-9)
