"""Unit tests for the EMON interface and the assembled machine."""

import pytest

from repro.bgq.domains import BGQ_DOMAINS, BgqDomain
from repro.bgq.emon import (
    EMON_QUERY_LATENCY_S,
    GENERATION_PERIOD_S,
    EmonInterface,
)
from repro.bgq.machine import BgqMachine
from repro.errors import ConfigError
from repro.sim.rng import RngRegistry
from repro.workloads.mmps import MmpsWorkload


@pytest.fixture
def machine():
    return BgqMachine(racks=1, rng=RngRegistry(17))


class TestEmon:
    def test_collection_covers_all_domains(self, machine):
        machine.clock.advance(10.0)
        emon = machine.emon("R00-M0-N00")
        readings = emon.collect()
        assert {r.domain for r in readings} == set(BgqDomain)

    def test_collection_charges_1_10ms(self, machine):
        emon = machine.emon("R00-M0-N00")
        machine.clock.advance(5.0)
        t0 = machine.clock.now
        emon.collect()
        assert machine.clock.now - t0 == pytest.approx(EMON_QUERY_LATENCY_S)

    def test_collection_charges_process(self, machine):
        from repro.host.process import ProcessTable

        proc = ProcessTable().spawn("moneq-agent")
        machine.clock.advance(5.0)
        machine.emon("R00-M0-N00").collect(process=proc)
        assert proc.cpu_seconds == pytest.approx(EMON_QUERY_LATENCY_S)

    def test_readings_are_stale_by_one_generation(self, machine):
        machine.clock.advance(10.0)
        readings = machine.emon("R00-M0-N00").collect()
        for r in readings:
            age = machine.clock.now - r.sample_time
            assert age >= GENERATION_PERIOD_S - 1e-9

    def test_domains_sampled_at_different_instants(self, machine):
        machine.clock.advance(10.0)
        readings = machine.emon("R00-M0-N00").collect()
        times = {r.sample_time for r in readings}
        assert len(times) > 1  # the paper's cross-domain inconsistency

    def test_node_card_power_sums_domains(self, machine):
        machine.clock.advance(10.0)
        emon = machine.emon("R00-M0-N00")
        readings = emon.collect()
        assert EmonInterface.node_card_power(readings) == pytest.approx(
            sum(r.power_w for r in readings)
        )

    def test_idle_node_card_power_near_700w(self, machine):
        machine.clock.advance(10.0)
        readings = machine.emon("R00-M0-N00").collect()
        assert 600.0 < EmonInterface.node_card_power(readings) < 800.0

    def test_loaded_node_card_power_matches_bpm_output(self, machine):
        """Figure 2's check: EMON total ~= BPM DC output."""
        machine.run_job(MmpsWorkload(duration=1000.0), node_count=32, t_start=0.0)
        machine.clock.advance(500.0)
        emon_total = EmonInterface.node_card_power(
            machine.emon("R00-M0-N00").collect()
        )
        bpm_out = float(machine.bpm("R00-M0-N00").output_power_w(machine.clock.now))
        assert emon_total == pytest.approx(bpm_out, rel=0.05)

    def test_empty_collection_rejected(self):
        from repro.errors import SensorError

        with pytest.raises(SensorError):
            EmonInterface.node_card_power([])


class TestMachine:
    def test_node_count(self, machine):
        assert machine.node_count == 1024

    def test_job_placement_rounds_to_node_boards(self, machine):
        boards = machine.run_job(MmpsWorkload(duration=100.0), node_count=48,
                                 t_start=0.0)
        assert len(boards) == 2  # ceil(48/32)

    def test_job_too_large_rejected(self, machine):
        with pytest.raises(ConfigError):
            machine.run_job(MmpsWorkload(duration=100.0), node_count=2048,
                            t_start=0.0)

    def test_job_count_validated(self, machine):
        with pytest.raises(ConfigError):
            machine.run_job(MmpsWorkload(duration=100.0), node_count=0, t_start=0.0)

    def test_unknown_locations_rejected(self, machine):
        with pytest.raises(ConfigError):
            machine.bpm("R99-M0-N00")
        with pytest.raises(ConfigError):
            machine.emon("R99-M0-N00")
