"""The paper's EMON inconsistency claim, §II-A:

"the underlying power measurement infrastructure does not measure all
domains at the exact same time.  This may result in some inconsistent
cases, such as the case when a piece of code begins to stress both the
CPU and memory at the same time."

A workload that steps chip-core and DRAM load simultaneously must
produce an EMON collection window in which one domain already shows the
new level while the other still reports the old one.
"""

import pytest

from repro.bgq.domains import BgqDomain, domain_spec
from repro.bgq.emon import GENERATION_PERIOD_S
from repro.bgq.machine import BgqMachine
from repro.sim.rng import RngRegistry
from repro.workloads.base import Component, Phase, PhasedWorkload


def step_workload():
    """Idle, then CPU+memory step together at t=30 (phase boundary)."""
    return PhasedWorkload("step", [
        Phase("quiet", 30.0, {Component.BGQ_CHIP_CORE: 0.05,
                              Component.BGQ_DRAM: 0.05}),
        Phase("loud", 30.0, {Component.BGQ_CHIP_CORE: 0.9,
                             Component.BGQ_DRAM: 0.9}),
    ])


@pytest.fixture
def machine():
    m = BgqMachine(racks=1, rng=RngRegistry(73), start_poller=False)
    m.run_job(step_workload(), node_count=32, t_start=0.0)
    return m


def collect_at(machine, t):
    machine.clock.advance_to(t)
    return {r.domain: r for r in machine.emon("R00-M0-N00").collect()}


class TestEmonInconsistency:
    def test_domains_sample_at_distinct_instants(self, machine):
        readings = collect_at(machine, 10.0)
        times = {r.sample_time for r in readings.values()}
        assert len(times) == 7  # every domain on its own phase

    def test_mixed_generation_window_exists(self, machine):
        """Immediately after the step there is a collection where
        chip-core already reports the loud level while DRAM still
        reports the quiet one (or vice versa)."""
        chip_phase = domain_spec(BgqDomain.CHIP_CORE).sample_phase
        dram_phase = domain_spec(BgqDomain.DRAM).sample_phase
        assert chip_phase != dram_phase
        found_mixed = False
        # Probe collections through the first two generations after the
        # step: the oldest-generation data straddles t=30 there.
        t = 30.0 + 0.5 * GENERATION_PERIOD_S
        while t < 30.0 + 2.5 * GENERATION_PERIOD_S:
            m = BgqMachine(racks=1, rng=RngRegistry(73), start_poller=False)
            m.run_job(step_workload(), node_count=32, t_start=0.0)
            readings = collect_at(m, t)
            chip_loud = readings[BgqDomain.CHIP_CORE].power_w > 600.0
            dram_loud = readings[BgqDomain.DRAM].power_w > 280.0
            if chip_loud != dram_loud:
                found_mixed = True
                break
            t += 0.05
        assert found_mixed, "no mixed-generation collection observed"

    def test_consistency_restored_after_both_domains_refresh(self, machine):
        readings = collect_at(machine, 30.0 + 5 * GENERATION_PERIOD_S)
        assert readings[BgqDomain.CHIP_CORE].power_w > 600.0
        assert readings[BgqDomain.DRAM].power_w > 280.0

    def test_stale_by_one_generation_everywhere(self, machine):
        readings = collect_at(machine, 50.0)
        for reading in readings.values():
            age = machine.clock.now - reading.sample_time
            assert GENERATION_PERIOD_S - 1e-9 <= age <= 3 * GENERATION_PERIOD_S
