"""Unit tests for BPM metering and the environmental database."""

import pytest

from repro.bgq.bpm import BulkPowerModule
from repro.bgq.envdb import (
    DEFAULT_POLL_INTERVAL_S,
    MAX_POLL_INTERVAL_S,
    MIN_POLL_INTERVAL_S,
    EnvironmentalDatabase,
)
from repro.bgq.machine import BgqMachine
from repro.bgq.topology import NodeBoard
from repro.errors import ConfigError
from repro.sim.events import EventQueue
from repro.sim.rng import RngRegistry
from repro.workloads.mmps import MmpsWorkload


@pytest.fixture
def board():
    return NodeBoard("R00-M0-N00", RngRegistry(3))


class TestBpm:
    def test_input_exceeds_output(self, board):
        bpm = BulkPowerModule(board)
        assert float(bpm.input_power_w(10.0)) > float(bpm.output_power_w(10.0))

    def test_efficiency_relation(self, board):
        bpm = BulkPowerModule(board, efficiency=0.90)
        out = float(bpm.output_power_w(5.0))
        assert float(bpm.input_power_w(5.0)) == pytest.approx(out / 0.9 + 12.0)

    def test_metered_fields(self, board):
        metered = BulkPowerModule(board).metered(10.0)
        assert set(metered) == {"input_power_w", "input_current_a",
                                "output_power_w", "output_current_a"}
        assert metered["input_current_a"] == pytest.approx(
            metered["input_power_w"] / 208.0
        )
        assert metered["output_current_a"] == pytest.approx(
            metered["output_power_w"] / 48.0
        )

    def test_metering_deterministic(self, board):
        bpm = BulkPowerModule(board, seed=77)
        assert bpm.metered(30.0) == bpm.metered(30.0)

    def test_validation(self, board):
        with pytest.raises(ConfigError):
            BulkPowerModule(board, efficiency=0.4)
        with pytest.raises(ConfigError):
            BulkPowerModule(board, meter_noise_w=-1.0)


class TestEnvDbConfig:
    def test_interval_range_enforced(self, queue):
        with pytest.raises(ConfigError):
            EnvironmentalDatabase(queue, poll_interval_s=MIN_POLL_INTERVAL_S - 1)
        with pytest.raises(ConfigError):
            EnvironmentalDatabase(queue, poll_interval_s=MAX_POLL_INTERVAL_S + 1)

    def test_default_is_about_4_minutes(self):
        assert DEFAULT_POLL_INTERVAL_S == 240.0

    def test_double_start_rejected(self, queue):
        db = EnvironmentalDatabase(queue)
        db.start()
        with pytest.raises(ConfigError):
            db.start()


class TestEnvDbPollingAndQueries:
    @pytest.fixture
    def machine(self):
        m = BgqMachine(racks=1, rng=RngRegistry(13), poll_interval_s=240.0)
        m.run_job(MmpsWorkload(duration=1500.0), node_count=32, t_start=600.0)
        return m

    def test_poll_count_matches_interval(self, machine):
        machine.advance_to(2400.0)
        assert machine.envdb.polls_completed == 10

    def test_bpm_rows_timestamped_and_located(self, machine):
        machine.advance_to(1000.0)
        rows = machine.envdb.query("bpm", 0.0, 1000.0, "R00-M0-N00")
        assert len(rows) == 4
        assert all(r.location == "R00-M0-N00-BPM" for r in rows)
        assert [r.timestamp for r in rows] == [240.0, 480.0, 720.0, 960.0]

    def test_idle_visible_before_and_after_job(self, machine):
        """Figure 1's signature: the env DB sees the idle shelf."""
        machine.advance_to(3000.0)
        times, watts = machine.envdb.bpm_input_power_series("R00-M0-N00", 0.0, 3000.0)
        in_job = [w for t, w in zip(times, watts) if 700.0 < t < 2000.0]
        outside = [w for t, w in zip(times, watts) if t < 500.0 or t > 2400.0]
        assert min(in_job) > max(outside) + 400.0  # clear step

    def test_location_prefix_filters(self, machine):
        machine.advance_to(500.0)
        all_rows = machine.envdb.query("bpm", 0.0, 500.0)
        one_board = machine.envdb.query("bpm", 0.0, 500.0, "R00-M0-N00")
        # One rack = 2 midplanes x 16 node boards = 32 BPMs.
        assert len(all_rows) == 32 * len(one_board)

    def test_ambient_tables_populated(self, machine):
        machine.advance_to(300.0)
        for table in ("coolant", "temperature", "fan"):
            rows = machine.envdb.query(table, 0.0, 300.0)
            assert rows, f"no rows in {table}"

    def test_coolant_outlet_warms_with_load(self, machine):
        machine.advance_to(3000.0)
        rows = machine.envdb.query("coolant", 0.0, 3000.0, "R00-M0-N00")
        in_job = [r.values["outlet_c"] for r in rows if 700.0 < r.timestamp < 2000.0]
        idle = [r.values["outlet_c"] for r in rows if r.timestamp < 500.0]
        assert min(in_job) > max(idle)

    def test_unknown_table_rejected(self, machine):
        with pytest.raises(ConfigError):
            machine.envdb.query("gpu", 0.0, 1.0)

    def test_inverted_window_rejected(self, machine):
        with pytest.raises(ConfigError):
            machine.envdb.query("bpm", 10.0, 0.0)


class TestCapacityModel:
    def test_faster_polling_costs_proportionally(self, queue):
        db = EnvironmentalDatabase(queue)
        board = NodeBoard("R00-M0-N00", RngRegistry(1))
        db.register_bpm(BulkPowerModule(board))
        assert db.ingest_rate(60.0) == pytest.approx(4.0 * db.ingest_rate(240.0))

    def test_mira_scale_saturates_at_min_interval(self):
        """At 60 s polling, a full Mira's sensor population exceeds the
        server ceiling — the paper's rationale for ~4 minute polls."""
        machine = BgqMachine(racks=48, rng=RngRegistry(2), start_poller=False)
        assert machine.envdb.capacity_fraction(60.0) > 1.0
        assert machine.envdb.capacity_fraction(240.0) <= 1.0

    def test_shortest_sustainable_interval_clamped(self, queue):
        db = EnvironmentalDatabase(queue)  # no sensors registered
        assert db.shortest_sustainable_interval() == MIN_POLL_INTERVAL_S
