"""The sharded store engine: ingest, queries, capacity, metrics."""

import pytest

from repro.errors import ConfigError
from repro.obs.instruments import (
    STORE_BATCHES,
    STORE_DROPPED,
    STORE_QUERIES,
    STORE_QUERY_ROWS,
    STORE_RECORDS,
)
from repro.store import Reading, ShardedStore

TABLES = ("bpm", "fan")


def _reading(t, location, watts=1.0):
    return Reading(t, location, "envdb", {"input_power_w": watts})


class TestConstruction:
    def test_needs_tables(self):
        with pytest.raises(ConfigError, match="at least one table"):
            ShardedStore(())

    def test_capacity_must_be_positive(self):
        with pytest.raises(ConfigError, match="capacity"):
            ShardedStore(TABLES, capacity_records_per_s=0.0)

    def test_unknown_table_error_matches_seed_wording(self):
        store = ShardedStore(TABLES)
        with pytest.raises(ConfigError,
                           match=r"no table 'coolant'; have \['bpm', 'fan'\]"):
            store.ingest("coolant", _reading(0.0, "R00-M0-N00"))

    def test_inverted_window_rejected(self):
        store = ShardedStore(TABLES)
        with pytest.raises(ConfigError, match="query window inverted"):
            store.range("bpm", 5.0, 1.0)


class TestRangeOrdering:
    def test_timestamp_then_ingest_order(self):
        store = ShardedStore(TABLES, n_shards=4)
        first = _reading(2.0, "R00-M0-N00", 1.0)
        second = _reading(2.0, "R17-M1-N09", 2.0)  # same t, later ingest
        earlier = _reading(1.0, "R31-M0-N02", 3.0)
        for reading in (first, second, earlier):
            store.ingest("bpm", reading)
        assert store.range("bpm", 0.0, 10.0) == [earlier, first, second]

    def test_window_bounds_are_inclusive(self):
        store = ShardedStore(TABLES)
        for t in (1.0, 2.0, 3.0):
            store.ingest("bpm", _reading(t, "R00-M0-N00"))
        rows = store.range("bpm", 1.0, 2.0)
        assert [r.timestamp for r in rows] == [1.0, 2.0]

    def test_prefix_filters_within_the_pinned_shard(self):
        store = ShardedStore(TABLES, n_shards=4)
        keep = _reading(1.0, "R00-M0-N00")
        store.ingest("bpm", keep)
        store.ingest("bpm", _reading(1.0, "R00-M1-N00"))  # same shard
        assert store.range("bpm", 0.0, 2.0, "R00-M0") == [keep]

    def test_prefix_query_spans_all_time(self):
        store = ShardedStore(TABLES, n_shards=4)
        store.ingest("bpm", _reading(-50.0, "R00-M0-N00"))
        store.ingest("bpm", _reading(1e9, "R00-M0-N01"))
        assert len(store.prefix("bpm", "R00-M0")) == 2


class TestLatest:
    def test_latest_per_location_with_tie_to_newest_ingest(self):
        store = ShardedStore(TABLES, n_shards=4)
        store.ingest("bpm", _reading(1.0, "R00-M0-N00", 1.0))
        newest = _reading(1.0, "R00-M0-N00", 2.0)  # same t, later ingest
        store.ingest("bpm", newest)
        other = _reading(0.5, "R19-M0-N00", 3.0)
        store.ingest("bpm", other)
        assert store.latest("bpm") == {"R00-M0-N00": newest,
                                       "R19-M0-N00": other}
        assert store.latest("bpm", "R19") == {"R19-M0-N00": other}


class TestCapacity:
    def test_direct_ingest_is_never_capped(self):
        store = ShardedStore(TABLES, capacity_records_per_s=1.0)
        for i in range(50):
            store.ingest("bpm", _reading(float(i), "R00-M0-N00"))
        assert store.records_ingested == 50
        assert store.dropped_records == 0

    def test_batch_budget_is_capacity_times_interval(self):
        store = ShardedStore(TABLES, capacity_records_per_s=2.0)
        items = [("bpm", _reading(float(i), "R00-M0-N00")) for i in range(10)]
        report = store.ingest_batch(items, interval_s=3.0)
        assert report.accepted == 6  # floor(2.0 * 3.0)
        assert report.dropped == 4
        assert report.drop_fraction == pytest.approx(0.4)
        assert store.records_by_shard == {0: 6}
        assert store.dropped_by_shard == {0: 4}

    def test_uncapped_store_accepts_everything(self):
        store = ShardedStore(TABLES)
        items = [("bpm", _reading(float(i), "R00-M0-N00")) for i in range(10)]
        report = store.ingest_batch(items, interval_s=1.0)
        assert report.dropped == 0
        assert store.capacity_fraction(["R00-M0-N00"] * 100, 1.0) == 0.0

    def test_nonpositive_interval_rejected(self):
        store = ShardedStore(TABLES)
        with pytest.raises(ConfigError, match="interval must be positive"):
            store.ingest_batch([], interval_s=0.0)
        with pytest.raises(ConfigError, match="interval must be positive"):
            store.sweep_load(["R00"], 0.0)

    def test_sweep_load_is_per_shard(self):
        store = ShardedStore(TABLES, n_shards=8, capacity_records_per_s=10.0)
        locations = ["R00-M0-N00"] * 25 + ["R01-M0-N00"] * 5
        load = store.sweep_load(locations, interval_s=1.0)
        hot = store.shard_map.shard_of("R00-M0-N00")
        cold = store.shard_map.shard_of("R01-M0-N00")
        assert load[hot] == pytest.approx(2.5)
        assert load[cold] == pytest.approx(0.5)
        assert store.capacity_fraction(locations, 1.0) == pytest.approx(2.5)


class TestMetrics:
    def test_ingest_and_query_families(self):
        store = ShardedStore(TABLES, n_shards=2, capacity_records_per_s=3.0)
        items = [("bpm", _reading(float(i), "R00-M0-N00")) for i in range(5)]
        store.ingest_batch(items, interval_s=1.0)
        shard = str(store.shard_map.shard_of("R00-M0-N00"))
        assert STORE_RECORDS.value(shard) == 3.0
        assert STORE_DROPPED.value(shard) == 2.0
        assert STORE_BATCHES.value() == 1.0
        store.range("bpm", 0.0, 10.0)
        assert STORE_QUERIES.value("range") == 1.0
        assert STORE_QUERY_ROWS.value() == 3.0
        store.latest("bpm")
        assert STORE_QUERIES.value("latest") == 1.0
