"""Store test fixtures: zeroed metric globals around every test."""

import pytest

import repro.obs as obs


@pytest.fixture(autouse=True)
def _clean_obs():
    obs.reset()
    obs.set_enabled(True)
    yield
    obs.reset()
    obs.set_enabled(True)
