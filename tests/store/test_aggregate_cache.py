"""Downsampled aggregates and the per-shard cache."""

import pytest

from repro.errors import ConfigError
from repro.obs.instruments import (
    STORE_CACHE_HITS,
    STORE_CACHE_INVALIDATIONS,
    STORE_CACHE_MISSES,
)
from repro.store import Reading, ShardedStore, window_index

TABLES = ("bpm",)
LOC = "R00-M0-N00"


def _store_with(samples):
    store = ShardedStore(TABLES)
    for t, location, watts in samples:
        store.ingest("bpm", Reading(t, location, "envdb",
                                    {"input_power_w": watts}))
    return store


class TestWindowIndex:
    def test_floor_semantics(self):
        assert window_index(0.0, 60.0) == 0
        assert window_index(59.9, 60.0) == 0
        assert window_index(60.0, 60.0) == 1
        assert window_index(-0.1, 60.0) == -1


class TestAggregateValues:
    def test_min_mean_max_per_location_window(self):
        store = _store_with([
            (10.0, LOC, 100.0),
            (20.0, LOC, 300.0),
            (70.0, LOC, 50.0),           # next 60 s window
            (15.0, "R01-M0-N00", 40.0),  # other location, same window
        ])
        aggs = store.aggregate("bpm", "input_power_w", 0.0, 120.0, 60.0)
        by_key = {(a.location, a.window_start): a for a in aggs}
        first = by_key[(LOC, 0.0)]
        assert (first.count, first.minimum, first.maximum) == (2, 100.0, 300.0)
        assert first.mean == pytest.approx(200.0)
        assert first.window_end == 60.0
        assert by_key[(LOC, 60.0)].count == 1
        assert by_key[("R01-M0-N00", 0.0)].maximum == 40.0
        # Deterministic order: window start, then location.
        assert [(a.window_start, a.location) for a in aggs] == \
            sorted((a.window_start, a.location) for a in aggs)

    def test_prefix_and_window_selection(self):
        store = _store_with([
            (10.0, LOC, 1.0), (70.0, LOC, 2.0), (10.0, "R01-M0-N00", 3.0),
        ])
        aggs = store.aggregate("bpm", "input_power_w", 60.0, 120.0, 60.0,
                               location_prefix="R00")
        assert [(a.location, a.window_start) for a in aggs] == [(LOC, 60.0)]

    def test_records_missing_the_field_are_skipped(self):
        store = ShardedStore(TABLES)
        store.ingest("bpm", Reading(5.0, LOC, "envdb", {"other": 1.0}))
        assert store.aggregate("bpm", "other", 0.0, 60.0, 60.0)[0].count == 1
        assert store.aggregate("bpm", "input_power_w", 0.0, 60.0, 60.0) == []

    def test_window_must_be_positive(self):
        store = _store_with([(10.0, LOC, 1.0)])
        with pytest.raises(ConfigError, match="window must be positive"):
            store.aggregate("bpm", "input_power_w", 0.0, 60.0, 0.0)


class TestCacheLifecycle:
    def test_miss_then_hit_then_invalidation_on_ingest(self):
        store = _store_with([(10.0, LOC, 1.0), (20.0, LOC, 2.0)])
        first = store.aggregate("bpm", "input_power_w", 0.0, 60.0, 60.0)
        assert STORE_CACHE_MISSES.value() == 1.0
        assert STORE_CACHE_HITS.value() == 0.0

        again = store.aggregate("bpm", "input_power_w", 0.0, 60.0, 60.0)
        assert again == first
        assert STORE_CACHE_HITS.value() == 1.0
        assert STORE_CACHE_MISSES.value() == 1.0

        store.ingest("bpm", Reading(30.0, LOC, "envdb",
                                    {"input_power_w": 9.0}))
        assert STORE_CACHE_INVALIDATIONS.value() == 1.0
        refreshed = store.aggregate("bpm", "input_power_w", 0.0, 60.0, 60.0)
        assert STORE_CACHE_MISSES.value() == 2.0
        assert refreshed[0].count == 3  # sees the new record

    def test_each_window_size_caches_independently(self):
        store = _store_with([(10.0, LOC, 1.0)])
        store.aggregate("bpm", "input_power_w", 0.0, 60.0, 60.0)
        store.aggregate("bpm", "input_power_w", 0.0, 60.0, 30.0)
        assert STORE_CACHE_MISSES.value() == 2.0
        store.aggregate("bpm", "input_power_w", 0.0, 60.0, 30.0)
        assert STORE_CACHE_HITS.value() == 1.0

    def test_sharded_caches_invalidate_independently(self):
        store = ShardedStore(TABLES, n_shards=8)
        other = "R01-M0-N00"
        assert store.shard_map.shard_of(LOC) != store.shard_map.shard_of(other)
        for location in (LOC, other):
            store.ingest("bpm", Reading(10.0, location, "envdb",
                                        {"input_power_w": 1.0}))
        store.aggregate("bpm", "input_power_w", 0.0, 60.0, 60.0, LOC[:6])
        store.aggregate("bpm", "input_power_w", 0.0, 60.0, 60.0, other[:6])
        misses = STORE_CACHE_MISSES.value()
        # Ingest into LOC's shard: only that shard's cache rebuilds.
        store.ingest("bpm", Reading(20.0, LOC, "envdb",
                                    {"input_power_w": 2.0}))
        store.aggregate("bpm", "input_power_w", 0.0, 60.0, 60.0, LOC[:6])
        store.aggregate("bpm", "input_power_w", 0.0, 60.0, 60.0, other[:6])
        assert STORE_CACHE_MISSES.value() == misses + 1.0
        assert STORE_CACHE_HITS.value() == 1.0
