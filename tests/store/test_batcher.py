"""Per-sweep write batching."""

import pytest

from repro.errors import ConfigError
from repro.obs.instruments import STORE_BATCH_RECORDS, STORE_BATCHES
from repro.store import Reading, ShardedStore, WriteBatcher


def _reading(t):
    return Reading(t, "R00-M0-N00", "envdb", {"input_power_w": 1.0})


class TestWriteBatcher:
    def test_stages_then_flushes_as_one_batch(self):
        store = ShardedStore(("bpm",))
        batcher = WriteBatcher(store)
        for i in range(5):
            batcher.add("bpm", _reading(float(i)))
        assert len(batcher) == 5
        assert store.records_ingested == 0  # nothing until flush

        report = batcher.flush(interval_s=60.0)
        assert report.offered == report.accepted == 5
        assert store.records_ingested == 5
        assert len(batcher) == 0  # reusable after flush
        assert STORE_BATCHES.value() == 1.0
        sizes = STORE_BATCH_RECORDS.child()
        assert (sizes.count, sizes.sum) == (1, 5.0)

    def test_empty_flush_is_an_error(self):
        batcher = WriteBatcher(ShardedStore(("bpm",)))
        with pytest.raises(ConfigError, match="empty write batch"):
            batcher.flush(interval_s=60.0)

    def test_capacity_applies_at_flush(self):
        store = ShardedStore(("bpm",), capacity_records_per_s=1.0)
        batcher = WriteBatcher(store)
        for i in range(5):
            batcher.add("bpm", _reading(float(i)))
        report = batcher.flush(interval_s=2.0)
        assert report.accepted == 2
        assert report.dropped == 3
