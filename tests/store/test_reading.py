"""The shared normalized sensor record."""

import pytest

from repro.errors import ConfigError
from repro.store import Reading


class TestReading:
    def test_requires_location_and_mechanism(self):
        with pytest.raises(ConfigError, match="location"):
            Reading(0.0, "", "envdb", {})
        with pytest.raises(ConfigError, match="mechanism"):
            Reading(0.0, "R00-M0-N00", "", {})

    def test_value_lookup_names_missing_field(self):
        reading = Reading(1.0, "R00-M0-N00", "envdb", {"input_power_w": 2.5})
        assert reading.value("input_power_w") == 2.5
        with pytest.raises(ConfigError, match=r"no field 'output_power_w'"):
            reading.value("output_power_w")

    def test_with_values_copies(self):
        reading = Reading(1.0, "R00-M0-N00", "envdb", {"a": 1.0})
        extended = reading.with_values(b=2.0, a=3.0)
        assert extended.values == {"a": 3.0, "b": 2.0}
        assert reading.values == {"a": 1.0}  # original untouched
        assert extended.location == reading.location

    def test_equality_is_by_value(self):
        assert Reading(1.0, "R00", "envdb", {"a": 1.0}) == \
            Reading(1.0, "R00", "envdb", {"a": 1.0})
