"""The ingest-ordered tail: cursor resume, prefix filtering, paging,
multi-shard merge, and the ingest-order (not time-order) contract."""

import pytest

from repro.errors import ConfigError
from repro.obs.instruments import STORE_QUERIES
from repro.store import Reading, ShardedStore

TABLES = ("bpm", "fan")


def _reading(t, location, watts=1.0):
    return Reading(t, location, "envdb", {"input_power_w": watts})


def _racks(n):
    return [f"R{r:02d}-M0-N00-BPM" for r in range(n)]


class TestTail:
    def test_tail_from_zero_sees_everything_in_ingest_order(self):
        store = ShardedStore(TABLES, n_shards=4)
        locations = _racks(8)
        for i, loc in enumerate(locations):
            store.ingest("bpm", _reading(float(i), loc))
        batch = store.tail("bpm")
        assert [r.location for r in batch.readings] == locations
        assert batch.cursor == store.ingest_cursor

    def test_cursor_resumes_exactly(self):
        store = ShardedStore(TABLES, n_shards=4)
        for i, loc in enumerate(_racks(4)):
            store.ingest("bpm", _reading(float(i), loc))
        first = store.tail("bpm")
        assert store.tail("bpm", first.cursor).readings == ()
        store.ingest("bpm", _reading(99.0, "R99-M0-N00-BPM"))
        fresh = store.tail("bpm", first.cursor)
        assert [r.location for r in fresh.readings] == ["R99-M0-N00-BPM"]
        assert fresh.cursor == first.cursor + 1

    def test_tail_is_ingest_order_not_time_order(self):
        # A late-arriving backfill (older timestamp, newer seq) still
        # reaches a tailing consumer — range() would sort it backward.
        store = ShardedStore(TABLES)
        store.ingest("bpm", _reading(10.0, "R00-M0-N00-BPM"))
        cursor = store.ingest_cursor
        store.ingest("bpm", _reading(5.0, "R00-M0-N00-BPM", watts=2.0))
        batch = store.tail("bpm", cursor)
        assert [r.timestamp for r in batch.readings] == [5.0]

    def test_prefix_filter_and_cursor_advance(self):
        store = ShardedStore(TABLES, n_shards=4)
        for i, loc in enumerate(_racks(6)):
            store.ingest("bpm", _reading(float(i), loc))
        batch = store.tail("bpm", location_prefix="R03")
        assert [r.location for r in batch.readings] == ["R03-M0-N00-BPM"]
        # Non-matching records already scanned don't come back.
        assert store.tail("bpm", batch.cursor,
                          location_prefix="R03").readings == ()

    def test_limit_pages_without_skipping(self):
        store = ShardedStore(TABLES, n_shards=4)
        locations = _racks(10)
        for i, loc in enumerate(locations):
            store.ingest("bpm", _reading(float(i), loc))
        seen = []
        cursor = 0
        while True:
            batch = store.tail("bpm", cursor, limit=3)
            if not batch.readings:
                break
            seen.extend(r.location for r in batch.readings)
            cursor = batch.cursor
        assert seen == locations

    def test_merge_is_seq_ordered_across_shards(self):
        # Interleave ingests across racks that land on different
        # shards; tail must return the global interleaving.
        store = ShardedStore(TABLES, n_shards=8)
        order = []
        for i in range(20):
            loc = f"R{i % 5:02d}-M0-N00-BPM"
            store.ingest("bpm", _reading(float(i), loc, watts=float(i)))
            order.append(float(i))
        batch = store.tail("bpm")
        assert [r.values["input_power_w"] for r in batch.readings] == order

    def test_tail_plans_like_other_queries(self):
        store = ShardedStore(TABLES, n_shards=8)
        plan = store.plan("tail", "bpm", "R00-M0")
        assert plan.kind == "tail"
        assert plan.fan_out == 1
        assert not plan.uses_cache
        assert store.plan("tail", "bpm").fan_out == 8

    def test_tail_counts_in_store_metrics(self):
        store = ShardedStore(TABLES)
        store.ingest("bpm", _reading(0.0, "R00-M0-N00-BPM"))
        before = STORE_QUERIES.value("tail")
        store.tail("bpm")
        assert STORE_QUERIES.value("tail") == before + 1

    def test_validation(self):
        store = ShardedStore(TABLES)
        with pytest.raises(ConfigError, match="cursor"):
            store.tail("bpm", cursor=-1)
        with pytest.raises(ConfigError, match="limit"):
            store.tail("bpm", limit=0)
        with pytest.raises(ConfigError, match="no table"):
            store.tail("coolant")

    def test_ingest_cursor_starts_future_tails(self):
        store = ShardedStore(TABLES)
        store.ingest("bpm", _reading(0.0, "R00-M0-N00-BPM"))
        cursor = store.ingest_cursor
        assert store.tail("bpm", cursor).readings == ()
        store.ingest("fan", _reading(1.0, "R00-M0-N00-F00"))
        assert store.tail("bpm", cursor).readings == ()  # other table
        assert len(store.tail("fan", cursor)) == 1
