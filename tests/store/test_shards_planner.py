"""Shard routing and query planning."""

import pytest

from repro.errors import ConfigError
from repro.store import QUERY_KINDS, ShardMap, plan_query, shard_key


class TestShardKey:
    def test_default_depth_is_the_rack(self):
        assert shard_key("R07-M1-N03-BPM") == "R07"

    def test_depth_two_is_rack_midplane(self):
        assert shard_key("R07-M1-N03-BPM", depth=2) == "R07-M1"

    def test_short_locations_use_what_exists(self):
        assert shard_key("mic0", depth=2) == "mic0"


class TestShardMap:
    def test_validation(self):
        with pytest.raises(ConfigError, match="shard count"):
            ShardMap(0)
        with pytest.raises(ConfigError, match="depth"):
            ShardMap(4, depth=0)

    def test_single_shard_always_routes_to_zero(self):
        shard_map = ShardMap(1)
        assert shard_map.shard_of("R00-M0-N00") == 0
        assert shard_map.shards_for_prefix("") == [0]

    def test_routing_is_deterministic_and_rack_sticky(self):
        shard_map = ShardMap(8)
        a = shard_map.shard_of("R05-M0-N00-BPM")
        assert a == shard_map.shard_of("R05-M1-N31")  # same rack
        assert a == ShardMap(8).shard_of("R05-M0-N00-BPM")  # rebuildable
        assert 0 <= a < 8

    def test_racks_spread_across_shards(self):
        shard_map = ShardMap(8)
        used = {shard_map.shard_of(f"R{i:02d}-M0-N00") for i in range(48)}
        assert len(used) > 1

    def test_prefix_pinning(self):
        shard_map = ShardMap(8)
        # A complete rack component (separator follows) pins one shard.
        assert shard_map.shards_for_prefix("R05-M0") == \
            [shard_map.shard_of("R05-M0-N00")]
        # A bare or partial first component must fan out: "R0" also
        # matches R00..R09, and "R05" might be a prefix of nothing else
        # but the map cannot know the location grammar.
        assert shard_map.shards_for_prefix("R0") == list(range(8))
        assert shard_map.shards_for_prefix("R05") == list(range(8))
        assert shard_map.shards_for_prefix("") == list(range(8))


class TestPlanner:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError, match="unknown query kind"):
            plan_query("scan", "bpm", ShardMap(4))

    def test_only_aggregate_uses_the_cache(self):
        shard_map = ShardMap(4)
        by_kind = {kind: plan_query(kind, "bpm", shard_map)
                   for kind in QUERY_KINDS}
        assert [k for k, p in by_kind.items() if p.uses_cache] == ["aggregate"]

    def test_fan_out_reflects_prefix(self):
        shard_map = ShardMap(4)
        assert plan_query("range", "bpm", shard_map).fan_out == 4
        assert plan_query("range", "bpm", shard_map, "R00-M0").fan_out == 1
