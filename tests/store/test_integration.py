"""The store wired into its consumers: envdb, clusters, MonEQ."""

import pytest

from repro.bgq.envdb import SERVER_CAPACITY_RECORDS_PER_S
from repro.bgq.machine import BgqMachine
from repro.core.capability import PlatformCapabilities
from repro.core.moneq.backend import Backend
from repro.core.moneq.config import MoneqConfig
from repro.errors import ConfigError
from repro.host.cluster import Cluster
from repro.sim.rng import RngRegistry
from repro.store import Reading


class TestEnvdbOnTheStore:
    def test_default_is_the_seed_single_server(self):
        machine = BgqMachine(racks=1, rng=RngRegistry(3))
        store = machine.envdb.store
        assert store.n_shards == 1
        assert store.capacity_records_per_s == SERVER_CAPACITY_RECORDS_PER_S

    def test_sharded_machine_queries_like_the_seed(self):
        plain = BgqMachine(racks=2, rng=RngRegistry(3))
        sharded = BgqMachine(racks=2, rng=RngRegistry(3), envdb_shards=4)
        horizon = plain.envdb.poll_interval_s * 3
        plain.advance_to(horizon)
        sharded.advance_to(horizon)
        assert sharded.envdb.store.n_shards == 4
        assert sharded.envdb.query("bpm", 0.0, horizon) == \
            plain.envdb.query("bpm", 0.0, horizon)
        assert sharded.envdb.range_readings("bpm", 0.0, horizon, "R01") == \
            plain.envdb.range_readings("bpm", 0.0, horizon, "R01")

    def test_aggregate_matches_raw_reduce(self):
        machine = BgqMachine(racks=1, rng=RngRegistry(9))
        interval = machine.envdb.poll_interval_s
        machine.advance_to(interval * 4)
        aggs = machine.envdb.aggregate("bpm", "input_power_w",
                                       0.0, interval * 4, interval * 8)
        readings = machine.envdb.range_readings("bpm", 0.0, interval * 4)
        by_location = {}
        for reading in readings:
            by_location.setdefault(reading.location, []).append(
                reading.value("input_power_w"))
        assert {a.location for a in aggs} == set(by_location)
        for agg in aggs:
            values = by_location[agg.location]
            assert agg.count == len(values)
            assert agg.minimum == min(values)
            assert agg.maximum == max(values)
            assert agg.mean == pytest.approx(sum(values) / len(values))

    def test_dropped_records_surface_through_the_envdb(self):
        machine = BgqMachine(racks=48, rng=RngRegistry(5),
                             poll_interval_s=60.0)
        machine.advance_to(60.0)
        assert machine.envdb.capacity_fraction() > 1.0
        per_sweep = machine.envdb.sensors_per_poll - \
            int(60.0 * SERVER_CAPACITY_RECORDS_PER_S)
        assert machine.envdb.dropped_records == per_sweep


class TestClusterStore:
    def test_attach_and_record(self):
        cluster = Cluster("stampede", rng=RngRegistry(1))
        store = cluster.attach_store(n_shards=4)
        assert cluster.store is store
        readings = [Reading(1.0, f"stampede-{i:04d}", "rapl-msr",
                            {"pkg_w": float(i)}) for i in range(6)]
        report = cluster.record_readings("readings", readings, interval_s=1.0)
        assert report.accepted == 6
        assert store.latest("readings", "stampede-0003")[
            "stampede-0003"].value("pkg_w") == 3.0
        rows = store.range("readings", 0.0, 2.0, "stampede-0003")
        assert [r.location for r in rows] == ["stampede-0003"]

    def test_attach_twice_and_unattached_access_fail(self):
        cluster = Cluster("c", rng=RngRegistry(1))
        with pytest.raises(ConfigError, match="has no store"):
            cluster.store
        cluster.attach_store()
        with pytest.raises(ConfigError, match="already has a store"):
            cluster.attach_store()


class _FakeBackend(Backend):
    platform = "Fake"
    mechanism = "fake"

    def __init__(self, label, minimum):
        self.label = label
        self._minimum = minimum

    @property
    def min_interval_s(self):
        return self._minimum

    @property
    def query_latency_s(self):
        return 0.001

    def fields(self):
        return ["pkg_w"]

    def read_at(self, t):
        return {"pkg_w": 7.5}

    def capabilities(self):
        return PlatformCapabilities(platform=self.platform,
                                    available=frozenset())


class TestIntervalValidation:
    def test_default_resolves_to_the_slowest_minimum(self):
        backends = [_FakeBackend("a", 0.016), _FakeBackend("b", 0.560)]
        assert MoneqConfig().resolve_interval(backends) == 0.560

    def test_too_fast_interval_names_the_offending_backend(self):
        backends = [_FakeBackend("a", 0.016), _FakeBackend("slowcard", 0.560)]
        config = MoneqConfig(polling_interval_s=0.100)
        with pytest.raises(ConfigError, match=r"'slowcard'.*Fake.*'fake'"):
            config.resolve_interval(backends)

    def test_explicit_interval_at_or_above_floor_passes(self):
        backends = [_FakeBackend("a", 0.560)]
        config = MoneqConfig(polling_interval_s=0.560)
        assert config.resolve_interval(backends) == 0.560

    def test_zero_backends_rejected(self):
        with pytest.raises(ConfigError, match="zero backends"):
            MoneqConfig().resolve_interval([])


class TestReadReading:
    def test_backends_normalize_to_a_reading(self):
        backend = _FakeBackend("node-0001", 0.016)
        reading = backend.read_reading(3.5)
        assert reading == Reading(3.5, "node-0001", "fake", {"pkg_w": 7.5})
