"""Unit tests for the powercap sysfs access path."""

import pytest

from repro.errors import FileNotFoundVfsError, KernelTooOldError
from repro.host.kernel import Kernel
from repro.host.node import Node
from repro.host.permissions import USER
from repro.rapl.domains import RaplDomain
from repro.rapl.package import SANDY_BRIDGE, CpuPackage
from repro.rapl.powercap import install_powercap_driver, read_energy_uj
from repro.sim.rng import RngRegistry
from repro.workloads.gaussian import GaussianEliminationWorkload


def make_node(kernel="3.13"):
    node = Node("pc-host", kernel=Kernel(kernel), rng=RngRegistry(303))
    node.attach("cpu", CpuPackage(SANDY_BRIDGE, rng=node.rng.fork("cpu0")))
    install_powercap_driver(node)
    return node


class TestPowercapTree:
    def test_zone_layout_matches_kernel(self):
        node = make_node()
        node.kernel.modprobe("intel_rapl")
        base = "/sys/class/powercap/intel-rapl:0"
        assert node.vfs.read_text(f"{base}/name").strip() == "package-0"
        assert node.vfs.read_text(f"{base}:0/name").strip() == "pp0"
        assert node.vfs.read_text(f"{base}:2/name").strip() == "dram"

    def test_kernel_gate(self):
        node = Node("old", kernel=Kernel("3.12"))
        node.attach("cpu", CpuPackage(SANDY_BRIDGE))
        install_powercap_driver(node)
        with pytest.raises(KernelTooOldError):
            node.kernel.modprobe("intel_rapl")

    def test_unload_removes_tree(self):
        node = make_node()
        node.kernel.modprobe("intel_rapl")
        node.kernel.rmmod("intel_rapl")
        assert not node.vfs.exists("/sys/class/powercap/intel-rapl:0")


class TestEnergyCounter:
    def test_world_readable_without_chmod(self):
        """The path's selling point vs the msr chardev."""
        node = make_node()
        node.kernel.modprobe("intel_rapl")
        value = read_energy_uj(node, "/sys/class/powercap/intel-rapl:0",
                               creds=USER)
        assert value >= 0

    def test_counts_microjoules(self):
        node = make_node()
        node.kernel.modprobe("intel_rapl")
        zone = "/sys/class/powercap/intel-rapl:0"
        e0 = read_energy_uj(node, zone)
        node.clock.advance(10.0)
        e1 = read_energy_uj(node, zone)
        # ~10 s of idle 5.5 W = 55 J = 55e6 uJ.
        assert (e1 - e0) == pytest.approx(55e6, rel=0.02)

    def test_agrees_with_msr_counter(self):
        node = make_node()
        node.kernel.modprobe("intel_rapl")
        package = node.device("cpu")
        node.clock.advance(5.0)
        sysfs_uj = read_energy_uj(node, "/sys/class/powercap/intel-rapl:0")
        msr_uj = int(package.energy_raw(RaplDomain.PKG, node.clock.now)
                     * package.units.energy_j * 1e6)
        assert sysfs_uj == msr_uj

    def test_tracks_load(self):
        node = make_node()
        node.kernel.modprobe("intel_rapl")
        package = node.device("cpu")
        package.board.schedule(GaussianEliminationWorkload(n=12_000), t_start=0.0)
        zone = "/sys/class/powercap/intel-rapl:0"
        e0 = read_energy_uj(node, zone)
        node.clock.advance(10.0)
        e1 = read_energy_uj(node, zone)
        assert (e1 - e0) > 30e6 * 10  # well above idle rate


class TestLimitFiles:
    def test_limit_file_reflects_msr_state(self):
        node = make_node()
        node.kernel.modprobe("intel_rapl")
        package = node.device("cpu")
        package.set_power_limit(40.0, t=0.0)
        text = node.vfs.read_text(
            "/sys/class/powercap/intel-rapl:0/power_limit_uw")
        assert int(text.strip()) == pytest.approx(40e6, abs=0.125e6)
        enabled = node.vfs.read_text(
            "/sys/class/powercap/intel-rapl:0/enabled")
        assert enabled.strip() == "1"
