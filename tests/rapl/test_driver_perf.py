"""Integration tests: msr driver and perf_event access paths."""

import pytest

from repro.errors import AccessDeniedError, DriverError, KernelTooOldError
from repro.host.kernel import Kernel
from repro.host.node import Node
from repro.host.permissions import ROOT, USER
from repro.rapl.domains import RaplDomain
from repro.rapl.driver import install_msr_driver, read_msr_userspace
from repro.rapl.msr import MSR_PKG_ENERGY_STATUS, MSR_RAPL_POWER_UNIT
from repro.rapl.package import SANDY_BRIDGE, CpuPackage
from repro.rapl.perf_event import PERF_RAPL_EVENTS, PerfEventRapl
from repro.sim.rng import RngRegistry


def make_node(kernel_version="2.6.32"):
    node = Node("n0", kernel=Kernel(kernel_version))
    package = CpuPackage(SANDY_BRIDGE, rng=RngRegistry(11), logical_cpus=4)
    node.attach("cpu", package)
    install_msr_driver(node)
    return node, package


class TestMsrDriver:
    def test_modprobe_creates_chardevs(self):
        node, _ = make_node()
        node.kernel.modprobe("msr")
        for cpu in range(4):
            assert node.vfs.exists(f"/dev/cpu/{cpu}/msr")

    def test_no_devices_before_modprobe(self):
        node, _ = make_node()
        assert not node.vfs.exists("/dev/cpu/0/msr")

    def test_root_only_by_default(self):
        node, _ = make_node()
        node.kernel.modprobe("msr")
        with pytest.raises(AccessDeniedError):
            read_msr_userspace(node, 0, MSR_RAPL_POWER_UNIT, USER)

    def test_readonly_grant_opens_user_reads(self):
        node, _ = make_node()
        driver = node.kernel.modprobe("msr")
        driver.grant_readonly_access()
        value = read_msr_userspace(node, 0, MSR_RAPL_POWER_UNIT, USER)
        assert value == 0xA1003

    def test_read_charges_paper_latency(self):
        node, _ = make_node()
        node.kernel.modprobe("msr")
        t0 = node.clock.now
        read_msr_userspace(node, 0, MSR_PKG_ENERGY_STATUS, ROOT)
        assert node.clock.now - t0 == pytest.approx(0.03e-3)

    def test_all_logical_cpus_alias_same_package(self):
        node, package = make_node()
        node.kernel.modprobe("msr")
        v0 = read_msr_userspace(node, 0, MSR_RAPL_POWER_UNIT, ROOT)
        v3 = read_msr_userspace(node, 3, MSR_RAPL_POWER_UNIT, ROOT)
        assert v0 == v3

    def test_write_requires_root_even_after_chmod(self):
        node, _ = make_node()
        driver = node.kernel.modprobe("msr")
        driver.grant_readonly_access()
        node.vfs.chmod("/dev/cpu/0/msr", 0o666)  # even world-writable node
        with node.vfs.open("/dev/cpu/0/msr", "rw", USER) as fh:
            with pytest.raises(DriverError):
                fh.pwrite(0x610, b"\x00" * 8)

    def test_bad_read_size_rejected(self):
        node, _ = make_node()
        node.kernel.modprobe("msr")
        with node.vfs.open("/dev/cpu/0/msr", "r", ROOT) as fh:
            with pytest.raises(DriverError):
                fh.pread(MSR_RAPL_POWER_UNIT, 4)

    def test_unload_removes_nodes(self):
        node, _ = make_node()
        node.kernel.modprobe("msr")
        node.kernel.rmmod("msr")
        assert not node.vfs.exists("/dev/cpu/0/msr")

    def test_driver_without_cpus_rejected(self):
        node = Node("empty")
        install_msr_driver(node)
        with pytest.raises(DriverError):
            node.kernel.modprobe("msr")

    def test_query_latency_charged_to_attached_process(self):
        node, _ = make_node()
        driver = node.kernel.modprobe("msr")
        proc = node.spawn("profiler")
        driver.attach_process(proc)
        read_msr_userspace(node, 0, MSR_PKG_ENERGY_STATUS, ROOT)
        assert proc.cpu_seconds == pytest.approx(0.03e-3)


class TestPerfEvent:
    def test_old_kernel_rejected(self):
        node, package = make_node("2.6.32")
        with pytest.raises(KernelTooOldError):
            PerfEventRapl(node, package)

    def test_new_kernel_accepted(self):
        node, package = make_node("3.14")
        perf = PerfEventRapl(node, package)
        assert "power/energy-pkg/" in perf.available_events()

    def test_read_matches_msr_counter(self):
        node, package = make_node("3.14")
        perf = PerfEventRapl(node, package)
        node.clock.advance(1.0)
        joules = perf.read_joules("power/energy-pkg/")
        # ~1 s idle at 5.5 W (plus the read latency slice).
        assert joules == pytest.approx(SANDY_BRIDGE.idle_w * node.clock.now, rel=0.02)

    def test_unknown_event_rejected(self):
        node, package = make_node("3.14")
        with pytest.raises(KeyError):
            PerfEventRapl(node, package).read("power/energy-flux/")

    def test_perf_slower_than_msr(self):
        """The paper's expectation: kernel crossing costs more than a
        direct register read."""
        from repro.rapl.package import CpuPackage as Pkg
        from repro.rapl.perf_event import PERF_READ_LATENCY_S

        assert PERF_READ_LATENCY_S > Pkg.MSR_READ_LATENCY_S

    def test_all_four_events_present(self):
        assert len(PERF_RAPL_EVENTS) == 4
        assert {d for d in PERF_RAPL_EVENTS.values()} == set(RaplDomain)
