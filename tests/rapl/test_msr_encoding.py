"""Unit tests for RAPL MSR register encodings."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import DriverError
from repro.rapl.domains import RAPL_DOMAIN_TABLE, RaplDomain, domain_info
from repro.rapl.msr import (
    ENERGY_STATUS_MSR,
    MSR_PKG_ENERGY_STATUS,
    MSR_RAPL_POWER_UNIT,
    RaplUnits,
    decode_power_limit,
    decode_units,
    encode_power_limit,
    encode_units,
)


class TestUnits:
    def test_sandy_bridge_defaults(self):
        units = RaplUnits()
        assert units.power_w == 0.125
        assert units.energy_j == pytest.approx(15.3e-6, rel=0.01)
        assert units.time_s == pytest.approx(976e-6, rel=0.01)

    def test_roundtrip_default(self):
        assert decode_units(encode_units(RaplUnits())) == RaplUnits()

    @given(st.integers(0, 15), st.integers(0, 31), st.integers(0, 15))
    def test_roundtrip_any(self, p, e, t):
        units = RaplUnits(p, e, t)
        assert decode_units(encode_units(units)) == units

    def test_out_of_field_rejected(self):
        with pytest.raises(DriverError):
            encode_units(RaplUnits(power=16))

    def test_default_raw_value_matches_sdm(self):
        # 0xA1003: time=10, energy=16, power=3.
        assert encode_units(RaplUnits()) == 0xA1003


class TestPowerLimit:
    def test_roundtrip(self):
        units = RaplUnits()
        raw = encode_power_limit(95.0, True, 0.01, units)
        decoded = decode_power_limit(raw, units)
        assert decoded.limit_w == pytest.approx(95.0, abs=units.power_w)
        assert decoded.enabled
        assert decoded.window_s == pytest.approx(0.01, abs=units.time_s)

    def test_disabled_limit(self):
        units = RaplUnits()
        decoded = decode_power_limit(encode_power_limit(50.0, False, 0.0, units), units)
        assert not decoded.enabled

    def test_limit_resolution_is_power_unit(self):
        units = RaplUnits()
        decoded = decode_power_limit(encode_power_limit(50.0625, True, 0.0, units), units)
        assert decoded.limit_w in (50.0, 50.125)  # snapped to 1/8 W

    def test_overflow_rejected(self):
        with pytest.raises(DriverError):
            encode_power_limit(1e6, True, 0.0, RaplUnits())

    def test_negative_rejected(self):
        with pytest.raises(DriverError):
            encode_power_limit(-1.0, True, 0.0, RaplUnits())

    @given(st.floats(min_value=1.0, max_value=4000.0))
    def test_decode_within_one_quantum(self, watts):
        units = RaplUnits()
        decoded = decode_power_limit(encode_power_limit(watts, True, 0.0, units), units)
        assert abs(decoded.limit_w - watts) <= units.power_w / 2 + 1e-9


class TestDomainTable:
    def test_four_domains(self):
        assert {row.domain for row in RAPL_DOMAIN_TABLE} == set(RaplDomain)

    def test_pp1_not_meaningful_on_servers(self):
        assert not domain_info(RaplDomain.PP1).meaningful_on_servers

    def test_no_per_core_resolution_anywhere(self):
        # The paper's scope limitation: socket-level only.
        assert all(not row.per_core_resolution for row in RAPL_DOMAIN_TABLE)

    def test_energy_status_addresses(self):
        assert ENERGY_STATUS_MSR[RaplDomain.PKG] == MSR_PKG_ENERGY_STATUS == 0x611
        assert MSR_RAPL_POWER_UNIT == 0x606
