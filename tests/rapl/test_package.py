"""Unit tests for the CPU package device."""

import numpy as np
import pytest

from repro.errors import DriverError
from repro.rapl.domains import RaplDomain
from repro.rapl.msr import (
    MSR_PKG_ENERGY_STATUS,
    MSR_PKG_POWER_LIMIT,
    MSR_RAPL_POWER_UNIT,
    decode_units,
)
from repro.rapl.package import SANDY_BRIDGE, CpuPackage
from repro.sim.rng import RngRegistry
from repro.workloads.gaussian import GaussianEliminationWorkload
from repro.workloads.toy import IdleWorkload


@pytest.fixture
def package():
    return CpuPackage(SANDY_BRIDGE, rng=RngRegistry(7))


@pytest.fixture
def loaded_package():
    pkg = CpuPackage(SANDY_BRIDGE, rng=RngRegistry(7))
    pkg.board.schedule(GaussianEliminationWorkload(n=8000, gflops=22.0), t_start=5.0)
    return pkg


class TestPowerModel:
    def test_idle_power_is_floor(self, package):
        assert package.true_power(RaplDomain.PKG, 1.0) == SANDY_BRIDGE.idle_w

    def test_loaded_power_in_plausible_band(self, loaded_package):
        t = np.arange(6.0, 20.0, 0.05)
        p = loaded_package.true_power(RaplDomain.PKG, t)
        assert 35.0 < p.mean() < 50.0  # Figure 3's ~45-50 W band
        assert p.max() < 55.0

    def test_pkg_exceeds_pp0(self, loaded_package):
        t = 10.0
        pkg = loaded_package.true_power(RaplDomain.PKG, t)
        pp0 = loaded_package.true_power(RaplDomain.PP0, t)
        assert pkg > pp0 > 0.0

    def test_pp1_reads_zero_on_servers(self, loaded_package):
        assert loaded_package.true_power(RaplDomain.PP1, 10.0) == 0.0

    def test_dram_separate_from_package(self, loaded_package):
        dram = float(loaded_package.true_power(RaplDomain.DRAM, 10.0))
        assert SANDY_BRIDGE.dram_idle_w < dram <= SANDY_BRIDGE.dram_idle_w + SANDY_BRIDGE.dram_w

    def test_rhythmic_drop_visible_in_package_power(self, loaded_package):
        t = np.arange(6.0, 26.0, 0.1)
        p = loaded_package.true_power(RaplDomain.PKG, t)
        assert p.max() - p.min() > 4.0  # the ~5 W rhythmic drop


class TestEnergyCounters:
    def test_counter_advances_with_energy(self, package):
        r0 = package.energy_raw(RaplDomain.PKG, 1.0)
        r1 = package.energy_raw(RaplDomain.PKG, 2.0)
        assert r1 > r0

    def test_counter_read_is_deterministic(self, package):
        assert package.energy_raw(RaplDomain.PKG, 1.5) == package.energy_raw(RaplDomain.PKG, 1.5)

    def test_delta_matches_true_energy_at_60ms(self, package):
        """At the paper's recommended ~60 ms cadence the counter delta is
        accurate."""
        true = SANDY_BRIDGE.idle_w * 0.06
        measured = package.energy_joules_between(RaplDomain.PKG, 1.0, 1.06)
        assert measured == pytest.approx(true, rel=0.05)

    def test_short_reads_are_noisy(self, package):
        """Sub-millisecond deltas carry the documented jitter: the error
        relative to true energy is large at 0.5 ms."""
        errors = []
        for k in range(50):
            t0 = 1.0 + 0.002 * k
            measured = package.energy_joules_between(RaplDomain.PKG, t0, t0 + 0.0005)
            true = SANDY_BRIDGE.idle_w * 0.0005
            errors.append(abs(measured - true) / true)
        assert max(errors) > 0.5  # often misses a whole update window

    def test_wrap_period_near_60s_at_kw(self, package):
        # 2^32 x 2^-16 J = 65536 J; ~65.5 s at 1 kW.
        assert package.wrap_period_at(1000.0) == pytest.approx(65.536)

    def test_counter_wraps_silently(self):
        """A >wrap-period gap loses energy without any error signal."""
        pkg = CpuPackage(SANDY_BRIDGE, rng=RngRegistry(1))
        # Constant idle 5.5 W -> wrap every ~11900 s; use long gap.
        gap = pkg.wrap_period_at(SANDY_BRIDGE.idle_w) * 2.5
        measured = pkg.energy_joules_between(RaplDomain.PKG, 0.0, gap)
        true = SANDY_BRIDGE.idle_w * gap
        assert measured < true * 0.75


class TestMsrFile:
    def test_unit_register(self, package):
        units = decode_units(package.read_msr(MSR_RAPL_POWER_UNIT, 0.0))
        assert units.energy_j == 2.0 ** -16

    def test_energy_status_register(self, package):
        raw = package.read_msr(MSR_PKG_ENERGY_STATUS, 2.0)
        assert raw == package.energy_raw(RaplDomain.PKG, 2.0)

    def test_unimplemented_msr_faults(self, package):
        with pytest.raises(DriverError):
            package.read_msr(0x1234, 0.0)

    def test_energy_status_not_writable(self, package):
        with pytest.raises(DriverError):
            package.write_msr(MSR_PKG_ENERGY_STATUS, 0, 0.0)

    def test_power_limit_roundtrip_via_msr(self, package):
        package.set_power_limit(40.0, t=10.0)
        raw = package.read_msr(MSR_PKG_POWER_LIMIT, 11.0)
        assert raw != 0
        limit = package.get_power_limit()
        assert limit.enabled
        assert limit.limit_w == pytest.approx(40.0, abs=0.125)


class TestPowerCapping:
    def test_cap_clamps_package_power(self):
        pkg = CpuPackage(SANDY_BRIDGE, rng=RngRegistry(3))
        # n=12000 runs ~52 s, comfortably spanning the cap change.
        pkg.board.schedule(GaussianEliminationWorkload(n=12_000), t_start=0.0)
        uncapped = float(pkg.true_power(RaplDomain.PKG, 8.0))
        pkg.set_power_limit(uncapped - 10.0, t=20.0)
        # 28 s is in-phase with 8 s (sync period 5 s), so the uncapped
        # power there equals the 8 s value; the cap now clamps it.
        # Snapped to the 1/8 W power unit by the register encoding.
        assert float(pkg.true_power(RaplDomain.PKG, 28.0)) == pytest.approx(
            uncapped - 10.0, abs=0.125
        )
        # Pre-cap history unaffected.
        assert float(pkg.true_power(RaplDomain.PKG, 8.0)) == pytest.approx(uncapped)

    def test_idle_workload_unaffected_by_generous_cap(self):
        pkg = CpuPackage(SANDY_BRIDGE, rng=RngRegistry(3))
        pkg.board.schedule(IdleWorkload(30.0))
        pkg.set_power_limit(90.0, t=0.0)
        assert float(pkg.true_power(RaplDomain.PKG, 10.0)) == SANDY_BRIDGE.idle_w
