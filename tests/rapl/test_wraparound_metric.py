"""Regression: 32-bit wraparounds emit their event exactly once per wrap.

The decoded energy keeps the paper's single-wrap correction (multi-wrap
sampling still produces the erroneous data §II-B warns about), but the
``repro_rapl_wraparounds_total`` counter reports the *true* wrap count —
one increment per elapsed wrap, no more, no less, however the interval
is chopped up.
"""

import pytest

from repro.obs.instruments import RAPL_WRAPAROUNDS, RAPL_WRAP_CORRECTIONS
from repro.rapl.domains import RaplDomain
from repro.rapl.package import SANDY_BRIDGE, CpuPackage
from repro.sim.rng import RngRegistry


@pytest.fixture
def package() -> CpuPackage:
    return CpuPackage(SANDY_BRIDGE, rng=RngRegistry(99))


def _pkg_wraps() -> float:
    return RAPL_WRAPAROUNDS.value(RaplDomain.PKG.value)


class TestWraparoundMetric:
    def test_no_wrap_no_event(self, package):
        before = _pkg_wraps()
        package.energy_joules_between(RaplDomain.PKG, 0.0, 60.0)
        assert _pkg_wraps() == before

    def test_single_wrap_emits_exactly_one(self, package):
        gap = package.wrap_period_at(SANDY_BRIDGE.idle_w) * 1.5
        assert package.wraps_between(RaplDomain.PKG, 0.0, gap) == 1
        before = _pkg_wraps()
        package.energy_joules_between(RaplDomain.PKG, 0.0, gap)
        assert _pkg_wraps() == before + 1

    def test_multi_wrap_emits_once_per_wrap(self, package):
        """One decoded delta spanning several wraps: the event count is
        the true wrap count, not one, not per-read."""
        gap = package.wrap_period_at(SANDY_BRIDGE.idle_w) * 3.4
        true_wraps = package.wraps_between(RaplDomain.PKG, 0.0, gap)
        assert true_wraps == 3
        before = _pkg_wraps()
        package.energy_joules_between(RaplDomain.PKG, 0.0, gap)
        assert _pkg_wraps() == before + true_wraps

    def test_chopped_interval_emits_same_total(self, package):
        """Reading the same multi-wrap window in sub-wrap steps reports
        the identical wrap total — no double counting at step seams."""
        wrap_s = package.wrap_period_at(SANDY_BRIDGE.idle_w)
        t_end = wrap_s * 3.4
        true_wraps = package.wraps_between(RaplDomain.PKG, 0.0, t_end)
        step = wrap_s / 3.0
        before = _pkg_wraps()
        t = 0.0
        while t < t_end:
            t_next = min(t + step, t_end)
            package.energy_joules_between(RaplDomain.PKG, t, t_next)
            t = t_next
        assert _pkg_wraps() == before + true_wraps

    def test_decode_stays_single_wrap_corrected(self, package):
        """The metric does NOT fix the data: past one wrap the decoded
        energy is still short by a whole wrap per extra wrap — the
        erroneous data the paper warns about remains faithfully wrong."""
        wrap_s = package.wrap_period_at(SANDY_BRIDGE.idle_w)
        gap = wrap_s * 2.5
        measured = package.energy_joules_between(RaplDomain.PKG, 0.0, gap)
        true = SANDY_BRIDGE.idle_w * gap
        assert measured < true * 0.75

    def test_wraps_between_is_pure(self, package):
        """The truth helper reports without emitting events."""
        gap = package.wrap_period_at(SANDY_BRIDGE.idle_w) * 2.2
        before = _pkg_wraps()
        assert package.wraps_between(RaplDomain.PKG, 0.0, gap) == 2
        assert _pkg_wraps() == before


class TestConsumerCorrections:
    def test_msr_backend_counts_its_single_wrap_correction(self, package):
        from repro.core.moneq.backends import RaplMsrBackend

        backend = RaplMsrBackend(package, "s0")
        wrap_s = package.wrap_period_at(SANDY_BRIDGE.idle_w)
        before = RAPL_WRAP_CORRECTIONS.value("rapl_msr")
        backend.read_at(wrap_s * 0.9)   # primes _last just before the wrap
        backend.read_at(wrap_s * 1.1)   # raw went backwards: correction
        after = RAPL_WRAP_CORRECTIONS.value("rapl_msr")
        assert after >= before + 1
