"""Failure-injection tests: the system degrades loudly, not silently —
and every injected failure leaves a fingerprint in the error counters."""

import math

import numpy as np
import pytest

from repro.api.chaos import FaultPlan, FaultRule
from repro.api.mech import mechanisms
from repro.core import moneq
from repro.core.moneq.backends import RaplMsrBackend
from repro.core.moneq.config import MoneqConfig
from repro.core.moneq.session import MoneqSession
from repro.errors import (
    AccessDeniedError,
    DeadlockError,
    FileNotFoundVfsError,
    IpmbError,
    MoneqBufferFullError,
    NotADirectoryVfsError,
    RankError,
    ScifDisconnectedError,
)
from repro.host.permissions import USER
from repro.obs.instruments import COLLECTOR_ERRORS, LAUNCHER_ERRORS
from repro.runtime.launcher import Launcher
from repro.runtime.ops import Barrier, Compute, Recv, Send
from repro.testbeds import mechanism_backend, phi_node, rapl_node
from repro.xeonphi.ipmb import IpmbMessage, SmcIpmbResponder


def _value(family_name: str, *label_values) -> float:
    """Current global-registry value of one counter sample."""
    import repro.obs as obs

    return obs.get_registry().get(family_name).value(*label_values)


class TestRuntimeFailures:
    def test_rank_crash_mid_communication_does_not_hang(self):
        def program(ctx):
            if ctx.rank == 0:
                yield Send(dest=1, payload="x")
                raise RuntimeError("rank 0 dies after sending")
            yield Recv(source=0)
            yield Recv(source=0)  # would wait forever on the dead rank

        before = LAUNCHER_ERRORS.value("rank_crash")
        with pytest.raises(RankError) as exc:
            Launcher(program, size=2).run()
        assert exc.value.rank == 0
        assert LAUNCHER_ERRORS.value("rank_crash") == before + 1

    def test_survivors_blocked_on_dead_rank_deadlock_if_crash_is_silent(self):
        """A rank that returns early (not crashes) leaves waiters
        deadlocked — and the launcher says exactly who waits on what."""
        def program(ctx):
            if ctx.rank == 0:
                return "left early"
            yield Recv(source=0, tag=9)

        before = LAUNCHER_ERRORS.value("deadlock")
        with pytest.raises(DeadlockError, match="tag=9"):
            Launcher(program, size=2).run()
        assert LAUNCHER_ERRORS.value("deadlock") == before + 1

    def test_mixed_collective_entry_reported(self):
        def program(ctx):
            if ctx.rank == 0:
                yield Barrier()
            else:
                yield Compute(1.0)  # never joins

        with pytest.raises(DeadlockError, match="Barrier"):
            Launcher(program, size=2).run()


class TestMoneqFailures:
    def test_buffer_exhaustion_surfaces_during_run(self):
        node, _ = rapl_node(seed=51)
        session = moneq.initialize(node, MoneqConfig(buffer_slots=5))
        full_before = _value("repro_moneq_buffer_full_total")
        errors_before = COLLECTOR_ERRORS.value("rapl_msr", "buffer_full")
        with pytest.raises(MoneqBufferFullError, match="buffer of 5"):
            node.events.run_until(node.clock.now + 60.0)
        assert _value("repro_moneq_buffer_full_total") == full_before + 1
        assert COLLECTOR_ERRORS.value("rapl_msr", "buffer_full") == \
            errors_before + 1
        # State is still coherent: finalize is refused exactly once.
        session.finalize()

    def test_dead_agent_process_does_not_abort_collection(self):
        node, _ = rapl_node(seed=52)
        package = node.device("cpu")
        proc = node.spawn("app")
        session = MoneqSession(
            [RaplMsrBackend(package, "s0")], node.events,
            processes=[proc], node_count=1, vfs=node.vfs,
        )
        node.events.run_until(node.clock.now + 1.0)
        node.processes.exit(proc.pid)  # app dies mid-profile
        node.events.run_until(node.clock.now + 1.0)
        result = session.finalize()
        # Collection continued; only live-process CPU time was charged.
        assert result.overhead.ticks >= 30
        assert proc.cpu_seconds > 0.0

    def test_output_dir_colliding_with_file_fails_loudly(self):
        node, _ = rapl_node(seed=53)
        node.vfs.write_text("/moneq", "not a directory")
        session = moneq.initialize(node)
        node.events.run_until(node.clock.now + 0.5)
        with pytest.raises((NotADirectoryVfsError, FileNotFoundVfsError)):
            session.finalize()

    def test_no_ticks_session_finalizes_cleanly(self):
        node, _ = rapl_node(seed=54)
        session = moneq.initialize(node)
        # Finalize before the first 60 ms tick.
        node.events.run_until(node.clock.now + 0.01)
        result = session.finalize()
        assert result.overhead.ticks == 0
        assert len(result.trace("pkg_w")) == 0

    def test_timer_stops_after_finalize(self):
        node, _ = rapl_node(seed=55)
        session = moneq.initialize(node)
        node.events.run_until(node.clock.now + 1.0)
        result = session.finalize()
        ticks = result.overhead.ticks
        node.events.run_until(node.clock.now + 5.0)
        assert session.ticks == ticks  # no posthumous collection


class TestEveryMechanismDegrades:
    """Fault injection over the *registry*, not a hand-kept list: a
    newly declared MechanismSpec is pulled into these tests by
    ``repro.api.mech.mechanisms()`` the moment it registers — forgetting to
    extend the failure suite is impossible by construction."""

    @pytest.mark.parametrize("name", sorted(mechanisms()))
    def test_total_fault_degrades_to_sensor_dark(self, name):
        from repro.chaos.faults import default_kind

        backend = mechanism_backend(name, seed=0xFA11)
        plan = FaultPlan(seed=3, rules=(FaultRule(name, rate=1.0),))
        kind = default_kind(name)
        errors_before = COLLECTOR_ERRORS.value(name, kind)
        t0 = backend.min_interval_s
        times = t0 + np.arange(4, dtype=np.float64) * backend.min_interval_s
        with plan.active():
            block = backend.read_block(times)
        # Every crossing failed: each row of every field reads dark.
        # (A wedged daemon *serves stale* rather than dark — but with
        # nothing ever delivered before the wedge, stale degrades to
        # sensor-dark too, so the visible contract is the same.)
        for field in backend.fields():
            assert np.isnan(block[field]).all()
        # ... with the mechanism's own fingerprint in the error counter.
        assert COLLECTOR_ERRORS.value(name, kind) > errors_before
        if kind == "daemon_wedged":
            assert plan.stats.stale == times.shape[0]
            assert plan.stats.dark == 0
        else:
            assert plan.stats.dark == times.shape[0]

    @pytest.mark.parametrize("name", sorted(mechanisms()))
    def test_scalar_read_at_degrades_too(self, name):
        backend = mechanism_backend(name, seed=0xFA12)
        plan = FaultPlan(seed=4, rules=(FaultRule(name, rate=1.0),))
        with plan.active():
            reading = backend.read_at(backend.min_interval_s)
        assert all(math.isnan(v) for v in reading.values())


class TestDeviceFailures:
    def test_scif_peer_close_mid_session(self):
        rig = phi_node(seed=56)
        rig.sysmgmt.query_power_w()  # works
        rig.sysmgmt._endpoint.close()
        before = COLLECTOR_ERRORS.value("sysmgmt", "disconnected")
        with pytest.raises((ScifDisconnectedError, Exception)):
            rig.sysmgmt.query_power_w()
        assert COLLECTOR_ERRORS.value("sysmgmt", "disconnected") == before + 1

    def test_scif_endpoint_send_after_close_counted(self):
        rig = phi_node(seed=56)
        endpoint = rig.sysmgmt._endpoint
        endpoint.close()
        before = COLLECTOR_ERRORS.value("scif", "disconnected")
        with pytest.raises(ScifDisconnectedError):
            endpoint.send(b"late")
        with pytest.raises(ScifDisconnectedError):
            endpoint.recv()
        assert COLLECTOR_ERRORS.value("scif", "disconnected") == before + 2

    def test_msr_unload_revokes_device_nodes(self):
        node, _ = rapl_node(seed=57)
        node.kernel.rmmod("msr")
        from repro.host.permissions import ROOT
        from repro.rapl.driver import read_msr_userspace
        from repro.rapl.msr import MSR_RAPL_POWER_UNIT

        with pytest.raises(FileNotFoundVfsError):
            read_msr_userspace(node, 0, MSR_RAPL_POWER_UNIT, ROOT)

    def test_msr_permission_revocation(self):
        node, _ = rapl_node(seed=58)
        node.vfs.chmod("/dev/cpu/0/msr", 0o600)  # admin tightens access
        from repro.rapl.driver import read_msr_userspace
        from repro.rapl.msr import MSR_RAPL_POWER_UNIT

        before = COLLECTOR_ERRORS.value("rapl_msr", "permission_denied")
        with pytest.raises(AccessDeniedError):
            read_msr_userspace(node, 0, MSR_RAPL_POWER_UNIT, USER)
        assert COLLECTOR_ERRORS.value("rapl_msr", "permission_denied") == \
            before + 1

    def test_ipmb_misaddressed_request_rejected(self):
        rig = phi_node(seed=59)
        responder = SmcIpmbResponder(rig.smc, rig.node.clock)
        stray = IpmbMessage(rs_addr=0x42, net_fn=0x04, rq_addr=0x20,
                            rq_seq=1, cmd=0x2D, data=b"\x00")
        with pytest.raises(IpmbError, match="addressed"):
            responder.handle(stray)

    def test_ipmb_wrong_command_rejected(self):
        rig = phi_node(seed=60)
        responder = SmcIpmbResponder(rig.smc, rig.node.clock)
        bad = IpmbMessage(rs_addr=0x30, net_fn=0x06, rq_addr=0x20,
                          rq_seq=1, cmd=0x01, data=b"\x00")
        with pytest.raises(IpmbError, match="unsupported"):
            responder.handle(bad)
