"""Unit tests for the discrete-event queue."""

import pytest

from repro.errors import SimulationError
from repro.sim.events import EventQueue


def test_events_fire_in_time_order(queue):
    order = []
    queue.schedule(2.0, lambda t: order.append("b"))
    queue.schedule(1.0, lambda t: order.append("a"))
    queue.schedule(3.0, lambda t: order.append("c"))
    queue.run_all()
    assert order == ["a", "b", "c"]


def test_same_time_events_fire_in_schedule_order(queue):
    order = []
    for tag in ["first", "second", "third"]:
        queue.schedule(1.0, lambda t, tag=tag: order.append(tag))
    queue.run_all()
    assert order == ["first", "second", "third"]


def test_clock_advances_to_event_time(queue):
    seen = []
    queue.schedule(4.25, lambda t: seen.append(queue.clock.now))
    queue.run_all()
    assert seen == [4.25]
    assert queue.clock.now == 4.25


def test_scheduling_in_past_rejected(queue):
    queue.clock.advance(5.0)
    with pytest.raises(SimulationError):
        queue.schedule(4.0, lambda t: None)


def test_schedule_in_relative_delay(queue):
    queue.clock.advance(2.0)
    fired = []
    queue.schedule_in(1.5, lambda t: fired.append(t))
    queue.run_all()
    assert fired == [3.5]


def test_negative_delay_rejected(queue):
    with pytest.raises(SimulationError):
        queue.schedule_in(-1.0, lambda t: None)


def test_run_until_fires_only_due_events(queue):
    fired = []
    queue.schedule(1.0, lambda t: fired.append(1.0))
    queue.schedule(2.0, lambda t: fired.append(2.0))
    queue.schedule(5.0, lambda t: fired.append(5.0))
    count = queue.run_until(3.0)
    assert count == 2
    assert fired == [1.0, 2.0]
    assert queue.clock.now == 3.0


def test_run_until_boundary_event_fires(queue):
    fired = []
    queue.schedule(3.0, lambda t: fired.append(t))
    queue.run_until(3.0)
    assert fired == [3.0]


def test_run_until_advances_clock_even_with_no_events(queue):
    queue.run_until(7.0)
    assert queue.clock.now == 7.0


def test_cancelled_event_does_not_fire(queue):
    fired = []
    event = queue.schedule(1.0, lambda t: fired.append(t))
    event.cancel()
    queue.run_all()
    assert fired == []


def test_len_excludes_cancelled(queue):
    e1 = queue.schedule(1.0, lambda t: None)
    queue.schedule(2.0, lambda t: None)
    assert len(queue) == 2
    e1.cancel()
    assert len(queue) == 1


def test_callback_may_schedule_more_events(queue):
    fired = []

    def chain(t):
        fired.append(t)
        if t < 3.0:
            queue.schedule(t + 1.0, chain)

    queue.schedule(1.0, chain)
    queue.run_all()
    assert fired == [1.0, 2.0, 3.0]


def test_step_returns_false_on_empty(queue):
    assert queue.step() is False


def test_run_all_guards_against_runaway(queue):
    def forever(t):
        queue.schedule(t + 1.0, forever)

    queue.schedule(1.0, forever)
    with pytest.raises(SimulationError):
        queue.run_all(max_events=50)


def test_peek_time(queue):
    assert queue.peek_time() is None
    queue.schedule(2.0, lambda t: None)
    queue.schedule(1.0, lambda t: None)
    assert queue.peek_time() == 1.0
