"""Unit tests for the periodic (virtual SIGALRM) timer."""

import pytest

from repro.errors import ConfigError
from repro.sim.events import EventQueue
from repro.sim.timers import PeriodicTimer


def make_recorder():
    ticks = []

    def handler(t, index):
        ticks.append((t, index))

    return ticks, handler


def test_fires_at_multiples_of_interval(queue):
    ticks, handler = make_recorder()
    PeriodicTimer(queue, interval=0.5, handler=handler)
    queue.run_until(2.0)
    assert [t for t, _ in ticks] == [0.5, 1.0, 1.5, 2.0]
    assert [i for _, i in ticks] == [0, 1, 2, 3]


def test_interval_must_be_positive(queue):
    with pytest.raises(ConfigError):
        PeriodicTimer(queue, interval=0.0, handler=lambda t, i: None)


def test_start_offset_shifts_first_tick(queue):
    ticks, handler = make_recorder()
    PeriodicTimer(queue, interval=1.0, handler=handler, start_offset=0.25)
    queue.run_until(2.5)
    assert [t for t, _ in ticks] == [0.25, 1.25, 2.25]


def test_zero_start_offset_fires_immediately(queue):
    ticks, handler = make_recorder()
    PeriodicTimer(queue, interval=1.0, handler=handler, start_offset=0.0)
    queue.run_until(1.0)
    assert [t for t, _ in ticks] == [0.0, 1.0]


def test_negative_offset_rejected(queue):
    with pytest.raises(ConfigError):
        PeriodicTimer(queue, interval=1.0, handler=lambda t, i: None, start_offset=-0.1)


def test_cancel_stops_future_ticks(queue):
    ticks = []
    timer = None

    def handler(t, index):
        ticks.append(t)
        if len(ticks) == 2:
            timer.cancel()

    timer = PeriodicTimer(queue, interval=1.0, handler=handler)
    queue.run_until(10.0)
    assert ticks == [1.0, 2.0]
    assert not timer.armed


def test_handler_cost_does_not_drift_schedule(queue):
    """A handler that burns 30% of the period must not delay later ticks:
    deadlines stay on the epoch grid (drift-free SIGALRM semantics)."""
    ticks = []

    def handler(t, index):
        ticks.append(t)
        queue.clock.advance(0.3)

    PeriodicTimer(queue, interval=1.0, handler=handler)
    queue.run_until(5.0)
    assert ticks == [1.0, 2.0, 3.0, 4.0, 5.0]


def test_overrunning_handler_coalesces_ticks(queue):
    """A handler longer than the period skips the missed deadlines and
    counts them, like non-queued POSIX signals."""
    ticks = []

    def handler(t, index):
        ticks.append((t, index))
        queue.clock.advance(2.5)  # overrun 2 full periods

    timer = PeriodicTimer(queue, interval=1.0, handler=handler)
    queue.run_until(8.0)
    times = [t for t, _ in ticks]
    assert times == [1.0, 4.0, 7.0]
    assert timer.ticks_coalesced == 6  # 2 missed deadlines per overrun x 3 fires
    assert timer.ticks_fired == 3


def test_tick_count_matches_runtime_over_interval(queue):
    """MonEQ's collection count is runtime/interval; the 0.387 s collection
    figure in Table III is 1.10 ms x ~352 ticks at 560 ms over 202.7 s."""
    ticks, handler = make_recorder()
    PeriodicTimer(queue, interval=0.560, handler=handler)
    queue.run_until(202.78)
    assert len(ticks) == int(202.78 / 0.560)
