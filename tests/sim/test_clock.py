"""Unit tests for the virtual clock."""

import pytest

from repro.errors import ClockError
from repro.sim.clock import VirtualClock


def test_starts_at_zero_by_default():
    assert VirtualClock().now == 0.0


def test_starts_at_given_time():
    assert VirtualClock(12.5).now == 12.5


def test_negative_start_rejected():
    with pytest.raises(ClockError):
        VirtualClock(-1.0)


def test_advance_accumulates():
    clock = VirtualClock()
    clock.advance(1.5)
    clock.advance(0.5)
    assert clock.now == 2.0


def test_advance_returns_new_time():
    clock = VirtualClock()
    assert clock.advance(3.0) == 3.0


def test_advance_by_zero_is_allowed():
    clock = VirtualClock(1.0)
    clock.advance(0.0)
    assert clock.now == 1.0


def test_negative_advance_rejected():
    clock = VirtualClock()
    with pytest.raises(ClockError):
        clock.advance(-0.1)


def test_advance_to_absolute():
    clock = VirtualClock()
    clock.advance_to(10.0)
    assert clock.now == 10.0


def test_advance_to_same_time_is_allowed():
    clock = VirtualClock(5.0)
    clock.advance_to(5.0)
    assert clock.now == 5.0


def test_advance_to_past_rejected():
    clock = VirtualClock(5.0)
    with pytest.raises(ClockError):
        clock.advance_to(4.999)
