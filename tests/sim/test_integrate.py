"""Unit tests for cumulative integration."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.sim.integrate import CumulativeIntegral
from repro.sim.signals import ConstantSignal, RampSignal


def test_constant_signal_integral():
    ci = CumulativeIntegral(ConstantSignal(10.0), dt=0.01)
    assert ci.value(5.0) == pytest.approx(50.0, rel=1e-6)


def test_ramp_integral():
    # Integral of t over [0, 4] = 8.
    ci = CumulativeIntegral(RampSignal(0.0, 100.0, 0.0, 100.0), dt=0.01)
    assert ci.value(4.0) == pytest.approx(8.0, rel=1e-4)


def test_vectorized_monotone():
    ci = CumulativeIntegral(ConstantSignal(3.0), dt=0.1)
    t = np.linspace(0, 10, 53)
    v = ci.value(t)
    assert np.all(np.diff(v) >= 0)
    np.testing.assert_allclose(v, 3.0 * t, rtol=1e-9)


def test_between_window():
    ci = CumulativeIntegral(ConstantSignal(2.0), dt=0.01)
    assert ci.between(1.0, 3.0) == pytest.approx(4.0, rel=1e-6)


def test_between_inverted_rejected():
    ci = CumulativeIntegral(ConstantSignal(1.0))
    with pytest.raises(SimulationError):
        ci.between(2.0, 1.0)


def test_negative_time_rejected():
    ci = CumulativeIntegral(ConstantSignal(1.0))
    with pytest.raises(SimulationError):
        ci.value(-1.0)


def test_bad_dt_rejected():
    with pytest.raises(SimulationError):
        CumulativeIntegral(ConstantSignal(1.0), dt=0.0)


def test_grid_extension_is_consistent():
    """Querying far, then near, then far again returns identical values
    (the cache only grows, never recomputes)."""
    ci = CumulativeIntegral(ConstantSignal(7.0), dt=0.05)
    far1 = ci.value(100.0)
    near = ci.value(1.0)
    far2 = ci.value(100.0)
    assert far1 == far2
    assert near == pytest.approx(7.0, rel=1e-6)


def test_zero_time_is_zero():
    ci = CumulativeIntegral(ConstantSignal(123.0))
    assert ci.value(0.0) == 0.0
