"""Unit and property tests for trace containers."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim.trace import TraceError, TraceSeries, TraceSet


def series(values, dt=1.0, name="s", units="W"):
    times = np.arange(len(values), dtype=float) * dt
    return TraceSeries(times, np.asarray(values, dtype=float), name, units)


class TestTraceSeries:
    def test_length_mismatch_rejected(self):
        with pytest.raises(TraceError):
            TraceSeries(np.array([0.0, 1.0]), np.array([1.0]))

    def test_non_increasing_times_rejected(self):
        with pytest.raises(TraceError):
            TraceSeries(np.array([0.0, 0.0]), np.array([1.0, 2.0]))

    def test_duration_and_interval(self):
        s = series([1, 2, 3, 4], dt=0.5)
        assert s.duration == pytest.approx(1.5)
        assert s.sample_interval == pytest.approx(0.5)

    def test_stats(self):
        s = series([1.0, 2.0, 3.0])
        assert s.mean() == 2.0
        assert s.min() == 1.0
        assert s.max() == 3.0
        assert s.percentile(50) == 2.0
        assert s.std() == pytest.approx(1.0)

    def test_energy_constant_power(self):
        s = series([100.0] * 11, dt=1.0)  # 100 W for 10 s
        assert s.energy() == pytest.approx(1000.0)

    def test_energy_empty_and_single(self):
        assert series([]).energy() == 0.0
        assert series([5.0]).energy() == 0.0

    def test_between_window(self):
        s = series([0, 1, 2, 3, 4, 5])
        sub = s.between(1.5, 4.0)
        np.testing.assert_array_equal(sub.times, [2.0, 3.0, 4.0])

    def test_between_inverted_window_rejected(self):
        with pytest.raises(TraceError):
            series([1, 2]).between(2.0, 1.0)

    def test_shift(self):
        s = series([1, 2]).shift(10.0)
        np.testing.assert_array_equal(s.times, [10.0, 11.0])

    def test_resample_sample_and_hold(self):
        s = TraceSeries(np.array([0.0, 1.0, 2.0]), np.array([10.0, 20.0, 30.0]))
        r = s.resample(0.5)
        np.testing.assert_array_equal(r.times, [0.0, 0.5, 1.0, 1.5, 2.0])
        np.testing.assert_array_equal(r.values, [10.0, 10.0, 20.0, 20.0, 30.0])

    def test_resample_validates_interval(self):
        with pytest.raises(TraceError):
            series([1, 2]).resample(0.0)

    def test_add_requires_same_time_base(self):
        a = series([1, 2])
        b = series([3, 4], dt=2.0)
        with pytest.raises(TraceError):
            a.add(b)

    def test_add_sums_pointwise(self):
        total = series([1, 2]).add(series([3, 4]))
        np.testing.assert_array_equal(total.values, [4.0, 6.0])

    def test_to_rows(self):
        assert series([7.0]).to_rows() == [(0.0, 7.0)]

    @given(st.lists(st.floats(min_value=0, max_value=1e4), min_size=2, max_size=50))
    def test_energy_bounded_by_extremes(self, values):
        s = series(values)
        assert s.min() * s.duration - 1e-9 <= s.energy() <= s.max() * s.duration + 1e-9

    @given(st.lists(st.floats(min_value=-1e3, max_value=1e3), min_size=1, max_size=50))
    def test_mean_between_min_and_max(self, values):
        s = series(values)
        assert s.min() - 1e-9 <= s.mean() <= s.max() + 1e-9


class TestTraceSet:
    def test_total_sums_series(self):
        ts = TraceSet({"a": series([1, 2]), "b": series([10, 20])})
        np.testing.assert_array_equal(ts.total().values, [11.0, 22.0])

    def test_duplicate_name_rejected(self):
        ts = TraceSet({"a": series([1])})
        with pytest.raises(TraceError):
            ts.add("a", series([2]))

    def test_mismatched_time_base_rejected(self):
        ts = TraceSet({"a": series([1, 2])})
        with pytest.raises(TraceError):
            ts.add("b", series([1, 2], dt=0.5))

    def test_getitem_unknown_raises_with_names(self):
        ts = TraceSet({"a": series([1])})
        with pytest.raises(TraceError, match="'a'"):
            ts["missing"]

    def test_insertion_order_preserved(self):
        ts = TraceSet()
        for name in ["chip_core", "dram", "optics"]:
            ts.add(name, series([1, 2]))
        assert ts.names == ["chip_core", "dram", "optics"]

    def test_to_table_shape(self):
        ts = TraceSet({"a": series([1, 2]), "b": series([3, 4])})
        header, table = ts.to_table()
        assert header == ["time_s", "a", "b"]
        assert table.shape == (2, 3)
        np.testing.assert_array_equal(table[:, 0], [0.0, 1.0])

    def test_empty_total_rejected(self):
        with pytest.raises(TraceError):
            TraceSet().total()

    def test_contains_and_len(self):
        ts = TraceSet({"a": series([1])})
        assert "a" in ts and "b" not in ts
        assert len(ts) == 1
