"""Unit and property tests for generic sensor models."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import SensorError
from repro.sim.noise import GaussianNoise, UniformNoise
from repro.sim.sensor import CounterSensor, SampledSensor
from repro.sim.signals import ConstantSignal, RampSignal


class TestSampledSensor:
    def test_sample_and_hold_between_updates(self):
        sensor = SampledSensor(
            RampSignal(0.0, 10.0, 0.0, 100.0), update_interval=1.0,
            noise=GaussianNoise(1.0), seed=42,
        )
        # Reads within the same update window are identical.
        assert sensor.read(1.2) == sensor.read(1.8)
        # And differ across windows (ramp truth + fresh noise).
        assert sensor.read(1.2) != sensor.read(2.2)

    def test_tracks_truth_within_noise(self):
        sensor = SampledSensor(
            ConstantSignal(55.0), update_interval=0.06,
            noise=UniformNoise(5.0), seed=7,
        )
        t = np.arange(0.0, 60.0, 0.06)
        readings = sensor.read(t)
        assert np.all(np.abs(readings - 55.0) <= 5.0)
        assert abs(readings.mean() - 55.0) < 0.3

    def test_quantum_floors_reading(self):
        sensor = SampledSensor(
            ConstantSignal(1.23456), update_interval=1.0, quantum=0.001
        )
        assert sensor.read(0.5) == pytest.approx(1.234)

    def test_phase_offsets_update_grid(self):
        a = SampledSensor(RampSignal(0, 10, 0, 10), update_interval=1.0, phase=0.0)
        b = SampledSensor(RampSignal(0, 10, 0, 10), update_interval=1.0, phase=0.5)
        # At t=1.2, a last updated at 1.0, b at 0.5: domains sampled at
        # different instants (paper's EMON inconsistency).
        assert a.last_update_time(1.2) == 1.0
        assert b.last_update_time(1.2) == 0.5
        assert a.read(1.2) != b.read(1.2)

    def test_staleness(self):
        sensor = SampledSensor(ConstantSignal(0.0), update_interval=0.06)
        assert sensor.staleness(0.09) == pytest.approx(0.03)

    def test_read_before_first_update_holds_power_on_sample(self):
        sensor = SampledSensor(ConstantSignal(5.0), update_interval=10.0)
        assert sensor.read(1.0) == 5.0

    def test_negative_time_rejected(self):
        sensor = SampledSensor(ConstantSignal(0.0), update_interval=1.0)
        with pytest.raises(SensorError):
            sensor.read(-0.1)

    def test_bad_update_interval_rejected(self):
        with pytest.raises(SensorError):
            SampledSensor(ConstantSignal(0.0), update_interval=0.0)

    @given(st.floats(min_value=0.0, max_value=1e4))
    def test_read_is_idempotent(self, t):
        sensor = SampledSensor(
            ConstantSignal(10.0), update_interval=0.06, noise=GaussianNoise(0.5), seed=3
        )
        assert sensor.read(t) == sensor.read(t)


class TestCounterSensor:
    def test_counts_quanta_of_integral(self):
        counter = CounterSensor(ConstantSignal(10.0), unit=1.0, update_interval=0.01)
        # 10 W x 5 s = 50 J = 50 quanta.
        assert counter.raw(5.0) == 50

    def test_wraps_at_width(self):
        counter = CounterSensor(
            ConstantSignal(10.0), unit=1.0, width_bits=8, update_interval=0.01
        )
        # 10 W x 30 s = 300 J -> 300 mod 256 = 44.
        assert counter.raw(30.0) == 44

    def test_delta_decodes_single_wrap(self):
        counter = CounterSensor(
            ConstantSignal(10.0), unit=1.0, width_bits=8, update_interval=0.01
        )
        # Between t=20 (200 J) and t=30 (300 J -> wrapped) the true delta
        # is 100 J; single-wrap decoding recovers it.
        assert counter.delta(20.0, 30.0) == pytest.approx(100.0, abs=1.0)

    def test_delta_wrong_after_double_wrap(self):
        """The paper's RAPL failure mode: sampling slower than the wrap
        period silently loses full wraps."""
        counter = CounterSensor(
            ConstantSignal(10.0), unit=1.0, width_bits=8, update_interval=0.01
        )
        true_delta = 10.0 * 60.0  # 600 J over a minute
        decoded = counter.delta(0.0, 60.0)
        assert decoded < true_delta  # silently underestimates
        # It is off by an integer number of wraps.
        missing = true_delta - decoded
        assert missing == pytest.approx(round(missing / 256.0) * 256.0, abs=1.0)

    def test_wrap_period(self):
        counter = CounterSensor(ConstantSignal(1.0), unit=2.0**-16, width_bits=32)
        # 2^32 x 2^-16 J = 65536 J; at 1000 W that's ~65.5 s — the paper's
        # "more than about 60 seconds will result in erroneous data".
        assert counter.wrap_period(1000.0) == pytest.approx(65.536)

    def test_wrap_period_zero_rate_is_inf(self):
        counter = CounterSensor(ConstantSignal(0.0), unit=1.0)
        assert counter.wrap_period(0.0) == np.inf

    def test_update_interval_snaps_reads(self):
        counter = CounterSensor(ConstantSignal(100.0), unit=0.1, update_interval=1.0)
        # Mid-interval reads see the last update.
        assert counter.raw(1.0) == counter.raw(1.99)
        assert counter.raw(2.0) > counter.raw(1.0)

    def test_reads_out_of_order_rejected(self):
        counter = CounterSensor(ConstantSignal(1.0), unit=1.0)
        with pytest.raises(SensorError):
            counter.delta(2.0, 1.0)

    def test_validation(self):
        with pytest.raises(SensorError):
            CounterSensor(ConstantSignal(1.0), unit=0.0)
        with pytest.raises(SensorError):
            CounterSensor(ConstantSignal(1.0), unit=1.0, width_bits=0)
        with pytest.raises(SensorError):
            CounterSensor(ConstantSignal(1.0), unit=1.0, update_interval=0.0)

    def test_accumulated_is_exact_integral(self):
        counter = CounterSensor(ConstantSignal(50.0), unit=1.0, update_interval=0.01)
        assert counter.accumulated(10.0) == pytest.approx(500.0, rel=1e-6)
