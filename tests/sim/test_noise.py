"""Unit tests for sensor noise models."""

import numpy as np
import pytest

from repro.sim.noise import (
    ComposedNoise,
    GaussianNoise,
    NoNoise,
    QuantizationNoise,
    UniformNoise,
)


def test_no_noise_is_identity():
    values = np.array([1.0, 2.0, 3.0])
    np.testing.assert_array_equal(NoNoise().apply(1, np.arange(3), values), values)


def test_gaussian_noise_deterministic_per_index():
    model = GaussianNoise(0.5)
    a = model.apply(1, np.arange(10), np.zeros(10))
    b = model.apply(1, np.arange(10), np.zeros(10))
    np.testing.assert_array_equal(a, b)


def test_gaussian_noise_scale():
    model = GaussianNoise(2.0)
    out = model.apply(1, np.arange(50_000), np.zeros(50_000))
    assert abs(out.std() - 2.0) < 0.05
    assert abs(out.mean()) < 0.05


def test_gaussian_zero_sigma_is_identity():
    values = np.array([5.0])
    np.testing.assert_array_equal(GaussianNoise(0.0).apply(1, np.array([0]), values), values)


def test_gaussian_rejects_negative_sigma():
    with pytest.raises(ValueError):
        GaussianNoise(-1.0)


def test_uniform_noise_bounded():
    model = UniformNoise(5.0)
    out = model.apply(1, np.arange(10_000), np.full(10_000, 100.0))
    assert np.all(out >= 95.0)
    assert np.all(out <= 105.0)
    # Spread should actually use the range, not hug the center.
    assert out.max() - out.min() > 8.0


def test_uniform_rejects_negative_width():
    with pytest.raises(ValueError):
        UniformNoise(-0.1)


def test_quantization_floors_to_step():
    model = QuantizationNoise(0.25)
    out = model.apply(1, np.arange(3), np.array([0.3, 0.74, 1.0]))
    np.testing.assert_allclose(out, [0.25, 0.5, 1.0])


def test_quantization_rejects_bad_step():
    with pytest.raises(ValueError):
        QuantizationNoise(0.0)


def test_composed_applies_in_order():
    composed = ComposedNoise(GaussianNoise(0.0), QuantizationNoise(1.0))
    out = composed.apply(1, np.arange(2), np.array([1.9, 2.1]))
    np.testing.assert_array_equal(out, [1.0, 2.0])


def test_composed_stages_use_distinct_seeds():
    """Two Gaussian stages must not cancel or double identically."""
    composed = ComposedNoise(GaussianNoise(1.0), GaussianNoise(1.0))
    out = composed.apply(1, np.arange(50_000), np.zeros(50_000))
    # Independent stages: variance adds (std ~ sqrt(2)).
    assert abs(out.std() - np.sqrt(2.0)) < 0.05
