"""Unit tests for named RNG streams."""

import numpy as np

from repro.sim.rng import RngRegistry, derive_seed


def test_derive_seed_is_stable():
    assert derive_seed(1, "a") == derive_seed(1, "a")


def test_derive_seed_varies_with_name_and_root():
    assert derive_seed(1, "a") != derive_seed(1, "b")
    assert derive_seed(1, "a") != derive_seed(2, "a")


def test_stream_is_persistent(rng):
    s = rng.stream("x")
    first = s.random()
    assert rng.stream("x") is s
    assert rng.stream("x").random() != first  # generator advanced, not reset


def test_streams_reproducible_across_registries():
    a = RngRegistry(99).stream("sensor").random(5)
    b = RngRegistry(99).stream("sensor").random(5)
    np.testing.assert_array_equal(a, b)


def test_streams_independent_of_creation_order():
    r1 = RngRegistry(5)
    r1.stream("first")
    v1 = r1.stream("second").random()
    r2 = RngRegistry(5)
    v2 = r2.stream("second").random()  # no "first" created
    assert v1 == v2


def test_fork_gives_independent_namespace():
    root = RngRegistry(7)
    child = root.fork("bgq")
    assert child.seed("x") != root.seed("x")
    # Forking again reproduces the same child.
    assert RngRegistry(7).fork("bgq").seed("x") == child.seed("x")


def test_negative_root_seed_rejected():
    import pytest

    with pytest.raises(ValueError):
        RngRegistry(-1)
