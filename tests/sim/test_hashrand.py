"""Unit and property tests for counter-based randomness."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.hashrand import hash_choice_mask, hash_normal, hash_u64, hash_uniform

SEEDS = st.integers(min_value=0, max_value=2**63 - 1)
INDICES = st.integers(min_value=0, max_value=2**31 - 1)


@given(SEEDS, INDICES)
def test_hash_is_deterministic(seed, index):
    assert hash_u64(seed, index) == hash_u64(seed, index)


@given(SEEDS, INDICES)
def test_uniform_in_unit_interval(seed, index):
    u = hash_uniform(seed, index)
    assert 0.0 <= u < 1.0


@given(SEEDS)
@settings(max_examples=25)
def test_vectorized_matches_scalar(seed):
    idx = np.arange(64)
    vec = hash_uniform(seed, idx)
    scalars = np.array([float(hash_uniform(seed, int(i))) for i in idx])
    np.testing.assert_array_equal(vec, scalars)


def test_different_seeds_decorrelate():
    idx = np.arange(4096)
    a = hash_uniform(1, idx)
    b = hash_uniform(2, idx)
    corr = np.corrcoef(a, b)[0, 1]
    assert abs(corr) < 0.05


def test_uniform_mean_and_spread():
    u = hash_uniform(42, np.arange(100_000))
    assert abs(u.mean() - 0.5) < 0.01
    assert abs(u.std() - (1.0 / np.sqrt(12.0))) < 0.01


def test_normal_moments():
    z = hash_normal(7, np.arange(100_000))
    assert abs(z.mean()) < 0.02
    assert abs(z.std() - 1.0) < 0.02


def test_normal_deterministic():
    np.testing.assert_array_equal(hash_normal(9, np.arange(10)), hash_normal(9, np.arange(10)))


def test_choice_mask_probability():
    mask = hash_choice_mask(3, np.arange(100_000), 0.25)
    assert abs(mask.mean() - 0.25) < 0.01


def test_choice_mask_validates_probability():
    import pytest

    with pytest.raises(ValueError):
        hash_choice_mask(1, 0, 1.5)
