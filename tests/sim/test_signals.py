"""Unit and property tests for continuous signals."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import WorkloadError
from repro.sim.signals import (
    ClippedSignal,
    ConstantSignal,
    ExponentialApproachSignal,
    PeriodicPulseSignal,
    PiecewiseConstantSignal,
    RampSignal,
    ScaledSignal,
    SumSignal,
)

TIMES = st.floats(min_value=0.0, max_value=1e6, allow_nan=False)


@given(st.floats(min_value=-1e6, max_value=1e6), TIMES)
def test_constant_signal(level, t):
    assert ConstantSignal(level).value(t) == level


def test_constant_signal_vectorized():
    out = ConstantSignal(3.0).value(np.arange(5.0))
    np.testing.assert_array_equal(out, np.full(5, 3.0))


class TestPiecewiseConstant:
    def test_levels_between_breaks(self):
        sig = PiecewiseConstantSignal([1.0, 2.0], [10.0, 20.0, 30.0])
        np.testing.assert_array_equal(
            sig.value(np.array([0.5, 1.5, 2.5])), [10.0, 20.0, 30.0]
        )

    def test_right_continuous_at_breakpoint(self):
        sig = PiecewiseConstantSignal([1.0], [0.0, 5.0])
        assert sig.value(1.0) == 5.0

    def test_length_mismatch_rejected(self):
        with pytest.raises(WorkloadError):
            PiecewiseConstantSignal([1.0], [1.0])

    def test_decreasing_breakpoints_rejected(self):
        with pytest.raises(WorkloadError):
            PiecewiseConstantSignal([2.0, 1.0], [0.0, 1.0, 2.0])


class TestRamp:
    def test_clamps_outside_window(self):
        sig = RampSignal(1.0, 3.0, 0.0, 10.0)
        assert sig.value(0.0) == 0.0
        assert sig.value(5.0) == 10.0

    def test_linear_inside(self):
        sig = RampSignal(0.0, 4.0, 0.0, 8.0)
        assert sig.value(1.0) == 2.0
        assert sig.value(3.0) == 6.0

    def test_downward_ramp(self):
        sig = RampSignal(0.0, 2.0, 10.0, 0.0)
        assert sig.value(1.0) == 5.0

    def test_inverted_window_rejected(self):
        with pytest.raises(WorkloadError):
            RampSignal(2.0, 2.0, 0.0, 1.0)


class TestExponentialApproach:
    def test_flat_before_t0(self):
        sig = ExponentialApproachSignal(5.0, 1.0, 44.0, 55.0)
        assert sig.value(0.0) == 44.0
        assert sig.value(5.0) == 44.0

    def test_monotone_approach(self):
        sig = ExponentialApproachSignal(0.0, 2.0, 44.0, 55.0)
        t = np.linspace(0, 20, 100)
        v = sig.value(t)
        assert np.all(np.diff(v) >= 0)
        assert v[-1] == pytest.approx(55.0, abs=0.01)

    def test_reaches_63pct_at_tau(self):
        sig = ExponentialApproachSignal(0.0, 3.0, 0.0, 1.0)
        assert sig.value(3.0) == pytest.approx(1 - np.exp(-1))

    def test_nonpositive_tau_rejected(self):
        with pytest.raises(WorkloadError):
            ExponentialApproachSignal(0.0, 0.0, 0.0, 1.0)


class TestPeriodicPulse:
    def test_pulse_active_in_duty_window(self):
        sig = PeriodicPulseSignal(period=10.0, duty=0.2, amplitude=-5.0)
        assert sig.value(1.0) == -5.0  # 0.1 of period: inside duty
        assert sig.value(5.0) == 0.0  # 0.5 of period: outside

    def test_pulse_repeats_each_period(self):
        sig = PeriodicPulseSignal(period=10.0, duty=0.2, amplitude=-5.0)
        assert sig.value(11.0) == -5.0
        assert sig.value(25.0) == 0.0

    def test_window_bounds(self):
        sig = PeriodicPulseSignal(period=1.0, duty=0.5, amplitude=2.0, t0=10.0, t1=20.0)
        assert sig.value(5.0) == 0.0
        assert sig.value(10.1) == 2.0
        assert sig.value(25.0) == 0.0

    def test_bad_period_and_duty_rejected(self):
        with pytest.raises(WorkloadError):
            PeriodicPulseSignal(period=0.0, duty=0.5, amplitude=1.0)
        with pytest.raises(WorkloadError):
            PeriodicPulseSignal(period=1.0, duty=0.0, amplitude=1.0)
        with pytest.raises(WorkloadError):
            PeriodicPulseSignal(period=1.0, duty=1.5, amplitude=1.0)


class TestCombinators:
    def test_sum(self):
        sig = SumSignal(ConstantSignal(1.0), ConstantSignal(2.0))
        assert sig.value(0.0) == 3.0

    def test_empty_sum_rejected(self):
        with pytest.raises(WorkloadError):
            SumSignal()

    def test_scaled(self):
        sig = ScaledSignal(ConstantSignal(2.0), gain=3.0, offset=1.0)
        assert sig.value(0.0) == 7.0

    def test_clipped(self):
        sig = ClippedSignal(RampSignal(0.0, 10.0, 0.0, 10.0), lo=2.0, hi=8.0)
        assert sig.value(0.0) == 2.0
        assert sig.value(5.0) == 5.0
        assert sig.value(10.0) == 8.0

    def test_clip_bounds_validated(self):
        with pytest.raises(WorkloadError):
            ClippedSignal(ConstantSignal(0.0), lo=1.0, hi=0.0)

    @given(st.lists(st.floats(min_value=-100, max_value=100), min_size=1, max_size=5), TIMES)
    def test_sum_equals_sum_of_parts(self, levels, t):
        sig = SumSignal(*[ConstantSignal(x) for x in levels])
        assert sig.value(t) == pytest.approx(sum(levels))
