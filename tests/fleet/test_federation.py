"""The federated store: routing, relabeling, central merges, resharding.

The federation's contract is that it is *pure routing plus a
deterministic merge*: every query over ``site/location`` prefixes
returns exactly what the underlying site stores hold, relabeled;
rollup aggregates fold site partials without touching a single raw
record; and resharding a saturated site never changes any query's
result bytes.
"""

import numpy as np
import pytest

from repro.bgq.machine import BgqMachine
from repro.errors import ConfigError
from repro.fleet import Fleet, FleetSite, build_fleet
from repro.sim.rng import RngRegistry
from repro.store import FederatedStore, ShardedStore, merge_partials
from repro.store.aggregate import Aggregate


def _fleet(n_sites=2, racks=1, shards=1, horizon=250.0):
    fleet = build_fleet(n_sites=n_sites, racks=racks, seed=0xFED,
                        poll_interval_s=60.0, shards_per_site=shards)
    fleet.advance_to(horizon)
    return fleet


# -- construction and routing ------------------------------------------------


def test_site_names_must_be_separator_free_and_schema_shared():
    good = ShardedStore(("bpm",))
    with pytest.raises(ConfigError):
        FederatedStore({})
    with pytest.raises(ConfigError):
        FederatedStore({"a/b": good})
    with pytest.raises(ConfigError):
        FederatedStore({"": good})
    with pytest.raises(ConfigError):
        FederatedStore({"a": good, "b": ShardedStore(("bpm", "fan"))})


def test_routing_prefix_conventions():
    fed = _fleet().federation
    assert [s for s, _ in fed._route("")] == ["site00", "site01"]
    assert fed._route("site01/R00") == [("site01", "R00")]
    assert fed._route("site0") == [("site00", ""), ("site01", "")]
    with pytest.raises(ConfigError):
        fed._route("nosite/R00")
    with pytest.raises(ConfigError):
        fed._route("zz")


def test_fleet_rejects_duplicate_or_empty_sites():
    with pytest.raises(ConfigError):
        Fleet([])
    machine = BgqMachine(racks=1, rng=RngRegistry(1), poll_interval_s=60.0)
    other = BgqMachine(racks=1, rng=RngRegistry(2), poll_interval_s=60.0)
    with pytest.raises(ConfigError):
        Fleet([FleetSite("a", machine), FleetSite("a", other)])
    with pytest.raises(ConfigError):
        build_fleet(n_sites=0)


# -- queries -----------------------------------------------------------------


def test_range_relabels_and_merges_by_timestamp():
    fleet = _fleet()
    fed = fleet.federation
    rows = fed.range("bpm", 0.0, 300.0)
    assert rows, "sweeps landed no records"
    times = [r.timestamp for r in rows]
    assert times == sorted(times)
    assert all(r.location.partition("/")[0] in ("site00", "site01")
               for r in rows)
    # Exactly the union of the per-site rows, relabeled.
    per_site = sum(len(fleet.site(name).store.range("bpm", 0.0, 300.0))
                   for name in fed.site_names)
    assert len(rows) == per_site
    # A pinned prefix returns the site's own rows one for one.
    pinned = fed.range("bpm", 0.0, 300.0, "site01/R00")
    local = fleet.site("site01").store.range("bpm", 0.0, 300.0, "R00")
    assert [(r.timestamp, r.location.partition("/")[2], r.values)
            for r in pinned] == \
        [(r.timestamp, r.location, r.values) for r in local]


def test_latest_keys_are_site_prefixed():
    fleet = _fleet()
    latest = fleet.federation.latest("bpm")
    assert latest
    for key, reading in latest.items():
        assert key == reading.location
        site, sep, local = key.partition("/")
        assert sep and site in ("site00", "site01") and local


def test_rollup_aggregate_matches_flat_oracle():
    """The fleet-wide rollup must equal recomputing each window from
    every raw record across every site — counts, extremes and means."""
    fleet = _fleet(horizon=250.0)
    fed = fleet.federation
    window_s = 60.0
    rollup = fed.aggregate("bpm", "input_power_w", 0.0, 250.0, window_s,
                           rollup=True)
    assert rollup and all(a.location == "fleet" for a in rollup)
    rows = fed.range("bpm", 0.0, 250.0)
    by_window: dict[float, list[float]] = {}
    for r in rows:
        start = (r.timestamp // window_s) * window_s
        by_window.setdefault(start, []).append(r.values["input_power_w"])
    assert len(rollup) == len(by_window)
    for agg in rollup:
        values = by_window[agg.window_start]
        assert agg.count == len(values)
        assert agg.minimum == min(values)
        assert agg.maximum == max(values)
        assert agg.mean == pytest.approx(sum(values) / len(values))


def test_flat_aggregate_keeps_per_location_partials():
    fed = _fleet().federation
    flat = fed.aggregate("bpm", "input_power_w", 0.0, 250.0, 60.0)
    assert flat
    assert all("/" in a.location for a in flat)
    assert [(a.window_start, a.location) for a in flat] == \
        sorted((a.window_start, a.location) for a in flat)


def test_merge_partials_folds_counts_and_extremes():
    partials = [
        Aggregate("a", "w", 0.0, 60.0, count=2, minimum=1.0, maximum=5.0,
                  total=6.0),
        Aggregate("b", "w", 0.0, 60.0, count=3, minimum=0.5, maximum=4.0,
                  total=9.0),
        Aggregate("a", "w", 60.0, 60.0, count=1, minimum=2.0, maximum=2.0,
                  total=2.0),
    ]
    merged = merge_partials(partials, location="fleet")
    assert [(a.window_start, a.count, a.minimum, a.maximum, a.total)
            for a in merged] == [(0.0, 5, 0.5, 5.0, 15.0),
                                 (60.0, 1, 2.0, 2.0, 2.0)]
    assert all(a.location == "fleet" for a in merged)
    # Without a rollup location the per-location identity is kept.
    kept = merge_partials(partials)
    assert [a.location for a in kept] == ["a", "b", "a"]


# -- resharding --------------------------------------------------------------


def test_reshard_preserves_query_bytes_and_accounting():
    fleet = _fleet(n_sites=1, horizon=250.0)
    store = fleet.site("site00").store
    before_rows = store.range("bpm", 0.0, 300.0)
    before_latest = store.latest("bpm")
    before_aggs = store.aggregate("bpm", "input_power_w", 0.0, 300.0, 60.0)
    records = store.records_ingested

    store.reshard(4)
    assert store.n_shards == 4
    assert store.records_ingested == records
    after_rows = store.range("bpm", 0.0, 300.0)
    assert [(r.timestamp, r.location, r.mechanism, r.values)
            for r in after_rows] == \
        [(r.timestamp, r.location, r.mechanism, r.values)
         for r in before_rows]
    assert store.latest("bpm") == before_latest
    assert store.aggregate("bpm", "input_power_w", 0.0, 300.0, 60.0) == \
        before_aggs


def test_reshard_carries_dropped_counts():
    fleet = build_fleet(n_sites=1, racks=48, seed=0xD0F, poll_interval_s=60.0)
    fleet.advance_to(65.0)  # one full-Mira sweep saturates one shard
    store = fleet.site("site00").store
    dropped = store.dropped_records
    assert dropped > 0
    store.reshard(8)
    assert store.dropped_records == dropped


def test_rebalance_reshards_saturated_site_once():
    fleet = build_fleet(n_sites=1, racks=48, seed=0xAB, poll_interval_s=60.0)
    site = fleet.site("site00")
    assert site.envdb.capacity_fraction() > 1.0
    resharded = fleet.rebalance_saturated()
    n = resharded["site00"]
    assert n >= 2 and (n & (n - 1)) == 0  # a power of two
    assert site.store.n_shards == n
    assert site.envdb.capacity_fraction() <= 0.9
    # Already balanced: a second pass is a no-op.
    assert fleet.rebalance_saturated() == {}
    # And the post-reshard sweep drops nothing.
    fleet.advance_to(65.0)
    assert fleet.dropped_records == 0


def test_rebalance_skips_unsaturated_sites():
    fleet = _fleet()
    assert fleet.rebalance_saturated() == {}
    assert {name: site.store.n_shards
            for name, site in fleet.sites.items()} == \
        {"site00": 1, "site01": 1}


def test_federation_accounting_sums_sites():
    fleet = _fleet()
    fed = fleet.federation
    assert fed.records_ingested == sum(
        fleet.site(n).store.records_ingested for n in fed.site_names)
    assert fleet.records_ingested == fed.records_ingested
    assert fleet.node_count == sum(
        s.machine.node_count for s in fleet.sites.values())


def test_equal_seeds_build_identical_fleets():
    a = _fleet(horizon=130.0)
    b = _fleet(horizon=130.0)
    ra = a.federation.range("bpm", 0.0, 130.0)
    rb = b.federation.range("bpm", 0.0, 130.0)
    assert [(r.timestamp, r.location, r.values) for r in ra] == \
        [(r.timestamp, r.location, r.values) for r in rb]
    assert np.isfinite([r.values["input_power_w"] for r in ra]).all()
