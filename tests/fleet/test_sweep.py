"""Fleet sweeps, the cache ablation, and the ``BENCH_fleet.json`` shape."""

import json

import pytest

from repro.fleet import build_fleet, cache_ablation, fleet_bench, fleet_sweep
from repro.fleet.sweep import CACHE_REDUCTION_FLOOR, FleetSweepReport
from repro.mech.cache import channel_cache


@pytest.fixture(autouse=True)
def _clean_cache():
    channel_cache().clear()
    yield
    channel_cache().clear()


def test_fleet_sweep_report_accounts_one_horizon():
    report = fleet_sweep(n_sites=2, racks=2, duration_s=60.0)
    assert report.sites == 2 and report.racks == 2
    assert report.sweeps == 2  # one 60 s poll per site
    # 2 racks x 32 BPMs x 4 rows, per site.
    assert report.records == 2 * 2 * 32 * 4
    assert report.dropped == 0 and report.reshards == {}
    assert report.rollup_windows == 1  # records all land on the t=60 poll
    assert report.realtime_factor > 0
    line = report.summary_line()
    assert line.startswith("[repro fleet sweep] sites=2 racks=2")
    assert "records=512" in line and "realtime_x=" in line


def test_fleet_sweep_reuses_a_prebuilt_fleet():
    fleet = build_fleet(n_sites=1, racks=1, poll_interval_s=60.0)
    fleet.advance_to(65.0)
    before = fleet.records_ingested
    report = fleet_sweep(fleet=fleet, duration_s=120.0)
    # Only the new horizon's records are attributed to this sweep:
    # the t=60 poll already ran, so just t=120 fires here.
    assert report.records == fleet.records_ingested - before
    assert report.sweeps == 1


def test_fleet_sweep_determinism_modulo_wall_clock():
    a = fleet_sweep(n_sites=2, racks=1, duration_s=60.0)
    b = fleet_sweep(n_sites=2, racks=1, duration_s=60.0)
    keys = ("sites", "racks", "sweeps", "records", "dropped",
            "shards_by_site", "rollup_windows")
    assert {k: getattr(a, k) for k in keys} == \
        {k: getattr(b, k) for k in keys}


def test_realtime_factor_handles_zero_wall():
    report = FleetSweepReport(
        sites=1, racks=1, duration_s=60.0, wall_s=0.0, sweeps=1,
        records=1, dropped=0, reshards={}, shards_by_site={"site00": 1},
        rollup_windows=1)
    assert report.realtime_factor == float("inf")


def test_cache_ablation_cuts_crossings_and_stays_byte_identical():
    result = cache_ablation(consumers=4, ticks=60)
    assert result["byte_identical"] is True
    # K consumers sharing one device at the min interval: the first
    # pays the crossing, the other K-1 hit.
    assert result["hit_rate"] == pytest.approx(3 / 4)
    assert result["crossings_reduction"] == pytest.approx(4.0)
    assert result["crossings_uncached"] == \
        result["crossings_cached"] * result["crossings_reduction"]


def test_fleet_bench_smoke_writes_committed_shape(tmp_path):
    path = tmp_path / "BENCH_fleet.json"
    results = fleet_bench(json_path=str(path), smoke=True)
    on_disk = json.loads(path.read_text())
    assert on_disk == json.loads(json.dumps(results))  # round-trips
    sweep = on_disk["fleet_sweep"]
    assert set(sweep) == {"wall_s", "speedup_vs_scalar", "sites", "racks",
                          "sweeps", "records", "dropped", "reshards",
                          "shards", "rollup_windows"}
    ablation = on_disk["cache_ablation"]
    assert ablation["byte_identical"] is True
    assert ablation["crossings_reduction"] >= CACHE_REDUCTION_FLOOR
    assert sweep["sites"] == 2  # smoke never runs the 10x-Mira profile
