"""The pack catalog: discovery, the env override, and the derived
chaos catalog's bit-identical rule tuples."""

import json
import math

import pytest

from repro.chaos.faults import FaultRule
from repro.errors import PackError
from repro.packs import catalog
from repro.packs.catalog import (
    all_packs,
    chaos_packs,
    load_pack,
    pack_path,
    pack_paths,
    packs_dir,
)

EXPECTED_PACKS = {
    "bmc_dark": "chaos",
    "bus_noise": "chaos",
    "daemon_wedge": "chaos",
    "dvfs-ramp": "session",
    "fleet-sweep": "fleet",
    "ipmi-bmc-rapl": "session",
    "nvml-powercap-k40": "session",
    "paper-core": "experiments",
    "phi-micsmc": "session",
    "thermal-excursion": "session",
}


def test_builtin_catalog_validates_completely():
    packs = all_packs()
    assert {name: spec.kind for name, spec in packs.items()} \
        == EXPECTED_PACKS
    for name, spec in packs.items():
        assert spec.name == name
        assert spec.source == pack_path(name).name


def test_chaos_catalog_keeps_the_story_order():
    assert list(chaos_packs()) == ["bmc_dark", "daemon_wedge", "bus_noise"]


def test_chaos_scenarios_build_the_legacy_rule_tuples():
    """The derived catalog's rule factories must produce the exact
    FaultRule tuples the hand-written chaos catalog used to build —
    same kinds, same absolute windows, bit for bit (rule seeds derive
    from these fields, so any drift changes every chaos golden)."""
    from repro.chaos import SCENARIOS

    duration = 12.0
    assert SCENARIOS["bmc_dark"].rules(duration, 1.0) == (
        FaultRule("ipmb", rate=1.0, kind="bmc_dark",
                  t_start=0.4 * duration),)
    assert SCENARIOS["daemon_wedge"].rules(duration, 1.0) == (
        FaultRule("micras", rate=1.0, kind="daemon_wedged",
                  t_start=0.4 * duration),)
    assert SCENARIOS["bus_noise"].rules(duration, 0.3) == (
        FaultRule("ipmb", rate=0.3, kind="ipmb_drop",
                  t_start=0.0, t_end=math.inf),)
    assert SCENARIOS["bus_noise"].default_rate == 0.10


def test_unknown_pack_lists_the_catalog():
    with pytest.raises(PackError) as excinfo:
        pack_path("no-such-pack")
    message = str(excinfo.value)
    assert "'no-such-pack'" in message and "phi-micsmc" in message


def _write_manifest(path, name, **extra):
    raw = {"name": name, "kind": "session", "summary": "override pack",
           "testbed": {"kind": "phi"}, "mechanisms": ["micsmc"], **extra}
    path.write_text(json.dumps(raw), encoding="utf-8")


def test_env_override_replaces_the_builtin_directory(tmp_path, monkeypatch):
    _write_manifest(tmp_path / "custom.json", "custom")
    monkeypatch.setenv(catalog.PACKS_DIR_ENV, str(tmp_path))
    assert packs_dir() == tmp_path
    assert list(pack_paths()) == ["custom"]
    assert load_pack("custom").name == "custom"
    with pytest.raises(PackError):
        pack_path("phi-micsmc")  # the builtin catalog is replaced, not merged


def test_duplicate_stems_across_suffixes_fail_loudly(tmp_path, monkeypatch):
    _write_manifest(tmp_path / "twin.json", "twin")
    (tmp_path / "twin.toml").write_text(
        'name = "twin"\nkind = "fleet"\nsummary = "twin"\n',
        encoding="utf-8")
    monkeypatch.setenv(catalog.PACKS_DIR_ENV, str(tmp_path))
    with pytest.raises(PackError, match="twin"):
        pack_paths()


def test_manifest_name_must_match_the_file_stem(tmp_path, monkeypatch):
    _write_manifest(tmp_path / "outer.json", "inner")
    monkeypatch.setenv(catalog.PACKS_DIR_ENV, str(tmp_path))
    with pytest.raises(PackError) as excinfo:
        load_pack("outer")
    assert "'inner'" in str(excinfo.value)
