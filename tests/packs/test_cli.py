"""``repro pack list|show|run`` CLI smoke and contract tests."""

import json

import pytest

from repro.__main__ import main as cli_main


def test_pack_list_shows_the_catalog(capsys):
    assert cli_main(["pack", "list"]) == 0
    out = capsys.readouterr().out
    for name in ("phi-micsmc", "paper-core", "fleet-sweep", "bmc_dark",
                 "dvfs-ramp", "nvml-powercap-k40", "thermal-excursion",
                 "ipmi-bmc-rapl"):
        assert name in out


def test_pack_show_renders_fields(capsys):
    assert cli_main(["pack", "show", "phi-micsmc"]) == 0
    out = capsys.readouterr().out
    assert "micsmc" in out and "phi" in out


def test_pack_show_json_round_trips_the_manifest(capsys):
    assert cli_main(["pack", "show", "paper-core", "--json"]) == 0
    raw = json.loads(capsys.readouterr().out)
    assert raw["name"] == "paper-core" and raw["kind"] == "experiments"
    assert "table1" in raw["experiments"]


def test_pack_run_prints_block_and_stats(tmp_path, capsys):
    assert cli_main(["pack", "run", "phi-micsmc", "--no-cache",
                     "--cache-root", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "## pack:phi-micsmc" in out
    assert "# pack phi-micsmc: 1 executed" in out


def test_pack_run_json_emits_the_payload(tmp_path, capsys):
    assert cli_main(["pack", "run", "phi-micsmc", "--json", "--no-cache",
                     "--cache-root", str(tmp_path)]) == 0
    documents = json.loads(capsys.readouterr().out)
    assert len(documents) == 1
    doc = documents[0]
    assert doc["pack"] == "phi-micsmc" and doc["kind"] == "session"
    assert doc["payload"]["ticks"] > 0
    assert doc["exp_id"].startswith("pack:phi-micsmc@")


def test_pack_run_overrides_reach_the_session(tmp_path, capsys):
    assert cli_main(["pack", "run", "phi-micsmc", "--json", "--no-cache",
                     "--cache-root", str(tmp_path),
                     "--seed", "42", "--duration", "2.0"]) == 0
    doc = json.loads(capsys.readouterr().out)[0]
    assert doc["payload"]["seed"] == 42
    assert doc["payload"]["duration_s"] == 2.0


def test_pack_run_smoke_runs_the_ci_pair(tmp_path, capsys):
    from repro.packs import SMOKE_PACKS

    assert cli_main(["pack", "run", "--smoke", "--no-cache",
                     "--cache-root", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    for name in SMOKE_PACKS:
        assert f"## pack:{name}" in out


def test_pack_run_accepts_a_manifest_path(tmp_path, capsys):
    manifest = tmp_path / "adhoc.json"
    manifest.write_text(json.dumps({
        "name": "adhoc", "kind": "session", "summary": "ad-hoc pack",
        "duration_s": 1.0, "testbed": {"kind": "phi"},
        "mechanisms": ["micsmc"],
    }), encoding="utf-8")
    assert cli_main(["pack", "run", str(manifest), "--no-cache",
                     "--cache-root", str(tmp_path / "cache")]) == 0
    assert "## pack:adhoc" in capsys.readouterr().out


@pytest.mark.parametrize("argv, needle", [
    (["pack"], "usage"),
    (["pack", "frobnicate"], "usage"),
    (["pack", "show"], "exactly one"),
    (["pack", "run"], "at least one"),
    (["pack", "run", "--smoke", "phi-micsmc"], "--smoke"),
    (["pack", "run", "phi-micsmc", "--seed"], "needs a value"),
    (["pack", "run", "phi-micsmc", "--seed", "lots"], "invalid literal"),
    (["pack", "run", "no-such-pack"], "not in the catalog"),
    (["pack", "show", "no-such-pack"], "not in the catalog"),
])
def test_pack_bad_usage_exits_two(argv, needle, capsys):
    assert cli_main(argv) == 2
    assert needle in capsys.readouterr().err


def test_pack_run_invalid_manifest_names_the_field(tmp_path, capsys):
    manifest = tmp_path / "broken.json"
    manifest.write_text(json.dumps({
        "name": "broken", "kind": "session", "summary": "x",
        "durations": 9.0,
    }), encoding="utf-8")
    assert cli_main(["pack", "run", str(manifest)]) == 2
    err = capsys.readouterr().err
    assert "'durations'" in err and "unknown key" in err
