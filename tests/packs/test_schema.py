"""Manifest validation: every rejection names the offending field.

The schema's contract is diagnostic precision — a typo'd key, a
mis-typed value, or an unknown mechanism/experiment name must raise
:class:`~repro.errors.PackError` whose message contains the dotted
path of the field that caused it.  The property suite drives that
contract over generated key names and windows; the directed cases pin
each kind-specific shape rule.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PackError
from repro.packs.schema import _TOP_KEYS, ScenarioSpec, parse_scenario


def base_manifest(**overrides) -> dict:
    raw = {
        "name": "probe",
        "kind": "session",
        "summary": "a probe scenario",
        "testbed": {"kind": "phi"},
        "mechanisms": ["micsmc"],
    }
    raw.update(overrides)
    return raw


def rejects(raw: dict) -> str:
    """Parse must fail; returns the error message for field asserts."""
    with pytest.raises(PackError) as excinfo:
        parse_scenario(raw)
    return str(excinfo.value)


def test_base_manifest_is_valid():
    spec = parse_scenario(base_manifest())
    assert isinstance(spec, ScenarioSpec)
    assert spec.kind == "session" and spec.mechanisms == ("micsmc",)


_IDENT = st.from_regex(r"[a-z][a-z0-9_]{0,11}", fullmatch=True)


@given(key=_IDENT.filter(lambda k: k not in _TOP_KEYS))
@settings(max_examples=25, deadline=None)
def test_unknown_top_level_key_is_named(key):
    message = rejects(base_manifest(**{key: 1}))
    assert repr(key) in message and "unknown key" in message


@given(key=_IDENT.filter(
    lambda k: k not in ("kind", "seed", "gpu_model", "power_cap_w",
                        "kernel")))
@settings(max_examples=25, deadline=None)
def test_unknown_testbed_key_is_named(key):
    raw = base_manifest(testbed={"kind": "phi", key: 1})
    message = rejects(raw)
    assert f"testbed.{key}" in message


_WRONG_TYPES = {
    "name": 0,
    "kind": 3,
    "summary": 7,
    "duration_s": "fast",
    "seed": 1.5,
    "interval_s": [0.1],
    "mechanisms": "micsmc",
    "experiments": "table1",
    "testbed": "phi",
    "workload": ["phase"],
    "faults": 4,
    "fleet": "smoke",
}


@pytest.mark.parametrize("key", sorted(_WRONG_TYPES))
def test_wrong_type_names_the_field(key):
    message = rejects(base_manifest(**{key: _WRONG_TYPES[key]}))
    assert key in message


@pytest.mark.parametrize("key", ["duration_s", "seed", "interval_s"])
def test_bool_is_not_a_number(key):
    message = rejects(base_manifest(**{key: True}))
    assert key in message and "bool" in message


@pytest.mark.parametrize("key", ["name", "kind", "summary"])
def test_missing_required_key_is_named(key):
    raw = base_manifest()
    del raw[key]
    message = rejects(raw)
    assert "missing required key" in message and repr(key) in message


@given(name=_IDENT)
@settings(max_examples=25, deadline=None)
def test_unknown_mechanism_is_named_with_its_index(name):
    from repro.mech import mechanisms

    if name in mechanisms():
        return  # a real mechanism would validate; property is about typos
    message = rejects(base_manifest(
        testbed={"kind": "fleet"}, mechanisms=["micsmc", name]))
    assert "mechanisms[1]" in message and repr(name) in message


def test_mechanism_not_offered_by_testbed():
    message = rejects(base_manifest(mechanisms=["nvml"]))  # phi testbed
    assert "mechanisms[0]" in message and "'phi'" in message


def test_duplicate_mechanism_is_rejected():
    message = rejects(base_manifest(mechanisms=["micsmc", "micsmc"]))
    assert "mechanisms[1]" in message and "duplicate" in message


def test_unknown_experiment_is_named_with_its_index():
    raw = {"name": "exps", "kind": "experiments", "summary": "x",
           "experiments": ["table1", "table9"]}
    message = rejects(raw)
    assert "experiments[1]" in message and "'table9'" in message


@given(start=st.floats(0.0, 1.0), end=st.floats(0.0, 1.0))
@settings(max_examples=25, deadline=None)
def test_fault_windows_validate_as_fractions(start, end):
    raw = base_manifest(
        kind="chaos",
        faults={"rules": [{"mechanism": "ipmb", "t_start_frac": start,
                           "t_end_frac": end}]},
    )
    if end > start:
        spec = parse_scenario(raw)
        rule = spec.faults.rules[0]
        assert (rule.t_start_frac, rule.t_end_frac) == (start, end)
    else:
        assert "faults.rules[0]" in rejects(raw)


@given(level=st.floats(allow_nan=False, allow_infinity=False))
@settings(max_examples=25, deadline=None)
def test_phase_loads_must_be_unit_fractions(level):
    raw = base_manifest(workload={
        "name": "w",
        "phases": [{"name": "p", "duration_s": 1.0,
                    "loads": {"phi.cores": level}}],
    })
    if 0.0 <= level <= 1.0:
        parse_scenario(raw)
    else:
        message = rejects(raw)
        assert "workload.phases[0].loads.phi.cores" in message


def test_unknown_workload_component_is_named():
    raw = base_manifest(workload={
        "name": "w",
        "phases": [{"name": "p", "duration_s": 1.0,
                    "loads": {"warp.drive": 0.5}}],
    })
    message = rejects(raw)
    assert "workload.phases[0].loads.warp.drive" in message


@pytest.mark.parametrize("raw, needle", [
    (base_manifest(kind="bogus"), "kind must be one of"),
    (base_manifest(duration_s=-1.0), "duration_s must be positive"),
    (base_manifest(interval_s=0.0), "interval_s must be positive"),
    (base_manifest(seed=-3), "seed must be >= 0"),
    (base_manifest(kind="chaos"), "requires a [faults] section"),
    (base_manifest(testbed={"kind": "warehouse"}), "testbed.kind"),
    (base_manifest(testbed={"kind": "phi", "gpu_model": "k40"}),
     "testbed.gpu_model"),
    (base_manifest(testbed={"kind": "phi", "kernel": "3.14"}),
     "testbed.kernel"),
    (base_manifest(fleet={"smoke": True}), "fleet does not apply"),
    ({"name": "x", "kind": "experiments", "summary": "s",
      "experiments": ["table1"], "testbed": {"kind": "phi"}},
     "testbed does not apply"),
    ({"name": "x", "kind": "experiments", "summary": "s",
      "experiments": []}, "non-empty"),
    ({"name": "x", "kind": "fleet", "summary": "s",
      "faults": {"rules": [{"mechanism": "ipmb"}]}},
     "faults does not apply"),
    ({"name": "bad/slug", "kind": "session", "summary": "s"},
     "non-empty slug"),
])
def test_shape_rules_name_the_out_of_place_section(raw, needle):
    assert needle in rejects(raw)


def test_fault_rule_mechanism_checked_against_registry():
    raw = base_manifest(
        kind="chaos",
        faults={"rules": [{"mechanism": "warp_core"}]},
    )
    message = rejects(raw)
    assert "'warp_core'" in message and "unknown mechanism" in message


def test_validation_failures_increment_the_metric():
    from repro.obs.instruments import PACK_VALIDATION_ERRORS

    before = PACK_VALIDATION_ERRORS.samples().get((), 0.0)
    rejects(base_manifest(kind="bogus"))
    after = PACK_VALIDATION_ERRORS.samples().get((), 0.0)
    assert after == before + 1
