"""Scenario-pack subsystem tests."""
