"""Compiling packs onto the engine: cache behavior, byte-identity
across cold/warm/fanned runs, and the paper-core reproduction."""

import pathlib

import pytest

from repro.errors import PackError
from repro.experiments.report import render_block
from repro.packs import compile_spec, load_pack, run_pack
from repro.packs.catalog import raw_pack

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent.parent


def block_texts(result) -> list[str]:
    return ["\n".join(render_block(block))
            for block in result.blocks.values()]


def test_compile_is_idempotent_and_override_aware():
    raw = raw_pack("phi-micsmc")
    first, scenario = compile_spec(raw)
    again, _ = compile_spec(raw)
    assert again is first or again == first
    assert first.exp_id.startswith("pack:phi-micsmc@")
    assert scenario.kind == "session"
    reseeded, _ = compile_spec(raw, seed=999)
    assert reseeded.exp_id != first.exp_id  # a different run, a new id


def test_experiments_packs_do_not_compile():
    with pytest.raises(PackError, match="paper-core"):
        compile_spec(raw_pack("paper-core"))


@pytest.mark.tier1
def test_cold_warm_and_fanned_runs_render_identical_blocks(tmp_path):
    cold = run_pack("phi-micsmc", jobs=1, cache_root=str(tmp_path))
    assert (cold.stats.executed, cold.stats.cache_hits) == (1, 0)
    warm = run_pack("phi-micsmc", jobs=1, cache_root=str(tmp_path))
    assert (warm.stats.executed, warm.stats.cache_hits) == (0, 1)
    fanned = run_pack("phi-micsmc", jobs=8, cache=False,
                      cache_root=str(tmp_path))
    assert fanned.stats.executed == 1
    assert block_texts(cold) == block_texts(warm) == block_texts(fanned)
    payload = cold.payloads[cold.exp_id]
    assert payload["kind"] == "session" and payload["ticks"] > 0


@pytest.mark.tier1
def test_paper_core_reproduces_experiments_md_blocks(tmp_path):
    committed = (REPO_ROOT / "EXPERIMENTS.md").read_text(encoding="utf-8")
    result = run_pack("paper-core", jobs=2, cache_root=str(tmp_path))
    spec = load_pack("paper-core")
    assert list(result.blocks) == list(spec.experiments)
    for exp_id in spec.experiments:
        text = "\n".join(render_block(result.blocks[exp_id]))
        assert text in committed, f"{exp_id} block drifted from the report"


def test_pack_run_matches_the_live_chaos_path():
    """The engine-dispatched payload must agree with the live
    ``run_scenario`` path byte for byte — same timeline, same summary
    line (both execute ``repro.packs.runtime.execute_scenario``)."""
    from repro.chaos import run_scenario
    from repro.packs.shims import summary_line

    result = run_pack("bmc_dark", jobs=1, cache=False)
    payload = result.payloads[result.exp_id]
    live = run_scenario("bmc_dark")
    assert payload["timeline"] == live.timeline_lines()
    assert summary_line(payload) == live.summary_line()
    assert payload["outputs"] == [[path, live.outputs[path]]
                                  for path in sorted(live.outputs)]


def test_fleet_packs_never_cache(tmp_path, monkeypatch):
    calls = []

    def canned_bench(json_path=None, smoke=False):
        calls.append((json_path, smoke))
        return {"fleet_sweep": {"wall_s": 0.5, "speedup_vs_scalar": 10.0},
                "cache_ablation": {"hit_rate": 0.9,
                                   "crossings_reduction": 8.0,
                                   "byte_identical": True}}

    import repro.fleet

    monkeypatch.setattr(repro.fleet, "fleet_bench", canned_bench)
    for _ in range(2):
        result = run_pack("fleet-sweep", jobs=1, cache=True,
                          cache_root=str(tmp_path))
        assert result.stats.cache_hits == 0  # wall-clock: forced cold
    assert calls == [(None, True), (None, True)]


def test_run_pack_accepts_a_raw_manifest_mapping(tmp_path, monkeypatch):
    def canned_bench(json_path=None, smoke=False):
        return {"fleet_sweep": {"smoke": smoke},
                "cache_ablation": {}}

    import repro.fleet

    monkeypatch.setattr(repro.fleet, "fleet_bench", canned_bench)
    raw = raw_pack("fleet-sweep")
    raw = {**raw, "fleet": {"smoke": False}}
    result = run_pack(raw, jobs=1, cache_root=str(tmp_path))
    assert result.payloads[result.exp_id]["fleet_sweep"]["smoke"] is False


def test_pack_runs_metric_counts_dispatches():
    from repro.obs.instruments import PACK_RUNS

    key = ("phi-micsmc", "session")
    before = PACK_RUNS.samples().get(key, 0.0)
    run_pack("phi-micsmc", jobs=1, cache=False)
    assert PACK_RUNS.samples().get(key, 0.0) == before + 1
