"""The legacy CLI surfaces through the pack runner: byte-identical.

``repro chaos run`` and ``repro fleet sweep`` now execute as scenario
packs, but their stdout is a compatibility contract — the summary
lines and tables below are the exact bytes the pre-pack commands
printed (recorded from the legacy implementations), so these are
regression pins, not round-trips through the new code's own
formatting.
"""

import subprocess
import sys
import warnings

import pytest

from repro.__main__ import main as cli_main

REPO_ROOT = __file__.rsplit("/tests/", 1)[0]

#: (argv tail, expected summary line) — recorded from the legacy
#: ``run_scenario`` path; any byte of drift is a broken contract.
CHAOS_GOLDENS = [
    (["bus_noise", "--seed", "7"],
     "[repro chaos run] scenario=bus_noise seed=7 interval_s=0.560 "
     "ticks=21 faults=5 recovered=5 dark=0 retries=5 backoff_s=0.112334 "
     "breaker_opens=0 stale=0"),
    (["bmc_dark", "--seed", "805381"],
     "[repro chaos run] scenario=bmc_dark seed=805381 interval_s=0.560 "
     "ticks=21 faults=4 recovered=0 dark=13 retries=8 backoff_s=0.262456 "
     "breaker_opens=2 stale=0"),
    (["daemon_wedge", "--seed", "805381"],
     "[repro chaos run] scenario=daemon_wedge seed=805381 "
     "interval_s=0.560 ticks=21 faults=13 recovered=0 dark=0 retries=0 "
     "backoff_s=0.000000 breaker_opens=0 stale=13"),
    (["bus_noise", "--seed", "11", "--duration", "6", "--rate", "0.3"],
     "[repro chaos run] scenario=bus_noise seed=11 interval_s=0.560 "
     "ticks=10 faults=7 recovered=7 dark=0 retries=8 backoff_s=0.194979 "
     "breaker_opens=0 stale=0"),
]


@pytest.mark.parametrize("argv, golden", CHAOS_GOLDENS,
                         ids=[" ".join(argv) for argv, _ in CHAOS_GOLDENS])
def test_chaos_summary_lines_are_byte_identical(argv, golden, capsys):
    assert cli_main(["chaos", "run", *argv]) == 0
    out = capsys.readouterr().out
    assert out.rstrip("\n").splitlines()[-1] == golden


def test_chaos_full_stdout_golden_in_a_fresh_process():
    """The whole chaos stdout — deltas header, metric families, summary
    — pinned byte for byte from a process with virgin counters."""
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "chaos", "run", "bus_noise",
         "--seed", "7"],
        capture_output=True, text=True, cwd=REPO_ROOT,
        env={"PYTHONPATH": f"{REPO_ROOT}/src", "PATH": "/usr/bin:/bin"},
    )
    assert proc.returncode == 0, proc.stderr
    assert proc.stdout == (
        "# no collector errors (every fault recovered)\n"
        'repro_chaos_faults_injected_total{mechanism="ipmb",'
        'kind="ipmb_drop"} 5\n'
        'repro_retry_attempts_total{mechanism="ipmb"} 5\n'
        'repro_retry_backoff_seconds_total{mechanism="ipmb"} '
        "0.11233358588285475\n"
        "[repro chaos run] scenario=bus_noise seed=7 interval_s=0.560 "
        "ticks=21 faults=5 recovered=5 dark=0 retries=5 "
        "backoff_s=0.112334 breaker_opens=0 stale=0\n"
    )


def test_chaos_unknown_scenario_keeps_the_legacy_message(capsys):
    assert cli_main(["chaos", "run", "no_such_scenario"]) == 2
    err = capsys.readouterr().err
    assert ("chaos run: unknown chaos scenario 'no_such_scenario'; "
            "have ['bmc_dark', 'bus_noise', 'daemon_wedge']") in err


#: The canned fleet_bench results the table golden below renders.
_CANNED_FLEET = {
    "fleet_sweep": {"wall_s": 1.25, "speedup_vs_scalar": 48.0,
                    "sites": 2, "racks": 4, "sweeps": 4, "records": 1024,
                    "dropped": 0, "reshards": 1, "shards": 6,
                    "rollup_windows": 3},
    "cache_ablation": {"hit_rate": 0.875, "crossings_uncached": 3200,
                       "crossings_cached": 400,
                       "crossings_reduction": 8.0, "byte_identical": True},
}


@pytest.fixture
def canned_fleet_bench(monkeypatch):
    calls = []

    def canned(json_path=None, smoke=False):
        calls.append((json_path, smoke))
        return _CANNED_FLEET

    import repro.fleet

    monkeypatch.setattr(repro.fleet, "fleet_bench", canned)
    return calls


def test_fleet_sweep_table_is_byte_identical(canned_fleet_bench, capsys):
    """The exact table the legacy ``_fleet_command`` printed for these
    results, rebuilt row for row as the legacy code built it."""
    from repro.analysis.tables import format_table

    rows = [(f"sweep.{key}", f"{value:g}")
            for key, value in _CANNED_FLEET["fleet_sweep"].items()]
    rows += [(f"cache.{key}",
              str(value) if isinstance(value, bool) else f"{value:g}")
             for key, value in _CANNED_FLEET["cache_ablation"].items()]
    legacy_table = format_table(
        ("metric", "value"), rows,
        title="[repro fleet sweep] smoke profile, nothing written")

    assert cli_main(["fleet", "sweep", "--smoke"]) == 0
    captured = capsys.readouterr()
    assert captured.out == legacy_table + "\n"
    assert canned_fleet_bench == [(None, True)]  # shim owns file writes


def test_fleet_sweep_json_write_matches_legacy_bytes(
        canned_fleet_bench, tmp_path, capsys):
    import json

    json_path = tmp_path / "fleet.json"
    assert cli_main(["fleet", "sweep", "--smoke",
                     "--json", str(json_path)]) == 0
    capsys.readouterr()
    legacy_bytes = (json.dumps(_CANNED_FLEET, indent=2, sort_keys=True)
                    + "\n")
    assert json_path.read_text(encoding="utf-8") == legacy_bytes


def test_fleet_sweep_floor_failures_still_gate(monkeypatch, capsys):
    import repro.fleet

    slow = {"fleet_sweep": {**_CANNED_FLEET["fleet_sweep"],
                            "speedup_vs_scalar": 0.5},
            "cache_ablation": _CANNED_FLEET["cache_ablation"]}
    monkeypatch.setattr(repro.fleet, "fleet_bench",
                        lambda json_path=None, smoke=False: slow)
    assert cli_main(["fleet", "sweep", "--smoke"]) == 1
    assert "realtime factor" in capsys.readouterr().err


@pytest.mark.parametrize("argv", [
    ["fleet"],
    ["fleet", "sweep", "--json"],
    ["fleet", "sweep", "--frobnicate"],
])
def test_fleet_bad_usage_exits_two(argv, capsys):
    assert cli_main(argv) == 2
    assert capsys.readouterr().err


def test_legacy_entry_points_warn_once_toward_the_shims(capsys):
    from repro.__main__ import _chaos_command, _fleet_command
    from repro._compat import reset_deprecation_warnings

    reset_deprecation_warnings()
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        _chaos_command(["list"])
        _chaos_command(["list"])
        _fleet_command([])
    capsys.readouterr()
    messages = [str(w.message) for w in caught
                if issubclass(w.category, DeprecationWarning)]
    assert len(messages) == 2  # once per alias, not per call
    assert any("repro.packs.shims.chaos_command" in m for m in messages)
    assert any("repro.packs.shims.fleet_command" in m for m in messages)
