"""Unit and property tests for workload base classes."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import WorkloadError
from repro.sim.signals import ConstantSignal, PeriodicPulseSignal
from repro.workloads.base import Component, Phase, PhasedWorkload, Workload


def simple_workload(duration=10.0, level=0.5):
    return Workload("w", duration, {Component.CPU_CORES: ConstantSignal(level)})


class TestWorkload:
    def test_unknown_component_rejected(self):
        with pytest.raises(WorkloadError):
            Workload("w", 1.0, {"bogus.thing": ConstantSignal(0.5)})

    def test_nonpositive_duration_rejected(self):
        with pytest.raises(WorkloadError):
            Workload("w", 0.0, {})

    def test_utilization_inside_window(self):
        w = simple_workload()
        assert w.utilization(Component.CPU_CORES, 5.0) == 0.5

    def test_utilization_zero_outside_window(self):
        w = simple_workload(duration=10.0)
        assert w.utilization(Component.CPU_CORES, -1.0) == 0.0
        assert w.utilization(Component.CPU_CORES, 10.5) == 0.0

    def test_unstressed_component_is_idle(self):
        w = simple_workload()
        assert w.utilization(Component.GPU_SM, 5.0) == 0.0

    def test_utilization_clipped_to_unit_interval(self):
        w = Workload("w", 10.0, {Component.CPU_CORES: ConstantSignal(1.7)})
        assert w.utilization(Component.CPU_CORES, 5.0) == 1.0
        w2 = Workload("w", 10.0, {Component.CPU_CORES: ConstantSignal(-0.5)})
        assert w2.utilization(Component.CPU_CORES, 5.0) == 0.0

    def test_vectorized_evaluation(self):
        w = simple_workload(duration=10.0)
        t = np.array([-1.0, 5.0, 11.0])
        np.testing.assert_array_equal(
            w.utilization(Component.CPU_CORES, t), [0.0, 0.5, 0.0]
        )

    @given(st.floats(min_value=-100, max_value=200))
    def test_utilization_always_in_unit_interval(self, t):
        w = PhasedWorkload("w", [Phase("p", 100.0, {Component.CPU_CORES: 0.9})],
                           modulation={Component.CPU_CORES: PeriodicPulseSignal(5.0, 0.1, 0.5)})
        u = w.utilization(Component.CPU_CORES, t)
        assert 0.0 <= u <= 1.0


class TestScheduledWorkload:
    def test_shifts_timeline(self):
        sched = simple_workload(duration=10.0).shifted(100.0)
        assert sched.utilization(Component.CPU_CORES, 50.0) == 0.0
        assert sched.utilization(Component.CPU_CORES, 105.0) == 0.5
        assert sched.utilization(Component.CPU_CORES, 111.0) == 0.0
        assert sched.t_end == 110.0

    def test_negative_start_rejected(self):
        with pytest.raises(WorkloadError):
            simple_workload().shifted(-1.0)


class TestPhase:
    def test_load_bounds_validated(self):
        with pytest.raises(WorkloadError):
            Phase("p", 1.0, {Component.CPU_CORES: 1.5})

    def test_duration_validated(self):
        with pytest.raises(WorkloadError):
            Phase("p", 0.0)


class TestPhasedWorkload:
    def test_empty_phases_rejected(self):
        with pytest.raises(WorkloadError):
            PhasedWorkload("w", [])

    def test_duration_is_sum_of_phases(self):
        w = PhasedWorkload("w", [
            Phase("a", 2.0, {Component.CPU_CORES: 0.5}),
            Phase("b", 3.0, {Component.CPU_CORES: 0.8}),
        ])
        assert w.duration == 5.0

    def test_phase_levels_apply_in_order(self):
        w = PhasedWorkload("w", [
            Phase("a", 2.0, {Component.CPU_CORES: 0.5}),
            Phase("b", 3.0, {Component.CPU_CORES: 0.8}),
        ])
        assert w.utilization(Component.CPU_CORES, 1.0) == 0.5
        assert w.utilization(Component.CPU_CORES, 4.0) == 0.8

    def test_component_absent_from_phase_is_idle(self):
        w = PhasedWorkload("w", [
            Phase("a", 2.0, {Component.CPU_CORES: 0.5}),
            Phase("b", 3.0, {Component.GPU_SM: 0.8}),
        ])
        assert w.utilization(Component.GPU_SM, 1.0) == 0.0
        assert w.utilization(Component.CPU_CORES, 4.0) == 0.0

    def test_modulation_adds_to_phase_level(self):
        w = PhasedWorkload(
            "w", [Phase("a", 10.0, {Component.CPU_CORES: 0.5})],
            modulation={Component.CPU_CORES: ConstantSignal(0.2)},
        )
        assert w.utilization(Component.CPU_CORES, 5.0) == pytest.approx(0.7)

    def test_modulation_only_component(self):
        w = PhasedWorkload(
            "w", [Phase("a", 10.0, {Component.CPU_CORES: 0.5})],
            modulation={Component.GPU_SM: ConstantSignal(0.3)},
        )
        assert w.utilization(Component.GPU_SM, 5.0) == pytest.approx(0.3)

    def test_phase_boundaries(self):
        w = PhasedWorkload("w", [
            Phase("a", 2.0, {Component.CPU_CORES: 0.1}),
            Phase("b", 3.0, {Component.CPU_CORES: 0.2}),
        ])
        assert w.phase_boundaries() == [("a", 0.0, 2.0), ("b", 2.0, 5.0)]


def test_component_all_lists_namespaced_names():
    names = Component.all()
    assert Component.CPU_CORES in names
    assert Component.BGQ_SRAM in names
    assert all("." in n or n == "net" for n in names)
