"""Unit tests for the STREAM workload models."""

import pytest

from repro.errors import WorkloadError
from repro.rapl.domains import RaplDomain
from repro.rapl.package import SANDY_BRIDGE, CpuPackage
from repro.sim.rng import RngRegistry
from repro.workloads.base import Component
from repro.workloads.stream import (
    BgqStreamWorkload,
    StreamTriadWorkload,
    triad_seconds,
)


class TestTriadModel:
    def test_runtime_linear_in_iterations(self):
        assert triad_seconds(1 << 30, 35e9, 200) == pytest.approx(
            2.0 * triad_seconds(1 << 30, 35e9, 100)
        )

    def test_validation(self):
        with pytest.raises(WorkloadError):
            triad_seconds(0, 1.0, 1)
        with pytest.raises(WorkloadError):
            triad_seconds(1, 0.0, 1)


class TestStreamTriad:
    def test_dram_dominates_cores(self):
        w = StreamTriadWorkload()
        t = w.duration / 2.0
        assert w.utilization(Component.CPU_DRAM, t) > 0.9
        assert w.utilization(Component.CPU_CORES, t) < 0.6

    def test_dram_plane_power_saturated_on_rapl(self):
        pkg = CpuPackage(SANDY_BRIDGE, rng=RngRegistry(101))
        w = StreamTriadWorkload()
        pkg.board.schedule(w, t_start=0.0)
        t = w.duration / 2.0
        dram = float(pkg.true_power(RaplDomain.DRAM, t))
        assert dram > SANDY_BRIDGE.dram_idle_w + 0.9 * SANDY_BRIDGE.dram_w

    def test_inverse_of_gaussian_signature(self):
        """GE is core-bound, STREAM memory-bound: the per-domain split
        the paper's Table II mechanisms exist to expose."""
        from repro.workloads.gaussian import GaussianEliminationWorkload

        ge = GaussianEliminationWorkload()
        stream = StreamTriadWorkload()
        t_ge, t_stream = ge.duration / 2.0, stream.duration / 2.0
        ge_ratio = (ge.utilization(Component.CPU_CORES, t_ge)
                    / max(ge.utilization(Component.CPU_DRAM, t_ge), 1e-9))
        stream_ratio = (stream.utilization(Component.CPU_CORES, t_stream)
                        / stream.utilization(Component.CPU_DRAM, t_stream))
        assert ge_ratio > 1.2
        assert stream_ratio < 0.7


class TestBgqStream:
    def test_network_quiet_dram_loud(self):
        w = BgqStreamWorkload(duration=100.0)
        assert w.utilization(Component.BGQ_DRAM, 50.0) > 0.9
        assert w.utilization(Component.BGQ_HSS, 50.0) == 0.0
        assert w.utilization(Component.BGQ_OPTICS, 50.0) == 0.0

    def test_validation(self):
        with pytest.raises(WorkloadError):
            BgqStreamWorkload(duration=1.0)

    def test_contrast_with_mmps_on_node_board(self):
        """Two jobs, opposite domain signatures, same machine."""
        from repro.bgq.domains import BgqDomain
        from repro.bgq.topology import NodeBoard
        from repro.workloads.mmps import MmpsWorkload

        stream_board = NodeBoard("R00-M0-N00", RngRegistry(1))
        stream_board.board.schedule(BgqStreamWorkload(duration=100.0))
        mmps_board = NodeBoard("R00-M0-N01", RngRegistry(2))
        mmps_board.board.schedule(MmpsWorkload(duration=100.0))
        t = 50.0
        assert (stream_board.domain_power(BgqDomain.DRAM, t)
                > mmps_board.domain_power(BgqDomain.DRAM, t))
        assert (stream_board.domain_power(BgqDomain.HSS_NETWORK, t)
                < mmps_board.domain_power(BgqDomain.HSS_NETWORK, t))
