"""Unit tests for the concrete workload models used by the figures."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workloads.base import Component
from repro.workloads.gaussian import (
    GaussianEliminationWorkload,
    OffloadGaussianWorkload,
    elimination_seconds,
)
from repro.workloads.mmps import MmpsWorkload, messaging_rate
from repro.workloads.noop import GpuNoopWorkload, PhiNoopWorkload
from repro.workloads.toy import TABLE3_RUNTIME_S, FixedRuntimeToyWorkload, IdleWorkload
from repro.workloads.vectoradd import VectorAddWorkload


class TestMmps:
    def test_small_messages_hit_millions_per_second(self):
        rate = messaging_rate(32)
        assert 1e6 < rate < 5e6  # "million messages per second"

    def test_large_messages_bandwidth_bound(self):
        assert messaging_rate(1 << 20) < messaging_rate(32)

    def test_invalid_size_rejected(self):
        with pytest.raises(WorkloadError):
            messaging_rate(0)

    def test_network_dominated_profile(self):
        w = MmpsWorkload(duration=300.0)
        mid = 150.0
        assert w.utilization(Component.BGQ_HSS, mid) > 0.8
        assert w.utilization(Component.BGQ_OPTICS, mid) > 0.8
        assert w.utilization(Component.BGQ_DRAM, mid) < 0.5

    def test_ramp_lower_than_sustain(self):
        w = MmpsWorkload(duration=300.0)
        assert (w.utilization(Component.BGQ_HSS, 5.0)
                < w.utilization(Component.BGQ_HSS, 150.0))

    def test_too_short_rejected(self):
        with pytest.raises(WorkloadError):
            MmpsWorkload(duration=10.0)

    def test_intensity_validated(self):
        with pytest.raises(WorkloadError):
            MmpsWorkload(intensity=0.0)

    def test_rate_exposed(self):
        assert MmpsWorkload().rate == messaging_rate(32)


class TestGaussian:
    def test_elimination_time_scales_cubically(self):
        assert elimination_seconds(2000, 10.0) == pytest.approx(
            8.0 * elimination_seconds(1000, 10.0)
        )

    def test_validation(self):
        with pytest.raises(WorkloadError):
            elimination_seconds(0, 1.0)
        with pytest.raises(WorkloadError):
            elimination_seconds(100, 0.0)

    def test_rhythmic_drop_present(self):
        w = GaussianEliminationWorkload(n=8000, gflops=22.0, sync_period=5.0)
        t = np.arange(0.0, min(w.duration, 30.0), 0.05)
        u = w.utilization(Component.CPU_CORES, t)
        # Clear bimodality: sustained level vs. sync-drop level (the
        # -0.13 stall calibrated to the paper's ~5 W package drop).
        assert u.max() - u.min() > 0.12
        # Drops recur with the sync period: value at t and t+period match.
        np.testing.assert_allclose(
            w.utilization(Component.CPU_CORES, np.array([1.0, 2.0])),
            w.utilization(Component.CPU_CORES, np.array([6.0, 7.0])),
        )

    def test_sync_period_validated(self):
        with pytest.raises(WorkloadError):
            GaussianEliminationWorkload(sync_period=0.1)


class TestOffloadGaussian:
    def test_cards_idle_during_datagen(self):
        w = OffloadGaussianWorkload(datagen_seconds=100.0)
        assert w.utilization(Component.PHI_CORES, 50.0) == 0.0
        assert w.utilization(Component.CPU_CORES, 50.0) > 0.0

    def test_cards_busy_during_compute(self):
        w = OffloadGaussianWorkload(datagen_seconds=100.0)
        t_compute = 100.0 + w.metadata["transfer_seconds"] + 5.0
        assert w.utilization(Component.PHI_CORES, t_compute) > 0.5

    def test_transfer_stresses_pcie(self):
        w = OffloadGaussianWorkload(datagen_seconds=100.0)
        t_transfer = 100.0 + w.metadata["transfer_seconds"] / 2.0
        assert w.utilization(Component.PHI_PCIE, t_transfer) > 0.8

    def test_validation(self):
        with pytest.raises(WorkloadError):
            OffloadGaussianWorkload(datagen_seconds=0.0)


class TestNoop:
    def test_gpu_noop_gradual_ramp(self):
        w = GpuNoopWorkload(duration=12.5, ramp_tau=1.5, level=0.22)
        u1 = w.utilization(Component.GPU_SM, 0.5)
        u5 = w.utilization(Component.GPU_SM, 5.0)
        u10 = w.utilization(Component.GPU_SM, 10.0)
        assert u1 < u5 <= u10
        # Levels off: by ~5 s it is within 5% of asymptote.
        assert u5 > 0.95 * 0.22

    def test_gpu_noop_level_validated(self):
        with pytest.raises(WorkloadError):
            GpuNoopWorkload(level=0.0)

    def test_phi_noop_is_whisper_quiet(self):
        w = PhiNoopWorkload()
        assert w.utilization(Component.PHI_CORES, 60.0) <= 0.05
        assert w.utilization(Component.PHI_GDDR, 60.0) == 0.0


class TestVectorAdd:
    def test_three_phase_structure(self):
        w = VectorAddWorkload(datagen_seconds=10.0, compute_seconds=85.0,
                              transfer_seconds=3.0)
        # During datagen: GPU nearly idle.
        assert w.utilization(Component.GPU_SM, 5.0) < 0.15
        # During compute: memory-bound high load.
        assert w.utilization(Component.GPU_MEM, 50.0) == pytest.approx(0.9)
        assert w.utilization(Component.GPU_SM, 50.0) > 0.7

    def test_power_jump_after_datagen(self):
        w = VectorAddWorkload()
        before = w.utilization(Component.GPU_SM, 9.0)
        after = w.utilization(Component.GPU_SM, 20.0)
        assert after > before + 0.5  # "increases dramatically"

    def test_validation(self):
        with pytest.raises(WorkloadError):
            VectorAddWorkload(datagen_seconds=-1.0)


class TestToy:
    def test_exact_duration_matches_table3(self):
        assert FixedRuntimeToyWorkload().duration == TABLE3_RUNTIME_S

    def test_constant_load_throughout(self):
        w = FixedRuntimeToyWorkload()
        t = np.linspace(1.0, w.duration - 1.0, 7)
        u = w.utilization(Component.BGQ_CHIP_CORE, t)
        assert np.all(u == 0.6)

    def test_idle_workload_is_everywhere_zero(self):
        w = IdleWorkload(30.0)
        for comp in [Component.CPU_CORES, Component.GPU_SM, Component.BGQ_DRAM]:
            assert w.utilization(comp, 15.0) == 0.0

    def test_idle_duration_validated(self):
        with pytest.raises(WorkloadError):
            IdleWorkload(0.0)
