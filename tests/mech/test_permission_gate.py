"""The ``AccessChannel.permission`` declaration is *enforced*: a
credentialed read of a privileged mechanism routes through the same
POSIX check the real chardev open would, and fails the same way.

Before this gate existed, ``permission="root"`` mechanisms read fine as
``USER`` — the field was declarative only (the bug tracked on the
roadmap's permission-wiring item).
"""

import numpy as np
import pytest

from repro.errors import AccessDeniedError
from repro.host.permissions import ROOT, USER
from repro.mech import AccessChannel
from repro.obs.instruments import COLLECTOR_ERRORS
from repro.testbeds import fleet_node


class TestChannelGate:
    def test_none_channels_are_ungated(self):
        channel = AccessChannel("nvml-library", 1.3e-3)
        assert not channel.requires_privilege
        assert channel.gate_mode() == 0o444
        channel.check_access(USER)  # no raise

    def test_privileged_channel_denies_user(self):
        channel = AccessChannel("msr-chardev", 0.03e-3, permission="root")
        assert channel.requires_privilege
        assert channel.gate_mode() == 0o600
        with pytest.raises(AccessDeniedError) as exc:
            channel.check_access(USER)
        # The error is the POSIX layer's, naming uid and mode.
        assert "uid 1000" in str(exc.value)
        assert "600" in str(exc.value)

    def test_privileged_channel_admits_root(self):
        channel = AccessChannel("msr-chardev", 0.03e-3, permission="root")
        channel.check_access(ROOT)  # no raise

    def test_msr_spec_declares_root(self):
        from repro.core.moneq.backends import RAPL_MSR_SPEC

        assert RAPL_MSR_SPEC.channel.permission == "root"
        assert RAPL_MSR_SPEC.channel.requires_privilege


class TestMechanismGate:
    def test_credentialed_read_denied_before_chmod_ritual(self):
        node, backends = fleet_node(seed=0xACCE, grant_msr_access=False)
        msr = backends["rapl_msr"]
        before = COLLECTOR_ERRORS.value("rapl_msr", "permission_denied")
        with pytest.raises(AccessDeniedError) as exc:
            msr.read_at(1.0, creds=USER)
        # The denial happens at the real chardev node, not a shadow
        # check: the path in the message is the VFS gate.
        assert "/dev/cpu/0/msr" in str(exc.value)
        assert COLLECTOR_ERRORS.value("rapl_msr", "permission_denied") == \
            before + 1

    def test_chmod_ritual_opens_the_gate(self):
        node, backends = fleet_node(seed=0xACCE, grant_msr_access=False)
        msr = backends["rapl_msr"]
        with pytest.raises(AccessDeniedError):
            msr.read_block(np.array([1.0]), creds=USER)
        node.kernel.module("msr").grant_readonly_access()
        sample = msr.read_at(1.0, creds=USER)
        assert set(sample) == set(msr.fields())

    def test_root_reads_through_closed_gate(self):
        _, backends = fleet_node(seed=0xACCE, grant_msr_access=False)
        sample = backends["rapl_msr"].read_at(1.0, creds=ROOT)
        assert set(sample) == set(backends["rapl_msr"].fields())

    def test_credentialless_reads_stay_trusted(self):
        # The in-band session hot path passes no creds and is not
        # gated — sessions run as the deployed profiler, and the block
        # engine's byte-identity story must not depend on chmod state.
        _, backends = fleet_node(seed=0xACCE, grant_msr_access=False)
        block = backends["rapl_msr"].read_block(np.array([1.0, 2.0]))
        assert block.shape == (2,)

    def test_unbound_mechanism_falls_back_to_declaration(self):
        # A mechanism without a bound VFS gate still enforces the
        # declared permission (against the pre-ritual gate mode).
        from repro.core.moneq.backends import RaplMsrBackend
        from repro.rapl.package import SANDY_BRIDGE_EP, CpuPackage
        from repro.sim.rng import RngRegistry

        msr = RaplMsrBackend(CpuPackage(SANDY_BRIDGE_EP,
                                        rng=RngRegistry(7).fork("cpu0")))
        with pytest.raises(AccessDeniedError):
            msr.read_at(1.0, creds=USER)
        msr.read_at(1.0, creds=ROOT)

    def test_ungated_mechanisms_admit_user(self):
        _, backends = fleet_node(seed=0xACCE, grant_msr_access=False)
        for name in ("nvml", "micras", "ipmb", "rapl_powercap"):
            sample = backends[name].read_at(1.0, creds=USER)
            assert set(sample) == set(backends[name].fields())
