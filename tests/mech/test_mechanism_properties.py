"""Property tests over the *whole* registered fleet: every declared
mechanism, instantiated on its testbed, must honor its declaration —
the field list its ``read_at`` returns, the latency and minimum
interval MonEQ charges, and the capability column it reports."""

import numpy as np
import pytest

from repro import testbeds
from repro.bgq.emon import EmonInterface
from repro.bgq.topology import NodeBoard
from repro.core.capability import platform_capabilities
from repro.core.moneq.backends import (
    BgqEmonBackend,
    NvmlBackend,
    PhiIpmbBackend,
    PhiMicrasBackend,
    PhiMicsmcBackend,
    PhiSysMgmtBackend,
    RaplMsrBackend,
    RaplPerfBackend,
    RaplPowercapBackend,
)
from repro.errors import ConfigError
from repro.mech import mechanisms
from repro.mech.mechanism import Mechanism
from repro.mech.source import SensorSource
from repro.rapl.perf_event import PerfEventRapl
from repro.rapl.powercap import install_powercap_driver
from repro.sim.clock import VirtualClock
from repro.sim.rng import RngRegistry

SEED = 0x3EC4


def _make_emon():
    board = NodeBoard("R00-M0-N00", RngRegistry(SEED))
    return BgqEmonBackend(EmonInterface(board, VirtualClock()))


def _make_msr():
    node, _ = testbeds.rapl_node(seed=SEED)
    return RaplMsrBackend(node.devices("cpu")[0])


def _make_powercap():
    node, _ = testbeds.rapl_node(seed=SEED, kernel="3.13")
    install_powercap_driver(node)
    node.kernel.modprobe("intel_rapl")
    return RaplPowercapBackend(node)


def _make_perf():
    node, _ = testbeds.rapl_node(seed=SEED, kernel="3.14")
    return RaplPerfBackend(PerfEventRapl(node, node.devices("cpu")[0]))


def _make_nvml():
    _, gpu, _ = testbeds.gpu_node(seed=SEED)
    return NvmlBackend(gpu)


def _make_sysmgmt():
    return PhiSysMgmtBackend(testbeds.phi_node(seed=SEED).sysmgmt)


def _make_micras():
    return PhiMicrasBackend(testbeds.phi_node(seed=SEED).micras)


def _make_ipmb():
    return PhiIpmbBackend(testbeds.phi_node(seed=SEED).bmc)


def _make_micsmc():
    return PhiMicsmcBackend(testbeds.phi_node(seed=SEED).smc)


#: mechanism name -> live instance factory; one entry per registered
#: spec, enforced by test_every_registered_mechanism_is_exercised.
FACTORIES = {
    "emon": _make_emon,
    "rapl_msr": _make_msr,
    "rapl_powercap": _make_powercap,
    "rapl_perf": _make_perf,
    "nvml": _make_nvml,
    "sysmgmt": _make_sysmgmt,
    "micras": _make_micras,
    "ipmb": _make_ipmb,
    "micsmc": _make_micsmc,
}


def test_every_registered_mechanism_is_exercised():
    assert set(FACTORIES) == set(mechanisms())


@pytest.mark.parametrize("name", sorted(FACTORIES))
class TestDeclarationHonored:
    def test_read_at_keys_match_declared_fields(self, name):
        """The central property: the capability/field declaration and
        what a read actually returns cannot drift apart."""
        backend = FACTORIES[name]()
        spec = mechanisms()[name]
        row = backend.read_at(1.0)
        assert tuple(row) == spec.fields
        assert tuple(backend.fields()) == spec.fields

    def test_read_block_columns_match_declared_fields(self, name):
        backend = FACTORIES[name]()
        spec = mechanisms()[name]
        block = backend.read_block(np.array([1.0, 2.0, 3.0]))
        assert block.dtype.names == spec.fields

    def test_latency_and_interval_come_from_the_spec(self, name):
        backend = FACTORIES[name]()
        spec = mechanisms()[name]
        assert backend.min_interval_s == spec.min_interval_s
        assert backend.query_latency_s == spec.read_latency_s
        assert type(backend).MIN_INTERVAL_S == spec.min_interval_s

    def test_capabilities_are_the_declared_platform_column(self, name):
        backend = FACTORIES[name]()
        spec = mechanisms()[name]
        assert backend.platform == spec.platform
        assert backend.mechanism == spec.name
        assert backend.capabilities() == platform_capabilities(spec.platform)

    def test_instrument_keyed_by_mechanism(self, name):
        backend = FACTORIES[name]()
        from repro.obs.instruments import collector

        assert backend.instrument is collector(name)


class TestCompositionValidation:
    def test_source_field_mismatch_rejected(self):
        """A mechanism whose source produces different columns than its
        declaration promises must fail loudly at composition time."""

        class WrongSource(SensorSource):
            def fields(self):
                return ("other_w",)

            def collect(self, times):
                return {"other_w": np.zeros(times.shape[0])}

        spec = mechanisms()["nvml"]
        with pytest.raises(ConfigError):
            Mechanism(spec, WrongSource(), label="wrong")

    def test_nvml_latency_override_keeps_spec_channel_intact(self):
        _, gpu, _ = testbeds.gpu_node(seed=SEED)
        slow = NvmlBackend(gpu, query_latency_s=5e-3)
        assert slow.query_latency_s == 5e-3
        # The registered declaration still carries the paper's number.
        assert mechanisms()["nvml"].channel.per_query_latency_s == 1.3e-3
