"""Oracle test: the Table I matrices *derived* from the mechanism
layer's :class:`CapabilityDecl`s must equal the hand-maintained literal
matrices they replaced, cell for cell.

The expected values below are a verbatim copy of the pre-refactor
``repro.core.capability`` literals — the table the paper-claims and
ground-truth suites were validated against.  If a declaration drifts,
this test names the exact cell.
"""

from repro.core.capability import (
    PLATFORM_ORDER,
    TABLE1_ROWS,
    PlatformCapabilities,
    _keys,
    capability_matrix,
    platform_capabilities,
    render_capability_table,
)

EXPECTED_XEON_PHI = PlatformCapabilities(
    platform="Xeon Phi",
    available=_keys(
        ("Total Power Consumption (Watts)", "Total"),
        ("Total Power Consumption (Watts)", "Voltage"),
        ("Total Power Consumption (Watts)", "Current"),
        ("Total Power Consumption (Watts)", "PCI Express"),
        ("Total Power Consumption (Watts)", "Main Memory"),
        ("Temperature", "Die"),
        ("Temperature", "DDR/GDDR"),
        ("Temperature", "Device"),
        ("Temperature", "Intake (Fan-In)"),
        ("Temperature", "Exhaust (Fan-Out)"),
        ("Main Memory", "Used"),
        ("Main Memory", "Free"),
        ("Main Memory", "Speed (kT/sec)"),
        ("Main Memory", "Frequency"),
        ("Main Memory", "Voltage"),
        ("Main Memory", "Clock Rate"),
        ("Processor", "Voltage"),
        ("Processor", "Frequency"),
        ("Processor", "Clock Rate"),
        ("Fans", "Speed (In RPM)"),
        ("Limits", "Get/Set Power Limit"),
    ),
)

EXPECTED_NVML = PlatformCapabilities(
    platform="NVML",
    available=_keys(
        ("Total Power Consumption (Watts)", "Total"),  # whole board only
        ("Temperature", "Die"),
        ("Temperature", "Device"),
        ("Main Memory", "Used"),
        ("Main Memory", "Free"),
        ("Main Memory", "Frequency"),
        ("Main Memory", "Clock Rate"),
        ("Processor", "Frequency"),
        ("Processor", "Clock Rate"),
        ("Fans", "Speed (In RPM)"),
        ("Limits", "Get/Set Power Limit"),
    ),
)

EXPECTED_BGQ = PlatformCapabilities(
    platform="Blue Gene/Q",
    available=_keys(
        ("Total Power Consumption (Watts)", "Total"),
        ("Total Power Consumption (Watts)", "Voltage"),
        ("Total Power Consumption (Watts)", "Current"),
        ("Total Power Consumption (Watts)", "PCI Express"),
        ("Total Power Consumption (Watts)", "Main Memory"),
        ("Main Memory", "Voltage"),
        ("Processor", "Voltage"),
    ),
    # Water-cooled node boards: no airflow sensors at the device level.
    not_applicable=_keys(
        ("Temperature", "Intake (Fan-In)"),
        ("Temperature", "Exhaust (Fan-Out)"),
        ("Fans", "Speed (In RPM)"),
    ),
)

EXPECTED_RAPL = PlatformCapabilities(
    platform="RAPL",
    available=_keys(
        ("Total Power Consumption (Watts)", "Total"),  # socket scope
        ("Total Power Consumption (Watts)", "Main Memory"),  # DRAM domain
        ("Limits", "Get/Set Power Limit"),
    ),
    # A socket has no PCIe rail of its own nor airflow sensors.
    not_applicable=_keys(
        ("Total Power Consumption (Watts)", "PCI Express"),
        ("Temperature", "Intake (Fan-In)"),
        ("Temperature", "Exhaust (Fan-Out)"),
        ("Fans", "Speed (In RPM)"),
    ),
)

EXPECTED = {
    "Xeon Phi": EXPECTED_XEON_PHI,
    "NVML": EXPECTED_NVML,
    "Blue Gene/Q": EXPECTED_BGQ,
    "RAPL": EXPECTED_RAPL,
}


class TestDerivedMatrixMatchesOracle:
    def test_every_cell(self):
        matrix = capability_matrix()
        for platform in PLATFORM_ORDER:
            derived, expected = matrix[platform], EXPECTED[platform]
            for row in TABLE1_ROWS:
                assert derived.cell(row) is expected.cell(row), (
                    f"{platform} / {row.key}: derived "
                    f"{derived.cell(row).value}, hand-maintained table had "
                    f"{expected.cell(row).value}"
                )

    def test_whole_columns_equal(self):
        for platform in PLATFORM_ORDER:
            assert capability_matrix()[platform] == EXPECTED[platform]

    def test_lookup_by_name(self):
        for platform in PLATFORM_ORDER:
            assert platform_capabilities(platform) == EXPECTED[platform]

    def test_unknown_platform_raises(self):
        import pytest

        with pytest.raises(KeyError):
            platform_capabilities("Cray XC40")

    def test_rendered_table_mentions_every_platform(self):
        rendered = render_capability_table()
        for platform in PLATFORM_ORDER:
            assert platform in rendered
