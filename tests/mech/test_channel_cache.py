"""Unit tests for the freshness-aware channel cache.

The cache's contract has three legs: keys derive from each mechanism's
declared refresh behavior (held windows or exact timestamps), entries
are shared exactly by consumers of the same device object, and the
cache is byte-invisible — a hit returns precisely the bytes the device
would have produced.  The mechanism-level integration (shared-device
hits, chaos invalidation) is pinned here too; the fleet-wide ablation
numbers live in ``BENCH_fleet.json``.
"""

import numpy as np
import pytest

from repro import testbeds
from repro.chaos.faults import FaultPlan, FaultRule
from repro.core.moneq.backends import NvmlBackend, RaplMsrBackend
from repro.errors import ConfigError
from repro.mech.cache import (
    CachePlan,
    ChannelCache,
    FieldPlan,
    cache_token,
    channel_cache,
    channel_cache_disabled,
)
from repro.nvml.source import NvmlSource


@pytest.fixture(autouse=True)
def _clean_cache():
    channel_cache().clear()
    yield
    channel_cache().clear()


# -- key derivation ----------------------------------------------------------


def test_held_field_keys_are_window_indices():
    plan = FieldPlan(period_s=0.25, phase_s=0.05)
    times = np.array([0.0, 0.05, 0.29, 0.30, 0.31, 1.04])
    keys = plan.keys_for(times)
    assert keys.tolist() == [-1.0, 0.0, 0.0, 1.0, 1.0, 3.0]


def test_exact_field_keys_are_timestamps():
    times = np.array([0.0, 1.5, 1.5, 7.25])
    assert FieldPlan().keys_for(times) is times


def test_field_plan_rejects_nonpositive_period():
    with pytest.raises(ConfigError):
        FieldPlan(period_s=0.0)
    with pytest.raises(ConfigError):
        FieldPlan(period_s=-1.0)


def test_cache_plan_rejects_empty_fields():
    with pytest.raises(ConfigError):
        CachePlan(object(), {})


def test_tokens_shared_per_device_object():
    _, gpu, _ = testbeds.gpu_node(seed=1)
    _, other, _ = testbeds.gpu_node(seed=1)
    assert cache_token(gpu) == cache_token(gpu)
    assert cache_token(gpu) != cache_token(other)
    # Two sources over one device share the token — that is what makes
    # 1024 MonEQ agents on one GPU share entries.
    assert NvmlSource(gpu).cache_plan().token == \
        NvmlSource(gpu).cache_plan().token


# -- entry mechanics ---------------------------------------------------------


def test_lookup_miss_then_store_then_hit():
    cache = ChannelCache()
    keys = np.array([1.0, 2.0, 3.0])
    _, hit = cache.lookup("m", 1, "f", keys)
    assert not hit.any()
    cache.store("m", 1, "f", keys, np.array([10.0, 20.0, 30.0]))
    values, hit = cache.lookup("m", 1, "f", np.array([0.5, 2.0, 3.0, 9.0]))
    assert hit.tolist() == [False, True, True, False]
    assert values[1] == 20.0 and values[2] == 30.0


def test_store_merges_and_keeps_first_on_duplicate_keys():
    cache = ChannelCache()
    cache.store("m", 1, "f", np.array([2.0, 1.0]), np.array([20.0, 10.0]))
    cache.store("m", 1, "f", np.array([2.0, 3.0]), np.array([99.0, 30.0]))
    values, hit = cache.lookup("m", 1, "f", np.array([1.0, 2.0, 3.0]))
    assert hit.all()
    # Equal keys carry equal values by construction; the first stays.
    assert values.tolist() == [10.0, 20.0, 30.0]


def test_key_overflow_keeps_newest_half():
    cache = ChannelCache(max_keys_per_entry=8)
    keys = np.arange(12, dtype=np.float64)
    cache.store("m", 1, "f", keys, keys * 10.0)
    _, hit = cache.lookup("m", 1, "f", keys)
    # The oldest (smallest) keys were dropped; the newest survive.
    assert not hit[:6].any()
    assert hit[6:].all()


def test_entry_overflow_clears_cache_and_counts_invalidations():
    cache = ChannelCache(max_entries=2)
    cache.store("m", 1, "a", np.array([1.0]), np.array([1.0]))
    cache.store("m", 1, "b", np.array([1.0]), np.array([1.0]))
    cache.store("m", 2, "a", np.array([1.0]), np.array([1.0]))
    stats = cache.stats()
    assert stats.entries == 1  # the overflowing store survives alone
    assert stats.invalidations == 2


def test_invalidate_device_drops_only_that_token():
    cache = ChannelCache()
    cache.store("m", 1, "a", np.array([1.0]), np.array([1.0]))
    cache.store("m", 1, "b", np.array([1.0]), np.array([1.0]))
    cache.store("m", 2, "a", np.array([1.0]), np.array([1.0]))
    cache.store("n", 1, "a", np.array([1.0]), np.array([1.0]))
    assert cache.invalidate_device("m", 1) == 2
    stats = cache.stats()
    assert stats.entries == 2
    assert stats.invalidations == 2
    _, hit = cache.lookup("m", 2, "a", np.array([1.0]))
    assert hit.all()


def test_note_block_accounting_and_hit_rate():
    cache = ChannelCache()
    cache.note_block("nvml", rows=10, row_hits=8, queries_per_read=3)
    cache.note_block("emon", rows=5, row_hits=0, queries_per_read=1)
    stats = cache.stats()
    assert stats.hits == 8 and stats.misses == 7
    assert stats.crossings_saved == 24
    assert stats.by_mechanism["nvml"].hit_rate == 0.8
    assert stats.hit_rate == 8 / 15


def test_disabled_context_restores_and_keeps_entries():
    cache = channel_cache()
    cache.store("m", 1, "f", np.array([1.0]), np.array([1.0]))
    assert cache.enabled
    with channel_cache_disabled() as inner:
        assert inner is cache and not cache.enabled
        with channel_cache_disabled():
            assert not cache.enabled
        assert not cache.enabled
    assert cache.enabled
    _, hit = cache.lookup("m", 1, "f", np.array([1.0]))
    assert hit.all()


# -- mechanism integration ---------------------------------------------------


def _shared_gpu_backends(seed=0x1CE, consumers=2):
    from repro.workloads.vectoradd import VectorAddWorkload

    _, gpu, _ = testbeds.gpu_node(seed=seed)
    gpu.board.schedule(VectorAddWorkload(), t_start=0.0)
    return gpu, [NvmlBackend(gpu) for _ in range(consumers)]


def test_second_consumer_hits_and_bytes_match_uncached():
    _, (first, second) = _shared_gpu_backends()
    times = np.arange(40, dtype=np.float64) * first.min_interval_s
    first.read_block(times)
    before = channel_cache().stats()
    cached_rows = second.read_block(times)
    after = channel_cache().stats()
    assert after.hits - before.hits == times.shape[0]
    assert after.misses == before.misses

    _, (fresh, _) = _shared_gpu_backends()  # identical device, cold cache
    with channel_cache_disabled():
        plain_rows = fresh.read_block(times)
    assert cached_rows.tobytes() == plain_rows.tobytes()


def test_counter_sources_declare_no_plan():
    node, _ = testbeds.rapl_node(seed=5)
    backend = RaplMsrBackend(node.devices("cpu")[0], "a")
    # Consecutive-read deltas depend on reader history: uncacheable.
    assert backend.source.cache_plan() is None
    times = np.linspace(0.0, 3.0, 16)
    before = channel_cache().stats()
    backend.read_block(times)
    after = channel_cache().stats()
    assert (after.hits, after.misses) == (before.hits, before.misses)


def test_dark_crossing_invalidates_device_entries():
    _, (backend, _) = _shared_gpu_backends(seed=0xDA2C)
    times = np.arange(16, dtype=np.float64) * backend.min_interval_s
    backend.read_block(times)
    assert channel_cache().stats().entries > 0
    plan = FaultPlan(seed=7, rules=(FaultRule("nvml", rate=1.0),))
    with plan.active():
        rows = backend.read_block(times)
    assert np.isnan(rows["board_w"]).all()
    stats = channel_cache().stats()
    assert stats.entries == 0
    assert stats.invalidations > 0


def test_cache_hit_never_masks_a_fault():
    """Injection draws over the full grid: a row whose freshness key
    hits still goes dark when its crossing draws a fault."""
    _, (first, second) = _shared_gpu_backends(seed=0xFA17)
    times = np.arange(24, dtype=np.float64) * first.min_interval_s
    first.read_block(times)  # warm every freshness window
    plan = FaultPlan(seed=3, rules=(FaultRule("nvml", rate=0.4),))
    with plan.active():
        rows = second.read_block(times)
    dark = np.isnan(rows["board_w"])
    assert dark.any(), "plan at rate 0.4 over 24 rows drew no fault"
    assert plan.stats.dark == int(np.count_nonzero(dark))
