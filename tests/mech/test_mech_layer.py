"""Unit tests for the ``repro.mech`` layer's four quarter-parts:
freshness models, access channels (latency + quantization), mechanism
specs, and the registry."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.mech import (
    MILLI_UNITS,
    AccessChannel,
    FreshnessKind,
    FreshnessModel,
    MechanismSpec,
    Quantization,
)
from repro.mech.capability_decl import RAPL_DECL, XEON_PHI_DECL
from repro.mech.registry import get, mechanisms, register
from repro.xeonphi.ipmb import ipmb_quanta, quantize_block, quantize_reading


class TestFreshnessModel:
    def test_generations_multiplies_depth(self):
        # EMON: data comes from the oldest of two 280 ms generations.
        model = FreshnessModel.generations(0.280, 2)
        assert model.min_interval_s == 0.560

    def test_refresh_and_floor_are_the_period(self):
        assert FreshnessModel.refresh(0.060).min_interval_s == 0.060
        assert FreshnessModel.floor(0.100).min_interval_s == 0.100

    def test_validation(self):
        with pytest.raises(ConfigError):
            FreshnessModel.floor(0.0)
        with pytest.raises(ConfigError):
            FreshnessModel.generations(0.280, 0)
        with pytest.raises(ConfigError):
            # depth only makes sense for generation-staged data.
            FreshnessModel(FreshnessKind.REFRESH, 0.060, depth=2)

    def test_note_survives(self):
        model = FreshnessModel.floor(0.060, note="documented jitter")
        assert model.note == "documented jitter"


class TestAccessChannel:
    def test_latency_multiplies_queries(self):
        channel = AccessChannel("msr", 0.03e-3)
        assert channel.latency_for(4) == 4 * 0.03e-3
        with pytest.raises(ConfigError):
            channel.latency_for(0)

    def test_with_latency_replaces_only_latency(self):
        channel = AccessChannel("nvml", 1.3e-3, permission="none")
        slow = channel.with_latency(5e-3)
        assert slow.per_query_latency_s == 5e-3
        assert slow.name == channel.name
        assert channel.per_query_latency_s == 1.3e-3  # original untouched

    def test_negative_latency_rejected(self):
        with pytest.raises(ConfigError):
            AccessChannel("bad", -1e-3)


class TestQuantization:
    def test_matches_ipmb_helpers(self):
        """The channel-layer milli-unit quantization is the one encoding
        the IPMB wire helpers delegate to — scalar and block alike."""
        values = np.array([0.0, 0.0004, 0.0005, 118.2468, -3.0, 2.5e28])
        for v in values:
            assert MILLI_UNITS.apply(float(v)) == quantize_reading(float(v))
            assert MILLI_UNITS.quanta(float(v)) == ipmb_quanta(float(v))
        np.testing.assert_array_equal(
            MILLI_UNITS.apply_block(values), quantize_block(values))

    def test_scalar_block_parity(self):
        q = Quantization("test", 10.0, 100)
        values = np.linspace(-1.0, 15.0, 1001)
        block = q.apply_block(values)
        for i, v in enumerate(values):
            assert q.apply(float(v)) == block[i]

    def test_clipping(self):
        q = Quantization("clip", 1000.0, 2**31 - 1)
        assert q.quanta(-5.0) == 0
        assert q.quanta(1e30) == 2**31 - 1

    def test_validation(self):
        with pytest.raises(ConfigError):
            Quantization("bad", 0.0, 10)
        with pytest.raises(ConfigError):
            Quantization("bad", 10.0, 0)


def _spec(name="test-mech", **overrides):
    kwargs = dict(
        name=name,
        platform="RAPL",
        channel=AccessChannel("test-channel", 1e-3),
        freshness=FreshnessModel.floor(0.060),
        capability=RAPL_DECL,
        fields=("pkg_w",),
    )
    kwargs.update(overrides)
    return MechanismSpec(**kwargs)


class TestMechanismSpec:
    def test_derived_numbers(self):
        spec = _spec(queries_per_read=4)
        assert spec.min_interval_s == 0.060
        assert spec.read_latency_s == 4e-3

    def test_rejects_empty_or_duplicate_fields(self):
        with pytest.raises(ConfigError):
            _spec(fields=())
        with pytest.raises(ConfigError):
            _spec(fields=("pkg_w", "pkg_w"))

    def test_rejects_capability_platform_mismatch(self):
        with pytest.raises(ConfigError):
            _spec(capability=XEON_PHI_DECL)  # platform stays "RAPL"

    def test_rejects_zero_queries(self):
        with pytest.raises(ConfigError):
            _spec(queries_per_read=0)


class TestRegistry:
    def test_identical_reregistration_is_idempotent(self):
        spec = _spec(name="idempotent-mech")
        try:
            register(spec)
            register(_spec(name="idempotent-mech"))  # equal -> fine
            assert get("idempotent-mech") == spec
        finally:
            from repro.mech import registry
            registry._REGISTRY.pop("idempotent-mech", None)

    def test_conflicting_reregistration_raises(self):
        try:
            register(_spec(name="conflict-mech"))
            with pytest.raises(ConfigError):
                register(_spec(name="conflict-mech", queries_per_read=2))
        finally:
            from repro.mech import registry
            registry._REGISTRY.pop("conflict-mech", None)

    def test_unknown_name_raises(self):
        with pytest.raises(ConfigError):
            get("no-such-mechanism")

    def test_all_eight_vendor_paths_registered(self):
        import repro.core.moneq.backends  # noqa: F401  (registers them)

        assert set(mechanisms()) >= {
            "emon", "rapl_msr", "rapl_powercap", "rapl_perf",
            "nvml", "sysmgmt", "micras", "ipmb",
        }
