"""Integration tests: the three Phi collection paths and their
trade-offs (the substance of the paper's §II-D)."""

import numpy as np
import pytest

from repro.errors import ChecksumError, IpmbError, ScifError, SensorError
from repro.sim.clock import VirtualClock
from repro.sim.rng import RngRegistry
from repro.workloads.noop import PhiNoopWorkload
from repro.xeonphi.card import XEON_PHI_SE10P, PhiCard
from repro.xeonphi.ipmb import (
    IPMB_EXCHANGE_LATENCY_S,
    BaseboardManagementController,
    IpmbMessage,
    SmcIpmbResponder,
)
from repro.xeonphi.micras import MICRAS_READ_LATENCY_S, MicrasDaemon
from repro.xeonphi.scif import ScifNetwork
from repro.xeonphi.smc import SystemManagementController
from repro.xeonphi.sysmgmt import SYSMGMT_QUERY_LATENCY_S, SysMgmtApi


@pytest.fixture
def rig():
    """One card with all three collection paths wired up."""
    clock = VirtualClock()
    card = PhiCard(XEON_PHI_SE10P, rng=RngRegistry(41), clock=clock)
    smc = SystemManagementController(card)
    network = ScifNetwork(clock, card_count=1)
    api = SysMgmtApi(network, card, smc)
    daemon = MicrasDaemon(card, smc)
    daemon.mount()
    bmc = BaseboardManagementController(SmcIpmbResponder(smc, clock), clock)
    return clock, card, smc, api, daemon, bmc


class TestSysMgmtApi:
    def test_query_returns_power(self, rig):
        clock, card, _, api, _, _ = rig
        power = api.query_power_w()
        assert 100.0 < power < 120.0

    def test_query_costs_14_2ms(self, rig):
        clock, _, _, api, _, _ = rig
        t0 = clock.now
        api.query_power_w()
        assert clock.now - t0 == pytest.approx(SYSMGMT_QUERY_LATENCY_S, rel=1e-6)

    def test_polling_raises_card_power(self, rig):
        """The Figure 7 effect: in-band polling adds watts to the card."""
        clock, card, _, api, _, _ = rig
        card.board.schedule(PhiNoopWorkload(duration=200.0))
        baseline = float(card.true_power(50.0))
        api.start_polling(interval_s=1.0, t=60.0)
        polled = float(card.true_power(70.0))
        assert 0.5 < (polled - baseline) < 4.0  # slight but real

    def test_stop_polling_restores_power(self, rig):
        clock, card, _, api, _, _ = rig
        card.board.schedule(PhiNoopWorkload(duration=200.0))
        api.start_polling(interval_s=1.0, t=40.0)
        api.stop_polling(t=100.0)
        # Compare two instants where the noop ramp has converged and no
        # session is active: power is restored exactly.
        assert float(card.true_power(150.0)) == pytest.approx(
            float(card.true_power(30.0)), abs=1e-6
        )

    def test_double_start_rejected(self, rig):
        *_, api, _, _ = rig[2], rig[3], rig[3], rig[3], rig[4], rig[5]
        api = rig[3]
        api.start_polling(1.0, t=0.0)
        with pytest.raises(ScifError):
            api.start_polling(1.0, t=1.0)

    def test_stop_without_start_rejected(self, rig):
        api = rig[3]
        with pytest.raises(ScifError):
            api.stop_polling(t=0.0)

    def test_queries_counted(self, rig):
        api = rig[3]
        api.query("die_temp_c")
        api.query("power_w")
        assert api.queries_issued == 2


class TestMicrasDaemon:
    def test_pseudo_files_mounted(self, rig):
        card, daemon = rig[1], rig[4]
        files = card.uos_vfs.listdir("/sys/class/micras")
        assert "power" in files and "temp_die" in files

    def test_power_file_parses_back_to_watts(self, rig):
        daemon = rig[4]
        power = daemon.read_power_w()
        assert 100.0 < power < 120.0

    def test_read_cost_is_rapl_class(self, rig):
        clock, daemon = rig[0], rig[4]
        t0 = clock.now
        daemon.read("power")
        assert clock.now - t0 == pytest.approx(MICRAS_READ_LATENCY_S)

    def test_read_charges_card_side_process(self, rig):
        card, daemon = rig[1], rig[4]
        rank = card.uos_processes.spawn("app-rank0")
        daemon.read("temp_die", reader=rank)
        assert rank.cpu_seconds == pytest.approx(MICRAS_READ_LATENCY_S)

    def test_unknown_file_rejected(self, rig):
        daemon = rig[4]
        with pytest.raises(SensorError):
            daemon.read("gpu_power")

    def test_all_files_parse(self, rig):
        daemon = rig[4]
        for filename in MicrasDaemon.FILES:
            value = daemon.read_value(filename)
            assert np.isfinite(value)

    def test_daemon_does_not_perturb_power(self, rig):
        """Contrast with the API: daemon reads leave card power alone."""
        card, daemon = rig[1], rig[4]
        before = float(card.true_power(card.clock.now))
        for _ in range(100):
            daemon.read("power")
        after = float(card.true_power(card.clock.now))
        assert after == pytest.approx(before, abs=1e-9)


class TestOutOfBand:
    def test_bmc_reads_power(self, rig):
        bmc = rig[5]
        power = bmc.read_power_w()
        assert 100.0 < power < 120.0

    def test_exchange_costs_bus_latency(self, rig):
        clock, bmc = rig[0], rig[5]
        t0 = clock.now
        bmc.read_power_w()
        assert clock.now - t0 == pytest.approx(IPMB_EXCHANGE_LATENCY_S)

    def test_out_of_band_charges_no_process(self, rig):
        """The whole point of out-of-band: zero host/card CPU cost."""
        card, bmc = rig[1], rig[5]
        ranks = [card.uos_processes.spawn("rank")]
        bmc.read_power_w()
        assert all(p.cpu_seconds == 0.0 for p in ranks)

    def test_unknown_sensor_rejected(self, rig):
        with pytest.raises(IpmbError):
            rig[5].read_sensor("bogus")

    def test_agrees_with_in_band_at_same_instant(self, rig):
        """SMC is the single source: both paths see the same gauge."""
        clock, card, smc, api, _, bmc = rig
        # Freeze a moment by comparing direct SMC reads at equal t.
        t = 5.0
        assert smc.read_sensor("power_w", t) == smc.read_sensor("power_w", t)


class TestIpmbFraming:
    def test_roundtrip(self):
        msg = IpmbMessage(rs_addr=0x30, net_fn=0x04, rq_addr=0x20,
                          rq_seq=7, cmd=0x2D, data=b"\x01")
        assert IpmbMessage.from_bytes(msg.to_bytes()) == msg

    def test_header_checksum_detected(self):
        raw = bytearray(IpmbMessage(0x30, 0x04, 0x20, 1, 0x2D, b"\x00").to_bytes())
        raw[0] ^= 0xFF
        with pytest.raises(ChecksumError):
            IpmbMessage.from_bytes(bytes(raw))

    def test_body_checksum_detected(self):
        raw = bytearray(IpmbMessage(0x30, 0x04, 0x20, 1, 0x2D, b"\x00").to_bytes())
        raw[-2] ^= 0xFF
        with pytest.raises(ChecksumError):
            IpmbMessage.from_bytes(bytes(raw))

    def test_short_frame_rejected(self):
        with pytest.raises(IpmbError):
            IpmbMessage.from_bytes(b"\x01\x02")


class TestPathComparison:
    def test_latency_ordering_matches_paper(self):
        """daemon (0.04 ms) << API (14.2 ms); out-of-band slowest on the
        wire but free of process cost."""
        assert MICRAS_READ_LATENCY_S < SYSMGMT_QUERY_LATENCY_S < IPMB_EXCHANGE_LATENCY_S

    def test_api_vs_daemon_power_gap_is_significant(self, rig):
        """Figure 7: a statistically significant boxplot separation."""
        from scipy import stats

        clock, card, smc, api, daemon, _ = rig
        card.board.schedule(PhiNoopWorkload(duration=400.0))
        # Daemon arm: sample the gauge over [20, 140] with no API session.
        t_daemon = np.arange(20.0, 140.0, 1.0)
        daemon_samples = np.array([smc.read_sensor("power_w", t) for t in t_daemon])
        # API arm: polling session active over [200, 320].
        api.start_polling(interval_s=1.0, t=160.0)
        t_api = np.arange(200.0, 320.0, 1.0)
        api_samples = np.array([smc.read_sensor("power_w", t) for t in t_api])
        assert api_samples.mean() > daemon_samples.mean()
        result = stats.ttest_ind(api_samples, daemon_samples, equal_var=False)
        assert result.pvalue < 0.01
