"""Unit tests for the SCIF model."""

import pytest

from repro.errors import ScifDisconnectedError, ScifError
from repro.sim.clock import VirtualClock
from repro.xeonphi.scif import (
    SCIF_SYSMGMT_PORT,
    ScifNetwork,
    message_latency,
)


@pytest.fixture
def network():
    return ScifNetwork(VirtualClock(), card_count=2)


class TestTopology:
    def test_host_is_node_zero(self, network):
        assert network.valid_node(0)
        assert network.valid_node(2)
        assert not network.valid_node(3)

    def test_needs_a_card(self):
        with pytest.raises(ScifError):
            ScifNetwork(VirtualClock(), card_count=0)


class TestConnections:
    def test_connect_to_listener(self, network):
        network.listen(1, SCIF_SYSMGMT_PORT)
        endpoint = network.connect(0, 1, SCIF_SYSMGMT_PORT)
        assert endpoint.connected

    def test_connect_without_listener_refused(self, network):
        with pytest.raises(ScifError, match="refused"):
            network.connect(0, 1, SCIF_SYSMGMT_PORT)

    def test_double_bind_rejected(self, network):
        network.listen(1, SCIF_SYSMGMT_PORT)
        with pytest.raises(ScifError):
            network.listen(1, SCIF_SYSMGMT_PORT)

    def test_second_connect_rejected(self, network):
        network.listen(1, SCIF_SYSMGMT_PORT)
        network.connect(0, 1, SCIF_SYSMGMT_PORT)
        with pytest.raises(ScifError):
            network.connect(0, 1, SCIF_SYSMGMT_PORT)

    def test_card_to_card_symmetric(self, network):
        """Cards talk to each other with the same API as host-card."""
        network.listen(2, 50)
        endpoint = network.connect(1, 2, 50)
        assert endpoint.connected

    def test_unbind(self, network):
        network.listen(1, 7)
        network.unbind(1, 7)
        with pytest.raises(ScifError):
            network.unbind(1, 7)

    def test_invalid_node_rejected(self, network):
        with pytest.raises(ScifError):
            network.listen(9, 7)


class TestMessaging:
    def test_send_recv_roundtrip(self, network):
        listener = network.listen(1, 10)
        client = network.connect(0, 1, 10)
        client.send(b"ping")
        assert listener.recv() == b"ping"
        listener.send(b"pong")
        assert client.recv() == b"pong"

    def test_messages_fifo(self, network):
        listener = network.listen(1, 10)
        client = network.connect(0, 1, 10)
        client.send(b"1")
        client.send(b"2")
        assert listener.recv() == b"1"
        assert listener.recv() == b"2"

    def test_send_charges_latency(self, network):
        listener = network.listen(1, 10)
        client = network.connect(0, 1, 10)
        t0 = network.clock.now
        client.send(b"x")
        assert network.clock.now - t0 == pytest.approx(message_latency(1))

    def test_send_on_unconnected_rejected(self, network):
        listener = network.listen(1, 10)
        with pytest.raises(ScifDisconnectedError):
            listener.send(b"x")

    def test_recv_empty_rejected(self, network):
        listener = network.listen(1, 10)
        network.connect(0, 1, 10)
        with pytest.raises(ScifError):
            listener.recv()

    def test_close_disconnects_peer(self, network):
        listener = network.listen(1, 10)
        client = network.connect(0, 1, 10)
        client.close()
        with pytest.raises(ScifDisconnectedError):
            listener.send(b"x")


class TestLatencyModel:
    def test_kernel_crossings_dominate_small_messages(self):
        # 2 crossings at 0.9 ms + 0.55 ms bus ~ 2.35 ms.
        assert message_latency(64) == pytest.approx(2.35e-3, rel=0.01)

    def test_payload_adds_wire_time(self):
        assert message_latency(10**9) > message_latency(64) + 0.1
