"""Unit tests for the host-side MICRAS agent (config, RAS log, admin)."""

import pytest

from repro.errors import ConfigError
from repro.testbeds import phi_node
from repro.xeonphi.host_agent import SEVERITIES, HostMicrasAgent


@pytest.fixture
def agent():
    rig = phi_node(seed=71)
    return HostMicrasAgent(rig.scif, rig.card), rig


class TestDeviceConfig:
    def test_defaults(self, agent):
        host, _ = agent
        assert host.get_config("ecc") == "enabled"
        assert host.get_config("governor") == "performance"

    def test_set_roundtrip(self, agent):
        host, _ = agent
        host.set_config("turbo", "enabled")
        assert host.get_config("turbo") == "enabled"

    def test_set_costs_scif_time(self, agent):
        host, rig = agent
        t0 = rig.node.clock.now
        host.set_config("governor", "powersave")
        assert rig.node.clock.now > t0  # one SCIF message charged

    def test_unknown_knob_rejected(self, agent):
        host, _ = agent
        with pytest.raises(ConfigError):
            host.set_config("overclock", "yes")
        with pytest.raises(ConfigError):
            host.get_config("overclock")

    def test_invalid_value_rejected_before_wire(self, agent):
        host, rig = agent
        t0 = rig.node.clock.now
        with pytest.raises(ConfigError):
            host.set_config("ecc", "sometimes")
        assert rig.node.clock.now == t0  # validation precedes the send


class TestRasLog:
    def test_error_logged_with_timestamp(self, agent):
        host, rig = agent
        rig.node.clock.advance(3.0)
        record = host.card_reports_error("corrected", "GDDR", "single-bit flip")
        assert record.severity == "corrected"
        assert record.timestamp >= 3.0
        assert len(host.log()) == 1

    def test_severity_filter(self, agent):
        host, _ = agent
        host.card_reports_error("info", "uOS", "boot complete")
        host.card_reports_error("uncorrected", "L2", "parity")
        host.card_reports_error("fatal", "VR", "overcurrent")
        assert len(host.log("info")) == 3
        assert len(host.log("uncorrected")) == 2
        assert [r.severity for r in host.log("fatal")] == ["fatal"]

    def test_bad_severity_rejected(self, agent):
        host, _ = agent
        with pytest.raises(ConfigError):
            host.card_reports_error("catastrophic", "x", "y")
        with pytest.raises(ConfigError):
            host.log("catastrophic")

    def test_ring_buffer_drops_oldest(self):
        rig = phi_node(seed=72)
        host = HostMicrasAgent(rig.scif, rig.card, max_log_records=3)
        for i in range(5):
            host.card_reports_error("info", "uOS", f"event {i}")
        assert host.dropped_records == 2
        assert [r.message for r in host.log()] == ["event 2", "event 3", "event 4"]

    def test_severity_order_sane(self):
        assert SEVERITIES.index("fatal") > SEVERITIES.index("corrected")


class TestAdmin:
    def test_status_blob(self, agent):
        host, rig = agent
        rig.node.clock.advance(10.0)
        status = host.status()
        assert status["card"] == "Xeon Phi SE10P"
        assert status["uptime_s"] >= 10.0
        assert 100.0 < status["power_w"] < 130.0
        assert status["errors_logged"] == 0

    def test_two_cards_use_distinct_ports(self):
        from repro.sim.clock import VirtualClock
        from repro.sim.rng import RngRegistry
        from repro.xeonphi.card import PhiCard
        from repro.xeonphi.scif import ScifNetwork

        clock = VirtualClock()
        network = ScifNetwork(clock, card_count=2)
        cards = [PhiCard(rng=RngRegistry(i), mic_index=i, clock=clock)
                 for i in range(2)]
        agents = [HostMicrasAgent(network, card) for card in cards]
        agents[0].card_reports_error("info", "uOS", "card0")
        agents[1].card_reports_error("info", "uOS", "card1")
        assert agents[0].log()[0].message == "card0"
        assert agents[1].log()[0].message == "card1"
