"""Unit tests for the Phi card and its SMC."""

import numpy as np
import pytest

from repro.errors import SensorError
from repro.sim.clock import VirtualClock
from repro.sim.rng import RngRegistry
from repro.workloads.gaussian import OffloadGaussianWorkload
from repro.workloads.noop import PhiNoopWorkload
from repro.xeonphi.card import XEON_PHI_SE10P, PhiCard
from repro.xeonphi.smc import SMC_SENSORS, SystemManagementController


@pytest.fixture
def card():
    return PhiCard(XEON_PHI_SE10P, rng=RngRegistry(31), clock=VirtualClock())


@pytest.fixture
def smc(card):
    return SystemManagementController(card)


class TestCardModel:
    def test_paper_specs(self):
        assert XEON_PHI_SE10P.cores == 61
        assert XEON_PHI_SE10P.threads_per_core == 4
        assert XEON_PHI_SE10P.peak_dp_tflops == 1.2

    def test_total_threads(self, card):
        assert card.total_threads == 244

    def test_idle_power(self, card):
        assert card.true_power(1.0) == XEON_PHI_SE10P.idle_w

    def test_noop_power_near_figure7_band(self, card):
        card.board.schedule(PhiNoopWorkload(duration=120.0))
        p = float(card.true_power(60.0))
        assert 110.0 < p < 118.0  # Figure 7's 111-119 W axis

    def test_offload_compute_power(self, card):
        w = OffloadGaussianWorkload(datagen_seconds=100.0)
        card.board.schedule(w)
        t = 100.0 + w.metadata["transfer_seconds"] + 10.0
        p = float(card.true_power(t))
        assert 170.0 < p < 210.0  # ~190 W/card -> 25 kW across 128 cards

    def test_rapl_counter_internal(self, card):
        r1 = card.rapl_counter_raw(1.0)
        r2 = card.rapl_counter_raw(2.0)
        assert r2 > r1

    def test_voltage_droops_under_load(self, card):
        card.board.schedule(OffloadGaussianWorkload(datagen_seconds=10.0))
        t_busy = 10.0 + card.board.scheduled[0].workload.metadata["transfer_seconds"] + 5.0
        assert card.core_rail_voltage(t_busy) < card.core_rail_voltage(1.0)

    def test_exhaust_between_intake_and_die(self, card):
        card.board.schedule(OffloadGaussianWorkload(datagen_seconds=10.0))
        t = 150.0
        intake = card.intake_temperature_c(t)
        exhaust = card.exhaust_temperature_c(t)
        die = float(card.die_temperature_c(t))
        assert intake < exhaust < die


class TestSmc:
    def test_all_sensors_readable(self, smc):
        snapshot = smc.read_all(1.0)
        assert set(snapshot) == set(SMC_SENSORS)
        assert snapshot["power_w"] > 0

    def test_unknown_sensor_rejected(self, smc):
        with pytest.raises(SensorError):
            smc.read_sensor("flux_capacitor", 0.0)

    def test_power_gauge_tracks_truth(self, card, smc):
        card.board.schedule(OffloadGaussianWorkload(datagen_seconds=10.0))
        t = 120.0
        gauge = smc.read_sensor("power_w", t)
        true = float(card.true_power(t))
        assert abs(gauge - true) < 4.0  # within gauge noise

    def test_memory_accounting_consistent(self, smc):
        used = smc.read_sensor("memory_used_b", 0.0)
        free = smc.read_sensor("memory_free_b", 0.0)
        assert used + free == XEON_PHI_SE10P.gddr_bytes

    def test_gddr_cooler_than_die(self, smc):
        assert smc.read_sensor("gddr_temp_c", 5.0) < smc.read_sensor("die_temp_c", 5.0)
