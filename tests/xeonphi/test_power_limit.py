"""Unit tests for the Phi power-capping path (Table I: Get/Set Power
Limit on the Xeon Phi)."""

import pytest

from repro.errors import DeviceError
from repro.testbeds import phi_node
from repro.workloads.gaussian import OffloadGaussianWorkload


class TestPhiPowerLimit:
    def test_default_limit_is_tdp(self):
        rig = phi_node(seed=61)
        assert rig.card.power_limit_w == rig.card.model.tdp_w

    def test_cap_clamps_card_power(self):
        rig = phi_node(seed=62)
        rig.card.board.schedule(OffloadGaussianWorkload(datagen_seconds=10.0),
                                t_start=0.0)
        t_busy = 60.0
        uncapped = float(rig.card.true_power(t_busy))
        rig.smc.set_power_limit(uncapped - 20.0, t=20.0)
        assert float(rig.card.true_power(t_busy)) == pytest.approx(uncapped - 20.0)

    def test_limit_readable_through_all_three_paths(self):
        rig = phi_node(seed=63)
        rig.smc.set_power_limit(250.0, t=0.0)
        assert rig.smc.read_sensor("power_limit_w", 1.0) == 250.0
        assert rig.micras.read_value("power_limit") == pytest.approx(250.0)
        assert rig.bmc.read_sensor("power_limit_w") == pytest.approx(250.0)
        assert rig.sysmgmt.query("power_limit_w") == 250.0

    def test_out_of_range_rejected(self):
        rig = phi_node(seed=64)
        with pytest.raises(DeviceError):
            rig.card.set_power_limit(10.0, t=0.0)
        with pytest.raises(DeviceError):
            rig.card.set_power_limit(1000.0, t=0.0)

    def test_gauge_respects_cap(self):
        rig = phi_node(seed=65)
        rig.card.board.schedule(OffloadGaussianWorkload(datagen_seconds=5.0),
                                t_start=0.0)
        rig.smc.set_power_limit(150.0, t=0.0)
        # Gauge noise is ~0.8 W around the capped truth.
        reading = rig.smc.read_sensor("power_w", 60.0)
        assert reading <= 150.0 + 4.0
