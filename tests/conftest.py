"""Shared fixtures for the test suite."""

import pytest

from repro.sim.clock import VirtualClock
from repro.sim.events import EventQueue
from repro.sim.rng import RngRegistry


@pytest.fixture
def clock() -> VirtualClock:
    return VirtualClock()


@pytest.fixture
def queue() -> EventQueue:
    return EventQueue()


@pytest.fixture
def rng() -> RngRegistry:
    return RngRegistry(root_seed=1234)
