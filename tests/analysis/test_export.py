"""Unit and property tests for trace export."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.export import (
    csv_to_traceset,
    json_to_traceset,
    series_to_csv,
    traceset_to_csv,
    traceset_to_json,
)
from repro.analysis.stats import AnalysisError
from repro.sim.trace import TraceSeries, TraceSet


def traces(values_by_name, dt=0.5):
    ts = TraceSet()
    for name, values in values_by_name.items():
        ts.add(name, TraceSeries(np.arange(len(values)) * dt,
                                 np.asarray(values, float), name, "W"))
    return ts


class TestCsv:
    def test_header_and_rows(self):
        text = traceset_to_csv(traces({"pkg": [1.0, 2.0], "dram": [3.0, 4.0]}))
        lines = text.strip().splitlines()
        assert lines[0] == "time_s,pkg,dram"
        assert lines[1] == "0.000000,1.000000,3.000000"

    def test_roundtrip(self):
        original = traces({"pkg": [1.5, 2.5, 3.5]})
        back = csv_to_traceset(traceset_to_csv(original))
        np.testing.assert_allclose(back["pkg"].values, [1.5, 2.5, 3.5])
        np.testing.assert_allclose(back.times, original.times)

    def test_single_series_helper(self):
        series = TraceSeries(np.array([0.0, 1.0]), np.array([5.0, 6.0]), "board_w")
        assert series_to_csv(series).startswith("time_s,board_w")

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            traceset_to_csv(TraceSet())

    def test_malformed_rejected(self):
        with pytest.raises(AnalysisError):
            csv_to_traceset("wrong,header\n1,2\n")
        with pytest.raises(AnalysisError):
            csv_to_traceset("time_s,x\n")

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1,
                    max_size=40))
    @settings(max_examples=25, deadline=None)
    def test_roundtrip_preserves_values_to_6_decimals(self, values):
        original = traces({"s": values})
        back = csv_to_traceset(traceset_to_csv(original))
        np.testing.assert_allclose(back["s"].values, values, atol=1e-6)


class TestJson:
    def test_roundtrip_exact(self):
        original = traces({"pkg": [1.25, 2.5], "dram": [0.0, -1.0]})
        back = json_to_traceset(traceset_to_json(original))
        assert back.names == ["pkg", "dram"]
        np.testing.assert_array_equal(back["pkg"].values, original["pkg"].values)
        assert back["pkg"].units == "W"

    def test_malformed_rejected(self):
        with pytest.raises(AnalysisError):
            json_to_traceset('{"nope": 1}')

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            traceset_to_json(TraceSet())

    def test_moneq_result_exports(self):
        """End to end: a real MonEQ capture exports and parses back."""
        from repro.core import moneq
        from repro.testbeds import rapl_node

        node, _ = rapl_node(seed=307)
        result = moneq.profile_run(node, duration_s=3.0)
        trace_set = result.traces[next(iter(result.traces))]
        back = json_to_traceset(traceset_to_json(trace_set))
        assert back.names == trace_set.names
        np.testing.assert_array_equal(back["pkg_w"].values,
                                      trace_set["pkg_w"].values)
