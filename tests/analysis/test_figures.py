"""Unit tests for the terminal chart renderers."""

import numpy as np
import pytest

from repro.analysis.figures import ascii_chart, sparkline
from repro.analysis.stats import AnalysisError
from repro.sim.trace import TraceSeries


def series(values, dt=1.0, name="p", units="W"):
    return TraceSeries(np.arange(len(values)) * dt, np.asarray(values, float),
                       name, units)


class TestAsciiChart:
    def test_dimensions(self):
        text = ascii_chart(series(np.linspace(0, 10, 100)), width=40, height=8)
        lines = text.splitlines()
        chart_lines = [l for l in lines if "|" in l]
        assert len(chart_lines) == 8
        assert all(len(l.split("|", 1)[1]) <= 40 for l in chart_lines)

    def test_extremes_labeled(self):
        text = ascii_chart(series([5.0, 25.0, 15.0]))
        assert "25.0" in text and "5.0" in text

    def test_title_and_units(self):
        text = ascii_chart(series([1, 2]), title="Figure X")
        assert text.startswith("Figure X")
        assert "[p: W]" in text

    def test_step_shape_renders_both_levels(self):
        values = np.concatenate([np.full(50, 0.0), np.full(50, 10.0)])
        text = ascii_chart(series(values), width=20, height=6)
        rows = [l.split("|", 1)[1] for l in text.splitlines() if "|" in l]
        top, bottom = rows[0], rows[-1]
        # Left half low, right half high.
        assert "#" in bottom[:10] and "#" in top[10:]

    def test_constant_series_does_not_crash(self):
        text = ascii_chart(series([7.0] * 10))
        assert "#" in text

    def test_spikes_survive_binning(self):
        values = np.full(1000, 10.0)
        values[500] = 100.0  # single-sample spike
        text = ascii_chart(series(values, dt=0.01), width=40, height=8)
        top_row = next(l for l in text.splitlines() if "|" in l)
        assert "#" in top_row

    def test_validation(self):
        with pytest.raises(AnalysisError):
            ascii_chart(series([]))
        with pytest.raises(AnalysisError):
            ascii_chart(series([1, 2]), width=4)


class TestSparkline:
    def test_length_bounded_by_width(self):
        assert len(sparkline(np.arange(1000), width=50)) == 50

    def test_short_input_one_char_per_value(self):
        assert len(sparkline(np.array([1.0, 2.0, 3.0]), width=60)) == 3

    def test_monotone_ramp_monotone_blocks(self):
        line = sparkline(np.linspace(0, 1, 10))
        blocks = " .:-=+*#%@"
        levels = [blocks.index(c) for c in line]
        assert levels == sorted(levels)

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            sparkline(np.array([]))
