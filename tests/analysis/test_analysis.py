"""Unit and property tests for the analysis package."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.boxplot import boxplot_stats
from repro.analysis.compare import idle_visibility, relative_error, series_agreement
from repro.analysis.stats import AnalysisError, summarize, welch_ttest
from repro.analysis.tables import format_table
from repro.sim.trace import TraceSeries


def series(values, dt=1.0):
    return TraceSeries(np.arange(len(values)) * dt, np.asarray(values, float))


class TestSummarize:
    def test_basic(self):
        s = summarize(np.array([1.0, 2.0, 3.0, 4.0]))
        assert s.n == 4
        assert s.mean == 2.5
        assert s.median == 2.5
        assert s.minimum == 1.0 and s.maximum == 4.0

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            summarize(np.array([]))

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=100))
    def test_quartiles_ordered(self, values):
        s = summarize(np.array(values))
        assert s.minimum <= s.q1 <= s.median <= s.q3 <= s.maximum


class TestWelch:
    def test_separated_samples_significant(self):
        rng = np.random.default_rng(0)
        a = rng.normal(10.0, 1.0, 200)
        b = rng.normal(12.0, 1.0, 200)
        result = welch_ttest(b, a)
        assert result.significant()
        assert result.mean_difference == pytest.approx(2.0, abs=0.3)

    def test_identical_distributions_not_significant(self):
        rng = np.random.default_rng(1)
        a = rng.normal(10.0, 1.0, 100)
        b = rng.normal(10.0, 1.0, 100)
        assert not welch_ttest(a, b).significant(alpha=0.001)

    def test_small_samples_rejected(self):
        with pytest.raises(AnalysisError):
            welch_ttest(np.array([1.0]), np.array([1.0, 2.0]))


class TestBoxplot:
    def test_five_numbers(self):
        box = boxplot_stats(np.arange(1.0, 101.0))
        assert box.median == pytest.approx(50.5)
        assert box.q1 < box.median < box.q3
        assert box.whisker_low == 1.0 and box.whisker_high == 100.0
        assert box.outliers == ()

    def test_outliers_split_off(self):
        data = np.concatenate([np.full(50, 10.0), [10.1, 9.9, 40.0]])
        box = boxplot_stats(data)
        assert 40.0 in box.outliers
        assert box.whisker_high < 40.0

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            boxplot_stats(np.array([]))

    @given(st.lists(st.floats(min_value=0, max_value=1e3), min_size=4, max_size=200))
    def test_whiskers_inside_data_range(self, values):
        box = boxplot_stats(np.array(values))
        assert min(values) <= box.whisker_low <= box.whisker_high <= max(values)


class TestIdleVisibility:
    def test_step_trace_visible(self):
        trace = series([100, 100, 100, 800, 820, 810, 100, 100])
        result = idle_visibility(trace)
        assert result.visible
        assert result.idle_level == pytest.approx(100.0)
        assert result.active_level == pytest.approx(810.0, rel=0.02)

    def test_flat_trace_not_visible(self):
        trace = series([500, 501, 499, 500, 502, 498])
        assert not idle_visibility(trace).visible

    def test_short_trace_rejected(self):
        with pytest.raises(AnalysisError):
            idle_visibility(series([1, 2]))


class TestAgreement:
    def test_same_signal_agrees(self):
        a = series([100.0] * 50, dt=0.1)
        b = series([100.0] * 5, dt=1.0)
        result = series_agreement(a, b)
        assert result.relative_difference == 0.0
        assert result.sample_ratio == 10.0

    def test_window_applies(self):
        a = series([1.0] * 10 + [5.0] * 10)
        b = series([5.0] * 20)
        result = series_agreement(a, b, window=(10.0, 19.0))
        assert result.relative_difference == 0.0

    def test_empty_window_rejected(self):
        with pytest.raises(AnalysisError):
            series_agreement(series([1, 2]), series([1, 2]), window=(100.0, 200.0))

    def test_relative_error_zero_reference_rejected(self):
        with pytest.raises(AnalysisError):
            relative_error(1.0, 0.0)


class TestFormatTable:
    def test_renders_aligned(self):
        text = format_table(["a", "bb"], [[1.0, "x"], [2.5, "yy"]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(AnalysisError):
            format_table(["a"], [[1, 2]])

    def test_empty_headers_rejected(self):
        with pytest.raises(AnalysisError):
            format_table([], [])
