"""Unit tests for the ready-made testbeds."""

import pytest

from repro.testbeds import gpu_node, multi_device_node, phi_node, rapl_node, stampede_slice


class TestRaplNode:
    def test_msr_driver_deployed(self):
        node, _ = rapl_node(seed=1)
        assert node.kernel.is_loaded("msr")
        assert node.vfs.exists("/dev/cpu/0/msr")
        # Read-only access already granted (the paper's deployment).
        assert node.vfs.stat_mode("/dev/cpu/0/msr") == 0o444

    def test_workload_scheduled_not_started(self):
        node, workload = rapl_node(seed=1, workload_start=5.0)
        assert node.clock.now == 0.0
        package = node.device("cpu")
        assert package.board.busy_until() == pytest.approx(5.0 + workload.duration)

    def test_seed_determinism(self):
        a, _ = rapl_node(seed=9)
        b, _ = rapl_node(seed=9)
        pkg_a, pkg_b = a.device("cpu"), b.device("cpu")
        from repro.rapl.domains import RaplDomain

        assert pkg_a.energy_raw(RaplDomain.PKG, 3.0) == pkg_b.energy_raw(RaplDomain.PKG, 3.0)


class TestGpuNode:
    def test_nvml_ready(self):
        node, gpu, nvml = gpu_node(seed=2)
        handle = nvml.device_get_handle_by_index(0)
        assert nvml.device_get_name(handle) == "Tesla K20"
        assert gpu is node.device("gpu")


class TestPhiNode:
    def test_all_three_paths_live(self):
        rig = phi_node(seed=3)
        assert rig.sysmgmt.query_power_w() > 0
        assert rig.micras.read_power_w() > 0
        assert rig.bmc.read_power_w() > 0

    def test_shared_clock(self):
        rig = phi_node(seed=3)
        assert rig.card.clock is rig.node.clock


class TestMultiDeviceNode:
    def test_all_kinds_attached(self):
        node, rig = multi_device_node(seed=4)
        assert node.device_kinds() == ["cpu", "gpu", "mic", "micras"]

    def test_phi_rig_operational(self):
        _, rig = multi_device_node(seed=4)
        assert rig.micras.read_power_w() > 0


class TestStampedeSlice:
    def test_shape(self):
        cluster = stampede_slice(cards=4, seed=5)
        assert len(cluster) == 4
        assert len(cluster.devices("mic")) == 4
        assert len(cluster.devices("cpu")) == 8  # two sockets per node

    def test_cards_share_cluster_clock(self):
        cluster = stampede_slice(cards=2, seed=5)
        cards = cluster.devices("mic")
        assert cards[0].clock is cluster.clock is cards[1].clock

    def test_per_node_rng_independent(self):
        cluster = stampede_slice(cards=2, seed=5)
        a, b = cluster.node(0), cluster.node(1)
        assert a.rng.seed("x") != b.rng.seed("x")
