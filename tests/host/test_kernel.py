"""Unit tests for the simulated kernel."""

import pytest

from repro.errors import DriverError
from repro.host.kernel import (
    PERF_RAPL_MIN_VERSION,
    TYPICAL_2015_KERNEL,
    Kernel,
    KernelVersion,
)


class TestKernelVersion:
    def test_ordering(self):
        assert KernelVersion(3, 14) > KernelVersion(3, 13, 99)
        assert KernelVersion(2, 6, 32) < KernelVersion(3, 0)

    def test_parse(self):
        assert KernelVersion.parse("3.14") == KernelVersion(3, 14, 0)
        assert KernelVersion.parse("2.6.32") == KernelVersion(2, 6, 32)

    def test_parse_rejects_garbage(self):
        with pytest.raises(DriverError):
            KernelVersion.parse("3")

    def test_str(self):
        assert str(KernelVersion(3, 14, 1)) == "3.14.1"


class TestKernel:
    def test_default_is_2015_typical_and_lacks_perf_rapl(self):
        k = Kernel()
        assert k.version == TYPICAL_2015_KERNEL
        assert not k.supports_perf_rapl()

    def test_new_kernel_supports_perf_rapl(self):
        assert Kernel("3.14").supports_perf_rapl()
        assert Kernel("4.2.1").supports_perf_rapl()
        assert PERF_RAPL_MIN_VERSION == KernelVersion(3, 14)

    def test_modprobe_loads_registered_module(self):
        k = Kernel()
        k.register_module("msr", lambda: {"name": "msr"})
        module = k.modprobe("msr")
        assert k.is_loaded("msr")
        assert k.module("msr") is module

    def test_modprobe_idempotent(self):
        k = Kernel()
        k.register_module("msr", list)
        assert k.modprobe("msr") is k.modprobe("msr")

    def test_modprobe_unknown_rejected(self):
        with pytest.raises(DriverError):
            Kernel().modprobe("nvidia")

    def test_module_not_loaded_rejected(self):
        k = Kernel()
        k.register_module("msr", list)
        with pytest.raises(DriverError):
            k.module("msr")

    def test_rmmod_calls_unload(self):
        unloaded = []

        class Mod:
            def unload(self):
                unloaded.append(True)

        k = Kernel()
        k.register_module("m", Mod)
        k.modprobe("m")
        k.rmmod("m")
        assert unloaded == [True]
        assert not k.is_loaded("m")

    def test_rmmod_not_loaded_rejected(self):
        with pytest.raises(DriverError):
            Kernel().rmmod("msr")
