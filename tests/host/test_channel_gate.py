"""The mechanism-layer permission gate is the host POSIX layer's —
same check, same error — not a parallel implementation."""

import pytest

from repro.errors import AccessDeniedError
from repro.host.permissions import R_OK, ROOT, USER, check_access, mode_allows
from repro.host.vfs import VirtualFileSystem
from repro.mech import AccessChannel


class TestGateParity:
    def test_channel_denial_is_the_posix_denial(self):
        channel = AccessChannel("msr-chardev", 0.03e-3, permission="root")
        with pytest.raises(AccessDeniedError) as from_channel:
            channel.check_access(USER, path="/dev/cpu/0/msr")
        with pytest.raises(AccessDeniedError) as from_posix:
            check_access(0o600, 0, 0, USER, R_OK, "/dev/cpu/0/msr")
        assert str(from_channel.value) == str(from_posix.value)

    def test_channel_gate_matches_vfs_open(self):
        # A privileged channel's declaration-level gate behaves like a
        # root-owned 0o600 file in the VFS: USER denied, ROOT admitted.
        vfs = VirtualFileSystem()
        vfs.create_file("/gate", mode=0o600, creds=ROOT)
        channel = AccessChannel("gate", 1e-3, permission="root")
        with pytest.raises(AccessDeniedError):
            vfs.open("/gate", "r", USER)
        with pytest.raises(AccessDeniedError):
            channel.check_access(USER)
        vfs.open("/gate", "r", ROOT).close()
        channel.check_access(ROOT)

    def test_gate_modes_follow_mode_allows(self):
        gated = AccessChannel("a", 1e-3, permission="root")
        open_ = AccessChannel("b", 1e-3)
        assert not mode_allows(gated.gate_mode(), 0, 0, USER, R_OK)
        assert mode_allows(open_.gate_mode(), 0, 0, USER, R_OK)
