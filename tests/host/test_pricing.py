"""Unit tests for electricity tariffs."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.host.pricing import Tariff
from repro.units import HOUR


class TestTariff:
    def test_day_night_prices(self):
        tariff = Tariff.day_night(on_peak=0.12, off_peak=0.04)
        assert tariff.price_at(3 * HOUR) == 0.04   # 3 am
        assert tariff.price_at(12 * HOUR) == 0.12  # noon
        assert tariff.price_at(23 * HOUR) == 0.04  # 11 pm

    def test_cycles_daily(self):
        tariff = Tariff.day_night()
        assert tariff.price_at(12 * HOUR) == tariff.price_at(36 * HOUR)

    def test_flat(self):
        tariff = Tariff.flat(0.08)
        t = np.linspace(0, 48 * HOUR, 17)
        assert np.all(tariff.price_at(t) == 0.08)

    def test_cost_of_constant_load(self):
        tariff = Tariff.flat(0.10)
        times = np.linspace(0, HOUR, 61)
        watts = np.full_like(times, 1000.0)  # 1 kW for 1 h = 1 kWh
        assert tariff.cost(times, watts) == pytest.approx(0.10, rel=1e-9)

    def test_cost_cheaper_off_peak(self):
        tariff = Tariff.day_night(on_peak=0.12, off_peak=0.04)
        times_night = np.linspace(0, 2 * HOUR, 121)          # midnight-2am
        times_day = np.linspace(12 * HOUR, 14 * HOUR, 121)   # noon-2pm
        watts = np.full_like(times_night, 1000.0)
        night = tariff.cost(times_night, watts)
        day = tariff.cost(times_day, watts)
        assert day == pytest.approx(3.0 * night, rel=1e-9)

    def test_cost_shape_mismatch_rejected(self):
        with pytest.raises(ConfigError):
            Tariff.flat().cost(np.zeros(3), np.zeros(4))

    def test_cost_short_trace_is_zero(self):
        assert Tariff.flat().cost(np.array([0.0]), np.array([5.0])) == 0.0

    def test_validation(self):
        with pytest.raises(ConfigError):
            Tariff([25.0], [0.1, 0.2])
        with pytest.raises(ConfigError):
            Tariff([1.0], [-0.1, 0.2])
