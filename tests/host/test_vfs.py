"""Unit tests for the virtual filesystem."""

import pytest

from repro.errors import (
    AccessDeniedError,
    FileExistsVfsError,
    FileNotFoundVfsError,
    IsADirectoryVfsError,
    NotADirectoryVfsError,
    VfsError,
)
from repro.host.permissions import ROOT, USER, Credentials
from repro.host.vfs import FileKind, VirtualFileSystem


@pytest.fixture
def vfs():
    return VirtualFileSystem()


class TestDirectories:
    def test_mkdir_and_listdir(self, vfs):
        vfs.mkdir("/a")
        vfs.mkdir("/a/b")
        assert vfs.listdir("/a") == ["b"]
        assert vfs.is_dir("/a/b")

    def test_mkdir_parents(self, vfs):
        vfs.mkdir("/x/y/z", parents=True)
        assert vfs.is_dir("/x/y/z")

    def test_mkdir_missing_parent_rejected(self, vfs):
        with pytest.raises(FileNotFoundVfsError):
            vfs.mkdir("/nope/child")

    def test_mkdir_existing_rejected(self, vfs):
        vfs.mkdir("/a")
        with pytest.raises(FileExistsVfsError):
            vfs.mkdir("/a")

    def test_relative_path_rejected(self, vfs):
        with pytest.raises(VfsError):
            vfs.mkdir("relative/path")


class TestRegularFiles:
    def test_create_read_roundtrip(self, vfs):
        vfs.create_file("/f.txt", b"hello")
        assert vfs.read_text("/f.txt") == "hello"

    def test_write_appends(self, vfs):
        vfs.create_file("/log", b"a")
        with vfs.open("/log", "w") as fh:
            fh.write(b"b")
        assert vfs.read_text("/log") == "ab"

    def test_write_text_replaces(self, vfs):
        vfs.write_text("/f", "one")
        vfs.write_text("/f", "two")
        assert vfs.read_text("/f") == "two"

    def test_exclusive_create_rejected(self, vfs):
        vfs.create_file("/f")
        with pytest.raises(FileExistsVfsError):
            vfs.create_file("/f")

    def test_partial_reads_advance_position(self, vfs):
        vfs.create_file("/f", b"abcdef")
        with vfs.open("/f") as fh:
            assert fh.read(2) == b"ab"
            assert fh.read(2) == b"cd"
            assert fh.read() == b"ef"

    def test_read_closed_handle_rejected(self, vfs):
        vfs.create_file("/f", b"x")
        fh = vfs.open("/f")
        fh.close()
        with pytest.raises(VfsError):
            fh.read()

    def test_open_directory_rejected(self, vfs):
        vfs.mkdir("/d")
        with pytest.raises(IsADirectoryVfsError):
            vfs.open("/d")

    def test_remove(self, vfs):
        vfs.create_file("/f")
        vfs.remove("/f")
        assert not vfs.exists("/f")

    def test_remove_nonempty_dir_rejected(self, vfs):
        vfs.mkdir("/d")
        vfs.create_file("/d/f")
        with pytest.raises(VfsError):
            vfs.remove("/d")

    def test_traverse_through_file_rejected(self, vfs):
        vfs.create_file("/f")
        with pytest.raises(NotADirectoryVfsError):
            vfs.create_file("/f/child")


class TestDynamicFiles:
    @pytest.fixture(autouse=True)
    def _sys_dir(self, vfs):
        vfs.mkdir("/sys")

    def test_provider_called_per_open(self, vfs):
        calls = []

        def provider():
            calls.append(1)
            return f"value {len(calls)}"

        vfs.create_dynamic("/sys/power", provider)
        assert vfs.read_text("/sys/power") == "value 1"
        assert vfs.read_text("/sys/power") == "value 2"

    def test_snapshot_stable_within_open(self, vfs):
        counter = iter(range(100))
        vfs.create_dynamic("/sys/x", lambda: str(next(counter)))
        with vfs.open("/sys/x") as fh:
            first = fh.read(1)
            rest = fh.read()
        assert (first + rest).decode() == "0"

    def test_dynamic_not_writable(self, vfs):
        vfs.create_dynamic("/sys/x", lambda: "1")
        with pytest.raises(VfsError):
            with vfs.open("/sys/x", "w", ROOT) as fh:
                fh.write(b"no")

    def test_kind(self, vfs):
        vfs.create_dynamic("/sys/x", lambda: "1")
        assert vfs.kind("/sys/x") is FileKind.DYNAMIC


class TestCharDevices:
    class EchoDev:
        def pread(self, offset, size, creds):
            return bytes([offset % 256] * size)

        def pwrite(self, offset, data, creds):
            return len(data)

    def test_pread_dispatches_to_device(self, vfs):
        vfs.mkdir("/dev")
        vfs.create_chardev("/dev/echo", self.EchoDev())
        with vfs.open("/dev/echo", "r", ROOT) as fh:
            assert fh.pread(7, 3) == b"\x07\x07\x07"

    def test_sequential_read_rejected_on_chardev(self, vfs):
        vfs.mkdir("/dev")
        vfs.create_chardev("/dev/echo", self.EchoDev())
        with vfs.open("/dev/echo", "r", ROOT) as fh:
            with pytest.raises(VfsError):
                fh.read()

    def test_pread_on_regular_file_rejected(self, vfs):
        vfs.create_file("/f", b"x")
        with vfs.open("/f") as fh:
            with pytest.raises(VfsError):
                fh.pread(0, 1)


class TestPermissions:
    def test_root_only_chardev_blocks_user(self, vfs):
        vfs.mkdir("/dev")
        vfs.create_chardev("/dev/msr0", TestCharDevices.EchoDev(), mode=0o600)
        with pytest.raises(AccessDeniedError):
            vfs.open("/dev/msr0", "r", USER)

    def test_chmod_opens_access(self, vfs):
        vfs.mkdir("/dev")
        vfs.create_chardev("/dev/msr0", TestCharDevices.EchoDev(), mode=0o600)
        vfs.chmod("/dev/msr0", 0o444)
        fh = vfs.open("/dev/msr0", "r", USER)
        assert fh.pread(0, 1) == b"\x00"

    def test_chmod_by_non_owner_rejected(self, vfs):
        vfs.create_file("/f", mode=0o600, creds=ROOT)
        with pytest.raises(VfsError):
            vfs.chmod("/f", 0o777, USER)

    def test_chown_root_only(self, vfs):
        vfs.create_file("/f")
        with pytest.raises(VfsError):
            vfs.chown("/f", 1000, 1000, USER)
        vfs.chown("/f", 1000, 1000, ROOT)
        vfs.chmod("/f", 0o600, Credentials(uid=1000, gid=1000))  # now owner

    def test_owner_write_only_file(self, vfs):
        vfs.create_file("/u", mode=0o200, creds=USER)
        with pytest.raises(AccessDeniedError):
            vfs.open("/u", "r", USER)
        with vfs.open("/u", "w", USER) as fh:
            fh.write(b"ok")


class TestWalk:
    def test_walk_lists_files_only(self, vfs):
        vfs.mkdir("/a/b", parents=True)
        vfs.create_file("/a/f1")
        vfs.create_file("/a/b/f2")
        assert vfs.walk("/") == ["/a/b/f2", "/a/f1"] or vfs.walk("/") == ["/a/f1", "/a/b/f2"]
        assert set(vfs.walk("/a")) == {"/a/f1", "/a/b/f2"}
