"""Unit tests for POSIX-style permission checks."""

import pytest

from repro.errors import AccessDeniedError
from repro.host.permissions import (
    R_OK,
    ROOT,
    USER,
    W_OK,
    X_OK,
    Credentials,
    check_access,
    mode_allows,
)


def test_root_passes_everything():
    assert mode_allows(0o000, 1000, 1000, ROOT, R_OK | W_OK | X_OK)


def test_owner_triplet_used_for_owner():
    creds = Credentials(uid=1000, gid=1000)
    assert mode_allows(0o400, 1000, 1000, creds, R_OK)
    assert not mode_allows(0o400, 1000, 1000, creds, W_OK)


def test_group_triplet_used_for_group_member():
    creds = Credentials(uid=2000, gid=1000)
    assert mode_allows(0o040, 1000, 1000, creds, R_OK)
    assert not mode_allows(0o004, 1000, 1000, creds, R_OK)


def test_other_triplet_used_for_stranger():
    creds = Credentials(uid=2000, gid=2000)
    assert mode_allows(0o004, 1000, 1000, creds, R_OK)
    assert not mode_allows(0o440, 1000, 1000, creds, R_OK)


def test_all_requested_bits_must_be_present():
    creds = Credentials(uid=1000, gid=1000)
    assert not mode_allows(0o400, 1000, 1000, creds, R_OK | W_OK)
    assert mode_allows(0o600, 1000, 1000, creds, R_OK | W_OK)


def test_check_access_raises_with_context():
    with pytest.raises(AccessDeniedError, match="read"):
        check_access(0o600, 0, 0, USER, R_OK, "/dev/cpu/0/msr")


def test_msr_scenario_root_only_then_chmod():
    """The paper's RAPL gate: msr chardev is 0600 root-owned; a non-root
    reader fails until it is given read-only access."""
    assert not mode_allows(0o600, 0, 0, USER, R_OK)
    assert mode_allows(0o444, 0, 0, USER, R_OK)  # after chmod a+r
    assert not mode_allows(0o444, 0, 0, USER, W_OK)  # still read-only


def test_is_root_property():
    assert ROOT.is_root
    assert not USER.is_root
