"""Unit tests for processes, nodes and clusters."""

import pytest

from repro.errors import ConfigError, DeviceNotFoundError
from repro.host.cluster import Cluster
from repro.host.node import Node, total_device_count
from repro.host.permissions import ROOT
from repro.host.process import ProcessError, ProcessTable
from repro.sim.rng import RngRegistry


class TestProcessTable:
    def test_spawn_assigns_unique_pids(self):
        table = ProcessTable()
        p1, p2 = table.spawn("a"), table.spawn("b")
        assert p1.pid != p2.pid

    def test_charge_accumulates(self):
        proc = ProcessTable().spawn("app")
        proc.charge(0.5)
        proc.charge(0.25)
        assert proc.cpu_seconds == 0.75

    def test_charge_negative_rejected(self):
        proc = ProcessTable().spawn("app")
        with pytest.raises(ProcessError):
            proc.charge(-1.0)

    def test_charge_after_exit_rejected(self):
        table = ProcessTable()
        proc = table.spawn("app")
        table.exit(proc.pid)
        with pytest.raises(ProcessError):
            proc.charge(0.1)

    def test_double_exit_rejected(self):
        table = ProcessTable()
        proc = table.spawn("app")
        table.exit(proc.pid)
        with pytest.raises(ProcessError):
            table.exit(proc.pid)

    def test_living_and_by_name(self):
        table = ProcessTable()
        a = table.spawn("micras")
        table.spawn("micras")
        table.exit(a.pid)
        assert len(table.living()) == 1
        assert len(table.by_name("micras")) == 2

    def test_unknown_pid_rejected(self):
        with pytest.raises(ProcessError):
            ProcessTable().get(99)


class TestNode:
    def test_standard_directories_exist(self):
        node = Node("n0")
        for d in ("/dev", "/sys", "/proc", "/tmp"):
            assert node.vfs.is_dir(d)

    def test_attach_and_lookup_devices(self):
        node = Node("n0")
        idx0 = node.attach("gpu", "K20")
        idx1 = node.attach("gpu", "K40")
        assert (idx0, idx1) == (0, 1)
        assert node.device("gpu", 1) == "K40"
        assert node.devices("gpu") == ["K20", "K40"]
        assert node.device_kinds() == ["gpu"]

    def test_missing_device_raises(self):
        node = Node("n0")
        with pytest.raises(DeviceNotFoundError):
            node.device("mic", 0)

    def test_spawn_defaults_to_user(self):
        proc = Node("n0").spawn("app")
        assert not proc.creds.is_root

    def test_run_until_advances_clock(self):
        node = Node("n0")
        node.run_until(5.0)
        assert node.clock.now == 5.0


class TestCluster:
    @staticmethod
    def factory(hostname, rng, clock):
        node = Node(hostname, rng=rng, clock=clock)
        node.attach("mic", f"phi-of-{hostname}")
        return node

    def test_populate_creates_named_nodes(self):
        cluster = Cluster("stampede")
        cluster.populate(3, self.factory)
        assert len(cluster) == 3
        assert cluster.node(0).hostname == "stampede-0000"

    def test_nodes_share_clock(self):
        cluster = Cluster("c")
        cluster.populate(2, self.factory)
        assert cluster.node(0).clock is cluster.node(1).clock

    def test_rng_namespaces_differ_per_node(self):
        cluster = Cluster("c")
        cluster.populate(2, self.factory)
        assert cluster.node(0).rng.seed("x") != cluster.node(1).rng.seed("x")

    def test_populate_is_stable_under_growth(self):
        """Adding more nodes must not change existing nodes' RNG seeds."""
        c1 = Cluster("c", rng=RngRegistry(5))
        c1.populate(2, self.factory)
        seed_before = c1.node(0).rng.seed("sensor")
        c2 = Cluster("c", rng=RngRegistry(5))
        c2.populate(4, self.factory)
        assert c2.node(0).rng.seed("sensor") == seed_before

    def test_devices_across_cluster(self):
        cluster = Cluster("c")
        cluster.populate(4, self.factory)
        assert len(cluster.devices("mic")) == 4
        assert total_device_count(cluster, "mic") == 4

    def test_zero_count_rejected(self):
        with pytest.raises(ConfigError):
            Cluster("c").populate(0, self.factory)

    def test_run_until(self):
        cluster = Cluster("c")
        cluster.populate(2, self.factory)
        cluster.run_until(3.0)
        assert cluster.clock.now == 3.0
