"""Unit tests for physical units and conversions."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import units


class TestTime:
    def test_ms_us(self):
        assert units.ms(560.0) == pytest.approx(0.560)
        assert units.us(30.0) == pytest.approx(30e-6)
        assert units.to_ms(0.0011) == pytest.approx(1.1)

    def test_constants(self):
        assert units.MINUTE == 60.0
        assert units.HOUR == 3600.0


class TestPower:
    def test_rapl_units(self):
        assert units.RAPL_ENERGY_UNIT_J == 2.0 ** -16
        assert units.RAPL_POWER_UNIT_W == 0.125
        assert units.RAPL_TIME_UNIT_S == pytest.approx(976.5625e-6)

    def test_milliwatts(self):
        assert units.milliwatts_to_watts(55_000) == 55.0
        assert units.watts_to_milliwatts(55.4321) == 55432

    @given(st.floats(min_value=0.0, max_value=1e5))
    def test_milliwatt_roundtrip_within_half_mw(self, watts):
        back = units.milliwatts_to_watts(units.watts_to_milliwatts(watts))
        # Ties (x.5 mW) round to a full half-mW of error; allow a float
        # epsilon on top so the boundary case itself passes.
        assert back == pytest.approx(watts, abs=5.0001e-4)

    def test_energy(self):
        assert units.joules(100.0, 10.0) == 1000.0
        assert units.kwh(3.6e6) == 1.0


class TestElectrical:
    def test_power_from_vi(self):
        assert units.power_from_vi(0.9, 100.0) == 90.0

    def test_current_from_power(self):
        assert units.current_from_power(90.0, 0.9) == pytest.approx(100.0)

    def test_zero_voltage_rejected(self):
        with pytest.raises(ValueError):
            units.current_from_power(1.0, 0.0)

    @given(st.floats(min_value=0.1, max_value=1e3),
           st.floats(min_value=0.1, max_value=1e3))
    def test_vi_roundtrip(self, volts, watts):
        current = units.current_from_power(watts, volts)
        assert units.power_from_vi(volts, current) == pytest.approx(watts)


class TestTemperature:
    def test_celsius_kelvin_roundtrip(self):
        assert units.k_to_c(units.c_to_k(36.6)) == pytest.approx(36.6)

    def test_absolute_zero(self):
        assert units.c_to_k(-273.15) == 0.0


class TestFormatSi:
    def test_milli(self):
        assert units.format_si(0.0011, "s") == "1.1 ms"

    def test_kilo_mega(self):
        assert units.format_si(25_000.0, "W") == "25 kW"
        assert units.format_si(2.5e6, "W") == "2.5 MW"

    def test_unit_range(self):
        assert units.format_si(42.0, "W") == "42 W"

    def test_zero_and_nonfinite(self):
        assert units.format_si(0.0, "J") == "0 J"
        assert "inf" in units.format_si(math.inf, "J")

    def test_tiny_values_use_smallest_prefix(self):
        assert units.format_si(5e-10, "s").endswith("ns")
