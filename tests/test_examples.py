"""Smoke tests: every example script runs to completion.

Examples are the public face of the library; these tests keep them from
rotting.  Each is executed in-process via importlib so failures carry
real tracebacks.
"""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"

#: (filename, main() argument overrides)
EXAMPLES = [
    ("quickstart.py", {}),
    ("bgq_mmps.py", {}),
    ("multi_device_profiling.py", {}),
    ("stampede_phi_gaussian.py", {"cards": 4}),
    ("power_aware_scheduling.py", {}),
    ("spmd_traced_profiling.py", {}),
    ("listing1_spmd.py", {}),
    ("vendor_survey.py", {}),
]


def load(filename: str):
    path = EXAMPLES_DIR / filename
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize("filename,kwargs", EXAMPLES,
                         ids=[name for name, _ in EXAMPLES])
def test_example_runs(filename, kwargs, capsys):
    module = load(filename)
    module.main(**kwargs)
    out = capsys.readouterr().out
    assert len(out) > 50  # produced a real report, not a stub


def test_all_examples_are_covered():
    on_disk = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    covered = {name for name, _ in EXAMPLES}
    assert on_disk == covered, f"untested examples: {on_disk - covered}"
