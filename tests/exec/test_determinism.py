"""The engine's core contract: report bytes never depend on how it ran.

Worker count, cache state, and completion order are execution details;
the rendered markdown and the per-task payload digests must be
identical across all of them.  These run the full 13-experiment report
a few times — the cold passes cost ~half a second each.
"""

import pytest

from repro.exec.engine import Engine
from repro.experiments import report


def _digests(engine):
    return dict(engine.stats.digests)


class TestWorkerCountIndependence:
    def test_report_bytes_jobs1_vs_jobs8(self):
        md_serial = report.generate_markdown(jobs=1, cache=False)
        md_parallel = report.generate_markdown(jobs=8, cache=False)
        assert md_serial == md_parallel

    def test_payload_digests_jobs1_vs_jobs4(self):
        serial = Engine(jobs=1, cache=False)
        serial.run()
        pooled = Engine(jobs=4, cache=False)
        pooled.run()
        assert _digests(serial) == _digests(pooled)
        assert len(_digests(serial)) == 15  # 12 single-part + 3 table3 shards


class TestCacheStateIndependence:
    def test_warm_cache_serves_identical_bytes(self, tmp_path):
        root = tmp_path / "cache"
        md_cold = report.generate_markdown(jobs=2, cache=True, cache_root=root)
        md_warm = report.generate_markdown(jobs=2, cache=True, cache_root=root)
        assert md_cold == md_warm

        # And the warm pass really was served from the cache.
        engine = Engine(jobs=1, cache=True, cache_root=root)
        engine.run()
        assert engine.stats.cache_misses == 0
        assert engine.stats.cache_hits == 15
        assert engine.stats.executed == 0

    def test_cached_digests_match_fresh(self, tmp_path):
        root = tmp_path / "cache"
        cold = Engine(jobs=1, cache=True, cache_root=root)
        cold.run()
        warm = Engine(jobs=1, cache=True, cache_root=root)
        warm.run()
        assert _digests(cold) == _digests(warm)

    def test_disabled_cache_writes_nothing(self, tmp_path):
        root = tmp_path / "cache"
        engine = Engine(jobs=1, cache=False, cache_root=root)
        engine.run(["table1"])
        assert not root.exists()


class TestFailureSurface:
    def test_unknown_experiment_names_registry(self):
        from repro.errors import ExperimentExecutionError

        with pytest.raises(ExperimentExecutionError, match="fig99"):
            Engine(jobs=1, cache=False).run(["fig99"])

    def test_jobs_validated(self):
        from repro.errors import ExperimentExecutionError

        with pytest.raises(ExperimentExecutionError, match="jobs"):
            Engine(jobs=0)
