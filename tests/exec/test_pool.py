"""The worker pool's failure semantics.

Soft failures (a task raising) are deterministic and fail immediately;
hard failures (worker death, per-task timeout) get the worker replaced
and the task retried exactly once.  Crashes are simulated with
``os._exit`` (no Python cleanup, like a segfault) and first-attempt
markers on disk so the retry can succeed.
"""

import os
import time

import pytest

from repro.exec.pool import ExecPoolError, PoolTask, WorkerPool


def _square(payload):
    return payload * payload


def _fail_on_odd(payload):
    if payload % 2:
        raise ValueError(f"odd payload {payload}")
    return payload


def _crash_once(marker_path):
    """Die hard on the first attempt, succeed on the retry."""
    if not os.path.exists(marker_path):
        with open(marker_path, "w", encoding="utf-8") as fh:
            fh.write("attempt 1\n")
        os._exit(17)
    return "recovered"


def _crash_always(_payload):
    os._exit(17)


def _hang_once(marker_path):
    """Overrun the task budget on the first attempt only."""
    if not os.path.exists(marker_path):
        with open(marker_path, "w", encoding="utf-8") as fh:
            fh.write("attempt 1\n")
        time.sleep(60.0)
    return "timely"


class TestHappyPath:
    def test_all_results_keyed_by_task_id(self):
        pool = WorkerPool(_square, jobs=3)
        tasks = [PoolTask(f"t{i}", i) for i in range(8)]
        outcomes = pool.run(tasks)
        assert sorted(outcomes) == sorted(t.task_id for t in tasks)
        for i in range(8):
            assert outcomes[f"t{i}"].ok
            assert outcomes[f"t{i}"].value == i * i
            assert outcomes[f"t{i}"].attempts == 1

    def test_single_job_runs_inline(self):
        outcomes = WorkerPool(_square, jobs=1).run([PoolTask("a", 3)])
        assert outcomes["a"].value == 9

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ExecPoolError, match="duplicate"):
            WorkerPool(_square, jobs=2).run([PoolTask("a", 1), PoolTask("a", 2)])

    def test_jobs_validated(self):
        with pytest.raises(ExecPoolError, match="jobs"):
            WorkerPool(_square, jobs=0)


class TestSoftFailure:
    def test_task_exception_fails_immediately(self):
        """A raising task is deterministic: no retry, full error text,
        and the other tasks of the batch still complete."""
        pool = WorkerPool(_fail_on_odd, jobs=2)
        outcomes = pool.run([PoolTask("even", 2), PoolTask("odd", 3)])
        assert outcomes["even"].ok and outcomes["even"].value == 2
        assert not outcomes["odd"].ok
        assert "ValueError" in outcomes["odd"].error
        assert outcomes["odd"].attempts == 1


class TestHardFailure:
    def test_crashed_worker_replaced_and_task_retried(self, tmp_path):
        marker = tmp_path / "crash.marker"
        pool = WorkerPool(_crash_once, jobs=2)
        outcomes = pool.run([PoolTask("crasher", str(marker)),
                             PoolTask("bystander", str(tmp_path / "other"))])
        assert outcomes["crasher"].ok
        assert outcomes["crasher"].value == "recovered"
        assert outcomes["crasher"].attempts == 2
        assert marker.exists()

    def test_crash_after_retry_is_reported_not_raised(self, tmp_path):
        pool = WorkerPool(_crash_always, jobs=2, retries=1)
        outcomes = pool.run([PoolTask("doomed", None), PoolTask("fine", None)])
        assert not outcomes["doomed"].ok
        assert "crash" in outcomes["doomed"].error
        assert outcomes["doomed"].attempts == 2
        # _crash_always kills the bystander's worker too; both fail,
        # but the pool itself survives and reports every task.
        assert sorted(outcomes) == ["doomed", "fine"]

    def test_timed_out_worker_killed_and_task_retried(self, tmp_path):
        marker = tmp_path / "hang.marker"
        pool = WorkerPool(_hang_once, jobs=2, timeout_s=0.5)
        outcomes = pool.run([PoolTask("hanger", str(marker)),
                             PoolTask("other", str(tmp_path / "o"))])
        assert outcomes["hanger"].ok
        assert outcomes["hanger"].value == "timely"
        assert outcomes["hanger"].attempts == 2


@pytest.mark.tier1
def test_smoke_experiment_through_pool():
    """Tier-1 smoke: a real (tiny) registered experiment through the
    forked pool, rendered to the same block the serial path produces."""
    from repro.exec.engine import Engine

    serial = Engine(jobs=1, cache=False).run(["table1", "fig6"])
    pooled = Engine(jobs=2, cache=False).run(["table1", "fig6"])
    assert pooled == serial
    assert pooled["table1"].rows
