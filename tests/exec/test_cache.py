"""The content-addressed result cache: addressing, invalidation,
corruption recovery.

Invalidation in this design is purely by address — editing a declared
source module, changing a config field, or changing the seed moves the
cache key, so the stale entry is simply never looked up again.  These
tests pin that, plus the self-verifying entry format: a corrupted entry
must be detected on read, evicted, and reported as a miss.
"""

import dataclasses
import sys

import pytest

from repro.exec.cache import CACHE_FORMAT, ResultCache, cache_key, payload_digest
from repro.exec.fingerprint import source_fingerprint
from repro.exec.spec import ExperimentSpec

PAYLOAD = {"rows": [["a", "b", "c"]], "exp_id": "x", "title": "t",
           "bench": "none", "notes": ""}


@dataclasses.dataclass(frozen=True)
class FakeConfig:
    interval_s: float = 0.25
    samples: int = 100


def spec(config=FakeConfig(), seed=7, sources=()):
    return ExperimentSpec(
        exp_id="fake", title="Fake", module="json", config=config,
        seed=seed, sources=sources)


@pytest.fixture
def cache(tmp_path):
    return ResultCache(tmp_path / "cache")


class TestAddressing:
    def test_same_inputs_same_key(self):
        assert cache_key(spec(), "all", "fp") == cache_key(spec(), "all", "fp")

    def test_config_field_change_moves_key(self):
        a = cache_key(spec(FakeConfig(interval_s=0.25)), "all", "fp")
        b = cache_key(spec(FakeConfig(interval_s=0.5)), "all", "fp")
        assert a != b

    def test_seed_part_and_fingerprint_move_key(self):
        base = cache_key(spec(), "all", "fp")
        assert cache_key(spec(seed=8), "all", "fp") != base
        assert cache_key(spec(), "512", "fp") != base
        assert cache_key(spec(), "all", "fp2") != base

    def test_source_edit_moves_key(self, tmp_path, monkeypatch):
        """Touching a declared source module changes its fingerprint and
        with it the cache address — the on-disk entry goes stale by
        never being addressed again."""
        module = tmp_path / "fake_exp_source.py"
        module.write_text("VALUE = 1\n")
        monkeypatch.syspath_prepend(str(tmp_path))
        s = spec(sources=("fake_exp_source",))
        fp1 = source_fingerprint(s.all_sources())
        key1 = cache_key(s, "all", fp1)

        module.write_text("VALUE = 2\n")
        fp2 = source_fingerprint(s.all_sources())
        key2 = cache_key(s, "all", fp2)
        assert fp1 != fp2
        assert key1 != key2
        sys.modules.pop("fake_exp_source", None)


class TestRoundtrip:
    def test_store_then_load(self, cache):
        key = cache_key(spec(), "all", "fp")
        assert cache.load(key) is None
        cache.store(key, "fake", "all", PAYLOAD)
        assert cache.load(key) == PAYLOAD

    def test_stats_and_clear(self, cache):
        for part in ("a", "b"):
            cache.store(cache_key(spec(), part, "fp"), "fake", part, PAYLOAD)
        stats = cache.stats()
        assert stats.entries == 2
        assert stats.experiments == {"fake": 2}
        assert stats.total_bytes > 0
        assert cache.clear() == 2
        assert cache.stats().entries == 0


class TestCorruption:
    def _entry_path(self, cache, key):
        cache.store(key, "fake", "all", PAYLOAD)
        path = cache._path(key)
        assert path.is_file()
        return path

    def test_truncated_entry_evicted_and_recomputed(self, cache):
        key = cache_key(spec(), "all", "fp")
        path = self._entry_path(cache, key)
        path.write_text(path.read_text()[: 40])  # simulate a torn write
        assert cache.load(key) is None
        assert not path.exists()  # evicted, not served
        # The engine would recompute and re-store; the slot works again.
        cache.store(key, "fake", "all", PAYLOAD)
        assert cache.load(key) == PAYLOAD

    def test_payload_tamper_detected(self, cache):
        import json

        key = cache_key(spec(), "all", "fp")
        path = self._entry_path(cache, key)
        entry = json.loads(path.read_text())
        entry["payload"]["rows"] = [["tampered", "x", "y"]]
        path.write_text(json.dumps(entry))
        assert cache.load(key) is None
        assert not path.exists()

    def test_wrong_format_version_evicted(self, cache):
        import json

        key = cache_key(spec(), "all", "fp")
        path = self._entry_path(cache, key)
        entry = json.loads(path.read_text())
        entry["format"] = CACHE_FORMAT + 1
        path.write_text(json.dumps(entry))
        assert cache.load(key) is None

    def test_payload_digest_is_order_insensitive(self):
        assert payload_digest({"a": 1, "b": 2}) == payload_digest(
            {"b": 2, "a": 1})
