"""Cross-tool validation: independent mechanisms agree on physics.

The strongest internal consistency check available to the reproduction:
the PowerPack-style wall meter (which clamps the AC feed and knows
nothing about RAPL), the RAPL counters, PAPI's RAPL component and
MonEQ's RAPL backend must all tell one coherent story about the same
node, because they all observe the same underlying truth signals.
"""

import numpy as np
import pytest

from repro.baselines.papi import PapiLibrary
from repro.baselines.powerpack import WattsUpMeter
from repro.core import moneq
from repro.core.moneq.config import MoneqConfig
from repro.rapl.domains import RaplDomain
from repro.testbeds import rapl_node
from repro.workloads.gaussian import GaussianEliminationWorkload


@pytest.fixture(scope="module")
def profiled_node():
    node, workload = rapl_node(
        seed=301, workload=GaussianEliminationWorkload(n=12_000),
        workload_start=5.0,
    )
    meter = WattsUpMeter(node, seed=7)
    papi = PapiLibrary(node)
    es = papi.create_eventset(["rapl:::PACKAGE_ENERGY:PKG",
                               "rapl:::PACKAGE_ENERGY:DRAM"])
    papi.start(es)
    result = moneq.profile_run(node, duration_s=60.0,
                               config=MoneqConfig(polling_interval_s=0.1))
    papi_values = papi.stop(es)
    return node, workload, meter, result, papi_values


class TestCrossToolAgreement:
    def test_moneq_mean_matches_true_counter_energy(self, profiled_node):
        node, _, _, result, _ = profiled_node
        package = node.device("cpu")
        trace = result.trace("pkg_w").between(1.0, 59.0)
        counter_joules = package.energy_joules_between(RaplDomain.PKG, 1.0, 59.0)
        moneq_joules = trace.energy()
        assert moneq_joules == pytest.approx(counter_joules, rel=0.02)

    def test_papi_energy_matches_moneq_energy(self, profiled_node):
        node, _, _, result, papi_values = profiled_node
        papi_joules = papi_values["rapl:::PACKAGE_ENERGY:PKG"] / 1e9
        trace = result.trace("pkg_w")
        # PAPI window spans the whole session; compare at 5% tolerance
        # (trace loses the first sample and edge partial intervals).
        assert papi_joules == pytest.approx(trace.energy(), rel=0.07)

    def test_wall_meter_sits_above_dc_rails_by_psu_loss(self, profiled_node):
        node, _, meter, result, _ = profiled_node
        package = node.device("cpu")
        t = 30.0
        dc = (float(package.true_power(RaplDomain.PKG, t))
              + float(package.true_power(RaplDomain.DRAM, t))
              + meter.base_node_w)
        wall = meter.read(t)
        implied_efficiency = dc / wall
        assert 0.80 < implied_efficiency < 0.95  # PSU loss, nothing else

    def test_wall_meter_step_tracks_rapl_step(self, profiled_node):
        node, workload, meter, result, _ = profiled_node
        trace = result.trace("pkg_w")
        idle_rapl = trace.between(1.0, 4.0).mean()
        busy_rapl = trace.between(10.0, 40.0).mean()
        idle_wall = np.mean([meter.read(t) for t in (1.0, 2.0, 3.0)])
        busy_wall = np.mean([meter.read(t) for t in (15.0, 25.0, 35.0)])
        rapl_step = busy_rapl - idle_rapl
        wall_step = busy_wall - idle_wall
        # Same step, scaled by the PSU efficiency (DRAM adds a little).
        assert wall_step == pytest.approx(rapl_step / meter.psu_efficiency,
                                          rel=0.20)
