"""Unit tests for the extended NVML queries (utilization, PCIe
throughput)."""

import pytest

from repro.testbeds import gpu_node
from repro.workloads.vectoradd import VectorAddWorkload


@pytest.fixture
def loaded():
    node, gpu, nvml = gpu_node(seed=66)
    gpu.board.schedule(VectorAddWorkload(), t_start=0.0)
    handle = nvml.device_get_handle_by_index(0)
    return node, gpu, nvml, handle


class TestUtilizationRates:
    def test_idle_before_work(self, loaded):
        node, gpu, nvml, handle = loaded
        gpu_pct, mem_pct = nvml.device_get_utilization_rates(handle)
        assert gpu_pct < 15 and mem_pct == 0  # datagen phase

    def test_busy_during_compute(self, loaded):
        node, gpu, nvml, handle = loaded
        node.clock.advance_to(50.0)
        gpu_pct, mem_pct = nvml.device_get_utilization_rates(handle)
        assert gpu_pct > 70
        assert mem_pct == 90

    def test_charges_query_cost(self, loaded):
        node, _, nvml, handle = loaded
        t0 = node.clock.now
        nvml.device_get_utilization_rates(handle)
        assert node.clock.now - t0 == pytest.approx(nvml.query_latency_s)


class TestPcieThroughput:
    def test_transfer_phase_saturates_link(self, loaded):
        node, gpu, nvml, handle = loaded
        node.clock.advance_to(11.5)  # inside the 10-13 s H2D transfer
        kbps = nvml.device_get_pcie_throughput(handle)
        assert kbps > 5_000_000  # ~5.6 GB/s of a 6 GB/s link

    def test_compute_phase_near_quiet(self, loaded):
        node, gpu, nvml, handle = loaded
        node.clock.advance_to(50.0)
        kbps = nvml.device_get_pcie_throughput(handle)
        assert kbps < 500_000
