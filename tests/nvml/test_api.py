"""Unit tests for the NVML API surface."""

import pytest

from repro.host.node import Node
from repro.host.permissions import ROOT
from repro.nvml.api import (
    NVML_ERROR_INVALID_ARGUMENT,
    NVML_ERROR_NOT_FOUND,
    NVML_ERROR_NOT_SUPPORTED,
    NVML_ERROR_UNINITIALIZED,
    NvmlError,
    NvmlLibrary,
)
from repro.nvml.device import FERMI_M2090, KEPLER_K20, GpuDevice
from repro.sim.rng import RngRegistry
from repro.workloads.vectoradd import VectorAddWorkload


@pytest.fixture
def node():
    n = Node("gpu-host")
    n.attach("gpu", GpuDevice(KEPLER_K20, rng=RngRegistry(5), index=0))
    n.attach("gpu", GpuDevice(FERMI_M2090, rng=RngRegistry(6), index=1))
    return n


@pytest.fixture
def nvml(node):
    library = NvmlLibrary(node)
    library.init()
    return library


class TestLifecycle:
    def test_queries_require_init(self, node):
        library = NvmlLibrary(node)
        with pytest.raises(NvmlError) as exc:
            library.device_get_count()
        assert exc.value.code == NVML_ERROR_UNINITIALIZED

    def test_shutdown_invalidates(self, nvml):
        nvml.shutdown()
        with pytest.raises(NvmlError):
            nvml.device_get_count()

    def test_handles_stale_after_reinit(self, nvml):
        handle = nvml.device_get_handle_by_index(0)
        nvml.shutdown()
        nvml.init()
        with pytest.raises(NvmlError):
            nvml.device_get_power_usage(handle)


class TestEnumeration:
    def test_count(self, nvml):
        assert nvml.device_get_count() == 2

    def test_bad_index(self, nvml):
        with pytest.raises(NvmlError) as exc:
            nvml.device_get_handle_by_index(7)
        assert exc.value.code == NVML_ERROR_NOT_FOUND

    def test_name(self, nvml):
        handle = nvml.device_get_handle_by_index(0)
        assert nvml.device_get_name(handle) == "Tesla K20"


class TestPowerUsage:
    def test_returns_integer_milliwatts(self, nvml):
        handle = nvml.device_get_handle_by_index(0)
        mw = nvml.device_get_power_usage(handle)
        assert isinstance(mw, int)
        # Idle K20 ~44 W, +/-5 W accuracy.
        assert 38_000 < mw < 50_000

    def test_pre_kepler_not_supported(self, nvml):
        handle = nvml.device_get_handle_by_index(1)
        with pytest.raises(NvmlError) as exc:
            nvml.device_get_power_usage(handle)
        assert exc.value.code == NVML_ERROR_NOT_SUPPORTED

    def test_query_charges_1_3ms(self, nvml, node):
        handle = nvml.device_get_handle_by_index(0)
        t0 = node.clock.now
        nvml.device_get_power_usage(handle)
        elapsed = node.clock.now - t0
        assert elapsed == pytest.approx(1.3e-3, rel=0.1)  # "about 1.3 ms"

    def test_process_accounting(self, nvml, node):
        proc = node.spawn("profiler")
        nvml.attach_process(proc)
        handle = nvml.device_get_handle_by_index(0)
        nvml.device_get_power_usage(handle)
        assert proc.cpu_seconds == pytest.approx(nvml.query_latency_s)

    def test_whole_board_scope(self, nvml, node):
        """Power under a memory-bound workload includes the GDDR draw —
        the 'entire board including memory' behaviour."""
        gpu = node.device("gpu", 0)
        gpu.board.schedule(VectorAddWorkload(), t_start=0.0)
        node.clock.advance_to(50.0)
        handle = nvml.device_get_handle_by_index(0)
        mw = nvml.device_get_power_usage(handle)
        assert mw > 100_000  # far above any die-only figure


class TestOtherQueries:
    def test_temperature(self, nvml):
        handle = nvml.device_get_handle_by_index(0)
        temp = nvml.device_get_temperature(handle)
        assert 30 <= temp <= 50

    def test_temperature_bad_sensor(self, nvml):
        handle = nvml.device_get_handle_by_index(0)
        with pytest.raises(NvmlError) as exc:
            nvml.device_get_temperature(handle, sensor=3)
        assert exc.value.code == NVML_ERROR_INVALID_ARGUMENT

    def test_memory_info(self, nvml):
        handle = nvml.device_get_handle_by_index(0)
        info = nvml.device_get_memory_info(handle)
        assert info.total == KEPLER_K20.vram_bytes
        assert info.used + info.free == info.total

    def test_fan_and_clocks(self, nvml):
        handle = nvml.device_get_handle_by_index(0)
        assert nvml.device_get_fan_speed(handle) > 1000
        assert nvml.device_get_clock_info(handle, "sm") == 324  # idle

    def test_power_limit_get_set_requires_root(self, nvml, node):
        handle = nvml.device_get_handle_by_index(0)
        user_proc = node.spawn("app")
        nvml.attach_process(user_proc)
        with pytest.raises(NvmlError):
            nvml.device_set_power_management_limit(handle, 150_000)
        root_proc = node.spawn("admin", ROOT)
        nvml.attach_process(root_proc)
        nvml.device_set_power_management_limit(handle, 150_000)
        assert nvml.device_get_power_management_limit(handle) == 150_000

    def test_power_limit_out_of_range_maps_to_invalid_argument(self, nvml, node):
        handle = nvml.device_get_handle_by_index(0)
        nvml.attach_process(node.spawn("admin", ROOT))
        with pytest.raises(NvmlError) as exc:
            nvml.device_set_power_management_limit(handle, 10_000)
        assert exc.value.code == NVML_ERROR_INVALID_ARGUMENT
