"""Unit tests for the GPU board model."""

import numpy as np
import pytest

from repro.errors import ConfigError, DeviceError
from repro.nvml.device import FERMI_M2090, KEPLER_K20, KEPLER_K40, GpuDevice
from repro.nvml.pcie import PcieBus
from repro.sim.rng import RngRegistry
from repro.workloads.noop import GpuNoopWorkload
from repro.workloads.vectoradd import VectorAddWorkload


@pytest.fixture
def gpu():
    return GpuDevice(KEPLER_K20, rng=RngRegistry(21))


class TestModels:
    def test_k20_matches_paper_specs(self):
        assert KEPLER_K20.cuda_cores == 2496
        assert KEPLER_K20.peak_dp_tflops == 1.17
        assert KEPLER_K20.vram_bytes == 5 * 1024**3
        assert KEPLER_K20.supports_power_readings

    def test_only_kepler_supports_power(self):
        assert KEPLER_K40.supports_power_readings
        assert not FERMI_M2090.supports_power_readings

    def test_documented_accuracy_and_update(self):
        assert KEPLER_K20.power_accuracy_w == 5.0
        assert KEPLER_K20.power_update_s == 0.060


class TestPower:
    def test_idle_floor(self, gpu):
        assert gpu.true_power(1.0) == KEPLER_K20.board_idle_w

    def test_noop_levels_off_near_55w(self, gpu):
        gpu.board.schedule(GpuNoopWorkload(duration=12.5))
        late = float(gpu.true_power(10.0))
        assert 52.0 < late < 58.0

    def test_vector_add_compute_power_in_band(self, gpu):
        gpu.board.schedule(VectorAddWorkload())
        p = float(gpu.true_power(50.0))
        assert 120.0 < p < 150.0  # Figure 5's compute plateau

    def test_power_sensor_held_between_updates(self, gpu):
        # Window k=17 spans [1.02, 1.08) at the 60 ms cadence.
        r1 = gpu.power_sensor.read(1.021)
        r2 = gpu.power_sensor.read(1.079)
        assert r1 == r2

    def test_power_sensor_within_documented_accuracy(self, gpu):
        t = np.arange(0.06, 30.0, 0.06)
        readings = gpu.power_sensor.read(t)
        assert np.all(np.abs(readings - KEPLER_K20.board_idle_w) <= 5.001)


class TestThermal:
    def test_temperature_rises_under_load(self, gpu):
        gpu.board.schedule(VectorAddWorkload(), t_start=0.0)
        t = np.linspace(20.0, 90.0, 30)
        temps = gpu.temperature_c(t)
        assert np.all(np.diff(temps) > 0)
        assert 55.0 < temps[-1] < 75.0  # Figure 5 tops out ~65 C

    def test_idle_temperature_modest(self, gpu):
        assert 35.0 < float(gpu.temperature_c(5.0)) < 45.0

    def test_fan_tracks_temperature(self, gpu):
        gpu.board.schedule(VectorAddWorkload(), t_start=0.0)
        assert gpu.fan_speed_rpm(90.0) > gpu.fan_speed_rpm(1.0)


class TestMemory:
    def test_allocate_and_free(self, gpu):
        before = gpu.memory_used
        gpu.allocate(1024**3)
        assert gpu.memory_used == before + 1024**3
        gpu.free(1024**3)
        assert gpu.memory_used == before

    def test_oom(self, gpu):
        with pytest.raises(DeviceError):
            gpu.allocate(KEPLER_K20.vram_bytes)

    def test_over_free_rejected(self, gpu):
        with pytest.raises(ConfigError):
            gpu.free(1)

    def test_reserved_overhead_present(self, gpu):
        assert gpu.memory_used > 0
        assert gpu.memory_free < KEPLER_K20.vram_bytes


class TestClocksAndLimits:
    def test_clocks_idle_vs_busy(self, gpu):
        gpu.board.schedule(VectorAddWorkload(), t_start=10.0)
        assert gpu.clock_mhz("sm", 5.0) == 324
        assert gpu.clock_mhz("sm", 60.0) == KEPLER_K20.base_clock_mhz
        assert gpu.clock_mhz("mem", 60.0) == KEPLER_K20.mem_clock_mhz

    def test_unknown_clock_domain_rejected(self, gpu):
        with pytest.raises(ConfigError):
            gpu.clock_mhz("tensor", 0.0)

    def test_power_limit_caps_board(self, gpu):
        gpu.board.schedule(VectorAddWorkload(), t_start=0.0)
        gpu.set_power_limit(120.0, t=30.0)
        assert float(gpu.true_power(50.0)) == 120.0

    def test_power_limit_range_enforced(self, gpu):
        with pytest.raises(DeviceError):
            gpu.set_power_limit(10.0, t=0.0)
        with pytest.raises(DeviceError):
            gpu.set_power_limit(500.0, t=0.0)


class TestPcie:
    def test_small_transfers_latency_bound(self):
        bus = PcieBus()
        assert bus.transfer_time(64) == pytest.approx(bus.latency_s, rel=0.001)

    def test_large_transfers_bandwidth_bound(self):
        bus = PcieBus()
        one_gb = bus.transfer_time(10**9)
        assert one_gb > 0.1

    def test_round_trip_near_paper_query_cost(self):
        # Two small transactions ~1.1 ms; with dispatch this is ~1.3 ms.
        assert PcieBus().round_trip_time() == pytest.approx(1.1e-3, rel=0.01)

    def test_validation(self):
        with pytest.raises(ConfigError):
            PcieBus(latency_s=-1.0)
        with pytest.raises(ConfigError):
            PcieBus(bandwidth_Bps=0.0)
        with pytest.raises(ConfigError):
            PcieBus().transfer_time(-1)
