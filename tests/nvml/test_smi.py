"""Unit tests for the nvidia-smi-style renderer."""

import pytest

from repro.host.node import Node
from repro.nvml.api import NvmlLibrary
from repro.nvml.device import FERMI_M2090, KEPLER_K20, GpuDevice
from repro.nvml.smi import render_smi
from repro.sim.rng import RngRegistry
from repro.workloads.vectoradd import VectorAddWorkload


@pytest.fixture
def node():
    n = Node("smi-host", rng=RngRegistry(305))
    n.attach("gpu", GpuDevice(KEPLER_K20, rng=n.rng.fork("g0"), index=0))
    n.attach("gpu", GpuDevice(FERMI_M2090, rng=n.rng.fork("g1"), index=1))
    return n


def test_renders_all_devices(node):
    nvml = NvmlLibrary(node)
    nvml.init()
    text = render_smi(nvml)
    assert "Tesla K20" in text
    assert "Tesla M2090" in text
    assert "2 device(s)" in text


def test_pre_kepler_power_shows_na(node):
    nvml = NvmlLibrary(node)
    nvml.init()
    text = render_smi(nvml)
    assert "N/A (pre-Kepler)" in text
    assert "W/" in text  # the K20 row still shows power/cap


def test_utilization_reflects_load(node):
    gpu = node.device("gpu", 0)
    gpu.board.schedule(VectorAddWorkload(), t_start=0.0)
    node.clock.advance_to(50.0)
    nvml = NvmlLibrary(node)
    nvml.init()
    text = render_smi(nvml)
    k20_row = next(l for l in text.splitlines() if "Tesla K20" in l)
    # 85% SM / 90% memory during the compute phase.
    assert "90%" in k20_row


def test_rendering_charges_query_costs(node):
    nvml = NvmlLibrary(node)
    nvml.init()
    t0 = node.clock.now
    render_smi(nvml)
    # 5 charged queries for the K20 + 3 for the Fermi (its power query
    # raises NOT_SUPPORTED before charging; names are free).
    assert node.clock.now - t0 == pytest.approx(8 * nvml.query_latency_s)
