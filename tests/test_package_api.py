"""Meta-tests of the public API surface: importability, __all__
integrity, and documentation coverage."""

import importlib
import inspect
import pkgutil

import pytest

import repro

PACKAGES = [
    "repro", "repro.sim", "repro.host", "repro.runtime", "repro.workloads",
    "repro.bgq", "repro.rapl", "repro.nvml", "repro.xeonphi", "repro.core",
    "repro.core.moneq", "repro.baselines", "repro.analysis",
    "repro.experiments", "repro.scheduling", "repro.devices", "repro.store",
]


def all_modules():
    names = []
    for package_name in PACKAGES:
        package = importlib.import_module(package_name)
        names.append(package_name)
        for info in pkgutil.iter_modules(package.__path__,
                                         prefix=package_name + "."):
            if not info.ispkg:
                names.append(info.name)
    return sorted(set(names))


@pytest.mark.parametrize("name", all_modules())
def test_module_imports_and_is_documented(name):
    module = importlib.import_module(name)
    assert module.__doc__ and module.__doc__.strip(), f"{name} lacks a docstring"


@pytest.mark.parametrize("package_name", PACKAGES)
def test_dunder_all_resolves(package_name):
    package = importlib.import_module(package_name)
    for symbol in getattr(package, "__all__", []):
        assert hasattr(package, symbol), f"{package_name}.__all__ lists {symbol}"


def test_public_classes_documented():
    undocumented = []
    for name in all_modules():
        module = importlib.import_module(name)
        for attr_name, obj in vars(module).items():
            if attr_name.startswith("_"):
                continue
            if inspect.isclass(obj) and obj.__module__ == name:
                if not (obj.__doc__ and obj.__doc__.strip()):
                    undocumented.append(f"{name}.{attr_name}")
    assert not undocumented, f"undocumented public classes: {undocumented}"


def test_version_consistent():
    from repro._version import __version__

    assert repro.__version__ == __version__
    parts = __version__.split(".")
    assert len(parts) == 3 and all(p.isdigit() for p in parts)
