"""The ``repro bench perf --check`` regression gate.

The real benches take seconds and are noise-dominated in CI, so the
gate's *logic* is tested against stub benches: fresh speedups inside
the tolerance band pass, regressions beyond it fail, and a committed
bench that disappeared from the suite fails loudly.
"""

import json

import pytest

from repro import perfbench


@pytest.fixture
def stub_benches(monkeypatch):
    speeds = {"fast_path": 10.0, "steady_path": 1.0}
    monkeypatch.setattr(perfbench, "ALL_BENCHES", {
        name: (lambda s=s: {"wall_s": 0.001, "speedup_vs_scalar": s})
        for name, s in speeds.items()
    })
    return speeds


def _commit(tmp_path, entries):
    path = tmp_path / "BENCH_stub.json"
    path.write_text(json.dumps(entries))
    return str(path)


def test_within_tolerance_passes(tmp_path, stub_benches):
    path = _commit(tmp_path, {
        "fast_path": {"wall_s": 0.001, "speedup_vs_scalar": 12.0},
        "steady_path": {"wall_s": 0.001, "speedup_vs_scalar": 1.1},
    })
    failures, results = perfbench.check(path)
    assert failures == []
    assert results["fast_path"]["speedup_vs_scalar"] == 10.0


def test_regression_beyond_tolerance_fails(tmp_path, stub_benches):
    path = _commit(tmp_path, {
        "fast_path": {"wall_s": 0.001, "speedup_vs_scalar": 20.0},
    })
    failures, _ = perfbench.check(path)
    assert len(failures) == 1
    assert "fast_path" in failures[0]
    assert "20.000x" in failures[0]


def test_missing_bench_fails(tmp_path, stub_benches):
    path = _commit(tmp_path, {
        "retired_path": {"wall_s": 0.001, "speedup_vs_scalar": 2.0},
    })
    failures, _ = perfbench.check(path)
    assert any("retired_path" in f for f in failures)


def test_check_never_rewrites_the_committed_file(tmp_path, stub_benches):
    path = _commit(tmp_path, {
        "fast_path": {"wall_s": 0.001, "speedup_vs_scalar": 10.0},
    })
    before = open(path).read()
    perfbench.check(path)
    assert open(path).read() == before


def test_committed_trajectory_matches_current_suite():
    """The committed BENCH_moneq.json names exactly the benches the
    suite still runs (so --check can't silently skip one)."""
    import pathlib

    bench_file = pathlib.Path(__file__).resolve().parent.parent / \
        "BENCH_moneq.json"
    committed = json.loads(bench_file.read_text(encoding="utf-8"))
    assert set(committed) == set(perfbench.ALL_BENCHES)
