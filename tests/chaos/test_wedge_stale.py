"""The wedged-daemon stale-serve semantics.

Paper §II: the Phi's MicRAS daemon can wedge while its pseudo-files
keep answering — reads return promptly, but with the values the daemon
produced *before* it wedged, stale beyond any freshness window.  A
wedge is therefore neither a dark read (the exchange delivers) nor a
retryable fault (nothing errors): the channel serves the last
delivered bytes, the breaker records success, and the plan counts the
crossing as ``stale``.  These tests pin that down — including the
carry of last-delivered values across blocks, chunking invariance, and
the interplay with the channel cache (a freshness hit must never mask
a wedge).
"""

import numpy as np
import pytest

from repro import testbeds
from repro.chaos.faults import FaultPlan, FaultRule
from repro.core.moneq.backends import NvmlBackend, PhiMicrasBackend
from repro.mech.cache import channel_cache

WEDGE_AT = 2.0


@pytest.fixture(autouse=True)
def _clean_cache():
    channel_cache().clear()
    yield
    channel_cache().clear()


def _micras(seed=0x57A1E):
    rig = testbeds.phi_node(seed=seed)
    return PhiMicrasBackend(rig.micras)


def _wedge_plan(mechanism="micras", seed=11, t_start=WEDGE_AT):
    # micras' default kind IS daemon_wedged; rate 1.0 pins every
    # crossing inside the window.
    return FaultPlan(seed=seed, rules=(
        FaultRule(mechanism, rate=1.0, kind="daemon_wedged",
                  t_start=t_start),
    ))


def test_wedged_rows_freeze_at_last_delivered_values():
    backend = _micras()
    times = np.arange(16, dtype=np.float64) * 0.5  # wedge hits at row 4
    with _wedge_plan().active() as plan:
        rows = backend.read_block(times)
    wedged = times >= WEDGE_AT
    last_live = int(np.flatnonzero(~wedged)[-1])
    for name in backend.fields():
        column = rows[name]
        assert not np.isnan(column).any()
        # Every wedged row serves the pre-wedge bytes, unchanged.
        assert (column[wedged] == column[last_live]).all()
    assert plan.stats.stale == int(np.count_nonzero(wedged))
    assert plan.stats.dark == 0
    assert plan.stats.retries == 0


def test_wedge_is_not_a_retry_and_not_a_breaker_failure():
    backend = _micras()
    times = np.arange(12, dtype=np.float64) * 0.5
    with _wedge_plan().active() as plan:
        backend.read_block(times)
    assert plan.stats.breaker_opens == 0
    assert all(e.outcome == "stale" and e.attempts == 0
               for e in plan.timeline)
    assert all(e.kind == "daemon_wedged" for e in plan.timeline)


def test_last_delivered_carries_across_blocks():
    """A wedge at the head of a later block serves the previous block's
    last delivered values — the injector carries them, matching one
    contiguous read byte for byte."""
    times = np.arange(16, dtype=np.float64) * 0.5

    whole = _micras()
    with _wedge_plan().active():
        contiguous = whole.read_block(times)

    chunked = _micras()
    with _wedge_plan().active():
        parts = [chunked.read_block(times[:3]),   # all delivered
                 chunked.read_block(times[3:5]),  # wedge begins inside
                 chunked.read_block(times[5:])]   # wedged from row 0
    assert np.concatenate(parts).tobytes() == contiguous.tobytes()


def test_wedge_before_any_delivery_degrades_to_dark_values():
    backend = _micras()
    times = np.arange(6, dtype=np.float64) * 0.5
    with _wedge_plan(t_start=0.0).active() as plan:
        rows = backend.read_block(times)
    for name in backend.fields():
        assert np.isnan(rows[name]).all()
    # Still accounted as stale serves, not dark reads: the exchange
    # delivered, there was just nothing pre-wedge to serve.
    assert plan.stats.stale == times.shape[0]
    assert plan.stats.dark == 0


def test_cache_hit_never_masks_a_wedge():
    """micras carries a cache plan (held power window + exact temps);
    a warmed freshness window must NOT satisfy a wedged crossing with
    fresh bytes — stale-serve wins over the cache."""
    rig = testbeds.phi_node(seed=0xCAFE)
    warm = PhiMicrasBackend(rig.micras)
    wedged = PhiMicrasBackend(rig.micras)  # same SMC, shared entries
    assert warm.source.cache_plan() is not None
    times = np.arange(16, dtype=np.float64) * 0.5
    warm.read_block(times)  # fill every freshness window, no plan
    with _wedge_plan().active() as plan:
        rows = wedged.read_block(times)
    assert plan.stats.stale > 0
    mask = times >= WEDGE_AT
    last_live = int(np.flatnonzero(~mask)[-1])
    for name in wedged.fields():
        assert (rows[name][mask] == rows[name][last_live]).all()


def test_wedged_values_diverge_from_healthy_timeline():
    """On a varying signal the frozen bytes are visibly stale: compare
    a wedged NVML run against the healthy run of an identical GPU."""
    from repro.workloads.vectoradd import VectorAddWorkload

    def gpu_backend(seed=0xBEEF):
        _, gpu, _ = testbeds.gpu_node(seed=seed)
        gpu.board.schedule(VectorAddWorkload(), t_start=0.0)
        return NvmlBackend(gpu)

    times = np.arange(64, dtype=np.float64) * 0.25
    healthy = gpu_backend().read_block(times)
    backend = gpu_backend()
    with _wedge_plan("nvml", t_start=4.0).active():
        rows = backend.read_block(times)
    mask = times >= 4.0
    assert (rows["board_w"][~mask] == healthy["board_w"][~mask]).all()
    assert (rows["board_w"][mask] != healthy["board_w"][mask]).any()
