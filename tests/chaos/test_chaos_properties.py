"""Determinism and non-interference properties of fault injection.

Three guarantees the chaos layer is built on:

* equal seeds replay equal fault timelines **and** equal session output
  bytes — scenario runs are reproducible experiments, not noise;
* a plan that injects nothing (zero rates, or no plan at all) leaves
  every output byte identical to a chaos-free run;
* injection happens above the sensor source, so retried crossings never
  re-read a stateful counter — delivered rows under faults are
  bit-identical to the clean run, including across RAPL wrap
  boundaries, and block sampling decides identically to scalar ticking.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import testbeds
from repro.chaos import FaultPlan, FaultRule, run_scenario
from repro.core.moneq.backends import RaplMsrBackend
from repro.core.moneq.session import MoneqSession
from repro.obs.instruments import RAPL_WRAP_CORRECTIONS
from repro.rapl.package import CpuModel
from repro.workloads.gaussian import GaussianEliminationWorkload

#: Same furnace as tests/properties/test_read_block_parity.py: hot
#: enough that the 65536 J RAPL counter wraps every ~88 s.
HOT_MODEL = CpuModel(
    name="hot-part", idle_w=600.0, cores_w=80.0, uncore_w=40.0, pp1_w=30.0,
    dram_idle_w=100.0, dram_w=20.0, tdp_w=900.0,
)

DURATION_S = 6.0


def _fleet_outputs(seed: int, duration_s: float = DURATION_S,
                   plan: FaultPlan | None = None) -> dict[str, str]:
    """One fleet-wide session's output files, optionally under a plan."""
    node, backends = testbeds.fleet_node(seed=seed)
    session = MoneqSession(list(backends.values()), node.events,
                           node_count=1, vfs=node.vfs)

    def run():
        node.events.run_until(node.clock.now + duration_s)
        return session.finalize()

    if plan is None:
        result = run()
    else:
        with plan.active():
            result = run()
    return {p: node.vfs.read_text(p) for p in result.output_paths}


class TestSameSeedSameTimeline:
    @pytest.mark.parametrize("scenario", ["bmc_dark", "bus_noise",
                                          "daemon_wedge"])
    def test_scenario_replays_bit_for_bit(self, scenario):
        first = run_scenario(scenario, seed=23, duration_s=DURATION_S)
        second = run_scenario(scenario, seed=23, duration_s=DURATION_S)
        assert first.summary_line() == second.summary_line()
        assert first.timeline_lines() == second.timeline_lines()
        assert first.outputs == second.outputs
        assert first.error_deltas == second.error_deltas

    def test_different_seed_different_timeline(self):
        a = run_scenario("bus_noise", seed=7, duration_s=DURATION_S)
        b = run_scenario("bus_noise", seed=8, duration_s=DURATION_S)
        # The fault pattern and jittered backoffs both derive from the
        # seed; two seeds agreeing on every one would be astronomical.
        assert (a.summary_line() != b.summary_line()
                or a.timeline_lines() != b.timeline_lines())


class TestZeroRateIsInvisible:
    def test_zero_rate_plan_byte_identical_to_no_plan(self):
        baseline = _fleet_outputs(seed=41)
        _, backends = testbeds.fleet_node(seed=41)
        plan = FaultPlan(
            seed=17,
            rules=tuple(FaultRule(name, rate=0.0) for name in backends),
        )
        under_plan = _fleet_outputs(seed=41, plan=plan)
        assert under_plan == baseline
        assert plan.timeline == []
        assert plan.stats.faults == 0
        assert plan.stats.dark == 0
        assert plan.stats.retries == 0

    def test_out_of_window_rules_are_invisible_too(self):
        baseline = _fleet_outputs(seed=42)
        plan = FaultPlan(seed=17, rules=(
            FaultRule("ipmb", rate=1.0, t_start=DURATION_S + 100.0),
        ))
        assert _fleet_outputs(seed=42, plan=plan) == baseline
        assert plan.timeline == []


def _hot_msr_backend(seed: int):
    node, _ = testbeds.rapl_node(
        seed=seed, model=HOT_MODEL, kernel="3.14",
        workload=GaussianEliminationWorkload(n=12_000),
    )
    return RaplMsrBackend(node.devices("cpu")[0], "s0")


#: A grid spanning several ~88 s counter wraps, with points straddling
#: the boundaries themselves.
WRAP_TIMES = np.sort(np.concatenate([
    np.arange(0.06, 320.0, 13.0),
    np.array([87.0, 87.5, 88.0, 88.5, 175.0, 176.0, 264.0]),
]))


class TestRetriesNeverDoubleCountEnergy:
    def test_delivered_rows_match_clean_run_across_wraps(self):
        """Injection sits above the source: a crossing that needed
        retries still consumed exactly one counter read, so every
        delivered row equals the clean run's row bit for bit — even
        when the energy delta behind it spans a 32-bit wrap."""
        before = RAPL_WRAP_CORRECTIONS.value("rapl_msr")
        clean = _hot_msr_backend(31).read_block(WRAP_TIMES)
        clean_wraps = RAPL_WRAP_CORRECTIONS.value("rapl_msr") - before

        backend = _hot_msr_backend(31)
        plan = FaultPlan(seed=5, rules=(FaultRule("rapl_msr", rate=0.4),))
        wraps_before = RAPL_WRAP_CORRECTIONS.value("rapl_msr")
        with plan.active():
            faulted = backend.read_block(WRAP_TIMES)
        wraps_delta = RAPL_WRAP_CORRECTIONS.value("rapl_msr") - wraps_before

        dark = np.isnan(faulted["pkg_w"])
        assert dark.any(), "rate 0.4 over 32 ticks never faulted"
        assert not dark.all(), "every tick went dark; nothing to compare"
        for name in clean.dtype.names:
            assert np.isnan(faulted[name][dark]).all()
            assert (faulted[name][~dark].tobytes()
                    == clean[name][~dark].tobytes())
        assert clean_wraps > 0, "grid never crossed a counter wrap"
        # Retries re-issue the exchange, not the read: the faulted run
        # decoded exactly as many wrap corrections as the clean one.
        assert wraps_delta == clean_wraps
        assert plan.stats.retries > 0


@given(seed=st.integers(0, 2**16), rate=st.floats(0.05, 0.6),
       splits=st.lists(st.integers(0, 38), min_size=0, max_size=3))
@settings(max_examples=6, deadline=None)
def test_block_sampling_decides_identically_to_scalar_ticking(
        seed, rate, splits):
    """Fault draws are counter-based (exchange indices, not generator
    state): chunking the grid arbitrarily — including the fully scalar
    one-tick chunking — produces the same dark rows, the same timeline
    and the same delivered bytes.  As in the chaos-free parity suite,
    both backends share one device (same label too, so the per-(rule,
    device) fault streams coincide); each gets its own same-seed plan."""
    times = WRAP_TIMES[:24]
    node, _ = testbeds.rapl_node(
        seed=seed, model=HOT_MODEL, kernel="3.14",
        workload=GaussianEliminationWorkload(n=12_000),
    )
    package = node.devices("cpu")[0]

    def run(chunk_bounds):
        backend = RaplMsrBackend(package, "s0")
        plan = FaultPlan(seed=seed + 1,
                         rules=(FaultRule("rapl_msr", rate=rate),))
        with plan.active():
            parts = [backend.read_block(times[a:b])
                     for a, b in zip(chunk_bounds[:-1], chunk_bounds[1:])
                     if b > a]
        return np.concatenate(parts), plan

    scalar_rows, scalar_plan = run(list(range(len(times) + 1)))
    bounds = [0] + sorted(set(splits)) + [len(times)]
    block_rows, block_plan = run(bounds)
    assert scalar_rows.tobytes() == block_rows.tobytes()
    assert scalar_plan.timeline_lines() == block_plan.timeline_lines()
    assert scalar_plan.stats.__dict__ == block_plan.stats.__dict__
