"""Unit coverage of the chaos building blocks: fault rules, retry
policies, the circuit breaker's state machine, and plan activation."""

import pytest

from repro.chaos.faults import (
    FaultPlan,
    FaultRule,
    activate,
    active_plan,
    deactivate,
    default_kind,
)
from repro.chaos.retry import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    CircuitBreaker,
    RetryPolicy,
    default_policy,
)
from repro.errors import ChaosError, ConfigError


class TestFaultRule:
    def test_kind_defaults_to_the_mechanism_failure_mode(self):
        assert FaultRule("ipmb", rate=0.5).kind == "ipmb_drop"
        assert FaultRule("rapl_msr", rate=0.5).kind == "eintr"
        assert FaultRule("nvml", rate=0.5, kind="custom").kind == "custom"
        assert default_kind("not-a-mechanism") == "io_error"

    def test_validation(self):
        with pytest.raises(ConfigError, match="mechanism"):
            FaultRule("", rate=0.5)
        with pytest.raises(ConfigError, match=r"\[0, 1\]"):
            FaultRule("ipmb", rate=1.5)
        with pytest.raises(ConfigError, match=r"\[0, 1\]"):
            FaultRule("ipmb", rate=-0.1)
        with pytest.raises(ConfigError, match="empty"):
            FaultRule("ipmb", rate=0.5, t_start=3.0, t_end=3.0)

    def test_window_is_half_open(self):
        rule = FaultRule("ipmb", rate=1.0, t_start=1.0, t_end=2.0)
        assert not rule.applies_at(0.999)
        assert rule.applies_at(1.0)
        assert rule.applies_at(1.999)
        assert not rule.applies_at(2.0)

    def test_zero_rate_is_a_valid_null_rule(self):
        assert FaultRule("ipmb", rate=0.0).rate == 0.0


class TestRetryPolicy:
    def test_backoff_is_exponential_in_the_attempt(self):
        policy = RetryPolicy(backoff_base_s=1e-3, backoff_multiplier=2.0,
                             jitter_frac=0.0)
        assert policy.backoff_s(1, 0.5) == pytest.approx(1e-3)
        assert policy.backoff_s(2, 0.5) == pytest.approx(2e-3)
        assert policy.backoff_s(4, 0.5) == pytest.approx(8e-3)

    def test_jitter_scales_symmetrically_around_the_base(self):
        policy = RetryPolicy(backoff_base_s=1e-3, jitter_frac=0.1)
        low, mid, high = (policy.backoff_s(1, u) for u in (0.0, 0.5, 1.0))
        assert low == pytest.approx(0.9e-3)
        assert mid == pytest.approx(1e-3)
        assert high == pytest.approx(1.1e-3)

    def test_validation(self):
        with pytest.raises(ConfigError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ConfigError):
            RetryPolicy(backoff_multiplier=0.5)
        with pytest.raises(ConfigError):
            RetryPolicy(jitter_frac=1.0)
        with pytest.raises(ConfigError):
            RetryPolicy(budget_s=0.0)
        with pytest.raises(ConfigError, match="1-based"):
            RetryPolicy().backoff_s(0, 0.5)

    def test_default_policies_scale_budget_to_channel_cost(self):
        # A 22 ms IPMB bus exchange earns a longer deadline than a
        # 0.03 ms MSR pread (Table II ordering).
        assert default_policy("ipmb").budget_s > default_policy("rapl_msr").budget_s
        assert default_policy("unknown") == RetryPolicy()


class TestCircuitBreaker:
    def test_opens_after_consecutive_failures_only(self):
        breaker = CircuitBreaker("ipmb", failure_threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()  # streak broken
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED
        breaker.record_failure()
        assert breaker.state == OPEN
        assert breaker.opens == 1

    def test_cooldown_counts_crossings_then_half_opens(self):
        breaker = CircuitBreaker("ipmb", failure_threshold=1,
                                 cooldown_crossings=3)
        breaker.record_failure()
        assert breaker.state == OPEN
        assert breaker.allow() is False
        assert breaker.allow() is False
        # Third crossing is the half-open probe.
        assert breaker.allow() is True
        assert breaker.state == HALF_OPEN

    def test_half_open_probe_outcomes(self):
        def opened():
            b = CircuitBreaker("ipmb", failure_threshold=1,
                               cooldown_crossings=1)
            b.record_failure()
            assert b.allow() is True  # cooldown of 1: immediate probe
            assert b.state == HALF_OPEN
            return b

        healed = opened()
        healed.record_success()
        assert healed.state == CLOSED

        still_dark = opened()
        still_dark.record_failure()
        assert still_dark.state == OPEN
        assert still_dark.opens == 2

    def test_validation(self):
        with pytest.raises(ConfigError):
            CircuitBreaker("ipmb", failure_threshold=0)
        with pytest.raises(ConfigError):
            CircuitBreaker("ipmb", cooldown_crossings=0)


class TestPlanActivation:
    def test_context_manager_installs_and_removes(self):
        plan = FaultPlan(seed=1)
        assert active_plan() is None
        with plan.active():
            assert active_plan() is plan
        assert active_plan() is None

    def test_same_plan_nests(self):
        plan = FaultPlan(seed=1)
        with plan.active():
            with plan.active():
                assert active_plan() is plan
            # Inner exit must not tear down the outer activation.
            assert active_plan() is plan
        assert active_plan() is None

    def test_conflicting_plan_rejected(self):
        plan, other = FaultPlan(seed=1), FaultPlan(seed=2)
        with plan.active():
            with pytest.raises(ChaosError, match="different fault plan"):
                activate(other)
            # The failed activation left the original installed.
            assert active_plan() is plan
        assert active_plan() is None

    def test_deactivating_a_non_active_plan_rejected(self):
        with pytest.raises(ChaosError, match="not the active plan"):
            deactivate(FaultPlan(seed=3))

    def test_plan_validation_and_rule_routing(self):
        with pytest.raises(ConfigError, match="seed"):
            FaultPlan(seed=-1)
        rules = (FaultRule("ipmb", rate=0.1),
                 FaultRule("ipmb", rate=1.0, t_start=5.0),
                 FaultRule("nvml", rate=0.2))
        plan = FaultPlan(seed=1, rules=rules)
        assert plan.rules_for("ipmb") == rules[:2]
        assert plan.rules_for("nvml") == rules[2:]
        assert plan.rules_for("emon") == ()

    def test_rule_seeds_separate_streams(self):
        plan = FaultPlan(seed=1)
        a = plan.rule_seed(FaultRule("ipmb", rate=0.5), "mic0-bmc")
        b = plan.rule_seed(FaultRule("ipmb", rate=0.5, kind="bmc_dark"),
                           "mic0-bmc")
        c = plan.rule_seed(FaultRule("ipmb", rate=0.5), "mic1-bmc")
        assert len({a, b, c}) == 3
        assert plan.retry_seed("ipmb", "mic0-bmc") != \
            plan.retry_seed("ipmb", "mic1-bmc")
