"""SLO assertions for the chaos scenarios — the reliability contract:

* a faulted mechanism's failures are *counted*, with the right
  ``{mechanism, kind}`` labels on ``repro_collector_errors_total``;
* mechanisms the scenario does not touch produce byte-identical output
  to a chaos-free run — fault isolation, not fault spread;
* the session **completes and finalizes** whatever goes dark: a BMC
  outage costs one agent's rows, never the run.
"""

from repro import testbeds
from repro.chaos import run_scenario
from repro.core.moneq.session import MoneqSession

DURATION_S = 6.0

#: Output path of the one out-of-band (IPMB) agent on the fleet rig.
IPMB_PATH = "/moneq/mic0-bmc.dat"
MICRAS_PATH = "/moneq/mic0-daemon.dat"


def _baseline_outputs(seed: int) -> dict[str, str]:
    node, backends = testbeds.fleet_node(seed=seed)
    session = MoneqSession(list(backends.values()), node.events,
                           node_count=1, vfs=node.vfs)
    node.events.run_until(node.clock.now + DURATION_S)
    result = session.finalize()
    return {p: node.vfs.read_text(p) for p in result.output_paths}


class TestBmcGoesDark:
    def test_errors_carry_the_right_labels(self):
        result = run_scenario("bmc_dark", seed=11, duration_s=DURATION_S)
        # Every counted error belongs to the faulted mechanism …
        assert result.error_deltas, "a dark BMC must leave error counts"
        assert {mech for mech, _ in result.error_deltas} == {"ipmb"}
        # … split between the injected kind and the breaker's fast-fail
        # degradation once the channel is declared dark.
        kinds = {kind for _, kind in result.error_deltas}
        assert "bmc_dark" in kinds
        assert result.plan.stats.dark > 0
        assert result.plan.stats.recovered == 0  # rate 1.0 never heals

    def test_non_faulted_mechanisms_are_unharmed(self):
        result = run_scenario("bmc_dark", seed=11, duration_s=DURATION_S)
        baseline = _baseline_outputs(seed=11)
        assert set(result.outputs) == set(baseline)
        differing = {p for p in baseline if result.outputs[p] != baseline[p]}
        assert differing == {IPMB_PATH}

    def test_session_completes_despite_the_outage(self):
        result = run_scenario("bmc_dark", seed=11, duration_s=DURATION_S)
        assert result.ticks > 0
        assert len(result.outputs) == 9  # every fleet agent wrote a file
        # The ipmb agent kept its cadence: dark ticks are rows reading
        # nan, not missing rows.
        assert result.outputs[IPMB_PATH].count("\n") == \
            _baseline_outputs(seed=11)[IPMB_PATH].count("\n")
        assert "nan" in result.outputs[IPMB_PATH]

    def test_breaker_opened_and_fast_failed(self):
        result = run_scenario("bmc_dark", seed=11, duration_s=DURATION_S)
        assert result.plan.stats.breaker_opens >= 1
        outcomes = [event.outcome for event in result.timeline]
        assert "breaker_open" in outcomes  # fast-fail crossings happened
        # Fast fails spend no retries — cheaper than re-proving a dead
        # bus on every tick.
        fast_fails = [e for e in result.timeline
                      if e.outcome == "breaker_open"]
        assert all(e.attempts == 0 for e in fast_fails)


class TestDaemonWedge:
    def test_only_the_daemon_path_degrades(self):
        result = run_scenario("daemon_wedge", seed=19, duration_s=DURATION_S)
        assert {mech for mech, _ in result.error_deltas} == {"micras"}
        baseline = _baseline_outputs(seed=19)
        differing = {p for p in baseline if result.outputs[p] != baseline[p]}
        assert differing == {MICRAS_PATH}


class TestBusNoise:
    def test_transient_noise_mostly_recovers(self):
        result = run_scenario("bus_noise", seed=7, duration_s=DURATION_S)
        s = result.plan.stats
        assert s.faults > 0
        assert s.recovered > 0
        assert s.retries >= s.recovered  # each recovery cost >= 1 retry
        assert s.backoff_s > 0.0
        # Recovered crossings deliver real readings: if nothing went
        # dark, the output is fault-free byte for byte.
        if s.dark == 0:
            assert not result.error_deltas
            for content in result.outputs.values():
                assert "nan" not in content
