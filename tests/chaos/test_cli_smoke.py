"""Tier-1 smoke for ``repro chaos``: the CLI exits cleanly and its
summary line is stable for a given (scenario, seed)."""

import pytest

from repro.__main__ import main as cli_main


def _last_line(capsys) -> str:
    out = capsys.readouterr().out
    return out.rstrip("\n").splitlines()[-1]


def test_chaos_run_exits_zero_with_stable_summary(capsys):
    assert cli_main(["chaos", "run", "bus_noise", "--seed", "7"]) == 0
    first = _last_line(capsys)
    assert first.startswith(
        "[repro chaos run] scenario=bus_noise seed=7 interval_s=0.560 ")
    for field in ("ticks=", "faults=", "recovered=", "dark=", "retries=",
                  "backoff_s=", "breaker_opens="):
        assert field in first
    # Stable: a second identical invocation renders the same bytes.
    assert cli_main(["chaos", "run", "bus_noise", "--seed", "7"]) == 0
    assert _last_line(capsys) == first


def test_chaos_run_accepts_duration_and_rate(capsys):
    assert cli_main(["chaos", "run", "bus_noise", "--seed", "3",
                     "--duration", "3.0", "--rate", "0.5"]) == 0
    assert "scenario=bus_noise seed=3" in _last_line(capsys)


def test_chaos_list_exits_zero(capsys):
    assert cli_main(["chaos", "list"]) == 0
    out = capsys.readouterr().out
    for name in ("bmc_dark", "daemon_wedge", "bus_noise"):
        assert name in out


@pytest.mark.parametrize("argv", [
    ["chaos"],
    ["chaos", "run"],
    ["chaos", "run", "no_such_scenario"],
    ["chaos", "run", "bus_noise", "--seed"],
    ["chaos", "run", "bus_noise", "--seed", "not-a-number"],
    ["chaos", "frobnicate"],
])
def test_bad_usage_exits_two(argv, capsys):
    assert cli_main(argv) == 2
    assert capsys.readouterr().err