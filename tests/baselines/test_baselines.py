"""Unit tests for the comparator tools and the paper's positioning of
MonEQ against them."""

import pytest

from repro.baselines.papi import PapiError, PapiLibrary
from repro.baselines.powerpack import NiDaqChannel, PowerPackRig, WattsUpMeter
from repro.baselines.tau import TauError, TauProfiler
from repro.errors import ConfigError
from repro.testbeds import multi_device_node, rapl_node
from repro.workloads.gaussian import GaussianEliminationWorkload


@pytest.fixture
def hybrid():
    node, rig = multi_device_node(seed=33)
    return node


class TestPapi:
    def test_components_cover_papers_trio(self, hybrid):
        assert PapiLibrary(hybrid).components() == ["mic", "nvml", "rapl"]

    def test_rapl_events_per_domain(self, hybrid):
        events = PapiLibrary(hybrid).events("rapl")
        assert len(events) == 4
        assert "rapl:::PACKAGE_ENERGY:PKG" in events

    def test_unknown_component_rejected(self, hybrid):
        with pytest.raises(PapiError):
            PapiLibrary(hybrid).events("cuda")

    def test_energy_events_accumulate(self, hybrid):
        papi = PapiLibrary(hybrid)
        es = papi.create_eventset(["rapl:::PACKAGE_ENERGY:PKG"])
        papi.start(es)
        hybrid.clock.advance(5.0)
        values = papi.read(es)
        # ~5 s of idle EP package power, in nanojoules.
        expected = 18.0 * 5.0 * 1e9
        assert values["rapl:::PACKAGE_ENERGY:PKG"] == pytest.approx(expected, rel=0.05)

    def test_power_events_instantaneous(self, hybrid):
        papi = PapiLibrary(hybrid)
        es = papi.create_eventset(["nvml:::power:device0", "mic:::power"])
        papi.start(es)
        hybrid.clock.advance(2.0)
        values = papi.read(es)
        assert 38.0 < values["nvml:::power:device0"] < 50.0   # idle K20
        assert 105.0 < values["mic:::power"] < 115.0          # idle Phi

    def test_lifecycle_misuse_rejected(self, hybrid):
        papi = PapiLibrary(hybrid)
        es = papi.create_eventset(["mic:::power"])
        with pytest.raises(PapiError):
            papi.read(es)
        papi.start(es)
        with pytest.raises(PapiError):
            papi.start(es)
        papi.stop(es)
        with pytest.raises(PapiError):
            papi.read(es)

    def test_unknown_event_rejected(self, hybrid):
        with pytest.raises(PapiError):
            PapiLibrary(hybrid).create_eventset(["rapl:::BOGUS"])

    def test_empty_eventset_rejected(self, hybrid):
        with pytest.raises(ConfigError):
            PapiLibrary(hybrid).create_eventset([])


class TestTau:
    def make(self, seed=34):
        node, _ = rapl_node(seed=seed)
        return node, TauProfiler(node)

    def test_rapl_only_support(self):
        node, tau = self.make()
        assert tau.supports_power_on("cpu")
        assert not tau.supports_power_on("gpu")
        assert not tau.supports_power_on("mic")

    def test_needs_msr_driver(self):
        from repro.host.node import Node
        from repro.rapl.package import CpuPackage

        node = Node("bare")
        node.attach("cpu", CpuPackage())
        with pytest.raises(TauError):
            TauProfiler(node)  # msr not modprobed

    def test_region_time_and_energy(self):
        node, tau = self.make()
        tau.start("solve")
        node.clock.advance(10.0)
        tau.stop("solve")
        profile = tau.profile("solve")
        assert profile.calls == 1
        assert profile.inclusive_s == pytest.approx(10.0)
        # Workload starts at t=5: some busy, some idle energy.
        assert profile.pkg_energy_j > 5.0 * 5.5

    def test_nested_regions(self):
        node, tau = self.make()
        tau.start("outer")
        node.clock.advance(1.0)
        tau.start("inner")
        node.clock.advance(2.0)
        tau.stop("inner")
        node.clock.advance(1.0)
        tau.stop("outer")
        assert tau.profile("outer").inclusive_s == pytest.approx(4.0)
        assert tau.profile("inner").inclusive_s == pytest.approx(2.0)

    def test_mismatched_stop_rejected(self):
        node, tau = self.make()
        tau.start("a")
        with pytest.raises(TauError):
            tau.stop("b")

    def test_unknown_profile_rejected(self):
        _, tau = self.make()
        with pytest.raises(TauError):
            tau.profile("nope")


class TestPowerPack:
    def test_no_software_counter_support(self, hybrid):
        rig = PowerPackRig(hybrid)
        for counter in ("rapl", "nvml", "mic"):
            assert not rig.supports(counter)  # the paper's limitation

    def test_wall_meter_sees_whole_node(self, hybrid):
        rig = PowerPackRig(hybrid)
        wall = rig.read_wall(10.0)
        # Base node + idle EP socket + idle K20 + idle Phi, over PSU loss.
        dc_floor = 65.0 + 18.0 + 4.0 + 44.0 + 110.0
        assert wall > dc_floor  # conversion loss on top

    def test_wall_meter_1hz_quantized(self, hybrid):
        rig = PowerPackRig(hybrid)
        assert rig.read_wall(10.2) == rig.read_wall(10.9)

    def test_daq_channel_reads_rail(self, hybrid):
        rig = PowerPackRig(hybrid, channels=[NiDaqChannel("gpu-rail", "gpu")])
        assert 40.0 < rig.read_channel("gpu-rail", 5.0) < 50.0

    def test_missing_channel_kind_rejected(self):
        node, _ = rapl_node(seed=35)
        with pytest.raises(ConfigError):
            PowerPackRig(node, channels=[NiDaqChannel("gpu-rail", "gpu")])

    def test_wall_tracks_load(self):
        node, _ = rapl_node(seed=36, workload=GaussianEliminationWorkload(n=12_000),
                            workload_start=10.0)
        meter = WattsUpMeter(node)
        idle = meter.read(5.0)
        busy = meter.read(30.0)
        assert busy > idle + 20.0

    def test_series_capture(self):
        node, _ = rapl_node(seed=37)
        times, watts = WattsUpMeter(node).series(0.0, 20.0)
        assert len(times) == 21
        assert all(w > 0 for w in watts)

    def test_psu_efficiency_validated(self):
        node, _ = rapl_node(seed=38)
        with pytest.raises(ConfigError):
            WattsUpMeter(node, psu_efficiency=0.2)


class TestPositioningAgainstMoneq:
    """The paper's §III comparison, encoded."""

    def test_feature_matrix(self, hybrid):
        from repro.core.moneq.api import backends_for_node

        papi = PapiLibrary(hybrid)
        tau = TauProfiler(hybrid) if hybrid.kernel.is_loaded("msr") else None
        rig = PowerPackRig(hybrid)
        moneq_platforms = {b.platform for b in backends_for_node(hybrid)}
        # MonEQ and PAPI cover RAPL+NVML+MIC; TAU is RAPL-only (needs
        # the msr driver we did not load here); PowerPack covers none.
        assert moneq_platforms == {"RAPL", "NVML", "Xeon Phi"}
        assert set(papi.components()) == {"rapl", "nvml", "mic"}
        assert tau is None
        assert not any(rig.supports(c) for c in ("rapl", "nvml", "mic"))
