"""Parity properties of the columnar block-sampling paths.

Every vendor backend overrides :meth:`Backend.read_block` with a
vectorized implementation; the block-sampling engine's byte-identical
output guarantee rests on those overrides being **bit-identical** to
looping the scalar ``read_at`` over the same grid.  These tests pin that
equality down — including arbitrary chunking of the grid (stateful
counter backends carry ``_last`` across calls; cached model grids must
not depend on read chunking), RAPL counter-wrap boundaries, and EMON
stale-generation edges.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import testbeds
from repro.bgq.emon import GENERATION_PERIOD_S, EmonInterface
from repro.bgq.topology import NodeBoard
from repro.core.moneq.backends import (
    BgqEmonBackend,
    NvmlBackend,
    PhiIpmbBackend,
    PhiMicrasBackend,
    PhiMicsmcBackend,
    PhiSysMgmtBackend,
    RaplMsrBackend,
    RaplPerfBackend,
    RaplPowercapBackend,
)
from repro.rapl.package import SANDY_BRIDGE, CpuModel, CpuPackage
from repro.rapl.perf_event import PerfEventRapl
from repro.rapl.powercap import install_powercap_driver
from repro.sim.clock import VirtualClock
from repro.sim.rng import RngRegistry
from repro.workloads.gaussian import GaussianEliminationWorkload

#: A (fictional) furnace of a part: hot enough that the 65536 J RAPL
#: counter period is ~100 s, so wrap boundaries are cheap to reach.
HOT_MODEL = CpuModel(
    name="hot-part", idle_w=600.0, cores_w=80.0, uncore_w=40.0, pp1_w=30.0,
    dram_idle_w=100.0, dram_w=20.0, tdp_w=900.0,
)


def _scalar_rows(backend, times, clock=None):
    """The reference: loop the scalar read path over the grid.  When a
    clock is given, pin it to each sample time first (the powercap
    sysfs files render at the current clock — exactly what the session
    guarantees when its tick handler runs)."""
    out = np.zeros(len(times), dtype=[(n, "f8") for n in backend.fields()])
    for i, t in enumerate(times):
        if clock is not None:
            clock.advance_to(float(t))
        row = backend.read_at(float(t))
        for name, value in row.items():
            out[i][name] = value
    return out


def _block_rows(backend, times, splits):
    """Native blocks over the same grid, chunked at ``splits``."""
    bounds = [0] + sorted(set(splits)) + [len(times)]
    parts = [
        backend.read_block(times[a:b])
        for a, b in zip(bounds[:-1], bounds[1:])
        if b > a
    ]
    return np.concatenate(parts)


def _assert_identical(scalar, block):
    assert scalar.dtype == block.dtype
    assert scalar.tobytes() == block.tobytes()


def _grid(start, span, count, jitters):
    """A sorted grid of count points in [start, start+span), plus the
    raw jitter offsets layered near the start (may create duplicates)."""
    base = start + np.sort(np.asarray(jitters, dtype=np.float64)) * span
    extra = start + np.linspace(0.0, span, count, endpoint=False)
    return np.sort(np.concatenate([base, extra]))


# -- backend pairs ----------------------------------------------------------
# Each factory returns (scalar_backend, block_backend, clock-or-None) over
# ONE shared device, so both see identical sensor histories.  Stateful
# backends get separate instances (their _last carries are independent).


def _pair_emon(seed):
    board = NodeBoard("R00-M0-N00", RngRegistry(seed))
    emon = EmonInterface(board, VirtualClock())
    return BgqEmonBackend(emon), BgqEmonBackend(emon), None


def _pair_msr(seed):
    node, _ = testbeds.rapl_node(seed=seed)
    package = node.devices("cpu")[0]
    return RaplMsrBackend(package, "a"), RaplMsrBackend(package, "b"), None


def _pair_powercap(seed):
    node, _ = testbeds.rapl_node(seed=seed, kernel="3.13")
    install_powercap_driver(node)
    node.kernel.modprobe("intel_rapl")
    return (RaplPowercapBackend(node, label="a"),
            RaplPowercapBackend(node, label="b"), node.clock)


def _pair_perf(seed):
    node, _ = testbeds.rapl_node(seed=seed, kernel="3.14")
    perf = PerfEventRapl(node, node.devices("cpu")[0])
    return RaplPerfBackend(perf, "a"), RaplPerfBackend(perf, "b"), None


def _pair_nvml(seed):
    _, gpu, _ = testbeds.gpu_node(seed=seed)
    return NvmlBackend(gpu), NvmlBackend(gpu), None


def _pair_sysmgmt(seed):
    rig = testbeds.phi_node(seed=seed)
    return PhiSysMgmtBackend(rig.sysmgmt), PhiSysMgmtBackend(rig.sysmgmt), None


def _pair_micras(seed):
    rig = testbeds.phi_node(seed=seed)
    return PhiMicrasBackend(rig.micras), PhiMicrasBackend(rig.micras), None


def _pair_ipmb(seed):
    rig = testbeds.phi_node(seed=seed)
    return PhiIpmbBackend(rig.bmc), PhiIpmbBackend(rig.bmc), None


def _pair_micsmc(seed):
    rig = testbeds.phi_node(seed=seed)
    return PhiMicsmcBackend(rig.smc), PhiMicsmcBackend(rig.smc), None


PAIRS = {
    "emon": _pair_emon,
    "rapl_msr": _pair_msr,
    "rapl_powercap": _pair_powercap,
    "rapl_perf": _pair_perf,
    "nvml": _pair_nvml,
    "sysmgmt": _pair_sysmgmt,
    "micras": _pair_micras,
    "ipmb": _pair_ipmb,
    "micsmc": _pair_micsmc,
}


@pytest.mark.parametrize("mechanism", sorted(PAIRS))
@given(
    seed=st.integers(0, 2**16),
    start=st.floats(0.0, 10.0),
    span=st.floats(0.5, 25.0),
    count=st.integers(2, 40),
    jitters=st.lists(st.floats(0.0, 1.0), min_size=0, max_size=6),
    splits=st.lists(st.integers(0, 45), min_size=0, max_size=4),
)
@settings(max_examples=12, deadline=None)
def test_read_block_matches_scalar_loop(mechanism, seed, start, span, count,
                                        jitters, splits):
    scalar, block, clock = PAIRS[mechanism](seed)
    times = _grid(start, span, count, jitters)
    _assert_identical(
        _scalar_rows(scalar, times, clock), _block_rows(block, times, splits)
    )


@pytest.mark.parametrize("mechanism", ["rapl_msr", "rapl_powercap", "rapl_perf"])
def test_rapl_parity_across_wrap_boundaries(mechanism):
    """Deltas that span 32-bit counter wraps decode identically on the
    scalar and block paths (HOT_MODEL wraps its pkg counter every
    ~88 s; the grid crosses several wraps at several strides)."""
    def pair(seed):
        node, _ = testbeds.rapl_node(
            seed=seed, model=HOT_MODEL, kernel="3.14",
            workload=GaussianEliminationWorkload(n=12_000),
        )
        install_powercap_driver(node)
        node.kernel.modprobe("intel_rapl")
        package = node.devices("cpu")[0]
        if mechanism == "rapl_msr":
            return RaplMsrBackend(package, "a"), RaplMsrBackend(package, "b"), None
        if mechanism == "rapl_powercap":
            return (RaplPowercapBackend(node, label="a"),
                    RaplPowercapBackend(node, label="b"), node.clock)
        perf = PerfEventRapl(node, package)
        return RaplPerfBackend(perf, "a"), RaplPerfBackend(perf, "b"), None

    from repro.obs.instruments import RAPL_WRAP_CORRECTIONS

    scalar, block, clock = pair(11)
    # Coarse strides straddle whole wraps; fine strides straddle the
    # boundary itself.
    times = np.sort(np.concatenate([
        np.arange(0.0, 320.0, 13.0),
        np.array([87.0, 87.5, 88.0, 88.5, 175.0, 176.0, 264.0]),
    ]))
    before = RAPL_WRAP_CORRECTIONS.value(mechanism)
    scalar_rows = _scalar_rows(scalar, times, clock)
    after_scalar = RAPL_WRAP_CORRECTIONS.value(mechanism)
    block_rows = _block_rows(block, times, [5, 19])
    after_block = RAPL_WRAP_CORRECTIONS.value(mechanism)
    assert after_scalar > before, "grid never crossed a counter wrap"
    # The block path applies exactly as many single-wrap corrections.
    assert after_block - after_scalar == after_scalar - before
    _assert_identical(scalar_rows, block_rows)


def test_emon_parity_at_generation_edges():
    """The EMON stale-generation rule (read the generation *before* the
    last update) is razor-edged at multiples of the 280 ms generation
    period; the vectorized path lands on the same side every time."""
    scalar, block, _ = _pair_emon(29)
    k = np.arange(1, 40, dtype=np.float64)
    eps = 1e-9
    times = np.sort(np.concatenate([
        k * GENERATION_PERIOD_S - eps,
        k * GENERATION_PERIOD_S,
        k * GENERATION_PERIOD_S + eps,
    ]))
    _assert_identical(
        _scalar_rows(scalar, times), _block_rows(block, times, [17, 61])
    )


def test_base_class_fallback_matches_native():
    """A backend without a native override still satisfies the block
    contract via the scalar-loop fallback in the base class."""
    from repro.core.moneq.backend import Backend

    _, native, _ = _pair_nvml(3)
    times = np.linspace(0.0, 12.0, 50)
    fallback = Backend.read_block(native, times)
    _assert_identical(fallback, native.read_block(times))
