"""Property-based tests of cross-cutting invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.devices.load import LoadBoard
from repro.devices.power import ComponentPowerModel, LimitedSignal
from repro.host.pricing import Tariff
from repro.runtime.launcher import Launcher
from repro.runtime.ops import Compute, Recv, Send
from repro.sim.sensor import CounterSensor, SampledSensor
from repro.sim.noise import UniformNoise
from repro.sim.signals import ConstantSignal
from repro.units import HOUR
from repro.workloads.base import Component, Phase, PhasedWorkload


class TestCounterSensorInvariants:
    @given(
        power=st.floats(min_value=0.1, max_value=500.0),
        t0=st.floats(min_value=0.0, max_value=50.0),
        dt=st.floats(min_value=0.1, max_value=20.0),
    )
    @settings(max_examples=30, deadline=None)
    def test_delta_accurate_below_wrap(self, power, t0, dt):
        """Single-wrap decoding is exact (to quantization) whenever the
        read interval is below the wrap period."""
        counter = CounterSensor(ConstantSignal(power), unit=0.01,
                                width_bits=20, update_interval=0.01, dt=0.01)
        if dt >= counter.wrap_period(power):
            return  # out of scope for this property
        decoded = counter.delta(t0, t0 + dt)
        true = power * dt
        # Error bounded by update quantization + counter LSB on each end.
        bound = 2 * (power * counter.update_interval + counter.unit) + 1e-6
        assert abs(decoded - true) <= bound

    @given(st.floats(min_value=0.0, max_value=100.0))
    @settings(max_examples=25, deadline=None)
    def test_raw_is_nonnegative_and_bounded(self, t):
        counter = CounterSensor(ConstantSignal(5.0), unit=0.5, width_bits=8)
        raw = int(counter.raw(t))
        assert 0 <= raw < 256


class TestSampledSensorInvariants:
    @given(
        level=st.floats(min_value=1.0, max_value=500.0),
        width=st.floats(min_value=0.0, max_value=10.0),
        t=st.floats(min_value=0.0, max_value=1e3),
    )
    @settings(max_examples=40, deadline=None)
    def test_uniform_noise_bounded(self, level, width, t):
        sensor = SampledSensor(ConstantSignal(level), update_interval=0.06,
                               noise=UniformNoise(width), seed=9)
        assert abs(float(sensor.read(t)) - level) <= width + 1e-12


class TestPowerModelInvariants:
    @given(
        idle=st.floats(min_value=0.0, max_value=100.0),
        dyn=st.floats(min_value=0.0, max_value=300.0),
        level=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_power_within_idle_peak_envelope(self, idle, dyn, level):
        board = LoadBoard()
        board.schedule(PhasedWorkload(
            "w", [Phase("p", 10.0, {Component.CPU_CORES: level})]
        ))
        model = ComponentPowerModel(board, idle, {Component.CPU_CORES: dyn})
        p = float(model.power(5.0))
        assert idle - 1e-9 <= p <= model.peak_w + 1e-9

    @given(st.lists(st.tuples(
        st.floats(min_value=0.1, max_value=100.0),
        st.floats(min_value=1.0, max_value=1000.0),
    ), min_size=1, max_size=5))
    @settings(max_examples=30, deadline=None)
    def test_limited_signal_never_exceeds_active_cap(self, changes):
        sig = LimitedSignal(ConstantSignal(1e6))
        t = 0.0
        for dt, cap in changes:
            t += dt
            sig.set_limit(t, cap)
        probe = t + 1.0
        assert float(sig.value(probe)) <= sig.current_limit(probe) + 1e-9


class TestWorkloadInvariants:
    @given(st.lists(st.tuples(
        st.floats(min_value=0.5, max_value=20.0),
        st.floats(min_value=0.0, max_value=1.0),
    ), min_size=1, max_size=6))
    @settings(max_examples=30, deadline=None)
    def test_utilization_integral_bounded_by_duration(self, phase_specs):
        phases = [Phase(f"p{i}", d, {Component.CPU_CORES: u})
                  for i, (d, u) in enumerate(phase_specs)]
        w = PhasedWorkload("w", phases)
        t = np.linspace(-1.0, w.duration + 1.0, 400)
        u = w.utilization(Component.CPU_CORES, t)
        integral = np.trapezoid(u, t)
        # The trapezoid rule overshoots a square pulse by up to half a
        # grid step at each edge; bound by the discretization, not eps.
        dt = t[1] - t[0]
        assert -1e-9 <= integral <= w.duration + len(phase_specs) * dt


class TestTariffInvariants:
    @given(
        on_peak=st.floats(min_value=0.01, max_value=1.0),
        off_peak=st.floats(min_value=0.0, max_value=1.0),
        watts=st.floats(min_value=0.0, max_value=1e6),
    )
    @settings(max_examples=30, deadline=None)
    def test_cost_nonnegative_and_linear_in_power(self, on_peak, off_peak, watts):
        tariff = Tariff.day_night(on_peak=on_peak, off_peak=off_peak)
        times = np.linspace(0.0, 6 * HOUR, 50)
        base = tariff.cost(times, np.full_like(times, watts))
        assert base >= 0.0
        double = tariff.cost(times, np.full_like(times, 2.0 * watts))
        assert double == pytest.approx(2.0 * base, rel=1e-9)


class TestLauncherInvariants:
    @given(
        ranks=st.integers(min_value=2, max_value=6),
        rounds=st.integers(min_value=1, max_value=8),
        compute_ms=st.floats(min_value=0.0, max_value=5.0),
    )
    @settings(max_examples=20, deadline=None)
    def test_ring_program_deterministic_and_conserves_messages(
            self, ranks, rounds, compute_ms):
        def program(ctx):
            right = (ctx.rank + 1) % ctx.size
            left = (ctx.rank - 1) % ctx.size
            total = 0
            for r in range(rounds):
                yield Compute(compute_ms / 1000.0)
                yield Send(dest=right, payload=ctx.rank, tag=r)
                total += (yield Recv(source=left, tag=r))
            return total

        a = Launcher(program, size=ranks).run()
        b = Launcher(program, size=ranks).run()
        assert [r.value for r in a] == [r.value for r in b]
        assert [r.finish_time for r in a] == [r.finish_time for r in b]
        sent = sum(r.messages_sent for r in a)
        received = sum(r.messages_received for r in a)
        assert sent == received == ranks * rounds
        # Each rank accumulated its left neighbour's id every round.
        for i, result in enumerate(a):
            assert result.value == ((i - 1) % ranks) * rounds
