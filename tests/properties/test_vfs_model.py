"""Model-based property test: the VFS against a dict oracle."""

import posixpath

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import VfsError
from repro.host.vfs import VirtualFileSystem

NAMES = st.sampled_from(["a", "b", "c", "data", "log"])
SEGMENTS = st.lists(NAMES, min_size=1, max_size=3)


@st.composite
def operations(draw):
    """A random sequence of (op, path, payload) actions."""
    ops = []
    for _ in range(draw(st.integers(min_value=1, max_value=12))):
        op = draw(st.sampled_from(["mkdir", "write", "remove", "read"]))
        path = "/" + "/".join(draw(SEGMENTS))
        payload = draw(st.sampled_from(["x", "hello", ""]))
        ops.append((op, path, payload))
    return ops


class Oracle:
    """A trivial reference model: dicts of dirs and files."""

    def __init__(self):
        self.dirs = {"/"}
        self.files: dict[str, str] = {}

    def parent_ok(self, path: str) -> bool:
        return posixpath.dirname(path) in self.dirs

    def mkdir(self, path):
        if path in self.dirs or path in self.files or not self.parent_ok(path):
            return False
        self.dirs.add(path)
        return True

    def write(self, path, payload):
        if path in self.dirs or not self.parent_ok(path):
            return False
        self.files[path] = payload
        return True

    def remove(self, path):
        if path in self.files:
            del self.files[path]
            return True
        if path in self.dirs and path != "/":
            if any(d != path and d.startswith(path + "/") for d in self.dirs):
                return False
            if any(f.startswith(path + "/") for f in self.files):
                return False
            self.dirs.discard(path)
            return True
        return False

    def read(self, path):
        return self.files.get(path)


@given(operations())
@settings(max_examples=60, deadline=None)
def test_vfs_agrees_with_oracle(ops):
    vfs = VirtualFileSystem()
    oracle = Oracle()
    for op, path, payload in ops:
        if op == "mkdir":
            expected = oracle.mkdir(path)
            try:
                vfs.mkdir(path)
                actual = True
            except VfsError:
                actual = False
        elif op == "write":
            expected = oracle.write(path, payload)
            try:
                vfs.write_text(path, payload)
                actual = True
            except VfsError:
                actual = False
        elif op == "remove":
            expected = oracle.remove(path)
            try:
                vfs.remove(path)
                actual = True
            except VfsError:
                actual = False
        else:  # read
            expected_content = oracle.read(path)
            try:
                actual_content = vfs.read_text(path)
            except VfsError:
                actual_content = None
            assert actual_content == expected_content, (op, path)
            continue
        assert actual == expected, (op, path)
    # Final state agrees.
    for path, content in oracle.files.items():
        assert vfs.read_text(path) == content
