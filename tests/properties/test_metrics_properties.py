"""Property-based invariants of the ``repro.obs`` metric primitives."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ObservabilityError
from repro.obs.metrics import Counter, Histogram
from repro.obs.registry import MetricsRegistry

#: Observations that can land anywhere across the default latency range.
observations = st.floats(min_value=0.0, max_value=1.0,
                         allow_nan=False, allow_infinity=False)

#: Strictly increasing finite bucket ladders.
bucket_ladders = st.lists(
    st.floats(min_value=1e-6, max_value=100.0,
              allow_nan=False, allow_infinity=False),
    min_size=1, max_size=8, unique=True,
).map(lambda bs: tuple(sorted(bs)))


class TestHistogramInvariants:
    @given(values=st.lists(observations, max_size=60), buckets=bucket_ladders)
    @settings(max_examples=60, deadline=None)
    def test_cumulative_buckets_monotone_nondecreasing(self, values, buckets):
        h = Histogram("lat_seconds", "t", buckets=buckets)
        for v in values:
            h.observe(v)
        cum = h.child().cumulative_counts()
        assert all(a <= b for a, b in zip(cum, cum[1:]))

    @given(values=st.lists(observations, max_size=60), buckets=bucket_ladders)
    @settings(max_examples=60, deadline=None)
    def test_inf_bucket_counts_everything(self, values, buckets):
        h = Histogram("lat_seconds", "t", buckets=buckets)
        for v in values:
            h.observe(v)
        child = h.child()
        assert h.uppers[-1] == math.inf
        assert child.cumulative_counts()[-1] == child.count == len(values)
        assert child.sum == pytest.approx(sum(values))

    @given(values=st.lists(observations, min_size=1, max_size=60),
           buckets=bucket_ladders)
    @settings(max_examples=60, deadline=None)
    def test_each_observation_lands_in_every_covering_bucket(self, values,
                                                            buckets):
        h = Histogram("lat_seconds", "t", buckets=buckets)
        for v in values:
            h.observe(v)
        cum = h.child().cumulative_counts()
        for upper, got in zip(h.uppers, cum):
            assert got == sum(1 for v in values if v <= upper)


class TestCounterInvariants:
    @given(st.lists(st.floats(min_value=-10.0, max_value=10.0,
                              allow_nan=False), max_size=50))
    @settings(max_examples=60, deadline=None)
    def test_counter_never_decreases(self, amounts):
        c = Counter("n_total", "t")
        seen = [0.0]
        for amount in amounts:
            try:
                c.inc(amount)
            except ObservabilityError:
                assert amount < 0.0
            seen.append(c.value())
        assert seen == sorted(seen)
        assert c.value() == pytest.approx(
            sum(a for a in amounts if a >= 0.0))


class TestMergeInvariants:
    @given(
        per_part=st.lists(
            st.tuples(
                st.lists(st.tuples(st.sampled_from(["emon", "nvml", "ipmb"]),
                                   st.floats(min_value=0.0, max_value=5.0,
                                             allow_nan=False)),
                         max_size=10),
                st.lists(observations, max_size=10),
            ),
            min_size=1, max_size=4,
        ),
    )
    @settings(max_examples=40, deadline=None)
    def test_merged_registries_equal_sum_of_parts(self, per_part):
        parts = []
        for incs, obs_values in per_part:
            r = MetricsRegistry()
            counter = r.counter("q_total", "t", labels=("m",))
            hist = r.histogram("lat_seconds", "t", buckets=(0.1, 0.5))
            for mechanism, amount in incs:
                counter.labels(mechanism).inc(amount)
            for v in obs_values:
                hist.observe(v)
            parts.append(r)

        merged = MetricsRegistry.merged(*parts)

        for mechanism in ("emon", "nvml", "ipmb"):
            expected = sum(
                p.get("q_total").value(mechanism) for p in parts)
            assert merged.get("q_total").value(mechanism) == pytest.approx(
                expected)

        merged_hist = merged.get("lat_seconds").child()
        part_children = [p.get("lat_seconds").child() for p in parts]
        assert merged_hist.count == sum(c.count for c in part_children)
        assert merged_hist.sum == pytest.approx(
            sum(c.sum for c in part_children))
        summed = [sum(c.counts[i] for c in part_children)
                  for i in range(len(merged_hist.counts))]
        assert merged_hist.counts == summed

    @given(st.lists(st.floats(min_value=-100.0, max_value=100.0,
                              allow_nan=False),
                    min_size=1, max_size=5))
    @settings(max_examples=30, deadline=None)
    def test_merge_gauge_takes_last_registry_value(self, values):
        parts = []
        for v in values:
            r = MetricsRegistry()
            r.gauge("fill", "t").set(v)
            parts.append(r)
        merged = MetricsRegistry.merged(*parts)
        assert merged.get("fill").value() == values[-1]
