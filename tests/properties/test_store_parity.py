"""Property tests: the sharded store vs the seed's flat record list.

The seed envdb kept one flat list ordered by timestamp (timestamp ties
in ingest order) and answered range queries by bisect plus a prefix
filter.  The sharded store must be *byte-identical* to that at N=1 —
and, because per-shard runs merge by (timestamp, global ingest
sequence), at every other shard count too.  A second group checks the
capacity model: dropped records are accounted to the shard that
saturated, and only that shard loses data.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.store import Reading, ShardedStore

TABLES = ("bpm", "coolant")

locations = st.builds(
    lambda r, m, n: f"R{r:02d}-M{m}-N{n:02d}",
    st.integers(0, 5), st.integers(0, 1), st.integers(0, 3),
)
readings = st.builds(
    lambda t, loc, v: Reading(t, loc, "envdb", {"input_power_w": v}),
    st.floats(min_value=0.0, max_value=100.0),
    locations,
    st.floats(min_value=0.0, max_value=1000.0, allow_nan=False),
)
prefixes = st.sampled_from(["", "R00", "R01", "R02-M1", "R03-M0-N02", "R9"])
windows = st.tuples(
    st.floats(min_value=-10.0, max_value=110.0),
    st.floats(min_value=-10.0, max_value=110.0),
).map(lambda pair: (min(pair), max(pair)))


class FlatListReference:
    """The seed envdb's storage model: one flat list, range queries
    answered in timestamp order with ingest order breaking ties."""

    def __init__(self):
        self._records: list[Reading] = []

    def ingest(self, reading: Reading) -> None:
        self._records.append(reading)

    def range(self, t0: float, t1: float, prefix: str = "") -> list[Reading]:
        ordered = sorted(self._records, key=lambda r: r.timestamp)  # stable
        return [r for r in ordered
                if t0 <= r.timestamp <= t1
                and r.location.startswith(prefix)]

    def latest(self, prefix: str = "") -> dict[str, Reading]:
        out: dict[str, Reading] = {}
        for reading in self._records:  # ingest order; later ties win
            if not reading.location.startswith(prefix):
                continue
            newest = out.get(reading.location)
            if newest is None or reading.timestamp >= newest.timestamp:
                out[reading.location] = reading
        return out


def _stores(n_shards: int) -> tuple[ShardedStore, FlatListReference]:
    return ShardedStore(TABLES, n_shards=n_shards), FlatListReference()


class TestSeedParity:
    @given(batch=st.lists(readings, max_size=60), window=windows,
           prefix=prefixes)
    @settings(max_examples=60, deadline=None)
    def test_single_shard_range_matches_seed(self, batch, window, prefix):
        """N=1 is the seed: identical rows in identical order."""
        store, reference = _stores(1)
        for reading in batch:
            store.ingest("bpm", reading)
            reference.ingest(reading)
        t0, t1 = window
        assert store.range("bpm", t0, t1, prefix) == \
            reference.range(t0, t1, prefix)

    @given(batch=st.lists(readings, max_size=60), window=windows,
           prefix=prefixes, n_shards=st.sampled_from([2, 3, 16]))
    @settings(max_examples=60, deadline=None)
    def test_sharding_is_invisible_to_queries(self, batch, window, prefix,
                                              n_shards):
        """Any shard count returns the seed's exact ordering."""
        store, reference = _stores(n_shards)
        for reading in batch:
            store.ingest("bpm", reading)
            reference.ingest(reading)
        t0, t1 = window
        assert store.range("bpm", t0, t1, prefix) == \
            reference.range(t0, t1, prefix)

    @given(batch=st.lists(readings, max_size=60), prefix=prefixes,
           n_shards=st.sampled_from([1, 4]))
    @settings(max_examples=60, deadline=None)
    def test_latest_matches_seed(self, batch, prefix, n_shards):
        store, reference = _stores(n_shards)
        for reading in batch:
            store.ingest("bpm", reading)
            reference.ingest(reading)
        assert store.latest("bpm", prefix) == reference.latest(prefix)

    @given(batch=st.lists(readings, max_size=40), window=windows,
           prefix=prefixes)
    @settings(max_examples=40, deadline=None)
    def test_parallel_scan_matches_serial(self, batch, window, prefix):
        serial, _ = _stores(4)
        threaded = ShardedStore(TABLES, n_shards=4, parallel=True)
        for reading in batch:
            serial.ingest("bpm", reading)
            threaded.ingest("bpm", reading)
        t0, t1 = window
        assert threaded.range("bpm", t0, t1, prefix) == \
            serial.range("bpm", t0, t1, prefix)


def _batch(rack_counts: dict[str, int]) -> list[tuple[str, Reading]]:
    items = []
    for rack, count in rack_counts.items():
        for i in range(count):
            items.append(("bpm", Reading(
                float(i), f"{rack}-M0-N{i % 16:02d}", "envdb",
                {"input_power_w": 1.0},
            )))
    return items


class TestSaturationAccounting:
    @given(counts=st.lists(st.integers(0, 30), min_size=2, max_size=6),
           budget=st.integers(1, 12))
    @settings(max_examples=60, deadline=None)
    def test_drops_accounted_to_the_saturating_shard(self, counts, budget):
        """Each shard drops exactly its own overflow, independently."""
        store = ShardedStore(TABLES, n_shards=8,
                             capacity_records_per_s=float(budget))
        rack_counts = {f"R{i:02d}": count for i, count in enumerate(counts)}
        items = _batch(rack_counts)
        report = store.ingest_batch(items, interval_s=1.0)

        expected_offered: dict[int, int] = {}
        for _, reading in items:
            index = store.shard_map.shard_of(reading.location)
            expected_offered[index] = expected_offered.get(index, 0) + 1
        expected_dropped = {index: offered - budget
                            for index, offered in expected_offered.items()
                            if offered > budget}

        assert report.offered_by_shard == expected_offered
        assert report.dropped_by_shard == expected_dropped
        assert store.dropped_by_shard == {
            index: expected_dropped.get(index, 0) for index in range(8)
        }
        assert report.offered == len(items)
        assert report.dropped == sum(expected_dropped.values())
        assert store.records_ingested == report.accepted

    def test_hot_shard_overflow_leaves_others_whole(self):
        """One saturating rack costs only its own shard's tail; the
        survivors are that shard's earliest-offered records."""
        store = ShardedStore(TABLES, n_shards=8, capacity_records_per_s=4.0)
        items = _batch({"R00": 10, "R01": 3})
        report = store.ingest_batch(items, interval_s=1.0)
        hot = store.shard_map.shard_of("R00-M0-N00")
        cold = store.shard_map.shard_of("R01-M0-N00")
        assert hot != cold
        assert report.dropped_by_shard == {hot: 6}
        assert store.dropped_by_shard[cold] == 0
        kept = [r.location for r in store.range("bpm", 0.0, 100.0, "R00")]
        offered = [r.location for _, r in items[:4]]
        assert kept == offered  # the first four offered to the hot shard
        assert len(store.range("bpm", 0.0, 100.0, "R01")) == 3
