"""Property tests for the virtual SIGALRM timer."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.events import EventQueue
from repro.sim.timers import PeriodicTimer


@given(
    interval=st.floats(min_value=0.01, max_value=5.0),
    horizon=st.floats(min_value=0.1, max_value=50.0),
)
@settings(max_examples=50, deadline=None)
def test_tick_count_is_floor_of_horizon_over_interval(interval, horizon):
    """With a zero-cost handler, exactly floor(horizon/interval) ticks
    fire in (0, horizon] — the identity MonEQ's sample counts rely on."""
    queue = EventQueue()
    ticks = []
    PeriodicTimer(queue, interval, lambda t, i: ticks.append(t))
    queue.run_until(horizon)
    # Exact float characterization: ticks are the k >= 1 with
    # k*interval <= horizon under IEEE arithmetic.
    expected = sum(
        1 for k in range(1, math.ceil(horizon / interval) + 2)
        if k * interval <= horizon
    )
    assert len(ticks) == expected
    # Ticks land on the grid, strictly increasing.
    for k, t in enumerate(ticks, start=1):
        assert t == k * interval
    assert ticks == sorted(ticks)


@given(
    interval=st.floats(min_value=0.05, max_value=1.0),
    cost_fraction=st.floats(min_value=0.0, max_value=3.0),
)
@settings(max_examples=40, deadline=None)
def test_fired_plus_coalesced_covers_all_deadlines(interval, cost_fraction):
    """However long the handler runs, every nominal deadline is either
    fired or counted as coalesced — none silently vanish."""
    queue = EventQueue()
    cost = cost_fraction * interval

    def handler(t, i):
        queue.clock.advance(cost)

    timer = PeriodicTimer(queue, interval, handler)
    horizon = 20.0 * interval
    queue.run_until(horizon)
    # Deadlines with nominal time <= (last processed point) are accounted.
    accounted = timer.ticks_fired + timer.ticks_coalesced
    nominal = math.floor(queue.clock.now / interval + 1e-9)
    # The final pending deadline may still be in the future.
    assert nominal - 1 <= accounted <= nominal + 1


@given(st.floats(min_value=0.01, max_value=2.0))
@settings(max_examples=25, deadline=None)
def test_cancel_is_final(interval):
    queue = EventQueue()
    fired = []
    timer = PeriodicTimer(queue, interval, lambda t, i: fired.append(t))
    queue.run_until(3 * interval + 1e-6)
    timer.cancel()
    count = len(fired)
    queue.run_until(10 * interval)
    assert len(fired) == count
