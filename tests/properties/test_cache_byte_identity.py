"""The channel cache's byte-invisibility property.

The freshness-aware cache's whole claim is that it is *unobservable in
the data*: for every registered mechanism, any poll grid, any chunking
of that grid, and any active fault plan, a cache-on run produces
byte-identical output to a cache-off run.  This suite drives exactly
that oracle over random configurations — reusing the shared-device
backend factories of the read-block parity suite, with identical fresh
fault plans installed on each side so chaos draws replay identically.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.core.moneq.backends  # noqa: F401  (registers the fleet)
from repro.chaos.faults import FaultPlan, FaultRule
from repro.mech.cache import channel_cache, channel_cache_disabled
from repro.mech.registry import mechanisms

from tests.properties.test_read_block_parity import PAIRS, _block_rows, _grid


def test_pairs_cover_every_registered_mechanism():
    """The oracle below runs over PAIRS; this pins PAIRS to the full
    ``api.mechanisms()`` registry so a new vendor path cannot dodge
    the byte-identity property."""
    assert set(PAIRS) == set(mechanisms())


@pytest.mark.parametrize("mechanism", sorted(PAIRS))
@given(
    seed=st.integers(0, 2**16),
    start=st.floats(0.0, 5.0),
    span=st.floats(0.5, 20.0),
    count=st.integers(2, 32),
    jitters=st.lists(st.floats(0.0, 1.0), min_size=0, max_size=4),
    splits=st.lists(st.integers(0, 36), min_size=0, max_size=3),
    rate=st.floats(0.0, 1.0),
    window=st.floats(0.0, 1.0),
)
@settings(max_examples=8, deadline=None)
def test_cache_on_equals_cache_off(mechanism, seed, start, span, count,
                                   jitters, splits, rate, window):
    times = _grid(start, span, count, jitters)
    t_start = float(times[0]) + window * span  # fault window mid-grid

    def run(disabled: bool) -> bytes:
        # Fresh identical devices and a fresh identical plan per side:
        # all chaos state lives on the plan, so draws replay exactly.
        backend, _, _ = PAIRS[mechanism](seed)
        plan = FaultPlan(seed=seed ^ 0x5EED, rules=(
            FaultRule(backend.mechanism, rate=rate, t_start=t_start),
        ))
        channel_cache().clear()
        with plan.active():
            if disabled:
                with channel_cache_disabled():
                    return _block_rows(backend, times, splits).tobytes()
            return _block_rows(backend, times, splits).tobytes()

    assert run(False) == run(True)


@pytest.mark.parametrize("mechanism", sorted(PAIRS))
def test_repolling_the_same_grid_is_byte_stable(mechanism):
    """The fleet's canonical pattern: a second consumer re-polls the
    grid the first already paid for.  Whatever the hit rate, the bytes
    must match the first run exactly."""
    channel_cache().clear()
    first, second, _ = PAIRS[mechanism](0xD0)
    times = _grid(0.0, 8.0, 24, [0.1, 0.5])
    a = first.read_block(times)
    b = second.read_block(times)
    # Stateful (uncacheable) mechanisms keep per-instance carries that
    # make instances independent-but-identical; cacheable ones share
    # freshness windows.  Both must agree byte for byte.
    assert a.tobytes() == b.tobytes()
    channel_cache().clear()
