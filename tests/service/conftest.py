"""Service test fixtures: zeroed metric globals, one shared small rig."""

import pytest

import repro.obs as obs
from repro.service import ServiceClient, build_rig


@pytest.fixture(autouse=True)
def _clean_obs():
    obs.reset()
    obs.set_enabled(True)
    yield
    obs.reset()
    obs.set_enabled(True)


@pytest.fixture(scope="module")
def rig():
    """(machine, app, client) over a 4-rack, 4-shard envdb with two
    sweeps ingested — module-scoped: tests must not mutate the store."""
    return build_rig(racks=4, shards=4, sweeps=2, seed=21)


@pytest.fixture()
def client(rig):
    return ServiceClient(rig[1])
