"""The load generator at reduced scale (the smoke-bench profile)."""

import json

from repro.service import bench_service, write_bench


class TestBenchService:
    def test_reduced_profile(self):
        result = bench_service(racks=2, shards=2, requests=20,
                               sweeps=1, seed=7)
        assert result["requests"] == 20
        assert result["sustained_qps"] > 0
        assert result["speedup_vs_scalar"] > 0
        assert result["rows_returned"] > 0
        assert result["streamed_rows"] > 0
        assert result["store_records"] > 0
        assert result["racks"] == 2 and result["shards"] == 2
        assert result["wall_s"] >= result["query_wall_s"] > 0

    def test_write_bench(self, tmp_path):
        path = tmp_path / "BENCH_service.json"
        result = write_bench(str(path), racks=2, shards=2, requests=10,
                             sweeps=1, seed=7)
        committed = json.loads(path.read_text())
        assert set(committed) == {"service"}
        assert committed["service"]["requests"] == 10
        assert committed["service"]["sustained_qps"] == round(
            result["sustained_qps"], 6)
