"""The fleet-aware aggregate endpoint: federated scatter-gather over
``/v2/query/aggregate`` when the service fronts a fleet."""

import pytest

from repro.fleet import build_fleet
from repro.service import ServiceClient, service_for_fleet


@pytest.fixture(scope="module")
def fleet_rig():
    fleet = build_fleet(n_sites=3, racks=1, seed=0x5E55, poll_interval_s=60.0)
    fleet.advance_to(130.0)
    app = service_for_fleet(fleet)
    return fleet, app


@pytest.fixture()
def client(fleet_rig):
    return ServiceClient(fleet_rig[1])


def _params(**extra):
    params = {"table": "bpm", "field": "input_power_w",
              "t0": 0.0, "t1": 130.0, "window": 60.0}
    params.update(extra)
    return params


def test_aggregate_fans_out_across_sites(fleet_rig, client):
    fleet, _ = fleet_rig
    payload = client.get("/v2/query/aggregate", _params()).json()
    plan = payload["plan"]
    assert plan["federated"] is True
    assert plan["rollup"] is False
    assert plan["fan_out"] == 3
    assert plan["sites"] == sorted(fleet.sites)
    locations = {row["location"] for row in payload["rows"]}
    assert all("/" in loc for loc in locations)
    assert {loc.partition("/")[0] for loc in locations} == set(fleet.sites)


def test_rollup_merges_partials_into_fleet_rows(client):
    payload = client.get("/v2/query/aggregate", _params(rollup=1)).json()
    assert payload["plan"]["rollup"] is True
    assert payload["count"] == len(payload["rows"]) > 0
    assert all(row["location"] == "fleet" for row in payload["rows"])
    # The rollup folds the flat partials: same totals, fewer rows.
    flat = client.get("/v2/query/aggregate", _params()).json()
    assert sum(r["count"] for r in payload["rows"]) == \
        sum(r["count"] for r in flat["rows"])
    assert len(payload["rows"]) < len(flat["rows"])


def test_prefix_pins_a_single_site(client):
    payload = client.get(
        "/v2/query/aggregate", _params(prefix="site01/R00")).json()
    assert payload["plan"]["fan_out"] == 1
    assert payload["plan"]["sites"] == ["site01"]
    assert all(row["location"].startswith("site01/")
               for row in payload["rows"])


def test_unknown_site_is_a_structured_400(client):
    response = client.get("/v2/query/aggregate", _params(prefix="nosite/R"))
    assert response.status == 400
    error = response.json()["error"]
    assert error["title"] == "Bad Request"
    assert "no site 'nosite'" in error["detail"]


def test_other_query_kinds_stay_site_local(client):
    """Only the aggregate kind federates; range/latest still answer
    from the primary site's store (un-prefixed locations)."""
    payload = client.get("/v2/query/latest", {"table": "bpm"}).json()
    assert "federated" not in payload["plan"]
    assert all("/" not in row["location"] for row in payload["rows"])


def test_non_fleet_service_is_unchanged():
    from repro.service import build_rig
    _, app, _ = build_rig(racks=1, shards=1, sweeps=1, seed=3)
    payload = ServiceClient(app).get(
        "/v2/query/aggregate", _params(t1=65.0)).json()
    assert "federated" not in payload["plan"]
    assert "shards" in payload["plan"]
