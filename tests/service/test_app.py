"""End-to-end WSGI behavior: probes, planned queries, errors, the
credentialed mechanism read path (the structured 403)."""

import pytest

import repro.obs as obs
from repro.obs.instruments import SERVICE_DENIALS, SERVICE_REQUESTS
from repro.service import ServiceApp, ServiceClient
from repro.testbeds import fleet_node


class TestProbes:
    def test_index_names_the_surface(self, client):
        response = client.get("/")
        assert response.status == 200
        payload = response.json()
        from repro.api import API_VERSION
        assert payload["api_version"] == API_VERSION
        assert payload["service"] == "repro.service"
        assert "/v2/query/<kind>" in payload["endpoints"]
        assert payload["tenant"] == "hpcuser"
        assert set(payload["tables"]) == {
            "bpm", "coolant", "temperature", "fan"}

    def test_ready(self, client):
        response = client.get("/ready")
        assert response.status == 200
        payload = response.json()
        assert payload["ready"] is True
        assert all(payload["checks"].values())

    def test_health_reports_the_store(self, client):
        payload = client.get("/health").json()
        assert payload["status"] == "ok"
        assert payload["store"]["shards"] == 4
        assert payload["store"]["records"] > 0
        assert payload["store"]["dark_shards"] == []
        assert payload["mechanisms"]["registered"] >= 8
        assert payload["mechanisms"]["attached"] == []

    def test_metrics_is_a_prometheus_scrape(self, client):
        assert client.get("/ready").status == 200
        response = client.get("/metrics")
        assert response.status == 200
        assert response.headers["Content-Type"].startswith("text/plain")
        text = response.body.decode()
        assert "repro_service_requests_total" in text
        assert 'endpoint="/ready"' in text

    def test_request_metrics_use_route_labels(self, client):
        client.get("/ready")
        client.get("/v2/query/latest", {"table": "bpm"})
        assert SERVICE_REQUESTS.value("/ready", "200") == 1
        assert SERVICE_REQUESTS.value("/v2/query/<kind>", "200") == 1


class TestQueries:
    def test_tables(self, client):
        assert set(client.get("/v2/tables").json()["tables"]) == {
            "bpm", "coolant", "temperature", "fan"}

    def test_range_carries_its_plan(self, rig, client):
        machine, _, _ = rig
        payload = client.get("/v2/query/range", {
            "table": "bpm", "t0": 0.0, "t1": machine.clock.now,
            "prefix": "R00"}).json()
        assert payload["kind"] == "range"
        assert payload["plan"]["uses_cache"] is False
        assert payload["plan"]["fan_out"] == len(payload["plan"]["shards"])
        assert payload["count"] == len(payload["rows"]) > 0
        for row in payload["rows"]:
            assert row["location"].startswith("R00")
            assert 0.0 <= row["t"] <= machine.clock.now

    def test_latest_one_row_per_location(self, client):
        payload = client.get("/v2/query/latest", {"table": "bpm"}).json()
        locations = [row["location"] for row in payload["rows"]]
        assert locations == sorted(locations)
        assert len(set(locations)) == payload["count"] == 4 * 32

    def test_prefix(self, client):
        payload = client.get("/v2/query/prefix", {
            "table": "fan", "prefix": "R01"}).json()
        assert payload["count"] > 0
        assert all(r["location"].startswith("R01") for r in payload["rows"])

    def test_aggregate_uses_the_cache(self, rig, client):
        machine, _, _ = rig
        payload = client.get("/v2/query/aggregate", {
            "table": "bpm", "field": "input_power_w", "t0": 0.0,
            "t1": machine.clock.now, "window": 240.0}).json()
        assert payload["plan"]["uses_cache"] is True
        assert payload["count"] > 0
        for row in payload["rows"]:
            assert row["min"] <= row["mean"] <= row["max"]
            assert row["count"] > 0

    def test_tail_pages_cover_the_table(self, rig, client):
        machine, _, _ = rig
        total = client.get("/v2/query/range", {
            "table": "bpm", "t0": 0.0,
            "t1": machine.clock.now}).json()["count"]
        seen, cursor = 0, 0
        while True:
            page = client.get("/v2/tail", {
                "table": "bpm", "cursor": cursor, "limit": 100}).json()
            if page["count"] == 0:
                break
            seen += page["count"]
            assert page["cursor"] > cursor
            cursor = page["cursor"]
        assert seen == total


class TestErrors:
    def test_unknown_path_404(self, client):
        response = client.get("/v2/nope")
        assert response.status == 404
        assert response.json()["error"]["status"] == 404

    def test_unknown_query_kind_404(self, client):
        response = client.get("/v2/query/join", {"table": "bpm"})
        assert response.status == 404
        assert "join" in response.json()["error"]["detail"]

    def test_missing_param_400(self, client):
        response = client.get("/v2/query/range")
        assert response.status == 400
        assert "table" in response.json()["error"]["detail"]

    def test_bad_float_400(self, client):
        response = client.get("/v2/query/range", {
            "table": "bpm", "t0": "soon", "t1": 1.0})
        assert response.status == 400

    def test_prefix_requires_a_prefix(self, client):
        assert client.get("/v2/query/prefix",
                          {"table": "bpm"}).status == 400

    def test_unknown_table_is_a_config_error_400(self, client):
        response = client.get("/v2/query/latest", {"table": "voltage"})
        assert response.status == 400
        assert response.json()["error"]["title"] == "Bad Request"

    def test_negative_cursor_400(self, client):
        assert client.get("/v2/tail", {
            "table": "bpm", "cursor": -1}).status == 400

    def test_post_is_405(self, rig):
        _, app, _ = rig
        captured = {}

        def start_response(status_line, headers):
            captured["status"] = int(status_line.split(" ", 1)[0])

        body = b"".join(app({
            "REQUEST_METHOD": "POST", "PATH_INFO": "/ready",
            "QUERY_STRING": ""}, start_response))
        assert captured["status"] == 405
        assert b"GET only" in body

    def test_unknown_tenant_401(self, client):
        response = client.get("/ready", tenant="intruder")
        assert response.status == 401
        assert response.json()["error"]["origin"] == "repro.service.auth"


@pytest.fixture(scope="module")
def mech_rig(rig):
    """The shared store fronted with live fleet backends whose msr gate
    was never opened (no chmod ritual ran)."""
    _, backends = fleet_node(seed=0x403, hostname="svc-host",
                             grant_msr_access=False)
    app = ServiceApp(rig[0].envdb.store, backends=backends)
    return app, ServiceClient(app)


class TestMechEndpoints:
    def test_mech_list_carries_permissions(self, mech_rig):
        _, client = mech_rig
        payload = client.get("/v2/mech").json()
        by_name = {row["mechanism"]: row for row in payload["mechanisms"]}
        assert by_name["rapl_msr"]["permission"] == "root"
        assert by_name["rapl_msr"]["privileged"] is True
        assert by_name["rapl_msr"]["attached"] is True
        assert by_name["nvml"]["privileged"] is False

    def test_root_reads_the_gated_mechanism(self, mech_rig):
        _, client = mech_rig
        payload = client.get("/v2/mech/rapl_msr/read",
                             {"t": 10.0}, tenant="root").json()
        assert payload["tenant"] == "root"
        assert payload["values"]

    def test_unprivileged_tenant_gets_the_structured_403(self, mech_rig):
        _, client = mech_rig
        response = client.get("/v2/mech/rapl_msr/read", {"t": 10.0})
        assert response.status == 403
        error = response.json()["error"]
        assert error["origin"] == "repro.host.permissions"
        assert "/dev/cpu/0/msr" in error["detail"]
        assert "uid 1000" in error["detail"]
        assert SERVICE_DENIALS.value("hpcuser") == 1
        assert SERVICE_REQUESTS.value("/v2/mech/<name>/read", "403") == 1

    def test_chmod_ritual_opens_the_gate_live(self, mech_rig):
        app, client = mech_rig
        node, backends = fleet_node(seed=0x404, hostname="chmod-host",
                                    grant_msr_access=False)
        live = ServiceClient(ServiceApp(app.store, backends=backends))
        assert live.get("/v2/mech/rapl_msr/read", {"t": 5.0}).status == 403
        node.kernel.module("msr").grant_readonly_access()
        assert live.get("/v2/mech/rapl_msr/read", {"t": 5.0}).status == 200

    def test_ungated_mechanism_serves_everyone(self, mech_rig):
        _, client = mech_rig
        response = client.get("/v2/mech/nvml/read", {"t": 10.0})
        assert response.status == 200
        assert response.json()["tenant"] == "hpcuser"

    def test_unattached_mechanism_404(self, rig):
        _, app, _ = rig
        client = ServiceClient(app)
        response = client.get("/v2/mech/rapl_msr/read", {"t": 1.0})
        assert response.status == 404
        assert "not attached" in response.json()["error"]["detail"]

    def test_unknown_mechanism_404(self, mech_rig):
        _, client = mech_rig
        response = client.get("/v2/mech/hwmon9000/read", {"t": 1.0})
        assert response.status == 404
        assert "no mechanism" in response.json()["error"]["detail"]


class TestMetricsDump:
    def test_denials_surface_in_the_scrape(self, mech_rig):
        _, client = mech_rig
        client.get("/v2/mech/rapl_msr/read", {"t": 10.0})
        text = obs.dump()
        assert "repro_service_denials_total" in text
        assert 'tenant="hpcuser"' in text
