"""Tenant authentication: HTTP identity to POSIX credentials."""

import pytest

from repro.host.permissions import ROOT, USER, Credentials
from repro.service import Tenant, TenantRegistry, Unauthorized, default_tenants


class TestTenantRegistry:
    def test_default_tenants_are_the_papers_identities(self):
        registry = TenantRegistry()
        assert registry.names() == ["hpcuser", "root"]
        assert registry.get("root").credentials == ROOT
        assert registry.get("hpcuser").credentials == USER
        assert registry.get("root").is_privileged
        assert not registry.get("hpcuser").is_privileged

    def test_header_wins(self):
        registry = TenantRegistry()
        tenant = registry.authenticate({"HTTP_X_REPRO_TENANT": "root"})
        assert tenant.name == "root"

    def test_bearer_token_accepted(self):
        registry = TenantRegistry()
        tenant = registry.authenticate({"HTTP_AUTHORIZATION": "Bearer root"})
        assert tenant.name == "root"

    def test_anonymous_is_the_unprivileged_user(self):
        tenant = TenantRegistry().authenticate({})
        assert tenant.name == "hpcuser"
        assert not tenant.is_privileged

    def test_anonymous_can_be_disabled(self):
        registry = TenantRegistry(anonymous=None)
        with pytest.raises(Unauthorized):
            registry.authenticate({})

    def test_unknown_tenant_rejected(self):
        with pytest.raises(Unauthorized, match="intruder"):
            TenantRegistry().authenticate(
                {"HTTP_X_REPRO_TENANT": "intruder"})

    def test_custom_tenant(self):
        registry = TenantRegistry(default_tenants() + [
            Tenant("ops", Credentials(uid=2000, gid=2000, username="ops"))
        ])
        assert registry.get("ops").credentials.uid == 2000
