"""The structured error envelope and its hierarchy."""

from repro.errors import ReproError
from repro.service import (
    BadRequest,
    Forbidden,
    MethodNotAllowed,
    NotFound,
    ServiceError,
    Unauthorized,
    Unavailable,
)


class TestEnvelope:
    def test_every_error_is_a_repro_error(self):
        for cls in (ServiceError, BadRequest, Unauthorized, Forbidden,
                    NotFound, MethodNotAllowed, Unavailable):
            assert issubclass(cls, ReproError)

    def test_statuses(self):
        assert BadRequest.status == 400
        assert Unauthorized.status == 401
        assert Forbidden.status == 403
        assert NotFound.status == 404
        assert MethodNotAllowed.status == 405
        assert Unavailable.status == 503

    def test_envelope_shape(self):
        envelope = BadRequest("bad window").envelope()
        assert envelope == {
            "error": {
                "status": 400,
                "title": "Bad Request",
                "detail": "bad window",
                "origin": "repro.service",
            }
        }

    def test_forbidden_originates_in_the_posix_layer(self):
        assert Forbidden("nope").envelope()["error"]["origin"] == \
            "repro.host.permissions"

    def test_origin_override(self):
        envelope = Unavailable("dark", origin="repro.chaos").envelope()
        assert envelope["error"]["origin"] == "repro.chaos"

    def test_detail_defaults_to_title(self):
        assert NotFound().envelope()["error"]["detail"] == "Not Found"
