"""The chunked NDJSON tail, and how it degrades under chaos.

These tests build their own small rigs: the streaming pump advances
the simulated machine, so they must not share the module rig the
query tests treat as immutable.
"""

import pytest

from repro.chaos import FaultPlan, FaultRule
from repro.chaos.faults import activate, deactivate
from repro.obs.instruments import SERVICE_STREAM_GAPS, SERVICE_STREAM_ROWS
from repro.service import build_rig, dark_shards
from repro.service.loadgen import SWEEP_INTERVAL_S


@pytest.fixture()
def srig():
    """A fresh 2-rack, 2-shard rig, one sweep in (mutable per test)."""
    return build_rig(racks=2, shards=2, sweeps=1, seed=33)


def markers(lines):
    return [obj for obj in lines if "marker" in obj]


def rows(lines):
    return [obj for obj in lines if "marker" not in obj]


class TestTailStream:
    def test_open_rows_end(self, srig):
        machine, _, client = srig
        response = client.get("/v2/stream/tail", {
            "table": "bpm", "cursor": 0, "batches": 2, "page": 4096})
        assert response.status == 200
        assert response.headers["Content-Type"] == "application/x-ndjson"
        lines = list(response.lines())
        assert lines[0] == {"marker": "open", "table": "bpm",
                            "cursor": 0, "prefix": ""}
        assert lines[-1]["marker"] == "end"
        assert lines[-1]["polls"] == 2
        got = rows(lines)
        assert got
        assert all(set(r) == {"t", "location", "mechanism", "values"}
                   for r in got)
        assert SERVICE_STREAM_ROWS.value() == len(got)

    def test_cursor_now_skips_history(self, srig):
        machine, app, client = srig
        head = machine.envdb.store.ingest_cursor
        # Strip the pump: nothing new lands, so a head-anchored stream
        # sees zero rows while history stays untouched.
        app.pump = None
        lines = list(client.get("/v2/stream/tail", {
            "table": "bpm", "cursor": "now", "batches": 2}).lines())
        assert lines[0]["cursor"] == head
        assert rows(lines) == []
        assert lines[-1] == {"marker": "end", "cursor": head, "polls": 2}

    def test_pump_delivers_fresh_sweeps_mid_stream(self, srig):
        machine, _, client = srig
        head = machine.envdb.store.ingest_cursor
        # The rig's pump advances one sweep interval per poll, so a
        # stream opened at the head observes readings that did not
        # exist when it opened.
        lines = list(client.get("/v2/stream/tail", {
            "table": "bpm", "cursor": "now", "batches": 3,
            "page": 4096}).lines())
        fresh = rows(lines)
        assert fresh
        assert machine.envdb.store.ingest_cursor > head
        assert lines[-1]["cursor"] > head

    def test_prefix_filters_but_cursor_advances(self, srig):
        _, app, client = srig
        app.pump = None
        lines = list(client.get("/v2/stream/tail", {
            "table": "bpm", "cursor": 0, "batches": 1, "page": 4096,
            "prefix": "R01"}).lines())
        got = rows(lines)
        assert got
        assert all(r["location"].startswith("R01") for r in got)
        assert lines[-1]["cursor"] > len(got)

    def test_unknown_table_400(self, srig):
        _, _, client = srig
        assert client.get("/v2/stream/tail",
                          {"table": "voltage"}).status == 400


class TestChaosDegradation:
    """ISSUE satellite: a shard goes dark mid-tail — the stream emits a
    gap marker and keeps going, aggregates refuse with 503, and
    everything recovers when the plan deactivates."""

    def plan(self):
        return FaultPlan(seed=3, rules=[
            FaultRule(mechanism="store", rate=1.0)])

    def test_no_plan_means_no_dark_shards(self, srig):
        machine, _, _ = srig
        assert dark_shards(machine.envdb.store, machine.clock.now) == set()

    def test_shard_dark_mid_tail_degrades_the_stream(self, srig):
        machine, app, client = srig
        app.pump = None
        response = client.get("/v2/stream/tail", {
            "table": "bpm", "cursor": 0, "batches": 3, "page": 4096})
        lines = response.lines()
        # Consume the open marker and the first (healthy) poll's rows
        # lazily, then take every shard dark before the next poll.
        first = next(lines)
        assert first["marker"] == "open"
        collected = [first]
        plan = self.plan()
        darkened = False
        try:
            for obj in lines:
                collected.append(obj)
                if not darkened and "marker" not in obj:
                    darkened = True
                    activate(plan)
        finally:
            if darkened:
                deactivate(plan)
        kinds = [m["marker"] for m in markers(collected)]
        assert kinds[0] == "open"
        assert "gap" in kinds, "dark shards must surface as a gap marker"
        assert kinds[-1] == "end", "the stream must terminate, not hang"
        gap = next(m for m in markers(collected) if m["marker"] == "gap")
        assert gap["shards"] == [0, 1]
        assert "dark" in gap["detail"]
        assert SERVICE_STREAM_GAPS.value() == 2

    def test_gap_marker_emitted_once_while_dark(self, srig):
        _, app, client = srig
        app.pump = None
        with self.plan().active():
            lines = list(client.get("/v2/stream/tail", {
                "table": "bpm", "cursor": "now", "batches": 4}).lines())
        kinds = [m["marker"] for m in markers(lines)]
        assert kinds.count("gap") == 1, \
            "a persistently dark shard is announced once, not per poll"

    def test_aggregate_refuses_503_then_recovers(self, srig):
        machine, _, client = srig
        params = {"table": "bpm", "field": "input_power_w", "t0": 0.0,
                  "t1": machine.clock.now, "window": SWEEP_INTERVAL_S}
        assert client.get("/v2/query/aggregate", params).status == 200
        with self.plan().active():
            response = client.get("/v2/query/aggregate", params)
            assert response.status == 503
            error = response.json()["error"]
            assert error["origin"] == "repro.chaos"
            assert "dark" in error["detail"]
            # Raw range queries keep serving: dark shards degrade
            # aggregates, they do not take the service down.
            assert client.get("/v2/query/range", {
                "table": "bpm", "t0": 0.0,
                "t1": machine.clock.now}).status == 200
        assert client.get("/v2/query/aggregate", params).status == 200

    def test_health_reports_degraded_under_the_plan(self, srig):
        _, _, client = srig
        with self.plan().active():
            payload = client.get("/health").json()
            assert payload["status"] == "degraded"
            assert payload["store"]["dark_shards"] == [0, 1]
        assert client.get("/health").json()["status"] == "ok"
