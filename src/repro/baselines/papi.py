"""PAPI-like component counter API.

The shape of PAPI 5's power support: the library enumerates
*components* (rapl, nvml, mic), each exposing named events; callers
build an event set, start it, and read accumulated/instant values.
Like real PAPI, the RAPL component exposes **energy** counters (nJ)
while NVML/MIC expose instantaneous power — a unit mismatch MonEQ's
unified interface deliberately hides, which is the comparison the tests
draw.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError, ReproError
from repro.host.node import Node
from repro.rapl.domains import RaplDomain


class PapiError(ReproError):
    """PAPI-style failure (unknown event, bad state)."""


@dataclass(frozen=True)
class PapiComponent:
    """One PAPI component: name plus its event list."""

    name: str
    events: tuple[str, ...]


@dataclass
class PapiEventSet:
    """A started set of events with their start-time snapshot."""

    events: list[str]
    started_at: float | None = None
    _snapshots: dict[str, float] = field(default_factory=dict)


class PapiLibrary:
    """A PAPI instance bound to one node's devices."""

    def __init__(self, node: Node):
        self.node = node
        self._components: dict[str, PapiComponent] = {}
        if node.devices("cpu"):
            self._components["rapl"] = PapiComponent(
                "rapl",
                tuple(f"rapl:::PACKAGE_ENERGY:{d.value.upper()}" for d in RaplDomain),
            )
        kepler = [g for g in node.devices("gpu")
                  if g.model.supports_power_readings]
        if kepler:
            self._components["nvml"] = PapiComponent(
                "nvml", tuple(f"nvml:::power:device{i}" for i in range(len(kepler))),
            )
        if node.devices("micras"):
            self._components["mic"] = PapiComponent(
                "mic", ("mic:::power", "mic:::temp_die"),
            )

    # -- discovery -------------------------------------------------------------

    def components(self) -> list[str]:
        """Component names present on this node (the paper's trio when
        all hardware is installed)."""
        return sorted(self._components)

    def events(self, component: str) -> tuple[str, ...]:
        comp = self._components.get(component)
        if comp is None:
            raise PapiError(f"no PAPI component {component!r} on this node")
        return comp.events

    # -- event-set lifecycle ------------------------------------------------------

    def create_eventset(self, events: list[str]) -> PapiEventSet:
        known = {e for comp in self._components.values() for e in comp.events}
        for event in events:
            if event not in known:
                raise PapiError(f"unknown event {event!r}")
        if not events:
            raise ConfigError("event set must not be empty")
        return PapiEventSet(events=list(events))

    def start(self, eventset: PapiEventSet) -> None:
        if eventset.started_at is not None:
            raise PapiError("event set already started")
        t = self.node.clock.now
        eventset.started_at = t
        for event in eventset.events:
            eventset._snapshots[event] = self._raw_value(event, t)

    def read(self, eventset: PapiEventSet) -> dict[str, float]:
        """Counter values since start (energy events accumulate; power
        events report the instantaneous reading)."""
        if eventset.started_at is None:
            raise PapiError("event set not started")
        t = self.node.clock.now
        out = {}
        for event in eventset.events:
            value = self._raw_value(event, t)
            if event.startswith("rapl:::"):
                out[event] = value - eventset._snapshots[event]
            else:
                out[event] = value
        return out

    def stop(self, eventset: PapiEventSet) -> dict[str, float]:
        values = self.read(eventset)
        eventset.started_at = None
        eventset._snapshots.clear()
        return values

    # -- event evaluation -------------------------------------------------------

    def _raw_value(self, event: str, t: float) -> float:
        if event.startswith("rapl:::"):
            domain = RaplDomain(event.rsplit(":", 1)[1].lower())
            package = self.node.device("cpu")
            # Nanojoules, as real PAPI reports.
            return package.energy_raw(domain, t) * package.units.energy_j * 1e9
        if event.startswith("nvml:::"):
            index = int(event.rsplit("device", 1)[1])
            gpu = self.node.device("gpu", index)
            return float(gpu.power_sensor.read(t))  # watts
        if event == "mic:::power":
            return self.node.device("micras").smc.read_sensor("power_w", t)
        if event == "mic:::temp_die":
            return self.node.device("micras").smc.read_sensor("die_temp_c", t)
        raise PapiError(f"unknown event {event!r}")  # pragma: no cover
