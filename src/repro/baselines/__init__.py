"""Comparator power-profiling tools (paper §III).

Simplified functional models of the three tools the paper positions
MonEQ against:

* **PAPI** — component-based counter API; "supports collecting power
  consumption information for Intel RAPL, NVML, and the Xeon Phi" and
  "allows for monitoring at designated intervals".
* **TAU** — profiling/tracing system; "as of version 2.23, TAU also
  supports power profiling collection of RAPL through the MSR drivers.
  To the best of our knowledge this is the only system that TAU
  supports."
* **PowerPack** — external metering (WattsUp Pro on the supply, NI DAQ
  on the rails); "even as of this latest version PowerPack does not
  allow for the collection of power data from newer generation hardware
  such as Intel RAPL, NVML, or the Xeon Phi."
"""

from repro.baselines.papi import PapiComponent, PapiEventSet, PapiLibrary
from repro.baselines.tau import TauMeasurement, TauProfiler
from repro.baselines.powerpack import NiDaqChannel, PowerPackRig, WattsUpMeter

__all__ = [
    "PapiLibrary",
    "PapiComponent",
    "PapiEventSet",
    "TauProfiler",
    "TauMeasurement",
    "PowerPackRig",
    "WattsUpMeter",
    "NiDaqChannel",
]
