"""PowerPack-like external metering rig.

PowerPack "historically gathered data from hardware tools such as a
WattsUp Pro meter connected to the power supply and a NI meter
connected to the CPU/memory/motherboard" — and even PowerPack 3.0
"does not allow for the collection of power data from newer generation
hardware such as Intel RAPL, NVML, or the Xeon Phi".

The rig meters *true electrical* power (it clamps the wires), so it
sees everything the node draws — including PSU conversion loss — but at
1 Hz and with no per-domain insight into accelerators.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.host.node import Node
from repro.sim.hashrand import hash_normal


@dataclass(frozen=True)
class NiDaqChannel:
    """One NI DAQ clamp on a DC rail."""

    name: str
    kind: str          # device kind it clamps ("cpu", "gpu", "mic")
    index: int = 0


class WattsUpMeter:
    """WattsUp Pro on the node's AC supply: 1 Hz, whole node."""

    SAMPLE_INTERVAL_S = 1.0

    def __init__(self, node: Node, psu_efficiency: float = 0.88,
                 base_node_w: float = 65.0, noise_w: float = 1.5, seed: int = 0):
        if not 0.5 < psu_efficiency <= 1.0:
            raise ConfigError(f"PSU efficiency implausible: {psu_efficiency}")
        self.node = node
        self.psu_efficiency = psu_efficiency
        self.base_node_w = base_node_w
        self.noise_w = noise_w
        self.seed = seed

    def _dc_power(self, t: np.ndarray) -> np.ndarray:
        total = np.full_like(np.asarray(t, dtype=np.float64), self.base_node_w)
        for kind in ("cpu", "gpu", "mic"):
            for device in self.node.devices(kind):
                total = total + self._device_power(device, t)
        return total

    @staticmethod
    def _device_power(device, t):
        # CPU packages expose per-domain truth; boards expose true_power.
        if hasattr(device, "true_power"):
            try:
                return device.true_power(t)
            except TypeError:
                pass
        from repro.rapl.domains import RaplDomain

        return (device.true_power(RaplDomain.PKG, t)
                + device.true_power(RaplDomain.DRAM, t))

    def read(self, t: float) -> float:
        """AC watts at the wall, quantized to the 1 Hz sample grid."""
        snapped = np.floor(t / self.SAMPLE_INTERVAL_S) * self.SAMPLE_INTERVAL_S
        dc = float(self._dc_power(np.asarray(snapped)))
        noise = float(hash_normal(self.seed, int(snapped))) * self.noise_w
        return dc / self.psu_efficiency + noise

    def series(self, t0: float, t1: float) -> tuple[np.ndarray, np.ndarray]:
        """1 Hz capture over [t0, t1]."""
        times = np.arange(np.ceil(t0), np.floor(t1) + 1.0, self.SAMPLE_INTERVAL_S)
        return times, np.array([self.read(t) for t in times])


class PowerPackRig:
    """The full rig: wall meter + DC rail clamps.

    ``supports(kind)`` answers the paper's comparison: external meters
    see accelerators only as anonymous watts; software counters on
    RAPL/NVML/MIC are out of scope.
    """

    SOFTWARE_COUNTER_SUPPORT = {"rapl": False, "nvml": False, "mic": False}

    def __init__(self, node: Node, channels: list[NiDaqChannel] | None = None,
                 seed: int = 0):
        self.node = node
        self.wall = WattsUpMeter(node, seed=seed)
        self.channels = channels if channels is not None else []
        for channel in self.channels:
            if not node.devices(channel.kind):
                raise ConfigError(
                    f"channel {channel.name!r} clamps missing device kind "
                    f"{channel.kind!r}"
                )

    def supports(self, counter: str) -> bool:
        """Whether the rig can read a software power counter (it can't)."""
        return self.SOFTWARE_COUNTER_SUPPORT.get(counter, False)

    def read_channel(self, name: str, t: float) -> float:
        """DC watts on one clamped rail."""
        for channel in self.channels:
            if channel.name == name:
                device = self.node.device(channel.kind, channel.index)
                return float(WattsUpMeter._device_power(device, np.asarray(t)))
        raise ConfigError(f"no DAQ channel {name!r}")

    def read_wall(self, t: float) -> float:
        return self.wall.read(t)
