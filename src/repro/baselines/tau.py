"""TAU-like profiler with RAPL-only power support.

TAU is "mostly known for its profiling and tracing toolkit"; since
2.23 it can also sample RAPL through the MSR drivers — and only RAPL
("the only system that TAU supports for power profiling").  The model
keeps TAU's character: timer-named regions, per-region inclusive time,
and optional RAPL energy attribution per region.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError, ReproError
from repro.host.node import Node
from repro.rapl.domains import RaplDomain


class TauError(ReproError):
    """TAU misuse (unbalanced timers, unsupported hardware)."""


@dataclass
class TauMeasurement:
    """One profiled region's totals."""

    name: str
    calls: int = 0
    inclusive_s: float = 0.0
    pkg_energy_j: float = 0.0


class TauProfiler:
    """A TAU instance on one node.

    Power profiling requires a CPU with RAPL and the msr driver loaded;
    GPUs and Phis on the node are ignored — the paper's limitation,
    which the comparison tests assert.
    """

    SUPPORTED_POWER_PLATFORMS = ("rapl",)

    def __init__(self, node: Node, power_profiling: bool = True):
        self.node = node
        self.power_profiling = power_profiling
        if power_profiling:
            if not node.devices("cpu"):
                raise TauError("TAU power profiling needs a RAPL-capable CPU")
            if not node.kernel.is_loaded("msr"):
                raise TauError("TAU reads RAPL through the MSR driver; "
                               "modprobe msr first")
        self._stack: list[tuple[str, float, float]] = []
        self._profiles: dict[str, TauMeasurement] = {}

    def supports_power_on(self, kind: str) -> bool:
        """Whether TAU can collect power from a device kind."""
        return kind == "cpu"

    # -- timers -------------------------------------------------------------------

    def start(self, name: str) -> None:
        """TAU_START."""
        if not name:
            raise ConfigError("timer name must be non-empty")
        t = self.node.clock.now
        energy = self._pkg_energy(t)
        self._stack.append((name, t, energy))

    def stop(self, name: str) -> None:
        """TAU_STOP: must match the innermost open timer."""
        if not self._stack or self._stack[-1][0] != name:
            open_name = self._stack[-1][0] if self._stack else None
            raise TauError(f"TAU_STOP({name!r}) does not match open timer "
                           f"{open_name!r}")
        _, t_start, e_start = self._stack.pop()
        t = self.node.clock.now
        profile = self._profiles.setdefault(name, TauMeasurement(name))
        profile.calls += 1
        profile.inclusive_s += t - t_start
        profile.pkg_energy_j += self._pkg_energy(t) - e_start

    def profile(self, name: str) -> TauMeasurement:
        measurement = self._profiles.get(name)
        if measurement is None:
            raise TauError(f"no profile for {name!r}")
        return measurement

    def profiles(self) -> list[TauMeasurement]:
        return sorted(self._profiles.values(), key=lambda m: m.name)

    def _pkg_energy(self, t: float) -> float:
        if not self.power_profiling:
            return 0.0
        package = self.node.device("cpu")
        # TAU differences the raw counter; a single wrap is corrected
        # the same way every RAPL consumer does.
        return package.energy_raw(RaplDomain.PKG, t) * package.units.energy_j
