"""Physical units and conversions used throughout the package.

All simulation times are kept in **seconds** (float), powers in **watts**,
energies in **joules**, voltages in **volts** and currents in **amperes**.
Vendor interfaces that report in other units (NVML milliwatts, RAPL
2^-16-joule energy units, BG/Q kilothings-per-second memory speeds) convert
at the API boundary using the helpers here so the conversion is written in
exactly one place.
"""

from __future__ import annotations

import math

# ---------------------------------------------------------------------------
# Time
# ---------------------------------------------------------------------------

#: One millisecond in seconds.
MILLISECOND = 1e-3
#: One microsecond in seconds.
MICROSECOND = 1e-6
#: One minute in seconds.
MINUTE = 60.0
#: One hour in seconds.
HOUR = 3600.0


def ms(value: float) -> float:
    """Convert milliseconds to seconds."""
    return value * MILLISECOND


def us(value: float) -> float:
    """Convert microseconds to seconds."""
    return value * MICROSECOND


def to_ms(seconds: float) -> float:
    """Convert seconds to milliseconds."""
    return seconds / MILLISECOND


# ---------------------------------------------------------------------------
# Power / energy
# ---------------------------------------------------------------------------

#: Default RAPL energy-status unit: 2^-16 joule (15.3 uJ), per the Intel SDM.
RAPL_ENERGY_UNIT_J = 2.0 ** -16
#: Default RAPL power unit: 1/8 watt.
RAPL_POWER_UNIT_W = 0.125
#: Default RAPL time unit: 976 us.
RAPL_TIME_UNIT_S = 2.0 ** -10


def milliwatts_to_watts(mw: float) -> float:
    """NVML reports power in integer milliwatts."""
    return mw * 1e-3


def watts_to_milliwatts(w: float) -> int:
    """Convert watts to the integer milliwatts NVML returns."""
    return int(round(w * 1e3))


def joules(power_w: float, seconds: float) -> float:
    """Energy (J) of constant ``power_w`` over ``seconds``."""
    return power_w * seconds


def kwh(energy_j: float) -> float:
    """Convert joules to kilowatt-hours (for electricity-bill math)."""
    return energy_j / 3.6e6


# ---------------------------------------------------------------------------
# Electrical
# ---------------------------------------------------------------------------

def power_from_vi(volts: float, amperes: float) -> float:
    """DC power from a voltage/current sensor pair (BG/Q domains expose
    V and I, not W)."""
    return volts * amperes


def current_from_power(power_w: float, volts: float) -> float:
    """Current drawn at ``volts`` for a given power."""
    if volts <= 0.0:
        raise ValueError(f"voltage must be positive, got {volts}")
    return power_w / volts


# ---------------------------------------------------------------------------
# Temperatures
# ---------------------------------------------------------------------------

def c_to_k(celsius: float) -> float:
    """Celsius to kelvin."""
    return celsius + 273.15


def k_to_c(kelvin: float) -> float:
    """Kelvin to celsius."""
    return kelvin - 273.15


# ---------------------------------------------------------------------------
# Formatting
# ---------------------------------------------------------------------------

_SI_PREFIXES = [
    (1e12, "T"), (1e9, "G"), (1e6, "M"), (1e3, "k"),
    (1.0, ""), (1e-3, "m"), (1e-6, "u"), (1e-9, "n"),
]


def format_si(value: float, unit: str, digits: int = 3) -> str:
    """Format ``value`` with an SI prefix, e.g. ``format_si(0.0011, 's')
    == '1.10 ms'``."""
    if value == 0.0:
        return f"0 {unit}"
    if not math.isfinite(value):
        return f"{value} {unit}"
    magnitude = abs(value)
    for factor, prefix in _SI_PREFIXES:
        if magnitude >= factor:
            scaled = value / factor
            return f"{scaled:.{digits}g} {prefix}{unit}"
    factor, prefix = _SI_PREFIXES[-1]
    return f"{value / factor:.{digits}g} {prefix}{unit}"
