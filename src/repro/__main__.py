"""Command-line entry point.

::

    python -m repro list                # available experiments
    python -m repro table3              # regenerate one table/figure
    python -m repro all                 # regenerate everything
    python -m repro report [--jobs N] [--no-cache] [--cache-root DIR]
                                        # print EXPERIMENTS.md content
                                        # (cached by default; --jobs N
                                        # fans misses over N processes)
    python -m repro exec run <id...> [--jobs N] [--no-cache]
                                        # run experiments through the engine
    python -m repro exec cache stats    # result-cache size and contents
    python -m repro exec cache clear    # drop every cached result
    python -m repro exec bench [json_path]
                                        # engine cold/warm benches ->
                                        # BENCH_exec.json
    python -m repro obs dump [target..] # run exercises, dump metrics+spans
    python -m repro store bench [racks [shards [interval_s]]]
                                        # exercise the sharded envdb store
    python -m repro bench perf [json_path] [--check] [--smoke]
                                        # wall-clock hot-path benches ->
                                        # BENCH_moneq.json perf baseline
                                        # (--check: compare against the
                                        # committed file, exit 1 on
                                        # regression, write nothing;
                                        # --smoke alone: measure the
                                        # reduced profile 3x and write
                                        # BENCH_smoke.json medians+spread;
                                        # --check --smoke: one reduced
                                        # run vs absolute floors AND
                                        # relative floors from the
                                        # committed BENCH_smoke.json,
                                        # writes nothing)
    python -m repro fleet sweep [--smoke] [--json PATH]
                                        # federated multi-cluster sweep
                                        # + channel-cache ablation ->
                                        # BENCH_fleet.json (default:
                                        # the 10x-Mira fleet; --smoke:
                                        # 2 sites x 4 racks, no write
                                        # unless --json is given)
    python -m repro serve [--host H] [--port P] [--racks N]
                          [--shards N] [--sweeps N]
                                        # stand up a populated simulated
                                        # machine and serve the live
                                        # monitoring query service on it
    python -m repro service bench [json_path] [--racks N] [--shards N]
                                        [--requests N] [--sweeps N]
                                        # sustained mixed query load ->
                                        # BENCH_service.json
    python -m repro service smoke       # boot in-process: /ready, one
                                        # planned query, one 403 — the
                                        # CI gate, exit 1 on any miss
    python -m repro mech list           # the declared mechanism registry
                                        # (channel, latency, min interval,
                                        # capabilities per vendor path)
    python -m repro chaos list          # the chaos scenario catalog
    python -m repro chaos run <scenario> [--seed N] [--duration S]
                                        [--rate R]
                                        # run one fault-injection
                                        # scenario over the fleet; the
                                        # summary line is byte-stable
                                        # for a given (scenario, seed)
                                        # (pack-backed: the catalog is
                                        # the chaos-kind manifests)
    python -m repro pack list           # the scenario-pack catalog
    python -m repro pack show <name> [--json]
                                        # one validated manifest
    python -m repro pack run <name...> [--smoke] [--json] [--jobs N]
                          [--no-cache] [--cache-root DIR] [--seed N]
                          [--duration S] [--rate R]
                                        # compile manifests onto the
                                        # exec engine and run them
                                        # (--smoke: the fixed CI pair;
                                        # --json: payloads as JSON)
"""

from __future__ import annotations

import sys

from repro.experiments import ALL_EXPERIMENTS
from repro.experiments import report as report_module


def _obs_command(args: list[str]) -> int:
    """``repro obs dump [target ...]`` — run the named exercises (every
    one of them by default) and print the Prometheus exposition plus the
    finished spans."""
    import repro.obs as obs
    from repro.obs import demo

    if not args or args[0] != "dump":
        print("usage: python -m repro obs dump [target ...]\n"
              f"targets: {' '.join(demo.EXERCISES)} (default: all)",
              file=sys.stderr)
        return 2
    targets = args[1:] or list(demo.EXERCISES)
    unknown = [t for t in targets if t not in demo.EXERCISES]
    if unknown:
        print(f"unknown obs target(s) {unknown}; "
              f"have {sorted(demo.EXERCISES)}", file=sys.stderr)
        return 2
    for target in targets:
        summary = demo.EXERCISES[target]()
        detail = ", ".join(f"{k}={v:g}" for k, v in summary.items())
        print(f"# exercised {target}: {detail}")
    print()
    print(obs.dump())
    spans = obs.get_tracer().render()
    if spans:
        print("# spans")
        print(spans)
    return 0


def _store_command(args: list[str]) -> int:
    """``repro store bench [racks [shards [interval_s]]]`` — stand up a
    sharded envdb, run polling sweeps, exercise every query kind, and
    print the paper-vs-store numbers plus the ``repro_store_*`` metric
    families from the existing exporter."""
    import time

    import repro.obs as obs
    from repro.analysis.tables import format_aggregates, format_table
    from repro.bgq.machine import BgqMachine
    from repro.sim.rng import RngRegistry

    if not args or args[0] != "bench":
        print("usage: python -m repro store bench [racks [shards [interval_s]]]",
              file=sys.stderr)
        return 2
    try:
        racks = int(args[1]) if len(args) > 1 else 4
        shards = int(args[2]) if len(args) > 2 else 4
        interval_s = float(args[3]) if len(args) > 3 else 240.0
    except ValueError:
        print("store bench arguments must be numeric: "
              "[racks [shards [interval_s]]]", file=sys.stderr)
        return 2

    sweeps = 6
    machine = BgqMachine(racks=racks, rng=RngRegistry(0x5708E),
                         poll_interval_s=interval_s, envdb_shards=shards)
    machine.advance_to(interval_s * sweeps)
    envdb = machine.envdb
    store = envdb.store
    window = interval_s * sweeps

    repeats = 20
    t_start = time.perf_counter()
    for _ in range(repeats):
        aggs = envdb.aggregate("bpm", "input_power_w", 0.0, window,
                               window, "R00")
    cached_s = (time.perf_counter() - t_start) / repeats
    rows = store.range("bpm", 0.0, window, "R00-M0-N00")
    latest = store.latest("bpm", "R00")

    print(format_table(
        ("metric", "value"),
        [
            ("racks / shards", f"{racks} / {store.n_shards}"),
            ("poll interval", f"{interval_s:.0f} s x {sweeps} sweeps"),
            ("records ingested", str(store.records_ingested)),
            ("records dropped", str(store.dropped_records)),
            ("batches flushed", str(store.batches_flushed)),
            ("hottest-shard load", f"{envdb.capacity_fraction():.2f}x"),
            ("range rows (one board)", str(len(rows))),
            ("latest locations (R00)", str(len(latest))),
            ("aggregate query (cached)", f"{cached_s * 1e3:.3f} ms"),
        ],
        title=f"[repro store bench] sharded envdb, plan="
              f"{store.plan('aggregate', 'bpm', 'R00-M0').fan_out} shard(s)",
    ))
    print()
    print(format_aggregates(aggs[:8], title="[aggregates] R00, first rows"))
    print()
    store_lines = [line for line in obs.dump().splitlines()
                   if "repro_store" in line]
    print("\n".join(store_lines))
    return 0


def _bench_command(args: list[str]) -> int:
    """``repro bench perf [json_path] [--check] [--smoke]`` — run the
    hot-path wall-clock benches (block-sampling engine, heap scheduler,
    full session).  Without flags, write the full-profile trajectory
    file future PRs regress against; ``--smoke`` alone measures the
    reduced profile three times and writes the smoke trajectory
    (medians plus runner-variance spread); ``--check`` compares fresh
    speedups to the committed file(s) and exits 1 on regression
    without rewriting anything."""
    from repro import perfbench
    from repro.analysis.tables import format_table

    if not args or args[0] != "perf":
        print("usage: python -m repro bench perf [json_path] "
              "[--check] [--smoke]", file=sys.stderr)
        return 2
    checking = "--check" in args
    smoke = "--smoke" in args
    positional = [a for a in args[1:] if a not in ("--check", "--smoke")]

    if checking:
        json_path = positional[0] if positional else "BENCH_moneq.json"
        failures, results = perfbench.check(json_path, smoke=smoke)
    elif smoke:
        # Smoke sizes never touch the full-profile trajectory file —
        # they get their own, medians over repetitions plus spread.
        json_path = (positional[0] if positional
                     else perfbench.SMOKE_TRAJECTORY_PATH)
        _, results = perfbench.run_smoke_trajectory(json_path)
        failures = []
    else:
        json_path = positional[0] if positional else "BENCH_moneq.json"
        failures, results = [], perfbench.run(json_path)
    rows = []
    for name, r in results.items():
        detail = ", ".join(
            f"{k}={v:g}" if isinstance(v, (int, float)) else f"{k}={v}"
            for k, v in r.items()
            if k not in ("wall_s", "speedup_vs_scalar")
        )
        rows.append((name, f"{r['wall_s'] * 1e3:.1f} ms",
                     f"{r['speedup_vs_scalar']:.1f}x", detail))
    if checking and smoke:
        title = ("[repro bench perf] smoke profile vs absolute + "
                 "relative floors")
    elif checking:
        title = f"[repro bench perf] checked against {json_path}"
    elif smoke:
        title = f"[repro bench perf] smoke x3 -> wrote {json_path}"
    else:
        title = f"[repro bench perf] wrote {json_path}"
    print(format_table(("bench", "wall", "vs scalar", "detail"), rows,
                       title=title))
    if not results["moneq_block"]["byte_identical"]:
        print("FAIL: block-sampled output diverged from scalar",
              file=sys.stderr)
        return 1
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    return 0


def _fleet_command(args: list[str]) -> int:
    """Deprecated alias: ``repro fleet sweep`` now runs as the
    ``fleet-sweep`` scenario pack; the command itself lives in
    :func:`repro.packs.shims.fleet_command` (same flags, same stdout
    bytes, same exit codes)."""
    from repro._compat import deprecated_alias
    from repro.packs import shims

    command = deprecated_alias(
        "repro.__main__._fleet_command",
        "repro.packs.shims.fleet_command",
        shims.fleet_command,
    )
    return command(args)


def _int_flags(args: list[str], flags: dict[str, object]
               ) -> tuple[dict[str, object], list[str]]:
    """Parse ``--name value`` pairs out of ``args`` into ``flags``
    (values coerced to the default's type); returns the rest."""
    positional: list[str] = []
    i = 0
    while i < len(args):
        arg = args[i]
        key = arg[2:].replace("-", "_") if arg.startswith("--") else None
        if key in flags:
            if i + 1 >= len(args):
                raise ValueError(f"{arg} needs a value")
            kind = type(flags[key])
            flags[key] = kind(args[i + 1])
            i += 2
        else:
            positional.append(arg)
            i += 1
    return flags, positional


def _serve_command(args: list[str]) -> int:
    """``repro serve`` — build the populated 64-shard rig (reduced with
    ``--racks/--shards/--sweeps``) and serve it under wsgiref."""
    from repro.service import build_rig, serve

    try:
        flags, extra = _int_flags(args, {
            "host": "127.0.0.1", "port": 8340,
            "racks": 64, "shards": 64, "sweeps": 2,
        })
    except ValueError as exc:
        print(f"serve: {exc}", file=sys.stderr)
        return 2
    if extra:
        print(f"serve: unexpected argument(s) {extra}", file=sys.stderr)
        return 2
    machine, app, _ = build_rig(racks=flags["racks"], shards=flags["shards"],
                                sweeps=flags["sweeps"])
    print(f"# rig: {flags['racks']} racks over "
          f"{machine.envdb.store.n_shards} shards, "
          f"{machine.envdb.store.records_ingested} records ingested")
    serve(app, host=flags["host"], port=flags["port"])
    return 0


def _service_command(args: list[str]) -> int:
    """``repro service bench|smoke`` — the load generator (writes
    ``BENCH_service.json``) or the boot-and-probe CI gate."""
    from repro.analysis.tables import format_table

    usage = ("usage: python -m repro service bench [json_path] [--racks N] "
             "[--shards N] [--requests N] [--sweeps N]\n"
             "       python -m repro service smoke")
    if not args:
        print(usage, file=sys.stderr)
        return 2

    if args[0] == "bench":
        from repro.service import write_bench

        try:
            flags, positional = _int_flags(args[1:], {
                "racks": 64, "shards": 64, "requests": 400, "sweeps": 16,
            })
        except ValueError as exc:
            print(f"service bench: {exc}", file=sys.stderr)
            return 2
        json_path = positional[0] if positional else "BENCH_service.json"
        result = write_bench(json_path, racks=flags["racks"],
                             shards=flags["shards"],
                             requests=flags["requests"],
                             sweeps=flags["sweeps"])
        rows = [(key, f"{value:g}" if isinstance(value, float) else str(value))
                for key, value in result.items()]
        print(format_table(("metric", "value"), rows,
                           title=f"[repro service bench] wrote {json_path}"))
        return 0

    if args[0] == "smoke":
        from repro.service import ServiceApp, ServiceClient, build_rig
        from repro.testbeds import fleet_node

        machine, app, client = build_rig(racks=4, shards=4, sweeps=2)
        _, backends = fleet_node(seed=0x510, hostname="smoke-host",
                                 grant_msr_access=False)
        gated = ServiceClient(ServiceApp(machine.envdb.store,
                                         backends=backends))
        checks = []
        ready = client.get("/ready")
        checks.append(("/ready is 200", ready.status == 200))
        query = client.get("/v2/query/latest", {"table": "bpm"})
        payload = query.json() if query.status == 200 else {}
        checks.append(("planned query serves rows",
                       query.status == 200 and payload.get("count", 0) > 0
                       and payload.get("plan", {}).get("fan_out", 0) >= 1))
        denied = gated.get("/v2/mech/rapl_msr/read", {"t": 10.0})
        origin = (denied.json().get("error", {}).get("origin", "")
                  if denied.status == 403 else "")
        checks.append(("unprivileged msr read is a structured 403",
                       denied.status == 403
                       and origin == "repro.host.permissions"))
        stream = client.get("/v2/stream/tail", {
            "table": "bpm", "cursor": 0, "batches": 1})
        lines = list(stream.lines())
        checks.append(("streaming tail opens and ends",
                       stream.status == 200
                       and lines[0].get("marker") == "open"
                       and lines[-1].get("marker") == "end"))
        for label, ok in checks:
            print(f"{'ok' if ok else 'FAIL'} - {label}")
        return 0 if all(ok for _, ok in checks) else 1

    print(usage, file=sys.stderr)
    return 2


def _mech_command(args: list[str]) -> int:
    """``repro mech list`` — print the declared mechanism registry: one
    row per vendor path with its channel, charged latency per read, the
    freshness-derived minimum interval, and the capability count."""
    import repro.core.moneq.backends  # noqa: F401  (registers the fleet)
    from repro.analysis.tables import format_table
    from repro.mech import mechanisms

    if not args or args[0] != "list":
        print("usage: python -m repro mech list", file=sys.stderr)
        return 2
    rows = []
    for spec in mechanisms().values():
        rows.append((
            spec.name,
            spec.platform,
            spec.channel.name,
            f"{spec.read_latency_s * 1e3:.2f} ms"
            + (f" ({spec.queries_per_read}q)"
               if spec.queries_per_read > 1 else ""),
            f"{spec.min_interval_s * 1e3:.0f} ms",
            str(spec.capability.capability_count),
            str(len(spec.fields)),
        ))
    print(format_table(
        ("mechanism", "platform", "channel", "latency/read",
         "min interval", "caps", "fields"),
        rows,
        title=f"[repro mech list] {len(rows)} declared vendor paths",
    ))
    return 0


def _chaos_command(args: list[str]) -> int:
    """Deprecated alias: ``repro chaos`` now dispatches the chaos-kind
    scenario packs; the command itself lives in
    :func:`repro.packs.shims.chaos_command` (same flags, same stdout
    bytes, same exit codes)."""
    from repro._compat import deprecated_alias
    from repro.packs import shims

    command = deprecated_alias(
        "repro.__main__._chaos_command",
        "repro.packs.shims.chaos_command",
        shims.chaos_command,
    )
    return command(args)


def _pack_command(args: list[str]) -> int:
    """``repro pack list|show|run`` — the declarative scenario packs:
    inspect the ``packs/`` catalog, show one validated manifest, or
    compile manifests onto the exec engine and run them."""
    import json

    from repro import packs
    from repro.analysis.tables import format_table
    from repro.errors import ExperimentExecutionError, PackError
    from repro.experiments.report import render_block

    usage = ("usage: python -m repro pack list\n"
             "       python -m repro pack show <name> [--json]\n"
             "       python -m repro pack run <name...> [--smoke] [--json]\n"
             "           [--jobs N] [--no-cache] [--cache-root DIR]\n"
             "           [--seed N] [--duration S] [--rate R]")
    if not args:
        print(usage, file=sys.stderr)
        return 2

    if args[0] == "list":
        try:
            catalog = packs.all_packs()
        except PackError as exc:
            print(f"pack list: {exc}", file=sys.stderr)
            return 1
        rows = []
        for spec in catalog.values():
            if spec.kind == "experiments":
                detail = f"{len(spec.experiments)} experiments"
            elif spec.kind == "fleet":
                detail = "smoke sweep" if spec.fleet.smoke else "full sweep"
            else:
                detail = (f"{spec.testbed.kind} / "
                          f"{','.join(spec.mechanisms) or 'all'}")
            rows.append((spec.name, spec.kind, detail, spec.summary))
        print(format_table(
            ("pack", "kind", "detail", "summary"), rows,
            title=f"[repro pack list] {len(rows)} packs in "
                  f"{packs.packs_dir()}"))
        return 0

    if args[0] == "show":
        as_json = "--json" in args
        names = [a for a in args[1:] if a != "--json"]
        if len(names) != 1:
            print("pack show: name exactly one pack", file=sys.stderr)
            return 2
        try:
            raw = packs.run._resolve(names[0])
            spec = packs.scenario_from_mapping(raw, source=names[0])
        except PackError as exc:
            print(f"pack show: {exc}", file=sys.stderr)
            return 2
        if as_json:
            print(json.dumps(raw, indent=2, sort_keys=True))
            return 0
        rows = [
            ("kind", spec.kind),
            ("summary", spec.summary),
            ("seed", str(spec.seed)),
            ("duration", f"{spec.duration_s:g} s"),
        ]
        if spec.kind in ("session", "chaos"):
            rows.append(("testbed", spec.testbed.kind))
            rows.append(("mechanisms",
                         ", ".join(spec.mechanisms) or "(testbed order)"))
            rows.append(("interval",
                         f"{spec.interval_s:g} s" if spec.interval_s
                         is not None else "(mechanism floor)"))
            if spec.workload is not None:
                rows.append(("workload",
                             f"{spec.workload.name}, "
                             f"{len(spec.workload.phases)} phases"))
            if spec.faults is not None:
                rows.append(("fault rules", str(len(spec.faults.rules))))
        elif spec.kind == "experiments":
            rows.append(("experiments", ", ".join(spec.experiments)))
        elif spec.kind == "fleet":
            rows.append(("profile",
                         "smoke" if spec.fleet.smoke else "full"))
        print(format_table(("field", "value"), rows,
                           title=f"[repro pack show] {spec.name}"))
        return 0

    if args[0] == "run":
        as_json = "--json" in args
        smoke = "--smoke" in args
        rest = [a for a in args[1:] if a not in ("--json", "--smoke")]
        overrides = {"seed": None, "duration": None, "rate": None}
        try:
            jobs, cache, cache_root, rest = _report_flags(rest)
            names: list[str] = []
            i = 0
            while i < len(rest):
                arg = rest[i]
                key = arg[2:] if arg.startswith("--") else None
                if key in overrides:
                    if i + 1 >= len(rest):
                        raise ValueError(f"{arg} needs a value")
                    overrides[key] = (int(rest[i + 1]) if key == "seed"
                                      else float(rest[i + 1]))
                    i += 2
                else:
                    names.append(arg)
                    i += 1
        except ValueError as exc:
            print(f"pack run: {exc}", file=sys.stderr)
            return 2
        if smoke:
            if names:
                print("pack run: --smoke runs the fixed CI pair; "
                      "drop the pack names", file=sys.stderr)
                return 2
            names = list(packs.SMOKE_PACKS)
        if not names:
            print("pack run: name at least one pack "
                  "(see 'python -m repro pack list')", file=sys.stderr)
            return 2
        documents = []
        for name in names:
            try:
                result = packs.run_pack(
                    name, jobs=jobs, cache=cache, cache_root=cache_root,
                    seed=overrides["seed"],
                    duration_s=overrides["duration"],
                    rate=overrides["rate"])
            except PackError as exc:
                print(f"pack run: {exc}", file=sys.stderr)
                return 2
            except ExperimentExecutionError as exc:
                print(f"pack run failed: {exc}", file=sys.stderr)
                return 1
            if as_json:
                documents.append({
                    "pack": result.spec.name,
                    "kind": result.spec.kind,
                    "exp_id": result.exp_id or None,
                    "payload": result.payloads.get(result.exp_id),
                    "blocks": {exp_id: render_block(block)
                               for exp_id, block in result.blocks.items()},
                })
                continue
            for block in result.blocks.values():
                print("\n".join(render_block(block)))
            stats = result.stats
            print(f"# pack {result.spec.name}: {stats.executed} executed, "
                  f"{stats.cache_hits} cached, {stats.wall_s * 1e3:.1f} ms "
                  f"(jobs={jobs})")
        if as_json:
            print(json.dumps(documents, indent=2, sort_keys=True))
        return 0

    print(usage, file=sys.stderr)
    return 2


def _report_flags(args: list[str]) -> tuple[int, bool, str | None, list[str]]:
    """Parse the shared ``--jobs N --no-cache --cache-root DIR`` flags;
    returns ``(jobs, cache, cache_root, positional)``."""
    jobs, cache, cache_root = 1, True, None
    positional: list[str] = []
    i = 0
    while i < len(args):
        arg = args[i]
        if arg == "--jobs":
            if i + 1 >= len(args):
                raise ValueError("--jobs needs a value")
            jobs = int(args[i + 1])
            i += 2
        elif arg.startswith("--jobs="):
            jobs = int(arg.split("=", 1)[1])
            i += 1
        elif arg == "--no-cache":
            cache = False
            i += 1
        elif arg == "--cache-root":
            if i + 1 >= len(args):
                raise ValueError("--cache-root needs a value")
            cache_root = args[i + 1]
            i += 2
        elif arg.startswith("--cache-root="):
            cache_root = arg.split("=", 1)[1]
            i += 1
        else:
            positional.append(arg)
            i += 1
    return jobs, cache, cache_root, positional


def _exec_command(args: list[str]) -> int:
    """``repro exec run|cache|bench`` — drive the experiment engine
    directly: run named experiments through the pool and cache, inspect
    or clear the content-addressed result cache, or time the engine's
    cold/warm paths into ``BENCH_exec.json``."""
    from repro.analysis.tables import format_table
    from repro.errors import ExperimentExecutionError
    from repro.exec import Engine, ResultCache

    usage = ("usage: python -m repro exec run <id...> [--jobs N] [--no-cache]\n"
             "       python -m repro exec cache stats|clear\n"
             "       python -m repro exec bench [json_path]")
    if not args:
        print(usage, file=sys.stderr)
        return 2

    if args[0] == "run":
        try:
            jobs, cache, cache_root, exp_ids = _report_flags(args[1:])
        except ValueError as exc:
            print(f"exec run: {exc}", file=sys.stderr)
            return 2
        if not exp_ids:
            print("exec run: name at least one experiment "
                  "(see 'python -m repro list')", file=sys.stderr)
            return 2
        engine = Engine(jobs=jobs, cache=cache, cache_root=cache_root)
        try:
            blocks = engine.run(exp_ids)
        except ExperimentExecutionError as exc:
            print(f"exec run failed: {exc}", file=sys.stderr)
            return 1
        from repro.experiments.report import render_block
        for block in blocks.values():
            print("\n".join(render_block(block)))
        stats = engine.stats
        print(f"# {stats.executed} executed, {stats.cache_hits} cached, "
              f"{stats.retries} retried, {stats.wall_s * 1e3:.1f} ms "
              f"(jobs={jobs})")
        return 0

    if args[0] == "cache":
        cache = ResultCache()
        if len(args) > 1 and args[1] == "clear":
            removed = cache.clear()
            print(f"removed {removed} cached result(s) from {cache.root}")
            return 0
        if len(args) > 1 and args[1] == "stats":
            stats = cache.stats()
            rows = [(exp_id, str(n)) for exp_id, n
                    in sorted(stats.experiments.items())]
            rows.append(("total entries", str(stats.entries)))
            rows.append(("total bytes", str(stats.total_bytes)))
            print(format_table(
                ("experiment", "entries"), rows,
                title=f"[repro exec cache] {stats.root}"))
            return 0
        print("usage: python -m repro exec cache stats|clear",
              file=sys.stderr)
        return 2

    if args[0] == "bench":
        from repro.exec import bench as exec_bench
        json_path = args[1] if len(args) > 1 else "BENCH_exec.json"
        results = exec_bench.run(json_path)
        rows = [(name, f"{r['wall_s'] * 1e3:.1f} ms",
                 ", ".join(f"{k}={v:g}" if isinstance(v, (int, float))
                           else f"{k}={v}"
                           for k, v in r.items() if k != "wall_s"))
                for name, r in results["runs"].items()]
        rows.append(("byte_identical", str(results["byte_identical"]), ""))
        rows.append(("cpus", str(results["cpus"]), ""))
        print(format_table(("run", "wall", "detail"), rows,
                           title=f"[repro exec bench] wrote {json_path}"))
        return 0 if results["byte_identical"] else 1

    print(usage, file=sys.stderr)
    return 2


def main(argv: list[str] | None = None) -> int:
    args = sys.argv[1:] if argv is None else argv
    if not args or args[0] in ("-h", "--help", "help"):
        print(__doc__.strip())
        return 0
    command = args[0]
    if command == "list":
        for name in ALL_EXPERIMENTS:
            print(name)
        return 0
    if command == "obs":
        return _obs_command(args[1:])
    if command == "store":
        return _store_command(args[1:])
    if command == "bench":
        return _bench_command(args[1:])
    if command == "fleet":
        return _fleet_command(args[1:])
    if command == "serve":
        return _serve_command(args[1:])
    if command == "service":
        return _service_command(args[1:])
    if command == "mech":
        return _mech_command(args[1:])
    if command == "chaos":
        return _chaos_command(args[1:])
    if command == "pack":
        return _pack_command(args[1:])
    if command == "exec":
        return _exec_command(args[1:])
    if command == "report":
        try:
            jobs, cache, cache_root, extra = _report_flags(args[1:])
        except ValueError as exc:
            print(f"report: {exc}", file=sys.stderr)
            return 2
        if extra:
            print(f"report: unexpected argument(s) {extra}", file=sys.stderr)
            return 2
        report_module.main(jobs=jobs, cache=cache, cache_root=cache_root)
        return 0
    if command == "all":
        for name, module in ALL_EXPERIMENTS.items():
            print(f"==== {name} " + "=" * (60 - len(name)))
            module.main()
            print()
        return 0
    module = ALL_EXPERIMENTS.get(command)
    if module is None:
        print(f"unknown experiment {command!r}; try 'python -m repro list'",
              file=sys.stderr)
        return 2
    module.main()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
