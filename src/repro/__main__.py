"""Command-line entry point.

::

    python -m repro list                # available experiments
    python -m repro table3              # regenerate one table/figure
    python -m repro all                 # regenerate everything
    python -m repro report              # print EXPERIMENTS.md content
"""

from __future__ import annotations

import sys

from repro.experiments import ALL_EXPERIMENTS
from repro.experiments import report as report_module


def main(argv: list[str] | None = None) -> int:
    args = sys.argv[1:] if argv is None else argv
    if not args or args[0] in ("-h", "--help", "help"):
        print(__doc__.strip())
        return 0
    command = args[0]
    if command == "list":
        for name in ALL_EXPERIMENTS:
            print(name)
        return 0
    if command == "report":
        report_module.main()
        return 0
    if command == "all":
        for name, module in ALL_EXPERIMENTS.items():
            print(f"==== {name} " + "=" * (60 - len(name)))
            module.main()
            print()
        return 0
    module = ALL_EXPERIMENTS.get(command)
    if module is None:
        print(f"unknown experiment {command!r}; try 'python -m repro list'",
              file=sys.stderr)
        return 2
    module.main()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
