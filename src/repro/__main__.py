"""Command-line entry point.

::

    python -m repro list                # available experiments
    python -m repro table3              # regenerate one table/figure
    python -m repro all                 # regenerate everything
    python -m repro report              # print EXPERIMENTS.md content
    python -m repro obs dump [target..] # run exercises, dump metrics+spans
    python -m repro store bench [racks [shards [interval_s]]]
                                        # exercise the sharded envdb store
    python -m repro bench perf [json_path]
                                        # wall-clock hot-path benches ->
                                        # BENCH_moneq.json perf baseline
"""

from __future__ import annotations

import sys

from repro.experiments import ALL_EXPERIMENTS
from repro.experiments import report as report_module


def _obs_command(args: list[str]) -> int:
    """``repro obs dump [target ...]`` — run the named exercises (every
    one of them by default) and print the Prometheus exposition plus the
    finished spans."""
    import repro.obs as obs
    from repro.obs import demo

    if not args or args[0] != "dump":
        print("usage: python -m repro obs dump [target ...]\n"
              f"targets: {' '.join(demo.EXERCISES)} (default: all)",
              file=sys.stderr)
        return 2
    targets = args[1:] or list(demo.EXERCISES)
    unknown = [t for t in targets if t not in demo.EXERCISES]
    if unknown:
        print(f"unknown obs target(s) {unknown}; "
              f"have {sorted(demo.EXERCISES)}", file=sys.stderr)
        return 2
    for target in targets:
        summary = demo.EXERCISES[target]()
        detail = ", ".join(f"{k}={v:g}" for k, v in summary.items())
        print(f"# exercised {target}: {detail}")
    print()
    print(obs.dump())
    spans = obs.get_tracer().render()
    if spans:
        print("# spans")
        print(spans)
    return 0


def _store_command(args: list[str]) -> int:
    """``repro store bench [racks [shards [interval_s]]]`` — stand up a
    sharded envdb, run polling sweeps, exercise every query kind, and
    print the paper-vs-store numbers plus the ``repro_store_*`` metric
    families from the existing exporter."""
    import time

    import repro.obs as obs
    from repro.analysis.tables import format_aggregates, format_table
    from repro.bgq.machine import BgqMachine
    from repro.sim.rng import RngRegistry

    if not args or args[0] != "bench":
        print("usage: python -m repro store bench [racks [shards [interval_s]]]",
              file=sys.stderr)
        return 2
    try:
        racks = int(args[1]) if len(args) > 1 else 4
        shards = int(args[2]) if len(args) > 2 else 4
        interval_s = float(args[3]) if len(args) > 3 else 240.0
    except ValueError:
        print("store bench arguments must be numeric: "
              "[racks [shards [interval_s]]]", file=sys.stderr)
        return 2

    sweeps = 6
    machine = BgqMachine(racks=racks, rng=RngRegistry(0x5708E),
                         poll_interval_s=interval_s, envdb_shards=shards)
    machine.advance_to(interval_s * sweeps)
    envdb = machine.envdb
    store = envdb.store
    window = interval_s * sweeps

    repeats = 20
    t_start = time.perf_counter()
    for _ in range(repeats):
        aggs = envdb.aggregate("bpm", "input_power_w", 0.0, window,
                               window, "R00")
    cached_s = (time.perf_counter() - t_start) / repeats
    rows = store.range("bpm", 0.0, window, "R00-M0-N00")
    latest = store.latest("bpm", "R00")

    print(format_table(
        ("metric", "value"),
        [
            ("racks / shards", f"{racks} / {store.n_shards}"),
            ("poll interval", f"{interval_s:.0f} s x {sweeps} sweeps"),
            ("records ingested", str(store.records_ingested)),
            ("records dropped", str(store.dropped_records)),
            ("batches flushed", str(store.batches_flushed)),
            ("hottest-shard load", f"{envdb.capacity_fraction():.2f}x"),
            ("range rows (one board)", str(len(rows))),
            ("latest locations (R00)", str(len(latest))),
            ("aggregate query (cached)", f"{cached_s * 1e3:.3f} ms"),
        ],
        title=f"[repro store bench] sharded envdb, plan="
              f"{store.plan('aggregate', 'bpm', 'R00-M0').fan_out} shard(s)",
    ))
    print()
    print(format_aggregates(aggs[:8], title="[aggregates] R00, first rows"))
    print()
    store_lines = [line for line in obs.dump().splitlines()
                   if "repro_store" in line]
    print("\n".join(store_lines))
    return 0


def _bench_command(args: list[str]) -> int:
    """``repro bench perf [json_path]`` — run the hot-path wall-clock
    benches (block-sampling engine, heap scheduler, full session) and
    write the trajectory file future PRs regress against."""
    from repro import perfbench
    from repro.analysis.tables import format_table

    if not args or args[0] != "perf":
        print("usage: python -m repro bench perf [json_path]", file=sys.stderr)
        return 2
    json_path = args[1] if len(args) > 1 else "BENCH_moneq.json"

    results = perfbench.run(json_path)
    rows = []
    for name, r in results.items():
        detail = ", ".join(
            f"{k}={v:g}" if isinstance(v, (int, float)) else f"{k}={v}"
            for k, v in r.items()
            if k not in ("wall_s", "speedup_vs_scalar")
        )
        rows.append((name, f"{r['wall_s'] * 1e3:.1f} ms",
                     f"{r['speedup_vs_scalar']:.1f}x", detail))
    print(format_table(
        ("bench", "wall", "vs scalar", "detail"), rows,
        title=f"[repro bench perf] wrote {json_path}",
    ))
    if not results["moneq_block"]["byte_identical"]:
        print("FAIL: block-sampled output diverged from scalar",
              file=sys.stderr)
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    args = sys.argv[1:] if argv is None else argv
    if not args or args[0] in ("-h", "--help", "help"):
        print(__doc__.strip())
        return 0
    command = args[0]
    if command == "list":
        for name in ALL_EXPERIMENTS:
            print(name)
        return 0
    if command == "obs":
        return _obs_command(args[1:])
    if command == "store":
        return _store_command(args[1:])
    if command == "bench":
        return _bench_command(args[1:])
    if command == "report":
        report_module.main()
        return 0
    if command == "all":
        for name, module in ALL_EXPERIMENTS.items():
            print(f"==== {name} " + "=" * (60 - len(name)))
            module.main()
            print()
        return 0
    module = ALL_EXPERIMENTS.get(command)
    if module is None:
        print(f"unknown experiment {command!r}; try 'python -m repro list'",
              file=sys.stderr)
        return 2
    module.main()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
