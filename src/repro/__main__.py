"""Command-line entry point.

::

    python -m repro list                # available experiments
    python -m repro table3              # regenerate one table/figure
    python -m repro all                 # regenerate everything
    python -m repro report              # print EXPERIMENTS.md content
    python -m repro obs dump [target..] # run exercises, dump metrics+spans
"""

from __future__ import annotations

import sys

from repro.experiments import ALL_EXPERIMENTS
from repro.experiments import report as report_module


def _obs_command(args: list[str]) -> int:
    """``repro obs dump [target ...]`` — run the named exercises (every
    one of them by default) and print the Prometheus exposition plus the
    finished spans."""
    import repro.obs as obs
    from repro.obs import demo

    if not args or args[0] != "dump":
        print("usage: python -m repro obs dump [target ...]\n"
              f"targets: {' '.join(demo.EXERCISES)} (default: all)",
              file=sys.stderr)
        return 2
    targets = args[1:] or list(demo.EXERCISES)
    unknown = [t for t in targets if t not in demo.EXERCISES]
    if unknown:
        print(f"unknown obs target(s) {unknown}; "
              f"have {sorted(demo.EXERCISES)}", file=sys.stderr)
        return 2
    for target in targets:
        summary = demo.EXERCISES[target]()
        detail = ", ".join(f"{k}={v:g}" for k, v in summary.items())
        print(f"# exercised {target}: {detail}")
    print()
    print(obs.dump())
    spans = obs.get_tracer().render()
    if spans:
        print("# spans")
        print(spans)
    return 0


def main(argv: list[str] | None = None) -> int:
    args = sys.argv[1:] if argv is None else argv
    if not args or args[0] in ("-h", "--help", "help"):
        print(__doc__.strip())
        return 0
    command = args[0]
    if command == "list":
        for name in ALL_EXPERIMENTS:
            print(name)
        return 0
    if command == "obs":
        return _obs_command(args[1:])
    if command == "report":
        report_module.main()
        return 0
    if command == "all":
        for name, module in ALL_EXPERIMENTS.items():
            print(f"==== {name} " + "=" * (60 - len(name)))
            module.main()
            print()
        return 0
    module = ALL_EXPERIMENTS.get(command)
    if module is None:
        print(f"unknown experiment {command!r}; try 'python -m repro list'",
              file=sys.stderr)
        return 2
    module.main()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
