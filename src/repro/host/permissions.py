"""POSIX-style credentials and mode checks.

The paper's RAPL discussion hinges on a permission gate: "the MSR driver
must be given the correct read-only, root-only access before it is
accessible by any process running on the system."  We model the minimum
POSIX machinery to reproduce that gate: uid/gid credentials and
owner/group/other rwx mode bits.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import AccessDeniedError

#: Mode bit masks, octal as in chmod.
R_OK, W_OK, X_OK = 4, 2, 1


@dataclass(frozen=True)
class Credentials:
    """A (uid, gid) pair identifying who is performing an operation."""

    uid: int
    gid: int = 0
    username: str = ""

    @property
    def is_root(self) -> bool:
        return self.uid == 0


#: The superuser.
ROOT = Credentials(uid=0, gid=0, username="root")
#: An unprivileged default user (the profiling application's identity).
USER = Credentials(uid=1000, gid=1000, username="hpcuser")


def mode_allows(mode: int, owner_uid: int, owner_gid: int, creds: Credentials, want: int) -> bool:
    """POSIX access check: root passes everything; otherwise the relevant
    owner/group/other triplet must include all bits in ``want``."""
    if creds.is_root:
        return True
    if creds.uid == owner_uid:
        triplet = (mode >> 6) & 7
    elif creds.gid == owner_gid:
        triplet = (mode >> 3) & 7
    else:
        triplet = mode & 7
    return (triplet & want) == want


def check_access(
    mode: int, owner_uid: int, owner_gid: int, creds: Credentials, want: int, path: str
) -> None:
    """Raise :class:`AccessDeniedError` when the check fails."""
    if not mode_allows(mode, owner_uid, owner_gid, creds, want):
        verbs = []
        if want & R_OK:
            verbs.append("read")
        if want & W_OK:
            verbs.append("write")
        if want & X_OK:
            verbs.append("execute")
        raise AccessDeniedError(
            f"uid {creds.uid} may not {'/'.join(verbs) or 'access'} {path} "
            f"(mode {mode:o}, owner uid {owner_uid})"
        )
