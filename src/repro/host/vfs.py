"""Virtual filesystem with dynamic pseudo-files and character devices.

Three of the four mechanisms surface data through the filesystem:

* RAPL's msr driver creates ``/dev/cpu/<n>/msr`` character devices whose
  reads are 8-byte register fetches at a seek offset;
* the Xeon Phi MICRAS daemon mounts text pseudo-files on a sysfs-like
  virtual filesystem ("reading the appropriate file and parsing the
  data");
* MonEQ writes its per-node output files.

The VFS supports regular files, directories, *dynamic* files whose
content is produced by a provider callback at open time (sysfs), and
character devices with positional read semantics (msr).  All opens are
permission-checked against :mod:`repro.host.permissions`.
"""

from __future__ import annotations

import enum
import posixpath
from dataclasses import dataclass, field
from typing import Callable, Protocol

from repro.errors import (
    FileExistsVfsError,
    FileNotFoundVfsError,
    IsADirectoryVfsError,
    NotADirectoryVfsError,
    VfsError,
)
from repro.host.permissions import R_OK, ROOT, W_OK, Credentials, check_access


class FileKind(enum.Enum):
    """Node types the VFS supports."""

    REGULAR = "regular"
    DIRECTORY = "directory"
    DYNAMIC = "dynamic"
    CHARDEV = "chardev"


class CharDevice(Protocol):
    """Backend for a character device node."""

    def pread(self, offset: int, size: int, creds: Credentials) -> bytes:
        """Positional read (the msr driver dispatches on offset = MSR)."""
        ...

    def pwrite(self, offset: int, data: bytes, creds: Credentials) -> int:
        """Positional write; returns bytes written."""
        ...


@dataclass
class _Node:
    kind: FileKind
    mode: int
    owner_uid: int = 0
    owner_gid: int = 0
    content: bytes = b""
    children: dict[str, "_Node"] = field(default_factory=dict)
    provider: Callable[[], str] | None = None
    device: CharDevice | None = None


def _split(path: str) -> list[str]:
    norm = posixpath.normpath(path)
    if not norm.startswith("/"):
        raise VfsError(f"paths must be absolute, got {path!r}")
    return [p for p in norm.split("/") if p]


class FileHandle:
    """An open file: sequential read/write plus positional ops for
    character devices."""

    def __init__(self, vfs: "VirtualFileSystem", path: str, node: _Node, creds: Credentials):
        self._vfs = vfs
        self.path = path
        self._node = node
        self._creds = creds
        self._pos = 0
        self._snapshot: bytes | None = None
        self.closed = False

    def _data(self) -> bytes:
        if self._node.kind is FileKind.DYNAMIC:
            if self._snapshot is None:
                # sysfs semantics: content generated at first read of an
                # open handle, stable until reopened.
                self._snapshot = self._node.provider().encode()  # type: ignore[misc]
            return self._snapshot
        return self._node.content

    def read(self, size: int = -1) -> bytes:
        """Sequential read from the current position."""
        self._ensure_open()
        if self._node.kind is FileKind.CHARDEV:
            raise VfsError(f"{self.path}: character devices require pread(offset, size)")
        data = self._data()
        end = len(data) if size < 0 else min(len(data), self._pos + size)
        chunk = data[self._pos:end]
        self._pos = end
        return chunk

    def read_text(self) -> str:
        """Whole-file text read (the MICRAS pseudo-file idiom)."""
        return self.read().decode()

    def pread(self, offset: int, size: int) -> bytes:
        """Positional read (chardev-only)."""
        self._ensure_open()
        if self._node.kind is not FileKind.CHARDEV:
            raise VfsError(f"{self.path}: pread only supported on character devices")
        return self._node.device.pread(offset, size, self._creds)  # type: ignore[union-attr]

    def pwrite(self, offset: int, data: bytes) -> int:
        """Positional write (chardev-only)."""
        self._ensure_open()
        if self._node.kind is not FileKind.CHARDEV:
            raise VfsError(f"{self.path}: pwrite only supported on character devices")
        return self._node.device.pwrite(offset, data, self._creds)  # type: ignore[union-attr]

    def write(self, data: bytes) -> int:
        """Append to a regular file."""
        self._ensure_open()
        if self._node.kind is not FileKind.REGULAR:
            raise VfsError(f"{self.path}: cannot write a {self._node.kind.value} file")
        self._node.content += data
        return len(data)

    def close(self) -> None:
        self.closed = True
        self._snapshot = None

    def __enter__(self) -> "FileHandle":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _ensure_open(self) -> None:
        if self.closed:
            raise VfsError(f"{self.path}: I/O on closed file")


class VirtualFileSystem:
    """An in-memory POSIX-flavoured filesystem."""

    def __init__(self):
        self._root = _Node(kind=FileKind.DIRECTORY, mode=0o755)

    # -- node management ----------------------------------------------------

    def mkdir(self, path: str, mode: int = 0o755, parents: bool = False,
              creds: Credentials = ROOT) -> None:
        """Create a directory; with ``parents`` create missing ancestors."""
        parts = _split(path)
        node = self._root
        for i, part in enumerate(parts):
            child = node.children.get(part)
            last = i == len(parts) - 1
            if child is None:
                if not last and not parents:
                    raise FileNotFoundVfsError(f"missing ancestor of {path}")
                child = _Node(kind=FileKind.DIRECTORY, mode=mode,
                              owner_uid=creds.uid, owner_gid=creds.gid)
                node.children[part] = child
            elif last:
                raise FileExistsVfsError(path)
            elif child.kind is not FileKind.DIRECTORY:
                raise NotADirectoryVfsError(f"{part} in {path}")
            node = child

    def create_file(self, path: str, content: bytes = b"", mode: int = 0o644,
                    creds: Credentials = ROOT, exist_ok: bool = False) -> None:
        """Create (or with ``exist_ok`` replace) a regular file."""
        parent, name = self._parent_of(path)
        existing = parent.children.get(name)
        if existing is not None:
            if existing.kind is FileKind.DIRECTORY:
                raise IsADirectoryVfsError(path)
            if not exist_ok:
                raise FileExistsVfsError(path)
        parent.children[name] = _Node(
            kind=FileKind.REGULAR, mode=mode, content=content,
            owner_uid=creds.uid, owner_gid=creds.gid,
        )

    def create_dynamic(self, path: str, provider: Callable[[], str],
                       mode: int = 0o444, creds: Credentials = ROOT) -> None:
        """Create a sysfs-style pseudo-file backed by a provider callback."""
        parent, name = self._parent_of(path)
        if name in parent.children:
            raise FileExistsVfsError(path)
        parent.children[name] = _Node(
            kind=FileKind.DYNAMIC, mode=mode, provider=provider,
            owner_uid=creds.uid, owner_gid=creds.gid,
        )

    def create_chardev(self, path: str, device: CharDevice, mode: int = 0o600,
                       creds: Credentials = ROOT) -> None:
        """Create a character-device node (e.g. ``/dev/cpu/0/msr``)."""
        parent, name = self._parent_of(path)
        if name in parent.children:
            raise FileExistsVfsError(path)
        parent.children[name] = _Node(
            kind=FileKind.CHARDEV, mode=mode, device=device,
            owner_uid=creds.uid, owner_gid=creds.gid,
        )

    def remove(self, path: str) -> None:
        """Unlink a file or empty directory."""
        parent, name = self._parent_of(path)
        node = parent.children.get(name)
        if node is None:
            raise FileNotFoundVfsError(path)
        if node.kind is FileKind.DIRECTORY and node.children:
            raise VfsError(f"directory not empty: {path}")
        del parent.children[name]

    def chmod(self, path: str, mode: int, creds: Credentials = ROOT) -> None:
        """Change mode bits; only root or the owner may."""
        node = self._lookup(path)
        if not creds.is_root and creds.uid != node.owner_uid:
            raise VfsError(f"uid {creds.uid} may not chmod {path}")
        node.mode = mode

    def chown(self, path: str, uid: int, gid: int, creds: Credentials = ROOT) -> None:
        """Change ownership; root only."""
        if not creds.is_root:
            raise VfsError("only root may chown")
        node = self._lookup(path)
        node.owner_uid, node.owner_gid = uid, gid

    # -- queries --------------------------------------------------------------

    def exists(self, path: str) -> bool:
        try:
            self._lookup(path)
            return True
        except FileNotFoundVfsError:
            return False

    def is_dir(self, path: str) -> bool:
        try:
            return self._lookup(path).kind is FileKind.DIRECTORY
        except FileNotFoundVfsError:
            return False

    def kind(self, path: str) -> FileKind:
        return self._lookup(path).kind

    def stat_mode(self, path: str) -> int:
        return self._lookup(path).mode

    def listdir(self, path: str) -> list[str]:
        node = self._lookup(path)
        if node.kind is not FileKind.DIRECTORY:
            raise NotADirectoryVfsError(path)
        return sorted(node.children)

    def walk(self, path: str = "/") -> list[str]:
        """All file (non-directory) paths under ``path``."""
        out: list[str] = []

        def rec(prefix: str, node: _Node) -> None:
            for name, child in sorted(node.children.items()):
                child_path = f"{prefix.rstrip('/')}/{name}"
                if child.kind is FileKind.DIRECTORY:
                    rec(child_path, child)
                else:
                    out.append(child_path)

        rec(path, self._lookup(path))
        return out

    # -- I/O --------------------------------------------------------------

    def open(self, path: str, mode: str = "r", creds: Credentials = ROOT) -> FileHandle:
        """Open a file for 'r' or 'w' (append) access with permission
        checks; directories are not openable."""
        node = self._lookup(path)
        if node.kind is FileKind.DIRECTORY:
            raise IsADirectoryVfsError(path)
        want = {"r": R_OK, "w": W_OK, "rw": R_OK | W_OK}.get(mode)
        if want is None:
            raise VfsError(f"unsupported open mode {mode!r}")
        check_access(node.mode, node.owner_uid, node.owner_gid, creds, want, path)
        return FileHandle(self, path, node, creds)

    def read_text(self, path: str, creds: Credentials = ROOT) -> str:
        """Convenience whole-file text read."""
        with self.open(path, "r", creds) as fh:
            return fh.read_text()

    def write_text(self, path: str, text: str, creds: Credentials = ROOT) -> None:
        """Create-or-replace a regular file with text content."""
        self.create_file(path, text.encode(), creds=creds, exist_ok=True)

    # -- internals --------------------------------------------------------

    def _lookup(self, path: str) -> _Node:
        node = self._root
        for part in _split(path):
            if node.kind is not FileKind.DIRECTORY:
                raise NotADirectoryVfsError(path)
            child = node.children.get(part)
            if child is None:
                raise FileNotFoundVfsError(path)
            node = child
        return node

    def _parent_of(self, path: str) -> tuple[_Node, str]:
        parts = _split(path)
        if not parts:
            raise VfsError("cannot operate on /")
        parent = self._root
        for part in parts[:-1]:
            child = parent.children.get(part)
            if child is None:
                raise FileNotFoundVfsError(f"missing ancestor of {path}")
            if child.kind is not FileKind.DIRECTORY:
                raise NotADirectoryVfsError(f"{part} in {path}")
            parent = child
        return parent, parts[-1]
