"""A host node: kernel + VFS + processes + attached devices.

Nodes are the unit every collection mechanism hangs off: the RAPL driver
registers chardevs in the node's VFS, NVML enumerates the node's GPUs,
SCIF connects the node to its Xeon Phi cards, and MonEQ sessions profile
one workload run on one node (or one rank's slice of a job).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from repro.errors import DeviceNotFoundError
from repro.host.kernel import Kernel
from repro.host.process import Process, ProcessTable
from repro.host.vfs import VirtualFileSystem
from repro.sim.clock import VirtualClock
from repro.sim.events import EventQueue
from repro.sim.rng import RngRegistry

if TYPE_CHECKING:  # pragma: no cover
    from repro.workloads.base import Workload


class Node:
    """One host in the simulated machine room.

    Parameters
    ----------
    hostname:
        Unique name, e.g. ``"stampede-c401-001"``.
    kernel:
        Kernel instance (defaults to a 2015-typical 2.6.32).
    rng:
        Seed registry; device sensors derive their noise streams from it.
    clock:
        Shared virtual clock; a fresh one is created when omitted.
    """

    def __init__(
        self,
        hostname: str,
        kernel: Kernel | None = None,
        rng: RngRegistry | None = None,
        clock: VirtualClock | None = None,
    ):
        self.hostname = hostname
        self.kernel = kernel if kernel is not None else Kernel()
        self.rng = rng if rng is not None else RngRegistry()
        self.clock = clock if clock is not None else VirtualClock()
        self.events = EventQueue(self.clock)
        self.vfs = VirtualFileSystem()
        self.processes = ProcessTable()
        self._devices: dict[str, list[object]] = {}
        for directory in ("/dev", "/sys", "/proc", "/tmp", "/var", "/var/log"):
            self.vfs.mkdir(directory, parents=True)

    # -- devices ------------------------------------------------------------

    def attach(self, kind: str, device: object) -> int:
        """Attach a device under a kind key ("cpu", "gpu", "mic"); returns
        its index within that kind."""
        devices = self._devices.setdefault(kind, [])
        devices.append(device)
        return len(devices) - 1

    def devices(self, kind: str) -> list[object]:
        """All devices of a kind (possibly empty)."""
        return list(self._devices.get(kind, []))

    def device(self, kind: str, index: int = 0) -> object:
        devices = self._devices.get(kind, [])
        if not 0 <= index < len(devices):
            raise DeviceNotFoundError(
                f"{self.hostname}: no {kind} device at index {index} "
                f"(have {len(devices)})"
            )
        return devices[index]

    def device_kinds(self) -> list[str]:
        return sorted(k for k, v in self._devices.items() if v)

    # -- convenience ----------------------------------------------------------

    def spawn(self, name: str, creds=None) -> Process:
        """Spawn a process on this node."""
        from repro.host.permissions import USER

        return self.processes.spawn(name, creds if creds is not None else USER)

    def run_until(self, t: float) -> int:
        """Advance this node's event queue to virtual time ``t``."""
        return self.events.run_until(t)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        kinds = {k: len(v) for k, v in self._devices.items() if v}
        return f"Node({self.hostname!r}, devices={kinds})"


def total_device_count(nodes: Iterable[Node], kind: str) -> int:
    """Total devices of ``kind`` across nodes (e.g. 128 Phi cards on the
    Stampede slice of Figure 8)."""
    return sum(len(n.devices(kind)) for n in nodes)
