"""Dynamic electricity pricing.

Substrate for the power-aware-scheduling extension (the paper's
motivating prior work [2] reported up to 23 % electricity-bill savings on
BG/Q by integrating dynamic pricing into scheduling).  Models the
standard two-tier day/night tariff used in that work plus an arbitrary
piecewise tariff.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.sim.signals import PiecewiseConstantSignal
from repro.units import HOUR, kwh


class Tariff:
    """Electricity price as a function of time-of-day, cycling daily.

    Parameters
    ----------
    breakpoints_h:
        Hours-of-day (ascending, within [0, 24)) at which the price
        changes.
    prices:
        $/kWh, one more entry than breakpoints (price before the first
        break, then after each).
    """

    def __init__(self, breakpoints_h: list[float], prices: list[float]):
        if any(not 0.0 <= b < 24.0 for b in breakpoints_h):
            raise ConfigError("tariff breakpoints must lie in [0, 24) hours")
        if any(p < 0.0 for p in prices):
            raise ConfigError("prices must be non-negative")
        self._signal = PiecewiseConstantSignal(
            [b * HOUR for b in breakpoints_h], prices
        )

    @classmethod
    def day_night(cls, on_peak: float = 0.12, off_peak: float = 0.04,
                  peak_start_h: float = 9.0, peak_end_h: float = 21.0) -> "Tariff":
        """Two-tier tariff: on-peak 9:00-21:00 by default."""
        return cls([peak_start_h, peak_end_h], [off_peak, on_peak, off_peak])

    @classmethod
    def flat(cls, price: float = 0.08) -> "Tariff":
        """Constant price (the no-awareness baseline)."""
        return cls([], [price])

    def price_at(self, t: float | np.ndarray) -> np.ndarray:
        """$/kWh at absolute time(s) ``t`` (seconds; cycles every 24 h)."""
        return self._signal.value(np.mod(np.asarray(t, dtype=float), 24.0 * HOUR))

    def cost(self, times: np.ndarray, watts: np.ndarray) -> float:
        """Dollar cost of a power trace under this tariff (trapezoidal)."""
        times = np.asarray(times, dtype=float)
        watts = np.asarray(watts, dtype=float)
        if times.shape != watts.shape:
            raise ConfigError("times and watts must have the same shape")
        if len(times) < 2:
            return 0.0
        prices = self.price_at(times)
        # $ = sum over steps of mean($/kWh * W) * dt, converted J -> kWh.
        integrand = prices * watts
        joule_dollars = np.trapezoid(integrand, times)
        return float(kwh(joule_dollars))
