"""Clusters of nodes.

Provides the machine-room scaffolding for the scale experiments: the
Stampede slice used for Figure 8 (Dell PowerEdge nodes, 2x Sandy Bridge
Xeons + 1 Xeon Phi each) and generic homogeneous clusters.  All nodes of
a cluster share one virtual clock so cross-node sums are well-defined.

A cluster can also carry a :class:`repro.store.ShardedStore` (attach via
:meth:`Cluster.attach_store`) as the fleet-wide sink for normalized
:class:`repro.store.Reading` records, sharded by hostname.
"""

from __future__ import annotations

from typing import Callable, Iterator

from repro.errors import ConfigError
from repro.host.node import Node
from repro.sim.clock import VirtualClock
from repro.sim.rng import RngRegistry
from repro.store import FlushReport, Reading, ShardedStore, WriteBatcher


class Cluster:
    """A named collection of nodes sharing a clock and RNG namespace."""

    def __init__(self, name: str, rng: RngRegistry | None = None,
                 clock: VirtualClock | None = None):
        self.name = name
        self.rng = rng if rng is not None else RngRegistry()
        self.clock = clock if clock is not None else VirtualClock()
        self._nodes: list[Node] = []
        self._store: ShardedStore | None = None

    def __len__(self) -> int:
        return len(self._nodes)

    def __iter__(self) -> Iterator[Node]:
        return iter(self._nodes)

    @property
    def nodes(self) -> list[Node]:
        return list(self._nodes)

    def node(self, index: int) -> Node:
        return self._nodes[index]

    def add_node(self, node: Node) -> Node:
        self._nodes.append(node)
        return node

    def populate(
        self,
        count: int,
        factory: Callable[[str, RngRegistry, VirtualClock], Node],
        hostname_format: str = "{name}-{index:04d}",
    ) -> list[Node]:
        """Create ``count`` nodes via ``factory(hostname, rng, clock)``.

        Each node gets a forked RNG namespace so adding nodes never
        perturbs the sensors of existing ones.
        """
        if count <= 0:
            raise ConfigError(f"node count must be positive, got {count}")
        created = []
        for i in range(len(self._nodes), len(self._nodes) + count):
            hostname = hostname_format.format(name=self.name, index=i)
            node = factory(hostname, self.rng.fork(hostname), self.clock)
            self._nodes.append(node)
            created.append(node)
        return created

    # -- fleet monitoring store -------------------------------------------------

    def attach_store(self, store: ShardedStore | None = None,
                     tables: tuple[str, ...] = ("readings",),
                     n_shards: int = 1,
                     capacity_records_per_s: float | None = None) -> ShardedStore:
        """Attach (or build) the cluster's sharded monitoring store.

        Nodes shard by full hostname (``depth=2`` covers the
        ``name-0001`` convention), spreading the fleet evenly; queries
        for any hostname prefix merge across shards deterministically.
        """
        if self._store is not None:
            raise ConfigError(f"cluster {self.name!r} already has a store")
        if store is None:
            store = ShardedStore(
                tables, n_shards=n_shards,
                capacity_records_per_s=capacity_records_per_s, shard_depth=2,
            )
        self._store = store
        return store

    @property
    def store(self) -> ShardedStore:
        """The attached monitoring store; :meth:`attach_store` first."""
        if self._store is None:
            raise ConfigError(
                f"cluster {self.name!r} has no store; call attach_store()"
            )
        return self._store

    def record_readings(self, table: str, readings: list[Reading],
                        interval_s: float) -> FlushReport:
        """Batch one collection sweep's readings into the store."""
        batcher = WriteBatcher(self.store)
        for reading in readings:
            batcher.add(table, reading)
        return batcher.flush(interval_s)

    def devices(self, kind: str) -> list[object]:
        """All devices of a kind across the cluster, node order."""
        out: list[object] = []
        for node in self._nodes:
            out.extend(node.devices(kind))
        return out

    def run_until(self, t: float) -> None:
        """Advance every node's event queue to virtual time ``t``.

        Nodes share the cluster clock, so queues are drained in node
        order per time step; device models are independent across nodes,
        which makes this ordering immaterial to results.
        """
        for node in self._nodes:
            node.run_until(t)
