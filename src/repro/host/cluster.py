"""Clusters of nodes.

Provides the machine-room scaffolding for the scale experiments: the
Stampede slice used for Figure 8 (Dell PowerEdge nodes, 2x Sandy Bridge
Xeons + 1 Xeon Phi each) and generic homogeneous clusters.  All nodes of
a cluster share one virtual clock so cross-node sums are well-defined.
"""

from __future__ import annotations

from typing import Callable, Iterator

from repro.errors import ConfigError
from repro.host.node import Node
from repro.sim.clock import VirtualClock
from repro.sim.rng import RngRegistry


class Cluster:
    """A named collection of nodes sharing a clock and RNG namespace."""

    def __init__(self, name: str, rng: RngRegistry | None = None,
                 clock: VirtualClock | None = None):
        self.name = name
        self.rng = rng if rng is not None else RngRegistry()
        self.clock = clock if clock is not None else VirtualClock()
        self._nodes: list[Node] = []

    def __len__(self) -> int:
        return len(self._nodes)

    def __iter__(self) -> Iterator[Node]:
        return iter(self._nodes)

    @property
    def nodes(self) -> list[Node]:
        return list(self._nodes)

    def node(self, index: int) -> Node:
        return self._nodes[index]

    def add_node(self, node: Node) -> Node:
        self._nodes.append(node)
        return node

    def populate(
        self,
        count: int,
        factory: Callable[[str, RngRegistry, VirtualClock], Node],
        hostname_format: str = "{name}-{index:04d}",
    ) -> list[Node]:
        """Create ``count`` nodes via ``factory(hostname, rng, clock)``.

        Each node gets a forked RNG namespace so adding nodes never
        perturbs the sensors of existing ones.
        """
        if count <= 0:
            raise ConfigError(f"node count must be positive, got {count}")
        created = []
        for i in range(len(self._nodes), len(self._nodes) + count):
            hostname = hostname_format.format(name=self.name, index=i)
            node = factory(hostname, self.rng.fork(hostname), self.clock)
            self._nodes.append(node)
            created.append(node)
        return created

    def devices(self, kind: str) -> list[object]:
        """All devices of a kind across the cluster, node order."""
        out: list[object] = []
        for node in self._nodes:
            out.extend(node.devices(kind))
        return out

    def run_until(self, t: float) -> None:
        """Advance every node's event queue to virtual time ``t``.

        Nodes share the cluster clock, so queues are drained in node
        order per time step; device models are independent across nodes,
        which makes this ordering immaterial to results.
        """
        for node in self._nodes:
            node.run_until(t)
