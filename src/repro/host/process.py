"""Simulated processes.

A :class:`Process` carries the identity (credentials) under which file
opens and driver calls are made, and accumulates the virtual CPU time
charged to it — which is how collection overhead becomes visible: MonEQ's
periodic handler charges its per-query latency to the *application's*
process, while the MICRAS daemon charges the card-side daemon process.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.errors import ReproError
from repro.host.permissions import Credentials, USER


class ProcessError(ReproError):
    """Process-table misuse (double exit, unknown pid...)."""


@dataclass
class Process:
    """A simulated OS process."""

    pid: int
    name: str
    creds: Credentials
    cpu_seconds: float = 0.0
    alive: bool = True
    tags: dict[str, str] = field(default_factory=dict)

    def charge(self, seconds: float) -> None:
        """Account virtual CPU time to this process."""
        if seconds < 0.0:
            raise ProcessError(f"cannot charge negative time {seconds}")
        if not self.alive:
            raise ProcessError(f"cannot charge exited process {self.pid} ({self.name})")
        self.cpu_seconds += seconds


class ProcessTable:
    """Per-node process table."""

    def __init__(self):
        self._pids = itertools.count(1)
        self._procs: dict[int, Process] = {}

    def spawn(self, name: str, creds: Credentials = USER) -> Process:
        """Create a new live process."""
        proc = Process(pid=next(self._pids), name=name, creds=creds)
        self._procs[proc.pid] = proc
        return proc

    def get(self, pid: int) -> Process:
        try:
            return self._procs[pid]
        except KeyError:
            raise ProcessError(f"no such pid {pid}") from None

    def exit(self, pid: int) -> None:
        proc = self.get(pid)
        if not proc.alive:
            raise ProcessError(f"pid {pid} already exited")
        proc.alive = False

    def living(self) -> list[Process]:
        return [p for p in self._procs.values() if p.alive]

    def by_name(self, name: str) -> list[Process]:
        return [p for p in self._procs.values() if p.name == name]
