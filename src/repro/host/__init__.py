"""Host substrate: virtual filesystem, permissions, processes, nodes.

The paper's mechanisms differ in *where the data surfaces*: RAPL behind a
root-only character device (``/dev/cpu/*/msr``), the Xeon Phi MICRAS
daemon behind sysfs-style pseudo-files, NVML behind a user library, BG/Q
behind a site database.  This package provides the POSIX-ish scaffolding
— files, modes, uids, processes — those access paths are built on.
"""

from repro.host.permissions import Credentials, ROOT, USER
from repro.host.vfs import FileKind, VirtualFileSystem
from repro.host.process import Process, ProcessTable
from repro.host.node import Node
from repro.host.cluster import Cluster
from repro.host.kernel import Kernel, KernelVersion

__all__ = [
    "Credentials",
    "ROOT",
    "USER",
    "VirtualFileSystem",
    "FileKind",
    "Process",
    "ProcessTable",
    "Node",
    "Cluster",
    "Kernel",
    "KernelVersion",
]
