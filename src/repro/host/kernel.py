"""Simulated Linux kernel: version gates and loadable drivers.

The paper's RAPL section turns on two kernel facts: perf_event gained
RAPL support in Linux 3.14 ("a much newer version of kernel than most
distributions have"), and without it one must load the ``msr`` module and
open root-only character devices.  :class:`Kernel` models exactly that:
a version, a set of loaded modules, and hooks drivers use to register
device nodes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.errors import DriverError

if TYPE_CHECKING:  # pragma: no cover
    from repro.host.vfs import VirtualFileSystem


@dataclass(frozen=True, order=True)
class KernelVersion:
    """A (major, minor, patch) kernel version, totally ordered."""

    major: int
    minor: int
    patch: int = 0

    def __str__(self) -> str:
        return f"{self.major}.{self.minor}.{self.patch}"

    @classmethod
    def parse(cls, text: str) -> "KernelVersion":
        parts = text.split(".")
        if not 2 <= len(parts) <= 3:
            raise DriverError(f"unparseable kernel version {text!r}")
        nums = [int(p) for p in parts] + [0] * (3 - len(parts))
        return cls(*nums)


#: First kernel whose perf_event exposes RAPL counters.
PERF_RAPL_MIN_VERSION = KernelVersion(3, 14)

#: What "most distributions of Linux have" circa the paper (RHEL 6 era).
TYPICAL_2015_KERNEL = KernelVersion(2, 6, 32)


class Kernel:
    """A kernel instance on a node: version + loaded modules."""

    def __init__(self, version: KernelVersion | str = TYPICAL_2015_KERNEL):
        self.version = (
            KernelVersion.parse(version) if isinstance(version, str) else version
        )
        self._modules: dict[str, object] = {}
        self._on_load: dict[str, Callable[[], object]] = {}

    @property
    def loaded_modules(self) -> list[str]:
        return sorted(self._modules)

    def register_module(self, name: str, factory: Callable[[], object]) -> None:
        """Make a module available for :meth:`modprobe` (i.e. present in
        the module tree, not yet loaded)."""
        self._on_load[name] = factory

    def modprobe(self, name: str) -> object:
        """Load a module; idempotent, returns the module object."""
        if name in self._modules:
            return self._modules[name]
        factory = self._on_load.get(name)
        if factory is None:
            raise DriverError(f"no such module: {name}")
        module = factory()
        self._modules[name] = module
        return module

    def rmmod(self, name: str) -> None:
        """Unload a module."""
        module = self._modules.pop(name, None)
        if module is None:
            raise DriverError(f"module not loaded: {name}")
        unload = getattr(module, "unload", None)
        if unload is not None:
            unload()

    def module(self, name: str) -> object:
        """Return a loaded module or raise."""
        try:
            return self._modules[name]
        except KeyError:
            raise DriverError(f"module not loaded: {name}") from None

    def is_loaded(self, name: str) -> bool:
        return name in self._modules

    def supports_perf_rapl(self) -> bool:
        """perf_event RAPL events exist from Linux 3.14 on."""
        return self.version >= PERF_RAPL_MIN_VERSION
