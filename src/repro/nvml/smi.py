"""nvidia-smi-style status rendering.

The human face of NVML: a text summary of every GPU on a node — name,
temperature, power/cap, memory, utilization — built purely from the
public :class:`~repro.nvml.api.NvmlLibrary` queries, so rendering one
costs exactly the documented per-query latencies.
"""

from __future__ import annotations

from repro.nvml.api import NvmlError, NvmlLibrary


def render_smi(nvml: NvmlLibrary) -> str:
    """The status table for every GPU the library can see."""
    count = nvml.device_get_count()
    lines = [
        "+" + "-" * 76 + "+",
        f"| repro-smi  (simulated NVML)  {count} device(s)".ljust(77) + "|",
        "+" + "-" * 76 + "+",
        "| idx  name          temp   power        memory             util gpu/mem |",
        "+" + "-" * 76 + "+",
    ]
    for index in range(count):
        handle = nvml.device_get_handle_by_index(index)
        name = nvml.device_get_name(handle)
        temp = nvml.device_get_temperature(handle)
        try:
            power_w = nvml.device_get_power_usage(handle) / 1000.0
            cap_w = nvml.device_get_power_management_limit(handle) / 1000.0
            power_cell = f"{power_w:6.1f}W/{cap_w:5.0f}W"
        except NvmlError:
            power_cell = "   N/A (pre-Kepler)"
        memory = nvml.device_get_memory_info(handle)
        used_mib = memory.used // (1024 * 1024)
        total_mib = memory.total // (1024 * 1024)
        gpu_pct, mem_pct = nvml.device_get_utilization_rates(handle)
        lines.append(
            f"| {index:3d}  {name:<12s}  {temp:3d}C  {power_cell:>18s}  "
            f"{used_mib:6d}/{total_mib:6d}MiB  {gpu_pct:3d}%/{mem_pct:3d}% |"
        )
    lines.append("+" + "-" * 76 + "+")
    return "\n".join(lines)
