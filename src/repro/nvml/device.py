"""GPU board models.

A :class:`GpuDevice` owns the board-level truth: one power model summing
GPU die, GDDR and PCIe-interface contributions (NVML's power reading "is
for the entire board including memory"), a first-order thermal node, a
fan curve, memory accounting and clock states.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.devices.load import LoadBoard
from repro.devices.power import ComponentPowerModel, LimitedSignal, ThermalModel
from repro.errors import ConfigError, DeviceError
from repro.sim.noise import UniformNoise
from repro.sim.rng import RngRegistry
from repro.sim.sensor import SampledSensor
from repro.workloads.base import Component


@dataclass(frozen=True)
class GpuModel:
    """Static parameters of one GPU product."""

    name: str
    architecture: str            # "kepler", "fermi", ...
    cuda_cores: int
    peak_dp_tflops: float
    vram_bytes: int
    board_idle_w: float
    sm_w: float                  # dynamic range of the GPU die
    mem_w: float                 # dynamic range of GDDR
    pcie_w: float                # dynamic range of the PCIe interface
    tdp_w: float
    supports_power_readings: bool
    #: NVML-documented power accuracy (+/- W) and refresh period.
    power_accuracy_w: float = 5.0
    power_update_s: float = 0.060
    base_clock_mhz: int = 706
    mem_clock_mhz: int = 2600
    ambient_c: float = 28.0
    thermal_r_c_per_w: float = 0.27
    thermal_c_j_per_c: float = 230.0


#: Tesla K20 — the paper's test device: "1.17 teraFLOPS at double
#: precision, 5 GB of GDDR5 memory, and 2496 CUDA cores".
KEPLER_K20 = GpuModel(
    name="Tesla K20", architecture="kepler", cuda_cores=2496,
    peak_dp_tflops=1.17, vram_bytes=5 * 1024**3,
    board_idle_w=44.0, sm_w=50.0, mem_w=60.0, pcie_w=8.0, tdp_w=225.0,
    supports_power_readings=True,
)

#: Tesla K40 — the other Kepler part with power support.
KEPLER_K40 = GpuModel(
    name="Tesla K40", architecture="kepler", cuda_cores=2880,
    peak_dp_tflops=1.43, vram_bytes=12 * 1024**3,
    board_idle_w=46.0, sm_w=58.0, mem_w=66.0, pcie_w=8.0, tdp_w=235.0,
    supports_power_readings=True, base_clock_mhz=745, mem_clock_mhz=3004,
)

#: Pre-Kepler board: present in many 2015 machine rooms, but NVML power
#: queries return NOT_SUPPORTED on it.
FERMI_M2090 = GpuModel(
    name="Tesla M2090", architecture="fermi", cuda_cores=512,
    peak_dp_tflops=0.665, vram_bytes=6 * 1024**3,
    board_idle_w=55.0, sm_w=90.0, mem_w=50.0, pcie_w=10.0, tdp_w=225.0,
    supports_power_readings=False, base_clock_mhz=650, mem_clock_mhz=1848,
)


class GpuDevice:
    """One GPU board with its sensors."""

    def __init__(self, model: GpuModel = KEPLER_K20,
                 rng: RngRegistry | None = None, index: int = 0):
        self.model = model
        self.rng = rng if rng is not None else RngRegistry()
        self.index = index
        self.board = LoadBoard()
        self._power_model = ComponentPowerModel(
            self.board,
            idle_w=model.board_idle_w,
            dynamic_w={
                Component.GPU_SM: model.sm_w,
                Component.GPU_MEM: model.mem_w,
                Component.GPU_PCIE: model.pcie_w,
            },
        )
        # Board power, clampable by the power-management limit.
        self.power_signal = LimitedSignal(self._power_model.signal())
        self.power_sensor = SampledSensor(
            truth=self.power_signal,
            update_interval=model.power_update_s,
            noise=UniformNoise(model.power_accuracy_w),
            seed=self.rng.seed(f"nvml.{model.name}.{index}.power"),
            quantum=1e-3,  # NVML reports integer milliwatts
        )
        self.thermal = ThermalModel(
            self.power_signal, ambient_c=model.ambient_c,
            r_c_per_w=model.thermal_r_c_per_w, c_j_per_c=model.thermal_c_j_per_c,
        )
        self._allocated_bytes = 0
        self._power_limit_w = model.tdp_w

    # -- truth ---------------------------------------------------------------

    def true_power(self, t: np.ndarray | float) -> np.ndarray:
        """Unquantized board power (whole board, incl. memory)."""
        return self.power_signal.value(t)

    def temperature_c(self, t: np.ndarray | float) -> np.ndarray:
        """Die temperature in Celsius."""
        return self.thermal.temperature(t)

    def fan_speed_rpm(self, t: float) -> int:
        """Fan speed: linear curve from 30 % to 100 % duty between 40 C
        and 85 C, on a 4500 RPM max fan."""
        temp = float(self.temperature_c(t))
        duty = 0.30 + 0.70 * np.clip((temp - 40.0) / 45.0, 0.0, 1.0)
        return int(round(duty * 4500.0))

    # -- memory accounting ---------------------------------------------------

    def allocate(self, nbytes: int) -> None:
        """cudaMalloc-style accounting."""
        if nbytes < 0:
            raise ConfigError(f"allocation must be non-negative, got {nbytes}")
        if self.memory_used + nbytes > self.model.vram_bytes:
            raise DeviceError(
                f"{self.model.name}: out of memory "
                f"({self.memory_used + nbytes} > {self.model.vram_bytes})"
            )
        self._allocated_bytes += nbytes

    def free(self, nbytes: int) -> None:
        """cudaFree-style accounting."""
        if nbytes < 0 or nbytes > self._allocated_bytes:
            raise ConfigError(f"cannot free {nbytes} of {self._allocated_bytes}")
        self._allocated_bytes -= nbytes

    @property
    def memory_used(self) -> int:
        #: Driver/reserved overhead plus allocations, like nvmlMemory_t.
        reserved = 90 * 1024**2
        return reserved + self._allocated_bytes

    @property
    def memory_free(self) -> int:
        return self.model.vram_bytes - self.memory_used

    # -- clocks and limits -----------------------------------------------------

    def clock_mhz(self, domain: str, t: float) -> int:
        """Current clock: base when busy, deep idle when not."""
        if domain not in ("graphics", "sm", "mem"):
            raise ConfigError(f"unknown clock domain {domain!r}")
        busy = float(self.board.utilization(Component.GPU_SM, t)) > 0.01
        if domain == "mem":
            return self.model.mem_clock_mhz if busy else 324
        return self.model.base_clock_mhz if busy else 324

    def utilization(self, t: float) -> tuple[int, int]:
        """(gpu %, memory %) utilization, like nvmlUtilization_t."""
        gpu = float(self.board.utilization(Component.GPU_SM, t))
        mem = float(self.board.utilization(Component.GPU_MEM, t))
        return int(round(100 * gpu)), int(round(100 * mem))

    def pcie_throughput_kbps(self, t: float, bandwidth_Bps: float = 6.0e9) -> int:
        """Instantaneous PCIe payload throughput in KB/s."""
        util = float(self.board.utilization(Component.GPU_PCIE, t))
        return int(util * bandwidth_Bps / 1024.0)

    @property
    def power_limit_w(self) -> float:
        return self._power_limit_w

    def set_power_limit(self, watts: float, t: float) -> None:
        """Apply a board power cap (NVML power-management limit)."""
        if not 0.5 * self.model.tdp_w <= watts <= self.model.tdp_w:
            raise DeviceError(
                f"{self.model.name}: limit {watts} W outside "
                f"[{0.5 * self.model.tdp_w}, {self.model.tdp_w}] W"
            )
        self._power_limit_w = float(watts)
        self.power_signal.set_limit(t, watts)
