"""NVIDIA Management Library (NVML) simulator.

Models the NVML facts the paper measures on a K20:

* power is reported for the **entire board including memory**, in
  integer milliwatts, accurate to +/-5 W, refreshed about every 60 ms;
* only Kepler-generation GPUs (K20/K40) support power readings at all;
* every query crosses the PCI bus, giving ~1.3 ms per collection
  (~1.25 % overhead at the paper's polling rate);
* temperature, memory info, fan speed, clocks and power limits are also
  exposed (the Table I column).
"""

from repro.nvml.device import FERMI_M2090, KEPLER_K20, KEPLER_K40, GpuDevice, GpuModel
from repro.nvml.api import (
    NVML_TEMPERATURE_GPU,
    NvmlError,
    NvmlLibrary,
)
from repro.nvml.pcie import PcieBus
from repro.nvml.smi import render_smi

__all__ = [
    "GpuDevice",
    "GpuModel",
    "KEPLER_K20",
    "KEPLER_K40",
    "FERMI_M2090",
    "NvmlLibrary",
    "NvmlError",
    "NVML_TEMPERATURE_GPU",
    "PcieBus",
    "render_smi",
]
