"""The NVML sensor source: board power + die temperature, columnar."""

from __future__ import annotations

import numpy as np

from repro.mech.cache import CachePlan, FieldPlan
from repro.mech.source import SensorSource
from repro.nvml.device import GpuDevice

NVML_FIELDS: tuple[str, ...] = ("board_w", "die_temp_c")


class NvmlSource(SensorSource):
    """One Kepler GPU's power sensor and thermal node."""

    def __init__(self, gpu: GpuDevice):
        self.gpu = gpu

    def fields(self) -> tuple[str, ...]:
        return NVML_FIELDS

    def cache_plan(self) -> CachePlan:
        # board_w is sample-and-hold at the board's refresh period; die
        # temperature is a continuous thermal model of the poll time.
        sensor = self.gpu.power_sensor
        return CachePlan(self.gpu, {
            "board_w": FieldPlan(sensor.update_interval, sensor.phase),
            "die_temp_c": FieldPlan(),
        })

    def collect(self, times: np.ndarray) -> dict[str, np.ndarray]:
        return {
            "board_w": self.gpu.power_sensor.read(times),
            "die_temp_c": self.gpu.temperature_c(times),
        }
