"""The NVML C-API surface.

Mirrors the library's shape: an explicit ``nvmlInit``/``nvmlShutdown``
lifecycle, opaque device handles, status-code errors, and integer
milliwatt power readings.  Every device query charges the paper's 1.3 ms
(NVML dispatch + PCIe round trip) to the node clock and the calling
process.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import DeviceError
from repro.host.node import Node
from repro.host.process import Process
from repro.nvml.device import GpuDevice
from repro.nvml.pcie import PcieBus
from repro.obs.instruments import collector
from repro.units import watts_to_milliwatts

_OBS = collector("nvml")

# -- status codes (the subset the simulator can produce) --------------------

NVML_SUCCESS = 0
NVML_ERROR_UNINITIALIZED = 1
NVML_ERROR_INVALID_ARGUMENT = 2
NVML_ERROR_NOT_SUPPORTED = 3
NVML_ERROR_NO_PERMISSION = 4
NVML_ERROR_NOT_FOUND = 6

#: Sensor selector for device_get_temperature.
NVML_TEMPERATURE_GPU = 0


class NvmlError(DeviceError):
    """NVML failure, carrying the C status code."""

    def __init__(self, code: int, message: str):
        self.code = code
        super().__init__(f"NVML error {code}: {message}")


@dataclass(frozen=True)
class NvmlMemoryInfo:
    """nvmlMemory_t: bytes total/used/free."""

    total: int
    used: int
    free: int


class _DeviceHandle:
    """Opaque handle returned by device_get_handle_by_index."""

    __slots__ = ("index", "_library_epoch")

    def __init__(self, index: int, epoch: int):
        self.index = index
        self._library_epoch = epoch


class NvmlLibrary:
    """A loaded NVML library instance on one node.

    Parameters
    ----------
    node:
        Host node; GPUs are the node's ``"gpu"`` devices.
    software_dispatch_s:
        Library-side cost per query; with the PCIe round trip this sums
        to the paper's ~1.3 ms per collection.
    """

    def __init__(self, node: Node, pcie: PcieBus | None = None,
                 software_dispatch_s: float = 0.2e-3):
        self.node = node
        self.pcie = pcie if pcie is not None else PcieBus()
        self.software_dispatch_s = float(software_dispatch_s)
        self._initialized = False
        self._epoch = 0
        self.process: Process | None = None

    # -- lifecycle ---------------------------------------------------------

    def init(self) -> None:
        """nvmlInit: idempotent in real NVML; we allow re-init too."""
        self._initialized = True
        self._epoch += 1

    def shutdown(self) -> None:
        """nvmlShutdown: handles from before become invalid."""
        self._require_init()
        self._initialized = False

    def attach_process(self, process: Process) -> None:
        """Account query latency to ``process``."""
        self.process = process

    @property
    def query_latency_s(self) -> float:
        """Per-query cost: dispatch + PCIe round trip (paper: ~1.3 ms)."""
        return self.software_dispatch_s + self.pcie.round_trip_time()

    # -- device enumeration -----------------------------------------------

    def device_get_count(self) -> int:
        self._require_init()
        return len(self.node.devices("gpu"))

    def device_get_handle_by_index(self, index: int) -> _DeviceHandle:
        self._require_init()
        if not 0 <= index < self.device_get_count():
            raise NvmlError(NVML_ERROR_NOT_FOUND, f"no GPU at index {index}")
        return _DeviceHandle(index, self._epoch)

    def device_get_name(self, handle: _DeviceHandle) -> str:
        return self._device(handle).model.name

    # -- the power query the paper centers on -------------------------------

    def device_get_power_usage(self, handle: _DeviceHandle) -> int:
        """nvmlDeviceGetPowerUsage: board power in **milliwatts**.

        Raises NOT_SUPPORTED on pre-Kepler parts ("the only NVIDIA GPUs
        which support power data collection are those based on the
        Kepler architecture").
        """
        device = self._device(handle)
        if not device.model.supports_power_readings:
            _OBS.record_error("not_supported")
            raise NvmlError(
                NVML_ERROR_NOT_SUPPORTED,
                f"{device.model.name} ({device.model.architecture}) has no power sensor",
            )
        t = self._charge_query()
        watts = float(device.power_sensor.read(t))
        return max(watts_to_milliwatts(watts), 0)

    # -- other Table I data points ---------------------------------------

    def device_get_temperature(self, handle: _DeviceHandle,
                               sensor: int = NVML_TEMPERATURE_GPU) -> int:
        if sensor != NVML_TEMPERATURE_GPU:
            raise NvmlError(NVML_ERROR_INVALID_ARGUMENT, f"bad sensor {sensor}")
        device = self._device(handle)
        t = self._charge_query()
        return int(round(float(device.temperature_c(t))))

    def device_get_memory_info(self, handle: _DeviceHandle) -> NvmlMemoryInfo:
        device = self._device(handle)
        self._charge_query()
        return NvmlMemoryInfo(
            total=device.model.vram_bytes,
            used=device.memory_used,
            free=device.memory_free,
        )

    def device_get_fan_speed(self, handle: _DeviceHandle) -> int:
        device = self._device(handle)
        t = self._charge_query()
        return device.fan_speed_rpm(t)

    def device_get_clock_info(self, handle: _DeviceHandle, domain: str) -> int:
        device = self._device(handle)
        t = self._charge_query()
        return device.clock_mhz(domain, t)

    def device_get_utilization_rates(self, handle: _DeviceHandle) -> tuple[int, int]:
        """nvmlDeviceGetUtilizationRates: (gpu %, memory %)."""
        device = self._device(handle)
        t = self._charge_query()
        return device.utilization(t)

    def device_get_pcie_throughput(self, handle: _DeviceHandle) -> int:
        """nvmlDeviceGetPcieThroughput: KB/s over the link."""
        device = self._device(handle)
        t = self._charge_query()
        return device.pcie_throughput_kbps(t)

    def device_get_power_management_limit(self, handle: _DeviceHandle) -> int:
        device = self._device(handle)
        self._charge_query()
        return watts_to_milliwatts(device.power_limit_w)

    def device_set_power_management_limit(self, handle: _DeviceHandle,
                                          limit_mw: int) -> None:
        """Setting limits needs root, like real NVML."""
        device = self._device(handle)
        if self.process is not None and not self.process.creds.is_root:
            raise NvmlError(NVML_ERROR_NO_PERMISSION,
                            "setting power limits requires root")
        t = self._charge_query()
        try:
            device.set_power_limit(limit_mw / 1e3, t)
        except DeviceError as exc:
            raise NvmlError(NVML_ERROR_INVALID_ARGUMENT, str(exc)) from exc

    # -- internals ------------------------------------------------------------

    def _require_init(self) -> None:
        if not self._initialized:
            _OBS.record_error("uninitialized")
            raise NvmlError(NVML_ERROR_UNINITIALIZED, "call nvmlInit first")

    def _device(self, handle: _DeviceHandle) -> GpuDevice:
        self._require_init()
        if handle._library_epoch != self._epoch:
            raise NvmlError(NVML_ERROR_UNINITIALIZED,
                            "handle predates the current nvmlInit")
        return self.node.device("gpu", handle.index)

    def _charge_query(self) -> float:
        """Advance the clock by one query cost; returns completion time."""
        cost = self.query_latency_s
        self.node.clock.advance(cost)
        if self.process is not None and self.process.alive:
            self.process.charge(cost)
        _OBS.record_query(cost)
        return self.node.clock.now
