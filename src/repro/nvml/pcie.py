"""PCI Express bus model.

NVML queries "must also transfer data across the PCI bus" (paper §II-C),
which dominates their 1.3 ms cost.  The model is a standard
latency + size/bandwidth pipe; NVML management transactions are small,
so latency dominates, while the vector-add H2D copy in Figure 5 is
bandwidth-bound.
"""

from __future__ import annotations

from repro.errors import ConfigError

#: Effective per-direction bandwidth of PCIe gen2 x16 (bytes/second).
GEN2_X16_BANDWIDTH = 6.0e9


class PcieBus:
    """A PCIe link with fixed per-transaction latency.

    Parameters
    ----------
    latency_s:
        One-way transaction setup latency (driver + DMA doorbell).
    bandwidth_Bps:
        Sustained payload bandwidth.
    """

    def __init__(self, latency_s: float = 0.55e-3,
                 bandwidth_Bps: float = GEN2_X16_BANDWIDTH):
        if latency_s < 0.0:
            raise ConfigError(f"latency must be non-negative, got {latency_s}")
        if bandwidth_Bps <= 0.0:
            raise ConfigError(f"bandwidth must be positive, got {bandwidth_Bps}")
        self.latency_s = float(latency_s)
        self.bandwidth_Bps = float(bandwidth_Bps)

    def transfer_time(self, nbytes: int) -> float:
        """Seconds for a one-way transfer of ``nbytes``."""
        if nbytes < 0:
            raise ConfigError(f"nbytes must be non-negative, got {nbytes}")
        return self.latency_s + nbytes / self.bandwidth_Bps

    def round_trip_time(self, request_bytes: int = 64, reply_bytes: int = 64) -> float:
        """Seconds for a small request/reply management transaction."""
        return self.transfer_time(request_bytes) + self.transfer_time(reply_bytes)
