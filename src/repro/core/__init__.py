"""The paper's primary contribution: MonEQ and the unified sensor view.

``repro.core.moneq`` is the Python port of the MonEQ power-profiling
library; ``repro.core.capability`` is the unified taxonomy behind the
paper's Table I.
"""

from repro.core.capability import (
    Availability,
    CapabilityRow,
    PlatformCapabilities,
    TABLE1_ROWS,
    capability_matrix,
    render_capability_table,
)

__all__ = [
    "Availability",
    "CapabilityRow",
    "PlatformCapabilities",
    "TABLE1_ROWS",
    "capability_matrix",
    "render_capability_table",
]
