"""The unified environmental-data taxonomy — the paper's Table I.

Table I compares what each platform can report, across five categories
(total power breakdown, temperature, main memory, processor, fans) plus
power limits.  Here the matrix is **derived from the simulators**: each
platform adapter declares which data points its mechanism exposes, and
the table renderer lays them out exactly as the paper does.  The
benchmark then checks the paper's headline claims against the derived
matrix ("just about the only data point which is collectible on all of
these platforms is total power consumption").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Availability(enum.Enum):
    """One cell of Table I."""

    AVAILABLE = "yes"
    UNAVAILABLE = "no"
    NOT_APPLICABLE = "n/a"

    @property
    def mark(self) -> str:
        return {"yes": "+", "no": "-", "n/a": "N/A"}[self.value]


@dataclass(frozen=True)
class CapabilityRow:
    """(category, item) identifying one Table I row."""

    category: str
    item: str

    @property
    def key(self) -> str:
        return f"{self.category}/{self.item}"


#: Table I's row structure, in the paper's order.
TABLE1_ROWS: list[CapabilityRow] = [
    CapabilityRow("Total Power Consumption (Watts)", "Total"),
    CapabilityRow("Total Power Consumption (Watts)", "Voltage"),
    CapabilityRow("Total Power Consumption (Watts)", "Current"),
    CapabilityRow("Total Power Consumption (Watts)", "PCI Express"),
    CapabilityRow("Total Power Consumption (Watts)", "Main Memory"),
    CapabilityRow("Temperature", "Die"),
    CapabilityRow("Temperature", "DDR/GDDR"),
    CapabilityRow("Temperature", "Device"),
    CapabilityRow("Temperature", "Intake (Fan-In)"),
    CapabilityRow("Temperature", "Exhaust (Fan-Out)"),
    CapabilityRow("Main Memory", "Used"),
    CapabilityRow("Main Memory", "Free"),
    CapabilityRow("Main Memory", "Speed (kT/sec)"),
    CapabilityRow("Main Memory", "Frequency"),
    CapabilityRow("Main Memory", "Voltage"),
    CapabilityRow("Main Memory", "Clock Rate"),
    CapabilityRow("Processor", "Voltage"),
    CapabilityRow("Processor", "Frequency"),
    CapabilityRow("Processor", "Clock Rate"),
    CapabilityRow("Fans", "Speed (In RPM)"),
    CapabilityRow("Limits", "Get/Set Power Limit"),
]

#: Table I's column order.
PLATFORM_ORDER = ("Xeon Phi", "NVML", "Blue Gene/Q", "RAPL")


@dataclass(frozen=True)
class PlatformCapabilities:
    """One platform's column: row key -> availability.

    Rows not mentioned default to UNAVAILABLE, so adapters only list
    what they *can* do (plus explicit N/A rows for data that makes no
    sense on the platform, e.g. fans on a water-cooled BG/Q).
    """

    platform: str
    available: frozenset[str]
    not_applicable: frozenset[str] = frozenset()

    def cell(self, row: CapabilityRow) -> Availability:
        if row.key in self.not_applicable:
            return Availability.NOT_APPLICABLE
        if row.key in self.available:
            return Availability.AVAILABLE
        return Availability.UNAVAILABLE


def _keys(*pairs: tuple[str, str]) -> frozenset[str]:
    return frozenset(CapabilityRow(c, i).key for c, i in pairs)


# ---------------------------------------------------------------------------
# Platform declarations.  Each mirrors what its simulator actually
# exposes; the unit tests cross-check notable cells against the
# simulator APIs (e.g. NVML has no voltage query; EMON has V and I).
# ---------------------------------------------------------------------------

XEON_PHI_CAPABILITIES = PlatformCapabilities(
    platform="Xeon Phi",
    available=_keys(
        ("Total Power Consumption (Watts)", "Total"),
        ("Total Power Consumption (Watts)", "Voltage"),
        ("Total Power Consumption (Watts)", "Current"),
        ("Total Power Consumption (Watts)", "PCI Express"),
        ("Total Power Consumption (Watts)", "Main Memory"),
        ("Temperature", "Die"),
        ("Temperature", "DDR/GDDR"),
        ("Temperature", "Device"),
        ("Temperature", "Intake (Fan-In)"),
        ("Temperature", "Exhaust (Fan-Out)"),
        ("Main Memory", "Used"),
        ("Main Memory", "Free"),
        ("Main Memory", "Speed (kT/sec)"),
        ("Main Memory", "Frequency"),
        ("Main Memory", "Voltage"),
        ("Main Memory", "Clock Rate"),
        ("Processor", "Voltage"),
        ("Processor", "Frequency"),
        ("Processor", "Clock Rate"),
        ("Fans", "Speed (In RPM)"),
        ("Limits", "Get/Set Power Limit"),
    ),
)

NVML_CAPABILITIES = PlatformCapabilities(
    platform="NVML",
    available=_keys(
        ("Total Power Consumption (Watts)", "Total"),  # whole board only
        ("Temperature", "Die"),
        ("Temperature", "Device"),
        ("Main Memory", "Used"),
        ("Main Memory", "Free"),
        ("Main Memory", "Frequency"),
        ("Main Memory", "Clock Rate"),
        ("Processor", "Frequency"),
        ("Processor", "Clock Rate"),
        ("Fans", "Speed (In RPM)"),
        ("Limits", "Get/Set Power Limit"),
    ),
)

BGQ_CAPABILITIES = PlatformCapabilities(
    platform="Blue Gene/Q",
    available=_keys(
        ("Total Power Consumption (Watts)", "Total"),
        ("Total Power Consumption (Watts)", "Voltage"),
        ("Total Power Consumption (Watts)", "Current"),
        ("Total Power Consumption (Watts)", "PCI Express"),
        ("Total Power Consumption (Watts)", "Main Memory"),
        ("Main Memory", "Voltage"),
        ("Processor", "Voltage"),
    ),
    # Water-cooled node boards: no airflow sensors at the device level.
    not_applicable=_keys(
        ("Temperature", "Intake (Fan-In)"),
        ("Temperature", "Exhaust (Fan-Out)"),
        ("Fans", "Speed (In RPM)"),
    ),
)

RAPL_CAPABILITIES = PlatformCapabilities(
    platform="RAPL",
    available=_keys(
        ("Total Power Consumption (Watts)", "Total"),  # socket scope
        ("Total Power Consumption (Watts)", "Main Memory"),  # DRAM domain
        ("Limits", "Get/Set Power Limit"),
    ),
    # A socket has no PCIe rail of its own nor airflow sensors.
    not_applicable=_keys(
        ("Total Power Consumption (Watts)", "PCI Express"),
        ("Temperature", "Intake (Fan-In)"),
        ("Temperature", "Exhaust (Fan-Out)"),
        ("Fans", "Speed (In RPM)"),
    ),
)

_PLATFORMS = {
    "Xeon Phi": XEON_PHI_CAPABILITIES,
    "NVML": NVML_CAPABILITIES,
    "Blue Gene/Q": BGQ_CAPABILITIES,
    "RAPL": RAPL_CAPABILITIES,
}


def capability_matrix() -> dict[str, PlatformCapabilities]:
    """Platform name -> capabilities, in Table I column order."""
    return {name: _PLATFORMS[name] for name in PLATFORM_ORDER}


def universal_rows() -> list[CapabilityRow]:
    """Rows available on *every* platform — the paper's conclusion says
    this is (essentially) just total power consumption."""
    matrix = capability_matrix()
    return [
        row for row in TABLE1_ROWS
        if all(matrix[p].cell(row) is Availability.AVAILABLE for p in PLATFORM_ORDER)
    ]


def render_capability_table() -> str:
    """ASCII rendering of Table I."""
    matrix = capability_matrix()
    item_width = max(len(row.item) for row in TABLE1_ROWS) + 2
    col_width = max(len(p) for p in PLATFORM_ORDER) + 2
    lines = [
        " " * item_width + "".join(p.ljust(col_width) for p in PLATFORM_ORDER)
    ]
    current_category = None
    for row in TABLE1_ROWS:
        if row.category != current_category:
            current_category = row.category
            lines.append(current_category)
        cells = "".join(
            matrix[p].cell(row).mark.ljust(col_width) for p in PLATFORM_ORDER
        )
        lines.append("  " + row.item.ljust(item_width - 2) + cells)
    return "\n".join(lines)
