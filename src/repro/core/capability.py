"""The unified environmental-data taxonomy — the paper's Table I.

Table I compares what each platform can report, across five categories
(total power breakdown, temperature, main memory, processor, fans) plus
power limits.  The matrix is **derived**, not hand-maintained: each
platform's column is declared once as a
:class:`~repro.mech.capability_decl.CapabilityDecl` in the mechanism
layer, and this module turns those declarations into the
:class:`PlatformCapabilities` the table renderer lays out exactly as
the paper does.  The benchmark then checks the paper's headline claims
against the derived matrix ("just about the only data point which is
collectible on all of these platforms is total power consumption").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.mech.capability_decl import PLATFORM_DECLS, CapabilityDecl


class Availability(enum.Enum):
    """One cell of Table I."""

    AVAILABLE = "yes"
    UNAVAILABLE = "no"
    NOT_APPLICABLE = "n/a"

    @property
    def mark(self) -> str:
        return {"yes": "+", "no": "-", "n/a": "N/A"}[self.value]


@dataclass(frozen=True)
class CapabilityRow:
    """(category, item) identifying one Table I row."""

    category: str
    item: str

    @property
    def key(self) -> str:
        return f"{self.category}/{self.item}"


#: Table I's row structure, in the paper's order.
TABLE1_ROWS: list[CapabilityRow] = [
    CapabilityRow("Total Power Consumption (Watts)", "Total"),
    CapabilityRow("Total Power Consumption (Watts)", "Voltage"),
    CapabilityRow("Total Power Consumption (Watts)", "Current"),
    CapabilityRow("Total Power Consumption (Watts)", "PCI Express"),
    CapabilityRow("Total Power Consumption (Watts)", "Main Memory"),
    CapabilityRow("Temperature", "Die"),
    CapabilityRow("Temperature", "DDR/GDDR"),
    CapabilityRow("Temperature", "Device"),
    CapabilityRow("Temperature", "Intake (Fan-In)"),
    CapabilityRow("Temperature", "Exhaust (Fan-Out)"),
    CapabilityRow("Main Memory", "Used"),
    CapabilityRow("Main Memory", "Free"),
    CapabilityRow("Main Memory", "Speed (kT/sec)"),
    CapabilityRow("Main Memory", "Frequency"),
    CapabilityRow("Main Memory", "Voltage"),
    CapabilityRow("Main Memory", "Clock Rate"),
    CapabilityRow("Processor", "Voltage"),
    CapabilityRow("Processor", "Frequency"),
    CapabilityRow("Processor", "Clock Rate"),
    CapabilityRow("Fans", "Speed (In RPM)"),
    CapabilityRow("Limits", "Get/Set Power Limit"),
]

#: Table I's column order.
PLATFORM_ORDER = ("Xeon Phi", "NVML", "Blue Gene/Q", "RAPL")


@dataclass(frozen=True)
class PlatformCapabilities:
    """One platform's column: row key -> availability.

    Rows not mentioned default to UNAVAILABLE, so adapters only list
    what they *can* do (plus explicit N/A rows for data that makes no
    sense on the platform, e.g. fans on a water-cooled BG/Q).
    """

    platform: str
    available: frozenset[str]
    not_applicable: frozenset[str] = frozenset()

    def cell(self, row: CapabilityRow) -> Availability:
        if row.key in self.not_applicable:
            return Availability.NOT_APPLICABLE
        if row.key in self.available:
            return Availability.AVAILABLE
        return Availability.UNAVAILABLE


def _keys(*pairs: tuple[str, str]) -> frozenset[str]:
    return frozenset(CapabilityRow(c, i).key for c, i in pairs)


# ---------------------------------------------------------------------------
# Platform columns, derived from the mechanism layer's declarations.
# Each declaration mirrors what its simulator actually exposes; the
# unit tests cross-check notable cells against the simulator APIs
# (e.g. NVML has no voltage query; EMON has V and I).
# ---------------------------------------------------------------------------


def derive_capabilities(decl: CapabilityDecl) -> PlatformCapabilities:
    """One Table I column from its mechanism-layer declaration."""
    return PlatformCapabilities(
        platform=decl.platform,
        available=_keys(*decl.available),
        not_applicable=_keys(*decl.not_applicable),
    )


_PLATFORMS = {
    name: derive_capabilities(decl) for name, decl in PLATFORM_DECLS.items()
}

XEON_PHI_CAPABILITIES = _PLATFORMS["Xeon Phi"]
NVML_CAPABILITIES = _PLATFORMS["NVML"]
BGQ_CAPABILITIES = _PLATFORMS["Blue Gene/Q"]
RAPL_CAPABILITIES = _PLATFORMS["RAPL"]


def platform_capabilities(platform: str) -> PlatformCapabilities:
    """One platform's Table I column, by name."""
    capabilities = _PLATFORMS.get(platform)
    if capabilities is None:
        raise KeyError(
            f"unknown platform {platform!r}; have {sorted(_PLATFORMS)}"
        )
    return capabilities


def capability_matrix() -> dict[str, PlatformCapabilities]:
    """Platform name -> capabilities, in Table I column order."""
    return {name: _PLATFORMS[name] for name in PLATFORM_ORDER}


def universal_rows() -> list[CapabilityRow]:
    """Rows available on *every* platform — the paper's conclusion says
    this is (essentially) just total power consumption."""
    matrix = capability_matrix()
    return [
        row for row in TABLE1_ROWS
        if all(matrix[p].cell(row) is Availability.AVAILABLE for p in PLATFORM_ORDER)
    ]


def render_capability_table() -> str:
    """ASCII rendering of Table I."""
    matrix = capability_matrix()
    item_width = max(len(row.item) for row in TABLE1_ROWS) + 2
    col_width = max(len(p) for p in PLATFORM_ORDER) + 2
    lines = [
        " " * item_width + "".join(p.ljust(col_width) for p in PLATFORM_ORDER)
    ]
    current_category = None
    for row in TABLE1_ROWS:
        if row.category != current_category:
            current_category = row.category
            lines.append(current_category)
        cells = "".join(
            matrix[p].cell(row).mark.ljust(col_width) for p in PLATFORM_ORDER
        )
        lines.append("  " + row.item.ljust(item_width - 2) + cells)
    return "\n".join(lines)
