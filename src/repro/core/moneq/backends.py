"""The five concrete MonEQ backends (four platforms; the Phi has two).

Minimum polling intervals follow the paper:

* BG/Q EMON: 560 ms (two sensor generations) at 1.10 ms/query = 0.19 %;
* RAPL via MSR: 60 ms — faster reads hit the documented update jitter,
  slower than ~60 s overflows the counter — at 0.03 ms/query;
* NVML: 60 ms hardware refresh at ~1.3 ms/query (1.25 % at 100 ms);
* Phi SysMgmt (in-band): 100 ms at 14.2 ms/query (the paper's ~14 %);
* Phi MICRAS daemon: 50 ms (SMC refresh) at 0.04 ms/query.
"""

from __future__ import annotations

from repro.bgq.domains import BGQ_DOMAINS
from repro.bgq.emon import EMON_QUERY_LATENCY_S, EmonInterface
from repro.core.capability import (
    BGQ_CAPABILITIES,
    NVML_CAPABILITIES,
    PlatformCapabilities,
    RAPL_CAPABILITIES,
    XEON_PHI_CAPABILITIES,
)
from repro.core.moneq.backend import Backend
from repro.errors import ConfigError
from repro.obs.instruments import RAPL_WRAP_CORRECTIONS
from repro.nvml.device import GpuDevice
from repro.rapl.domains import RaplDomain
from repro.rapl.package import CpuPackage
from repro.xeonphi.micras import MICRAS_READ_LATENCY_S, MicrasDaemon
from repro.xeonphi.sysmgmt import SYSMGMT_QUERY_LATENCY_S, SysMgmtApi


class BgqEmonBackend(Backend):
    """The 7-domain EMON view of one node card (32 nodes)."""

    platform = "Blue Gene/Q"
    mechanism = "emon"
    MIN_INTERVAL_S = 0.560

    def __init__(self, emon: EmonInterface):
        self.emon = emon
        self.label = emon.node_board.location

    @property
    def min_interval_s(self) -> float:
        return self.MIN_INTERVAL_S

    @property
    def query_latency_s(self) -> float:
        return EMON_QUERY_LATENCY_S

    def fields(self) -> list[str]:
        names = [spec.domain.value for spec in BGQ_DOMAINS]
        return [f"{n}_w" for n in names] + ["node_card_w"]

    def read_at(self, t: float) -> dict[str, float]:
        readings = self.emon.collect_at(t)
        row = {f"{r.domain.value}_w": r.power_w for r in readings}
        row["node_card_w"] = sum(r.power_w for r in readings)
        return row

    def capabilities(self) -> PlatformCapabilities:
        return BGQ_CAPABILITIES


class RaplMsrBackend(Backend):
    """Socket-level RAPL via direct MSR reads.

    Power per domain is computed from energy-counter deltas between
    consecutive ticks, with the standard single-wrap correction — so a
    too-slow session really does produce the erroneous data the paper
    warns about.
    """

    platform = "RAPL"
    mechanism = "rapl_msr"
    MIN_INTERVAL_S = 0.060

    def __init__(self, package: CpuPackage, label: str = "socket0"):
        self.package = package
        self.label = label
        self._last: dict[RaplDomain, tuple[float, int]] = {}

    @property
    def min_interval_s(self) -> float:
        return self.MIN_INTERVAL_S

    @property
    def query_latency_s(self) -> float:
        # One MSR read per domain.
        return CpuPackage.MSR_READ_LATENCY_S * len(RaplDomain)

    def fields(self) -> list[str]:
        return [f"{d.value}_w" for d in RaplDomain]

    def read_at(self, t: float) -> dict[str, float]:
        row: dict[str, float] = {}
        for domain in RaplDomain:
            raw = self.package.energy_raw(domain, t)
            prev = self._last.get(domain)
            if prev is None or t <= prev[0]:
                row[f"{domain.value}_w"] = 0.0
            else:
                delta = raw - prev[1]
                if delta < 0:
                    delta += 1 << 32
                    RAPL_WRAP_CORRECTIONS.labels(self.mechanism).inc()
                joules = delta * self.package.units.energy_j
                row[f"{domain.value}_w"] = joules / (t - prev[0])
            self._last[domain] = (t, raw)
        return row

    def capabilities(self) -> PlatformCapabilities:
        return RAPL_CAPABILITIES


class RaplPowercapBackend(Backend):
    """Socket RAPL via the powercap sysfs tree (``energy_uj`` files).

    Functionally equivalent to :class:`RaplMsrBackend` — same counters
    underneath — but needs no chmod ritual and costs a sysfs read
    (~0.05 ms) instead of a chardev pread per domain.  Available on
    kernels >= 3.13 with the ``intel_rapl`` module loaded.
    """

    platform = "RAPL"
    mechanism = "rapl_powercap"
    MIN_INTERVAL_S = 0.060
    #: Modeled sysfs open+read+parse cost per file.
    SYSFS_READ_LATENCY_S = 0.05e-3

    #: Zone suffix per domain (package zone plus three subzones).
    _ZONE_SUFFIX = {
        RaplDomain.PKG: "",
        RaplDomain.PP0: ":0",
        RaplDomain.PP1: ":1",
        RaplDomain.DRAM: ":2",
    }

    def __init__(self, node, package_index: int = 0, label: str | None = None):
        from repro.errors import DriverNotLoadedError

        if not node.kernel.is_loaded("intel_rapl"):
            raise DriverNotLoadedError(
                "powercap backend needs modprobe('intel_rapl') first"
            )
        self.node = node
        self.base = f"/sys/class/powercap/intel-rapl:{package_index}"
        self.label = label if label is not None else (
            f"{node.hostname}-powercap{package_index}"
        )
        self._last: dict[RaplDomain, tuple[float, int]] = {}

    @property
    def min_interval_s(self) -> float:
        return self.MIN_INTERVAL_S

    @property
    def query_latency_s(self) -> float:
        return self.SYSFS_READ_LATENCY_S * len(RaplDomain)

    def fields(self) -> list[str]:
        return [f"{d.value}_w" for d in RaplDomain]

    def read_at(self, t: float) -> dict[str, float]:
        # energy_uj files render at the node clock's *current* time; the
        # session samples at tick time, so pin the clock view by reading
        # through the provider at the right instant (ticks fire at t).
        row: dict[str, float] = {}
        for domain in RaplDomain:
            text = self.node.vfs.read_text(
                f"{self.base}{self._ZONE_SUFFIX[domain]}/energy_uj"
            )
            micro_j = int(text.strip())
            prev = self._last.get(domain)
            if prev is None or t <= prev[0]:
                row[f"{domain.value}_w"] = 0.0
            else:
                delta = micro_j - prev[1]
                if delta < 0:  # counter wrap, single-wrap correction
                    delta += int((1 << 32) * 2.0 ** -16 * 1e6)
                    RAPL_WRAP_CORRECTIONS.labels(self.mechanism).inc()
                row[f"{domain.value}_w"] = delta / 1e6 / (t - prev[0])
            self._last[domain] = (t, micro_j)
        return row

    def capabilities(self) -> PlatformCapabilities:
        return RAPL_CAPABILITIES


class NvmlBackend(Backend):
    """Board power + temperature of one Kepler GPU."""

    platform = "NVML"
    mechanism = "nvml"
    MIN_INTERVAL_S = 0.060

    def __init__(self, gpu: GpuDevice, query_latency_s: float = 1.3e-3):
        if not gpu.model.supports_power_readings:
            raise ConfigError(
                f"{gpu.model.name} is pre-Kepler: NVML exposes no power data"
            )
        self.gpu = gpu
        self.label = f"{gpu.model.name}#{gpu.index}"
        self._query_latency_s = query_latency_s

    @property
    def min_interval_s(self) -> float:
        return self.MIN_INTERVAL_S

    @property
    def query_latency_s(self) -> float:
        return self._query_latency_s

    def fields(self) -> list[str]:
        return ["board_w", "die_temp_c"]

    def read_at(self, t: float) -> dict[str, float]:
        return {
            "board_w": float(self.gpu.power_sensor.read(t)),
            "die_temp_c": float(self.gpu.temperature_c(t)),
        }

    def capabilities(self) -> PlatformCapabilities:
        return NVML_CAPABILITIES


class PhiSysMgmtBackend(Backend):
    """In-band (SysMgmt API) view of one Phi card — expensive and
    power-perturbing, per the paper."""

    platform = "Xeon Phi"
    mechanism = "sysmgmt"
    MIN_INTERVAL_S = 0.100

    def __init__(self, api: SysMgmtApi):
        self.api = api
        self.label = f"mic{api.card.mic_index}"

    @property
    def min_interval_s(self) -> float:
        return self.MIN_INTERVAL_S

    @property
    def query_latency_s(self) -> float:
        return SYSMGMT_QUERY_LATENCY_S

    def fields(self) -> list[str]:
        return ["card_w", "die_temp_c", "exhaust_temp_c"]

    def read_at(self, t: float) -> dict[str, float]:
        smc = self.api.smc
        return {
            "card_w": smc.read_sensor("power_w", t),
            "die_temp_c": smc.read_sensor("die_temp_c", t),
            "exhaust_temp_c": smc.read_sensor("exhaust_temp_c", t),
        }

    def capabilities(self) -> PlatformCapabilities:
        return XEON_PHI_CAPABILITIES

    def on_session_start(self, t: float, interval_s: float) -> None:
        self.api.start_polling(interval_s, t)

    def on_session_stop(self, t: float) -> None:
        self.api.stop_polling(t)


class PhiMicrasBackend(Backend):
    """Device-side MICRAS pseudo-file view of one Phi card — cheap, but
    the read contends with the application on the card."""

    platform = "Xeon Phi"
    mechanism = "micras"
    MIN_INTERVAL_S = 0.050

    def __init__(self, daemon: MicrasDaemon):
        self.daemon = daemon
        self.label = f"mic{daemon.card.mic_index}-daemon"

    @property
    def min_interval_s(self) -> float:
        return self.MIN_INTERVAL_S

    @property
    def query_latency_s(self) -> float:
        # power + die temp reads.
        return 2 * MICRAS_READ_LATENCY_S

    def fields(self) -> list[str]:
        return ["card_w", "die_temp_c"]

    def read_at(self, t: float) -> dict[str, float]:
        smc = self.daemon.smc
        return {
            "card_w": smc.read_sensor("power_w", t),
            "die_temp_c": smc.read_sensor("die_temp_c", t),
        }

    def capabilities(self) -> PlatformCapabilities:
        return XEON_PHI_CAPABILITIES
