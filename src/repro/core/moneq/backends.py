"""The concrete MonEQ backends (four platforms; RAPL and the Phi have
multiple access paths).

Minimum polling intervals follow the paper:

* BG/Q EMON: 560 ms (two sensor generations) at 1.10 ms/query = 0.19 %;
* RAPL via MSR: 60 ms — faster reads hit the documented update jitter,
  slower than ~60 s overflows the counter — at 0.03 ms/query;
* RAPL via perf_event: same counters, but each read crosses the kernel
  (~0.10 ms modeled syscall cost);
* NVML: 60 ms hardware refresh at ~1.3 ms/query (1.25 % at 100 ms);
* Phi SysMgmt (in-band): 100 ms at 14.2 ms/query (the paper's ~14 %);
* Phi MICRAS daemon: 50 ms (SMC refresh) at 0.04 ms/query;
* Phi out-of-band (BMC over IPMB): free for host and card, but 22 ms
  per sensor exchange and milli-unit wire quantization.

Every backend implements a native vectorized :meth:`Backend.read_block`
that is bit-identical to looping ``read_at`` over the same grid — the
contract the block-sampling engine's byte-identical-output guarantee
rests on.
"""

from __future__ import annotations

import numpy as np

from repro.bgq.domains import BGQ_DOMAINS
from repro.bgq.emon import EMON_QUERY_LATENCY_S, EmonInterface
from repro.core.capability import (
    BGQ_CAPABILITIES,
    NVML_CAPABILITIES,
    PlatformCapabilities,
    RAPL_CAPABILITIES,
    XEON_PHI_CAPABILITIES,
)
from repro.core.moneq.backend import Backend
from repro.errors import ConfigError
from repro.obs.instruments import RAPL_WRAP_CORRECTIONS
from repro.nvml.device import GpuDevice
from repro.rapl.domains import RaplDomain
from repro.rapl.package import CpuPackage
from repro.rapl.perf_event import (
    PERF_ENERGY_UNIT_J,
    PERF_RAPL_EVENTS,
    PERF_READ_LATENCY_S,
    PerfEventRapl,
)
from repro.xeonphi.ipmb import (
    IPMB_EXCHANGE_LATENCY_S,
    BaseboardManagementController,
    quantize_block,
    quantize_reading,
)
from repro.xeonphi.micras import MICRAS_READ_LATENCY_S, MicrasDaemon
from repro.xeonphi.sysmgmt import SYSMGMT_QUERY_LATENCY_S, SysMgmtApi


def _empty_block(fields: list[str], n: int) -> np.ndarray:
    """A zeroed structured block with one f8 column per field."""
    return np.zeros(n, dtype=[(name, "f8") for name in fields])


def _consecutive_deltas(
    times: np.ndarray, raws: np.ndarray, prev: tuple[float, int] | None,
    modulus: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, int, tuple[float, int]]:
    """Vectorized consecutive-read differencing for counter backends.

    Mirrors the scalar loop bit for bit: each row differences against
    the preceding row (or the carried-over ``prev`` state for row 0),
    and negative deltas get the single-wrap correction.  Returns
    ``(delta, dt, fresh, wrap_count, new_prev)`` where ``fresh`` marks
    rows without a usable predecessor (the scalar path's 0.0 rows; their
    ``dt`` is pinned to 1.0 so callers can divide unconditionally).
    """
    n = times.shape[0]
    prev_t = np.empty(n, dtype=np.float64)
    prev_raw = np.empty(n, dtype=np.int64)
    prev_t[1:] = times[:-1]
    prev_raw[1:] = raws[:-1]
    if prev is None:
        prev_t[0] = np.inf  # forces the scalar path's "no predecessor" row
        prev_raw[0] = 0
    else:
        prev_t[0], prev_raw[0] = prev
    fresh = times <= prev_t
    delta = raws - prev_raw
    wrapped = (delta < 0) & ~fresh
    delta = delta + wrapped * modulus
    dt = times - prev_t
    dt[fresh] = 1.0
    return (delta, dt, fresh, int(np.count_nonzero(wrapped)),
            (float(times[-1]), int(raws[-1])))


class BgqEmonBackend(Backend):
    """The 7-domain EMON view of one node card (32 nodes)."""

    platform = "Blue Gene/Q"
    mechanism = "emon"
    MIN_INTERVAL_S = 0.560

    def __init__(self, emon: EmonInterface):
        self.emon = emon
        self.label = emon.node_board.location

    @property
    def min_interval_s(self) -> float:
        return self.MIN_INTERVAL_S

    @property
    def query_latency_s(self) -> float:
        return EMON_QUERY_LATENCY_S

    def fields(self) -> list[str]:
        names = [spec.domain.value for spec in BGQ_DOMAINS]
        return [f"{n}_w" for n in names] + ["node_card_w"]

    def read_at(self, t: float) -> dict[str, float]:
        readings = self.emon.collect_at(t)
        row = {f"{r.domain.value}_w": r.power_w for r in readings}
        row["node_card_w"] = sum(r.power_w for r in readings)
        return row

    def read_block(self, times: np.ndarray) -> np.ndarray:
        times = np.asarray(times, dtype=np.float64)
        out = _empty_block(self.fields(), times.shape[0])
        powers = self.emon.collect_block(times)
        # node_card_w accumulates in domain order, like the scalar sum().
        total = np.zeros(times.shape[0])
        for spec in BGQ_DOMAINS:
            column = powers[spec.domain]
            out[f"{spec.domain.value}_w"] = column
            total = total + column
        out["node_card_w"] = total
        return out

    def capabilities(self) -> PlatformCapabilities:
        return BGQ_CAPABILITIES


class RaplMsrBackend(Backend):
    """Socket-level RAPL via direct MSR reads.

    Power per domain is computed from energy-counter deltas between
    consecutive ticks, with the standard single-wrap correction — so a
    too-slow session really does produce the erroneous data the paper
    warns about.
    """

    platform = "RAPL"
    mechanism = "rapl_msr"
    MIN_INTERVAL_S = 0.060

    def __init__(self, package: CpuPackage, label: str = "socket0"):
        self.package = package
        self.label = label
        self._last: dict[RaplDomain, tuple[float, int]] = {}

    @property
    def min_interval_s(self) -> float:
        return self.MIN_INTERVAL_S

    @property
    def query_latency_s(self) -> float:
        # One MSR read per domain.
        return CpuPackage.MSR_READ_LATENCY_S * len(RaplDomain)

    def fields(self) -> list[str]:
        return [f"{d.value}_w" for d in RaplDomain]

    def read_at(self, t: float) -> dict[str, float]:
        row: dict[str, float] = {}
        for domain in RaplDomain:
            raw = self.package.energy_raw(domain, t)
            prev = self._last.get(domain)
            if prev is None or t <= prev[0]:
                row[f"{domain.value}_w"] = 0.0
            else:
                delta = raw - prev[1]
                if delta < 0:
                    delta += 1 << 32
                    RAPL_WRAP_CORRECTIONS.labels(self.mechanism).inc()
                joules = delta * self.package.units.energy_j
                row[f"{domain.value}_w"] = joules / (t - prev[0])
            self._last[domain] = (t, raw)
        return row

    def read_block(self, times: np.ndarray) -> np.ndarray:
        times = np.asarray(times, dtype=np.float64)
        out = _empty_block(self.fields(), times.shape[0])
        if times.shape[0] == 0:
            return out
        for domain in RaplDomain:
            raws = self.package.energy_raw_block(domain, times)
            delta, dt, fresh, wraps, self._last[domain] = _consecutive_deltas(
                times, raws, self._last.get(domain), 1 << 32
            )
            if wraps:
                RAPL_WRAP_CORRECTIONS.labels(self.mechanism).inc(wraps)
            power = (delta * self.package.units.energy_j) / dt
            power[fresh] = 0.0
            out[f"{domain.value}_w"] = power
        return out

    def capabilities(self) -> PlatformCapabilities:
        return RAPL_CAPABILITIES


class RaplPowercapBackend(Backend):
    """Socket RAPL via the powercap sysfs tree (``energy_uj`` files).

    Functionally equivalent to :class:`RaplMsrBackend` — same counters
    underneath — but needs no chmod ritual and costs a sysfs read
    (~0.05 ms) instead of a chardev pread per domain.  Available on
    kernels >= 3.13 with the ``intel_rapl`` module loaded.
    """

    platform = "RAPL"
    mechanism = "rapl_powercap"
    MIN_INTERVAL_S = 0.060
    #: Modeled sysfs open+read+parse cost per file.
    SYSFS_READ_LATENCY_S = 0.05e-3

    #: Zone suffix per domain (package zone plus three subzones).
    _ZONE_SUFFIX = {
        RaplDomain.PKG: "",
        RaplDomain.PP0: ":0",
        RaplDomain.PP1: ":1",
        RaplDomain.DRAM: ":2",
    }

    def __init__(self, node, package_index: int = 0, label: str | None = None):
        from repro.errors import DriverNotLoadedError

        if not node.kernel.is_loaded("intel_rapl"):
            raise DriverNotLoadedError(
                "powercap backend needs modprobe('intel_rapl') first"
            )
        self.node = node
        self.base = f"/sys/class/powercap/intel-rapl:{package_index}"
        self.label = label if label is not None else (
            f"{node.hostname}-powercap{package_index}"
        )
        # The package behind this zone: the block path reads its counters
        # directly (energy_uj files render at the *current* clock, which
        # is wrong for lookahead sampling).
        packages = node.devices("cpu")
        self._package = (packages[package_index]
                         if package_index < len(packages) else None)
        self._last: dict[RaplDomain, tuple[float, int]] = {}

    @property
    def min_interval_s(self) -> float:
        return self.MIN_INTERVAL_S

    @property
    def query_latency_s(self) -> float:
        return self.SYSFS_READ_LATENCY_S * len(RaplDomain)

    def fields(self) -> list[str]:
        return [f"{d.value}_w" for d in RaplDomain]

    def read_at(self, t: float) -> dict[str, float]:
        # energy_uj files render at the node clock's *current* time; the
        # session samples at tick time, so pin the clock view by reading
        # through the provider at the right instant (ticks fire at t).
        row: dict[str, float] = {}
        for domain in RaplDomain:
            text = self.node.vfs.read_text(
                f"{self.base}{self._ZONE_SUFFIX[domain]}/energy_uj"
            )
            micro_j = int(text.strip())
            prev = self._last.get(domain)
            if prev is None or t <= prev[0]:
                row[f"{domain.value}_w"] = 0.0
            else:
                delta = micro_j - prev[1]
                if delta < 0:  # counter wrap, single-wrap correction
                    delta += int((1 << 32) * 2.0 ** -16 * 1e6)
                    RAPL_WRAP_CORRECTIONS.labels(self.mechanism).inc()
                row[f"{domain.value}_w"] = delta / 1e6 / (t - prev[0])
            self._last[domain] = (t, micro_j)
        return row

    def read_block(self, times: np.ndarray) -> np.ndarray:
        if self._package is None:  # pragma: no cover - defensive
            return super().read_block(times)
        times = np.asarray(times, dtype=np.float64)
        out = _empty_block(self.fields(), times.shape[0])
        if times.shape[0] == 0:
            return out
        for domain in RaplDomain:
            # The driver's energy_uj provider, applied at each tick time
            # instead of the current clock: int(raw * energy_j * 1e6).
            raws = self._package.energy_raw_block(domain, times)
            micro_j = np.floor(
                raws * self._package.units.energy_j * 1e6
            ).astype(np.int64)
            delta, dt, fresh, wraps, self._last[domain] = _consecutive_deltas(
                times, micro_j, self._last.get(domain),
                int((1 << 32) * 2.0 ** -16 * 1e6),
            )
            if wraps:
                RAPL_WRAP_CORRECTIONS.labels(self.mechanism).inc(wraps)
            power = (delta / 1e6) / dt
            power[fresh] = 0.0
            out[f"{domain.value}_w"] = power
        return out

    def capabilities(self) -> PlatformCapabilities:
        return RAPL_CAPABILITIES


class NvmlBackend(Backend):
    """Board power + temperature of one Kepler GPU."""

    platform = "NVML"
    mechanism = "nvml"
    MIN_INTERVAL_S = 0.060

    def __init__(self, gpu: GpuDevice, query_latency_s: float = 1.3e-3):
        if not gpu.model.supports_power_readings:
            raise ConfigError(
                f"{gpu.model.name} is pre-Kepler: NVML exposes no power data"
            )
        self.gpu = gpu
        self.label = f"{gpu.model.name}#{gpu.index}"
        self._query_latency_s = query_latency_s

    @property
    def min_interval_s(self) -> float:
        return self.MIN_INTERVAL_S

    @property
    def query_latency_s(self) -> float:
        return self._query_latency_s

    def fields(self) -> list[str]:
        return ["board_w", "die_temp_c"]

    def read_at(self, t: float) -> dict[str, float]:
        return {
            "board_w": float(self.gpu.power_sensor.read(t)),
            "die_temp_c": float(self.gpu.temperature_c(t)),
        }

    def read_block(self, times: np.ndarray) -> np.ndarray:
        times = np.asarray(times, dtype=np.float64)
        out = _empty_block(self.fields(), times.shape[0])
        out["board_w"] = self.gpu.power_sensor.read(times)
        out["die_temp_c"] = self.gpu.temperature_c(times)
        return out

    def capabilities(self) -> PlatformCapabilities:
        return NVML_CAPABILITIES


class PhiSysMgmtBackend(Backend):
    """In-band (SysMgmt API) view of one Phi card — expensive and
    power-perturbing, per the paper."""

    platform = "Xeon Phi"
    mechanism = "sysmgmt"
    MIN_INTERVAL_S = 0.100

    def __init__(self, api: SysMgmtApi):
        self.api = api
        self.label = f"mic{api.card.mic_index}"

    @property
    def min_interval_s(self) -> float:
        return self.MIN_INTERVAL_S

    @property
    def query_latency_s(self) -> float:
        return SYSMGMT_QUERY_LATENCY_S

    def fields(self) -> list[str]:
        return ["card_w", "die_temp_c", "exhaust_temp_c"]

    def read_at(self, t: float) -> dict[str, float]:
        smc = self.api.smc
        return {
            "card_w": smc.read_sensor("power_w", t),
            "die_temp_c": smc.read_sensor("die_temp_c", t),
            "exhaust_temp_c": smc.read_sensor("exhaust_temp_c", t),
        }

    def read_block(self, times: np.ndarray) -> np.ndarray:
        times = np.asarray(times, dtype=np.float64)
        smc = self.api.smc
        out = _empty_block(self.fields(), times.shape[0])
        out["card_w"] = smc.read_sensor_block("power_w", times)
        out["die_temp_c"] = smc.read_sensor_block("die_temp_c", times)
        out["exhaust_temp_c"] = smc.read_sensor_block("exhaust_temp_c", times)
        return out

    def capabilities(self) -> PlatformCapabilities:
        return XEON_PHI_CAPABILITIES

    def on_session_start(self, t: float, interval_s: float) -> None:
        self.api.start_polling(interval_s, t)

    def on_session_stop(self, t: float) -> None:
        self.api.stop_polling(t)


class PhiMicrasBackend(Backend):
    """Device-side MICRAS pseudo-file view of one Phi card — cheap, but
    the read contends with the application on the card."""

    platform = "Xeon Phi"
    mechanism = "micras"
    MIN_INTERVAL_S = 0.050

    def __init__(self, daemon: MicrasDaemon):
        self.daemon = daemon
        self.label = f"mic{daemon.card.mic_index}-daemon"

    @property
    def min_interval_s(self) -> float:
        return self.MIN_INTERVAL_S

    @property
    def query_latency_s(self) -> float:
        # power + die temp reads.
        return 2 * MICRAS_READ_LATENCY_S

    def fields(self) -> list[str]:
        return ["card_w", "die_temp_c"]

    def read_at(self, t: float) -> dict[str, float]:
        smc = self.daemon.smc
        return {
            "card_w": smc.read_sensor("power_w", t),
            "die_temp_c": smc.read_sensor("die_temp_c", t),
        }

    def read_block(self, times: np.ndarray) -> np.ndarray:
        times = np.asarray(times, dtype=np.float64)
        smc = self.daemon.smc
        out = _empty_block(self.fields(), times.shape[0])
        out["card_w"] = smc.read_sensor_block("power_w", times)
        out["die_temp_c"] = smc.read_sensor_block("die_temp_c", times)
        return out

    def capabilities(self) -> PlatformCapabilities:
        return XEON_PHI_CAPABILITIES


class RaplPerfBackend(Backend):
    """Socket-level RAPL via the perf_event kernel interface.

    Same hardware counters as :class:`RaplMsrBackend`, but read through
    perf's normalized 2^-32 J units with a syscall crossing per event —
    the paper's "included as of Linux 3.14" path.  Session reads are
    passive (:meth:`PerfEventRapl.read_at`); the session owns time and
    charges the modeled syscall latency per tick.
    """

    platform = "RAPL"
    mechanism = "rapl_perf"
    MIN_INTERVAL_S = 0.060

    def __init__(self, perf: PerfEventRapl, label: str | None = None):
        self.perf = perf
        self.label = label if label is not None else (
            f"{perf.node.hostname}-perf{perf.package.socket}"
        )
        # The 32-bit hardware wrap re-expressed in perf units (2^48 for
        # the standard 2^-16 J hardware unit).
        self._modulus = int(round(
            (1 << 32) * perf.package.units.energy_j / PERF_ENERGY_UNIT_J
        ))
        self._last: dict[RaplDomain, tuple[float, int]] = {}

    @property
    def min_interval_s(self) -> float:
        return self.MIN_INTERVAL_S

    @property
    def query_latency_s(self) -> float:
        # One perf read syscall per event.
        return PERF_READ_LATENCY_S * len(PERF_RAPL_EVENTS)

    def fields(self) -> list[str]:
        return [f"{d.value}_w" for d in PERF_RAPL_EVENTS.values()]

    def read_at(self, t: float) -> dict[str, float]:
        row: dict[str, float] = {}
        for event, domain in PERF_RAPL_EVENTS.items():
            raw = self.perf.read_at(event, t)
            prev = self._last.get(domain)
            if prev is None or t <= prev[0]:
                row[f"{domain.value}_w"] = 0.0
            else:
                delta = raw - prev[1]
                if delta < 0:
                    delta += self._modulus
                    RAPL_WRAP_CORRECTIONS.labels(self.mechanism).inc()
                row[f"{domain.value}_w"] = delta * PERF_ENERGY_UNIT_J / (t - prev[0])
            self._last[domain] = (t, raw)
        return row

    def read_block(self, times: np.ndarray) -> np.ndarray:
        times = np.asarray(times, dtype=np.float64)
        out = _empty_block(self.fields(), times.shape[0])
        if times.shape[0] == 0:
            return out
        for event, domain in PERF_RAPL_EVENTS.items():
            raws = self.perf.read_block(event, times)
            delta, dt, fresh, wraps, self._last[domain] = _consecutive_deltas(
                times, raws, self._last.get(domain), self._modulus
            )
            if wraps:
                RAPL_WRAP_CORRECTIONS.labels(self.mechanism).inc(wraps)
            power = (delta * PERF_ENERGY_UNIT_J) / dt
            power[fresh] = 0.0
            out[f"{domain.value}_w"] = power
        return out

    def capabilities(self) -> PlatformCapabilities:
        return RAPL_CAPABILITIES


class PhiIpmbBackend(Backend):
    """Out-of-band view of one Phi card: the platform BMC polling the
    SMC over IPMB.

    The exchange costs the host and the card *nothing* — attach this
    backend with no process so the session charges no one — but every
    sensor is a full 22 ms bus round trip and values arrive quantized
    to milli-units by the wire encoding.
    """

    platform = "Xeon Phi"
    mechanism = "ipmb"
    MIN_INTERVAL_S = 0.100

    #: (output field, SMC sensor) pairs, one IPMB exchange each.
    _SENSORS = (
        ("card_w", "power_w"),
        ("die_temp_c", "die_temp_c"),
        ("exhaust_temp_c", "exhaust_temp_c"),
    )

    def __init__(self, bmc: BaseboardManagementController,
                 label: str | None = None):
        self.bmc = bmc
        self.smc = bmc.responder.smc
        self.label = label if label is not None else (
            f"mic{self.smc.card.mic_index}-bmc"
        )

    @property
    def min_interval_s(self) -> float:
        return self.MIN_INTERVAL_S

    @property
    def query_latency_s(self) -> float:
        # One IPMB request/response exchange per sensor.
        return IPMB_EXCHANGE_LATENCY_S * len(self._SENSORS)

    def fields(self) -> list[str]:
        return [name for name, _ in self._SENSORS]

    def read_at(self, t: float) -> dict[str, float]:
        return {
            name: quantize_reading(self.smc.read_sensor(sensor, t))
            for name, sensor in self._SENSORS
        }

    def read_block(self, times: np.ndarray) -> np.ndarray:
        times = np.asarray(times, dtype=np.float64)
        out = _empty_block(self.fields(), times.shape[0])
        for name, sensor in self._SENSORS:
            out[name] = quantize_block(self.smc.read_sensor_block(sensor, times))
        return out

    def capabilities(self) -> PlatformCapabilities:
        return XEON_PHI_CAPABILITIES
