"""The concrete MonEQ backends: eight declared vendor paths.

Each backend is a thin :class:`~repro.mech.mechanism.Mechanism`
composition — a registered :class:`~repro.mech.registry.MechanismSpec`
(access channel + freshness model + capability declaration + field
list) bound to a :class:`~repro.mech.source.SensorSource` wrapping the
live device.  The scalar ``read_at`` and vectorized ``read_block`` are
generic, implemented once at the mechanism layer with parity guaranteed
there; nothing below declares a read body.

Minimum polling intervals follow the paper, derived by each spec's
freshness model:

* BG/Q EMON: 560 ms (two sensor generations) at 1.10 ms/query = 0.19 %;
* RAPL via MSR: 60 ms — faster reads hit the documented update jitter,
  slower than ~60 s overflows the counter — at 0.03 ms/query;
* RAPL via perf_event: same counters, but each read crosses the kernel
  (~0.10 ms modeled syscall cost);
* NVML: 60 ms hardware refresh at ~1.3 ms/query (1.25 % at 100 ms);
* Phi SysMgmt (in-band): 100 ms at 14.2 ms/query (the paper's ~14 %);
* Phi MICRAS daemon: 50 ms (SMC refresh) at 0.04 ms/query;
* Phi out-of-band (BMC over IPMB): free for host and card, but 22 ms
  per sensor exchange and milli-unit wire quantization.
"""

from __future__ import annotations

from repro.bgq.emon import (
    EMON_QUERY_LATENCY_S,
    GENERATION_PERIOD_S,
    EmonInterface,
)
from repro.bgq.source import EMON_FIELDS, EmonSource
from repro.errors import ConfigError, DriverNotLoadedError
from repro.mech.capability_decl import (
    BGQ_DECL,
    NVML_DECL,
    RAPL_DECL,
    XEON_PHI_DECL,
)
from repro.mech.channel import MILLI_UNITS, AccessChannel
from repro.mech.freshness import FreshnessModel
from repro.mech.mechanism import Mechanism
from repro.mech.registry import MechanismSpec, register
from repro.nvml.device import GpuDevice
from repro.nvml.source import NVML_FIELDS, NvmlSource
from repro.rapl.domains import RaplDomain
from repro.rapl.package import CpuPackage
from repro.rapl.perf_event import (
    PERF_RAPL_EVENTS,
    PERF_READ_LATENCY_S,
    PerfEventRapl,
)
from repro.rapl.sources import (
    RAPL_FIELDS,
    MsrCounterSource,
    PerfCounterSource,
    PowercapCounterSource,
)
from repro.xeonphi.ipmb import (
    IPMB_EXCHANGE_LATENCY_S,
    BaseboardManagementController,
)
from repro.xeonphi.micras import MICRAS_READ_LATENCY_S, MicrasDaemon
from repro.xeonphi.smc import SystemManagementController
from repro.xeonphi.sources import (
    IPMB_SENSORS,
    MICRAS_SENSORS,
    MICSMC_SENSORS,
    SYSMGMT_SENSORS,
    SmcSensorSource,
)
from repro.xeonphi.sysmgmt import SYSMGMT_QUERY_LATENCY_S, SysMgmtApi

# ---------------------------------------------------------------------------
# The declarations.  Everything MonEQ (and Table II) needs to know about
# a vendor path is here; the classes below only bind live devices.
# ---------------------------------------------------------------------------

#: RAPL's freshness floor is shared by all three access paths — same
#: counters, same documented update jitter underneath.
_RAPL_FRESHNESS = FreshnessModel.floor(
    0.060, note="documented update jitter below 60 ms; ~60 s wraps the counter"
)

EMON_SPEC = register(MechanismSpec(
    name="emon",
    platform="Blue Gene/Q",
    channel=AccessChannel(
        "emon-api", EMON_QUERY_LATENCY_S,
        description="in-band EMON personality call, all 7 domains at once",
    ),
    freshness=FreshnessModel.generations(
        GENERATION_PERIOD_S, 2,
        note="data comes from the oldest of two sensor generations",
    ),
    capability=BGQ_DECL,
    fields=EMON_FIELDS,
    summary="7-domain node-card V*I via the EMON API",
))

RAPL_MSR_SPEC = register(MechanismSpec(
    name="rapl_msr",
    platform="RAPL",
    channel=AccessChannel(
        "msr-chardev", CpuPackage.MSR_READ_LATENCY_S,
        permission="root",
        description="pread of the energy-status MSR, one per domain; "
                    "root-only until the chmod ritual opens /dev/cpu/*/msr",
    ),
    freshness=_RAPL_FRESHNESS,
    capability=RAPL_DECL,
    fields=RAPL_FIELDS,
    queries_per_read=len(RaplDomain),
    summary="socket energy counters via direct MSR reads",
))

RAPL_POWERCAP_SPEC = register(MechanismSpec(
    name="rapl_powercap",
    platform="RAPL",
    channel=AccessChannel(
        "powercap-sysfs", 0.05e-3,
        description="sysfs energy_uj open+read+parse, one per zone; "
                    "needs kernel >= 3.13 with intel_rapl loaded",
    ),
    freshness=_RAPL_FRESHNESS,
    capability=RAPL_DECL,
    fields=RAPL_FIELDS,
    queries_per_read=len(RaplDomain),
    summary="the same counters through the powercap sysfs tree",
))

RAPL_PERF_SPEC = register(MechanismSpec(
    name="rapl_perf",
    platform="RAPL",
    channel=AccessChannel(
        "perf-syscall", PERF_READ_LATENCY_S,
        description="perf_event read syscall per power/energy-* event; "
                    "needs kernel >= 3.14",
    ),
    freshness=_RAPL_FRESHNESS,
    capability=RAPL_DECL,
    fields=tuple(f"{d.value}_w" for d in PERF_RAPL_EVENTS.values()),
    queries_per_read=len(PERF_RAPL_EVENTS),
    summary="the same counters normalized to 2^-32 J by perf",
))

NVML_SPEC = register(MechanismSpec(
    name="nvml",
    platform="NVML",
    channel=AccessChannel(
        "nvml-library", 1.3e-3,
        description="NVML library call covering board power + die temp",
    ),
    freshness=FreshnessModel.refresh(
        0.060, note="board power register refreshes every ~60 ms",
    ),
    capability=NVML_DECL,
    fields=NVML_FIELDS,
    summary="Kepler board power and die temperature via NVML",
))

SYSMGMT_SPEC = register(MechanismSpec(
    name="sysmgmt",
    platform="Xeon Phi",
    channel=AccessChannel(
        "scif-sysmgmt", SYSMGMT_QUERY_LATENCY_S,
        description="in-band SCIF round trip waking the card per query",
    ),
    freshness=FreshnessModel.floor(
        0.100, note="documented floor of the in-band management path",
    ),
    capability=XEON_PHI_DECL,
    fields=tuple(name for name, _ in SYSMGMT_SENSORS),
    summary="in-band SysMgmt API; expensive and power-perturbing",
))

MICRAS_SPEC = register(MechanismSpec(
    name="micras",
    platform="Xeon Phi",
    channel=AccessChannel(
        "micras-pseudofile", MICRAS_READ_LATENCY_S,
        description="device-side /sys/class/micras read, one per sensor",
    ),
    freshness=FreshnessModel.refresh(
        0.050, note="SMC register refresh period",
    ),
    capability=XEON_PHI_DECL,
    fields=tuple(name for name, _ in MICRAS_SENSORS),
    queries_per_read=len(MICRAS_SENSORS),
    summary="MICRAS daemon pseudo-files; cheap but contends on-card",
))

IPMB_SPEC = register(MechanismSpec(
    name="ipmb",
    platform="Xeon Phi",
    channel=AccessChannel(
        "bmc-ipmb", IPMB_EXCHANGE_LATENCY_S,
        quantization=MILLI_UNITS,
        description="BMC-to-SMC bus exchange per sensor; costs host and "
                    "card nothing, values milli-unit quantized on the wire",
    ),
    freshness=FreshnessModel.floor(
        0.100, note="documented floor of the out-of-band path",
    ),
    capability=XEON_PHI_DECL,
    fields=tuple(name for name, _ in IPMB_SENSORS),
    queries_per_read=len(IPMB_SENSORS),
    summary="out-of-band BMC polling over IPMB",
))

MICSMC_SPEC = register(MechanismSpec(
    name="micsmc",
    platform="Xeon Phi",
    channel=AccessChannel(
        "scif-micsmc", SYSMGMT_QUERY_LATENCY_S,
        description="host-side micsmc control-panel poll (paper §II-D): "
                    "one in-band SCIF round trip per card-status sensor",
    ),
    freshness=FreshnessModel.floor(
        0.100, note="rides the in-band management path and its floor",
    ),
    capability=XEON_PHI_DECL,
    fields=tuple(name for name, _ in MICSMC_SENSORS),
    queries_per_read=len(MICSMC_SENSORS),
    summary="the micsmc control-panel utility polling card status",
))

# ---------------------------------------------------------------------------
# The compositions: historical constructor signatures, no read bodies.
# ---------------------------------------------------------------------------


class BgqEmonBackend(Mechanism):
    """The 7-domain EMON view of one node card (32 nodes)."""

    platform = EMON_SPEC.platform
    mechanism = EMON_SPEC.name
    MIN_INTERVAL_S = EMON_SPEC.min_interval_s

    def __init__(self, emon: EmonInterface):
        super().__init__(EMON_SPEC, EmonSource(emon),
                         label=emon.node_board.location)
        self.emon = emon


class RaplMsrBackend(Mechanism):
    """Socket-level RAPL via direct MSR reads.

    Power per domain is computed from energy-counter deltas between
    consecutive ticks, with the standard single-wrap correction — so a
    too-slow session really does produce the erroneous data the paper
    warns about.
    """

    platform = RAPL_MSR_SPEC.platform
    mechanism = RAPL_MSR_SPEC.name
    MIN_INTERVAL_S = RAPL_MSR_SPEC.min_interval_s

    def __init__(self, package: CpuPackage, label: str = "socket0",
                 node=None, gate_path: str = "/dev/cpu/0/msr"):
        super().__init__(RAPL_MSR_SPEC, MsrCounterSource(package), label=label)
        self.package = package
        if node is not None:
            # Credentialed reads check the real chardev node, so they
            # honor the driver's current chmod state, not just the
            # declaration.
            self.bind_gate(node.vfs, gate_path)


class RaplPowercapBackend(Mechanism):
    """Socket RAPL via the powercap sysfs tree (``energy_uj`` files).

    Functionally equivalent to :class:`RaplMsrBackend` — same counters
    underneath — but needs no chmod ritual and costs a sysfs read
    (~0.05 ms) instead of a chardev pread per domain.  Available on
    kernels >= 3.13 with the ``intel_rapl`` module loaded.
    """

    platform = RAPL_POWERCAP_SPEC.platform
    mechanism = RAPL_POWERCAP_SPEC.name
    MIN_INTERVAL_S = RAPL_POWERCAP_SPEC.min_interval_s
    #: Modeled sysfs open+read+parse cost per file.
    SYSFS_READ_LATENCY_S = RAPL_POWERCAP_SPEC.channel.per_query_latency_s

    def __init__(self, node, package_index: int = 0, label: str | None = None):
        if not node.kernel.is_loaded("intel_rapl"):
            raise DriverNotLoadedError(
                "powercap backend needs modprobe('intel_rapl') first"
            )
        packages = node.devices("cpu")
        if package_index >= len(packages):
            raise ConfigError(
                f"node {node.hostname} has {len(packages)} CPU package(s); "
                f"no powercap zone {package_index}"
            )
        super().__init__(
            RAPL_POWERCAP_SPEC, PowercapCounterSource(packages[package_index]),
            label=label if label is not None else (
                f"{node.hostname}-powercap{package_index}"
            ),
        )
        self.node = node
        self.base = f"/sys/class/powercap/intel-rapl:{package_index}"


class NvmlBackend(Mechanism):
    """Board power + temperature of one Kepler GPU."""

    platform = NVML_SPEC.platform
    mechanism = NVML_SPEC.name
    MIN_INTERVAL_S = NVML_SPEC.min_interval_s

    def __init__(self, gpu: GpuDevice, query_latency_s: float = 1.3e-3):
        if not gpu.model.supports_power_readings:
            raise ConfigError(
                f"{gpu.model.name} is pre-Kepler: NVML exposes no power data"
            )
        super().__init__(
            NVML_SPEC, NvmlSource(gpu),
            label=f"{gpu.model.name}#{gpu.index}",
            channel=NVML_SPEC.channel.with_latency(query_latency_s),
        )
        self.gpu = gpu


class PhiSysMgmtBackend(Mechanism):
    """In-band (SysMgmt API) view of one Phi card — expensive and
    power-perturbing, per the paper."""

    platform = SYSMGMT_SPEC.platform
    mechanism = SYSMGMT_SPEC.name
    MIN_INTERVAL_S = SYSMGMT_SPEC.min_interval_s

    def __init__(self, api: SysMgmtApi):
        super().__init__(
            SYSMGMT_SPEC, SmcSensorSource(api.smc, SYSMGMT_SENSORS),
            label=f"mic{api.card.mic_index}",
        )
        self.api = api

    def on_session_start(self, t: float, interval_s: float) -> None:
        self.api.start_polling(interval_s, t)

    def on_session_stop(self, t: float) -> None:
        self.api.stop_polling(t)


class PhiMicrasBackend(Mechanism):
    """Device-side MICRAS pseudo-file view of one Phi card — cheap, but
    the read contends with the application on the card."""

    platform = MICRAS_SPEC.platform
    mechanism = MICRAS_SPEC.name
    MIN_INTERVAL_S = MICRAS_SPEC.min_interval_s

    def __init__(self, daemon: MicrasDaemon):
        super().__init__(
            MICRAS_SPEC, SmcSensorSource(daemon.smc, MICRAS_SENSORS),
            label=f"mic{daemon.card.mic_index}-daemon",
        )
        self.daemon = daemon


class PhiMicsmcBackend(Mechanism):
    """The host-side ``micsmc`` control panel polling one Phi card's
    status (paper §II-D) — the same SMC registers the other paths read,
    crossed in-band over SCIF one sensor at a time."""

    platform = MICSMC_SPEC.platform
    mechanism = MICSMC_SPEC.name
    MIN_INTERVAL_S = MICSMC_SPEC.min_interval_s

    def __init__(self, smc: SystemManagementController,
                 label: str | None = None):
        super().__init__(
            MICSMC_SPEC, SmcSensorSource(smc, MICSMC_SENSORS),
            label=label if label is not None else (
                f"mic{smc.card.mic_index}-micsmc"
            ),
        )
        self.smc = smc


class RaplPerfBackend(Mechanism):
    """Socket-level RAPL via the perf_event kernel interface.

    Same hardware counters as :class:`RaplMsrBackend`, but read through
    perf's normalized 2^-32 J units with a syscall crossing per event —
    the paper's "included as of Linux 3.14" path.  Session reads are
    passive (:meth:`PerfEventRapl.read_at`); the session owns time and
    charges the modeled syscall latency per tick.
    """

    platform = RAPL_PERF_SPEC.platform
    mechanism = RAPL_PERF_SPEC.name
    MIN_INTERVAL_S = RAPL_PERF_SPEC.min_interval_s

    def __init__(self, perf: PerfEventRapl, label: str | None = None):
        super().__init__(
            RAPL_PERF_SPEC, PerfCounterSource(perf),
            label=label if label is not None else (
                f"{perf.node.hostname}-perf{perf.package.socket}"
            ),
        )
        self.perf = perf


class PhiIpmbBackend(Mechanism):
    """Out-of-band view of one Phi card: the platform BMC polling the
    SMC over IPMB.

    The exchange costs the host and the card *nothing* — attach this
    backend with no process so the session charges no one — but every
    sensor is a full 22 ms bus round trip and values arrive quantized
    to milli-units by the wire encoding (the channel's quantization).
    """

    platform = IPMB_SPEC.platform
    mechanism = IPMB_SPEC.name
    MIN_INTERVAL_S = IPMB_SPEC.min_interval_s

    def __init__(self, bmc: BaseboardManagementController,
                 label: str | None = None):
        smc = bmc.responder.smc
        super().__init__(
            IPMB_SPEC, SmcSensorSource(smc, IPMB_SENSORS),
            label=label if label is not None else (
                f"mic{smc.card.mic_index}-bmc"
            ),
        )
        self.bmc = bmc
        self.smc = smc
