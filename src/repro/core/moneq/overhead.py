"""MonEQ overhead accounting — the machinery behind Table III.

Cost models:

* **initialize** — "only needs to setup data structures and register
  timers": a fixed base plus a term growing with log2(nodes) for the
  bootstrap broadcast.
* **collection** — ticks x per-query latency, identical on every
  (homogeneous) node regardless of scale.
* **finalize** — "really has the most to do in terms of actually
  writing the collected data to disk and therefore does depend on the
  scale": a filesystem model where up to ``io_servers`` concurrent
  agent files write in parallel and additional files contend.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigError

#: Initialize model parameters (seconds).
INIT_BASE_S = 2.2e-3
INIT_PER_LOG2_NODE_S = 0.1e-3

#: Finalize model parameters.
FINALIZE_BASE_S = 0.145
FINALIZE_PER_FILE_S = 0.3e-3
FINALIZE_CONTENTION_PER_FILE_S = 11e-3
IO_SERVERS = 16


def initialize_time_s(node_count: int) -> float:
    """Setup + timer registration + bootstrap broadcast."""
    if node_count <= 0:
        raise ConfigError(f"node count must be positive, got {node_count}")
    return INIT_BASE_S + INIT_PER_LOG2_NODE_S * math.log2(max(node_count, 2))


def finalize_time_s(file_count: int) -> float:
    """Write-out cost: parallel up to IO_SERVERS files, contention past."""
    if file_count <= 0:
        raise ConfigError(f"file count must be positive, got {file_count}")
    contended = max(0, file_count - IO_SERVERS)
    return (FINALIZE_BASE_S + FINALIZE_PER_FILE_S * file_count
            + FINALIZE_CONTENTION_PER_FILE_S * contended)


@dataclass(frozen=True)
class OverheadReport:
    """Table III for one profiled run."""

    application_runtime_s: float
    initialize_s: float
    finalize_s: float
    collection_s: float            # per agent: ticks x query latency
    ticks: int
    node_count: int
    agent_count: int
    #: Preallocated record-buffer footprint per agent, bytes.  "Memory
    #: overhead is essentially a constant with respect to scale" — this
    #: is the same number at every node count.
    memory_bytes_per_agent: int = 0

    @property
    def total_s(self) -> float:
        """Total MonEQ time (the Table III bottom row)."""
        return self.initialize_s + self.finalize_s + self.collection_s

    @property
    def percent_of_runtime(self) -> float:
        """Overhead as a percentage of application runtime."""
        if self.application_runtime_s <= 0.0:
            return 0.0
        return 100.0 * self.total_s / self.application_runtime_s

    def as_table_row(self) -> dict[str, float]:
        """The five Table III rows, keyed like the paper."""
        return {
            "Application Runtime": self.application_runtime_s,
            "Time for Initialization": self.initialize_s,
            "Time for Finalize": self.finalize_s,
            "Time for Collection": self.collection_s,
            "Total Time for MonEQ": self.total_s,
        }
