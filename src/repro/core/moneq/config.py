"""MonEQ configuration.

"In its default mode, MonEQ will pull data from the selected
environmental collection interface at the lowest polling interval
possible for the given hardware.  However, users have the ability to
set this interval to whatever valid value is desired."  (paper §III)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.chaos.faults import FaultPlan


@dataclass(frozen=True)
class MoneqConfig:
    """Session configuration.

    Parameters
    ----------
    polling_interval_s:
        None means "the lowest polling interval possible for the given
        hardware" (the max of the attached backends' minima).  Explicit
        values below a backend's minimum are rejected at initialize.
    buffer_slots:
        Preallocated record capacity per agent — "allocated to a
        reasonably large number ... while not consuming an excess of
        memory"; the paper notes the number "isn't set in stone".
    output_dir:
        Directory (in the node's VFS) for per-agent output files.
    tagging_enabled:
        Whether start/end tag calls are honored.
    block_ticks:
        Lookahead span of the columnar block-sampling engine: how many
        timer ticks the session may plan and collect in one slab before
        re-checking the event queue.  ``1`` disables block sampling and
        falls back to scalar per-tick collection.  Output is
        byte-identical either way; only the constant factor changes.
    fault_plan:
        Optional :class:`~repro.chaos.faults.FaultPlan` activated for
        exactly the session's extent (initialize through finalize).
        Faulted crossings degrade to sensor-dark NaN readings instead
        of raising; ``None`` (the default) leaves the read path
        byte-identical to a chaos-free build.
    """

    polling_interval_s: float | None = None
    buffer_slots: int = 262_144
    output_dir: str = "/moneq"
    tagging_enabled: bool = True
    block_ticks: int = 4096
    fault_plan: "FaultPlan | None" = None

    def __post_init__(self):
        if self.polling_interval_s is not None and self.polling_interval_s <= 0.0:
            raise ConfigError(
                f"polling interval must be positive, got {self.polling_interval_s}"
            )
        if self.buffer_slots <= 0:
            raise ConfigError(f"buffer_slots must be positive, got {self.buffer_slots}")
        if self.block_ticks < 1:
            raise ConfigError(
                f"block_ticks must be >= 1 (1 disables block sampling), "
                f"got {self.block_ticks}"
            )
        if not self.output_dir.startswith("/"):
            raise ConfigError(f"output_dir must be absolute, got {self.output_dir!r}")

    def memory_bytes_per_agent(self, field_count: int) -> int:
        """Buffer footprint: timestamp + fields, 8 bytes each — the
        'essentially constant with respect to scale' memory overhead."""
        return self.buffer_slots * 8 * (field_count + 1)

    def resolve_interval(self, backends) -> float:
        """Validate the requested interval against every backend's
        hardware minimum, at session construction.

        Returns the effective interval: the hardware floor (the slowest
        backend's minimum governs a mixed-device session) when no
        explicit interval was requested.  An explicit interval below any
        backend's minimum raises :class:`ConfigError` naming the
        offending backend — sessions never clamp silently or fail
        mid-run.
        """
        if not backends:
            raise ConfigError("cannot resolve an interval for zero backends")
        worst = max(backends, key=lambda b: b.min_interval_s)
        floor = worst.min_interval_s
        if self.polling_interval_s is None:
            return floor
        if self.polling_interval_s < floor:
            raise ConfigError(
                f"polling interval {self.polling_interval_s} s below the "
                f"{floor} s hardware minimum of backend {worst.label!r} "
                f"({worst.platform}, mechanism {worst.mechanism!r})"
            )
        return self.polling_interval_s
