"""SPMD profiling — the paper's Listing 1, end to end.

The original MonEQ is an MPI library: every rank calls
``MonEQ_Initialize``/``MonEQ_Finalize`` around the application, and the
"local agent rank on a node card" does the collecting.  This module
reproduces that shape on the simulators:

1. the SPMD program runs on the MPI-like launcher with busy recording;
2. each node card's 32 ranks are mapped to one BG/Q node board, their
   busy fractions becoming the board's utilization;
3. a MonEQ session with one EMON agent per board profiles the run.

The result couples program structure to power data exactly the way the
paper's Figure 2 run did: communication stalls in the *program* appear
as dips in the *per-domain traces*.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.bgq.machine import BgqMachine
from repro.core.moneq.backends import BgqEmonBackend
from repro.core.moneq.config import MoneqConfig
from repro.core.moneq.session import MoneqResult, MoneqSession
from repro.errors import ConfigError
from repro.runtime.interconnect import BGQ_TORUS, Interconnect
from repro.runtime.launcher import Launcher, RankContext, RankResult
from repro.runtime.trace2workload import busy_fraction_series
from repro.sim.signals import PiecewiseConstantSignal
from repro.workloads.base import Component, Workload

#: BG/Q geometry: ranks per node card.
RANKS_PER_BOARD = 32


@dataclass(frozen=True)
class SpmdProfileResult:
    """Everything a Listing-1 run produces."""

    moneq: MoneqResult
    ranks: list[RankResult]
    boards: list[str]
    program_elapsed_s: float


def _board_workload(rank_results: list[RankResult], duration: float,
                    bucket_s: float, name: str) -> Workload:
    """One node board's workload from its ranks' busy spans.

    Chip cores follow the busy fraction; DRAM and the network follow at
    fixed activity ratios (an application-neutral default — callers with
    better knowledge can profile with explicit workloads instead).
    """
    starts, fraction = busy_fraction_series(rank_results, bucket_s, duration)
    breakpoints = [0.0] + list(starts[1:]) + [duration]

    def signal(scale: float) -> PiecewiseConstantSignal:
        levels = [0.0] + list(np.clip(scale * fraction, 0.0, 1.0)) + [0.0]
        return PiecewiseConstantSignal(breakpoints, levels)

    return Workload(
        name=name, duration=duration,
        signals={
            Component.BGQ_CHIP_CORE: signal(0.95),
            Component.BGQ_DRAM: signal(0.45),
            Component.BGQ_SRAM: signal(0.30),
            Component.BGQ_HSS: signal(0.35),
            Component.BGQ_OPTICS: signal(0.30),
            Component.BGQ_LINK_CHIP: signal(0.30),
        },
        metadata={"ranks": len(rank_results), "bucket_s": bucket_s},
    )


def profile_spmd(
    machine: BgqMachine,
    rank_fn: Callable[[RankContext], object],
    ranks: int,
    interval_s: float = 0.560,
    bucket_s: float = 0.25,
    interconnect: Interconnect = BGQ_TORUS,
    config: MoneqConfig | None = None,
) -> SpmdProfileResult:
    """Run ``rank_fn`` on ``ranks`` ranks and profile it with MonEQ.

    One EMON agent per occupied node card, matching the paper's "local
    agent rank on a node card" granularity.
    """
    if ranks <= 0:
        raise ConfigError(f"ranks must be positive, got {ranks}")
    boards_needed = -(-ranks // RANKS_PER_BOARD)
    boards = machine.node_boards()
    if boards_needed > len(boards):
        raise ConfigError(
            f"{ranks} ranks need {boards_needed} node boards; machine has "
            f"{len(boards)}"
        )
    launcher = Launcher(rank_fn, size=ranks, interconnect=interconnect,
                        record_busy=True)
    rank_results = launcher.run()
    elapsed = max(r.finish_time for r in rank_results)

    t_start = machine.clock.now
    used = boards[:boards_needed]
    for index, board in enumerate(used):
        slice_results = rank_results[index * RANKS_PER_BOARD:
                                     (index + 1) * RANKS_PER_BOARD]
        workload = _board_workload(slice_results, elapsed, bucket_s,
                                   name=f"spmd-{board.location}")
        board.board.schedule(workload, t_start=t_start)

    session_config = config if config is not None else MoneqConfig(
        polling_interval_s=interval_s
    )
    session = MoneqSession(
        [BgqEmonBackend(machine.emon(b.location)) for b in used],
        machine.events, config=session_config,
        node_count=boards_needed * RANKS_PER_BOARD,
    )
    machine.events.run_until(session.t_start + elapsed)
    return SpmdProfileResult(
        moneq=session.finalize(),
        ranks=rank_results,
        boards=[b.location for b in used],
        program_elapsed_s=elapsed,
    )
