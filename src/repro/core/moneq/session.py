"""The MonEQ session: initialize -> (app runs) -> finalize.

Execution model
---------------
Agents collect **in parallel** across nodes: one virtual-SIGALRM timer
ticks for the whole session, every agent samples its backend passively
at the tick time, each agent's process is charged its own query cost,
and the shared clock advances by the *maximum* agent cost (the slowest
node gates the tick, everyone else overlaps).  That is why Table III's
collection time is identical at 32, 512 and 1024 nodes.

Block sampling
--------------
Because every tick costs the same constant clock advance, the whole tick
grid between two intervening events is known the moment the first tick
fires.  When the driving :meth:`~repro.sim.events.EventQueue.run_until`
exposes its horizon, the session plans up to ``config.block_ticks``
deadlines ahead (:meth:`~repro.sim.timers.PeriodicTimer.plan_block`),
samples each backend once over the whole grid with a vectorized
:meth:`~repro.core.moneq.backend.Backend.read_block`, and fills agent
buffers by column-slab assignment.  The block stops strictly before the
next foreign event, at the horizon, and at remaining buffer capacity, so
clock advancement, tag boundaries, buffer-full errors and output files
stay **byte-identical** to scalar ticking — the parity property tests
pin this down.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.moneq.backend import Backend
from repro.core.moneq.config import MoneqConfig
from repro.core.moneq.output import render_agent_file, sanitize_label, write_outputs
from repro.core.moneq.overhead import (
    OverheadReport,
    finalize_time_s,
    initialize_time_s,
)
from repro.core.moneq.tags import TagSet
from repro.errors import ConfigError, MoneqBufferFullError, MoneqStateError
from repro.host.process import Process
from repro.host.vfs import VirtualFileSystem
from repro.obs.instruments import (
    MONEQ_BUFFER_FILL,
    MONEQ_BUFFER_FULL,
    MONEQ_RECORDS,
    MONEQ_SESSIONS_FINALIZED,
    MONEQ_SESSIONS_STARTED,
    MONEQ_TICKS,
    CollectorInstrument,
)
from repro.obs.tracing import get_tracer
from repro.sim.events import EventQueue
from repro.sim.timers import PeriodicTimer
from repro.sim.trace import TraceSeries, TraceSet


@dataclass
class _Agent:
    """One collection locus: a backend plus its record buffer."""

    backend: Backend
    process: Process | None
    records: np.ndarray
    count: int = 0
    instrument: CollectorInstrument | None = None

    def append(self, t: float, row: dict[str, float]) -> None:
        if self.count >= len(self.records):
            MONEQ_BUFFER_FULL.inc()
            if self.instrument is not None:
                self.instrument.record_error("buffer_full")
            raise MoneqBufferFullError(
                f"agent {self.backend.label}: buffer of {len(self.records)} "
                "records exhausted; raise MoneqConfig.buffer_slots"
            )
        record = self.records[self.count]
        record["time_s"] = t
        for name, value in row.items():
            record[name] = value
        self.count += 1

    def extend_block(self, times: np.ndarray, block: np.ndarray) -> None:
        """Slab-append one block: row ``i`` gets ``times[i]`` plus
        ``block``'s columns.  The caller guarantees capacity."""
        n = times.shape[0]
        rows = self.records[self.count:self.count + n]
        rows["time_s"] = times
        for name in block.dtype.names:
            rows[name] = block[name]
        self.count += n

    def filled(self) -> np.ndarray:
        return self.records[: self.count]


@dataclass
class MoneqResult:
    """Everything finalize produces."""

    traces: dict[str, TraceSet]
    overhead: OverheadReport
    output_paths: list[str]
    tags: list

    def trace(self, field_name: str, agent: str | None = None) -> TraceSeries:
        """One field's series; agent defaults to the only agent."""
        if agent is None:
            if len(self.traces) != 1:
                raise MoneqStateError(
                    f"session has {len(self.traces)} agents; name one of "
                    f"{sorted(self.traces)}"
                )
            agent = next(iter(self.traces))
        return self.traces[agent][field_name]

    def tag_window(self, tag_name: str, field_name: str,
                   agent: str | None = None) -> TraceSeries:
        """A field's series restricted to one closed tag's [start, end] —
        the "separate profiles for each work loop" the tagging feature
        exists for."""
        for tag in self.tags:
            if tag.name == tag_name:
                return self.trace(field_name, agent).between(tag.t_start, tag.t_end)
        raise MoneqStateError(
            f"no closed tag {tag_name!r}; have {[t.name for t in self.tags]}"
        )


class MoneqSession:
    """A live profiling session (between initialize and finalize)."""

    def __init__(self, backends: list[Backend], queue: EventQueue,
                 config: MoneqConfig | None = None,
                 processes: list[Process] | None = None,
                 node_count: int | None = None,
                 vfs: VirtualFileSystem | None = None):
        if not backends:
            raise ConfigError("MonEQ needs at least one backend")
        self.config = config if config is not None else MoneqConfig()
        self.queue = queue
        self.vfs = vfs if vfs is not None else VirtualFileSystem()
        self.node_count = node_count if node_count is not None else len(backends)
        if processes is not None and len(processes) != len(backends):
            raise ConfigError("processes must align 1:1 with backends")

        # "The lowest polling interval possible for the given hardware":
        # the slowest backend minimum governs a mixed-device session,
        # and a too-fast explicit request fails here, naming the
        # offending backend, not mid-run.
        self.interval_s = self.config.resolve_interval(backends)

        self.agents: list[_Agent] = []
        labels_seen: set[str] = set()
        for i, backend in enumerate(backends):
            if backend.label in labels_seen:
                raise ConfigError(f"duplicate backend label {backend.label!r}")
            labels_seen.add(backend.label)
            dtype = [("time_s", "f8")] + [(name, "f8") for name in backend.fields()]
            self.agents.append(_Agent(
                backend=backend,
                process=processes[i] if processes is not None else None,
                records=np.zeros(self.config.buffer_slots, dtype=dtype),
                instrument=backend.instrument,
            ))

        # Every tick advances the clock by the same constant — the
        # slowest agent's query cost — which is what makes the tick grid
        # plannable ahead of time.
        self._tick_cost = max(a.backend.query_latency_s for a in self.agents)

        self.tags = TagSet()
        self._finalized = False
        # Chaos, scoped to the session: with a configured fault plan,
        # every collection tick below crosses its channel under that
        # plan and degrades to sensor-dark NaN rows instead of raising
        # — the session always reaches finalize.
        if self.config.fault_plan is not None:
            from repro.chaos.faults import activate

            activate(self.config.fault_plan)
        MONEQ_SESSIONS_STARTED.inc()
        # Initialize cost: charged to the clock now, before the timer arms.
        self._init_cost = initialize_time_s(self.node_count)
        with get_tracer().span("moneq.initialize", clock=queue.clock,
                               agents=len(self.agents),
                               nodes=self.node_count):
            queue.clock.advance(self._init_cost)
        self.t_start = queue.clock.now
        for agent in self.agents:
            agent.backend.on_session_start(self.t_start, self.interval_s)
        self._timer = PeriodicTimer(queue, self.interval_s, self._on_tick)

    # -- collection ------------------------------------------------------------

    def _on_tick(self, t: float, index: int) -> None:
        horizon = self.queue.horizon
        if self.config.block_ticks > 1 and horizon is not None:
            # How far can we look ahead?  Strictly before the next
            # foreign event (it must keep its place in the event order),
            # within the run_until bound, and within buffer capacity —
            # a full buffer falls through to the scalar path so the
            # error surfaces exactly where scalar ticking raises it.
            capacity = min(len(a.records) - a.count for a in self.agents)
            if capacity > 0:
                times, k_last, coalesced = self._timer.plan_block(
                    self._tick_cost, self.queue.peek_time(), horizon,
                    min(self.config.block_ticks, capacity),
                )
                if len(times) > 1:
                    self._collect_block(np.asarray(times, dtype=np.float64))
                    self._timer.commit_block(len(times), k_last, coalesced)
                    return
        self._collect_tick(t)

    def _collect_tick(self, t: float) -> None:
        """One scalar tick: the reference path block sampling must match."""
        tick_cost = 0.0
        max_fill = 0.0
        for agent in self.agents:
            reading = agent.backend.read_reading(t)
            agent.append(reading.timestamp, reading.values)
            cost = agent.backend.query_latency_s
            if agent.process is not None and agent.process.alive:
                agent.process.charge(cost)
            if agent.instrument is not None:
                agent.instrument.record_query(cost)
            fill = agent.count / len(agent.records)
            if fill > max_fill:
                max_fill = fill
            tick_cost = max(tick_cost, cost)
        MONEQ_TICKS.inc()
        MONEQ_RECORDS.inc(len(self.agents))
        MONEQ_BUFFER_FILL.set(max_fill)
        # Agents overlap across nodes; the slowest gates the tick.
        self.queue.clock.advance(tick_cost)

    def _collect_block(self, times: np.ndarray) -> None:
        """Collect a planned grid of ticks in one columnar pass."""
        n = times.shape[0]
        max_fill = 0.0
        for agent in self.agents:
            agent.extend_block(times, agent.backend.read_block(times))
            cost = agent.backend.query_latency_s
            if agent.process is not None and agent.process.alive:
                # cpu_seconds accumulation only; per-tick granularity
                # is not observable in any output.
                agent.process.charge(cost * n)
            if agent.instrument is not None:
                agent.instrument.record_query(cost, n)
            fill = agent.count / len(agent.records)
            if fill > max_fill:
                max_fill = fill
        MONEQ_TICKS.inc(n)
        MONEQ_RECORDS.inc(len(self.agents) * n)
        MONEQ_BUFFER_FILL.set(max_fill)
        # Land exactly where n scalar ticks would have left the clock:
        # at the last deadline plus one tick cost.
        self.queue.clock.advance_to(float(times[-1]))
        self.queue.clock.advance(self._tick_cost)

    @property
    def ticks(self) -> int:
        return self._timer.ticks_fired

    # -- tagging ------------------------------------------------------------------

    def start_tag(self, name: str) -> None:
        """Open a named section at the current virtual time."""
        self._ensure_live()
        if not self.config.tagging_enabled:
            raise MoneqStateError("tagging disabled in this session's config")
        self.tags.start(name, self.queue.clock.now)

    def end_tag(self, name: str) -> None:
        """Close a named section at the current virtual time."""
        self._ensure_live()
        if not self.config.tagging_enabled:
            raise MoneqStateError("tagging disabled in this session's config")
        self.tags.end(name, self.queue.clock.now)

    # -- finalize -----------------------------------------------------------------

    def finalize(self) -> MoneqResult:
        """Stop collection, write output files, report overhead."""
        self._ensure_live()
        self.tags.require_all_closed()
        self._finalized = True
        self._timer.cancel()
        if self.config.fault_plan is not None:
            from repro.chaos.faults import deactivate

            deactivate(self.config.fault_plan)
        t_end = self.queue.clock.now
        runtime = t_end - self.t_start
        for agent in self.agents:
            agent.backend.on_session_stop(t_end)

        finalize_cost = finalize_time_s(len(self.agents))
        with get_tracer().span("moneq.finalize", clock=self.queue.clock,
                               agents=len(self.agents), ticks=self.ticks):
            self.queue.clock.advance(finalize_cost)
        MONEQ_SESSIONS_FINALIZED.inc()

        markers = self.tags.markers()
        agent_files: dict[str, str] = {}
        traces: dict[str, TraceSet] = {}
        collection_cost = 0.0
        for agent in self.agents:
            filled = agent.filled()
            agent_files[f"{sanitize_label(agent.backend.label)}.dat"] = render_agent_file(
                agent.backend.label, agent.backend.platform,
                agent.backend.fields(), filled, markers,
            )
            trace_set = TraceSet()
            for name in agent.backend.fields():
                units = "W" if name.endswith("_w") else ""
                trace_set.add(name, TraceSeries(
                    filled["time_s"].copy(), filled[name].copy(), name, units,
                ))
            traces[agent.backend.label] = trace_set
            collection_cost = max(
                collection_cost, agent.count * agent.backend.query_latency_s
            )

        paths = write_outputs(self.vfs, self.config.output_dir, agent_files)
        max_fields = max(len(agent.backend.fields()) for agent in self.agents)
        overhead = OverheadReport(
            application_runtime_s=runtime,
            initialize_s=self._init_cost,
            finalize_s=finalize_cost,
            collection_s=collection_cost,
            ticks=self.ticks,
            node_count=self.node_count,
            agent_count=len(self.agents),
            memory_bytes_per_agent=self.config.memory_bytes_per_agent(max_fields),
        )
        return MoneqResult(
            traces=traces, overhead=overhead, output_paths=paths,
            tags=list(self.tags.closed),
        )

    # -- helpers -----------------------------------------------------------------

    def _ensure_live(self) -> None:
        if self._finalized:
            raise MoneqStateError("session already finalized")

    def tag(self, name: str):
        """Context manager sugar over start/end tags."""
        return _TagContext(self, name)


class _TagContext:
    def __init__(self, session: MoneqSession, name: str):
        self.session = session
        self.name = name

    def __enter__(self):
        self.session.start_tag(self.name)
        return self

    def __exit__(self, *exc):
        self.session.end_tag(self.name)
