"""Tagging — named profiling sections.

"This feature allows for sections of code to be wrapped in start/end
tags which inject special markers in the output files for later
processing. ...  because the injection happens after the program has
completed, the overhead of tagging is almost negligible."  (paper §III)
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import MoneqStateError


@dataclass(frozen=True)
class Tag:
    """A closed tag: name plus its [start, end] window."""

    name: str
    t_start: float
    t_end: float

    def __post_init__(self):
        if self.t_end < self.t_start:
            raise MoneqStateError(
                f"tag {self.name!r} closed before it opened "
                f"({self.t_end} < {self.t_start})"
            )


@dataclass
class TagSet:
    """Open/closed tag bookkeeping for one session."""

    _open: dict[str, float] = field(default_factory=dict)
    closed: list[Tag] = field(default_factory=list)

    def start(self, name: str, t: float) -> None:
        if name in self._open:
            raise MoneqStateError(f"tag {name!r} already open")
        self._open[name] = t

    def end(self, name: str, t: float) -> None:
        t_start = self._open.pop(name, None)
        if t_start is None:
            raise MoneqStateError(f"tag {name!r} is not open")
        self.closed.append(Tag(name, t_start, t))

    @property
    def open_names(self) -> list[str]:
        return sorted(self._open)

    def require_all_closed(self) -> None:
        if self._open:
            raise MoneqStateError(
                f"tags still open at finalize: {self.open_names}"
            )

    def markers(self) -> list[tuple[float, str]]:
        """(time, marker-line) pairs, ready for post-run injection into
        the output files in time order."""
        events: list[tuple[float, str]] = []
        for tag in self.closed:
            events.append((tag.t_start, f"#TAG_START {tag.name} {tag.t_start:.6f}"))
            events.append((tag.t_end, f"#TAG_END {tag.name} {tag.t_end:.6f}"))
        return sorted(events)
