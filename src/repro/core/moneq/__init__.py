"""MonEQ — the unified power-profiling library.

The Python port of the paper's §III contribution.  The two-line usage
contract is preserved::

    session = moneq.initialize(node)   # MonEQ_Initialize()
    ...                                # user code (simulated run)
    result = moneq.finalize(session)   # MonEQ_Finalize()

Internals mirror the paper's description: a per-hardware minimum polling
interval used by default, a (virtual) SIGALRM timer per agent, records
appended to a preallocated array "local to the finest granularity
possible on the system", tagging with post-run marker injection, and
most of the cost pushed to initialize/finalize so the only unavoidable
run-time overhead is the periodic collection call.
"""

from repro.core.moneq.config import MoneqConfig
from repro.core.moneq.backend import Backend
from repro.core.moneq.backends import (
    BgqEmonBackend,
    NvmlBackend,
    PhiIpmbBackend,
    PhiMicrasBackend,
    PhiSysMgmtBackend,
    RaplMsrBackend,
    RaplPerfBackend,
    RaplPowercapBackend,
)
from repro.core.moneq.overhead import OverheadReport
from repro.core.moneq.session import MoneqResult, MoneqSession
from repro.core.moneq.api import finalize, initialize, profile_run

__all__ = [
    "MoneqConfig",
    "Backend",
    "BgqEmonBackend",
    "RaplMsrBackend",
    "RaplPerfBackend",
    "RaplPowercapBackend",
    "NvmlBackend",
    "PhiSysMgmtBackend",
    "PhiMicrasBackend",
    "PhiIpmbBackend",
    "MoneqSession",
    "MoneqResult",
    "OverheadReport",
    "initialize",
    "finalize",
    "profile_run",
]
