"""The two-line MonEQ API.

"With as few as two lines of code on any of the hardware platforms
mentioned in this paper one can easily obtain environmental data for
analysis."  ``initialize(node)`` auto-detects the node's devices and
builds the right backends; ``finalize(session)`` returns the traces and
the overhead report.
"""

from __future__ import annotations

from repro.core.moneq.backend import Backend
from repro.core.moneq.backends import NvmlBackend, PhiMicrasBackend, RaplMsrBackend
from repro.core.moneq.config import MoneqConfig
from repro.core.moneq.session import MoneqResult, MoneqSession
from repro.errors import ConfigError
from repro.host.node import Node


def backends_for_node(node: Node) -> list[Backend]:
    """Auto-detect profiling backends for a node's devices.

    CPUs get the RAPL MSR backend, Kepler GPUs the NVML backend, and
    Phi cards the daemon backend (the cheaper of the two paths — MonEQ's
    default); pre-Kepler GPUs are skipped because NVML exposes no power
    data for them.  "If a system has both a NVIDIA GPU as well as an
    Intel Xeon Phi, profiling is possible for both of these devices at
    the same time."
    """
    backends: list[Backend] = []
    for i, package in enumerate(node.devices("cpu")):
        backends.append(RaplMsrBackend(package, label=f"{node.hostname}-socket{i}"))
    for gpu in node.devices("gpu"):
        if gpu.model.supports_power_readings:
            backends.append(NvmlBackend(gpu))
    for daemon in node.devices("micras"):
        backends.append(PhiMicrasBackend(daemon))
    if not backends:
        raise ConfigError(
            f"node {node.hostname} has no profilable devices "
            f"(kinds: {node.device_kinds() or 'none'})"
        )
    return backends


def initialize(node: Node, config: MoneqConfig | None = None) -> MoneqSession:
    """Line 1: ``MonEQ_Initialize()`` for everything on a node."""
    backends = backends_for_node(node)
    return MoneqSession(
        backends=backends, queue=node.events, config=config,
        node_count=1, vfs=node.vfs,
    )


def finalize(session: MoneqSession) -> MoneqResult:
    """Line 2: ``MonEQ_Finalize()`` — stop, write files, report."""
    return session.finalize()


def profile_run(node: Node, duration_s: float,
                config: MoneqConfig | None = None) -> MoneqResult:
    """Convenience driver: initialize, advance the node's virtual time
    through ``duration_s`` (firing the collection timer), finalize."""
    if duration_s <= 0.0:
        raise ConfigError(f"duration must be positive, got {duration_s}")
    session = initialize(node, config)
    node.events.run_until(node.clock.now + duration_s)
    return finalize(session)
