"""MonEQ output files.

One text file per agent, written into a virtual filesystem at finalize:
a provenance header, whitespace-separated data rows, and the tag
markers injected after the data ("the injection happens after the
program has completed").
"""

from __future__ import annotations

import numpy as np

from repro.host.vfs import VirtualFileSystem


def sanitize_label(label: str) -> str:
    """Filesystem-safe agent label."""
    return "".join(c if c.isalnum() or c in "-_." else "_" for c in label)


def render_agent_file(label: str, platform: str, fields: list[str],
                      records: np.ndarray, markers: list[tuple[float, str]]) -> str:
    """The text content of one agent's output file."""
    lines = [
        f"# MonEQ output: agent={label} platform={platform}",
        f"# records={len(records)} fields={len(fields)}",
        "# time_s " + " ".join(fields),
    ]
    # Row-at-a-time field indexing on structured scalars dominates
    # finalize at scale; pulling each column out once and %-formatting
    # whole rows renders the same bytes several times faster ("%.6f"
    # and ":.6f" round identically for float64).
    columns = [records["time_s"].tolist()]
    columns.extend(records[name].tolist() for name in fields)
    row_format = " ".join(["%.6f"] * len(columns))
    lines.extend(row_format % row for row in zip(*columns))
    # Post-run marker injection, in time order.
    lines.extend(marker for _, marker in markers)
    return "\n".join(lines) + "\n"


def write_outputs(vfs: VirtualFileSystem, output_dir: str,
                  agent_files: dict[str, str]) -> list[str]:
    """Write rendered agent files; returns the paths written."""
    if not vfs.exists(output_dir):
        vfs.mkdir(output_dir, parents=True)
    paths = []
    for filename, content in agent_files.items():
        path = f"{output_dir}/{filename}"
        vfs.write_text(path, content)
        paths.append(path)
    return paths


def parse_agent_file(content: str) -> tuple[list[str], np.ndarray, list[str]]:
    """Parse an output file back into (fields, rows, marker lines) —
    the 'later processing' half of the tagging workflow."""
    fields: list[str] = []
    rows: list[list[float]] = []
    markers: list[str] = []
    for line in content.splitlines():
        if line.startswith("# time_s"):
            fields = line[2:].split()[1:]
        elif line.startswith("#TAG_"):
            markers.append(line)
        elif line.startswith("#") or not line.strip():
            continue
        else:
            rows.append([float(x) for x in line.split()])
    table = np.asarray(rows, dtype=np.float64) if rows else np.empty((0, len(fields) + 1))
    return fields, table, markers
