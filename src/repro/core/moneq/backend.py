"""MonEQ backend protocol.

A backend fronts one vendor mechanism for one device.  Reads are
*passive* (they sample device state at a given virtual time without
moving the clock); the session owns time: it charges each backend's
declared per-query latency to the agent's process and advances the
shared clock once per tick, because agents on different nodes collect
in parallel.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.core.capability import PlatformCapabilities
from repro.mech.source import empty_block
from repro.obs.instruments import CollectorInstrument, collector
from repro.store.reading import Reading


class Backend(abc.ABC):
    """One device's collection mechanism, as MonEQ sees it."""

    #: Platform column name in Table I.
    platform: str
    #: Identifier used in output files (location or device name).
    label: str
    #: ``mechanism`` label this backend's session reads are reported
    #: under in the ``repro_collector_*`` metric families.
    mechanism: str = "moneq"

    @property
    @abc.abstractmethod
    def min_interval_s(self) -> float:
        """The lowest polling interval possible for this hardware."""

    @property
    @abc.abstractmethod
    def query_latency_s(self) -> float:
        """Cost of one collection call on this mechanism."""

    @property
    def instrument(self) -> CollectorInstrument:
        """The shared ``repro_collector_*`` handle session hot paths
        record against.  Mechanism compositions resolve this through
        their access channel; the base keys it by mechanism name."""
        return collector(self.mechanism)

    @abc.abstractmethod
    def fields(self) -> list[str]:
        """Names of the data points one read produces, in column order."""

    @abc.abstractmethod
    def read_at(self, t: float) -> dict[str, float]:
        """Sample all fields at virtual time ``t`` (no clock movement)."""

    def read_reading(self, t: float) -> Reading:
        """Sample all fields at ``t`` as one normalized
        :class:`~repro.store.Reading` — the shared record every vendor
        read path produces, so stores and analysis never special-case
        per-platform shapes.  The raw :meth:`read_at` mapping stays
        available where legacy column dicts are expected."""
        return Reading(timestamp=t, location=self.label,
                       mechanism=self.mechanism, values=self.read_at(t))

    def read_block(self, times: np.ndarray) -> np.ndarray:
        """Sample all fields at each time in ``times`` (no clock
        movement): row ``i`` of the returned structured array holds the
        columns of :meth:`fields` at ``times[i]``.

        The base implementation is a scalar loop over :meth:`read_at`
        (correct for any backend, including stateful ones — reads stay
        in time order).  Vendor backends override it with a vectorized
        path that must be **bit-identical** to the loop: the MonEQ
        block-sampling engine leans on that equality to keep output
        files byte-identical to scalar ticking.
        """
        times = np.asarray(times, dtype=np.float64)
        out = empty_block(self.fields(), times.shape[0])
        for i in range(times.shape[0]):
            row = self.read_at(float(times[i]))
            for name, value in row.items():
                out[i][name] = value
        return out

    @abc.abstractmethod
    def capabilities(self) -> PlatformCapabilities:
        """This platform's Table I column."""

    # -- optional session hooks ---------------------------------------------

    def on_session_start(self, t: float, interval_s: float) -> None:
        """Called when profiling begins (e.g. the Phi in-band backend
        opens its polling session, which perturbs card power)."""

    def on_session_stop(self, t: float) -> None:
        """Called at finalize."""
