"""perf_event access path for RAPL.

"As of Linux 3.14 these kernel drivers have been included and are
accessible via the perf_event (perf) interface.  Unfortunately, 3.14 is
a much newer version of kernel than most distributions of Linux have."
(paper §II-B)

The interface exposes the standard ``power/energy-*`` events.  perf
normalizes RAPL readings to 2^-32 J regardless of the hardware unit,
which we reproduce.  The paper could not measure perf's query overhead
("we did not have ready access to a ... new enough kernel") but expected
it to exceed direct MSR reads due to the kernel crossing; we model a
syscall-dominated 0.10 ms and flag it as an assumption in EXPERIMENTS.md.
"""

from __future__ import annotations

import numpy as np

from repro.errors import KernelTooOldError
from repro.host.node import Node
from repro.host.process import Process
from repro.obs.instruments import collector
from repro.rapl.domains import RaplDomain
from repro.rapl.package import CpuPackage

_OBS = collector("rapl_perf")

#: perf event name per RAPL domain.
PERF_RAPL_EVENTS: dict[str, RaplDomain] = {
    "power/energy-pkg/": RaplDomain.PKG,
    "power/energy-cores/": RaplDomain.PP0,
    "power/energy-gpu/": RaplDomain.PP1,
    "power/energy-ram/": RaplDomain.DRAM,
}

#: perf normalizes all RAPL events to 2^-32 joule units.
PERF_ENERGY_UNIT_J = 2.0 ** -32

#: Modeled per-read syscall cost (assumption; see module docstring).
PERF_READ_LATENCY_S = 0.10e-3


class PerfEventRapl:
    """An opened perf RAPL event group on one package.

    Construction fails on kernels older than 3.14, reproducing the
    paper's deployment obstacle.
    """

    def __init__(self, node: Node, package: CpuPackage,
                 process: Process | None = None):
        if not node.kernel.supports_perf_rapl():
            raise KernelTooOldError(
                f"perf_event RAPL needs Linux >= 3.14, node runs "
                f"{node.kernel.version}"
            )
        self.node = node
        self.package = package
        self.process = process

    def available_events(self) -> list[str]:
        """Event names with a live domain on this package."""
        return sorted(PERF_RAPL_EVENTS)

    def read(self, event: str) -> int:
        """Read one event counter, in perf's 2^-32 J units.

        Charges the modeled syscall latency to the clock (and the
        attached process), then converts the hardware counter.
        """
        if event not in PERF_RAPL_EVENTS:
            raise KeyError(f"unknown perf event {event!r}")
        self.node.clock.advance(PERF_READ_LATENCY_S)
        if self.process is not None and self.process.alive:
            self.process.charge(PERF_READ_LATENCY_S)
        _OBS.record_query(PERF_READ_LATENCY_S)
        return self.read_at(event, self.node.clock.now)

    def read_at(self, event: str, t: float) -> int:
        """Passive counter view at virtual time ``t``: no clock movement,
        no process charge.  The MonEQ agent path — the session owns time
        and charges the syscall latency itself."""
        domain = PERF_RAPL_EVENTS.get(event)
        if domain is None:
            raise KeyError(f"unknown perf event {event!r}")
        joules = self.package.energy_raw(domain, t) * self.package.units.energy_j
        return int(joules / PERF_ENERGY_UNIT_J)

    def read_block(self, event: str, times: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`read_at` (int64 array, bit-identical to a
        scalar read loop)."""
        domain = PERF_RAPL_EVENTS.get(event)
        if domain is None:
            raise KeyError(f"unknown perf event {event!r}")
        raws = self.package.energy_raw_block(domain, times)
        joules = raws * self.package.units.energy_j
        return np.floor(joules / PERF_ENERGY_UNIT_J).astype(np.int64)

    def read_joules(self, event: str) -> float:
        """Convenience: event counter converted to joules."""
        return self.read(event) * PERF_ENERGY_UNIT_J
