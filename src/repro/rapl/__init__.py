"""Intel RAPL (Running Average Power Limit) simulator.

Models the Sandy Bridge-era RAPL machinery the paper measures:

* model-specific registers (MSRs) holding 32-bit energy-status counters
  in 2^-16 J units, updated roughly every millisecond with documented
  jitter (+/-50k cycles);
* the four Table II domains — Package, Power Plane 0 (cores), Power
  Plane 1 (uncore device, "not useful in server platforms") and DRAM;
* the ``msr`` kernel driver exposing root-only character devices at
  ``/dev/cpu/<n>/msr`` (0.03 ms per query — the fastest mechanism in the
  paper);
* the perf_event path, gated on kernel >= 3.14;
* power capping via the PKG power-limit MSR.
"""

from repro.rapl.domains import RAPL_DOMAIN_TABLE, RaplDomain
from repro.rapl.msr import (
    MSR_DRAM_ENERGY_STATUS,
    MSR_PKG_ENERGY_STATUS,
    MSR_PKG_POWER_LIMIT,
    MSR_PP0_ENERGY_STATUS,
    MSR_PP1_ENERGY_STATUS,
    MSR_RAPL_POWER_UNIT,
    decode_power_limit,
    decode_units,
    encode_power_limit,
    encode_units,
)
from repro.rapl.package import SANDY_BRIDGE, SANDY_BRIDGE_EP, CpuModel, CpuPackage
from repro.rapl.driver import MsrDriver, install_msr_driver
from repro.rapl.perf_event import PerfEventRapl, PERF_RAPL_EVENTS
from repro.rapl.powercap import PowercapDriver, install_powercap_driver, read_energy_uj

__all__ = [
    "RaplDomain",
    "RAPL_DOMAIN_TABLE",
    "CpuPackage",
    "CpuModel",
    "SANDY_BRIDGE",
    "SANDY_BRIDGE_EP",
    "MsrDriver",
    "install_msr_driver",
    "PerfEventRapl",
    "PERF_RAPL_EVENTS",
    "PowercapDriver",
    "install_powercap_driver",
    "read_energy_uj",
    "MSR_RAPL_POWER_UNIT",
    "MSR_PKG_ENERGY_STATUS",
    "MSR_PKG_POWER_LIMIT",
    "MSR_PP0_ENERGY_STATUS",
    "MSR_PP1_ENERGY_STATUS",
    "MSR_DRAM_ENERGY_STATUS",
    "encode_units",
    "decode_units",
    "encode_power_limit",
    "decode_power_limit",
]
