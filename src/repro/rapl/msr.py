"""MSR addresses and RAPL register encodings (Intel SDM vol. 3B).

Only the registers the paper calls "useful for environmental data
collection" are modeled; reads of other addresses fault, as real MSR
reads of unimplemented registers do (#GP -> EIO from the msr driver).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import DriverError
from repro.rapl.domains import RaplDomain

# -- Architectural MSR addresses --------------------------------------------

MSR_RAPL_POWER_UNIT = 0x606

MSR_PKG_POWER_LIMIT = 0x610
MSR_PKG_ENERGY_STATUS = 0x611
MSR_PKG_POWER_INFO = 0x614

MSR_DRAM_POWER_LIMIT = 0x618
MSR_DRAM_ENERGY_STATUS = 0x619

MSR_PP0_POWER_LIMIT = 0x638
MSR_PP0_ENERGY_STATUS = 0x639

MSR_PP1_POWER_LIMIT = 0x640
MSR_PP1_ENERGY_STATUS = 0x641

#: Energy-status MSR per domain.
ENERGY_STATUS_MSR: dict[RaplDomain, int] = {
    RaplDomain.PKG: MSR_PKG_ENERGY_STATUS,
    RaplDomain.PP0: MSR_PP0_ENERGY_STATUS,
    RaplDomain.PP1: MSR_PP1_ENERGY_STATUS,
    RaplDomain.DRAM: MSR_DRAM_ENERGY_STATUS,
}

#: Power-limit MSR per domain (PKG limit is what the paper refers to as
#: "Get/Set Power Limit").
POWER_LIMIT_MSR: dict[RaplDomain, int] = {
    RaplDomain.PKG: MSR_PKG_POWER_LIMIT,
    RaplDomain.PP0: MSR_PP0_POWER_LIMIT,
    RaplDomain.PP1: MSR_PP1_POWER_LIMIT,
    RaplDomain.DRAM: MSR_DRAM_POWER_LIMIT,
}


# -- MSR_RAPL_POWER_UNIT ------------------------------------------------------

@dataclass(frozen=True)
class RaplUnits:
    """Decoded contents of MSR_RAPL_POWER_UNIT.

    Fields hold the *exponents*: power unit = 1/2^power W, energy unit =
    1/2^energy J, time unit = 1/2^time s.  Sandy Bridge defaults are
    (3, 16, 10): 1/8 W, ~15.3 uJ, ~976 us.
    """

    power: int = 3
    energy: int = 16
    time: int = 10

    @property
    def power_w(self) -> float:
        return 2.0 ** -self.power

    @property
    def energy_j(self) -> float:
        return 2.0 ** -self.energy

    @property
    def time_s(self) -> float:
        return 2.0 ** -self.time


def encode_units(units: RaplUnits) -> int:
    """Pack a :class:`RaplUnits` into the MSR_RAPL_POWER_UNIT layout
    (power bits 3:0, energy bits 12:8, time bits 19:16)."""
    if not (0 <= units.power < 16 and 0 <= units.energy < 32 and 0 <= units.time < 16):
        raise DriverError(f"unit exponents out of field range: {units}")
    return units.power | (units.energy << 8) | (units.time << 16)


def decode_units(raw: int) -> RaplUnits:
    """Unpack MSR_RAPL_POWER_UNIT."""
    return RaplUnits(
        power=raw & 0xF,
        energy=(raw >> 8) & 0x1F,
        time=(raw >> 16) & 0xF,
    )


# -- Power-limit register (limit #1 fields only) ---------------------------

_LIMIT_MASK = 0x7FFF
_ENABLE_BIT = 1 << 15
_CLAMP_BIT = 1 << 16
_WINDOW_SHIFT = 17
_WINDOW_MASK = 0x7F


@dataclass(frozen=True)
class PowerLimit:
    """Decoded power-limit register: watts cap + enable + time window."""

    limit_w: float
    enabled: bool
    window_s: float


def encode_power_limit(limit_w: float, enabled: bool, window_s: float,
                       units: RaplUnits) -> int:
    """Encode limit #1 of a RAPL power-limit MSR."""
    if limit_w < 0.0:
        raise DriverError(f"power limit must be non-negative, got {limit_w}")
    quanta = int(round(limit_w / units.power_w))
    if quanta > _LIMIT_MASK:
        raise DriverError(f"power limit {limit_w} W overflows the 15-bit field")
    # Window encoded as a plain multiple of the time unit (the SDM's
    # float-like Y/Z encoding adds nothing for our purposes).
    window_quanta = int(round(window_s / units.time_s))
    if not 0 <= window_quanta <= _WINDOW_MASK:
        raise DriverError(f"window {window_s} s out of encodable range")
    raw = quanta
    if enabled:
        raw |= _ENABLE_BIT
    raw |= window_quanta << _WINDOW_SHIFT
    return raw


def decode_power_limit(raw: int, units: RaplUnits) -> PowerLimit:
    """Decode limit #1 of a RAPL power-limit MSR."""
    quanta = raw & _LIMIT_MASK
    enabled = bool(raw & _ENABLE_BIT)
    window_quanta = (raw >> _WINDOW_SHIFT) & _WINDOW_MASK
    return PowerLimit(
        limit_w=quanta * units.power_w,
        enabled=enabled,
        window_s=window_quanta * units.time_s,
    )
