"""RAPL sensor sources: three access paths over the same counters.

All three differ only in how raw counter contents are obtained and
scaled — direct MSR quanta, microjoule sysfs renderings, perf's
normalized 2^-32 J units — so each is a tiny
:class:`~repro.mech.source.CounterSource` subclass; the consecutive-
read differencing, single-wrap correction and freshness bookkeeping
live once in the mechanism layer.
"""

from __future__ import annotations

import numpy as np

from repro.mech.source import CounterSource
from repro.obs.instruments import RAPL_WRAP_CORRECTIONS
from repro.rapl.domains import RaplDomain
from repro.rapl.package import CpuPackage
from repro.rapl.perf_event import (
    PERF_ENERGY_UNIT_J,
    PERF_RAPL_EVENTS,
    PerfEventRapl,
)

#: Watt column per RAPL domain, in domain order.
RAPL_FIELDS: tuple[str, ...] = tuple(f"{d.value}_w" for d in RaplDomain)

#: The powercap microjoule counter's wrap: the 32-bit hardware wrap
#: re-rendered by the sysfs energy_uj encoding.
POWERCAP_MODULUS_UJ = int((1 << 32) * 2.0 ** -16 * 1e6)


class _RaplCounterSource(CounterSource):
    """Shared wrap-correction accounting for the RAPL paths."""

    def __init__(self, mechanism: str,
                 counters: tuple[tuple[str, object], ...], modulus: int):
        super().__init__(counters, modulus)
        self.mechanism = mechanism

    def record_wraps(self, count: int) -> None:
        RAPL_WRAP_CORRECTIONS.labels(self.mechanism).inc(count)


class MsrCounterSource(_RaplCounterSource):
    """Raw 32-bit energy-status counters via chardev MSR reads."""

    def __init__(self, package: CpuPackage):
        super().__init__(
            "rapl_msr",
            tuple((f"{d.value}_w", d) for d in RaplDomain),
            modulus=1 << 32,
        )
        self.package = package

    def raw_block(self, domain, times: np.ndarray) -> np.ndarray:
        return self.package.energy_raw_block(domain, times)

    def to_watts(self, delta: np.ndarray, dt: np.ndarray) -> np.ndarray:
        return (delta * self.package.units.energy_j) / dt


class PowercapCounterSource(_RaplCounterSource):
    """The same counters through the sysfs ``energy_uj`` rendering:
    ``int(raw * energy_j * 1e6)`` microjoules, wrap re-expressed in
    microjoule units."""

    def __init__(self, package: CpuPackage, mechanism: str = "rapl_powercap"):
        super().__init__(
            mechanism,
            tuple((f"{d.value}_w", d) for d in RaplDomain),
            modulus=POWERCAP_MODULUS_UJ,
        )
        self.package = package

    def raw_block(self, domain, times: np.ndarray) -> np.ndarray:
        raws = self.package.energy_raw_block(domain, times)
        return np.floor(
            raws * self.package.units.energy_j * 1e6
        ).astype(np.int64)

    def to_watts(self, delta: np.ndarray, dt: np.ndarray) -> np.ndarray:
        return (delta / 1e6) / dt


class PerfCounterSource(_RaplCounterSource):
    """The same counters through perf_event's normalized units."""

    def __init__(self, perf: PerfEventRapl):
        super().__init__(
            "rapl_perf",
            tuple((f"{d.value}_w", event)
                  for event, d in PERF_RAPL_EVENTS.items()),
            # The 32-bit hardware wrap re-expressed in perf units (2^48
            # for the standard 2^-16 J hardware unit).
            modulus=int(round(
                (1 << 32) * perf.package.units.energy_j / PERF_ENERGY_UNIT_J
            )),
        )
        self.perf = perf

    def raw_block(self, event, times: np.ndarray) -> np.ndarray:
        return self.perf.read_block(event, times)

    def to_watts(self, delta: np.ndarray, dt: np.ndarray) -> np.ndarray:
        return (delta * PERF_ENERGY_UNIT_J) / dt
