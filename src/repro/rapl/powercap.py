"""The powercap sysfs interface (``/sys/class/powercap``).

The third RAPL access path of the paper's era: Linux 3.13 added the
``intel-rapl`` powercap driver, exposing each domain as a sysfs node
with ``energy_uj`` (microjoule counter, world-readable), ``name``, and
root-writable ``power_limit_uw`` / ``enabled`` knobs.  Unlike the raw
msr chardev it needs no chmod ritual for reads, which is why later
tooling (and the Xeon Phi's own stack) gravitated to it.

Layout mirrors the kernel:

    /sys/class/powercap/intel-rapl:0/            <- package domain
        name  energy_uj  power_limit_uw  enabled
    /sys/class/powercap/intel-rapl:0:0/          <- pp0 subdomain
    /sys/class/powercap/intel-rapl:0:1/          <- pp1
    /sys/class/powercap/intel-rapl:0:2/          <- dram
"""

from __future__ import annotations

from repro.errors import DriverError, KernelTooOldError
from repro.host.kernel import KernelVersion
from repro.host.node import Node
from repro.rapl.domains import RaplDomain
from repro.rapl.package import CpuPackage

#: First kernel with the intel-rapl powercap driver.
POWERCAP_MIN_VERSION = KernelVersion(3, 13)

#: Subdomain suffix order under each package node.
SUBDOMAINS = (RaplDomain.PP0, RaplDomain.PP1, RaplDomain.DRAM)


class PowercapDriver:
    """Loaded state of the intel-rapl powercap driver on one node."""

    def __init__(self, node: Node):
        if node.kernel.version < POWERCAP_MIN_VERSION:
            raise KernelTooOldError(
                f"powercap needs Linux >= {POWERCAP_MIN_VERSION}, node runs "
                f"{node.kernel.version}"
            )
        packages = node.devices("cpu")
        if not packages:
            raise DriverError("intel-rapl: no CPU packages on this node")
        self.node = node
        self.zones: list[str] = []
        node.vfs.mkdir("/sys/class/powercap", parents=True)
        for index, package in enumerate(packages):
            base = f"/sys/class/powercap/intel-rapl:{index}"
            self._make_zone(base, package, RaplDomain.PKG,
                            f"package-{index}")
            for sub, domain in enumerate(SUBDOMAINS):
                self._make_zone(f"{base}:{sub}", package, domain, domain.value)

    def _make_zone(self, base: str, package: CpuPackage, domain: RaplDomain,
                   name: str) -> None:
        vfs = self.node.vfs
        vfs.mkdir(base, parents=True)
        vfs.create_dynamic(f"{base}/name", lambda name=name: f"{name}\n",
                           mode=0o444)
        vfs.create_dynamic(
            f"{base}/energy_uj",
            self._energy_provider(package, domain),
            mode=0o444,  # world-readable: no chmod ritual
        )
        vfs.create_dynamic(
            f"{base}/power_limit_uw",
            lambda package=package, domain=domain:
                f"{int(package.get_power_limit(domain).limit_w * 1e6)}\n",
            mode=0o644,
        )
        vfs.create_dynamic(
            f"{base}/enabled",
            lambda package=package, domain=domain:
                f"{int(package.get_power_limit(domain).enabled)}\n",
            mode=0o644,
        )
        self.zones.append(base)

    def _energy_provider(self, package: CpuPackage, domain: RaplDomain):
        def produce() -> str:
            raw = package.energy_raw(domain, self.node.clock.now)
            micro_j = int(raw * package.units.energy_j * 1e6)
            return f"{micro_j}\n"

        return produce

    def unload(self) -> None:
        """rmmod: tear the sysfs tree down (leaf files then zones)."""
        for base in sorted(self.zones, key=len, reverse=True):
            for leaf in ("name", "energy_uj", "power_limit_uw", "enabled"):
                self.node.vfs.remove(f"{base}/{leaf}")
            self.node.vfs.remove(base)
        self.zones.clear()


def install_powercap_driver(node: Node) -> None:
    """Register for ``modprobe("intel_rapl")``."""
    node.kernel.register_module("intel_rapl", lambda: PowercapDriver(node))


def read_energy_uj(node: Node, zone: str, creds=None) -> int:
    """Userspace read of one zone's energy counter (microjoules)."""
    from repro.host.permissions import USER

    text = node.vfs.read_text(f"{zone}/energy_uj",
                              creds if creds is not None else USER)
    return int(text.strip())
