"""The ``msr`` kernel driver.

"Once the MSR driver is built and loaded, it creates a character device
for each logical processor under /dev/cpu/*/msr.  ...  The MSR driver
must be given the correct read-only, root-only access before it is
accessible by any process running on the system."  (paper §II-B)

:func:`install_msr_driver` registers the module with a node's kernel;
``modprobe("msr")`` then creates the chardevs.  Reads are positional:
offset selects the MSR, size must be 8, and each read charges the
paper's 0.03 ms to the node clock and the calling process.
"""

from __future__ import annotations

import struct

from repro.errors import AccessDeniedError, DriverError, VfsError
from repro.host.node import Node
from repro.host.permissions import Credentials
from repro.host.process import Process
from repro.obs.instruments import collector
from repro.rapl.package import CpuPackage

_OBS = collector("rapl_msr")


class _MsrCharDevice:
    """Backend for one ``/dev/cpu/<n>/msr`` node."""

    def __init__(self, node: Node, package: CpuPackage, cpu_index: int,
                 process: Process | None = None):
        self.node = node
        self.package = package
        self.cpu_index = cpu_index
        #: Process charged for query latency; set per-open by callers
        #: that care about accounting.
        self.process = process

    def pread(self, offset: int, size: int, creds: Credentials) -> bytes:
        if size != 8:
            raise DriverError(f"msr reads must be 8 bytes, got {size}")
        # Charge the query cost before the value is produced: the value
        # returned is the register contents at completion time.
        self.node.clock.advance(CpuPackage.MSR_READ_LATENCY_S)
        if self.process is not None and self.process.alive:
            self.process.charge(CpuPackage.MSR_READ_LATENCY_S)
        _OBS.record_query(CpuPackage.MSR_READ_LATENCY_S)
        try:
            value = self.package.read_msr(offset, self.node.clock.now)
        except DriverError:
            _OBS.record_error("unimplemented_msr")
            raise
        return struct.pack("<Q", value)

    def pwrite(self, offset: int, data: bytes, creds: Credentials) -> int:
        if not creds.is_root:
            # Writes stay root-only even after a read-only chmod.
            raise DriverError("wrmsr requires root")
        if len(data) != 8:
            raise DriverError(f"msr writes must be 8 bytes, got {len(data)}")
        (value,) = struct.unpack("<Q", data)
        self.node.clock.advance(CpuPackage.MSR_READ_LATENCY_S)
        self.package.write_msr(offset, value, self.node.clock.now)
        return 8


class MsrDriver:
    """Loaded state of the msr module on one node."""

    def __init__(self, node: Node):
        self.node = node
        self.devices: list[_MsrCharDevice] = []
        cpu_index = 0
        for package in node.devices("cpu"):
            for _ in range(package.logical_cpus):
                dev = _MsrCharDevice(node, package, cpu_index)
                path_dir = f"/dev/cpu/{cpu_index}"
                node.vfs.mkdir(path_dir, parents=True)
                node.vfs.create_chardev(f"{path_dir}/msr", dev, mode=0o600)
                self.devices.append(dev)
                cpu_index += 1
        if cpu_index == 0:
            raise DriverError("msr: no CPU packages on this node")

    def unload(self) -> None:
        """Remove the chardev nodes (kernel rmmod)."""
        for i in range(len(self.devices)):
            try:
                self.node.vfs.remove(f"/dev/cpu/{i}/msr")
                self.node.vfs.remove(f"/dev/cpu/{i}")
            except VfsError:  # pragma: no cover - defensive
                pass
        self.devices.clear()

    def grant_readonly_access(self) -> None:
        """The paper's deployment step: read-only, world-readable nodes so
        an unprivileged profiler can poll."""
        for i in range(len(self.devices)):
            self.node.vfs.chmod(f"/dev/cpu/{i}/msr", 0o444)

    def attach_process(self, process: Process) -> None:
        """Account subsequent query latency to ``process``."""
        for dev in self.devices:
            dev.process = process


def install_msr_driver(node: Node) -> None:
    """Register the msr module with the node's kernel (available for
    ``modprobe("msr")``; not yet loaded)."""
    node.kernel.register_module("msr", lambda: MsrDriver(node))


def read_msr_userspace(node: Node, cpu: int, address: int,
                       creds: Credentials) -> int:
    """What a userspace tool does: open ``/dev/cpu/<n>/msr`` and pread.

    Raises AccessDeniedError unless the driver nodes were opened up (or
    the caller is root), exactly the gate the paper describes.  Denials
    are counted in ``repro_collector_errors_total{mechanism="rapl_msr",
    kind="permission_denied"}`` — a misdeployed profiler is observable,
    not just broken.
    """
    try:
        with node.vfs.open(f"/dev/cpu/{cpu}/msr", "r", creds) as fh:
            (value,) = struct.unpack("<Q", fh.pread(address, 8))
            return value
    except AccessDeniedError:
        _OBS.record_error("permission_denied")
        raise
