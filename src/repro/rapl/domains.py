"""RAPL domains — the paper's Table II.

| Domain            | Description                                        |
|-------------------|----------------------------------------------------|
| Package (PKG)     | Whole CPU package.                                 |
| Power Plane 0     | Processor cores.                                   |
| Power Plane 1     | Uncore device power plane (integrated GPU — not    |
|                   | useful in server platforms).                       |
| DRAM              | Sum of the socket's DIMM power(s).                 |

Scope caveats the paper stresses: metrics are for the whole socket
(no per-core data), DRAM does not distinguish channels, and per-core
power limits are impossible.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class RaplDomain(enum.Enum):
    """The four RAPL measurement domains."""

    PKG = "pkg"
    PP0 = "pp0"
    PP1 = "pp1"
    DRAM = "dram"


@dataclass(frozen=True)
class DomainInfo:
    """Table II row: domain, long name, description, scope notes."""

    domain: RaplDomain
    long_name: str
    description: str
    per_core_resolution: bool = False
    meaningful_on_servers: bool = True


#: Table II of the paper, as data.
RAPL_DOMAIN_TABLE: list[DomainInfo] = [
    DomainInfo(RaplDomain.PKG, "Package (PKG)", "Whole CPU package."),
    DomainInfo(RaplDomain.PP0, "Power Plane 0 (PP0)", "Processor cores."),
    DomainInfo(
        RaplDomain.PP1, "Power Plane 1 (PP1)",
        "The power plane of a specific device in the uncore (such as a "
        "integrated GPU--not useful in server platforms).",
        meaningful_on_servers=False,
    ),
    DomainInfo(RaplDomain.DRAM, "DRAM", "Sum of socket's DIMM power(s)."),
]


def domain_info(domain: RaplDomain) -> DomainInfo:
    """Table II row for one domain."""
    for row in RAPL_DOMAIN_TABLE:
        if row.domain is domain:
            return row
    raise KeyError(domain)  # pragma: no cover - enum is closed
