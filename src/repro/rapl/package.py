"""CPU package device with RAPL circuitry.

The package owns the true per-domain power signals and the 32-bit
energy-status counters behind the MSRs.  Access mechanisms (the msr
driver, perf_event) sit on top and only add latency/permission
semantics; both read the same counters, so cross-mechanism agreement is
exact — matching the paper's observation that the Xeon Phi daemon and
RAPL agree because "the implementation on both is essentially the same".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.devices.load import LoadBoard
from repro.devices.power import BoardTrackingIntegral, ComponentPowerModel, LimitedSignal
from repro.errors import DriverError, SensorError
from repro.obs.instruments import RAPL_WRAPAROUNDS
from repro.rapl.domains import RaplDomain
from repro.rapl.msr import (
    ENERGY_STATUS_MSR,
    MSR_PKG_POWER_INFO,
    MSR_RAPL_POWER_UNIT,
    POWER_LIMIT_MSR,
    PowerLimit,
    RaplUnits,
    decode_power_limit,
    encode_power_limit,
    encode_units,
)
from repro.sim.rng import RngRegistry
from repro.workloads.base import Component


@dataclass(frozen=True)
class CpuModel:
    """Static parameters of a CPU package model."""

    name: str
    idle_w: float          # package power with cores/uncore idle
    cores_w: float         # dynamic range of the core plane (PP0)
    uncore_w: float        # dynamic range of the non-PP1 uncore
    pp1_w: float           # dynamic range of PP1 (integrated GPU; 0 on servers)
    dram_idle_w: float     # DIMM background power
    dram_w: float          # DIMM dynamic range
    tdp_w: float
    base_clock_hz: float = 3.0e9
    #: Counter update cadence; the SDM documents ~1 ms.
    counter_update_s: float = 1e-3
    #: Documented update-time jitter, in cycles (paper: within +/-50k).
    update_jitter_cycles: float = 50_000.0


#: Desktop Sandy Bridge — the Figure 3 testbed (idle shelf a few watts,
#: Gaussian-elimination load ~45-50 W).
SANDY_BRIDGE = CpuModel(
    name="sandy-bridge", idle_w=5.5, cores_w=38.0, uncore_w=6.0, pp1_w=12.0,
    dram_idle_w=1.5, dram_w=6.0, tdp_w=95.0,
)

#: Server Sandy Bridge-EP (Stampede host sockets); PP1 absent.
SANDY_BRIDGE_EP = CpuModel(
    name="sandy-bridge-ep", idle_w=18.0, cores_w=80.0, uncore_w=14.0, pp1_w=0.0,
    dram_idle_w=4.0, dram_w=14.0, tdp_w=115.0,
)


class CpuPackage:
    """One socket with RAPL counters.

    Parameters
    ----------
    model:
        Static electrical parameters.
    rng:
        Per-device RNG namespace (derives counter-jitter seeds).
    socket:
        Socket index on the node.
    logical_cpus:
        Number of logical CPUs this socket contributes (each gets an
        ``/dev/cpu/<n>/msr`` node; all alias the same package counters).
    """

    #: Per-query latency of a direct MSR read (paper: ~0.03 ms).
    MSR_READ_LATENCY_S = 0.03e-3

    def __init__(self, model: CpuModel = SANDY_BRIDGE,
                 rng: RngRegistry | None = None, socket: int = 0,
                 logical_cpus: int = 8):
        self.model = model
        self.rng = rng if rng is not None else RngRegistry()
        self.socket = socket
        self.logical_cpus = logical_cpus
        self.board = LoadBoard()
        self.units = RaplUnits()
        self._power_model = ComponentPowerModel(
            self.board,
            idle_w=model.idle_w,
            dynamic_w={
                Component.CPU_CORES: model.cores_w,
                Component.CPU_UNCORE: model.uncore_w,
            },
        )
        # Package truth, clampable by the PKG power limit.
        self.pkg_signal = LimitedSignal(self._power_model.signal())
        self._domain_signals = {
            RaplDomain.PKG: self.pkg_signal,
            RaplDomain.PP0: self._power_model.component_signal(
                Component.CPU_CORES, idle_share=0.35
            ),
            RaplDomain.PP1: _Pp1Signal(self.board, model.pp1_w),
            RaplDomain.DRAM: _DramSignal(self.board, model.dram_idle_w, model.dram_w),
        }
        jitter_s = model.update_jitter_cycles / model.base_clock_hz
        self._counters = {
            domain: _JitteredCounter(
                signal=self._domain_signals[domain],
                board=self.board,
                units=self.units,
                update_interval=model.counter_update_s,
                jitter_s=jitter_s,
                seed=self.rng.seed(f"rapl.{model.name}.{socket}.{domain.value}"),
                domain=domain.value,
            )
            for domain in RaplDomain
        }
        # Power-limit register state (limit #1 per domain; only PKG has
        # electrical effect).
        self._limits: dict[RaplDomain, int] = {
            domain: encode_power_limit(model.tdp_w, False, 0.01, self.units)
            for domain in RaplDomain
        }

    # -- truth access (used by tests and figure generators) ---------------

    def true_power(self, domain: RaplDomain, t: np.ndarray | float) -> np.ndarray:
        """Unquantized domain power at time(s) ``t``."""
        return self._domain_signals[domain].value(t)

    # -- counter access -----------------------------------------------------

    def energy_raw(self, domain: RaplDomain, t: float) -> int:
        """32-bit energy-status counter contents at virtual time ``t``."""
        return self._counters[domain].raw(t)

    def energy_raw_block(self, domain: RaplDomain, times: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`energy_raw`: counter contents at each time
        in ``times`` as an int64 array, bit-identical to a scalar read
        loop (the MonEQ block-sampling engine depends on that)."""
        return self._counters[domain].raw_block(times)

    def energy_joules_between(self, domain: RaplDomain, t0: float, t1: float) -> float:
        """Single-wrap-corrected energy between two reads (what every
        RAPL consumer computes); wrong if more than one wrap elapsed."""
        return self._counters[domain].delta(t0, t1)

    def wrap_period_at(self, mean_power_w: float) -> float:
        """Seconds until counter wrap at a mean power — the origin of the
        paper's ~60 s maximum sampling interval."""
        return self._counters[RaplDomain.PKG].wrap_period(mean_power_w)

    def wraps_between(self, domain: RaplDomain, t0: float, t1: float) -> int:
        """True number of 32-bit counter wraps in [t0, t1] — what the
        wraparound metric reports when the interval is decoded."""
        counter = self._counters[domain]
        return (counter._quanta(t1) // counter.modulus
                - counter._quanta(t0) // counter.modulus)

    # -- MSR register file ------------------------------------------------

    def read_msr(self, address: int, t: float) -> int:
        """Read an MSR by address at virtual time ``t``.

        Raises :class:`DriverError` for unimplemented addresses (the
        hardware #GP that the msr driver surfaces as EIO).
        """
        if address == MSR_RAPL_POWER_UNIT:
            return encode_units(self.units)
        if address == MSR_PKG_POWER_INFO:
            # Thermal spec power in power units, minimal encoding.
            return int(round(self.model.tdp_w / self.units.power_w))
        for domain, addr in ENERGY_STATUS_MSR.items():
            if address == addr:
                return self.energy_raw(domain, t)
        for domain, addr in POWER_LIMIT_MSR.items():
            if address == addr:
                return self._limits[domain]
        raise DriverError(f"rdmsr 0x{address:x}: unimplemented MSR (#GP)")

    def write_msr(self, address: int, value: int, t: float) -> None:
        """Write an MSR (only power-limit registers are writable)."""
        for domain, addr in POWER_LIMIT_MSR.items():
            if address == addr:
                self._limits[domain] = int(value)
                limit = decode_power_limit(int(value), self.units)
                if domain is RaplDomain.PKG and limit.enabled:
                    self.pkg_signal.set_limit(t, max(limit.limit_w, 1.0))
                return
        raise DriverError(f"wrmsr 0x{address:x}: register is read-only or unimplemented")

    # -- capping convenience -------------------------------------------------

    def set_power_limit(self, watts: float, t: float, window_s: float = 0.01) -> None:
        """Enable the PKG power cap at ``watts`` from time ``t``."""
        raw = encode_power_limit(watts, True, window_s, self.units)
        self.write_msr(POWER_LIMIT_MSR[RaplDomain.PKG], raw, t)

    def get_power_limit(self, domain: RaplDomain = RaplDomain.PKG) -> PowerLimit:
        """Decode the current power-limit register."""
        return decode_power_limit(self._limits[domain], self.units)


class _DramSignal:
    """DRAM plane power: background + dynamic, outside the package."""

    def __init__(self, board: LoadBoard, idle_w: float, dyn_w: float):
        self.board, self.idle_w, self.dyn_w = board, idle_w, dyn_w

    def value(self, t):
        return self.idle_w + self.dyn_w * self.board.utilization(Component.CPU_DRAM, t)


class _Pp1Signal:
    """PP1 (uncore device / integrated GPU) power.

    No workload component maps here in the server experiments, so it
    reads ~0 — the paper's "not useful in server platforms".
    """

    def __init__(self, board: LoadBoard, dyn_w: float):
        self.board, self.dyn_w = board, dyn_w

    def value(self, t):
        return np.zeros_like(np.asarray(t, dtype=np.float64))


class _JitteredCounter:
    """Energy counter whose update instants jitter by +/- tens of us.

    The SDM-documented cadence is ~1 ms but "the updates are not accurate
    enough for short-term energy measurements ... within the range of
    +/-50,000 cycles".  We perturb each update boundary by a deterministic
    per-index offset, so sub-millisecond reads see the documented error
    while >=60 ms reads are accurate — both paper claims.
    """

    def __init__(self, signal, board: LoadBoard, units: RaplUnits,
                 update_interval: float, jitter_s: float, seed: int,
                 domain: str = ""):
        from repro.sim.hashrand import hash_normal

        self._hash_normal = hash_normal
        self.signal = signal
        self.units = units
        self.update_interval = float(update_interval)
        self.jitter_s = float(jitter_s)
        self.seed = seed
        self.modulus = 1 << 32
        self._integral = BoardTrackingIntegral(signal, board, dt=1e-3)
        # Wraparound events are emitted against this label; the counter
        # knows its true (unwrapped) accumulation, so it can report the
        # exact wrap count even where consumers only see a modular value.
        self._wraps = RAPL_WRAPAROUNDS.labels(domain or "unknown")

    def wrap_period(self, mean_rate: float) -> float:
        if mean_rate <= 0.0:
            return float("inf")
        return self.modulus * self.units.energy_j / mean_rate

    def _update_time(self, t: float) -> float:
        k = int(np.floor(t / self.update_interval))
        if k <= 0:
            return 0.0
        jitter = float(self._hash_normal(self.seed, k)) * (self.jitter_s / 2.0)
        # Jitter never reorders updates or reaches past the read time.
        return min(max(k * self.update_interval + jitter, 0.0), t)

    def _quanta(self, t: float) -> int:
        """Unwrapped accumulated energy in counter quanta at ``t``."""
        if t < 0.0:
            raise SensorError("cannot read counter before t=0")
        energy = float(self._integral.value(self._update_time(t)))
        return int(energy / self.units.energy_j + 1e-9)

    def raw(self, t: float) -> int:
        return self._quanta(t) % self.modulus

    def raw_block(self, times: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`raw` over a time grid.

        Every step mirrors the scalar path elementwise — same jitter
        hashes, same clamped update instants, same grid interpolation,
        same quantization — so the results are bit-identical to a loop
        of scalar reads.
        """
        times = np.asarray(times, dtype=np.float64)
        if np.any(times < 0.0):
            raise SensorError("cannot read counter before t=0")
        k = np.floor(times / self.update_interval).astype(np.int64)
        jitter = self._hash_normal(self.seed, k) * (self.jitter_s / 2.0)
        update_t = np.minimum(
            np.maximum(k * self.update_interval + jitter, 0.0), times
        )
        update_t = np.where(k <= 0, 0.0, update_t)
        energy = self._integral.value(update_t)
        quanta = np.floor(energy / self.units.energy_j + 1e-9).astype(np.int64)
        return quanta % self.modulus

    def delta(self, t0: float, t1: float) -> float:
        """Single-wrap-corrected delta, as every RAPL consumer decodes it.

        The decode stays faithfully wrong past one wrap — that is the
        paper's erroneous-data failure — but the *true* wrap count for
        the interval is emitted to ``repro_rapl_wraparounds_total``, one
        increment per wrap, so multi-wrap sampling is observable even
        though it is not recoverable.
        """
        if t1 < t0:
            raise SensorError(f"reads out of order: {t0} > {t1}")
        q0, q1 = self._quanta(t0), self._quanta(t1)
        wraps = q1 // self.modulus - q0 // self.modulus
        if wraps > 0:
            self._wraps.inc(wraps)
        diff = (q1 - q0) % self.modulus
        return diff * self.units.energy_j
