"""Power-aware scheduling extension.

The paper motivates environmental data with its prior work [2]: "a
power aware scheduling design which using power data from IBM Blue
Gene/Q resulted in savings of up to 23% on the electricity bill."  This
subpackage implements that loop end-to-end on the simulators: profile a
job's power with MonEQ, feed the profile to a pricing-aware scheduler,
and measure the bill reduction against a power-oblivious baseline.
"""

from repro.scheduling.pricing_sched import (
    Job,
    ScheduleOutcome,
    fcfs_schedule,
    power_aware_schedule,
    savings_percent,
)

__all__ = [
    "Job",
    "ScheduleOutcome",
    "fcfs_schedule",
    "power_aware_schedule",
    "savings_percent",
]
