"""Pricing-aware job scheduling over measured power profiles.

Model (following the paper's reference [2] in spirit): a batch of jobs,
each with a duration and a mean power drawn from a MonEQ-style profile,
must be placed on a machine of limited node capacity within a planning
horizon.  Electricity is billed under a day/night tariff.  The
power-oblivious baseline packs jobs first-come-first-served at the
earliest feasible time; the power-aware scheduler shifts the most
power-hungry work into off-peak windows (respecting capacity and the
horizon) and keeps low-power work on-peak.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.host.pricing import Tariff
from repro.units import HOUR, kwh


@dataclass(frozen=True)
class Job:
    """One batch job.

    ``submit_s`` is the arrival time on the planning timeline; no
    schedule may start a job before it arrives.  Batches typically
    arrive during working hours, which is what gives the power-aware
    scheduler room to beat the run-immediately baseline.
    """

    name: str
    duration_s: float
    mean_power_w: float
    nodes: int = 1
    submit_s: float = 0.0

    def __post_init__(self):
        if self.duration_s <= 0.0:
            raise ConfigError(f"job {self.name!r}: duration must be positive")
        if self.mean_power_w < 0.0:
            raise ConfigError(f"job {self.name!r}: power must be non-negative")
        if self.nodes <= 0:
            raise ConfigError(f"job {self.name!r}: nodes must be positive")
        if self.submit_s < 0.0:
            raise ConfigError(f"job {self.name!r}: submit time must be non-negative")

    @property
    def energy_kwh(self) -> float:
        return kwh(self.mean_power_w * self.duration_s)


@dataclass(frozen=True)
class Placement:
    """A job placed at a start time."""

    job: Job
    t_start: float

    @property
    def t_end(self) -> float:
        return self.t_start + self.job.duration_s


@dataclass(frozen=True)
class ScheduleOutcome:
    """A complete schedule with its electricity bill."""

    placements: list[Placement]
    cost_dollars: float
    makespan_s: float


class _CapacityTracker:
    """Node occupancy over time, on a fixed grid."""

    def __init__(self, capacity: int, horizon_s: float, grid_s: float = 300.0):
        self.capacity = capacity
        self.grid_s = grid_s
        self.slots = np.zeros(int(np.ceil(horizon_s / grid_s)) + 1, dtype=np.int64)

    def fits(self, t_start: float, duration: float, nodes: int) -> bool:
        i0 = int(t_start // self.grid_s)
        i1 = int(np.ceil((t_start + duration) / self.grid_s))
        if i1 > len(self.slots):
            return False
        return bool(np.all(self.slots[i0:i1] + nodes <= self.capacity))

    def reserve(self, t_start: float, duration: float, nodes: int) -> None:
        i0 = int(t_start // self.grid_s)
        i1 = int(np.ceil((t_start + duration) / self.grid_s))
        self.slots[i0:i1] += nodes


def _bill(placements: list[Placement], tariff: Tariff) -> float:
    total = 0.0
    for placement in placements:
        times = np.linspace(placement.t_start, placement.t_end,
                            max(int(placement.job.duration_s / 60.0), 2))
        watts = np.full_like(times, placement.job.mean_power_w)
        total += tariff.cost(times, watts)
    return total


def _earliest_fit(job: Job, tracker: _CapacityTracker, horizon_s: float,
                  t_from: float = 0.0) -> float | None:
    t = t_from
    while t + job.duration_s <= horizon_s + 1e-9:
        if tracker.fits(t, job.duration_s, job.nodes):
            return t
        t += tracker.grid_s
    return None


def fcfs_schedule(jobs: list[Job], tariff: Tariff, capacity: int,
                  horizon_s: float = 48 * HOUR) -> ScheduleOutcome:
    """Power-oblivious baseline: submission order, earliest start."""
    _validate(jobs, capacity, horizon_s)
    tracker = _CapacityTracker(capacity, horizon_s)
    placements = []
    for job in jobs:
        t_start = _earliest_fit(job, tracker, horizon_s, t_from=job.submit_s)
        if t_start is None:
            raise ConfigError(f"job {job.name!r} does not fit in the horizon")
        tracker.reserve(t_start, job.duration_s, job.nodes)
        placements.append(Placement(job, t_start))
    return ScheduleOutcome(
        placements=placements,
        cost_dollars=_bill(placements, tariff),
        makespan_s=max(p.t_end for p in placements),
    )


def power_aware_schedule(jobs: list[Job], tariff: Tariff, capacity: int,
                         horizon_s: float = 48 * HOUR,
                         off_peak_probe_s: float = 900.0) -> ScheduleOutcome:
    """Shift power-hungry jobs into cheap windows.

    Jobs are placed most-energy-first; each candidate start on the grid
    is scored by the tariff cost of running the job there, and the
    cheapest feasible start wins (ties go to the earliest).
    """
    _validate(jobs, capacity, horizon_s)
    tracker = _CapacityTracker(capacity, horizon_s)
    placements = []
    for job in sorted(jobs, key=lambda j: -j.mean_power_w * j.duration_s * j.nodes):
        best_start, best_cost = None, np.inf
        t = job.submit_s
        while t + job.duration_s <= horizon_s + 1e-9:
            if tracker.fits(t, job.duration_s, job.nodes):
                cost = _bill([Placement(job, t)], tariff)
                if cost < best_cost - 1e-12:
                    best_start, best_cost = t, cost
            t += off_peak_probe_s
        if best_start is None:
            raise ConfigError(f"job {job.name!r} does not fit in the horizon")
        tracker.reserve(best_start, job.duration_s, job.nodes)
        placements.append(Placement(job, best_start))
    return ScheduleOutcome(
        placements=placements,
        cost_dollars=_bill(placements, tariff),
        makespan_s=max(p.t_end for p in placements),
    )


def savings_percent(baseline: ScheduleOutcome, aware: ScheduleOutcome) -> float:
    """Bill reduction of the power-aware schedule vs the baseline."""
    if baseline.cost_dollars <= 0.0:
        raise ConfigError("baseline bill is zero; savings undefined")
    return 100.0 * (baseline.cost_dollars - aware.cost_dollars) / baseline.cost_dollars


def _validate(jobs: list[Job], capacity: int, horizon_s: float) -> None:
    if not jobs:
        raise ConfigError("no jobs to schedule")
    if capacity <= 0:
        raise ConfigError(f"capacity must be positive, got {capacity}")
    if horizon_s <= 0.0:
        raise ConfigError(f"horizon must be positive, got {horizon_s}")
    for job in jobs:
        if job.nodes > capacity:
            raise ConfigError(f"job {job.name!r} needs {job.nodes} nodes > "
                              f"capacity {capacity}")
