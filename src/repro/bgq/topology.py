"""BG/Q machine topology.

"A rack of a BG/Q system consists of two midplanes, eight link cards,
and two service cards.  A midplane contains 16 node boards.  Each node
board holds 32 compute cards, for a total of 1,024 nodes per rack.
Each compute card has a single 18-core PowerPC A2 processor (16 cores
for applications, one core for system software, and one core inactive)
with four hardware threads per core ...  BG/Q thus has 16,384 cores per
rack."  (paper §II-A)

Location strings follow the IBM convention: ``R07-M1-N03-J12`` is rack
7, midplane 1, node board 3, compute card 12.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bgq.domains import BGQ_DOMAINS, BgqDomain, domain_spec
from repro.devices.load import LoadBoard
from repro.devices.power import ComponentPowerModel
from repro.errors import ConfigError
from repro.sim.rng import RngRegistry

MIDPLANES_PER_RACK = 2
NODE_BOARDS_PER_MIDPLANE = 16
COMPUTE_CARDS_PER_NODE_BOARD = 32
LINK_CARDS_PER_RACK = 8
SERVICE_CARDS_PER_RACK = 2

CORES_PER_PROCESSOR = 18
APP_CORES_PER_PROCESSOR = 16
THREADS_PER_CORE = 4
NODES_PER_RACK = (
    MIDPLANES_PER_RACK * NODE_BOARDS_PER_MIDPLANE * COMPUTE_CARDS_PER_NODE_BOARD
)
APP_CORES_PER_RACK = NODES_PER_RACK * APP_CORES_PER_PROCESSOR


@dataclass(frozen=True)
class ComputeCard:
    """One compute node: a single 18-core A2 processor + DDR3."""

    location: str
    app_cores: int = APP_CORES_PER_PROCESSOR
    system_cores: int = 1
    inactive_cores: int = 1
    threads_per_core: int = THREADS_PER_CORE

    @property
    def total_cores(self) -> int:
        return self.app_cores + self.system_cores + self.inactive_cores


class NodeBoard:
    """32 compute cards sharing one set of domain rails.

    This is the EMON granularity: "it can only collect data at the node
    card level (every 32 nodes); this limitation is part of the design
    of the system and it is not possible to overcome in software."
    """

    def __init__(self, location: str, rng: RngRegistry):
        self.location = location
        self.rng = rng
        self.cards = [
            ComputeCard(f"{location}-J{j:02d}")
            for j in range(COMPUTE_CARDS_PER_NODE_BOARD)
        ]
        self.board = LoadBoard()
        self._models = {
            spec.domain: ComponentPowerModel(
                self.board, idle_w=spec.idle_w,
                dynamic_w={spec.component: spec.dynamic_w},
            )
            for spec in BGQ_DOMAINS
        }

    @property
    def node_count(self) -> int:
        return len(self.cards)

    def domain_power(self, domain: BgqDomain, t):
        """True DC power of one domain rail (W)."""
        return self._models[domain].power(t)

    def domain_voltage(self, domain: BgqDomain, t):
        """Rail voltage: nominal with utilization-proportional droop."""
        spec = domain_spec(domain)
        util = self.board.utilization(spec.component, t)
        return spec.nominal_v * (1.0 - spec.droop * util)

    def domain_current(self, domain: BgqDomain, t):
        """Rail current implied by power and voltage."""
        return self.domain_power(domain, t) / self.domain_voltage(domain, t)

    def total_power(self, t):
        """DC power of the whole node card — the top line of Figure 2."""
        total = self.domain_power(BGQ_DOMAINS[0].domain, t)
        for spec in BGQ_DOMAINS[1:]:
            total = total + self.domain_power(spec.domain, t)
        return total


@dataclass
class LinkCard:
    """Optical link card (sensors live in the environmental DB only)."""

    location: str


@dataclass
class ServiceCard:
    """Rack service card (control network + clock)."""

    location: str


class Midplane:
    """16 node boards plus shared infrastructure."""

    def __init__(self, location: str, rng: RngRegistry):
        self.location = location
        self.node_boards = [
            NodeBoard(f"{location}-N{n:02d}", rng.fork(f"N{n:02d}"))
            for n in range(NODE_BOARDS_PER_MIDPLANE)
        ]

    @property
    def node_count(self) -> int:
        return sum(board.node_count for board in self.node_boards)


class Rack:
    """Two midplanes, eight link cards, two service cards."""

    def __init__(self, index: int, rng: RngRegistry):
        self.index = index
        self.location = f"R{index:02d}"
        self.midplanes = [
            Midplane(f"{self.location}-M{m}", rng.fork(f"M{m}"))
            for m in range(MIDPLANES_PER_RACK)
        ]
        self.link_cards = [
            LinkCard(f"{self.location}-L{i}") for i in range(LINK_CARDS_PER_RACK)
        ]
        self.service_cards = [
            ServiceCard(f"{self.location}-S{i}") for i in range(SERVICE_CARDS_PER_RACK)
        ]

    @property
    def node_count(self) -> int:
        return sum(mp.node_count for mp in self.midplanes)

    @property
    def core_count(self) -> int:
        return self.node_count * APP_CORES_PER_PROCESSOR

    def node_boards(self) -> list[NodeBoard]:
        return [board for mp in self.midplanes for board in mp.node_boards]


def bgq_machine(racks: int, rng: RngRegistry | None = None) -> list[Rack]:
    """Build ``racks`` BG/Q racks with independent RNG namespaces."""
    if racks <= 0:
        raise ConfigError(f"rack count must be positive, got {racks}")
    registry = rng if rng is not None else RngRegistry()
    return [Rack(i, registry.fork(f"R{i:02d}")) for i in range(racks)]
