"""The BG/Q sensor source: EMON's 7-domain node-card view, columnar."""

from __future__ import annotations

import numpy as np

from repro.bgq.domains import BGQ_DOMAINS
from repro.bgq.emon import GENERATION_PERIOD_S, EmonInterface
from repro.mech.cache import CachePlan, FieldPlan
from repro.mech.source import SensorSource

#: Output field names in column order: one watt column per EMON domain
#: plus the node-card total MonEQ computes.
EMON_FIELDS: tuple[str, ...] = tuple(
    f"{spec.domain.value}_w" for spec in BGQ_DOMAINS
) + ("node_card_w",)


class EmonSource(SensorSource):
    """One node board's EMON domains as power columns.

    ``node_card_w`` accumulates in domain order, like the scalar
    ``sum()`` the original backend used — the byte-identity oracle
    notices any other order.
    """

    def __init__(self, emon: EmonInterface):
        self.emon = emon

    def fields(self) -> tuple[str, ...]:
        return EMON_FIELDS

    def collect(self, times: np.ndarray) -> dict[str, np.ndarray]:
        powers = self.emon.collect_block(times)
        columns: dict[str, np.ndarray] = {}
        total = np.zeros(times.shape[0])
        for spec in BGQ_DOMAINS:
            column = powers[spec.domain]
            columns[f"{spec.domain.value}_w"] = column
            total = total + column
        columns["node_card_w"] = total
        return columns

    def cache_plan(self) -> CachePlan:
        # Each domain serves the oldest of two generations: its watts
        # are a pure function of the generation window the poll lands
        # in, offset by the domain's sampling phase.  The node-card
        # total sums domains with differing phases, so no single window
        # describes it — exact-timestamp keys only.
        fields = {
            f"{spec.domain.value}_w": FieldPlan(
                GENERATION_PERIOD_S, spec.sample_phase)
            for spec in BGQ_DOMAINS
        }
        fields["node_card_w"] = FieldPlan()
        return CachePlan(self.emon, fields)
