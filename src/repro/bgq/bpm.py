"""Bulk power modules.

"In each BG/Q rack, bulk power modules (BPMs) convert AC power to 48 V
DC power, which is then distributed to the two midplanes. ...  The Blue
Gene environmental database stores power consumption information (in
watts and amperes) in both the input and output directions of the BPM."
(paper §II-A)

One BPM in this model feeds one node board — the granularity at which
Figure 1 and Figure 2 are compared ("the power consumption of the node
card matches that of the data collected at the BPM in terms of total
power consumption").
"""

from __future__ import annotations

import numpy as np

from repro.bgq.topology import NodeBoard
from repro.errors import ConfigError
from repro.sim.hashrand import hash_normal

#: Facility AC feed voltage.
AC_INPUT_VOLTAGE = 208.0
#: DC distribution voltage.
DC_OUTPUT_VOLTAGE = 48.0


class BulkPowerModule:
    """AC->48 V DC converter with input/output metering."""

    def __init__(self, node_board: NodeBoard, efficiency: float = 0.90,
                 meter_noise_w: float = 8.0, seed: int = 0):
        if not 0.5 < efficiency <= 1.0:
            raise ConfigError(f"efficiency must be in (0.5, 1], got {efficiency}")
        if meter_noise_w < 0.0:
            raise ConfigError(f"meter noise must be non-negative, got {meter_noise_w}")
        self.node_board = node_board
        self.efficiency = float(efficiency)
        self.meter_noise_w = float(meter_noise_w)
        self.seed = seed
        self.location = f"{node_board.location}-BPM"

    # -- truth -----------------------------------------------------------------

    def output_power_w(self, t) -> np.ndarray:
        """DC power delivered to the node board."""
        return np.asarray(self.node_board.total_power(t), dtype=np.float64)

    def input_power_w(self, t) -> np.ndarray:
        """AC power drawn from the facility: output / efficiency, with a
        small fixed conversion floor."""
        return self.output_power_w(t) / self.efficiency + 12.0

    # -- metered readings (what the environmental DB records) ---------------

    def metered(self, t: float) -> dict[str, float]:
        """One metering scan: input/output power (W) and current (A).

        Meter noise is deterministic per scan instant.
        """
        idx = int(round(t * 1000.0))
        noise_in = float(hash_normal(self.seed, idx)) * self.meter_noise_w
        noise_out = float(hash_normal(self.seed ^ 0xBEEF, idx)) * self.meter_noise_w
        input_w = float(self.input_power_w(t)) + noise_in
        output_w = float(self.output_power_w(t)) + noise_out
        return {
            "input_power_w": input_w,
            "input_current_a": input_w / AC_INPUT_VOLTAGE,
            "output_power_w": output_w,
            "output_current_a": output_w / DC_OUTPUT_VOLTAGE,
        }
