"""The seven BG/Q power domains.

MonEQ "allows us to read the individual voltage and current data points
for each of the 7 BG/Q domains" (paper §II-A); Figure 2 stacks them:
chip core, DRAM, link chip core, HSS network, optics, PCI Express and
SRAM.  Each domain is a DC rail on the node board: EMON exposes its
voltage and current, and power is their product.

Budgets below are per **node card** (32 compute nodes), chosen so the
idle card draws ~700 W DC and an MMPS-loaded card ~1.5-1.6 kW — which,
through a ~90 %-efficient bulk power module, reproduces Figure 1's
800-1800 W AC-input band and Figure 2's ~2 kW stacked peak.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.workloads.base import Component


class BgqDomain(enum.Enum):
    """The 7 MonEQ domains, in Figure 2's legend order."""

    CHIP_CORE = "chip_core"
    DRAM = "dram"
    LINK_CHIP_CORE = "link_chip_core"
    HSS_NETWORK = "hss_network"
    OPTICS = "optics"
    PCI_EXPRESS = "pci_express"
    SRAM = "sram"


@dataclass(frozen=True)
class DomainSpec:
    """Electrical parameters of one domain rail, per node card."""

    domain: BgqDomain
    component: str        # workload component driving it
    idle_w: float
    dynamic_w: float
    nominal_v: float
    #: Voltage droop at full load (fraction of nominal).
    droop: float = 0.03
    #: Sensor generation phase offset (s) — domains are not all sampled
    #: at the same instant (the paper's EMON inconsistency).
    sample_phase: float = 0.0


#: Domain table, per node card.
BGQ_DOMAINS: list[DomainSpec] = [
    DomainSpec(BgqDomain.CHIP_CORE, Component.BGQ_CHIP_CORE,
               idle_w=330.0, dynamic_w=500.0, nominal_v=0.90, sample_phase=0.000),
    DomainSpec(BgqDomain.DRAM, Component.BGQ_DRAM,
               idle_w=160.0, dynamic_w=250.0, nominal_v=1.35, sample_phase=0.040),
    DomainSpec(BgqDomain.LINK_CHIP_CORE, Component.BGQ_LINK_CHIP,
               idle_w=60.0, dynamic_w=100.0, nominal_v=1.00, sample_phase=0.080),
    DomainSpec(BgqDomain.HSS_NETWORK, Component.BGQ_HSS,
               idle_w=60.0, dynamic_w=150.0, nominal_v=1.20, sample_phase=0.120),
    DomainSpec(BgqDomain.OPTICS, Component.BGQ_OPTICS,
               idle_w=50.0, dynamic_w=120.0, nominal_v=3.30, sample_phase=0.160),
    DomainSpec(BgqDomain.PCI_EXPRESS, Component.BGQ_PCIE,
               idle_w=20.0, dynamic_w=40.0, nominal_v=3.30, sample_phase=0.200),
    DomainSpec(BgqDomain.SRAM, Component.BGQ_SRAM,
               idle_w=20.0, dynamic_w=40.0, nominal_v=0.90, sample_phase=0.240),
]


def domain_spec(domain: BgqDomain) -> DomainSpec:
    """Spec for one domain."""
    for spec in BGQ_DOMAINS:
        if spec.domain is domain:
            return spec
    raise KeyError(domain)  # pragma: no cover - enum is closed


#: Node-card totals implied by the table (used by tests and DESIGN.md).
NODE_CARD_IDLE_W = sum(spec.idle_w for spec in BGQ_DOMAINS)
NODE_CARD_PEAK_W = NODE_CARD_IDLE_W + sum(spec.dynamic_w for spec in BGQ_DOMAINS)
