"""Assembled BG/Q machines.

:class:`BgqMachine` wires the pieces together: racks, one BPM per node
board, the environmental database, and EMON interfaces per node board —
everything the Figure 1/2 and Table III experiments need.  ``mira()``
builds the 48-rack configuration (49,152 nodes) the paper profiles;
small configurations are the default for tests.
"""

from __future__ import annotations

from repro.bgq.bpm import BulkPowerModule
from repro.bgq.emon import EmonInterface
from repro.bgq.envdb import DEFAULT_POLL_INTERVAL_S, EnvironmentalDatabase
from repro.bgq.topology import NodeBoard, Rack, bgq_machine
from repro.errors import ConfigError
from repro.sim.clock import VirtualClock
from repro.sim.events import EventQueue
from repro.sim.rng import RngRegistry
from repro.workloads.base import Workload

#: Mira: Argonne's 48-rack system.
MIRA_RACKS = 48


class BgqMachine:
    """A BG/Q installation with monitoring wired up."""

    def __init__(self, racks: int = 1, rng: RngRegistry | None = None,
                 poll_interval_s: float = DEFAULT_POLL_INTERVAL_S,
                 start_poller: bool = True, envdb_shards: int = 1):
        self.rng = rng if rng is not None else RngRegistry()
        self.clock = VirtualClock()
        self.events = EventQueue(self.clock)
        self.racks: list[Rack] = bgq_machine(racks, self.rng)
        self.envdb = EnvironmentalDatabase(self.events, poll_interval_s,
                                           shards=envdb_shards)
        self._bpms: dict[str, BulkPowerModule] = {}
        self._emons: dict[str, EmonInterface] = {}
        for board in self.node_boards():
            bpm = BulkPowerModule(
                board, seed=self.rng.seed(f"bpm.{board.location}")
            )
            self._bpms[board.location] = bpm
            self.envdb.register_bpm(bpm)
            self._emons[board.location] = EmonInterface(board, self.clock)
        if start_poller:
            self.envdb.start()

    @classmethod
    def mira(cls, **kwargs) -> "BgqMachine":
        """The full 48-rack Mira configuration (expensive; used by the
        scale benchmarks, not unit tests)."""
        return cls(racks=MIRA_RACKS, **kwargs)

    # -- structure -------------------------------------------------------------

    def node_boards(self) -> list[NodeBoard]:
        return [board for rack in self.racks for board in rack.node_boards()]

    @property
    def node_count(self) -> int:
        return sum(rack.node_count for rack in self.racks)

    def bpm(self, location: str) -> BulkPowerModule:
        try:
            return self._bpms[location]
        except KeyError:
            raise ConfigError(f"no BPM at {location!r}") from None

    def emon(self, location: str) -> EmonInterface:
        try:
            return self._emons[location]
        except KeyError:
            raise ConfigError(f"no node board at {location!r}") from None

    # -- job placement -----------------------------------------------------------

    def run_job(self, workload: Workload, node_count: int, t_start: float) -> list[NodeBoard]:
        """Schedule ``workload`` on the first boards covering
        ``node_count`` nodes (32 nodes per board).

        Returns the boards used.  Jobs land on whole node boards, as BG/Q
        partitions do.
        """
        if node_count <= 0:
            raise ConfigError(f"node count must be positive, got {node_count}")
        boards_needed = -(-node_count // 32)  # ceil
        boards = self.node_boards()
        if boards_needed > len(boards):
            raise ConfigError(
                f"job needs {boards_needed} node boards, machine has {len(boards)}"
            )
        used = boards[:boards_needed]
        for board in used:
            board.board.schedule(workload, t_start)
        return used

    def advance_to(self, t: float) -> None:
        """Run the environmental poller (and anything else queued) to ``t``."""
        self.events.run_until(t)
