"""The EMON environmental-monitoring API.

Properties reproduced from §II-A:

* node-card granularity — one EMON reading covers 32 nodes; per-node
  data is "not possible to overcome in software";
* readings expose **voltage and current** per domain (power is computed
  by the consumer, as MonEQ does);
* data comes "from the oldest generation of power data" — the value
  returned is one full generation behind the hardware sample;
* "the underlying power measurement infrastructure does not measure all
  domains at the exact same time" — per-domain sample phases;
* ~1.10 ms per collection (~0.19 % overhead at MonEQ's cadence).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bgq.domains import BGQ_DOMAINS, BgqDomain
from repro.bgq.topology import NodeBoard
from repro.errors import SensorError
from repro.host.process import Process
from repro.obs.instruments import collector
from repro.sim.clock import VirtualClock
from repro.sim.noise import GaussianNoise
from repro.sim.rng import RngRegistry
from repro.sim.sensor import SampledSensor

_OBS = collector("emon")

#: Per-collection latency of an EMON query (paper: "about 1.10 ms").
EMON_QUERY_LATENCY_S = 1.10e-3

#: Hardware sampling generation period.  MonEQ's fastest useful polling
#: interval on BG/Q is 560 ms = two generations of this.
GENERATION_PERIOD_S = 0.280


@dataclass(frozen=True)
class EmonReading:
    """One domain's (voltage, current) pair plus its sample timestamp."""

    domain: BgqDomain
    voltage_v: float
    current_a: float
    sample_time: float

    @property
    def power_w(self) -> float:
        return self.voltage_v * self.current_a


class EmonInterface:
    """EMON access to one node board's domain sensors."""

    def __init__(self, node_board: NodeBoard, clock: VirtualClock,
                 rng: RngRegistry | None = None):
        self.node_board = node_board
        self.clock = clock
        registry = rng if rng is not None else node_board.rng
        self._voltage_sensors: dict[BgqDomain, SampledSensor] = {}
        self._current_sensors: dict[BgqDomain, SampledSensor] = {}
        for spec in BGQ_DOMAINS:
            self._voltage_sensors[spec.domain] = SampledSensor(
                truth=_VoltageSignal(node_board, spec.domain),
                update_interval=GENERATION_PERIOD_S,
                noise=GaussianNoise(0.002),
                seed=registry.seed(f"emon.{spec.domain.value}.v"),
                phase=spec.sample_phase,
            )
            self._current_sensors[spec.domain] = SampledSensor(
                truth=_CurrentSignal(node_board, spec.domain),
                update_interval=GENERATION_PERIOD_S,
                noise=GaussianNoise(0.5),
                seed=registry.seed(f"emon.{spec.domain.value}.i"),
                phase=spec.sample_phase,
            )

    def collect(self, process: Process | None = None) -> list[EmonReading]:
        """One EMON collection: all 7 domains, oldest-generation data.

        Charges 1.10 ms to the clock (and ``process``), then returns the
        generation *before* the one currently visible to the hardware.
        """
        self.clock.advance(EMON_QUERY_LATENCY_S)
        if process is not None and process.alive:
            process.charge(EMON_QUERY_LATENCY_S)
        _OBS.record_query(EMON_QUERY_LATENCY_S)
        return self.collect_at(self.clock.now)

    def collect_at(self, t: float) -> list[EmonReading]:
        """Passive collection at time ``t`` — no clock movement.

        MonEQ uses this path: agents on different node boards collect in
        parallel, so the profiling session, not the device call, decides
        how wall-clock advances (it charges the documented latency to
        each agent's process and steps the shared clock once per tick).
        """
        readings = []
        for spec in BGQ_DOMAINS:
            v_sensor = self._voltage_sensors[spec.domain]
            # Oldest generation: one full period behind the current one.
            stale_t = max(float(v_sensor.last_update_time(t)) - GENERATION_PERIOD_S, 0.0)
            readings.append(EmonReading(
                domain=spec.domain,
                voltage_v=float(v_sensor.read(stale_t)),
                current_a=float(self._current_sensors[spec.domain].read(stale_t)),
                sample_time=stale_t,
            ))
        return readings

    def collect_block(self, times: np.ndarray) -> dict[BgqDomain, np.ndarray]:
        """Vectorized :meth:`collect_at`: per-domain power (V x I)
        columns at each time in ``times``.

        Elementwise identical to looping ``collect_at`` — same
        stale-generation snap, same per-update noise draws — without
        the per-call Python overhead; the MonEQ block-sampling path
        relies on the bit-exact match.
        """
        times = np.asarray(times, dtype=np.float64)
        powers: dict[BgqDomain, np.ndarray] = {}
        for spec in BGQ_DOMAINS:
            v_sensor = self._voltage_sensors[spec.domain]
            stale_t = np.maximum(
                v_sensor.last_update_time(times) - GENERATION_PERIOD_S, 0.0
            )
            powers[spec.domain] = (
                v_sensor.read(stale_t)
                * self._current_sensors[spec.domain].read(stale_t)
            )
        return powers

    def collect_power_w(self, process: Process | None = None) -> dict[BgqDomain, float]:
        """Convenience: per-domain power (V x I) from one collection."""
        return {r.domain: r.power_w for r in self.collect(process)}

    @staticmethod
    def node_card_power(readings: list[EmonReading]) -> float:
        """Total node-card power from one collection (Figure 2's top line)."""
        if not readings:
            raise SensorError("empty EMON collection")
        return sum(r.power_w for r in readings)


class _VoltageSignal:
    """Live rail-voltage view of one domain."""

    def __init__(self, node_board: NodeBoard, domain: BgqDomain):
        self.node_board, self.domain = node_board, domain

    def value(self, t):
        return self.node_board.domain_voltage(self.domain, t)


class _CurrentSignal:
    """Live rail-current view of one domain."""

    def __init__(self, node_board: NodeBoard, domain: BgqDomain):
        self.node_board, self.domain = node_board, domain

    def value(self, t):
        return self.node_board.domain_current(self.domain, t)
