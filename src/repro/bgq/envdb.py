"""The Blue Gene environmental database.

"Blue Gene systems have environmental monitoring capabilities that
periodically sample and gather environmental data from various sensors
and store this collected information together with the timestamp and
location information in an IBM DB2 relational database.  ...  This
sensor data is collected at relatively long polling intervals (about 4
minutes on average but can be configured anywhere within a range of
60-1,800 seconds), and while a shorter polling interval would be ideal,
the resulting volume of data alone would exceed the server's processing
capacity."  (paper §II-A)

Storage routes through :class:`repro.store.ShardedStore`: records shard
by rack prefix, each shard carries the paper's single-server ingest
ceiling, and sweeps are written as one batch.  The default
``shards=1`` *is* the paper's DB2 server — same capacity arithmetic,
same query results — while ``shards=16`` sustains a full-Mira sweep at
the 60 s minimum interval.  Queries return :class:`EnvRecord` rows (the
legacy shape) adapted from the store's normalized
:class:`~repro.store.Reading` records.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bgq.bpm import BulkPowerModule
from repro.errors import ConfigError
from repro.obs.instruments import ENVDB_POLLS, ENVDB_QUERY_ROWS, ENVDB_RECORDS, collector
from repro.sim.events import EventQueue
from repro.sim.hashrand import hash_normal
from repro.store import Aggregate, Reading, ShardedStore, WriteBatcher

_OBS = collector("envdb")
_RECORD_COUNTERS = {}

#: Allowed polling-interval range (s).
MIN_POLL_INTERVAL_S = 60.0
MAX_POLL_INTERVAL_S = 1800.0
#: The "about 4 minutes on average" default.
DEFAULT_POLL_INTERVAL_S = 240.0

#: DB2 server ingest ceiling, records/second — sized so that a full
#: Mira (1,536 BPM sweeps x 4 tables) saturates the server below the
#: 60 s minimum interval but runs comfortably at the ~4 minute default,
#: the paper's capacity rationale.  With sharding this is a *per-shard*
#: ceiling; one shard reproduces the paper's single server.
SERVER_CAPACITY_RECORDS_PER_S = 60.0


@dataclass(frozen=True)
class EnvRecord:
    """One row: timestamp, location, measurement name -> value.

    Legacy adapter over :class:`repro.store.Reading` — the shape the
    seed envdb exposed and the bgq tests still consume.
    """

    timestamp: float
    location: str
    values: dict[str, float]

    @classmethod
    def from_reading(cls, reading: Reading) -> "EnvRecord":
        return cls(reading.timestamp, reading.location, dict(reading.values))

    def to_reading(self) -> Reading:
        return Reading(self.timestamp, self.location, "envdb",
                       dict(self.values))


class EnvironmentalDatabase:
    """The environmental database plus its polling agent.

    Parameters
    ----------
    queue:
        Event queue driving the poller.
    poll_interval_s:
        Must lie within the documented 60-1800 s range.
    shards:
        Independent stores the records shard across (by rack prefix).
        1 — the default — models the paper's single DB2 server.
    """

    TABLES = ("bpm", "coolant", "temperature", "fan")

    def __init__(self, queue: EventQueue,
                 poll_interval_s: float = DEFAULT_POLL_INTERVAL_S,
                 shards: int = 1):
        if not MIN_POLL_INTERVAL_S <= poll_interval_s <= MAX_POLL_INTERVAL_S:
            raise ConfigError(
                f"poll interval {poll_interval_s} s outside the configurable "
                f"range [{MIN_POLL_INTERVAL_S}, {MAX_POLL_INTERVAL_S}] s"
            )
        self.queue = queue
        self.poll_interval_s = float(poll_interval_s)
        self.store = ShardedStore(
            self.TABLES, n_shards=shards,
            capacity_records_per_s=SERVER_CAPACITY_RECORDS_PER_S,
        )
        self._batcher = WriteBatcher(self.store)
        self._bpms: list[BulkPowerModule] = []
        self._polls = 0
        self._started = False

    # -- sensor registration --------------------------------------------------

    def register_bpm(self, bpm: BulkPowerModule) -> None:
        self._bpms.append(bpm)

    @property
    def sensors_per_poll(self) -> int:
        """Records written per polling sweep: BPM rows plus the ambient
        coolant/temperature/fan rows each rack contributes."""
        return len(self._bpms) * 4  # bpm, coolant, temperature, fan rows

    def sweep_locations(self) -> list[str]:
        """One location per record a sweep writes, in sweep order — the
        capacity model's input, and what fleet rebalancing sizes shard
        maps against."""
        out: list[str] = []
        for bpm in self._bpms:
            out.extend((bpm.location, bpm.node_board.location,
                        bpm.node_board.location, bpm.location))
        return out

    # -- capacity model --------------------------------------------------------

    def ingest_rate(self, poll_interval_s: float | None = None) -> float:
        """Records/second the whole fleet offers at a given interval."""
        interval = self.poll_interval_s if poll_interval_s is None else poll_interval_s
        return self.sensors_per_poll / interval

    def capacity_fraction(self, poll_interval_s: float | None = None) -> float:
        """Fraction of the ingest ceiling the *hottest shard* consumes.

        With one shard this is exactly the seed's single-server figure:
        offered records / (interval x server capacity).
        """
        interval = self.poll_interval_s if poll_interval_s is None else poll_interval_s
        return self.store.capacity_fraction(self.sweep_locations(), interval)

    def shortest_sustainable_interval(self) -> float:
        """The fastest poll the hottest shard could sustain for this
        sensor population (clamped into the configurable range)."""
        load = self.store.sweep_load(self.sweep_locations(), 1.0)
        raw = max(load.values(), default=0.0)
        return min(max(raw, MIN_POLL_INTERVAL_S), MAX_POLL_INTERVAL_S)

    @property
    def dropped_records(self) -> int:
        """Records lost to shard saturation since the poller started."""
        return self.store.dropped_records

    # -- polling ---------------------------------------------------------------

    def start(self) -> None:
        """Begin periodic sweeps on the event queue."""
        if self._started:
            raise ConfigError("environmental poller already started")
        self._started = True
        self.queue.schedule_in(self.poll_interval_s, self._sweep)

    def _sweep(self, t: float) -> None:
        self._polls += 1
        ENVDB_POLLS.inc()
        for table in self.TABLES:
            child = _RECORD_COUNTERS.get(table)
            if child is None:
                child = _RECORD_COUNTERS[table] = ENVDB_RECORDS.labels(table)
            child.inc(len(self._bpms))
        for bpm in self._bpms:
            metered = bpm.metered(t)
            self._batcher.add("bpm", Reading(t, bpm.location, "envdb", metered))
            # Ambient rows derived from the board's electrical state.
            out_w = metered["output_power_w"]
            idx = int(round(t))
            jitter = float(hash_normal(bpm.seed ^ 0xC0FFEE, idx))
            self._batcher.add("coolant", Reading(
                t, bpm.node_board.location, "envdb",
                {"flow_lpm": 18.0 + 0.2 * jitter,
                 "pressure_kpa": 310.0 + 1.5 * jitter,
                 "inlet_c": 16.5 + 0.1 * jitter,
                 "outlet_c": 16.5 + out_w / 900.0},
            ))
            self._batcher.add("temperature", Reading(
                t, bpm.node_board.location, "envdb",
                {"board_c": 24.0 + out_w / 250.0},
            ))
            self._batcher.add("fan", Reading(
                t, bpm.location, "envdb", {"speed_rpm": 3600.0 + out_w / 4.0},
            ))
        if len(self._batcher):
            self._batcher.flush(self.poll_interval_s)
        self.queue.schedule_in(self.poll_interval_s, self._sweep)

    @property
    def polls_completed(self) -> int:
        return self._polls

    # -- queries ----------------------------------------------------------------

    def query(self, table: str, t0: float, t1: float,
              location_prefix: str = "") -> list[EnvRecord]:
        """Range + location-prefix query over one table (legacy rows)."""
        return [EnvRecord.from_reading(r)
                for r in self.range_readings(table, t0, t1, location_prefix)]

    def range_readings(self, table: str, t0: float, t1: float,
                       location_prefix: str = "") -> list[Reading]:
        """Range + location-prefix query, as normalized readings."""
        readings = self.store.range(table, t0, t1, location_prefix)
        _OBS.count_query()
        ENVDB_QUERY_ROWS.inc(len(readings))
        return readings

    def aggregate(self, table: str, field: str, t0: float, t1: float,
                  window_s: float, location_prefix: str = "") -> list[Aggregate]:
        """Downsampled min/mean/max per location per window — the
        cache-backed path figure pipelines use for repeated scans."""
        _OBS.count_query()
        return self.store.aggregate(table, field, t0, t1, window_s,
                                    location_prefix)

    def bpm_input_power_series(self, location_prefix: str, t0: float,
                               t1: float) -> tuple[list[float], list[float]]:
        """(times, input watts) for Figure 1-style plots."""
        records = self.query("bpm", t0, t1, location_prefix)
        return ([r.timestamp for r in records],
                [r.values["input_power_w"] for r in records])
