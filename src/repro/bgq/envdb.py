"""The Blue Gene environmental database.

"Blue Gene systems have environmental monitoring capabilities that
periodically sample and gather environmental data from various sensors
and store this collected information together with the timestamp and
location information in an IBM DB2 relational database.  ...  This
sensor data is collected at relatively long polling intervals (about 4
minutes on average but can be configured anywhere within a range of
60-1,800 seconds), and while a shorter polling interval would be ideal,
the resulting volume of data alone would exceed the server's processing
capacity."  (paper §II-A)

The store keeps typed records per table (``bpm``, ``coolant``,
``temperature``, ``fan``) with timestamp + location, supports range/
prefix queries, and models the DB server's ingest-capacity ceiling.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field

from repro.bgq.bpm import BulkPowerModule
from repro.errors import ConfigError
from repro.obs.instruments import ENVDB_POLLS, ENVDB_QUERY_ROWS, ENVDB_RECORDS, collector
from repro.sim.events import EventQueue
from repro.sim.hashrand import hash_normal

_OBS = collector("envdb")
_RECORD_COUNTERS = {}

#: Allowed polling-interval range (s).
MIN_POLL_INTERVAL_S = 60.0
MAX_POLL_INTERVAL_S = 1800.0
#: The "about 4 minutes on average" default.
DEFAULT_POLL_INTERVAL_S = 240.0

#: DB2 server ingest ceiling, records/second — sized so that a full
#: Mira (1,536 BPM sweeps x 4 tables) saturates the server below the
#: 60 s minimum interval but runs comfortably at the ~4 minute default,
#: the paper's capacity rationale.
SERVER_CAPACITY_RECORDS_PER_S = 60.0


@dataclass(frozen=True)
class EnvRecord:
    """One row: timestamp, location, measurement name -> value."""

    timestamp: float
    location: str
    values: dict[str, float]


@dataclass
class _Table:
    records: list[EnvRecord] = field(default_factory=list)
    times: list[float] = field(default_factory=list)

    def insert(self, record: EnvRecord) -> None:
        # Poller inserts in time order; keep the invariant explicit.
        idx = bisect.bisect_right(self.times, record.timestamp)
        self.times.insert(idx, record.timestamp)
        self.records.insert(idx, record)

    def query(self, t0: float, t1: float, location_prefix: str) -> list[EnvRecord]:
        lo = bisect.bisect_left(self.times, t0)
        hi = bisect.bisect_right(self.times, t1)
        return [r for r in self.records[lo:hi]
                if r.location.startswith(location_prefix)]


class EnvironmentalDatabase:
    """The environmental database plus its polling agent.

    Parameters
    ----------
    queue:
        Event queue driving the poller.
    poll_interval_s:
        Must lie within the documented 60-1800 s range.
    """

    TABLES = ("bpm", "coolant", "temperature", "fan")

    def __init__(self, queue: EventQueue,
                 poll_interval_s: float = DEFAULT_POLL_INTERVAL_S):
        if not MIN_POLL_INTERVAL_S <= poll_interval_s <= MAX_POLL_INTERVAL_S:
            raise ConfigError(
                f"poll interval {poll_interval_s} s outside the configurable "
                f"range [{MIN_POLL_INTERVAL_S}, {MAX_POLL_INTERVAL_S}] s"
            )
        self.queue = queue
        self.poll_interval_s = float(poll_interval_s)
        self._tables: dict[str, _Table] = {name: _Table() for name in self.TABLES}
        self._bpms: list[BulkPowerModule] = []
        self._polls = 0
        self._started = False

    # -- sensor registration --------------------------------------------------

    def register_bpm(self, bpm: BulkPowerModule) -> None:
        self._bpms.append(bpm)

    @property
    def sensors_per_poll(self) -> int:
        """Records written per polling sweep: BPM rows plus the ambient
        coolant/temperature/fan rows each rack contributes."""
        return len(self._bpms) * 4  # bpm, coolant, temperature, fan rows

    # -- capacity model --------------------------------------------------------

    def ingest_rate(self, poll_interval_s: float | None = None) -> float:
        """Records/second the server must absorb at a given interval."""
        interval = self.poll_interval_s if poll_interval_s is None else poll_interval_s
        return self.sensors_per_poll / interval

    def capacity_fraction(self, poll_interval_s: float | None = None) -> float:
        """Fraction of the DB2 server's ingest ceiling consumed."""
        return self.ingest_rate(poll_interval_s) / SERVER_CAPACITY_RECORDS_PER_S

    def shortest_sustainable_interval(self) -> float:
        """The fastest poll the server could sustain for this sensor
        population (clamped into the configurable range)."""
        raw = self.sensors_per_poll / SERVER_CAPACITY_RECORDS_PER_S
        return min(max(raw, MIN_POLL_INTERVAL_S), MAX_POLL_INTERVAL_S)

    # -- polling ---------------------------------------------------------------

    def start(self) -> None:
        """Begin periodic sweeps on the event queue."""
        if self._started:
            raise ConfigError("environmental poller already started")
        self._started = True
        self.queue.schedule_in(self.poll_interval_s, self._sweep)

    def _sweep(self, t: float) -> None:
        self._polls += 1
        ENVDB_POLLS.inc()
        for table in self.TABLES:
            child = _RECORD_COUNTERS.get(table)
            if child is None:
                child = _RECORD_COUNTERS[table] = ENVDB_RECORDS.labels(table)
            child.inc(len(self._bpms))
        for bpm in self._bpms:
            metered = bpm.metered(t)
            self._tables["bpm"].insert(EnvRecord(t, bpm.location, metered))
            # Ambient rows derived from the board's electrical state.
            out_w = metered["output_power_w"]
            idx = int(round(t))
            jitter = float(hash_normal(bpm.seed ^ 0xC0FFEE, idx))
            self._tables["coolant"].insert(EnvRecord(
                t, bpm.node_board.location,
                {"flow_lpm": 18.0 + 0.2 * jitter,
                 "pressure_kpa": 310.0 + 1.5 * jitter,
                 "inlet_c": 16.5 + 0.1 * jitter,
                 "outlet_c": 16.5 + out_w / 900.0},
            ))
            self._tables["temperature"].insert(EnvRecord(
                t, bpm.node_board.location,
                {"board_c": 24.0 + out_w / 250.0},
            ))
            self._tables["fan"].insert(EnvRecord(
                t, bpm.location, {"speed_rpm": 3600.0 + out_w / 4.0},
            ))
        self.queue.schedule_in(self.poll_interval_s, self._sweep)

    @property
    def polls_completed(self) -> int:
        return self._polls

    # -- queries ----------------------------------------------------------------

    def query(self, table: str, t0: float, t1: float,
              location_prefix: str = "") -> list[EnvRecord]:
        """Range + location-prefix query over one table."""
        if table not in self._tables:
            raise ConfigError(f"no table {table!r}; have {list(self.TABLES)}")
        if t1 < t0:
            raise ConfigError(f"query window inverted: [{t0}, {t1}]")
        records = self._tables[table].query(t0, t1, location_prefix)
        _OBS.count_query()
        ENVDB_QUERY_ROWS.inc(len(records))
        return records

    def bpm_input_power_series(self, location_prefix: str, t0: float,
                               t1: float) -> tuple[list[float], list[float]]:
        """(times, input watts) for Figure 1-style plots."""
        records = self.query("bpm", t0, t1, location_prefix)
        return ([r.timestamp for r in records],
                [r.values["input_power_w"] for r in records])
