"""IBM Blue Gene/Q simulator.

Models the two BG/Q collection mechanisms the paper contrasts:

* the **environmental database** — site-wide polling of rack sensors
  (BPM power in both directions, coolant, fans, temperatures) every
  60-1800 s (about 4 minutes in practice), stored with timestamp and
  location in a relational store; idle periods before/after a job are
  visible (Figure 1), but resolution is coarse and a faster poll "would
  exceed the server's processing capacity";
* the **EMON API** — on-node access to the 7 power domains' voltage and
  current at node-card (32-node) granularity, ~1.10 ms per query
  (~0.19 % overhead), returning "the oldest generation of power data",
  with domains not sampled at the same instant (Figure 2).
"""

from repro.bgq.domains import BGQ_DOMAINS, BgqDomain, DomainSpec
from repro.bgq.topology import (
    ComputeCard,
    Midplane,
    NodeBoard,
    Rack,
    bgq_machine,
)
from repro.bgq.bpm import BulkPowerModule
from repro.bgq.emon import EMON_QUERY_LATENCY_S, EmonInterface, EmonReading
from repro.bgq.envdb import EnvironmentalDatabase, EnvRecord
from repro.bgq.machine import BgqMachine, MIRA_RACKS

__all__ = [
    "BgqDomain",
    "DomainSpec",
    "BGQ_DOMAINS",
    "Rack",
    "Midplane",
    "NodeBoard",
    "ComputeCard",
    "bgq_machine",
    "BulkPowerModule",
    "EmonInterface",
    "EmonReading",
    "EMON_QUERY_LATENCY_S",
    "EnvironmentalDatabase",
    "EnvRecord",
    "BgqMachine",
    "MIRA_RACKS",
]
