"""Source fingerprints for cache invalidation.

A cached result is only valid while the code that produced it is
unchanged, so every spec declares the modules its result depends on and
the cache key folds in a digest of their source text.  Package names
expand to every ``*.py`` file under the package, recursively; module
names resolve to their single source file.  Per-file digests are
memoized on ``(path, mtime_ns, size)`` so a warm ``repro report`` pays
one ``stat`` — not one read — per already-seen file.
"""

from __future__ import annotations

import hashlib
import importlib.util
import os
from pathlib import Path

from repro.errors import ConfigError

#: (absolute path, mtime_ns, size) -> hex digest of file content.
_FILE_DIGESTS: dict[tuple[str, int, int], str] = {}


def _source_files(module_name: str) -> list[Path]:
    """The source file(s) a module/package name refers to."""
    try:
        found = importlib.util.find_spec(module_name)
    except (ImportError, ValueError) as exc:
        raise ConfigError(
            f"cannot resolve declared source module {module_name!r}: {exc}"
        ) from exc
    if found is None:
        raise ConfigError(f"declared source module {module_name!r} not found")
    if found.submodule_search_locations:
        files: list[Path] = []
        for root in found.submodule_search_locations:
            files.extend(sorted(Path(root).rglob("*.py")))
        return files
    if found.origin and found.origin.endswith(".py"):
        return [Path(found.origin)]
    raise ConfigError(
        f"declared source module {module_name!r} has no Python source"
    )


def file_digest(path: Path) -> str:
    """Content digest of one file, memoized on (path, mtime, size)."""
    stat = os.stat(path)
    key = (str(path), stat.st_mtime_ns, stat.st_size)
    cached = _FILE_DIGESTS.get(key)
    if cached is None:
        cached = hashlib.sha256(path.read_bytes()).hexdigest()
        _FILE_DIGESTS[key] = cached
    return cached


def source_fingerprint(module_names: tuple[str, ...]) -> str:
    """One digest over the source text of every named module/package.

    The digest covers ``module_name`` + file basename + content hash per
    file, in deterministic order, so renames and edits both invalidate.
    """
    hasher = hashlib.sha256()
    for name in module_names:
        for path in _source_files(name):
            hasher.update(f"{name}:{path.name}:{file_digest(path)}\n".encode())
    return hasher.hexdigest()
