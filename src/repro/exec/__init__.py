"""``repro.exec`` — the process-parallel experiment execution engine.

Every table/figure/overhead experiment in the repository declares an
:class:`~repro.exec.spec.ExperimentSpec` (id, config dataclass,
deterministic seed, declared source modules); the engine fans specs out
over a ``multiprocessing`` worker pool and memoizes finished results in
a content-addressed cache under ``.repro-cache/``, keyed by a digest of
(experiment id, canonicalized config, source fingerprint).  Warm reruns
of ``python -m repro report`` skip execution entirely; cold runs
parallelize; the rendered report is byte-identical regardless of worker
count or cache state because blocks are assembled from JSON payloads in
registry order.

Layers, bottom up:

* :mod:`repro.exec.spec` — spec/report dataclasses and config canonicalization;
* :mod:`repro.exec.fingerprint` — source fingerprints of declared modules;
* :mod:`repro.exec.cache` — the content-addressed result cache;
* :mod:`repro.exec.pool` — the worker pool (queue, timeout, single retry);
* :mod:`repro.exec.registry` — specs collected from ``repro.experiments``;
* :mod:`repro.exec.engine` — cache-then-pool orchestration.
"""

from repro.exec.cache import CacheStats, ResultCache
from repro.exec.engine import Engine, EngineStats
from repro.exec.pool import PoolTask, WorkerPool
from repro.exec.spec import ExperimentReport, ExperimentSpec, canonical_config

__all__ = [
    "Engine",
    "EngineStats",
    "ExperimentReport",
    "ExperimentSpec",
    "ResultCache",
    "CacheStats",
    "WorkerPool",
    "PoolTask",
    "canonical_config",
]
