"""Content-addressed result cache under ``.repro-cache/``.

A cache entry is one finished task payload, stored as JSON at
``<root>/exec/<digest[:2]>/<digest>.json`` where the digest names the
*inputs* — ``(experiment id, part, canonical config, source
fingerprint)`` — and the entry body carries its own payload digest so
corruption (truncated writes, bit rot, hand edits) is detected on read,
evicted, and recomputed rather than served.

Writes are atomic (temp file + ``os.replace``) so a crashed or killed
worker can never publish a half-written entry.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path

from repro.exec.spec import ExperimentSpec, canonical_config
from repro.obs.instruments import EXEC_CACHE

#: Bump to invalidate every existing entry on a format change.
CACHE_FORMAT = 1

#: Environment override for the cache location (CI sandboxes, tests).
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

DEFAULT_CACHE_ROOT = ".repro-cache"


def default_cache_root() -> Path:
    return Path(os.environ.get(CACHE_DIR_ENV, DEFAULT_CACHE_ROOT))


def cache_key(spec: ExperimentSpec, part: str, fingerprint: str) -> str:
    """The content address of one (spec, part, code-state) result."""
    blob = json.dumps(
        {
            "format": CACHE_FORMAT,
            "experiment": spec.exp_id,
            "part": part,
            "config": canonical_config(spec.config),
            "seed": spec.seed,
            "sources": fingerprint,
        },
        sort_keys=True, separators=(",", ":"),
    )
    return hashlib.sha256(blob.encode()).hexdigest()


def payload_digest(payload: dict) -> str:
    """Canonical digest of a JSON payload (order-insensitive)."""
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


@dataclass(frozen=True)
class CacheStats:
    """What ``repro exec cache stats`` reports."""

    root: str
    entries: int
    total_bytes: int
    experiments: dict[str, int]  # exp_id -> entry count


class ResultCache:
    """Load/store finished task payloads by content address."""

    def __init__(self, root: str | Path | None = None):
        self.root = Path(root) if root is not None else default_cache_root()
        self.dir = self.root / "exec"

    def _path(self, key: str) -> Path:
        return self.dir / key[:2] / f"{key}.json"

    def load(self, key: str) -> dict | None:
        """The payload stored under ``key``, or None on miss.

        A present-but-invalid entry (unparseable, wrong key, payload
        digest mismatch) counts as corruption: it is evicted and None
        is returned so the engine recomputes.
        """
        path = self._path(key)
        try:
            entry = json.loads(path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            return None
        except (OSError, ValueError):
            self._evict(path)
            return None
        if (
            not isinstance(entry, dict)
            or entry.get("format") != CACHE_FORMAT
            or entry.get("key") != key
            or "payload" not in entry
            or entry.get("payload_sha256") != payload_digest(entry["payload"])
        ):
            self._evict(path)
            return None
        return entry["payload"]

    def store(self, key: str, exp_id: str, part: str, payload: dict) -> None:
        """Atomically publish one finished payload."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {
            "format": CACHE_FORMAT,
            "key": key,
            "experiment": exp_id,
            "part": part,
            "payload": payload,
            "payload_sha256": payload_digest(payload),
        }
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(entry, fh, sort_keys=True)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        EXEC_CACHE.labels("store").inc()

    def _evict(self, path: Path) -> None:
        try:
            path.unlink()
        except OSError:
            pass
        EXEC_CACHE.labels("evict_corrupt").inc()

    def stats(self) -> CacheStats:
        entries = 0
        total_bytes = 0
        experiments: dict[str, int] = {}
        for path in sorted(self.dir.glob("*/*.json")):
            entries += 1
            total_bytes += path.stat().st_size
            try:
                exp = json.loads(path.read_text(encoding="utf-8")).get(
                    "experiment", "?")
            except (OSError, ValueError):
                exp = "?"
            experiments[exp] = experiments.get(exp, 0) + 1
        return CacheStats(root=str(self.root), entries=entries,
                          total_bytes=total_bytes, experiments=experiments)

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        if self.dir.is_dir():
            for path in self.dir.glob("*/*.json"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
            for sub in self.dir.glob("*"):
                try:
                    sub.rmdir()
                except OSError:
                    pass
        return removed
