"""The multiprocessing worker pool behind the experiment engine.

Deliberately not ``multiprocessing.Pool``: the engine needs per-task
wall-clock timeouts, crash containment (a worker dying must not take
the run down), and a single deterministic retry — semantics Pool does
not offer.  Each worker owns a one-slot inbox; the parent dispatches
the next pending task to whichever worker frees up, so dispatch order
(longest job first, chosen by the caller) bounds the makespan.

Failure handling:

* a task that raises inside the worker is a *soft* failure — reported
  immediately, never retried (the exception is deterministic);
* a worker that dies (segfault, ``os._exit``, OOM-kill) or exceeds the
  per-task timeout is terminated and replaced, and its task is retried
  exactly once on the fresh worker before being reported as failed.

Workers are forked, so they inherit the parent's imports — no per-task
import tax.  Results travel back as pickled payloads over one shared
queue.
"""

from __future__ import annotations

import multiprocessing as mp
import queue as queue_module
import time
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import ReproError
from repro.obs.instruments import (
    EXEC_QUEUE_DEPTH,
    EXEC_TASKS,
    EXEC_WORKER_RESTARTS,
)


class ExecPoolError(ReproError):
    """The pool itself failed (not an individual task)."""


@dataclass(frozen=True)
class PoolTask:
    """One unit of work: an id plus the argument handed to the fn."""

    task_id: str
    payload: Any = None


@dataclass
class PoolOutcome:
    """Terminal state of one task."""

    task_id: str
    ok: bool
    value: Any = None
    error: str = ""
    wall_s: float = 0.0
    attempts: int = 1


@dataclass
class _Worker:
    process: mp.process.BaseProcess
    inbox: Any
    current: PoolTask | None = None
    attempt: int = 1
    started_at: float = field(default_factory=time.monotonic)


def _worker_main(fn: Callable[[Any], Any], inbox, results, worker_id: int) -> None:
    while True:
        item = inbox.get()
        if item is None:
            return
        task_id, payload, attempt = item
        t0 = time.perf_counter()
        try:
            value = fn(payload)
            results.put((worker_id, task_id, attempt, True, value, "",
                         time.perf_counter() - t0))
        except BaseException as exc:  # a task must never kill its worker
            results.put((worker_id, task_id, attempt, False, None,
                         f"{type(exc).__name__}: {exc}",
                         time.perf_counter() - t0))


class WorkerPool:
    """Run tasks through ``jobs`` forked workers.

    Parameters
    ----------
    fn:
        Module-level callable executed in the worker per task payload.
    jobs:
        Worker count; the pool never spawns more workers than tasks.
    timeout_s:
        Per-task wall-clock budget before the worker is killed.
    retries:
        How many times a crashed/timed-out task is re-dispatched.
    """

    def __init__(self, fn: Callable[[Any], Any], jobs: int,
                 timeout_s: float = 300.0, retries: int = 1,
                 mp_context: str = "fork"):
        if jobs < 1:
            raise ExecPoolError(f"jobs must be >= 1, got {jobs}")
        self.fn = fn
        self.jobs = jobs
        self.timeout_s = timeout_s
        self.retries = retries
        self._ctx = mp.get_context(mp_context)

    # -- serial fallback -------------------------------------------------------

    def _run_inline(self, tasks: list[PoolTask]) -> dict[str, PoolOutcome]:
        outcomes: dict[str, PoolOutcome] = {}
        for i, task in enumerate(tasks):
            EXEC_QUEUE_DEPTH.set(len(tasks) - i - 1)
            t0 = time.perf_counter()
            try:
                value = self.fn(task.payload)
                outcomes[task.task_id] = PoolOutcome(
                    task.task_id, True, value=value,
                    wall_s=time.perf_counter() - t0)
                EXEC_TASKS.labels("ok").inc()
            except Exception as exc:
                outcomes[task.task_id] = PoolOutcome(
                    task.task_id, False, error=f"{type(exc).__name__}: {exc}",
                    wall_s=time.perf_counter() - t0)
                EXEC_TASKS.labels("error").inc()
        return outcomes

    # -- parallel path ---------------------------------------------------------

    def run(self, tasks: list[PoolTask]) -> dict[str, PoolOutcome]:
        """Execute every task; outcomes are keyed by task id."""
        ids = [t.task_id for t in tasks]
        if len(set(ids)) != len(ids):
            raise ExecPoolError("duplicate task ids in one batch")
        if not tasks:
            return {}
        if self.jobs == 1 or len(tasks) == 1:
            return self._run_inline(tasks)

        results_q = self._ctx.Queue()
        pending = list(tasks)  # dispatched from the front
        outcomes: dict[str, PoolOutcome] = {}
        workers: list[_Worker] = []
        next_worker_id = 0

        def spawn() -> _Worker:
            nonlocal next_worker_id
            inbox = self._ctx.Queue(maxsize=1)
            proc = self._ctx.Process(
                target=_worker_main,
                args=(self.fn, inbox, results_q, next_worker_id),
                daemon=True,
            )
            next_worker_id += 1
            proc.start()
            worker = _Worker(process=proc, inbox=inbox)
            workers.append(worker)
            return worker

        def dispatch(worker: _Worker, task: PoolTask, attempt: int) -> None:
            worker.current = task
            worker.attempt = attempt
            worker.started_at = time.monotonic()
            worker.inbox.put((task.task_id, task.payload, attempt))
            EXEC_QUEUE_DEPTH.set(len(pending))

        def fail_or_retry(worker: _Worker, kind: str) -> None:
            """A worker died or overran: retry its task once, then fail."""
            task, attempt = worker.current, worker.attempt
            worker.current = None
            if attempt <= self.retries:
                EXEC_TASKS.labels("retry").inc()
                replacement = spawn()
                EXEC_WORKER_RESTARTS.inc()
                dispatch(replacement, task, attempt + 1)
            else:
                EXEC_TASKS.labels(kind).inc()
                outcomes[task.task_id] = PoolOutcome(
                    task.task_id, False, attempts=attempt,
                    error=f"worker {kind} after {attempt} attempt(s)")

        try:
            for _ in range(min(self.jobs, len(tasks))):
                spawn()
            for worker in workers:
                if pending:
                    dispatch(worker, pending.pop(0), attempt=1)

            while len(outcomes) < len(tasks):
                try:
                    (wid, task_id, attempt, ok, value, error,
                     wall_s) = results_q.get(timeout=0.05)
                except queue_module.Empty:
                    pass
                else:
                    for worker in workers:
                        if (worker.current is not None
                                and worker.current.task_id == task_id):
                            worker.current = None
                            break
                    outcomes[task_id] = PoolOutcome(
                        task_id, ok, value=value, error=error,
                        wall_s=wall_s, attempts=attempt)
                    EXEC_TASKS.labels("ok" if ok else "error").inc()

                if not workers and pending:
                    # Every worker died at once: restaff before stalling.
                    dispatch(spawn(), pending.pop(0), attempt=1)

                now = time.monotonic()
                for worker in list(workers):
                    if worker.current is None:
                        if pending and worker.process.is_alive():
                            dispatch(worker, pending.pop(0), attempt=1)
                        continue
                    if not worker.process.is_alive():
                        workers.remove(worker)
                        fail_or_retry(worker, "crash")
                    elif now - worker.started_at > self.timeout_s:
                        worker.process.terminate()
                        worker.process.join(timeout=5.0)
                        workers.remove(worker)
                        fail_or_retry(worker, "timeout")
        finally:
            EXEC_QUEUE_DEPTH.set(0)
            for worker in workers:
                if worker.process.is_alive():
                    try:
                        worker.inbox.put_nowait(None)
                    except queue_module.Full:
                        worker.process.terminate()
            for worker in workers:
                worker.process.join(timeout=5.0)
                if worker.process.is_alive():
                    worker.process.terminate()
                    worker.process.join(timeout=5.0)
            results_q.close()

        return outcomes
