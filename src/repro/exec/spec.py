"""Experiment specs and the rendered report block they produce.

An :class:`ExperimentSpec` is the declarative unit the engine schedules:
which module runs, with which (frozen dataclass) config, under which
deterministic seed, and which source modules its results depend on.
Execution is content-addressed — ``(exp_id, canonical config, source
fingerprint)`` names a result — so the spec deliberately carries no
callables: workers re-import ``spec.module`` and use the module-level
contract instead, which keeps specs trivially picklable across
``multiprocessing`` boundaries.

Module contract (duck-typed, checked by the engine):

* ``run(**config)`` + ``render(result) -> ExperimentReport`` — the
  common single-part case; the worker runs both and ships the rendered
  block as a JSON payload.
* ``run_part(part, config) -> dict`` + ``render_block(parts) ->
  ExperimentReport`` — multi-part experiments (``spec.parts``) whose
  independent shards parallelize individually and are merged into one
  block after the fact (Table III runs its three node scales this way).

Payloads must be JSON-serializable: that is what makes results
cacheable, diffable, and byte-stable across worker counts.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field

from repro.errors import ConfigError

#: Source modules every experiment depends on regardless of platform:
#: the simulation substrate, the device models, the analysis helpers,
#: and this rendering contract itself.
BASE_SOURCES = (
    "repro.sim",
    "repro.devices",
    "repro.analysis",
    "repro.exec.spec",
)


@dataclass(frozen=True)
class ExperimentReport:
    """One experiment's paper-vs-measured block."""

    exp_id: str
    title: str
    bench: str
    rows: list[tuple[str, str, str]]  # (quantity, paper, measured)
    notes: str = ""

    def to_dict(self) -> dict:
        """JSON-safe payload; inverse of :meth:`from_dict`."""
        return {
            "exp_id": self.exp_id,
            "title": self.title,
            "bench": self.bench,
            "rows": [list(row) for row in self.rows],
            "notes": self.notes,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> ExperimentReport:
        return cls(
            exp_id=payload["exp_id"],
            title=payload["title"],
            bench=payload["bench"],
            rows=[tuple(row) for row in payload["rows"]],
            notes=payload.get("notes", ""),
        )


@dataclass(frozen=True)
class ExperimentSpec:
    """Declarative description of one registered experiment.

    Parameters
    ----------
    exp_id:
        Registry key (``"fig1"``, ``"table3"``, …) — also the CLI name.
    title:
        Human-readable one-liner for listings.
    module:
        Import path of the experiment module implementing the contract.
    config:
        Frozen dataclass of ``run()`` keyword arguments.  Canonicalized
        into the cache key, so any field change invalidates results.
    seed:
        Deterministic per-experiment seed; workers fold it with the
        part name so results never depend on worker assignment.
    sources:
        Modules/packages whose source text fingerprints the result.
        Editing any of them invalidates the cache entry.
    parts:
        Independent shards of the experiment.  Each part is one work
        unit (one task, one cache entry); most experiments have one.
    cost_hint_s:
        Rough serial cost, used for longest-first dispatch so the
        slowest shard starts first and bounds the parallel makespan.
    """

    exp_id: str
    title: str
    module: str
    config: object
    seed: int
    sources: tuple[str, ...]
    parts: tuple[str, ...] = ("all",)
    cost_hint_s: float = 0.01

    def __post_init__(self):
        if not self.parts:
            raise ConfigError(f"spec {self.exp_id!r} declares no parts")
        if self.config is not None and not dataclasses.is_dataclass(self.config):
            raise ConfigError(
                f"spec {self.exp_id!r} config must be a dataclass, "
                f"got {type(self.config).__name__}"
            )

    def all_sources(self) -> tuple[str, ...]:
        """Declared sources plus the experiment module itself."""
        names = dict.fromkeys((self.module, *BASE_SOURCES, *self.sources))
        return tuple(names)


@dataclass(frozen=True)
class ExecTask:
    """One schedulable unit: a (spec, part) pair."""

    exp_id: str
    part: str
    cost_hint_s: float = 0.01

    @property
    def task_id(self) -> str:
        return f"{self.exp_id}:{self.part}"


@dataclass
class TaskOutcome:
    """What came back for one task — from the cache or a worker."""

    task_id: str
    payload: dict | None = None
    cached: bool = False
    wall_s: float = 0.0
    attempts: int = 1
    error: str = ""
    digest: str = ""

    @property
    def ok(self) -> bool:
        return self.payload is not None


def canonical_config(config: object) -> str:
    """Stable JSON text of a config dataclass (``{}`` for ``None``).

    Key order is sorted and separators are fixed, so the same logical
    config always digests identically.
    """
    if config is None:
        return "{}"
    if not dataclasses.is_dataclass(config):
        raise ConfigError(
            f"config must be a dataclass or None, got {type(config).__name__}"
        )
    return json.dumps(dataclasses.asdict(config), sort_keys=True,
                      separators=(",", ":"))


def config_kwargs(config: object) -> dict:
    """``run(**kwargs)`` view of a config dataclass."""
    if config is None:
        return {}
    return {f.name: getattr(config, f.name)
            for f in dataclasses.fields(config)}


# Re-exported for dataclass definitions in experiment modules.
__all__ = [
    "BASE_SOURCES",
    "ExperimentReport",
    "ExperimentSpec",
    "ExecTask",
    "TaskOutcome",
    "canonical_config",
    "config_kwargs",
    "dataclass",
    "field",
]
