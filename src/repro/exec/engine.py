"""Cache-then-pool orchestration of registered experiments.

``Engine.run`` takes the registry's specs, expands them into (spec,
part) tasks, serves whatever the content-addressed cache already holds,
fans the misses out over the worker pool (longest first, so the slowest
shard bounds the makespan), publishes fresh results back to the cache,
and assembles the per-experiment report blocks in registry order — so
the rendered report is byte-identical whatever the worker count or
cache state.
"""

from __future__ import annotations

import hashlib
import importlib
import random
import time
from dataclasses import dataclass, field

from repro.errors import ExperimentExecutionError
from repro.exec.cache import ResultCache, cache_key, payload_digest
from repro.exec.fingerprint import source_fingerprint
from repro.exec.pool import PoolTask, WorkerPool
from repro.exec.spec import (
    ExecTask,
    ExperimentReport,
    ExperimentSpec,
    TaskOutcome,
    config_kwargs,
)
from repro.obs.instruments import EXEC_CACHE, EXEC_TASK_SECONDS


def _seed_rngs(spec: ExperimentSpec, part: str) -> None:
    """Deterministic per-task seeding, independent of worker identity.

    Experiments draw their randomness from explicit ``RngRegistry``
    seeds already; this pins the *ambient* generators so any incidental
    use is reproducible too.
    """
    digest = hashlib.sha256(
        f"{spec.exp_id}:{part}:{spec.seed}".encode()).digest()
    random.seed(digest)
    try:
        import numpy

        numpy.random.seed(int.from_bytes(digest[:4], "big"))
    except ImportError:  # pragma: no cover - numpy is a hard dep
        pass


def execute_task(item: tuple[str, str]) -> dict:
    """Run one (exp_id, part) task to a JSON payload.

    Module-level so forked pool workers resolve it without pickling
    closures; the registry import inside the worker is free under fork.
    """
    # Imported lazily: the registry imports the experiment modules,
    # which import repro.exec.spec — a cycle if resolved at import time.
    from repro.exec import registry

    exp_id, part = item
    spec = registry.get_spec(exp_id)
    module = importlib.import_module(spec.module)
    _seed_rngs(spec, part)
    if hasattr(module, "run_part"):
        payload = module.run_part(part, spec.config)
    else:
        result = module.run(**config_kwargs(spec.config))
        payload = module.render(result).to_dict()
    if not isinstance(payload, dict):
        raise ExperimentExecutionError(
            f"{spec.module}.run_part must return a dict payload, "
            f"got {type(payload).__name__}"
        )
    return payload


@dataclass
class EngineStats:
    """Bookkeeping from the last ``Engine.run`` call."""

    wall_s: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0
    executed: int = 0
    retries: int = 0
    #: task id -> canonical digest of its payload (identical across
    #: worker counts and cache states — asserted by the determinism
    #: tests).
    digests: dict[str, str] = field(default_factory=dict)
    outcomes: dict[str, TaskOutcome] = field(default_factory=dict)


class Engine:
    """Run registered experiments through cache and worker pool.

    Parameters
    ----------
    jobs:
        Worker processes for cache misses.  ``1`` executes inline in
        this process (identical results, no pool).
    cache:
        ``False`` disables both cache reads and writes — every task
        recomputes (the cold path, used by benches).
    cache_root:
        Cache directory; defaults to ``$REPRO_CACHE_DIR`` or
        ``.repro-cache``.
    timeout_s / retries:
        Per-task budget and crash/timeout retry count (see the pool).
    """

    def __init__(self, jobs: int = 1, cache: bool = True,
                 cache_root: str | None = None, timeout_s: float = 300.0,
                 retries: int = 1):
        if jobs < 1:
            raise ExperimentExecutionError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.cache_enabled = cache
        self.cache = ResultCache(cache_root)
        self.timeout_s = timeout_s
        self.retries = retries
        self.stats = EngineStats()

    # -- public API ------------------------------------------------------------

    def run(self, exp_ids: list[str] | None = None) -> dict[str, ExperimentReport]:
        """Execute the named experiments (default: all registered).

        Returns ``exp_id -> ExperimentReport`` in registry order.
        Raises :class:`ExperimentExecutionError` naming every failed
        task if any part could not be computed.
        """
        from repro.exec import registry

        t0 = time.perf_counter()
        specs = registry.specs_for(exp_ids)
        stats = EngineStats()

        fingerprints = {
            spec.exp_id: source_fingerprint(spec.all_sources())
            for spec in specs
        }
        keys: dict[str, str] = {}
        outcomes: dict[str, TaskOutcome] = {}
        misses: list[ExecTask] = []
        for spec in specs:
            for part in spec.parts:
                task = ExecTask(spec.exp_id, part, spec.cost_hint_s)
                keys[task.task_id] = cache_key(
                    spec, part, fingerprints[spec.exp_id])
                payload = (self.cache.load(keys[task.task_id])
                           if self.cache_enabled else None)
                if payload is not None:
                    EXEC_CACHE.labels("hit").inc()
                    stats.cache_hits += 1
                    outcomes[task.task_id] = TaskOutcome(
                        task.task_id, payload=payload, cached=True)
                else:
                    if self.cache_enabled:
                        EXEC_CACHE.labels("miss").inc()
                    stats.cache_misses += 1
                    misses.append(task)

        # Longest first: the slowest shard starts immediately and sets
        # the lower bound on the parallel makespan.
        misses.sort(key=lambda t: (-t.cost_hint_s, t.task_id))
        outcomes.update(self._execute(misses, stats))

        failed = [o for o in outcomes.values() if not o.ok]
        if failed:
            detail = "; ".join(f"{o.task_id}: {o.error}" for o in failed)
            stats.outcomes = outcomes
            self.stats = stats
            raise ExperimentExecutionError(
                f"{len(failed)} experiment task(s) failed: {detail}")

        if self.cache_enabled:
            for task in misses:
                outcome = outcomes[task.task_id]
                self.cache.store(keys[task.task_id], task.exp_id, task.part,
                                 outcome.payload)

        for outcome in outcomes.values():
            outcome.digest = payload_digest(outcome.payload)
            stats.digests[outcome.task_id] = outcome.digest
        stats.outcomes = outcomes
        stats.executed = len(misses)
        stats.retries = sum(max(0, o.attempts - 1) for o in outcomes.values())
        stats.wall_s = time.perf_counter() - t0
        self.stats = stats

        blocks: dict[str, ExperimentReport] = {}
        for spec in specs:
            parts = {part: outcomes[f"{spec.exp_id}:{part}"].payload
                     for part in spec.parts}
            blocks[spec.exp_id] = self._assemble(spec, parts)
        return blocks

    def run_one(self, exp_id: str) -> ExperimentReport:
        return self.run([exp_id])[exp_id]

    # -- internals -------------------------------------------------------------

    def _execute(self, tasks: list[ExecTask],
                 stats: EngineStats) -> dict[str, TaskOutcome]:
        if not tasks:
            return {}
        pool = WorkerPool(execute_task, jobs=self.jobs,
                          timeout_s=self.timeout_s, retries=self.retries)
        pool_tasks = [PoolTask(t.task_id, (t.exp_id, t.part)) for t in tasks]
        raw = pool.run(pool_tasks)
        outcomes: dict[str, TaskOutcome] = {}
        for task in tasks:
            result = raw[task.task_id]
            EXEC_TASK_SECONDS.labels(task.exp_id).observe(result.wall_s)
            outcomes[task.task_id] = TaskOutcome(
                task.task_id,
                payload=result.value if result.ok else None,
                cached=False, wall_s=result.wall_s,
                attempts=result.attempts, error=result.error)
        return outcomes

    @staticmethod
    def _assemble(spec: ExperimentSpec,
                  parts: dict[str, dict]) -> ExperimentReport:
        module = importlib.import_module(spec.module)
        if hasattr(module, "render_block"):
            return module.render_block(parts)
        return ExperimentReport.from_dict(parts[spec.parts[0]])
