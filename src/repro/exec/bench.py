"""Wall-clock benches of the experiment engine itself.

Three runs of the full report through :class:`repro.exec.Engine`, into
a throwaway cache directory: cold serial (the pre-engine baseline),
cold parallel (every task recomputed through the worker pool), and warm
(every task served from the content-addressed cache).  The rendered
markdown must be byte-identical across all three — the engine's core
contract — and ``python -m repro exec bench`` writes the measured walls
to ``BENCH_exec.json`` so future PRs have a trajectory to regress
against.

Parallel speedup here is bounded by the host: the file records ``cpus``
(``os.cpu_count()``) next to the walls so a single-core CI runner's
numbers are not mistaken for a scheduling regression.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
import time

DEFAULT_JOBS = 8


def run(json_path: str | None = "BENCH_exec.json",
        jobs: int = DEFAULT_JOBS) -> dict:
    """Time cold-serial, cold-parallel, and warm report generation.

    Returns ``{"runs": {name: {wall_s, ...}}, "byte_identical": bool,
    "cpus": int, "tasks": int}`` and, unless ``json_path`` is None,
    writes the trajectory file.
    """
    from repro.exec.engine import Engine
    from repro.experiments import report

    cache_root = tempfile.mkdtemp(prefix="repro-exec-bench-")
    try:
        def timed(run_jobs: int, cache: bool) -> tuple[float, str]:
            t0 = time.perf_counter()
            md = report.generate_markdown(jobs=run_jobs, cache=cache,
                                          cache_root=cache_root)
            return time.perf_counter() - t0, md

        # Cold serial, no cache involvement: the pre-engine baseline.
        wall_serial, md_serial = timed(1, cache=False)
        # Cold parallel: empty cache, every task through the pool.
        wall_cold, md_cold = timed(jobs, cache=True)
        # Warm: same cache, every task a hit.
        wall_warm, md_warm = timed(jobs, cache=True)

        engine = Engine(jobs=1, cache=True, cache_root=cache_root)
        engine.run()
        if engine.stats.cache_misses:
            raise AssertionError(
                f"warm engine still missed {engine.stats.cache_misses} "
                f"task(s)")
        tasks = engine.stats.cache_hits
    finally:
        shutil.rmtree(cache_root, ignore_errors=True)

    byte_identical = md_serial == md_cold == md_warm
    results = {
        "runs": {
            "cold_serial": {"wall_s": wall_serial, "jobs": 1},
            f"cold_parallel_jobs{jobs}": {
                "wall_s": wall_cold, "jobs": jobs,
                "speedup_vs_serial": wall_serial / wall_cold,
            },
            "warm_cache": {
                "wall_s": wall_warm, "jobs": jobs,
                "speedup_vs_cold_serial": wall_serial / wall_warm,
            },
        },
        "byte_identical": byte_identical,
        "cpus": os.cpu_count() or 1,
        "tasks": tasks,
    }
    if json_path is not None:
        trajectory = {
            "byte_identical": byte_identical,
            "cpus": results["cpus"],
            "tasks": tasks,
            "runs": {
                name: {k: round(v, 6) if isinstance(v, float) else v
                       for k, v in r.items()}
                for name, r in results["runs"].items()
            },
        }
        with open(json_path, "w", encoding="utf-8") as fh:
            json.dump(trajectory, fh, indent=2, sort_keys=True)
            fh.write("\n")
    return results
