"""The experiment registry: specs collected from ``repro.experiments``.

Each experiment module declares its own ``SPEC`` (the module knows its
config, seed, and source dependencies); this module gathers them into
the ordered table the engine, the report generator, and the CLI all
share.  Registry order is report order — EXPERIMENTS.md's section
sequence comes from here, never from task completion order.
"""

from __future__ import annotations

from repro.errors import ExperimentExecutionError
from repro.exec.spec import ExperimentSpec
from repro.experiments import ALL_EXPERIMENTS

ALL_SPECS: dict[str, ExperimentSpec] = {
    name: module.SPEC for name, module in ALL_EXPERIMENTS.items()
}

#: Specs registered at runtime (scenario packs compile into these).
#: The worker pool forks, so a spec registered in the parent before
#: ``Engine.run`` is visible inside every worker; ``jobs=1`` resolves
#: it inline.  Dynamic specs never join the default report order —
#: ``specs_for(None)`` still means "the paper's experiments".
DYNAMIC_SPECS: dict[str, ExperimentSpec] = {}


def register_spec(spec: ExperimentSpec) -> ExperimentSpec:
    """Register (or idempotently re-register) one dynamic spec.

    A different spec under an experiment id taken by the static
    registry — or by a *different* dynamic spec — is an error: silent
    shadowing would let a pack hijack a paper experiment's cache line.
    """
    existing = ALL_SPECS.get(spec.exp_id, DYNAMIC_SPECS.get(spec.exp_id))
    if existing is not None and existing != spec:
        raise ExperimentExecutionError(
            f"experiment id {spec.exp_id!r} is already registered "
            f"with a different spec")
    DYNAMIC_SPECS[spec.exp_id] = spec
    return spec


def get_spec(exp_id: str) -> ExperimentSpec:
    spec = ALL_SPECS.get(exp_id, DYNAMIC_SPECS.get(exp_id))
    if spec is None:
        raise ExperimentExecutionError(
            f"unknown experiment {exp_id!r}; "
            f"registered: {', '.join(ALL_SPECS)}")
    return spec


def specs_for(exp_ids: list[str] | None = None) -> list[ExperimentSpec]:
    """Specs in registry order; ``None`` selects every experiment."""
    if exp_ids is None:
        return list(ALL_SPECS.values())
    return [get_spec(exp_id) for exp_id in exp_ids]
