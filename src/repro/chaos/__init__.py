"""``repro.chaos`` — deterministic fault injection at the channel seam.

The paper's vendor mechanisms fail in vendor-specific ways: IPMB
exchanges are checksum-guarded bus round trips that drop, msr preads
cross a chardev that EINTRs, SCIF is a network transport that times
out, NVML throws transient ``NVML_ERROR_UNKNOWN``, sysfs files vanish
on hot-unplug.  This package models all of that **once**, at the
:class:`~repro.mech.channel.AccessChannel` crossing every mechanism
already goes through:

* :class:`~repro.chaos.faults.FaultPlan` / :class:`~repro.chaos.faults.
  FaultRule` — seeded, per-mechanism fault distributions with optional
  time windows; same seed, same fault timeline, bit for bit;
* :class:`~repro.chaos.retry.RetryPolicy` — bounded retries,
  exponential backoff with deterministic jitter, per-mechanism timeout
  budgets;
* :class:`~repro.chaos.retry.CircuitBreaker` — consecutive failures
  open the breaker and the device reads sensor-dark
  (:data:`~repro.chaos.injector.DARK_READING`) until a half-open probe
  succeeds;
* :mod:`~repro.chaos.scenarios` — the named catalog (``bmc_dark``,
  ``daemon_wedge``, ``bus_noise``) behind ``repro chaos run``.

``scenarios`` members are exported lazily (PEP 562): the scenario
runner stands up testbeds, whose backends import the mechanism layer,
whose channel consults this package — eager import would cycle.

With no plan active the hot path pays one ``is None`` check and the
simulator's outputs are byte-identical to a build without this package.
"""

from __future__ import annotations

from repro.chaos.faults import (
    DEFAULT_FAULT_KINDS,
    FaultEvent,
    FaultPlan,
    FaultRule,
    activate,
    active_plan,
    deactivate,
    default_kind,
)
from repro.chaos.injector import BREAKER_OPEN_KIND, DARK_READING, ChannelInjector
from repro.chaos.retry import (
    DEFAULT_POLICIES,
    CircuitBreaker,
    RetryPolicy,
    default_policy,
)

__all__ = [
    "FaultPlan",
    "FaultRule",
    "FaultEvent",
    "DEFAULT_FAULT_KINDS",
    "default_kind",
    "activate",
    "deactivate",
    "active_plan",
    "RetryPolicy",
    "CircuitBreaker",
    "DEFAULT_POLICIES",
    "default_policy",
    "ChannelInjector",
    "DARK_READING",
    "BREAKER_OPEN_KIND",
    "ChaosScenario",
    "ScenarioResult",
    "SCENARIOS",
    "run_scenario",
]

_SCENARIO_NAMES = {"ChaosScenario", "ScenarioResult", "SCENARIOS",
                   "run_scenario"}


def __getattr__(name: str):
    if name in _SCENARIO_NAMES:
        from repro.chaos import scenarios

        return getattr(scenarios, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
