"""The channel-crossing injector: faults in, dark readings out.

One :class:`ChannelInjector` serves one (mechanism, device label) pair
under one :class:`~repro.chaos.faults.FaultPlan`.  The generic
``Mechanism.read_block`` asks its :class:`~repro.mech.channel
.AccessChannel` for the active injector and, per collected tick,
applies the verdict:

* **delivered** — the crossing succeeded (possibly after retries);
  the sensor's value passes through untouched;
* **dark** — retries or the timeout budget ran out, or the circuit
  breaker failed fast; every field of that row becomes
  :data:`DARK_READING` (NaN) and
  ``repro_collector_errors_total{mechanism,kind}`` counts the failure;
* **stale** — the daemon is wedged (paper §II): the exchange answers
  promptly, but with the last bytes the daemon produced before it
  wedged.  The mechanism serves the previous *delivered* values — no
  retries fire (nothing looks broken at the wire), the breaker counts
  a success (bytes arrived), and
  ``repro_chaos_stale_reads_total{mechanism}`` counts the lie.

Injection happens strictly **after** the sensor source has collected
the grid, so a retried crossing re-issues the *exchange*, never the
counter read underneath — stateful sources advance exactly once per
tick and retries cannot double-count energy across RAPL wrap
boundaries, by construction.

Decisions are drawn per channel *exchange* (``queries_per_read`` of
them per tick) from counter-based hashes, so a tick's fault probability
honors how many bus round trips it really makes, and block sampling
draws bit-identically to scalar ticking.
"""

from __future__ import annotations

import numpy as np

from repro.chaos.faults import FaultEvent, FaultPlan, FaultRule
from repro.chaos.retry import CLOSED, CircuitBreaker
from repro.obs.instruments import (
    CHAOS_DARK_READS,
    CHAOS_FAULTS,
    CHAOS_STALE_READS,
    COLLECTOR_ERRORS,
    RETRY_ATTEMPTS,
    RETRY_BACKOFF_SECONDS,
    RETRY_EXHAUSTED,
)
from repro.sim.hashrand import hash_uniform

#: What a consumer sees for a crossing that never delivered: the
#: sensor is dark, not zero — NaN keeps dark rows unmistakable in
#: output files and trivially filterable in analysis.
DARK_READING = float("nan")

#: The error ``kind`` recorded when an open breaker fails fast (the
#: originating fault kind already counted when the breaker opened).
BREAKER_OPEN_KIND = "sensor_dark"

#: The fault kind whose crossings deliver *stale* bytes instead of
#: going dark: a wedged daemon answers promptly with its last output.
WEDGED_KIND = "daemon_wedged"

#: Per-crossing verdicts (internal to the injector/mechanism seam).
_DELIVERED, _DARK, _STALE = 0, 1, 2


class ChannelInjector:
    """Per-(mechanism, device) fault machinery, stateful only via its
    plan (exchange counter, retry counter, jitter stream, breaker)."""

    def __init__(self, plan: FaultPlan, channel, mechanism: str, label: str):
        self.plan = plan
        self.mechanism = mechanism
        self.label = label
        self.queries_per_tick = 1
        self.rules: tuple[FaultRule, ...] = plan.rules_for(mechanism)
        self.policy = plan.policy_for(mechanism)
        self.breaker = CircuitBreaker(
            mechanism, failure_threshold=plan.breaker_threshold,
            cooldown_crossings=plan.breaker_cooldown,
        )
        self._retry_seed = plan.retry_seed(mechanism, label)
        self._jitter = plan.rng.stream(f"jitter.{mechanism}.{label}")
        self._exchange_counter = 0
        self._retry_counter = 0
        self._errors = COLLECTOR_ERRORS
        self._rule_seeds = [plan.rule_seed(rule, label) for rule in self.rules]
        #: Last post-quantization value delivered per field, carried
        #: across blocks so a wedged daemon can serve stale rows even
        #: when the wedge spans a chunk boundary.
        self.last_delivered: dict[str, float] = {}

    def bind(self, queries_per_tick: int) -> "ChannelInjector":
        self.queries_per_tick = queries_per_tick
        return self

    # -- the crossing --------------------------------------------------------

    def cross_block(self, times: np.ndarray) -> np.ndarray:
        """Decide every crossing of one collected grid.

        Returns a boolean mask over ``times``: True rows went dark.
        Consumers that only care about delivery (the streaming probes)
        use this; the mechanism read path wants the full verdicts.
        """
        return self.cross_block_verdicts(times)[0]

    def cross_block_verdicts(
            self, times: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Decide every crossing of one collected grid.

        Returns ``(dark, stale)`` boolean masks over ``times``: dark
        rows never delivered, stale rows delivered wedged (pre-wedge)
        bytes.  Exchange indices advance by ``queries_per_tick`` per
        tick whether or not a draw was needed, so decisions depend only
        on *which* crossing this is — never on breaker state or
        chunking.
        """
        n = times.shape[0]
        q = self.queries_per_tick
        start = self._exchange_counter
        self._exchange_counter += n * q
        dark = np.zeros(n, dtype=bool)
        stale = np.zeros(n, dtype=bool)
        if not self.rules:
            return dark, stale

        # Which tick faults, and with which rule?  Per-exchange
        # Bernoulli draws, reduced to "any exchange of the tick
        # faulted", windowed by the rule's [t_start, t_end).
        fault_rule = np.full(n, -1, dtype=np.int64)
        indices = start + np.arange(n * q, dtype=np.uint64)
        for r, (rule, seed) in enumerate(zip(self.rules, self._rule_seeds)):
            if rule.rate == 0.0:
                continue
            in_window = (times >= rule.t_start) & (times < rule.t_end)
            if not in_window.any():
                continue
            hit = hash_uniform(seed, indices) < rule.rate
            tick_hit = hit.reshape(n, q).any(axis=1) & in_window
            # First matching rule in declaration order wins.
            fault_rule[(fault_rule < 0) & tick_hit] = r

        if (fault_rule < 0).all() and self.breaker.state == CLOSED:
            # A clean block over a closed breaker is n successes: reset
            # the failure streak once (idempotent) and skip the loop.
            self.breaker.record_success()
            return dark, stale
        for i in range(n):
            verdict = self._cross_one(float(times[i]), int(fault_rule[i]))
            dark[i] = verdict == _DARK
            stale[i] = verdict == _STALE
        return dark, stale

    def _cross_one(self, t: float, rule_index: int) -> int:
        """Resolve one tick's crossing; returns its verdict."""
        stats = self.plan.stats
        if not self.breaker.allow():
            # Open breaker: fail fast, no retries, no new fault draw.
            stats.dark += 1
            CHAOS_DARK_READS.labels(self.mechanism).inc()
            self._errors.labels(self.mechanism, BREAKER_OPEN_KIND).inc()
            self.plan.record(FaultEvent(
                t, self.mechanism, self.label, BREAKER_OPEN_KIND,
                attempts=0, outcome="breaker_open",
            ))
            return _DARK
        if rule_index < 0:
            self.breaker.record_success()
            return _DELIVERED

        rule = self.rules[rule_index]
        stats.count_fault(self.mechanism, rule.kind)
        CHAOS_FAULTS.labels(self.mechanism, rule.kind).inc()

        if rule.kind == WEDGED_KIND:
            # The wedge is invisible at the wire: the exchange delivers
            # bytes on time, they're just the daemon's pre-wedge output.
            # No retries (nothing to retry against), the breaker counts
            # a success, and the consumer gets stale-beyond-the-window.
            stats.stale += 1
            CHAOS_STALE_READS.labels(self.mechanism).inc()
            self._errors.labels(self.mechanism, rule.kind).inc()
            self.breaker.record_success()
            self.plan.record(FaultEvent(
                t, self.mechanism, self.label, rule.kind,
                attempts=0, outcome="stale",
            ))
            return _STALE

        attempts = 0
        backoff_total = 0.0
        outcome = "dark"
        policy = self.policy
        while attempts < policy.max_retries:
            attempts += 1
            backoff = policy.backoff_s(attempts, float(self._jitter.random()))
            if backoff_total + backoff > policy.budget_s:
                outcome = "dark_budget"
                break
            backoff_total += backoff
            RETRY_ATTEMPTS.labels(self.mechanism).inc()
            RETRY_BACKOFF_SECONDS.labels(self.mechanism).inc(backoff)
            stats.retries += 1
            stats.backoff_s += backoff
            # The fault persists with probability = its rate.
            u = float(hash_uniform(self._retry_seed, self._retry_counter))
            self._retry_counter += 1
            if u >= rule.rate:
                outcome = "recovered"
                break

        if outcome == "recovered":
            stats.recovered += 1
            self.breaker.record_success()
            self.plan.record(FaultEvent(
                t, self.mechanism, self.label, rule.kind,
                attempts=attempts, outcome=outcome,
            ))
            return _DELIVERED

        stats.dark += 1
        opens_before = self.breaker.opens
        self.breaker.record_failure()
        stats.breaker_opens += self.breaker.opens - opens_before
        RETRY_EXHAUSTED.labels(self.mechanism).inc()
        CHAOS_DARK_READS.labels(self.mechanism).inc()
        self._errors.labels(self.mechanism, rule.kind).inc()
        self.plan.record(FaultEvent(
            t, self.mechanism, self.label, rule.kind,
            attempts=attempts, outcome=outcome,
        ))
        return _DARK


def injector_for(channel, mechanism: str, label: str,
                 queries_per_tick: int) -> ChannelInjector | None:
    """The active plan's injector for one channel crossing, or None
    when chaos is inactive — the single check on the no-fault hot path."""
    from repro.chaos.faults import active_plan

    plan = active_plan()
    if plan is None:
        return None
    return plan.injector(channel, mechanism, label).bind(queries_per_tick)
