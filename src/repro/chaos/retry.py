"""Retry policies and circuit breakers for channel crossings.

A :class:`RetryPolicy` bounds how hard a consumer works to push one
collection through a faulting channel: at most ``max_retries`` re-issued
exchanges, exponential backoff between attempts with deterministic
jitter (drawn from a :mod:`repro.sim.rng` stream owned by the fault
plan), and a per-crossing **timeout budget** — once cumulative backoff
exceeds it, the crossing goes dark even if retries remain, exactly like
a caller's poll deadline expiring.

A :class:`CircuitBreaker` sits above the policy, per (mechanism, device)
pair: after ``failure_threshold`` consecutive dark crossings it opens
and subsequent crossings fail fast (no retries, no backoff — the
"sensor dark" degradation) for ``cooldown_crossings`` crossings, then
half-opens to probe with a single crossing.  Transitions are counted in
``repro_chaos_breaker_transitions_total{mechanism,state}``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.obs.instruments import CHAOS_BREAKER_TRANSITIONS

#: Breaker state names (also the ``state`` label values of the
#: transition counter).
CLOSED, OPEN, HALF_OPEN = "closed", "open", "half_open"


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded, backoff-spaced re-issue of one failed channel exchange.

    ``backoff_s(attempt, jitter_u)`` is ``base * multiplier**(attempt-1)``
    scaled by ``1 + jitter_frac * (2u - 1)`` for a uniform ``u`` in
    [0, 1) — full determinism rests on the caller drawing ``u`` from a
    seeded stream.
    """

    max_retries: int = 3
    backoff_base_s: float = 1e-3
    backoff_multiplier: float = 2.0
    jitter_frac: float = 0.1
    #: Per-crossing deadline on cumulative backoff: exceeded means the
    #: crossing goes dark with retries still unspent.
    budget_s: float = 0.25

    def __post_init__(self):
        if self.max_retries < 0:
            raise ConfigError(
                f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff_base_s < 0.0:
            raise ConfigError(
                f"backoff_base_s must be >= 0, got {self.backoff_base_s}")
        if self.backoff_multiplier < 1.0:
            raise ConfigError(
                f"backoff_multiplier must be >= 1, got "
                f"{self.backoff_multiplier}")
        if not 0.0 <= self.jitter_frac < 1.0:
            raise ConfigError(
                f"jitter_frac must be in [0, 1), got {self.jitter_frac}")
        if self.budget_s <= 0.0:
            raise ConfigError(f"budget_s must be positive, got {self.budget_s}")

    def backoff_s(self, attempt: int, jitter_u: float) -> float:
        """Backoff before retry ``attempt`` (1-based), jittered by
        uniform ``jitter_u`` in [0, 1)."""
        if attempt < 1:
            raise ConfigError(f"attempt is 1-based, got {attempt}")
        base = self.backoff_base_s * self.backoff_multiplier ** (attempt - 1)
        return base * (1.0 + self.jitter_frac * (2.0 * jitter_u - 1.0))


#: Per-mechanism default policies.  Budgets follow each channel's
#: Table II cost: a 22 ms IPMB bus exchange earns a longer deadline
#: than a 0.03 ms MSR pread before the consumer gives up.
DEFAULT_POLICY = RetryPolicy()
DEFAULT_POLICIES: dict[str, RetryPolicy] = {
    "emon": RetryPolicy(max_retries=2, backoff_base_s=2e-3, budget_s=0.1),
    "rapl_msr": RetryPolicy(max_retries=3, backoff_base_s=1e-4, budget_s=0.01),
    "rapl_powercap": RetryPolicy(max_retries=3, backoff_base_s=1e-4,
                                 budget_s=0.01),
    "rapl_perf": RetryPolicy(max_retries=3, backoff_base_s=2e-4,
                             budget_s=0.02),
    "nvml": RetryPolicy(max_retries=3, backoff_base_s=2e-3, budget_s=0.05),
    "sysmgmt": RetryPolicy(max_retries=2, backoff_base_s=15e-3, budget_s=0.1),
    "micras": RetryPolicy(max_retries=3, backoff_base_s=1e-3, budget_s=0.02),
    "ipmb": RetryPolicy(max_retries=2, backoff_base_s=22e-3, budget_s=0.2),
    "micsmc": RetryPolicy(max_retries=2, backoff_base_s=15e-3, budget_s=0.1),
}


def default_policy(mechanism: str) -> RetryPolicy:
    """The retry policy a mechanism gets when the plan names none."""
    return DEFAULT_POLICIES.get(mechanism, DEFAULT_POLICY)


class CircuitBreaker:
    """Consecutive-failure breaker for one (mechanism, device) pair.

    closed --[failure_threshold consecutive dark crossings]--> open
    open   --[cooldown_crossings fast-failed crossings]--> half_open
    half_open --[probe delivered]--> closed
    half_open --[probe dark]--> open (cooldown restarts)
    """

    def __init__(self, mechanism: str, failure_threshold: int = 3,
                 cooldown_crossings: int = 8):
        if failure_threshold < 1:
            raise ConfigError(
                f"failure_threshold must be >= 1, got {failure_threshold}")
        if cooldown_crossings < 1:
            raise ConfigError(
                f"cooldown_crossings must be >= 1, got {cooldown_crossings}")
        self.mechanism = mechanism
        self.failure_threshold = failure_threshold
        self.cooldown_crossings = cooldown_crossings
        self.state = CLOSED
        self.opens = 0
        self._consecutive_failures = 0
        self._cooldown_left = 0

    def _transition(self, state: str) -> None:
        self.state = state
        if state == OPEN:
            self.opens += 1
        CHAOS_BREAKER_TRANSITIONS.labels(self.mechanism, state).inc()

    def allow(self) -> bool:
        """May the next crossing attempt the channel at all?

        ``False`` means fail fast (the open state's dark reading).  An
        open breaker counts down its cooldown here, so "crossings" is
        the cooldown unit — no wall clock is involved.
        """
        if self.state == OPEN:
            self._cooldown_left -= 1
            if self._cooldown_left > 0:
                return False
            self._transition(HALF_OPEN)
        return True

    def record_success(self) -> None:
        self._consecutive_failures = 0
        if self.state == HALF_OPEN:
            self._transition(CLOSED)

    def record_failure(self) -> None:
        self._consecutive_failures += 1
        if self.state == HALF_OPEN or (
                self.state == CLOSED
                and self._consecutive_failures >= self.failure_threshold):
            self._transition(OPEN)
            self._cooldown_left = self.cooldown_crossings
