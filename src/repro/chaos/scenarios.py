"""Named chaos scenarios: composed fault plans run against the fleet.

A scenario is a recipe: which :class:`~repro.chaos.faults.FaultRule`
set to install, over which slice of a fleet-wide MonEQ session.  The
catalog ships the reliability stories the ROADMAP names:

* ``bmc_dark`` — a rack's BMC goes dark mid-sweep: every out-of-band
  IPMB exchange fails from 40 % of the run onward; the circuit breaker
  opens and the ipmb agent reads sensor-dark while the in-band paths
  keep collecting.
* ``daemon_wedge`` — the MICRAS daemon wedges mid-run: pseudo-file
  reads answer promptly but serve the daemon's pre-wedge output (rate
  1.0) from the wedge point on — stale beyond the freshness window.
* ``bus_noise`` — transient IPMB bus noise at a configurable rate for
  the whole run: most faults recover on the first retry, a few go dark.

``run_scenario`` stands the fleet up (:func:`repro.testbeds.fleet_node`),
activates the seeded plan for the session, and returns a
:class:`ScenarioResult` whose :meth:`~ScenarioResult.summary_line` is
byte-stable for a given (scenario, seed) — the CLI smoke test and the
determinism property suite both pin it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.chaos.faults import FaultEvent, FaultPlan, FaultRule
from repro.errors import ChaosError

#: Virtual-time length of a scenario session (the fleet's EMON floor is
#: 0.56 s per tick, so this spans ~21 collection ticks).
DEFAULT_DURATION_S = 12.0
DEFAULT_SEED = 0xC4A05


@dataclass(frozen=True)
class ChaosScenario:
    """One named recipe: fault rules as a function of the run window."""

    name: str
    summary: str
    #: ``rules(duration_s, rate)`` -> the plan's rule tuple.
    rules: Callable[[float, float], tuple[FaultRule, ...]]
    #: Default per-exchange rate where the scenario is rate-shaped.
    default_rate: float = 1.0

    def plan(self, seed: int = DEFAULT_SEED,
             duration_s: float = DEFAULT_DURATION_S,
             rate: float | None = None) -> FaultPlan:
        effective = self.default_rate if rate is None else rate
        return FaultPlan(seed=seed, rules=self.rules(duration_s, effective))


def _bmc_dark_rules(duration_s: float, rate: float) -> tuple[FaultRule, ...]:
    # Mid-sweep: the BMC answers nothing from 40 % of the run onward.
    return (FaultRule("ipmb", rate=rate, kind="bmc_dark",
                      t_start=0.4 * duration_s),)


def _daemon_wedge_rules(duration_s: float, rate: float) -> tuple[FaultRule, ...]:
    return (FaultRule("micras", rate=rate, kind="daemon_wedged",
                      t_start=0.4 * duration_s),)


def _bus_noise_rules(duration_s: float, rate: float) -> tuple[FaultRule, ...]:
    return (FaultRule("ipmb", rate=rate, kind="ipmb_drop"),)


SCENARIOS: dict[str, ChaosScenario] = {
    "bmc_dark": ChaosScenario(
        "bmc_dark",
        "rack BMC goes dark mid-sweep; IPMB breaker opens, rest unharmed",
        _bmc_dark_rules,
    ),
    "daemon_wedge": ChaosScenario(
        "daemon_wedge",
        "MICRAS daemon wedges mid-run; pseudo-file reads serve stale",
        _daemon_wedge_rules,
    ),
    "bus_noise": ChaosScenario(
        "bus_noise",
        "transient IPMB bus noise; retries recover most exchanges",
        _bus_noise_rules,
        default_rate=0.10,
    ),
}


@dataclass
class ScenarioResult:
    """Everything one scenario run produced, determinism-comparable."""

    scenario: str
    seed: int
    duration_s: float
    interval_s: float
    ticks: int
    plan: FaultPlan
    #: Output path -> file content for every agent of the session.
    outputs: dict[str, str]
    #: COLLECTOR_ERRORS deltas over the run, (mechanism, kind) -> count.
    error_deltas: dict[tuple[str, str], int]

    @property
    def timeline(self) -> list[FaultEvent]:
        return self.plan.timeline

    def timeline_lines(self) -> list[str]:
        return self.plan.timeline_lines()

    def summary_line(self) -> str:
        """One stable line: equal seeds render equal bytes."""
        s = self.plan.stats
        return (f"[repro chaos run] scenario={self.scenario} "
                f"seed={self.seed} interval_s={self.interval_s:.3f} "
                f"ticks={self.ticks} faults={s.faults} "
                f"recovered={s.recovered} dark={s.dark} "
                f"retries={s.retries} backoff_s={s.backoff_s:.6f} "
                f"breaker_opens={s.breaker_opens} stale={s.stale}")


def run_scenario(name: str, seed: int = DEFAULT_SEED,
                 duration_s: float = DEFAULT_DURATION_S,
                 rate: float | None = None,
                 plan: FaultPlan | None = None) -> ScenarioResult:
    """Run one catalog scenario over a fleet-wide MonEQ session.

    ``plan=None`` (or a caller-supplied plan — the zero-rate
    byte-identity tests pass their own) is activated for exactly the
    session's extent; the session *completes and finalizes* whatever
    the plan does — faulted crossings degrade to dark readings, they
    never raise.
    """
    from repro import testbeds
    from repro.core.moneq.session import MoneqSession
    from repro.obs.instruments import COLLECTOR_ERRORS

    scenario = SCENARIOS.get(name)
    if scenario is None:
        raise ChaosError(
            f"unknown chaos scenario {name!r}; have {sorted(SCENARIOS)}")
    if plan is None:
        plan = scenario.plan(seed=seed, duration_s=duration_s, rate=rate)

    node, backends = testbeds.fleet_node(seed=seed)
    errors_before = COLLECTOR_ERRORS.samples()
    session = MoneqSession(list(backends.values()), node.events,
                           node_count=1, vfs=node.vfs)
    with plan.active():
        node.events.run_until(node.clock.now + duration_s)
        result = session.finalize()

    error_deltas: dict[tuple[str, str], int] = {}
    for key, value in COLLECTOR_ERRORS.samples().items():
        delta = value - errors_before.get(key, 0.0)
        if delta:
            error_deltas[(key[0], key[1])] = int(delta)
    outputs = {path: node.vfs.read_text(path)
               for path in result.output_paths}
    return ScenarioResult(
        scenario=name, seed=seed, duration_s=duration_s,
        interval_s=session.interval_s, ticks=result.overhead.ticks,
        plan=plan, outputs=outputs, error_deltas=error_deltas,
    )
