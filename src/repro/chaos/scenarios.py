"""Named chaos scenarios: composed fault plans run against the fleet.

A scenario is a recipe: which :class:`~repro.chaos.faults.FaultRule`
set to install, over which slice of a fleet-wide MonEQ session.  Since
the scenario-pack refactor the catalog is **data**: each recipe is a
``kind = "chaos"`` manifest in the repository's ``packs/`` directory
(``bmc_dark.toml``, ``daemon_wedge.toml``, ``bus_noise.toml`` — the
reliability stories the ROADMAP names), and :data:`SCENARIOS` is
derived from those manifests by :func:`repro.packs.catalog.
chaos_scenarios`.  The recipes themselves are unchanged — the rule
tuples a scenario builds are bit-identical to the hand-written
catalog this module used to carry.

``run_scenario`` executes one catalog scenario through the pack
runtime (:func:`repro.packs.runtime.execute_scenario` — the same code
path ``repro pack run`` compiles onto the exec engine), and returns a
:class:`ScenarioResult` whose :meth:`~ScenarioResult.summary_line` is
byte-stable for a given (scenario, seed) — the CLI smoke test and the
determinism property suite both pin it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.chaos.faults import FaultEvent, FaultPlan, FaultRule
from repro.errors import ChaosError

#: Virtual-time length of a scenario session (the fleet's EMON floor is
#: 0.56 s per tick, so this spans ~21 collection ticks).
DEFAULT_DURATION_S = 12.0
DEFAULT_SEED = 0xC4A05


@dataclass(frozen=True)
class ChaosScenario:
    """One named recipe: fault rules as a function of the run window."""

    name: str
    summary: str
    #: ``rules(duration_s, rate)`` -> the plan's rule tuple.
    rules: Callable[[float, float], tuple[FaultRule, ...]]
    #: Default per-exchange rate where the scenario is rate-shaped.
    default_rate: float = 1.0

    def plan(self, seed: int = DEFAULT_SEED,
             duration_s: float = DEFAULT_DURATION_S,
             rate: float | None = None) -> FaultPlan:
        effective = self.default_rate if rate is None else rate
        return FaultPlan(seed=seed, rules=self.rules(duration_s, effective))


def _load_catalog() -> dict[str, ChaosScenario]:
    # Imported here (not at module top) because the catalog imports
    # this module back for the ChaosScenario class; by the time the
    # call runs, the class above is defined.
    from repro.packs.catalog import chaos_scenarios

    return chaos_scenarios()


#: The chaos catalog, derived from the ``kind = "chaos"`` packs.
SCENARIOS: dict[str, ChaosScenario] = _load_catalog()


@dataclass
class ScenarioResult:
    """Everything one scenario run produced, determinism-comparable."""

    scenario: str
    seed: int
    duration_s: float
    interval_s: float
    ticks: int
    plan: FaultPlan
    #: Output path -> file content for every agent of the session.
    outputs: dict[str, str]
    #: COLLECTOR_ERRORS deltas over the run, (mechanism, kind) -> count.
    error_deltas: dict[tuple[str, str], int]

    @property
    def timeline(self) -> list[FaultEvent]:
        return self.plan.timeline

    def timeline_lines(self) -> list[str]:
        return self.plan.timeline_lines()

    def summary_line(self) -> str:
        """One stable line: equal seeds render equal bytes."""
        s = self.plan.stats
        return (f"[repro chaos run] scenario={self.scenario} "
                f"seed={self.seed} interval_s={self.interval_s:.3f} "
                f"ticks={self.ticks} faults={s.faults} "
                f"recovered={s.recovered} dark={s.dark} "
                f"retries={s.retries} backoff_s={s.backoff_s:.6f} "
                f"breaker_opens={s.breaker_opens} stale={s.stale}")


def run_scenario(name: str, seed: int = DEFAULT_SEED,
                 duration_s: float = DEFAULT_DURATION_S,
                 rate: float | None = None,
                 plan: FaultPlan | None = None) -> ScenarioResult:
    """Run one catalog scenario over a fleet-wide MonEQ session.

    ``plan=None`` (or a caller-supplied plan — the zero-rate
    byte-identity tests pass their own) is activated for exactly the
    session's extent; the session *completes and finalizes* whatever
    the plan does — faulted crossings degrade to dark readings, they
    never raise.
    """
    from repro.packs.catalog import chaos_packs
    from repro.packs.runtime import execute_scenario

    scenario = SCENARIOS.get(name)
    if scenario is None:
        raise ChaosError(
            f"unknown chaos scenario {name!r}; have {sorted(SCENARIOS)}")
    if plan is None:
        plan = scenario.plan(seed=seed, duration_s=duration_s, rate=rate)

    spec = chaos_packs()[name]
    run = execute_scenario(spec, seed=seed, duration_s=duration_s,
                           plan=plan)
    return ScenarioResult(
        scenario=name, seed=seed, duration_s=duration_s,
        interval_s=run.interval_s, ticks=run.ticks,
        plan=plan, outputs=run.outputs, error_deltas=run.error_deltas,
    )
