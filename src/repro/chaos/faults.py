"""Seeded fault plans: *what* goes wrong on a channel crossing, and when.

A :class:`FaultPlan` is the deterministic heart of ``repro.chaos``: a
root seed plus an ordered tuple of :class:`FaultRule` entries, each
naming a mechanism, a fault kind (defaulted to the mechanism's
vendor-specific failure mode — dropped IPMB exchanges, EINTR on msr
preads, SCIF timeouts, transient ``NVML_ERROR_UNKNOWN``, sysfs ENOENT
on hot-unplug), a per-exchange probability, and an optional virtual-time
window.

Every decision is a pure function of ``(plan seed, mechanism, device
label, kind, exchange index)`` via the counter-based hashes in
:mod:`repro.sim.hashrand`, so the same seed replays the same fault
timeline bit for bit, block sampling decides identically to scalar
ticking (indices, not generator state), and a zero-rate plan touches
nothing.  All *mutable* chaos state — exchange counters, retry draws,
jitter streams, circuit breakers, the fault timeline — lives on the
plan, never on the mechanism, so mechanisms stay reusable across plans
and a fresh plan always starts from a clean slate.

One plan may be **active** per process (:func:`activate` /
:func:`deactivate`, or ``with plan.active(): ...``); the access-channel
seam consults it on every crossing and does nothing at all when no plan
is installed.
"""

from __future__ import annotations

import math
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.errors import ChaosError, ConfigError
from repro.sim.rng import RngRegistry, derive_seed

#: The vendor-specific failure mode each mechanism's channel exhibits —
#: what a rule injects when it names no explicit kind, and what the
#: ``kind`` label of ``repro_collector_errors_total`` carries.
DEFAULT_FAULT_KINDS: dict[str, str] = {
    "emon": "emon_glitch",         # dropped personality-call response
    "rapl_msr": "eintr",           # interrupted pread on the msr chardev
    "rapl_powercap": "sysfs_enoent",  # energy_uj vanished (hot-unplug)
    "rapl_perf": "eintr",          # interrupted perf_event read syscall
    "nvml": "nvml_unknown",        # transient NVML_ERROR_UNKNOWN
    "sysmgmt": "scif_timeout",     # SCIF round trip timed out
    "micras": "daemon_wedged",     # pseudo-file read hung on the daemon
    "ipmb": "ipmb_drop",           # dropped/checksum-failed bus exchange
    "micsmc": "scif_timeout",      # control-panel poll timed out on SCIF
    "store": "shard_dark",         # a store shard stops answering queries
}


def default_kind(mechanism: str) -> str:
    """The fault kind a rule for ``mechanism`` defaults to."""
    return DEFAULT_FAULT_KINDS.get(mechanism, "io_error")


@dataclass(frozen=True)
class FaultRule:
    """One fault distribution: ``rate`` per channel exchange, on one
    mechanism, optionally only inside [t_start, t_end).

    ``rate`` doubles as the fault's *persistence*: a retry re-draws the
    fault at the same probability, so transient noise (low rate) almost
    always recovers on the first retry while a dead device (rate 1.0)
    never does.
    """

    mechanism: str
    rate: float
    kind: str = ""
    t_start: float = 0.0
    t_end: float = math.inf

    def __post_init__(self):
        if not self.mechanism:
            raise ConfigError("fault rule needs a mechanism name")
        if not 0.0 <= self.rate <= 1.0:
            raise ConfigError(
                f"fault rate must be in [0, 1], got {self.rate}")
        if self.t_end <= self.t_start:
            raise ConfigError(
                f"fault window [{self.t_start}, {self.t_end}) is empty")
        if not self.kind:
            object.__setattr__(self, "kind", default_kind(self.mechanism))

    def applies_at(self, t: float) -> bool:
        return self.t_start <= t < self.t_end


@dataclass(frozen=True)
class FaultEvent:
    """One resolved faulty crossing in the plan's timeline."""

    t: float
    mechanism: str
    label: str
    kind: str
    #: Retry attempts spent on the crossing (0 for a breaker fast-fail).
    attempts: int
    #: ``recovered`` | ``dark`` | ``dark_budget`` | ``breaker_open`` |
    #: ``stale``.
    outcome: str

    def line(self) -> str:
        return (f"t={self.t:.6f} mechanism={self.mechanism} "
                f"label={self.label} kind={self.kind} "
                f"attempts={self.attempts} outcome={self.outcome}")


@dataclass
class PlanStats:
    """Running totals a scenario summary is rendered from."""

    faults: int = 0
    recovered: int = 0
    dark: int = 0
    #: Crossings a wedged daemon answered with pre-wedge bytes.
    stale: int = 0
    retries: int = 0
    backoff_s: float = 0.0
    breaker_opens: int = 0
    faults_by_key: dict[tuple[str, str], int] = field(default_factory=dict)

    def count_fault(self, mechanism: str, kind: str) -> None:
        self.faults += 1
        key = (mechanism, kind)
        self.faults_by_key[key] = self.faults_by_key.get(key, 0) + 1


class FaultPlan:
    """A seeded set of fault rules plus all per-run chaos state.

    Parameters
    ----------
    seed:
        Root seed; every Bernoulli draw, retry draw and backoff jitter
        derives from it, so equal seeds replay equal timelines.
    rules:
        Ordered :class:`FaultRule` entries; for one crossing the first
        rule that fires determines the fault kind.
    policies:
        Optional per-mechanism :class:`~repro.chaos.retry.RetryPolicy`
        overrides (defaults follow each channel's Table II cost).
    breaker_threshold / breaker_cooldown:
        Circuit-breaker tuning shared by every (mechanism, device) pair.
    """

    def __init__(self, seed: int = 0xC4A05,
                 rules: tuple[FaultRule, ...] | list[FaultRule] = (),
                 policies: dict[str, object] | None = None,
                 breaker_threshold: int = 3, breaker_cooldown: int = 8):
        if seed < 0:
            raise ConfigError(f"fault-plan seed must be >= 0, got {seed}")
        self.seed = int(seed)
        self.rules = tuple(rules)
        self.policies = dict(policies) if policies else {}
        self.breaker_threshold = breaker_threshold
        self.breaker_cooldown = breaker_cooldown
        self.rng = RngRegistry(derive_seed(self.seed, "chaos.jitter"))
        self.stats = PlanStats()
        self.timeline: list[FaultEvent] = []
        self._rules_by_mechanism: dict[str, tuple[FaultRule, ...]] = {}
        for rule in self.rules:
            self._rules_by_mechanism.setdefault(rule.mechanism, ())
            self._rules_by_mechanism[rule.mechanism] += (rule,)
        self._injectors: dict[tuple[str, str], object] = {}

    # -- composition ---------------------------------------------------------

    def rules_for(self, mechanism: str) -> tuple[FaultRule, ...]:
        return self._rules_by_mechanism.get(mechanism, ())

    def policy_for(self, mechanism: str):
        from repro.chaos.retry import default_policy

        policy = self.policies.get(mechanism)
        return policy if policy is not None else default_policy(mechanism)

    def rule_seed(self, rule: FaultRule, label: str) -> int:
        """The Bernoulli stream seed for one (rule, device) pair."""
        return derive_seed(
            self.seed,
            f"fault.{rule.mechanism}.{label}.{rule.kind}"
            f".{rule.t_start}.{rule.t_end}",
        )

    def retry_seed(self, mechanism: str, label: str) -> int:
        """The recovery-draw stream seed for one (mechanism, device)."""
        return derive_seed(self.seed, f"retry.{mechanism}.{label}")

    def injector(self, channel, mechanism: str, label: str):
        """The (cached) per-device injector this channel crossing
        consults — all of its state lives on this plan."""
        key = (mechanism, label)
        injector = self._injectors.get(key)
        if injector is None:
            from repro.chaos.injector import ChannelInjector

            injector = ChannelInjector(self, channel, mechanism, label)
            self._injectors[key] = injector
        return injector

    # -- timeline ------------------------------------------------------------

    def record(self, event: FaultEvent) -> None:
        self.timeline.append(event)

    def timeline_lines(self) -> list[str]:
        """Stable text rendering of the fault timeline — what the
        determinism property tests compare byte for byte."""
        return [event.line() for event in self.timeline]

    # -- activation ----------------------------------------------------------

    @contextmanager
    def active(self):
        """``with plan.active():`` — install for the dynamic extent."""
        activate(self)
        try:
            yield self
        finally:
            deactivate(self)


_ACTIVE: FaultPlan | None = None
_ACTIVE_DEPTH = 0


def activate(plan: FaultPlan) -> None:
    """Install ``plan`` as the process's active fault plan.

    Re-activating the *same* plan nests (sessions inside scenarios);
    activating a different plan while one is installed is a programming
    error and raises :class:`~repro.errors.ChaosError`.
    """
    global _ACTIVE, _ACTIVE_DEPTH
    if _ACTIVE is not None and _ACTIVE is not plan:
        raise ChaosError(
            "a different fault plan is already active; deactivate it first")
    _ACTIVE = plan
    _ACTIVE_DEPTH += 1


def deactivate(plan: FaultPlan) -> None:
    """Uninstall one activation of ``plan``."""
    global _ACTIVE, _ACTIVE_DEPTH
    if _ACTIVE is not plan:
        raise ChaosError("fault plan is not the active plan")
    _ACTIVE_DEPTH -= 1
    if _ACTIVE_DEPTH == 0:
        _ACTIVE = None


def active_plan() -> FaultPlan | None:
    """The installed plan, or None — the no-chaos hot path's one check."""
    return _ACTIVE
