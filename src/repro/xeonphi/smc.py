"""System Management Controller (SMC).

The card's management microcontroller: it owns the sensor inventory
(power, temperatures, fan, voltage/current rails, memory) and answers
two masters — the in-band SysMgmt path coming over SCIF, and the
platform BMC over IPMB for the out-of-band path.  Both see the *same*
sensor values at the same instant, which the out-of-band tests verify.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.errors import SensorError
from repro.xeonphi.card import PhiCard

#: Canonical SMC sensor names (the Table I rows the Phi supports).
SMC_SENSORS = (
    "power_w",
    "die_temp_c",
    "intake_temp_c",
    "exhaust_temp_c",
    "gddr_temp_c",
    "fan_rpm",
    "core_voltage_v",
    "core_current_a",
    "memory_used_b",
    "memory_free_b",
    "power_limit_w",
)


class SystemManagementController:
    """SMC for one card: named sensor reads at a virtual time."""

    def __init__(self, card: PhiCard):
        self.card = card
        self._readers: dict[str, Callable[[float], float]] = {
            "power_w": lambda t: float(card.power_gauge.read(t)),
            "die_temp_c": lambda t: float(card.die_temperature_c(t)),
            "intake_temp_c": card.intake_temperature_c,
            "exhaust_temp_c": card.exhaust_temperature_c,
            "gddr_temp_c": lambda t: float(card.die_temperature_c(t)) - 8.0,
            "fan_rpm": lambda t: float(card.fan_speed_rpm(t)),
            "core_voltage_v": card.core_rail_voltage,
            "core_current_a": card.core_rail_current,
            "memory_used_b": lambda t: 512.0 * 1024**2,  # uOS residency
            "memory_free_b": lambda t: float(card.model.gddr_bytes) - 512.0 * 1024**2,
            "power_limit_w": lambda t: card.power_limit_w,
        }

    def set_power_limit(self, watts: float, t: float) -> None:
        """Write the card power cap through the SMC (the set half of the
        Table I 'Get/Set Power Limit' row)."""
        self.card.set_power_limit(watts, t)

    def sensor_names(self) -> list[str]:
        return list(SMC_SENSORS)

    def read_sensor(self, name: str, t: float) -> float:
        """Read one sensor at virtual time ``t``."""
        reader = self._readers.get(name)
        if reader is None:
            raise SensorError(
                f"SMC of {self.card.model.name}: no sensor {name!r}; "
                f"have {sorted(self._readers)}"
            )
        return float(reader(t))

    def read_sensor_block(self, name: str, times: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`read_sensor` over a time grid.

        Sensors whose models take arrays (the ones MonEQ polls) read in
        one shot, elementwise identical to the scalar loop; the rest
        fall back to looping.
        """
        times = np.asarray(times, dtype=np.float64)
        card = self.card
        if name == "power_w":
            return np.asarray(card.power_gauge.read(times), dtype=np.float64)
        if name == "die_temp_c":
            return np.asarray(card.die_temperature_c(times), dtype=np.float64)
        if name == "gddr_temp_c":
            return np.asarray(card.die_temperature_c(times), dtype=np.float64) - 8.0
        if name == "exhaust_temp_c":
            intake = card.intake_temperature_c(0.0)
            die = np.asarray(card.die_temperature_c(times), dtype=np.float64)
            return intake + 0.55 * (die - intake)
        return np.array([self.read_sensor(name, float(t)) for t in times])

    def read_all(self, t: float) -> dict[str, float]:
        """Snapshot of every sensor at ``t`` (one SMC scan)."""
        return {name: self.read_sensor(name, t) for name in SMC_SENSORS}
