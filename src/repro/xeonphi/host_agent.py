"""Host-side MICRAS agent.

"On the host platform this daemon allows for the configuration of the
device, logging of errors, and other common administrative utilities."
(paper §II-D)

The agent models those three jobs: a device-configuration store with
validated knobs (ECC, turbo, core-frequency governor), a RAS error log
fed by the card (machine-check style records with severities), and
admin queries (uptime, firmware versions).  It talks to its card over
the same SCIF network as everything else.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.xeonphi.card import PhiCard
from repro.xeonphi.scif import ScifNetwork

#: Well-known port of the host-side RAS agent (Figure 6's "Host RAS
#: Agent" listens host-side; the card connects up to it).
SCIF_RAS_PORT = 100

#: Valid configuration knobs and their allowed values.
CONFIG_KNOBS: dict[str, tuple] = {
    "ecc": ("enabled", "disabled"),
    "turbo": ("enabled", "disabled"),
    "governor": ("performance", "powersave", "ondemand"),
}

SEVERITIES = ("info", "corrected", "uncorrected", "fatal")


@dataclass(frozen=True)
class RasRecord:
    """One RAS (reliability/availability/serviceability) event."""

    timestamp: float
    severity: str
    source: str
    message: str


@dataclass
class DeviceConfig:
    """Validated per-card configuration."""

    values: dict[str, str] = field(default_factory=lambda: {
        "ecc": "enabled", "turbo": "disabled", "governor": "performance",
    })

    def set(self, knob: str, value: str) -> None:
        allowed = CONFIG_KNOBS.get(knob)
        if allowed is None:
            raise ConfigError(f"unknown config knob {knob!r}; have {sorted(CONFIG_KNOBS)}")
        if value not in allowed:
            raise ConfigError(f"{knob!r} must be one of {allowed}, got {value!r}")
        self.values[knob] = value

    def get(self, knob: str) -> str:
        if knob not in CONFIG_KNOBS:
            raise ConfigError(f"unknown config knob {knob!r}")
        return self.values[knob]


class HostMicrasAgent:
    """The host half of MICRAS for one card."""

    def __init__(self, network: ScifNetwork, card: PhiCard,
                 max_log_records: int = 1024):
        if max_log_records <= 0:
            raise ConfigError("log capacity must be positive")
        self.network = network
        self.card = card
        self.config = DeviceConfig()
        self.max_log_records = max_log_records
        self._log: list[RasRecord] = []
        self._dropped = 0
        # The host listens; the card-side monitoring thread connects.
        self._listener = network.listen(0, SCIF_RAS_PORT + card.mic_index)
        self._card_endpoint = network.connect(
            card.mic_index + 1, 0, SCIF_RAS_PORT + card.mic_index
        )
        self.boot_time = network.clock.now

    # -- configuration -----------------------------------------------------

    def set_config(self, knob: str, value: str) -> None:
        """Configure the device; takes one SCIF round trip."""
        self.config.set(knob, value)  # validate before touching the wire
        request = json.dumps({"op": "config", knob: value}).encode()
        self._card_endpoint.send(request)
        self._listener.recv()

    def get_config(self, knob: str) -> str:
        return self.config.get(knob)

    # -- RAS log ------------------------------------------------------------

    def card_reports_error(self, severity: str, source: str, message: str) -> RasRecord:
        """Card-side event delivered upstream (MCA handler -> host RAS
        agent in Figure 6)."""
        if severity not in SEVERITIES:
            raise ConfigError(f"severity must be one of {SEVERITIES}, got {severity!r}")
        payload = json.dumps({"severity": severity, "source": source,
                              "message": message}).encode()
        self._card_endpoint.send(payload)
        raw = json.loads(self._listener.recv())
        record = RasRecord(
            timestamp=self.network.clock.now,
            severity=raw["severity"], source=raw["source"], message=raw["message"],
        )
        if len(self._log) >= self.max_log_records:
            # Ring semantics: oldest records fall off, counted.
            self._log.pop(0)
            self._dropped += 1
        self._log.append(record)
        return record

    def log(self, min_severity: str = "info") -> list[RasRecord]:
        """Records at or above a severity."""
        if min_severity not in SEVERITIES:
            raise ConfigError(f"unknown severity {min_severity!r}")
        floor = SEVERITIES.index(min_severity)
        return [r for r in self._log if SEVERITIES.index(r.severity) >= floor]

    @property
    def dropped_records(self) -> int:
        return self._dropped

    # -- admin utilities --------------------------------------------------------

    def uptime_s(self) -> float:
        return self.network.clock.now - self.boot_time

    def status(self) -> dict[str, object]:
        """The 'control panel' summary blob."""
        t = self.network.clock.now
        return {
            "card": self.card.model.name,
            "mic_index": self.card.mic_index,
            "uptime_s": self.uptime_s(),
            "config": dict(self.config.values),
            "power_w": round(float(self.card.true_power(t)), 1),
            "die_temp_c": round(float(self.card.die_temperature_c(t)), 1),
            "errors_logged": len(self._log),
            "errors_dropped": self._dropped,
        }
