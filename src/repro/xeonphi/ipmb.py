"""Out-of-band path: BMC queries over IPMB.

"The second is the 'out-of-band' method which starts with the same
capabilities in the coprocessors, but sends the information to the Xeon
Phi's System Management Controller (SMC).  The SMC can then respond to
queries from the platform's Baseboard Management Controller (BMC) using
the intelligent platform management bus (IPMB) protocol to pass the
information upstream to the user."  (paper §II-D)

IPMB framing follows the IPMI spec: rsSA, netFn/rsLUN, a header
checksum, rqSA, rqSeq/rqLUN, cmd, data, and a trailing checksum — both
checksums are two's-complement sums verified on receive.  The virtue of
this path is that it costs the host and card *nothing* (the BMC and SMC
are independent microcontrollers); its vice is latency and coarseness.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ChecksumError, IpmbError
from repro.mech.channel import MILLI_UNITS
from repro.obs.instruments import collector
from repro.sim.clock import VirtualClock
from repro.xeonphi.smc import SMC_SENSORS, SystemManagementController

_OBS = collector("ipmb")

#: One IPMB request/response exchange (100 kHz bus + SMC firmware).
IPMB_EXCHANGE_LATENCY_S = 22e-3

#: IPMI network function for sensor/event requests.
NETFN_SENSOR_REQUEST = 0x04
NETFN_SENSOR_RESPONSE = 0x05
#: OEM command we use for "read named sensor".
CMD_GET_SENSOR_READING = 0x2D

#: Sensor number assignment on the SMC (index into SMC_SENSORS).
SENSOR_NUMBERS = {name: i for i, name in enumerate(SMC_SENSORS)}


def _checksum(data: bytes) -> int:
    """Two's-complement checksum: sum(data + checksum) % 256 == 0."""
    return (-sum(data)) & 0xFF


def ipmb_quanta(value: float) -> int:
    """Fixed-point encoding of one sensor value on the wire:
    little-endian milli-units, clipped to 31 bits.  The resolution loss
    itself is owned by the mechanism layer's
    :data:`~repro.mech.channel.MILLI_UNITS` quantization; this helper is
    the wire framing's view of the same encoding."""
    return MILLI_UNITS.quanta(value)


def quantize_reading(value: float) -> float:
    """Resolution loss of one IPMB exchange: what the BMC decodes after
    :func:`ipmb_quanta` encoding."""
    return MILLI_UNITS.apply(value)


def quantize_block(values: np.ndarray) -> np.ndarray:
    """Vectorized :func:`quantize_reading` — same half-to-even rounding
    and clip, elementwise bit-identical to the scalar path."""
    return MILLI_UNITS.apply_block(values)


@dataclass(frozen=True)
class IpmbMessage:
    """A framed IPMB message."""

    rs_addr: int
    net_fn: int
    rq_addr: int
    rq_seq: int
    cmd: int
    data: bytes

    def to_bytes(self) -> bytes:
        """Serialize with both checksums."""
        header = bytes([self.rs_addr, (self.net_fn << 2) & 0xFF])
        body = bytes([self.rq_addr, (self.rq_seq << 2) & 0xFF, self.cmd]) + self.data
        return header + bytes([_checksum(header)]) + body + bytes([_checksum(body)])

    @classmethod
    def from_bytes(cls, raw: bytes) -> "IpmbMessage":
        """Parse and verify both checksums."""
        if len(raw) < 7:
            raise IpmbError(f"IPMB frame too short: {len(raw)} bytes")
        header, header_ck = raw[:2], raw[2]
        if _checksum(header) != header_ck:
            raise ChecksumError("IPMB header checksum mismatch")
        body, body_ck = raw[3:-1], raw[-1]
        if _checksum(body) != body_ck:
            raise ChecksumError("IPMB body checksum mismatch")
        return cls(
            rs_addr=header[0],
            net_fn=header[1] >> 2,
            rq_addr=body[0],
            rq_seq=body[1] >> 2,
            cmd=body[2],
            data=bytes(body[3:]),
        )


class SmcIpmbResponder:
    """The SMC's IPMB slave interface."""

    #: IPMB slave address of a Xeon Phi SMC.
    ADDRESS = 0x30

    def __init__(self, smc: SystemManagementController, clock: VirtualClock):
        self.smc = smc
        self.clock = clock

    def handle(self, request: IpmbMessage) -> IpmbMessage:
        """Answer a sensor-reading request."""
        if request.rs_addr != self.ADDRESS:
            raise IpmbError(f"request addressed to 0x{request.rs_addr:02x}, not SMC")
        if request.net_fn != NETFN_SENSOR_REQUEST or request.cmd != CMD_GET_SENSOR_READING:
            raise IpmbError(
                f"unsupported netFn/cmd 0x{request.net_fn:02x}/0x{request.cmd:02x}"
            )
        if len(request.data) != 1:
            raise IpmbError("sensor request carries exactly one sensor number")
        number = request.data[0]
        names = [n for n, i in SENSOR_NUMBERS.items() if i == number]
        if not names:
            raise IpmbError(f"no sensor number {number}")
        value = self.smc.read_sensor(names[0], self.clock.now)
        # Fixed-point milli-units in 4 bytes, completion code 0 first.
        quanta = ipmb_quanta(value)
        payload = bytes([0x00]) + quanta.to_bytes(4, "little")
        return IpmbMessage(
            rs_addr=request.rq_addr, net_fn=NETFN_SENSOR_RESPONSE,
            rq_addr=self.ADDRESS, rq_seq=request.rq_seq,
            cmd=request.cmd, data=payload,
        )


class BaseboardManagementController:
    """The platform BMC: the user-facing end of the out-of-band path."""

    ADDRESS = 0x20

    def __init__(self, responder: SmcIpmbResponder, clock: VirtualClock):
        self.responder = responder
        self.clock = clock
        self._seq = 0

    def read_sensor(self, name: str) -> float:
        """One out-of-band sensor read, via a full IPMB exchange.

        Advances the clock by the bus latency but charges **no process**
        — the point of out-of-band collection.
        """
        number = SENSOR_NUMBERS.get(name)
        if number is None:
            raise IpmbError(f"unknown sensor {name!r}")
        self._seq = (self._seq + 1) & 0x3F
        request = IpmbMessage(
            rs_addr=SmcIpmbResponder.ADDRESS, net_fn=NETFN_SENSOR_REQUEST,
            rq_addr=self.ADDRESS, rq_seq=self._seq,
            cmd=CMD_GET_SENSOR_READING, data=bytes([number]),
        )
        self.clock.advance(IPMB_EXCHANGE_LATENCY_S)
        # Wire round trip: serialize, verify, handle, verify.
        try:
            response = IpmbMessage.from_bytes(
                self.responder.handle(IpmbMessage.from_bytes(request.to_bytes())).to_bytes()
            )
        except ChecksumError:
            _OBS.record_error("checksum")
            raise
        _OBS.record_query(IPMB_EXCHANGE_LATENCY_S)
        if response.data[0] != 0x00:
            _OBS.record_error("completion_code")
            raise IpmbError(f"completion code 0x{response.data[0]:02x}")
        return int.from_bytes(response.data[1:5], "little") / 1000.0

    def read_power_w(self) -> float:
        return self.read_sensor("power_w")
