"""The in-band SysMgmt SCIF API.

"When an API call is made to the lower-level library to gather
environmental data, it must travel across the SCIF to the card where
user libraries call kernel functions which allow for access of the
registers which contain the pertinent data.  This explains the rise in
power consumption as a result of using the API; code that wasn't
already executing on the device before the call was made must run,
collect, and return."  (paper §II-D)

Costs reproduced here:

* 14.2 ms per query charged to the host-side caller (≈14 % overhead at
  the paper's polling cadence);
* while a polling session is active, the card burns extra power because
  its cores are woken per query — the source of the Figure 7 gap.
"""

from __future__ import annotations

import json

import numpy as np

from repro.errors import ScifError
from repro.host.process import Process
from repro.obs.instruments import collector
from repro.workloads.base import Component

_OBS = collector("sysmgmt")
from repro.xeonphi.card import PhiCard
from repro.xeonphi.scif import SCIF_SYSMGMT_PORT, ScifNetwork
from repro.xeonphi.smc import SystemManagementController

#: Total per-query cost of the in-band path (paper: "a staggering 14.2 ms").
SYSMGMT_QUERY_LATENCY_S = 14.2e-3

#: Core utilization while servicing a query: the wake-collect-return
#: path occupies roughly one core's worth of the card briefly; sustained
#: polling therefore raises card power by a couple of watts.
_WAKE_UTILIZATION = 0.08
_WAKE_SECONDS_PER_QUERY = 8.0e-3


class _PollingFootprint:
    """Card-side utilization of an in-band polling session.

    Constant ``level`` between start and stop, zero outside.  The object
    stays live on the card's load board; stop() just closes the window.
    """

    def __init__(self, level: float, t_start: float):
        self.level = level
        self.t_start = t_start
        self.t_stop = np.inf

    def value(self, t):
        times = np.asarray(t, dtype=np.float64)
        active = (times >= self.t_start) & (times < self.t_stop)
        return np.where(active, self.level, 0.0)


class SysMgmtApi:
    """A host-side handle to one card's SysMgmt agent.

    Construction performs the SCIF connect from host (node 0) to the
    card's SysMgmt port, as Figure 6 draws it.
    """

    def __init__(self, network: ScifNetwork, card: PhiCard,
                 smc: SystemManagementController,
                 process: Process | None = None):
        self.network = network
        self.card = card
        self.smc = smc
        self.process = process
        card_node = card.mic_index + 1
        # The agent listens on the card; the host connects.
        self._agent = network.listen(card_node, SCIF_SYSMGMT_PORT)
        self._endpoint = network.connect(0, card_node, SCIF_SYSMGMT_PORT)
        self._footprint: _PollingFootprint | None = None
        self._queries = 0

    # -- query path ---------------------------------------------------------

    def query(self, sensor: str) -> float:
        """One in-band sensor read: request over SCIF, card-side
        collection, reply.  Charges the full 14.2 ms to the caller."""
        if not self._endpoint.connected:
            _OBS.record_error("disconnected")
            raise ScifError("SysMgmt connection closed")
        request = json.dumps({"op": "read", "sensor": sensor}).encode()
        self._endpoint.send(request)
        # Card side: wake, read the register, reply.  The SCIF transit
        # latency was charged by send(); the remainder of the 14.2 ms is
        # the card-side wake + kernel path + return trip.
        self._agent.recv()
        from repro.xeonphi.scif import message_latency

        remainder = SYSMGMT_QUERY_LATENCY_S - 2 * message_latency(len(request))
        self.network.clock.advance(max(remainder, 0.0))
        value = self.smc.read_sensor(sensor, self.network.clock.now)
        reply = json.dumps({"value": value}).encode()
        self._agent.send(reply)
        payload = json.loads(self._endpoint.recv())
        if self.process is not None and self.process.alive:
            self.process.charge(SYSMGMT_QUERY_LATENCY_S)
        self._queries += 1
        _OBS.record_query(SYSMGMT_QUERY_LATENCY_S)
        return float(payload["value"])

    def query_power_w(self) -> float:
        return self.query("power_w")

    # -- the power side effect ----------------------------------------------

    def start_polling(self, interval_s: float, t: float) -> None:
        """Declare a sustained polling session at ``interval_s``.

        Adds the wake footprint to the card's load board: utilization
        0.028 for 8 ms per query, averaged over the polling interval —
        which at the paper's cadence raises card power by ~2 W over the
        daemon path.
        """
        if interval_s <= 0.0:
            raise ScifError(f"polling interval must be positive, got {interval_s}")
        if self._footprint is not None:
            raise ScifError("polling session already active")
        # Wake duty cycle: 8 ms of ~3% core occupation per query.  The
        # *power* bump is larger than the duty suggests because waking
        # halted cores costs a near-fixed activation energy; fold that in
        # as a floor.
        duty = min(_WAKE_SECONDS_PER_QUERY / interval_s, 1.0)
        level = _WAKE_UTILIZATION * (0.35 + 0.65 * duty)
        self._footprint = _PollingFootprint(level, t)
        self.card.board.add_parasitic(Component.PHI_CORES, self._footprint)

    def stop_polling(self, t: float) -> None:
        """End the polling session: footprint drops to zero from ``t``."""
        if self._footprint is None:
            raise ScifError("no polling session active")
        self._footprint.t_stop = t
        # Closing the window changes future board evaluations; bump the
        # version so cached energy integrals refresh.
        self.card.board.version += 1
        self._footprint = None

    @property
    def queries_issued(self) -> int:
        return self._queries

    def close(self) -> None:
        self._endpoint.close()
        self.network.unbind(self.card.mic_index + 1, SCIF_SYSMGMT_PORT)
