"""The Xeon Phi card: cores, GDDR, its own little OS world.

A card is a device on a host node, but unlike a GPU it runs an embedded
Linux (the coprocessor uOS), so it carries its **own** virtual
filesystem and process table — that is where the MICRAS daemon lives and
where device-side collection contends with the application.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.devices.load import LoadBoard
from repro.devices.power import (
    BoardTrackingIntegral,
    ComponentPowerModel,
    LimitedSignal,
    ThermalModel,
)
from repro.errors import DeviceError
from repro.host.process import ProcessTable
from repro.host.vfs import VirtualFileSystem
from repro.sim.clock import VirtualClock
from repro.sim.noise import GaussianNoise
from repro.sim.rng import RngRegistry
from repro.sim.sensor import SampledSensor
from repro.units import RAPL_ENERGY_UNIT_J
from repro.workloads.base import Component


@dataclass(frozen=True)
class PhiModel:
    """Static parameters of one Xeon Phi product."""

    name: str
    cores: int
    threads_per_core: int
    peak_dp_tflops: float
    gddr_bytes: int
    idle_w: float
    cores_w: float
    gddr_w: float
    pcie_w: float
    tdp_w: float
    ambient_c: float = 30.0
    thermal_r_c_per_w: float = 0.22
    thermal_c_j_per_c: float = 260.0
    #: SMC sensor refresh period (50 ms) and gauge noise.
    smc_update_s: float = 0.050
    smc_noise_w: float = 0.8


#: The Stampede part: "61 cores with ... 4 hardware threads per core
#: yielding a total of 244 threads with a peak performance of 1.2
#: teraFLOPS at double precision".
XEON_PHI_SE10P = PhiModel(
    name="Xeon Phi SE10P", cores=61, threads_per_core=4,
    peak_dp_tflops=1.2, gddr_bytes=8 * 1024**3,
    idle_w=110.0, cores_w=70.0, gddr_w=25.0, pcie_w=6.0, tdp_w=300.0,
)


class PhiCard:
    """One coprocessor card."""

    def __init__(self, model: PhiModel = XEON_PHI_SE10P,
                 rng: RngRegistry | None = None, mic_index: int = 0,
                 clock: VirtualClock | None = None):
        self.model = model
        self.rng = rng if rng is not None else RngRegistry()
        self.mic_index = mic_index
        #: Shared with the host when attached via ScifNetwork.
        self.clock = clock if clock is not None else VirtualClock()
        self.board = LoadBoard()
        self._power_model = ComponentPowerModel(
            self.board,
            idle_w=model.idle_w,
            dynamic_w={
                Component.PHI_CORES: model.cores_w,
                Component.PHI_GDDR: model.gddr_w,
                Component.PHI_PCIE: model.pcie_w,
            },
        )
        # Card power is clampable: "the Xeon Phi actually uses RAPL
        # internally for power consumption limitation".
        self.power_signal = LimitedSignal(self._power_model.signal())
        self._power_limit_w = model.tdp_w
        self.thermal = ThermalModel(
            self.power_signal, ambient_c=model.ambient_c,
            r_c_per_w=model.thermal_r_c_per_w, c_j_per_c=model.thermal_c_j_per_c,
        )
        # The card's internal RAPL counter: same 2^-16 J / 32-bit scheme
        # as the host CPUs.
        self.energy_integral = BoardTrackingIntegral(
            self.power_signal, self.board, dt=1e-3
        )
        self.power_gauge = SampledSensor(
            truth=self.power_signal,
            update_interval=model.smc_update_s,
            noise=GaussianNoise(model.smc_noise_w),
            seed=self.rng.seed(f"phi.{model.name}.{mic_index}.power"),
            quantum=1e-6,  # MICRAS reports microwatts
        )
        # Coprocessor uOS.
        self.uos_vfs = VirtualFileSystem()
        self.uos_vfs.mkdir("/sys", parents=True)
        self.uos_processes = ProcessTable()

    @property
    def total_threads(self) -> int:
        return self.model.cores * self.model.threads_per_core

    def true_power(self, t: np.ndarray | float) -> np.ndarray:
        """Unquantized card power (board level, after any cap)."""
        return self.power_signal.value(t)

    @property
    def power_limit_w(self) -> float:
        """The active card power cap (defaults to TDP)."""
        return self._power_limit_w

    def set_power_limit(self, watts: float, t: float) -> None:
        """Apply a card power cap from time ``t`` — the RAPL-internal
        limiting the SMC exposes."""
        if not 0.3 * self.model.tdp_w <= watts <= self.model.tdp_w:
            raise DeviceError(
                f"{self.model.name}: limit {watts} W outside "
                f"[{0.3 * self.model.tdp_w:.0f}, {self.model.tdp_w:.0f}] W"
            )
        self._power_limit_w = float(watts)
        self.power_signal.set_limit(t, watts)

    def die_temperature_c(self, t: np.ndarray | float) -> np.ndarray:
        return self.thermal.temperature(t)

    def intake_temperature_c(self, t: float) -> float:
        """Fan-in air temperature: ambient plus a whisper of recirculation."""
        return self.model.ambient_c + 2.0

    def exhaust_temperature_c(self, t: float) -> float:
        """Fan-out air temperature: between intake and die."""
        die = float(self.die_temperature_c(t))
        return self.intake_temperature_c(t) + 0.55 * (die - self.intake_temperature_c(t))

    def fan_speed_rpm(self, t: float) -> int:
        """Blower tracks die temperature (2700 RPM floor, 6000 max)."""
        die = float(self.die_temperature_c(t))
        duty = np.clip((die - 45.0) / 50.0, 0.0, 1.0)
        return int(round(2700 + duty * 3300))

    def rapl_counter_raw(self, t: float) -> int:
        """The card-internal 32-bit RAPL energy counter."""
        energy = float(self.energy_integral.value(max(t, 0.0)))
        return int(energy / RAPL_ENERGY_UNIT_J + 1e-9) % (1 << 32)

    def core_rail_voltage(self, t: float) -> float:
        """VDD rail: nominal 1.0 V with load droop."""
        util = float(self.board.utilization(Component.PHI_CORES, t))
        return 1.00 - 0.035 * util

    def core_rail_current(self, t: float) -> float:
        """Current on the core rail implied by core power and voltage."""
        watts = float(self._power_model.component_power(Component.PHI_CORES, t,
                                                        idle_share=0.55))
        return watts / self.core_rail_voltage(t)
