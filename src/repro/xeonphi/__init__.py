"""Intel Xeon Phi (Knights Corner / MIC) simulator.

The paper's richest case study: one card, three collection paths with
different costs and side effects.

* **in-band** — the SysMgmt SCIF API: the query travels across the SCIF
  to the card, where "code that wasn't already executing on the device
  before the call was made must run, collect, and return" — 14.2 ms per
  query (~14 % overhead) *and* a measurable rise in card power.
* **daemon** — the MICRAS daemon's pseudo-files on the card's virtual
  filesystem: 0.04 ms per read, "nearly the same overhead as RAPL ...
  because the implementation on both is essentially the same; the Xeon
  Phi actually uses RAPL internally" — but only code running *on the
  card* can read them, so collection contends with the application.
* **out-of-band** — the SMC answers the platform BMC over IPMB: no
  host- or card-side cost at all, but slow and coarse.
"""

from repro.xeonphi.card import PhiCard, PhiModel, XEON_PHI_SE10P
from repro.xeonphi.smc import SystemManagementController
from repro.xeonphi.scif import ScifEndpoint, ScifNetwork, SCIF_SYSMGMT_PORT
from repro.xeonphi.micras import MicrasDaemon
from repro.xeonphi.sysmgmt import SysMgmtApi
from repro.xeonphi.ipmb import BaseboardManagementController, IpmbMessage, SmcIpmbResponder

__all__ = [
    "PhiCard",
    "PhiModel",
    "XEON_PHI_SE10P",
    "SystemManagementController",
    "ScifNetwork",
    "ScifEndpoint",
    "SCIF_SYSMGMT_PORT",
    "MicrasDaemon",
    "SysMgmtApi",
    "BaseboardManagementController",
    "SmcIpmbResponder",
    "IpmbMessage",
]
