"""SCIF — the Symmetric Communications Interface.

"The SCIF enables communication between the host and the Xeon Phi as
well as between Xeon Phi cards within the host.  Its primary goal is to
provide a uniform API for all communication across the PCI Express
buses.  One of the most important properties of SCIF is that all drivers
should expose the same interfaces on both the host and on the Xeon Phi."
(paper §II-D, Figure 6)

The model keeps those properties: node ids (host = 0, cards = 1..N),
port-addressed endpoints with identical semantics on either side,
connect/accept rendezvous, and a message latency composed of the user→
kernel crossing on each side plus the PCIe hop — the decomposition that
explains why an in-band query is so much more expensive than a local
pseudo-file read.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.errors import ScifDisconnectedError, ScifError
from repro.obs.instruments import SCIF_BYTES, SCIF_MESSAGES, collector
from repro.sim.clock import VirtualClock

_OBS = collector("scif")

#: Well-known port of the SysMgmt agent on the card (Figure 6's
#: "SysMgmt SCIF Interface").
SCIF_SYSMGMT_PORT = 113

#: Per-message cost components (seconds).
USER_KERNEL_CROSSING_S = 0.9e-3   # user library -> kernel driver, one side
PCIE_HOP_S = 0.55e-3              # bus transit


def message_latency(payload_bytes: int = 64, bandwidth_Bps: float = 6.0e9) -> float:
    """One-way SCIF message latency: two kernel crossings + bus + wire."""
    return 2 * USER_KERNEL_CROSSING_S + PCIE_HOP_S + payload_bytes / bandwidth_Bps


@dataclass
class _Mailbox:
    """Per-connection one-directional queue."""

    messages: deque = field(default_factory=deque)


class ScifEndpoint:
    """One side of a SCIF connection (same class host- and card-side —
    the symmetry property)."""

    def __init__(self, network: "ScifNetwork", node_id: int, port: int):
        self.network = network
        self.node_id = node_id
        self.port = port
        self.peer: "ScifEndpoint | None" = None
        self._inbox = _Mailbox()
        self.closed = False

    @property
    def connected(self) -> bool:
        return self.peer is not None and not self.closed

    def send(self, payload: bytes) -> None:
        """Deliver to the peer, charging the transit latency to the
        shared clock."""
        if not self.connected:
            _OBS.record_error("disconnected")
            raise ScifDisconnectedError(
                f"endpoint {self.node_id}:{self.port} is not connected"
            )
        self.network.clock.advance(message_latency(len(payload)))
        self.peer._inbox.messages.append(payload)
        SCIF_MESSAGES.inc()
        SCIF_BYTES.inc(len(payload))

    def recv(self) -> bytes:
        """Pop the oldest delivered message (SCIF recv on ready data)."""
        if self.closed:
            _OBS.record_error("disconnected")
            raise ScifDisconnectedError("endpoint closed")
        if not self._inbox.messages:
            raise ScifError(
                f"recv on empty endpoint {self.node_id}:{self.port} "
                "(simulated SCIF is rendezvous-free: send before recv)"
            )
        return self._inbox.messages.popleft()

    def close(self) -> None:
        self.closed = True
        if self.peer is not None:
            self.peer.peer = None
            self.peer = None


class ScifNetwork:
    """The SCIF fabric of one host: node 0 is the host, nodes 1..N are
    the cards."""

    def __init__(self, clock: VirtualClock, card_count: int):
        if card_count < 1:
            raise ScifError("a SCIF network needs at least one card")
        self.clock = clock
        self.card_count = card_count
        self._listeners: dict[tuple[int, int], ScifEndpoint] = {}

    def valid_node(self, node_id: int) -> bool:
        return 0 <= node_id <= self.card_count

    def listen(self, node_id: int, port: int) -> ScifEndpoint:
        """Bind + listen on (node, port); identical call on either side."""
        self._check_node(node_id)
        key = (node_id, port)
        if key in self._listeners:
            raise ScifError(f"port {port} already bound on node {node_id}")
        endpoint = ScifEndpoint(self, node_id, port)
        self._listeners[key] = endpoint
        return endpoint

    def connect(self, from_node: int, to_node: int, to_port: int) -> ScifEndpoint:
        """Connect to a listening endpoint; returns the connected local
        endpoint.  The listener side uses its listen endpoint directly
        (accept is implicit — adequate for single-connection agents)."""
        self._check_node(from_node)
        self._check_node(to_node)
        listener = self._listeners.get((to_node, to_port))
        if listener is None:
            raise ScifError(f"connection refused: no listener at {to_node}:{to_port}")
        if listener.peer is not None:
            raise ScifError(f"listener {to_node}:{to_port} already connected")
        local = ScifEndpoint(self, from_node, port=0)
        local.peer = listener
        listener.peer = local
        # Connection setup costs one round trip.
        self.clock.advance(2 * message_latency(0))
        return local

    def unbind(self, node_id: int, port: int) -> None:
        endpoint = self._listeners.pop((node_id, port), None)
        if endpoint is None:
            raise ScifError(f"nothing bound at {node_id}:{port}")
        endpoint.close()

    def _check_node(self, node_id: int) -> None:
        if not self.valid_node(node_id):
            raise ScifError(
                f"no SCIF node {node_id} (host=0, cards=1..{self.card_count})"
            )
