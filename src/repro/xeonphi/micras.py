"""The MICRAS daemon.

"On the device ... this daemon exposes access to environmental data
through pseudo-files mounted on a virtual file system.  In this way,
when one wishes to collect data, it's simply a process of reading the
appropriate file and parsing the data."  (paper §II-D)

The daemon publishes text pseudo-files under ``/sys/class/micras`` on
the card's uOS filesystem.  Reads cost 0.04 ms — "nearly the same
overhead as RAPL ... because the implementation on both is essentially
the same" — and are charged to the *card-side* reading process, because
"the data collected by the daemon is only accessible by the portion of
code which is running on the device", which is exactly the contention
trade-off the paper describes.
"""

from __future__ import annotations

from repro.errors import SensorError
from repro.host.process import Process
from repro.obs.instruments import collector
from repro.xeonphi.card import PhiCard
from repro.xeonphi.smc import SystemManagementController

#: Per-read cost of a MICRAS pseudo-file (paper: "about 0.04 ms").
MICRAS_READ_LATENCY_S = 0.04e-3

_OBS = collector("micras")

class MicrasDaemon:
    """The daemon instance on one card's uOS.

    ``FILES`` maps pseudo-file name -> (SMC sensor, unit suffix, scale).
    MICRAS reports power in microwatts, voltages in microvolts and
    currents in milliamps, as the real ``/sys/class/micras`` files do.
    """

    FILES = {
        "power": ("power_w", "uW", 1e6),
        "temp_die": ("die_temp_c", "C", 1.0),
        "temp_intake": ("intake_temp_c", "C", 1.0),
        "temp_exhaust": ("exhaust_temp_c", "C", 1.0),
        "temp_gddr": ("gddr_temp_c", "C", 1.0),
        "fan": ("fan_rpm", "RPM", 1.0),
        "voltage": ("core_voltage_v", "uV", 1e6),
        "current": ("core_current_a", "mA", 1e3),
        "mem_used": ("memory_used_b", "B", 1.0),
        "mem_free": ("memory_free_b", "B", 1.0),
        "power_limit": ("power_limit_w", "uW", 1e6),
    }

    def __init__(self, card: PhiCard, smc: SystemManagementController):
        self.card = card
        self.smc = smc
        self.process = card.uos_processes.spawn("micras")
        self._mounted = False

    def mount(self) -> None:
        """Create the pseudo-file tree on the card's uOS filesystem."""
        if self._mounted:
            return
        vfs = self.card.uos_vfs
        vfs.mkdir("/sys/class", parents=True)
        vfs.mkdir("/sys/class/micras")
        for filename, (sensor, unit, scale) in self.FILES.items():
            vfs.create_dynamic(
                f"/sys/class/micras/{filename}",
                provider=self._provider(sensor, unit, scale),
            )
        self._mounted = True

    def _provider(self, sensor: str, unit: str, scale: float):
        def produce() -> str:
            value = self.smc.read_sensor(sensor, self.card.clock.now)
            return f"{int(round(value * scale))} {unit}\n"

        return produce

    # -- device-side read path ---------------------------------------------

    def read(self, filename: str, reader: Process | None = None) -> str:
        """Read one pseudo-file from card-side code.

        Charges the 0.04 ms read cost to the shared clock and to the
        reading process (the application's card-side rank, usually).
        """
        if not self._mounted:
            raise SensorError("MICRAS pseudo-files not mounted; call mount()")
        if filename not in self.FILES:
            raise SensorError(
                f"no MICRAS file {filename!r}; have {sorted(self.FILES)}"
            )
        self.card.clock.advance(MICRAS_READ_LATENCY_S)
        if reader is not None and reader.alive:
            reader.charge(MICRAS_READ_LATENCY_S)
        _OBS.record_query(MICRAS_READ_LATENCY_S)
        return self.card.uos_vfs.read_text(f"/sys/class/micras/{filename}")

    def read_power_w(self, reader: Process | None = None) -> float:
        """Parse the power pseudo-file back to watts."""
        text = self.read("power", reader)
        micro_w = int(text.split()[0])
        return micro_w / 1e6

    def read_value(self, filename: str, reader: Process | None = None) -> float:
        """Parse any pseudo-file back to its SMC unit."""
        text = self.read(filename, reader)
        _, _, scale = self.FILES[filename]
        return int(text.split()[0]) / scale
