"""Xeon Phi sensor sources.

All three Phi mechanisms — in-band SysMgmt, the device-side MICRAS
daemon, and the out-of-band BMC — read the *same* System Management
Controller; they differ only in which sensors they expose and what the
channel crossing costs (and, for IPMB, the wire quantization the
channel applies).  One parameterized source covers all of them.
"""

from __future__ import annotations

import numpy as np

from repro.mech.cache import CachePlan, FieldPlan
from repro.mech.source import SensorSource
from repro.xeonphi.smc import SystemManagementController

#: (output field, SMC sensor) pairs per mechanism.
SYSMGMT_SENSORS: tuple[tuple[str, str], ...] = (
    ("card_w", "power_w"),
    ("die_temp_c", "die_temp_c"),
    ("exhaust_temp_c", "exhaust_temp_c"),
)
MICRAS_SENSORS: tuple[tuple[str, str], ...] = (
    ("card_w", "power_w"),
    ("die_temp_c", "die_temp_c"),
)
IPMB_SENSORS: tuple[tuple[str, str], ...] = SYSMGMT_SENSORS
#: The ``micsmc`` control panel (paper §II-D): a host-side utility
#: polling the card status the SMC exposes — power, thermals, fan,
#: core voltage, and memory usage.
MICSMC_SENSORS: tuple[tuple[str, str], ...] = (
    ("card_w", "power_w"),
    ("die_temp_c", "die_temp_c"),
    ("fan_rpm", "fan_rpm"),
    ("core_voltage_v", "core_voltage_v"),
    ("memory_used_b", "memory_used_b"),
)


class SmcSensorSource(SensorSource):
    """A named subset of one card's SMC sensors, as columns."""

    def __init__(self, smc: SystemManagementController,
                 sensors: tuple[tuple[str, str], ...]):
        self.smc = smc
        self.sensors = sensors

    def fields(self) -> tuple[str, ...]:
        return tuple(name for name, _ in self.sensors)

    def collect(self, times: np.ndarray) -> dict[str, np.ndarray]:
        return {
            name: self.smc.read_sensor_block(sensor, times)
            for name, sensor in self.sensors
        }

    def cache_plan(self) -> CachePlan:
        # Only power is sample-and-hold (the SMC's power gauge refresh
        # window); the temperatures are continuous thermal models.
        gauge = self.smc.card.power_gauge
        held = FieldPlan(gauge.update_interval, gauge.phase)
        return CachePlan(self.smc, {
            name: held if sensor == "power_w" else FieldPlan()
            for name, sensor in self.sensors
        })
