"""The mechanism registry: every vendor collection path, declared.

A :class:`MechanismSpec` is the static quarter-composition the paper's
comparison runs on — channel + freshness + capability + field list —
with no device attached.  Registration happens where the compositions
live (``repro.core.moneq.backends``); consumers iterate
:func:`mechanisms` to inspect the fleet (``repro mech list``, the
capability property tests, future fault-injection harnesses).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.mech.capability_decl import CapabilityDecl
from repro.mech.channel import AccessChannel
from repro.mech.freshness import FreshnessModel


@dataclass(frozen=True)
class MechanismSpec:
    """One declared vendor path: everything but the live device."""

    name: str
    platform: str
    channel: AccessChannel
    freshness: FreshnessModel
    capability: CapabilityDecl
    #: Output field names, in column order — the property suite pins
    #: these to the keys ``read_at`` actually returns.
    fields: tuple[str, ...]
    #: Channel exchanges per collection tick (one MSR read per RAPL
    #: domain, one IPMB round trip per SMC sensor, ...).
    queries_per_read: int = 1
    summary: str = ""

    def __post_init__(self):
        if not self.fields:
            raise ConfigError(f"mechanism {self.name!r} declares no fields")
        if len(set(self.fields)) != len(self.fields):
            raise ConfigError(f"mechanism {self.name!r} has duplicate fields")
        if self.queries_per_read < 1:
            raise ConfigError(
                f"mechanism {self.name!r} needs >= 1 queries per read, "
                f"got {self.queries_per_read}"
            )
        if self.capability.platform != self.platform:
            raise ConfigError(
                f"mechanism {self.name!r} is on platform {self.platform!r} "
                f"but declares {self.capability.platform!r} capabilities"
            )

    @property
    def min_interval_s(self) -> float:
        """Derived hardware floor on the polling interval."""
        return self.freshness.min_interval_s

    @property
    def read_latency_s(self) -> float:
        """Charged cost of one full collection tick."""
        return self.channel.latency_for(self.queries_per_read)


_REGISTRY: dict[str, MechanismSpec] = {}


def register(spec: MechanismSpec) -> MechanismSpec:
    """Add ``spec`` to the registry (idempotent for identical re-adds)."""
    existing = _REGISTRY.get(spec.name)
    if existing is not None:
        if existing == spec:
            return spec
        raise ConfigError(
            f"mechanism {spec.name!r} already registered with a "
            "different declaration"
        )
    _REGISTRY[spec.name] = spec
    return spec


def get(name: str) -> MechanismSpec:
    spec = _REGISTRY.get(name)
    if spec is None:
        raise ConfigError(
            f"unknown mechanism {name!r}; registered: {sorted(_REGISTRY)}"
        )
    return spec


def mechanisms() -> dict[str, MechanismSpec]:
    """Name -> spec, in registration order."""
    return dict(_REGISTRY)
