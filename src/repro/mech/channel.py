"""Access channels: *how* a sensor source is reached, and what the
crossing costs.

A channel models the transport between the consumer and the device —
an EMON personality call, an MSR chardev pread, a sysfs text file, a
perf syscall, an NVML library call, a SCIF round trip, a pseudo-file
read, or an IPMB bus exchange.  It owns the three things every crossing
has regardless of vendor:

* a **per-query latency** (the paper's Table II numbers, previously
  scattered as ``*_LATENCY_S`` constants across vendor modules);
* a **permission requirement** (the msr chmod ritual, root for
  powercap writes, nothing at all for out-of-band paths);
* an optional **wire quantization** (the IPMB milli-unit fixed-point
  encoding, previously the ``quantize_*`` helpers in ``xeonphi.ipmb``).

The channel is also where observability hooks on: the shared
``repro_collector_*`` instrument for a mechanism is obtained through
its channel, so hot paths record queries at the layer instead of at
eight separate call sites.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.host.permissions import R_OK, Credentials
from repro.host.permissions import check_access as _posix_check_access
from repro.obs.instruments import CollectorInstrument, collector


@dataclass(frozen=True)
class Quantization:
    """Resolution loss imposed by a wire encoding.

    Values are encoded as fixed-point quanta of ``1/scale`` units,
    clipped to ``[0, max_quanta]`` — what the consumer decodes is the
    encoded value, not the sensor's.  ``apply``/``apply_block`` are
    elementwise bit-identical (same half-to-even rounding and clip).
    """

    name: str
    scale: float
    max_quanta: int

    def __post_init__(self):
        if self.scale <= 0.0:
            raise ConfigError(f"quantization scale must be positive, got {self.scale}")
        if self.max_quanta <= 0:
            raise ConfigError(
                f"quantization max_quanta must be positive, got {self.max_quanta}"
            )

    def quanta(self, value: float) -> int:
        """Encode one value as clipped fixed-point quanta."""
        return max(min(int(round(value * self.scale)), self.max_quanta), 0)

    def apply(self, value: float) -> float:
        """What the consumer decodes after one encode/decode round trip."""
        return self.quanta(value) / self.scale

    def apply_block(self, values: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`apply`, elementwise bit-identical to it."""
        quanta = np.clip(
            np.rint(np.asarray(values, dtype=np.float64) * self.scale),
            0, self.max_quanta,
        )
        return quanta / self.scale


#: The IPMB wire encoding: little-endian milli-units in 31 bits.
MILLI_UNITS = Quantization(name="milli-units", scale=1000.0, max_quanta=2**31 - 1)


@dataclass(frozen=True)
class AccessChannel:
    """One transport to a sensor source.

    ``per_query_latency_s`` is the cost of a single exchange on the
    channel; a mechanism that needs several exchanges per collection
    tick (one MSR read per RAPL domain, one IPMB round trip per SMC
    sensor) multiplies via :meth:`latency_for`.
    """

    name: str
    per_query_latency_s: float
    #: What a consumer must hold to use the channel ("none" for
    #: world-readable and out-of-band paths).
    permission: str = "none"
    quantization: Quantization | None = None
    description: str = ""

    def __post_init__(self):
        if self.per_query_latency_s < 0.0:
            raise ConfigError(
                f"channel latency must be >= 0, got {self.per_query_latency_s}"
            )

    def latency_for(self, queries: int) -> float:
        """Charged cost of one collection of ``queries`` exchanges."""
        if queries < 1:
            raise ConfigError(f"a collection needs >= 1 queries, got {queries}")
        return self.per_query_latency_s * queries

    def with_latency(self, per_query_latency_s: float) -> "AccessChannel":
        """The same channel at a different modeled latency (NVML's
        query cost is a constructor knob in the paper's experiments)."""
        return dataclasses.replace(
            self, per_query_latency_s=per_query_latency_s
        )

    @property
    def requires_privilege(self) -> bool:
        """Whether the channel is gated at all ("none" channels are
        world-readable or out-of-band)."""
        return self.permission != "none"

    def gate_mode(self) -> int:
        """The POSIX mode bits of the channel's declared gate: a
        world-readable node for "none", a root-only one otherwise —
        what the msr chardev looks like *before* the chmod ritual."""
        return 0o600 if self.requires_privilege else 0o444

    def check_access(self, creds: Credentials, path: str = "") -> None:
        """Enforce the declared permission requirement for ``creds``.

        Routed through the same :func:`repro.host.permissions.check_access`
        the VFS runs on every open, against a root-owned node of
        :meth:`gate_mode` — so a privileged channel denies exactly the
        way the real chardev would, with the same
        :class:`~repro.errors.AccessDeniedError`.
        """
        _posix_check_access(
            self.gate_mode(), 0, 0, creds, R_OK,
            path or f"channel {self.name} ({self.permission})",
        )

    def instrument(self, mechanism: str) -> CollectorInstrument:
        """The shared ``repro_collector_*`` handle for ``mechanism`` —
        the one place session hot paths get their query/latency
        instrumentation from."""
        return collector(mechanism)

    def fault_injector(self, mechanism: str, label: str,
                       queries_per_tick: int = 1):
        """The channel as fault-injection seam: the active
        :class:`~repro.chaos.faults.FaultPlan`'s injector for crossings
        of this channel by ``(mechanism, label)``, or ``None`` when no
        plan is installed.  Every generic read consults this, so all
        declared vendor paths inherit fault handling by construction;
        the disabled path costs one global check."""
        from repro.chaos.injector import injector_for

        return injector_for(self, mechanism, label, queries_per_tick)
