"""Sensor sources: columnar views of the device simulators.

A :class:`SensorSource` is the device-facing quarter of a mechanism: it
knows how to sample its wrapped simulator over a whole time grid in one
vectorized pass, per named field.  Everything above it — latency,
quantization, freshness, capability — belongs to the other three parts
of the mechanism, so a source stays a pure data producer.

Scalar reads do not exist at this layer: the generic
:class:`~repro.mech.mechanism.Mechanism` derives ``read_at`` from a
one-element grid, which is what guarantees scalar/block parity once,
here, instead of per backend.  Stateful sources (the RAPL counter
differencers) must therefore be *chunking-invariant*: collecting a grid
in pieces, in time order, yields bit-identical columns to collecting it
whole — the read-block parity property suite pins this down.
"""

from __future__ import annotations

import abc

import numpy as np


def empty_block(fields: list[str] | tuple[str, ...], n: int) -> np.ndarray:
    """A zeroed structured block with one f8 column per field — the one
    shared home for block construction (sources, backends, sessions)."""
    return np.zeros(n, dtype=[(name, "f8") for name in fields])


def consecutive_deltas(
    times: np.ndarray, raws: np.ndarray, prev: tuple[float, int] | None,
    modulus: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, int, tuple[float, int]]:
    """Vectorized consecutive-read differencing for counter sources.

    Mirrors the scalar loop bit for bit: each row differences against
    the preceding row (or the carried-over ``prev`` state for row 0),
    and negative deltas get the single-wrap correction.  Returns
    ``(delta, dt, fresh, wrap_count, new_prev)`` where ``fresh`` marks
    rows without a usable predecessor (the scalar path's 0.0 rows; their
    ``dt`` is pinned to 1.0 so callers can divide unconditionally).
    """
    n = times.shape[0]
    prev_t = np.empty(n, dtype=np.float64)
    prev_raw = np.empty(n, dtype=np.int64)
    prev_t[1:] = times[:-1]
    prev_raw[1:] = raws[:-1]
    if prev is None:
        prev_t[0] = np.inf  # forces the scalar path's "no predecessor" row
        prev_raw[0] = 0
    else:
        prev_t[0], prev_raw[0] = prev
    fresh = times <= prev_t
    delta = raws - prev_raw
    wrapped = (delta < 0) & ~fresh
    delta = delta + wrapped * modulus
    dt = times - prev_t
    dt[fresh] = 1.0
    return (delta, dt, fresh, int(np.count_nonzero(wrapped)),
            (float(times[-1]), int(raws[-1])))


class SensorSource(abc.ABC):
    """One device's sensors, sampled columnarly over a time grid."""

    @abc.abstractmethod
    def fields(self) -> tuple[str, ...]:
        """Names of the data points one collection produces, in order."""

    @abc.abstractmethod
    def collect(self, times: np.ndarray) -> dict[str, np.ndarray]:
        """Field name -> column of samples at each time in ``times``.

        Passive (no clock movement, no process charge); the session owns
        time.  Reads must arrive in time order across calls for stateful
        sources.
        """

    def cache_plan(self):
        """This source's :class:`~repro.mech.cache.CachePlan`, or None.

        A plan declares that every field is a pure function of the poll
        time (held registers keyed by hardware window, continuous values
        keyed exactly), which is what lets the channel cache serve
        refresh-window hits byte-identically.  The default is None —
        uncacheable — which is the only safe answer for stateful sources
        like the counter differencers below.
        """
        return None


class CounterSource(SensorSource):
    """Stateful counter-differencing source: fields are power columns
    derived from deltas of monotonically-updating hardware counters.

    Subclasses declare ``(field, counter_key)`` pairs and implement
    :meth:`raw_block` (counter contents over a grid, int64) plus
    :meth:`to_watts` (delta/dt -> power).  Wrap corrections use the
    standard single-wrap rule; :meth:`record_wraps` is a hook for
    mechanism-specific wrap metrics.
    """

    def __init__(self, counters: tuple[tuple[str, object], ...], modulus: int):
        self._counters = counters
        self._modulus = modulus
        self._last: dict[object, tuple[float, int]] = {}

    def fields(self) -> tuple[str, ...]:
        return tuple(name for name, _ in self._counters)

    @abc.abstractmethod
    def raw_block(self, key, times: np.ndarray) -> np.ndarray:
        """Counter contents at each time, as an int64 array."""

    @abc.abstractmethod
    def to_watts(self, delta: np.ndarray, dt: np.ndarray) -> np.ndarray:
        """Convert counter deltas over ``dt`` seconds to watts."""

    def record_wraps(self, count: int) -> None:
        """Observability hook: ``count`` single-wrap corrections applied."""

    def collect(self, times: np.ndarray) -> dict[str, np.ndarray]:
        columns: dict[str, np.ndarray] = {}
        for name, key in self._counters:
            raws = self.raw_block(key, times)
            delta, dt, fresh, wraps, self._last[key] = consecutive_deltas(
                times, raws, self._last.get(key), self._modulus
            )
            if wraps:
                self.record_wraps(wraps)
            power = self.to_watts(delta, dt)
            power[fresh] = 0.0
            columns[name] = power
        return columns
