"""``repro.mech`` — the composable mechanism layer.

The paper's core observation is that four very different vendor
collection paths share one measurable shape: a sensor source behind an
access channel with a query latency, a minimum interval, a freshness
model and a capability set.  This package expresses that shape once:

* :class:`~repro.mech.source.SensorSource` — columnar device sampling;
* :class:`~repro.mech.channel.AccessChannel` — per-query latency,
  permission requirement, wire quantization, obs instrumentation;
* :class:`~repro.mech.freshness.FreshnessModel` — validated derivation
  of the minimum polling interval;
* :class:`~repro.mech.capability_decl.CapabilityDecl` — Table I columns,
  from which :mod:`repro.core.capability` derives its matrices;
* :class:`~repro.mech.mechanism.Mechanism` — the generic composition
  with the single scalar ``read_at`` / vectorized ``read_block``;
* :mod:`~repro.mech.registry` — every declared path, inspectable via
  ``repro mech list``.

``Mechanism`` is exported lazily (PEP 562): it subclasses the MonEQ
``Backend``, whose module derives capabilities from this package, and
eager import would cycle.
"""

from __future__ import annotations

from repro.mech.cache import (
    CachePlan,
    ChannelCache,
    ChannelCacheStats,
    FieldPlan,
    channel_cache,
    channel_cache_disabled,
)
from repro.mech.capability_decl import PLATFORM_DECLS, CapabilityDecl
from repro.mech.channel import MILLI_UNITS, AccessChannel, Quantization
from repro.mech.freshness import FreshnessKind, FreshnessModel
from repro.mech.registry import MechanismSpec, get, mechanisms, register
from repro.mech.source import (
    CounterSource,
    SensorSource,
    consecutive_deltas,
    empty_block,
)

__all__ = [
    "AccessChannel",
    "Quantization",
    "MILLI_UNITS",
    "FreshnessModel",
    "FreshnessKind",
    "CapabilityDecl",
    "PLATFORM_DECLS",
    "SensorSource",
    "CounterSource",
    "empty_block",
    "consecutive_deltas",
    "MechanismSpec",
    "register",
    "get",
    "mechanisms",
    "Mechanism",
    "ChannelCache",
    "ChannelCacheStats",
    "CachePlan",
    "FieldPlan",
    "channel_cache",
    "channel_cache_disabled",
]


def __getattr__(name: str):
    if name == "Mechanism":
        from repro.mech.mechanism import Mechanism

        return Mechanism
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
