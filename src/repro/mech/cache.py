"""The freshness-aware channel cache.

The paper's central observation is that vendor mechanisms are
rate-limited *at the device*: NVML boards and the Phi SMC refresh their
registers on fixed periods, EMON serves the oldest of two sample
generations — polling faster than the freshness window just re-reads
the identical register value over an expensive channel.  The
:class:`ChannelCache` exploits exactly that: entries are keyed by
``(mechanism, device, field)`` with a per-field *freshness key* derived
from the mechanism's declared refresh behavior, so a refresh-window hit
skips the device collection entirely and is **byte-identical** to the
uncached timeline by construction — the device would have returned the
same held value.

Two keying modes, declared per field by the source's
:class:`CachePlan`:

* **held** (``FieldPlan(period_s, phase_s)``) — the device holds the
  register constant within each hardware update window; the cache key
  is the window index ``floor((t - phase) / period)``.  Any two reads
  inside one window observe identical bytes, so one crossing serves
  them all.
* **exact** (``FieldPlan()``) — the value is a continuous function of
  the poll time (die temperatures, EMON's accumulated node-card total);
  the key is the timestamp itself.  Exact keys still deduplicate the
  common fleet pattern of many consumers polling one device on the
  same tick grid.

Interplay with :mod:`repro.chaos` is handled one layer up, in
``Mechanism.read_block``: fault injection always runs over the full
grid (a cached value never masks a fault that a real crossing would
have drawn), and dark periods invalidate the device's entries.

The cache is process-global and enabled by default;
:func:`channel_cache_disabled` turns it off for a dynamic extent (the
ablation benches and the byte-identity property suite use it).
"""

from __future__ import annotations

import itertools
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigError
from repro.obs.instruments import (
    CACHE_CROSSINGS_SAVED,
    CACHE_HITS,
    CACHE_INVALIDATIONS,
    CACHE_MISSES,
)

_TOKENS = itertools.count(1)
_TOKEN_ATTR = "_repro_cache_token"


def cache_token(device) -> int:
    """A stable identity for one shared device object.

    Backends over the *same* device (1024 MonEQ agents on one GPU, the
    three Phi paths on one SMC) share cache entries through this token;
    distinct devices — even identically configured ones — never do.
    The token is attached lazily to the device object itself, so it
    survives however many sources wrap the device.
    """
    token = getattr(device, _TOKEN_ATTR, None)
    if token is None:
        token = next(_TOKENS)
        try:
            setattr(device, _TOKEN_ATTR, token)
        except AttributeError:  # __slots__ device: identity still works
            token = id(device)
    return int(token)


@dataclass(frozen=True)
class FieldPlan:
    """How one field's cache key derives from the poll time.

    ``period_s`` set — the device holds the value constant within each
    ``period_s`` hardware window offset by ``phase_s`` (sample-and-hold
    registers); ``period_s`` None — the value varies continuously and
    only an exact-timestamp match may be served from cache.
    """

    period_s: float | None = None
    phase_s: float = 0.0

    def __post_init__(self):
        if self.period_s is not None and self.period_s <= 0.0:
            raise ConfigError(
                f"cache field period must be positive, got {self.period_s}")

    def keys_for(self, times: np.ndarray) -> np.ndarray:
        """The cache key of each poll time (float64 column)."""
        if self.period_s is None:
            return times
        return np.floor((times - self.phase_s) / self.period_s)


class CachePlan:
    """One source's cacheability declaration: the shared device object
    plus a :class:`FieldPlan` per output field.

    Stateful sources (the RAPL counter differencers) declare no plan at
    all — consecutive-read deltas depend on reader history, never on
    the poll time alone, so no key function exists for them.
    """

    def __init__(self, device, fields: dict[str, FieldPlan]):
        if not fields:
            raise ConfigError("cache plan needs at least one field")
        self.device = device
        self.fields = dict(fields)
        self.token = cache_token(device)

    def keys_for(self, name: str, times: np.ndarray) -> np.ndarray:
        return self.fields[name].keys_for(times)


@dataclass
class MechanismCacheStats:
    """Per-mechanism running totals (rows, not exchanges)."""

    hits: int = 0
    misses: int = 0
    crossings_saved: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


@dataclass
class ChannelCacheStats:
    """A snapshot of the cache's accounting."""

    hits: int = 0
    misses: int = 0
    crossings_saved: int = 0
    invalidations: int = 0
    entries: int = 0
    by_mechanism: dict[str, MechanismCacheStats] = field(default_factory=dict)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class ChannelCache:
    """The process-global ``(mechanism, device, field)`` value cache.

    Entries are parallel sorted float64 arrays (keys, values); lookups
    are one ``searchsorted`` per field, inserts merge-and-dedupe.  Both
    caps are safety valves, not tuning knobs: ``max_keys_per_entry``
    drops the oldest half of a field's keys when a single device's
    history grows unboundedly, ``max_entries`` clears the cache outright
    if a workload churns through that many distinct (mechanism, device,
    field) triples.  Values are stored *pre-quantization* (the raw
    collect column); the channel's wire quantization is deterministic
    per element, so applying it downstream of the cache preserves
    byte-identity.
    """

    def __init__(self, max_keys_per_entry: int = 1 << 20,
                 max_entries: int = 8192):
        self.enabled = True
        self.max_keys_per_entry = int(max_keys_per_entry)
        self.max_entries = int(max_entries)
        self._lock = threading.Lock()
        self._entries: dict[tuple[str, int, str],
                            tuple[np.ndarray, np.ndarray]] = {}
        self._by_mechanism: dict[str, MechanismCacheStats] = {}
        self._invalidations = 0

    # -- the read path -------------------------------------------------------

    def lookup(self, mechanism: str, token: int, field_name: str,
               keys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """``(values, hit_mask)`` for one field over one key column.

        ``values`` is only meaningful where ``hit_mask`` is True; the
        caller overwrites miss rows from a fresh collection.
        """
        values = np.empty(keys.shape[0], dtype=np.float64)
        with self._lock:
            entry = self._entries.get((mechanism, token, field_name))
            if entry is None:
                return values, np.zeros(keys.shape[0], dtype=bool)
            stored_keys, stored_values = entry
        idx = np.searchsorted(stored_keys, keys)
        clamped = np.minimum(idx, stored_keys.shape[0] - 1)
        hit = stored_keys[clamped] == keys
        values[hit] = stored_values[clamped[hit]]
        return values, hit

    def store(self, mechanism: str, token: int, field_name: str,
              keys: np.ndarray, values: np.ndarray) -> None:
        """Merge freshly collected ``(key, value)`` rows into one
        field's entry, keeping the key column sorted and unique."""
        if keys.shape[0] == 0:
            return
        with self._lock:
            if len(self._entries) >= self.max_entries:
                self._invalidations += len(self._entries)
                CACHE_INVALIDATIONS.labels(mechanism).inc(len(self._entries))
                self._entries.clear()
            entry_key = (mechanism, token, field_name)
            entry = self._entries.get(entry_key)
            if entry is None:
                merged_keys, merged_values = np.asarray(
                    keys, dtype=np.float64), np.asarray(
                    values, dtype=np.float64)
                order = np.argsort(merged_keys, kind="stable")
                merged_keys = merged_keys[order]
                merged_values = merged_values[order]
            else:
                merged_keys = np.concatenate([entry[0], keys])
                merged_values = np.concatenate([entry[1], values])
                order = np.argsort(merged_keys, kind="stable")
                merged_keys = merged_keys[order]
                merged_values = merged_values[order]
            # Equal keys carry equal values by construction (the device
            # would have returned the same bytes); keep the first.
            merged_keys, first = np.unique(merged_keys, return_index=True)
            merged_values = merged_values[first]
            if merged_keys.shape[0] > self.max_keys_per_entry:
                keep = merged_keys.shape[0] // 2  # newest (largest) keys
                merged_keys = merged_keys[-keep:].copy()
                merged_values = merged_values[-keep:].copy()
            self._entries[entry_key] = (merged_keys, merged_values)

    def note_block(self, mechanism: str, rows: int, row_hits: int,
                   queries_per_read: int) -> None:
        """Account one cached ``read_block``: ``row_hits`` rows whose
        every field hit skipped the device collection — and with it
        ``queries_per_read`` channel exchanges each."""
        misses = rows - row_hits
        saved = row_hits * queries_per_read
        with self._lock:
            stats = self._by_mechanism.get(mechanism)
            if stats is None:
                stats = self._by_mechanism[mechanism] = MechanismCacheStats()
            stats.hits += row_hits
            stats.misses += misses
            stats.crossings_saved += saved
        if row_hits:
            CACHE_HITS.labels(mechanism).inc(row_hits)
            CACHE_CROSSINGS_SAVED.labels(mechanism).inc(saved)
        if misses:
            CACHE_MISSES.labels(mechanism).inc(misses)

    # -- invalidation --------------------------------------------------------

    def invalidate_device(self, mechanism: str, token: int) -> int:
        """Drop every field entry of one (mechanism, device) — chaos
        dark periods land here: a channel declared dark forfeits its
        cached freshness windows."""
        with self._lock:
            stale = [key for key in self._entries
                     if key[0] == mechanism and key[1] == token]
            for key in stale:
                del self._entries[key]
            self._invalidations += len(stale)
        if stale:
            CACHE_INVALIDATIONS.labels(mechanism).inc(len(stale))
        return len(stale)

    def clear(self) -> None:
        """Drop every entry and reset the accounting."""
        with self._lock:
            self._entries.clear()
            self._by_mechanism.clear()
            self._invalidations = 0

    # -- accounting ----------------------------------------------------------

    def stats(self) -> ChannelCacheStats:
        with self._lock:
            by_mechanism = {
                name: MechanismCacheStats(s.hits, s.misses, s.crossings_saved)
                for name, s in self._by_mechanism.items()
            }
            return ChannelCacheStats(
                hits=sum(s.hits for s in by_mechanism.values()),
                misses=sum(s.misses for s in by_mechanism.values()),
                crossings_saved=sum(
                    s.crossings_saved for s in by_mechanism.values()),
                invalidations=self._invalidations,
                entries=len(self._entries),
                by_mechanism=by_mechanism,
            )


#: The process-global cache every generic ``Mechanism`` consults.
CHANNEL_CACHE = ChannelCache()


def channel_cache() -> ChannelCache:
    """The process-global channel cache."""
    return CHANNEL_CACHE


@contextmanager
def channel_cache_disabled():
    """``with channel_cache_disabled():`` — bypass the cache for the
    dynamic extent (ablation benches, byte-identity oracles).  Nests
    safely; entries are kept, only lookups are suspended."""
    cache = CHANNEL_CACHE
    previous = cache.enabled
    cache.enabled = False
    try:
        yield cache
    finally:
        cache.enabled = previous
