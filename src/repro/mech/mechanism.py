"""The generic mechanism: a declared spec composed with a live source.

This is where the eight hand-coded backend bodies collapsed to one:
``read_block`` samples the source columnarly and applies the channel's
wire quantization; ``read_at`` is a one-element grid through the same
path, so scalar/block parity is guaranteed **once, at the layer** —
the contract the block-sampling engine's byte-identical-output
guarantee rests on.  Latency, minimum interval, capabilities and
instrumentation are all read off the declaration.
"""

from __future__ import annotations

import numpy as np

from repro.chaos.injector import DARK_READING
from repro.core.capability import PlatformCapabilities, platform_capabilities
from repro.core.moneq.backend import Backend
from repro.errors import ConfigError
from repro.mech.channel import AccessChannel
from repro.mech.registry import MechanismSpec
from repro.mech.source import SensorSource, empty_block
from repro.obs.instruments import CollectorInstrument


class Mechanism(Backend):
    """One vendor collection path: a :class:`SensorSource` behind an
    :class:`AccessChannel`, with freshness and capabilities declared by
    a :class:`MechanismSpec`.

    Concrete vendor backends are thin compositions: they pick the spec,
    build the source from a device, and keep their historical
    constructor signatures — no per-backend read bodies.
    """

    def __init__(self, spec: MechanismSpec, source: SensorSource, label: str,
                 channel: AccessChannel | None = None):
        if tuple(source.fields()) != spec.fields:
            raise ConfigError(
                f"mechanism {spec.name!r}: source produces fields "
                f"{tuple(source.fields())} but the declaration promises "
                f"{spec.fields}"
            )
        self.spec = spec
        self.source = source
        self.label = label
        self.channel = channel if channel is not None else spec.channel
        self.platform = spec.platform
        self.mechanism = spec.name
        self._instrument = self.channel.instrument(spec.name)

    @property
    def min_interval_s(self) -> float:
        return self.spec.freshness.min_interval_s

    @property
    def query_latency_s(self) -> float:
        return self.channel.latency_for(self.spec.queries_per_read)

    @property
    def instrument(self) -> CollectorInstrument:
        return self._instrument

    def fields(self) -> list[str]:
        return list(self.spec.fields)

    def read_block(self, times: np.ndarray) -> np.ndarray:
        times = np.asarray(times, dtype=np.float64)
        out = empty_block(self.spec.fields, times.shape[0])
        if times.shape[0] == 0:
            return out
        columns = self.source.collect(times)
        quantization = self.channel.quantization
        for name in self.spec.fields:
            column = columns[name]
            if quantization is not None:
                column = quantization.apply_block(column)
            out[name] = column
        # The fault-injection seam: with a plan active, every crossing
        # of the grid is decided *after* the source collected — a retry
        # re-issues the exchange, never the stateful counter read — and
        # undelivered rows degrade to sensor-dark NaN instead of
        # raising.  With no plan this is one function call returning
        # None, and the block above is the entire read path.
        injector = self.channel.fault_injector(
            self.mechanism, self.label, self.spec.queries_per_read)
        if injector is not None:
            dark = injector.cross_block(times)
            if dark.any():
                for name in self.spec.fields:
                    out[name][dark] = DARK_READING
        return out

    def read_at(self, t: float) -> dict[str, float]:
        block = self.read_block(np.array([t], dtype=np.float64))
        return {name: float(block[name][0]) for name in self.spec.fields}

    def capabilities(self) -> PlatformCapabilities:
        return platform_capabilities(self.spec.platform)
