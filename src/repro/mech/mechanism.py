"""The generic mechanism: a declared spec composed with a live source.

This is where the eight hand-coded backend bodies collapsed to one:
``read_block`` samples the source columnarly and applies the channel's
wire quantization; ``read_at`` is a one-element grid through the same
path, so scalar/block parity is guaranteed **once, at the layer** —
the contract the block-sampling engine's byte-identical-output
guarantee rests on.  Latency, minimum interval, capabilities and
instrumentation are all read off the declaration.
"""

from __future__ import annotations

import numpy as np

from repro.chaos.injector import DARK_READING
from repro.core.capability import PlatformCapabilities, platform_capabilities
from repro.core.moneq.backend import Backend
from repro.errors import AccessDeniedError, ConfigError
from repro.host.permissions import Credentials
from repro.mech.cache import channel_cache
from repro.mech.channel import AccessChannel
from repro.mech.registry import MechanismSpec
from repro.mech.source import SensorSource, empty_block
from repro.obs.instruments import CollectorInstrument


class Mechanism(Backend):
    """One vendor collection path: a :class:`SensorSource` behind an
    :class:`AccessChannel`, with freshness and capabilities declared by
    a :class:`MechanismSpec`.

    Concrete vendor backends are thin compositions: they pick the spec,
    build the source from a device, and keep their historical
    constructor signatures — no per-backend read bodies.
    """

    def __init__(self, spec: MechanismSpec, source: SensorSource, label: str,
                 channel: AccessChannel | None = None):
        if tuple(source.fields()) != spec.fields:
            raise ConfigError(
                f"mechanism {spec.name!r}: source produces fields "
                f"{tuple(source.fields())} but the declaration promises "
                f"{spec.fields}"
            )
        self.spec = spec
        self.source = source
        self.label = label
        self.channel = channel if channel is not None else spec.channel
        self.platform = spec.platform
        self.mechanism = spec.name
        self._instrument = self.channel.instrument(spec.name)
        self._gate_vfs = None
        self._gate_path = ""
        self._cache_plan = source.cache_plan()
        if self._cache_plan is not None and (
                set(self._cache_plan.fields) != set(spec.fields)):
            raise ConfigError(
                f"mechanism {spec.name!r}: cache plan covers fields "
                f"{sorted(self._cache_plan.fields)} but the declaration "
                f"promises {spec.fields}"
            )

    @property
    def min_interval_s(self) -> float:
        return self.spec.freshness.min_interval_s

    @property
    def query_latency_s(self) -> float:
        return self.channel.latency_for(self.spec.queries_per_read)

    @property
    def instrument(self) -> CollectorInstrument:
        return self._instrument

    def fields(self) -> list[str]:
        return list(self.spec.fields)

    def bind_gate(self, vfs, path: str) -> None:
        """Bind the channel's permission gate to a live VFS node (the
        msr backend binds its ``/dev/cpu/<n>/msr`` chardev).  Once
        bound, :meth:`check_access` opens that node with the caller's
        credentials, so the check honors the node's *current* mode —
        the chmod ritual opens the path for everyone, exactly as on a
        real deployment."""
        self._gate_vfs = vfs
        self._gate_path = path

    def check_access(self, creds: Credentials) -> None:
        """Enforce the channel's permission requirement for ``creds``,
        raising :class:`~repro.errors.AccessDeniedError` (and counting a
        ``permission_denied`` collector error) on denial.

        With a gate bound (:meth:`bind_gate`) the check is a real open
        of the gate node under ``creds``; otherwise it falls back to
        the declaration-level check against the channel's
        :meth:`~repro.mech.channel.AccessChannel.gate_mode`.
        """
        try:
            if self._gate_vfs is not None:
                self._gate_vfs.open(self._gate_path, "r", creds).close()
            else:
                self.channel.check_access(creds)
        except AccessDeniedError:
            self._instrument.record_error("permission_denied")
            raise

    def read_block(self, times: np.ndarray,
                   creds: Credentials | None = None) -> np.ndarray:
        if creds is not None:
            self.check_access(creds)
        times = np.asarray(times, dtype=np.float64)
        out = empty_block(self.spec.fields, times.shape[0])
        if times.shape[0] == 0:
            return out
        cache = channel_cache()
        plan = self._cache_plan
        cached = cache.enabled and plan is not None
        if cached:
            columns = self._collect_cached(cache, plan, times)
        else:
            columns = self.source.collect(times)
        quantization = self.channel.quantization
        for name in self.spec.fields:
            column = columns[name]
            if quantization is not None:
                column = quantization.apply_block(column)
            out[name] = column
        # The fault-injection seam: with a plan active, every crossing
        # of the grid is decided *after* the source collected — a retry
        # re-issues the exchange, never the stateful counter read — and
        # undelivered rows degrade to sensor-dark NaN instead of
        # raising.  Injection always draws over the *full* grid, so a
        # cache hit can never mask a fault a real crossing would have
        # drawn.  With no plan this is one function call returning
        # None, and the block above is the entire read path.
        injector = self.channel.fault_injector(
            self.mechanism, self.label, self.spec.queries_per_read)
        if injector is not None:
            dark, stale = injector.cross_block_verdicts(times)
            delivered = ~(dark | stale)
            if stale.any():
                self._serve_stale(out, delivered, stale, injector)
            if delivered.any():
                last = int(np.flatnonzero(delivered)[-1])
                for name in self.spec.fields:
                    injector.last_delivered[name] = float(out[name][last])
            if dark.any():
                for name in self.spec.fields:
                    out[name][dark] = DARK_READING
                if cached:
                    # A dark channel forfeits its freshness windows: the
                    # next delivered crossing re-collects from scratch.
                    cache.invalidate_device(self.mechanism, plan.token)
        return out

    def _collect_cached(self, cache, plan, times: np.ndarray) -> dict:
        """Collect through the channel cache: fields whose freshness key
        hits are served from cache; rows with any miss fall through to
        one subset collection.  Sources that declare a plan are
        elementwise-pure in the poll time, so collecting the miss subset
        yields exactly the rows a full collection would have."""
        n = times.shape[0]
        keys = {name: plan.keys_for(name, times) for name in self.spec.fields}
        columns: dict[str, np.ndarray] = {}
        hit_all = np.ones(n, dtype=bool)
        for name in self.spec.fields:
            values, hit = cache.lookup(
                self.mechanism, plan.token, name, keys[name])
            columns[name] = values
            hit_all &= hit
        need = ~hit_all
        if need.any():
            collected = self.source.collect(times[need])
            for name in self.spec.fields:
                fresh = np.asarray(collected[name], dtype=np.float64)
                columns[name][need] = fresh
                cache.store(
                    self.mechanism, plan.token, name, keys[name][need], fresh)
        cache.note_block(self.mechanism, n, int(np.count_nonzero(hit_all)),
                         self.spec.queries_per_read)
        return columns

    def _serve_stale(self, out: np.ndarray, delivered: np.ndarray,
                     stale: np.ndarray, injector) -> None:
        """Fill wedged-daemon rows with the last *delivered* values: the
        daemon answers promptly but with the bytes it produced before it
        wedged (paper §II) — stale beyond the freshness window, never
        fresh.  Rows wedged before anything was ever delivered degrade
        to sensor-dark."""
        n = delivered.shape[0]
        src = np.where(delivered, np.arange(n), -1)
        np.maximum.accumulate(src, out=src)
        rows = np.flatnonzero(stale)
        src_rows = src[rows]
        carried = injector.last_delivered
        for name in self.spec.fields:
            column = out[name]
            column[rows] = np.where(
                src_rows >= 0,
                column[np.maximum(src_rows, 0)],
                carried.get(name, DARK_READING),
            )

    def read_at(self, t: float,
                creds: Credentials | None = None) -> dict[str, float]:
        block = self.read_block(np.array([t], dtype=np.float64), creds=creds)
        return {name: float(block[name][0]) for name in self.spec.fields}

    def capabilities(self) -> PlatformCapabilities:
        return platform_capabilities(self.spec.platform)
